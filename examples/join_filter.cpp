// Example: filter-accelerated equality joins (paper §3.1).
//
// "A common approach is to build a filter over qualified join keys from
// the smaller table. When the larger table is scanned, we can check its
// join keys against this filter to preemptively discard rows with
// non-matching join keys." We join a 100k-row dimension table against a
// 10M-row fact table at several selectivities and count how many rows
// survive the probe into the (expensive) join machinery.

#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bloom/bloom_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "staticf/xor_filter.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace bbf;

int main() {
  const uint64_t kDim = 100000;
  const uint64_t kFact = 10000000;
  const auto dim_keys = GenerateDistinctKeys(kDim, 19);
  std::unordered_set<uint64_t> dim_set(dim_keys.begin(), dim_keys.end());

  std::printf("semi-join pushdown: %llu-row dimension table, %llu-row fact "
              "scan\n\n",
              static_cast<unsigned long long>(kDim),
              static_cast<unsigned long long>(kFact));
  std::printf("%-12s | %-10s | %-14s | %-14s | %s\n", "selectivity",
              "filter", "rows passed", "exact matches", "wasted probes");
  std::printf("%s\n", std::string(80, '-').c_str());

  for (double selectivity : {0.001, 0.01, 0.1}) {
    // Fact rows: `selectivity` of them reference the dimension table.
    SplitMix64 rng(23);
    std::vector<uint64_t> fact;
    fact.reserve(kFact);
    uint64_t true_matches = 0;
    for (uint64_t i = 0; i < kFact; ++i) {
      if (rng.NextDouble() < selectivity) {
        fact.push_back(dim_keys[rng.NextBelow(kDim)]);
        ++true_matches;
      } else {
        fact.push_back(rng.Next() | (uint64_t{1} << 63));  // Never in dim.
      }
    }

    BloomFilter bloom(kDim, 10.0);
    for (uint64_t k : dim_keys) bloom.Insert(k);
    XorFilter xorf(dim_keys, 10);
    CuckooFilter cuckoo = CuckooFilter::ForFpr(kDim, 0.001);
    for (uint64_t k : dim_keys) cuckoo.Insert(k);

    struct Probe {
      const char* name;
      const Filter* filter;
    };
    const Probe probes[] = {
        {"bloom", &bloom}, {"xor", &xorf}, {"cuckoo", &cuckoo}};
    for (const Probe& p : probes) {
      uint64_t passed = 0;
      for (uint64_t k : fact) passed += p.filter->Contains(k);
      std::printf("%-12g | %-10s | %14llu | %14llu | %llu\n", selectivity,
                  p.name, static_cast<unsigned long long>(passed),
                  static_cast<unsigned long long>(true_matches),
                  static_cast<unsigned long long>(passed - true_matches));
    }
  }
  std::printf(
      "\nAt low selectivity the filter discards ~99%% of the scan before\n"
      "the join; wasted probes = filter false positives only ([62]: at\n"
      "high selectivity filtering stops paying — probe everything).\n");
  return 0;
}
