// Example: crash-safe blocklist snapshots (DESIGN.md §8).
//
// A router keeps 400k malicious URLs in a 8-shard filter. Instead of
// re-hashing the feed on every restart, it saves a checksummed snapshot
// and reloads it at boot. This demo saves one, flips a single bit inside
// one shard's frame — a torn sector, a bad disk, a truncated upload —
// and reloads: the corrupt shard is quarantined and rebuilt empty, the
// other seven load intact, and the LoadReport says exactly which slice
// of the keyspace must be re-fed from the source of truth.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/sharded_filter.h"
#include "util/hash.h"
#include "workload/generators.h"

using namespace bbf;

namespace {

constexpr int kShards = 8;

std::unique_ptr<ShardedFilter> MakeBlocklist(uint64_t capacity) {
  return std::make_unique<ShardedFilter>(capacity, kShards, [](uint64_t cap) {
    return CreateFilter("blocked-bloom", cap, 0.001);
  });
}

uint64_t KeyOf(const std::string& url) { return HashBytes(url, 0xB10C); }

}  // namespace

int main() {
  const std::vector<std::string> malicious = GenerateUrls(400000, 21);
  auto blocklist = MakeBlocklist(malicious.size());
  for (const std::string& url : malicious) blocklist->Insert(KeyOf(url));

  // Persist. The blob is what would hit disk: an outer directory frame
  // plus one self-checksummed frame per shard.
  std::ostringstream out;
  if (!blocklist->Save(out)) {
    std::printf("save failed\n");
    return 1;
  }
  std::string blob = std::move(out).str();
  std::printf("saved %d-shard blocklist: %zu URLs, %.1f MiB snapshot\n",
              kShards, malicious.size(), blob.size() / 1048576.0);

  // One bad bit in the middle of the blob — inside some shard's frame.
  blob[blob.size() / 2] ^= 0x04;
  std::printf("flipped one bit at byte %zu (simulated disk corruption)\n\n",
              blob.size() / 2);

  // Reload. A plain Load would also succeed; LoadWithReport additionally
  // says which shards were dropped.
  auto reloaded = MakeBlocklist(malicious.size());
  ShardedFilter::LoadReport report;
  std::istringstream in(blob);
  if (!reloaded->LoadWithReport(in, &report)) {
    std::printf("snapshot unusable (directory corrupt) — full rebuild\n");
    return 1;
  }
  std::printf("loaded %zu/%zu shards; quarantined:", report.healthy_shards,
              report.total_shards);
  for (size_t q : report.quarantined) std::printf(" #%zu", q);
  std::printf("%s\n", report.quarantined.empty() ? " none" : "");

  uint64_t still_blocked = 0;
  for (const std::string& url : malicious) {
    still_blocked += reloaded->Contains(KeyOf(url));
  }
  std::printf("%llu/%zu URLs still blocked after reload\n",
              static_cast<unsigned long long>(still_blocked),
              malicious.size());
  std::printf("re-feed only the quarantined shards' slice: %.1f%% of the "
              "feed instead of 100%%\n",
              100.0 * (malicious.size() - still_blocked) / malicious.size());
  return 0;
}
