// Observability demo (DESIGN.md §11): wrap filters in
// obs::InstrumentedFilter, drive a small workload, and render the
// metrics page a scrape endpoint would serve.
//
// Build & run:   cmake -B build && cmake --build build
//                ./build/examples/metrics_demo          # Prometheus text
//                ./build/examples/metrics_demo --json   # same data as JSON
//
// The default output is valid Prometheus exposition format — pipe it to a
// file and point a file-based scrape at it, or serve it from any HTTP
// handler.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_filter.h"
#include "cuckoo/adaptive_cuckoo_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "obs/export.h"
#include "obs/instrumented.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace bbf;
  const bool as_json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  constexpr uint64_t kKeys = 200000;
  const auto keys = GenerateDistinctKeys(kKeys, 1);
  const auto ghosts = GenerateNegativeKeys(keys, kKeys, 2);

  // --- A sharded cuckoo filter under the kChain saturation policy, ----
  // --- wrapped for observability. The decorator attaches itself as ----
  // --- the sharded filter's MetricsSink, which fans it out to every ---
  // --- generation: kick-chain events from all shards land in one -------
  // --- histogram, and chained generations count as expansions. ---------
  SaturationConfig config;
  config.policy = SaturationPolicy::kChain;
  obs::InstrumentedFilter sharded(
      std::make_unique<ShardedFilter>(
          kKeys / 8,  // Undersized on purpose: forces chaining events
                      // (cuckoo tables round capacity up to a power of
                      // two, so mild undersizing disappears).
          /*num_shards=*/8,
          [](uint64_t cap) -> std::unique_ptr<Filter> {
            return std::make_unique<CuckooFilter>(
                CuckooFilter::ForFpr(cap, 0.01));
          },
          config),
      /*configured_epsilon=*/0.01);

  // Batched inserts and lookups: the hot path real deployments use.
  sharded.InsertMany(keys);
  std::vector<uint8_t> out(kKeys);
  sharded.ContainsMany(keys, out.data());    // All hits.
  sharded.ContainsMany(ghosts, out.data());  // FPR-rate hits.
  for (size_t i = 0; i < 1000; ++i) {        // Some scalar traffic too.
    (void)sharded.Contains(ghosts[i]);
  }
  sharded.Erase(keys[0]);

  // --- An adaptive cuckoo filter: reported false positives trigger ----
  // --- fingerprint repairs, counted as adapt events. -------------------
  obs::InstrumentedFilter adaptive(
      std::make_unique<AdaptiveCuckooFilter>(kKeys, /*fingerprint_bits=*/8,
                                             /*selector_bits=*/2),
      /*configured_epsilon=*/0.03);
  for (uint64_t k : keys) adaptive.Insert(k);
  for (uint64_t g : ghosts) {
    if (adaptive.Contains(g)) adaptive.ReportFalsePositive(g);
  }

  // --- Render the scrape page. -----------------------------------------
  obs::MetricsRegistry registry;
  registry.Register("sharded_cuckoo", &sharded);
  registry.Register("adaptive_cuckoo", &adaptive);

  const auto entries = registry.Snapshot();
  const std::string page =
      as_json ? obs::RenderJson(entries) : obs::RenderPrometheus(entries);
  std::fputs(page.c_str(), stdout);
  return 0;
}
