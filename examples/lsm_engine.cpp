// Example: a filter-accelerated LSM-tree storage engine (paper §3.1).
//
// Loads half a million key-value pairs, then shows how per-run point filters
// (with Monkey allocation) and range filters change the simulated I/O bill
// of point lookups and range scans — the motivating workload for most of
// the filter research the tutorial surveys.

#include <cstdio>
#include <string>

#include "apps/lsm/lsm_tree.h"
#include "util/random.h"
#include "workload/generators.h"

using bbf::lsm::FilterAllocation;
using bbf::lsm::LsmOptions;
using bbf::lsm::LsmTree;
using bbf::lsm::PointFilterKind;
using bbf::lsm::RangeFilterKind;

namespace {

struct Config {
  const char* name;
  PointFilterKind point;
  FilterAllocation alloc;
  RangeFilterKind range;
};

void RunConfig(const Config& config, const std::vector<uint64_t>& keys,
               const std::vector<uint64_t>& negatives) {
  LsmOptions o;
  o.memtable_entries = 4096;
  o.size_ratio = 4;
  o.point_filter = config.point;
  o.point_bits_per_key = 10;
  o.allocation = config.alloc;
  o.range_filter = config.range;
  LsmTree db(o);
  for (uint64_t k : keys) db.Put(k, k ^ 0xDB);

  db.ResetIo();
  for (uint64_t k : negatives) db.Get(k);
  const double point_ios =
      static_cast<double>(db.io().data_reads) / negatives.size();

  db.ResetIo();
  bbf::SplitMix64 rng(99);
  const int kScans = 3000;
  for (int i = 0; i < kScans; ++i) {
    const uint64_t lo = rng.Next();
    db.Scan(lo, lo + 100);
  }
  const double scan_ios = static_cast<double>(db.io().data_reads) / kScans;

  std::printf("%-28s | %7.3f | %7.3f | %6.1f MiB | wamp %.1f\n", config.name,
              point_ios, scan_ios,
              db.TotalFilterBits() / 8.0 / (1 << 20),
              db.WriteAmplification());
}

}  // namespace

int main() {
  const auto keys = bbf::GenerateDistinctKeys(500000, 7);
  const auto negatives = bbf::GenerateNegativeKeys(keys, 20000, 8);

  std::printf("mini-LSM with 500k entries; I/Os are simulated page reads\n\n");
  std::printf("%-28s | neg-get | scan    | filter mem | write amp\n", "config");
  std::printf("%s\n", std::string(85, '-').c_str());
  const Config configs[] = {
      {"no filters", PointFilterKind::kNone, FilterAllocation::kUniform,
       RangeFilterKind::kNone},
      {"bloom uniform", PointFilterKind::kBloom, FilterAllocation::kUniform,
       RangeFilterKind::kNone},
      {"bloom + monkey", PointFilterKind::kBloom, FilterAllocation::kMonkey,
       RangeFilterKind::kNone},
      {"ribbon (static) uniform", PointFilterKind::kRibbon,
       FilterAllocation::kUniform, RangeFilterKind::kNone},
      {"bloom + grafite ranges", PointFilterKind::kBloom,
       FilterAllocation::kUniform, RangeFilterKind::kGrafite},
      {"bloom + surf ranges", PointFilterKind::kBloom,
       FilterAllocation::kUniform, RangeFilterKind::kSurf},
  };
  for (const Config& c : configs) RunConfig(c, keys, negatives);
  std::printf(
      "\nPoint filters erase almost the whole negative-lookup bill; Monkey\n"
      "concentrates the remaining false probes in one level; range filters\n"
      "do the same for empty scans (paper §3.1).\n");
  return 0;
}
