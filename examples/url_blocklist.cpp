// Example: malicious-URL blocking with yes/no lists (paper §3.3).
//
// A router holds 1M malicious URLs in a filter. Benign URLs that collide
// pay an expensive verification on EVERY visit with a plain Bloom filter;
// the integrated (FP-free-set) filter protects a static no list; the
// adaptive filter protects every benign URL after its first complaint.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/net/blocklist.h"
#include "workload/generators.h"
#include "workload/zipf.h"

using namespace bbf::net;

int main() {
  auto urls = bbf::GenerateUrls(1040000, 11);
  const std::vector<std::string> malicious(urls.begin(),
                                           urls.begin() + 1000000);
  const std::vector<std::string> hot_benign(urls.begin() + 1000000,
                                            urls.begin() + 1010000);
  const std::vector<std::string> cold_benign(urls.begin() + 1010000,
                                             urls.end());

  auto bloom = MakeBloomBlocklist(malicious, 10.0);
  auto integrated = MakeIntegratedBlocklist(malicious, hot_benign, 10);
  auto adaptive = MakeAdaptiveBlocklist(malicious, 0.001);

  // A Zipf-skewed stream of benign traffic dominated by the hot URLs.
  bbf::ZipfGenerator zipf(hot_benign.size(), 1.1, 5);
  const int kVisits = 500000;

  std::printf("1M malicious URLs; %d benign visits (Zipf over 10k hot "
              "URLs)\n\n", kVisits);
  std::printf("%-12s | wrong blocks | per visit | MiB\n", "filter");
  std::printf("--------------------------------------------------\n");
  for (Blocklist* b : {bloom.get(), integrated.get(), adaptive.get()}) {
    uint64_t wrong = 0;
    for (int i = 0; i < kVisits; ++i) {
      const std::string& url = hot_benign[zipf.Next()];
      if (b->IsBlocked(url)) {
        ++wrong;
        b->ReportFalseBlock(url);  // The verification path complains.
      }
    }
    std::printf("%-12s | %12llu | %9.6f | %5.1f\n",
                std::string(b->Name()).c_str(),
                static_cast<unsigned long long>(wrong),
                static_cast<double>(wrong) / kVisits,
                b->SpaceBits() / 8.0 / (1 << 20));
  }

  // Sanity: everything malicious is still blocked.
  uint64_t missed = 0;
  for (size_t i = 0; i < malicious.size(); i += 97) {
    missed += !adaptive->IsBlocked(malicious[i]);
  }
  std::printf("\nmalicious URLs missed after adaptation: %llu (must be 0)\n",
              static_cast<unsigned long long>(missed));
  std::printf("cold benign FPR (integrated): %.5f\n", [&] {
    uint64_t fp = 0;
    for (const auto& u : cold_benign) fp += integrated->IsBlocked(u);
    return static_cast<double>(fp) / cold_benign.size();
  }());
  return 0;
}
