// Auto-tuning close-up (DESIGN.md §15): an adversary replays the same
// false-positive keys against a loosely-sized blocked-bloom shard, the
// observability layer's repeat sketch catches the abuse, and the Tuner
// migrates the shard online to an adaptive family — after which the same
// replay goes quiet. Everything below is the production wiring: an
// InstrumentedFilter around a migratable ShardedFilter, a Tuner polling
// its signals, and the decision surfacing through the metrics exporters.
//
// Build & run:  ./tuner_demo

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/factory.h"
#include "core/sharded_filter.h"
#include "obs/export.h"
#include "obs/instrumented.h"
#include "tuning/tuner.h"
#include "workload/generators.h"

using bbf::CreateFilter;
using bbf::GenerateAdversarialRepeatQueries;
using bbf::GenerateDistinctKeys;
using bbf::ShardedFilter;

namespace {

double StreamFpRate(const bbf::obs::InstrumentedFilter& filter,
                    const std::vector<uint64_t>& stream) {
  uint64_t fp = 0;
  for (uint64_t k : stream) fp += filter.Contains(k);
  return static_cast<double>(fp) / static_cast<double>(stream.size());
}

}  // namespace

int main() {
  // A shard the capacity-planning guess left too loose: blocked-bloom at
  // 25% epsilon, while the service promises 1%.
  constexpr uint64_t kNumKeys = 20'000;
  constexpr double kBudget = 0.01;
  auto inner = std::make_unique<ShardedFilter>(
      kNumKeys, 1, [](uint64_t cap) {
        return CreateFilter("blocked-bloom", cap, 0.25);
      });
  if (!inner->EnableMigration()) {
    std::fprintf(stderr, "EnableMigration failed\n");
    return 1;
  }
  bbf::obs::InstrumentedFilter filter(std::move(inner), 0.25);

  const auto keys = GenerateDistinctKeys(kNumKeys, 7);
  for (uint64_t k : keys) filter.Insert(k);

  // The adversarial-repeat workload: 90% of queries replay a fixed hot
  // set of negatives, so the hot keys this filter false-positives on come
  // back over and over — the pattern a static filter can never shake.
  const auto stream = GenerateAdversarialRepeatQueries(
      keys, /*hot_count=*/8192, /*hot_frac=*/0.9, /*stream_len=*/300'000);

  std::printf("== before: adversarial replay against blocked-bloom ==\n");
  const double fp_before = StreamFpRate(filter, stream);
  std::printf("stream false-positive rate: %.4f (budget %.4f)\n\n", fp_before,
              kBudget);

  bbf::tuning::TunerConfig cfg;
  cfg.fpr_budget = kBudget;
  bbf::tuning::Tuner tuner(filter, cfg);

  std::printf("== tuner status after the abuse ==\n%s\n",
              tuner.StatusText().c_str());

  const auto poll = tuner.Poll();
  std::printf("== tuner decision ==\n%s\n", poll.decision.reason.c_str());
  if (!poll.acted || !poll.report.ok) {
    std::fprintf(stderr, "migration did not run: %s\n",
                 poll.report.error.c_str());
    return 1;
  }
  std::printf("migrated shard %zu: %s -> %s (pause %.3f ms, %llu ops "
              "replayed)\n\n",
              poll.decision.shard, poll.decision.from_family.c_str(),
              poll.decision.to_family.c_str(),
              static_cast<double>(poll.report.pause_ns) / 1e6,
              static_cast<unsigned long long>(poll.report.replayed_ops));

  std::printf("== after: the same replay against the successor ==\n");
  const double fp_after = StreamFpRate(filter, stream);
  std::printf("stream false-positive rate: %.4f (budget %.4f)\n", fp_after,
              kBudget);

  // No key was harmed in the making of this migration.
  for (uint64_t k : keys) {
    if (!filter.Contains(k)) {
      std::fprintf(stderr, "migration lost a key\n");
      return 1;
    }
  }
  std::printf("all %llu inserted keys still served\n\n",
              static_cast<unsigned long long>(kNumKeys));

  // The lifecycle counters ride the same exporters as every other metric,
  // so a fleet dashboard sees the migration without new plumbing.
  bbf::obs::MetricsRegistry registry;
  registry.Register("edge-cache", [&] { return tuner.MetricsSnapshot(); });
  std::printf("== tuner metrics (Prometheus exposition) ==\n%s",
              bbf::obs::RenderPrometheus(registry.Snapshot()).c_str());
  return 0;
}
