// Example: filter-as-a-service (DESIGN.md §14).
//
// A complete client/server round trip in one process: a ShardedFilter
// and an adaptive blocklist served by the epoll front end, driven by a
// SyncClient over a socketpair (AdoptConnection — no ports, no network
// permissions needed). Shows batched inserts with per-key outcomes,
// lookups, the blocklist opcodes, a metrics scrape, and a graceful
// drain that snapshots the filter on the way out.

#include <sys/socket.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "apps/net/client.h"
#include "apps/net/server.h"
#include "core/filter_io.h"
#include "core/sharded_filter.h"
#include "quotient/quotient_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::net;

int main() {
  // The filter behind the service: 4 shards of quotient filters, chained
  // generations past saturation.
  ShardedFilter filter(1 << 16, 4, [](uint64_t cap) {
    return std::unique_ptr<Filter>(std::make_unique<QuotientFilter>(
        QuotientFilter::ForCapacity(cap, 0.01)));
  });

  const auto urls = GenerateUrls(5000, 7);
  const std::vector<std::string> bad(urls.begin(), urls.begin() + 4000);
  auto blocklist = MakeAdaptiveBlocklist(bad, 0.02);

  const std::string snapshot_path = "/tmp/bbf_net_demo_snapshot.bbf";
  ServerConfig config;
  config.num_threads = 2;
  config.drain_snapshot_path = snapshot_path;
  Server server(&filter, config);
  server.set_blocklist(blocklist.get());
  if (!server.Start()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  // One socketpair end goes to the server's event loop, the other to the
  // blocking client. Same wire protocol a TCP peer would speak.
  int sp[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) return 1;
  server.AdoptConnection(sp[1]);
  SyncClient client(sp[0]);

  std::printf("ping: %s\n",
              client.Ping() == FrameStatus::kOk ? "ok" : "FAILED");

  // Batched insert: the response carries one outcome byte per key, so
  // the client knows exactly which keys are queryable.
  const auto keys = GenerateDistinctKeys(10000, 11);
  std::vector<uint8_t> outcomes;
  client.Insert(keys, &outcomes);
  size_t accepted = 0;
  size_t expanded = 0;
  size_t nacked = 0;
  for (uint8_t o : outcomes) {
    accepted += (o == kInsertAccepted);
    expanded += (o == kInsertExpanded);
    nacked += (o == kInsertNacked);
  }
  std::printf("insert 10000 keys: %zu accepted, %zu via expansion, "
              "%zu NACKed\n",
              accepted, expanded, nacked);

  std::vector<uint8_t> present;
  client.Lookup(keys, &present);
  size_t hits = 0;
  for (uint8_t p : present) hits += (p == kKeyPresent);
  std::printf("lookup the same keys: %zu/%zu present\n", hits, keys.size());

  // The blocklist over the wire: check, report a false block, recheck.
  const std::vector<std::string> check(urls.end() - 100, urls.end());
  std::vector<uint8_t> blocked;
  client.BlockCheck(check, &blocked);
  std::vector<std::string> falsely;
  for (size_t i = 0; i < check.size(); ++i) {
    if (blocked[i] != 0) falsely.push_back(check[i]);
  }
  std::printf("blocklist: %zu/100 benign URLs falsely blocked\n",
              falsely.size());
  if (!falsely.empty()) {
    std::vector<uint8_t> adapted;
    client.ReportFalseBlock(falsely, &adapted);
    client.BlockCheck(falsely, &blocked);
    size_t still = 0;
    for (uint8_t b : blocked) still += (b != 0);
    std::printf("after ReportFalseBlock: %zu still blocked\n", still);
  }

  std::string metrics;
  client.Metrics(&metrics);
  std::printf("\nmetrics scrape (%zu bytes), first lines:\n",
              metrics.size());
  std::printf("%s\n", metrics.substr(0, metrics.find('\n', 80)).c_str());

  // Graceful drain: finish in-flight work, flush, snapshot the filter.
  server.Shutdown();
  std::ifstream is(snapshot_path, std::ios::binary);
  ShardedFilter restored(1 << 16, 4, [](uint64_t cap) {
    return std::unique_ptr<Filter>(std::make_unique<QuotientFilter>(
        QuotientFilter::ForCapacity(cap, 0.01)));
  });
  if (is.good() && restored.Load(is)) {
    std::printf("\ndrain snapshot: restored filter holds %llu keys "
                "(served filter held %llu)\n",
                static_cast<unsigned long long>(restored.NumKeys()),
                static_cast<unsigned long long>(filter.NumKeys()));
  }
  std::remove(snapshot_path.c_str());
  return 0;
}
