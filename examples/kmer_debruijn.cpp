// Example: filters in computational biology (paper §3.2).
//
// Counts the k-mers of a synthetic genome in a counting quotient filter
// (Squeakr-style), then represents its de Bruijn graph three ways —
// probabilistic Bloom (Pell et al.), Bloom + exact critical-false-positive
// table (Chikhi & Rizk), and Bloom + cascading Bloom filter (Salikhov
// et al.) — and walks a unitig to show exact navigation.

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "apps/bio/debruijn.h"
#include "apps/bio/kmer.h"
#include "apps/bio/kmer_counter.h"
#include "workload/generators.h"

using namespace bbf::bio;

int main() {
  const int k = 21;
  const std::string genome = bbf::GenerateDna(2000000, /*repeat_frac=*/0.3);
  std::printf("synthetic genome: %zu bp, k = %d\n\n", genome.size(), k);

  // --- Squeakr-style counting --------------------------------------------
  KmerCounter counter(k, 1900000);
  counter.AddSequence(genome);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t km : ExtractKmers(genome, k)) ++truth[km];
  uint64_t exact = 0;
  uint64_t max_count = 0;
  for (const auto& [km, c] : truth) {
    exact += counter.CountPacked(km) == c;
    max_count = std::max(max_count, c);
  }
  std::printf("k-mer counting (CQF): %zu distinct, max multiplicity %llu,\n"
              "  %.2f%% counted exactly, %.2f bits per distinct k-mer\n\n",
              truth.size(), static_cast<unsigned long long>(max_count),
              100.0 * exact / truth.size(),
              static_cast<double>(counter.SpaceBits()) / truth.size());

  // --- de Bruijn graph three ways ----------------------------------------
  std::vector<uint64_t> kmers;
  kmers.reserve(truth.size());
  for (const auto& [km, c] : truth) kmers.push_back(km);
  const std::unordered_set<uint64_t> truth_set(kmers.begin(), kmers.end());

  const double bpk = 8.0;
  DeBruijnGraph prob(kmers, k, DeBruijnGraph::Mode::kProbabilistic, bpk);
  DeBruijnGraph table(kmers, k, DeBruijnGraph::Mode::kExactTable, bpk);
  DeBruijnGraph cascade(kmers, k, DeBruijnGraph::Mode::kCascading, bpk);

  auto phantom_rate = [&](const DeBruijnGraph& g) {
    uint64_t phantom = 0;
    uint64_t edges = 0;
    size_t i = 0;
    for (uint64_t km : kmers) {
      for (uint64_t nb : g.RightNeighbors(km)) {
        ++edges;
        phantom += !truth_set.contains(nb);
      }
      if (++i >= 20000) break;
    }
    return edges == 0 ? 0.0 : 100.0 * phantom / edges;
  };

  std::printf("de Bruijn graph representations at %.0f bits/k-mer:\n", bpk);
  std::printf("  %-22s %10s %16s\n", "mode", "phantom", "space bits/kmer");
  std::printf("  %-22s %9.3f%% %16.2f\n", "probabilistic (Pell)",
              phantom_rate(prob),
              static_cast<double>(prob.SpaceBits()) / kmers.size());
  std::printf("  %-22s %9.3f%% %16.2f   (cFP table: %zu entries)\n",
              "exact table (Chikhi)", phantom_rate(table),
              static_cast<double>(table.SpaceBits()) / kmers.size(),
              table.critical_fp_count());
  std::printf("  %-22s %9.3f%% %16.2f\n", "cascading (Salikhov)",
              phantom_rate(cascade),
              static_cast<double>(cascade.SpaceBits()) / kmers.size());

  // --- Walk a unitig exactly ----------------------------------------------
  uint64_t cur = kmers.front();
  int steps = 0;
  while (steps < 50) {
    const auto next = table.RightNeighbors(cur);
    if (next.size() != 1) break;  // Unitig ends at a branch or tip.
    cur = next[0];
    ++steps;
  }
  std::printf("\nwalked a unitig of %d exact steps from the first k-mer\n",
              steps);
  return 0;
}
