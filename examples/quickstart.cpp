// Quickstart: the modern filter API in one tour (§1 of the paper).
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "adaptive/adaptive_quotient_filter.h"
#include "bloom/bloom_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "expandable/taffy_filter.h"
#include "quotient/quotient_filter.h"
#include "quotient/quotient_maplet.h"
#include "staticf/xor_filter.h"
#include "util/hash.h"
#include "workload/generators.h"

int main() {
  using namespace bbf;
  const auto keys = GenerateDistinctKeys(100000);
  const auto ghosts = GenerateNegativeKeys(keys, 100000);

  std::printf("== Beyond Bloom quickstart ==\n\n");

  // --- 1. The classic: a Bloom filter (semi-dynamic: no deletes). -----
  BloomFilter bloom(keys.size(), /*bits_per_key=*/10);
  for (uint64_t k : keys) bloom.Insert(k);
  uint64_t fp = 0;
  for (uint64_t g : ghosts) fp += bloom.Contains(g);
  std::printf("bloom        : %5.2f bits/key, fpr %.4f%%\n",
              bloom.BitsPerKey(), 100.0 * fp / ghosts.size());

  // --- 2. Dynamic filters support deletes and counting. ---------------
  QuotientFilter qf = QuotientFilter::ForCapacity(keys.size(), 0.01);
  CuckooFilter cf = CuckooFilter::ForFpr(keys.size(), 0.01);
  for (uint64_t k : keys) {
    qf.Insert(k);
    cf.Insert(k);
  }
  qf.Insert(keys[0]);  // Multiset: same key twice.
  std::printf("quotient     : %5.2f bits/key, count(dup key) = %llu\n",
              qf.BitsPerKey(),
              static_cast<unsigned long long>(qf.Count(keys[0])));
  cf.Erase(keys[1]);  // Dynamic: deletion works.
  std::printf("cuckoo       : %5.2f bits/key, erased? %s\n", cf.BitsPerKey(),
              cf.Contains(keys[1]) ? "no" : "yes");

  // --- 3. Static filters: smallest, built once from a known set. ------
  XorFilter xf(keys, /*fingerprint_bits=*/10);
  std::printf("xor (static) : %5.2f bits/key\n", xf.BitsPerKey());

  // --- 4. Expandable: grow indefinitely without the original keys. ----
  TaffyFilter taffy(/*q_bits=*/10, /*fingerprint_bits=*/16);
  for (uint64_t k : keys) taffy.Insert(k);
  std::printf("taffy        : grew through %d doublings, no key lost: %s\n",
              taffy.expansions(), taffy.Contains(keys[42]) ? "yes" : "no");

  // --- 5. Adaptive: a reported false positive never repeats. ----------
  AdaptiveQuotientFilter aqf(17, 7);
  for (uint64_t k : keys) aqf.Insert(k);
  for (uint64_t g : ghosts) {
    if (aqf.Contains(g)) {
      aqf.ReportFalsePositive(g);
      std::printf("adaptive     : ghost %llu was a false positive once, "
                  "now Contains=%d\n",
                  static_cast<unsigned long long>(g), aqf.Contains(g));
      break;
    }
  }

  // --- 6. Maplets: associate small values with keys. -------------------
  QuotientMaplet maplet = QuotientMaplet::ForCapacity(keys.size(), 0.01, 8);
  maplet.Insert(keys[7], 42);
  const auto vals = maplet.Lookup(keys[7]);
  std::printf("maplet       : lookup -> %zu candidate value(s), first = %llu\n",
              vals.size(), static_cast<unsigned long long>(vals[0]));

  // --- 7. String keys: hash at the boundary. ---------------------------
  BloomFilter urls(3, 12);
  urls.Insert(HashBytes("https://example.com/a"));
  std::printf("string keys  : contains(\"https://example.com/a\") = %d\n",
              urls.Contains(HashBytes("https://example.com/a")));
  return 0;
}
