// Experiment E1 (DESIGN.md §4): space vs theory.
//
// Paper claims (§2, §2.7): quotient = n lg(1/eps) + ~3n bits (2.125n with
// the CQF's metadata scheme), cuckoo = n lg(1/eps) + 3n, Bloom =
// 1.44 n lg(1/eps), XOR = 1.23 n lg(1/eps), ribbon ~ 1.05 n lg(1/eps).
// We size every filter for the same target FPR and report measured
// bits/key next to measured FPR.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "bloom/bloom_filter.h"
#include "bloom/counting_bloom.h"
#include "bloom/dleft_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/prefix_filter.h"
#include "quotient/quotient_filter.h"
#include "quotient/rsqf.h"
#include "quotient/vector_quotient_filter.h"
#include "staticf/ribbon_filter.h"
#include "staticf/xor_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

void Report(const char* name, const Filter& f, double target_fpr,
            const std::vector<uint64_t>& negatives) {
  const double bits = f.BitsPerKey();
  const double info = -std::log2(target_fpr);  // n lg(1/eps) lower bound.
  std::printf("  %-18s %10.2f %12.2f %11.4f%% %11.4f%%\n", name, bits,
              bits / info, 100 * target_fpr, 100 * MeasureFpr(f, negatives));
}

void RunAtFpr(double fpr, uint64_t n) {
  const auto keys = GenerateDistinctKeys(n);
  const auto negatives = GenerateNegativeKeys(keys, 1000000);
  std::printf("n = %llu, target fpr = %g\n",
              static_cast<unsigned long long>(n), fpr);
  std::printf("  %-18s %10s %12s %12s %12s\n", "filter", "bits/key",
              "x optimal", "target fpr", "measured");

  BloomFilter bloom = BloomFilter::ForFpr(n, fpr);
  for (uint64_t k : keys) bloom.Insert(k);
  Report("bloom", bloom, fpr, negatives);

  QuotientFilter qf = QuotientFilter::ForCapacity(n, fpr);
  for (uint64_t k : keys) qf.Insert(k);
  Report("quotient(3bit)", qf, fpr, negatives);

  Rsqf rsqf = Rsqf::ForCapacity(n, fpr);
  for (uint64_t k : keys) rsqf.Insert(k);
  Report("rsqf(2.25bit)", rsqf, fpr, negatives);

  CuckooFilter cf = CuckooFilter::ForFpr(n, fpr);
  for (uint64_t k : keys) cf.Insert(k);
  Report("cuckoo", cf, fpr, negatives);

  {
    // VQF: ~2.2 effective probes/query, so r = lg(2.2/eps).
    const int r = std::max(
        2, static_cast<int>(std::ceil(std::log2(2.2 / fpr))));
    VectorQuotientFilter vqf(n, r);
    for (uint64_t k : keys) vqf.Insert(k);
    Report("vector-quotient", vqf, fpr, negatives);
  }
  {
    // Prefix filter: ~bucket-size effective probes in the first level.
    const int f = std::max(
        4, static_cast<int>(std::ceil(std::log2(24.0 / fpr))));
    PrefixFilter pf(n, f);
    for (uint64_t k : keys) pf.Insert(k);
    Report("prefix", pf, fpr, negatives);
  }

  XorFilter xf = XorFilter::ForFpr(keys, fpr);
  Report("xor (static)", xf, fpr, negatives);

  RibbonFilter rf = RibbonFilter::ForFpr(keys, fpr);
  Report("ribbon (static)", rf, fpr, negatives);

  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== E1: space vs the n lg(1/eps) lower bound ==\n\n");
  // n chosen so the power-of-two fingerprint tables sit near full load
  // (0.94 * 2^20); otherwise their bits/key would be inflated by slack.
  const uint64_t n = 980000;
  RunAtFpr(1.0 / 256, n);     // eps = 2^-8 (paper's "typical value").
  RunAtFpr(1.0 / 65536, n);   // eps = 2^-16.
  std::printf(
      "expected shape (paper §2/§2.7): bloom pays 1.44x; quotient/cuckoo pay\n"
      "an additive ~3 bits/key (the rsqf trims that to ~2.25, the paper's\n"
      "2.125n claim); xor pays 1.23x; ribbon is closest to 1x.\n");
  return 0;
}
