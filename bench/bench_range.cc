// Experiments E7 and E27 (DESIGN.md §4, §16): range filters (§2.5) and
// the dynamic-vs-static scenario sweep.
//
// E7 paper claims, three tables:
//   (a) FPR vs range length at a fixed space budget — Rosetta is strong on
//       short ranges and degrades to no filtering; SNARF/Grafite stay flat
//       until their design range; SuRF sits in between. Each row carries
//       the family's bits/key so FPR is never read without its space cost.
//   (c) Adversarial long-common-prefix keys — SuRF's space blows up,
//       Grafite's does not.
//   (d) ARF converges on a repeating workload and relapses on a shift.
//
// E27 scenario sweep (b): every family at a ~1% design point runs four
// workloads — uncorrelated empty ranges, correlated empty ranges (starts
// right after stored keys, the trie-killer), a mixed point/range stream,
// and an interleaved insert/query schedule where the static families must
// rebuild mid-stream while Memento absorbs inserts online. The sweep is
// gated: Memento must hold <= 1.5x its configured FPR under correlation,
// at least one static family must degrade >= 5x there, and nobody may
// return a false negative in the interleaved run. A violated gate exits
// non-zero so CI fails loudly.
//
// Usage: bench_range [--quick] [--json=PATH]
//   --quick      smaller key count (50k; default 200k).
//   --json=PATH  machine-readable results (BENCH_range.json).

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "range/arf.h"
#include "range/grafite.h"
#include "range/memento.h"
#include "range/prefix_bloom_range.h"
#include "range/rosetta.h"
#include "range/snarf.h"
#include "range/surf.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace bbf;
using bbf::bench::Mops;
using bbf::bench::Seconds;

namespace {

struct Family {
  const char* name;
  bool dynamic;  // Supports online AddKey (no rebuilds needed).
  std::function<std::unique_ptr<RangeFilter>(const std::vector<uint64_t>&)>
      build;
};

// Every family configured to target ~1% FPR on short (<= 64) ranges, the
// same design points the range FPR-regression suite pins.
std::vector<Family> ScenarioFamilies() {
  return {
      {"prefix-bloom", false,
       [](const std::vector<uint64_t>& keys) -> std::unique_ptr<RangeFilter> {
         return std::make_unique<PrefixBloomRangeFilter>(keys, 48, 12.0);
       }},
      {"surf-real", false,
       [](const std::vector<uint64_t>& keys) -> std::unique_ptr<RangeFilter> {
         return std::make_unique<SurfFilter>(
             keys, SurfFilter::SuffixMode::kReal, 8);
       }},
      {"rosetta", false,
       [](const std::vector<uint64_t>& keys) -> std::unique_ptr<RangeFilter> {
         // 7 levels cover dyadic nodes of length-64 ranges.
         return std::make_unique<RosettaRangeFilter>(keys, 7, 36.0);
       }},
      {"snarf", false,
       [](const std::vector<uint64_t>& keys) -> std::unique_ptr<RangeFilter> {
         return std::make_unique<SnarfRangeFilter>(keys, 7);
       }},
      {"grafite", false,
       [](const std::vector<uint64_t>& keys) -> std::unique_ptr<RangeFilter> {
         // Collision chance ~ n * (L + 1) / 2^reduced_bits: size the
         // reduced universe from n so the design point tracks the key
         // count across rebuilds.
         const int bits = static_cast<int>(
             std::bit_width(std::max<uint64_t>(keys.size(), 1) * 6500));
         return std::make_unique<GrafiteRangeFilter>(keys, bits);
       }},
      {"memento", true,
       [](const std::vector<uint64_t>& keys) -> std::unique_ptr<RangeFilter> {
         if (keys.empty()) {
           // Online build from empty: each capacity doubling spends one
           // remainder bit (q+1 / r-1 keeps the stored fingerprint), so
           // provision headroom — r = 16 leaves ~0.4% FPR after seven
           // doublings instead of eroding to no filtering.
           return std::make_unique<MementoFilter>(/*q_bits=*/11,
                                                  /*r_bits=*/16);
         }
         auto f = std::make_unique<MementoFilter>(
             MementoFilter::ForCapacity(keys.size(), 0.01));
         for (uint64_t k : keys) f->AddKey(k);
         return f;
       }},
  };
}

struct ScenarioRow {
  std::string family;
  double bits_per_key = 0;
  double uncorr_fpr = 0;
  double corr_fpr = 0;
  double mixed_fpr = 0;
  double inter_fpr = 0;
  uint64_t inter_fn = 0;   // False negatives in the interleaved run: MUST be 0.
  uint64_t rebuilds = 0;   // Static rebuilds the interleaved run forced.
  double build_s = 0;      // Seconds spent building/rebuilding, interleaved.
  double query_mops = 0;   // Query throughput, uncorrelated scenario.
};

std::vector<ScenarioRow> g_rows;

struct FprResult {
  double fpr;
  double mops;
};

/// Empty-range FPR (and query rate) over `attempts` probes of length
/// `range_len`. Correlated starts begin one past a random stored key.
FprResult EmptyRangeFpr(const RangeFilter& f,
                        const std::vector<uint64_t>& keys,
                        const std::set<uint64_t>& key_set, uint64_t attempts,
                        uint64_t range_len, bool correlated, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  ranges.reserve(attempts);
  for (uint64_t i = 0; i < attempts; ++i) {
    const uint64_t lo =
        correlated ? keys[rng.NextBelow(keys.size())] + 1 : rng.Next();
    const uint64_t hi = lo + range_len - 1;
    if (hi < lo) continue;
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;  // Not empty; skip.
    ranges.emplace_back(lo, hi);
  }
  uint64_t fp = 0;
  const double t = Seconds([&] {
    for (const auto& [lo, hi] : ranges) fp += f.MayContainRange(lo, hi);
  });
  return {ranges.empty() ? 0.0 : static_cast<double>(fp) / ranges.size(),
          Mops(ranges.size(), t)};
}

/// Mixed stream: half point lookups, half length-64 ranges, all verified
/// empty, uniform starts.
double MixedStreamFpr(const RangeFilter& f,
                      const std::set<uint64_t>& key_set, uint64_t attempts,
                      uint64_t seed) {
  SplitMix64 rng(seed);
  uint64_t fp = 0;
  uint64_t total = 0;
  for (uint64_t i = 0; i < attempts; ++i) {
    const uint64_t lo = rng.Next();
    const uint64_t len = (i & 1) ? 1 : 64;
    const uint64_t hi = lo + len - 1;
    if (hi < lo) continue;
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;
    ++total;
    fp += len == 1 ? f.MayContain(lo) : f.MayContainRange(lo, hi);
  }
  return total == 0 ? 0.0 : static_cast<double>(fp) / total;
}

struct InterleavedResult {
  double fpr = 0;
  uint64_t false_negatives = 0;
  uint64_t rebuilds = 0;
  double build_s = 0;
};

/// Inserts arrive online with queries woven between them. The dynamic
/// family absorbs each insert in place; static families serve the filter
/// built at their last rebuild (every `rebuild_every` inserts) and are
/// only accountable for keys visible as of that rebuild. False negatives
/// are counted against the visible set and must be zero for everyone.
InterleavedResult InterleavedRun(const Family& family,
                                 const std::vector<uint64_t>& keys,
                                 uint64_t rebuild_every, uint64_t seed) {
  const auto ops = GenerateInterleavedRangeOps(
      keys, /*queries_per_insert=*/1.0, /*point_frac=*/0.5,
      /*range_len=*/64, ~uint64_t{0}, seed);
  InterleavedResult r;
  std::set<uint64_t> inserted;
  std::set<uint64_t> visible;
  std::unique_ptr<RangeFilter> filter;
  MementoFilter* memento = nullptr;
  if (family.dynamic) {
    r.build_s = Seconds([&] { filter = family.build({}); });
    memento = static_cast<MementoFilter*>(filter.get());
  }
  uint64_t since_rebuild = 0;
  uint64_t fp = 0;
  uint64_t empties = 0;
  for (const RangeOp& op : ops) {
    if (op.kind == RangeOp::Kind::kInsert) {
      inserted.insert(op.lo);
      if (family.dynamic) {
        memento->AddKey(op.lo);
        visible.insert(op.lo);
      } else if (++since_rebuild >= rebuild_every || !filter) {
        std::vector<uint64_t> sorted(inserted.begin(), inserted.end());
        r.build_s += Seconds([&] { filter = family.build(sorted); });
        visible = inserted;
        since_rebuild = 0;
        ++r.rebuilds;
      }
      continue;
    }
    const bool ans = op.kind == RangeOp::Kind::kPointQuery
                         ? filter->MayContain(op.lo)
                         : filter->MayContainRange(op.lo, op.hi);
    const auto it = visible.lower_bound(op.lo);
    if (it != visible.end() && *it <= op.hi) {
      r.false_negatives += !ans;
    } else {
      ++empties;
      fp += ans;
    }
  }
  r.fpr = empties == 0 ? 0.0 : static_cast<double>(fp) / empties;
  return r;
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"range\",\n  \"results\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const ScenarioRow& r = g_rows[i];
    std::fprintf(
        f,
        "    {\"family\": \"%s\", \"bits_per_key\": %.2f, "
        "\"uncorr_fpr\": %.5f, \"corr_fpr\": %.5f, \"mixed_fpr\": %.5f, "
        "\"inter_fpr\": %.5f, \"inter_false_negatives\": %llu, "
        "\"rebuilds\": %llu, \"build_s\": %.4f, \"query_mops\": %.3f}%s\n",
        r.family.c_str(), r.bits_per_key, r.uncorr_fpr, r.corr_fpr,
        r.mixed_fpr, r.inter_fpr,
        static_cast<unsigned long long>(r.inter_fn),
        static_cast<unsigned long long>(r.rebuilds), r.build_s, r.query_mops,
        i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  const uint64_t n = quick ? 50000 : 200000;
  const uint64_t attempts = quick ? 20000 : 50000;
  auto keys = GenerateDistinctKeys(n);
  // Interleaved inserts arrive in generation (random) order — feeding the
  // sorted vector would grow the key set as an ascending prefix of the
  // domain, a degenerate schedule that breaks learned models for reasons
  // that have nothing to do with being static.
  const std::vector<uint64_t> insert_order = keys;
  std::sort(keys.begin(), keys.end());
  const std::set<uint64_t> key_set(keys.begin(), keys.end());

  // (a) E7: FPR vs range length at a fixed space budget, with bits/key.
  std::printf("== E7: range filters ==\n\n");
  std::printf("(a) empty-range FPR vs range length (uniform starts)\n");
  struct NamedFilter {
    const char* name;
    std::unique_ptr<RangeFilter> filter;
  };
  std::vector<NamedFilter> wide;
  wide.push_back({"prefix-bloom", std::make_unique<PrefixBloomRangeFilter>(
                                      keys, 44, 16.0)});
  wide.push_back({"surf-real", std::make_unique<SurfFilter>(
                                   keys, SurfFilter::SuffixMode::kReal, 8)});
  wide.push_back({"rosetta",
                  std::make_unique<RosettaRangeFilter>(keys, 17, 17.0)});
  wide.push_back({"snarf", std::make_unique<SnarfRangeFilter>(keys, 12)});
  wide.push_back({"grafite",
                  std::make_unique<GrafiteRangeFilter>(keys, 42, 17)});
  std::printf("%-14s", "filter");
  for (int lg : {0, 4, 8, 12, 16}) std::printf("  len=2^%-3d", lg);
  std::printf("  bits/key\n");
  for (auto& nf : wide) {
    std::printf("%-14s", nf.name);
    for (int lg : {0, 4, 8, 12, 16}) {
      std::printf("  %8.4f",
                  EmptyRangeFpr(*nf.filter, keys, key_set, attempts,
                                uint64_t{1} << lg, false, 100 + lg)
                      .fpr);
    }
    std::printf("  %8.2f\n", static_cast<double>(nf.filter->SpaceBits()) / n);
  }
  wide.clear();

  // (b) E27: the scenario sweep at matched ~1% design points.
  std::printf("\n== E27: dynamic vs static scenario sweep (len-64 ranges, "
              "%llu keys) ==\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%-14s %9s %11s %11s %11s %11s %9s %9s %9s %9s\n", "family",
              "bits/key", "uncorr_fpr", "corr_fpr", "mixed_fpr", "inter_fpr",
              "inter_fn", "rebuilds", "build_s", "q_mops");
  const uint64_t rebuild_every = std::max<uint64_t>(n / 16, 1);
  for (const Family& family : ScenarioFamilies()) {
    ScenarioRow row;
    row.family = family.name;
    auto filter = family.build(keys);
    row.bits_per_key = static_cast<double>(filter->SpaceBits()) / n;
    const FprResult uncorr =
        EmptyRangeFpr(*filter, keys, key_set, attempts, 64, false, 200);
    row.uncorr_fpr = uncorr.fpr;
    row.query_mops = uncorr.mops;
    row.corr_fpr =
        EmptyRangeFpr(*filter, keys, key_set, attempts, 64, true, 201).fpr;
    row.mixed_fpr = MixedStreamFpr(*filter, key_set, attempts, 202);
    filter.reset();
    const InterleavedResult inter =
        InterleavedRun(family, insert_order, rebuild_every, 203);
    row.inter_fpr = inter.fpr;
    row.inter_fn = inter.false_negatives;
    row.rebuilds = inter.rebuilds;
    row.build_s = inter.build_s;
    g_rows.push_back(row);
    std::printf("%-14s %9.2f %11.5f %11.5f %11.5f %11.5f %9llu %9llu %9.3f "
                "%9.3f\n",
                row.family.c_str(), row.bits_per_key, row.uncorr_fpr,
                row.corr_fpr, row.mixed_fpr, row.inter_fpr,
                static_cast<unsigned long long>(row.inter_fn),
                static_cast<unsigned long long>(row.rebuilds), row.build_s,
                row.query_mops);
  }

  // (c) E7: adversarial keys — pairs sharing long prefixes.
  std::printf("\n(c) space under adversarial long-common-prefix keys\n");
  std::vector<uint64_t> adversarial;
  SplitMix64 rng(300);
  for (uint64_t i = 0; i < n / 2; ++i) {
    const uint64_t base = rng.Next() & ~LowMask(8);
    adversarial.push_back(base);
    adversarial.push_back(base | 1);
  }
  std::sort(adversarial.begin(), adversarial.end());
  adversarial.erase(std::unique(adversarial.begin(), adversarial.end()),
                    adversarial.end());
  SurfFilter surf_benign(keys, SurfFilter::SuffixMode::kBase, 0);
  SurfFilter surf_adv(adversarial, SurfFilter::SuffixMode::kBase, 0);
  GrafiteRangeFilter graf_benign(keys, 42, 17);
  GrafiteRangeFilter graf_adv(adversarial, 42, 17);
  std::printf("%-14s %16s %16s\n", "filter", "benign bits/key",
              "adversarial");
  std::printf("%-14s %16.2f %16.2f\n", "surf",
              static_cast<double>(surf_benign.SpaceBits()) / keys.size(),
              static_cast<double>(surf_adv.SpaceBits()) /
                  adversarial.size());
  std::printf("%-14s %16.2f %16.2f\n", "grafite",
              static_cast<double>(graf_benign.SpaceBits()) / keys.size(),
              static_cast<double>(graf_adv.SpaceBits()) /
                  adversarial.size());

  // (d) E7: ARF — trainable, workload-bound.
  std::printf("\n(d) ARF: empty-range FPR before/after training, then under "
              "a workload shift\n");
  {
    ArfRangeFilter arf(1 << 18);
    SplitMix64 arf_rng(400);
    // A *repeating* workload (ARF's sweet spot) plus a shifted one.
    auto make_workload = [&](uint64_t region_base) {
      std::vector<std::pair<uint64_t, uint64_t>> w;
      while (w.size() < 1000) {
        const uint64_t lo = region_base + (arf_rng.Next() >> 2);
        const uint64_t hi = lo + 255;
        if (hi < lo) continue;
        const auto it = key_set.lower_bound(lo);
        if (it != key_set.end() && *it <= hi) continue;  // Keep empty only.
        w.emplace_back(lo, hi);
      }
      return w;
    };
    const auto stable = make_workload(0);
    const auto moved = make_workload(uint64_t{3} << 62);
    auto run_phase = [&](const auto& workload, bool train) {
      uint64_t fp = 0;
      for (const auto& [lo, hi] : workload) {
        if (arf.MayContainRange(lo, hi)) {
          ++fp;
          if (train) arf.Train(lo, hi, true);
        }
      }
      return static_cast<double>(fp) / workload.size();
    };
    const double untrained = run_phase(stable, /*train=*/true);
    const double trained = run_phase(stable, /*train=*/false);
    const double shifted = run_phase(moved, /*train=*/false);
    std::printf("  untrained %.4f -> trained %.4f -> after workload shift "
                "%.4f   (%zu nodes)\n",
                untrained, trained, shifted, arf.num_nodes());
  }

  if (!json_path.empty()) WriteJson(json_path);

  // Acceptance gates (DESIGN.md §16): fail loudly if the dynamic-range
  // story regresses.
  int violations = 0;
  const double min_measurable = 1.0 / static_cast<double>(attempts);
  double worst_static_ratio = 0;
  for (const ScenarioRow& r : g_rows) {
    if (r.inter_fn != 0) {
      std::fprintf(stderr,
                   "GATE: %s returned %llu false negatives in the "
                   "interleaved run\n",
                   r.family.c_str(),
                   static_cast<unsigned long long>(r.inter_fn));
      ++violations;
    }
    if (r.family == "memento") {
      if (r.corr_fpr > 1.5 * 0.01) {
        std::fprintf(stderr,
                     "GATE: memento correlated FPR %.5f exceeds 1.5x the "
                     "configured 1%%\n",
                     r.corr_fpr);
        ++violations;
      }
    } else {
      worst_static_ratio =
          std::max(worst_static_ratio,
                   r.corr_fpr / std::max(r.uncorr_fpr, min_measurable));
    }
  }
  if (worst_static_ratio < 5.0) {
    std::fprintf(stderr,
                 "GATE: no static family degraded >= 5x under correlation "
                 "(worst %.1fx) — the negative control lost its teeth\n",
                 worst_static_ratio);
    ++violations;
  }
  if (violations != 0) {
    std::fprintf(stderr, "%d acceptance gate(s) violated\n", violations);
    return 1;
  }

  std::printf(
      "\nexpected shape (paper §2.5 / DESIGN.md §16): rosetta's FPR races\n"
      "to 1 as ranges grow; grafite/snarf flat into their design range;\n"
      "correlation breaks the trie families while grafite and memento hold\n"
      "their configured FPR; memento absorbs interleaved inserts with zero\n"
      "rebuilds where every static family pays repeated construction; surf's\n"
      "space explodes on adversarial keys; ARF converges on a repeating\n"
      "workload and relapses when it shifts.\n");
  return 0;
}
