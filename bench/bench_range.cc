// Experiment E7 (DESIGN.md §4): range filters (§2.5).
//
// Three paper claims, three tables:
//   (a) FPR vs range length at a fixed space budget — Rosetta is strong on
//       short ranges and degrades to no filtering; SNARF/Grafite stay flat
//       until their design range; SuRF sits in between.
//   (b) Correlated key/query workloads — Grafite's robustness; SuRF's
//       boundary weakness.
//   (c) Adversarial long-common-prefix keys — SuRF's space blows up,
//       Grafite's does not.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "range/arf.h"
#include "range/grafite.h"
#include "range/prefix_bloom_range.h"
#include "range/rosetta.h"
#include "range/snarf.h"
#include "range/surf.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace bbf;

namespace {

struct NamedFilter {
  const char* name;
  std::unique_ptr<RangeFilter> filter;
};

std::vector<NamedFilter> BuildAll(const std::vector<uint64_t>& sorted_keys) {
  std::vector<NamedFilter> filters;
  filters.push_back(
      {"prefix-bloom", std::make_unique<PrefixBloomRangeFilter>(
                           sorted_keys, 44, 16.0)});
  filters.push_back({"surf-real",
                     std::make_unique<SurfFilter>(
                         sorted_keys, SurfFilter::SuffixMode::kReal, 8)});
  filters.push_back(
      {"rosetta", std::make_unique<RosettaRangeFilter>(sorted_keys, 17,
                                                       17.0)});
  filters.push_back({"snarf", std::make_unique<SnarfRangeFilter>(
                                  sorted_keys, 12)});
  filters.push_back({"grafite", std::make_unique<GrafiteRangeFilter>(
                                    sorted_keys, 42, 17)});
  return filters;
}

double EmptyRangeFpr(const RangeFilter& f, const std::set<uint64_t>& keys,
                     uint64_t range_len, bool correlated, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<uint64_t> key_vec(keys.begin(), keys.end());
  uint64_t fp = 0;
  uint64_t total = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t lo;
    if (correlated) {
      lo = key_vec[rng.NextBelow(key_vec.size())] + 1;
    } else {
      lo = rng.Next();
    }
    const uint64_t hi = lo + range_len - 1;
    if (hi < lo) continue;
    const auto it = keys.lower_bound(lo);
    if (it != keys.end() && *it <= hi) continue;  // Not empty; skip.
    ++total;
    fp += f.MayContainRange(lo, hi);
  }
  return total == 0 ? 0.0 : static_cast<double>(fp) / total;
}

}  // namespace

int main() {
  std::printf("== E7: range filters ==\n\n");
  const uint64_t n = 200000;
  auto keys = GenerateDistinctKeys(n);
  std::sort(keys.begin(), keys.end());
  const std::set<uint64_t> key_set(keys.begin(), keys.end());
  auto filters = BuildAll(keys);

  // (a) FPR vs range length, uniform query starts.
  std::printf("(a) empty-range FPR vs range length (uniform starts)\n");
  std::printf("%-14s", "filter");
  for (int lg : {0, 4, 8, 12, 16}) std::printf("  len=2^%-3d", lg);
  std::printf("  bits/key\n");
  for (auto& nf : filters) {
    std::printf("%-14s", nf.name);
    for (int lg : {0, 4, 8, 12, 16}) {
      std::printf("  %8.4f",
                  EmptyRangeFpr(*nf.filter, key_set, uint64_t{1} << lg,
                                false, 100 + lg));
    }
    std::printf("  %8.2f\n",
                static_cast<double>(nf.filter->SpaceBits()) / n);
  }

  // (b) Correlated workloads.
  std::printf("\n(b) empty-range FPR under key/query correlation "
              "(len = 2^6)\n");
  std::printf("%-14s %12s %12s\n", "filter", "uniform", "correlated");
  for (auto& nf : filters) {
    std::printf("%-14s %12.4f %12.4f\n", nf.name,
                EmptyRangeFpr(*nf.filter, key_set, 64, false, 200),
                EmptyRangeFpr(*nf.filter, key_set, 64, true, 201));
  }

  // (c) Adversarial keys: pairs sharing long prefixes.
  std::printf("\n(c) space under adversarial long-common-prefix keys\n");
  std::vector<uint64_t> adversarial;
  SplitMix64 rng(300);
  for (uint64_t i = 0; i < n / 2; ++i) {
    const uint64_t base = rng.Next() & ~LowMask(8);
    adversarial.push_back(base);
    adversarial.push_back(base | 1);
  }
  std::sort(adversarial.begin(), adversarial.end());
  adversarial.erase(std::unique(adversarial.begin(), adversarial.end()),
                    adversarial.end());
  SurfFilter surf_benign(keys, SurfFilter::SuffixMode::kBase, 0);
  SurfFilter surf_adv(adversarial, SurfFilter::SuffixMode::kBase, 0);
  GrafiteRangeFilter graf_benign(keys, 42, 17);
  GrafiteRangeFilter graf_adv(adversarial, 42, 17);
  std::printf("%-14s %16s %16s\n", "filter", "benign bits/key",
              "adversarial");
  std::printf("%-14s %16.2f %16.2f\n", "surf",
              static_cast<double>(surf_benign.SpaceBits()) / keys.size(),
              static_cast<double>(surf_adv.SpaceBits()) /
                  adversarial.size());
  std::printf("%-14s %16.2f %16.2f\n", "grafite",
              static_cast<double>(graf_benign.SpaceBits()) / keys.size(),
              static_cast<double>(graf_adv.SpaceBits()) /
                  adversarial.size());

  // (d) ARF: trainable, workload-bound.
  std::printf("\n(d) ARF: empty-range FPR before/after training, then under "
              "a workload shift\n");
  {
    ArfRangeFilter arf(1 << 18);
    SplitMix64 rng(400);
    // A *repeating* workload (ARF's sweet spot) plus a shifted one.
    auto make_workload = [&](uint64_t region_base) {
      std::vector<std::pair<uint64_t, uint64_t>> w;
      while (w.size() < 1000) {
        const uint64_t lo = region_base + (rng.Next() >> 2);
        const uint64_t hi = lo + 255;
        if (hi < lo) continue;
        const auto it = key_set.lower_bound(lo);
        if (it != key_set.end() && *it <= hi) continue;  // Keep empty only.
        w.emplace_back(lo, hi);
      }
      return w;
    };
    const auto stable = make_workload(0);
    const auto moved = make_workload(uint64_t{3} << 62);
    auto run_phase = [&](const auto& workload, bool train) {
      uint64_t fp = 0;
      for (const auto& [lo, hi] : workload) {
        if (arf.MayContainRange(lo, hi)) {
          ++fp;
          if (train) arf.Train(lo, hi, true);
        }
      }
      return static_cast<double>(fp) / workload.size();
    };
    const double untrained = run_phase(stable, /*train=*/true);
    const double trained = run_phase(stable, /*train=*/false);
    const double shifted = run_phase(moved, /*train=*/false);
    std::printf("  untrained %.4f -> trained %.4f -> after workload shift "
                "%.4f   (%zu nodes)\n",
                untrained, trained, shifted, arf.num_nodes());
  }

  std::printf(
      "\nexpected shape (paper §2.5): rosetta's FPR races to 1 as ranges\n"
      "grow; grafite/snarf flat into their design range; grafite alone is\n"
      "unmoved by correlation; surf's space explodes on adversarial keys\n"
      "while grafite's does not; ARF converges on a repeating workload and\n"
      "relapses when the workload shifts.\n");
  return 0;
}
