#ifndef BBF_BENCH_BENCH_UTIL_H_
#define BBF_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harness (DESIGN.md §4). Each bench
// binary regenerates one experiment's table; EXPERIMENTS.md records the
// paper-claim vs measured comparison.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/filter.h"

namespace bbf::bench {

/// Measured false-positive rate of a point filter over `negatives`.
inline double MeasureFpr(const Filter& f,
                         const std::vector<uint64_t>& negatives) {
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  return static_cast<double>(fp) / negatives.size();
}

/// Wall-clock seconds of `fn()`.
template <typename Fn>
double Seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Million operations per second.
inline double Mops(uint64_t ops, double seconds) {
  return seconds <= 0 ? 0 : ops / seconds / 1e6;
}

}  // namespace bbf::bench

#endif  // BBF_BENCH_BENCH_UTIL_H_
