// Experiment E2 (DESIGN.md §4): false-positive-rate validation.
//
// Paper claim (§1): a membership query returns absent with probability
// >= 1 - eps for any non-member. We sweep the FPR target across every
// point-filter family and check measured vs configured, plus the
// load-factor dependence of the fingerprint filters.

#include <cstdio>

#include "bench_util.h"
#include "bloom/bloom_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/quotient_filter.h"
#include "staticf/ribbon_filter.h"
#include "staticf/xor_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

int main() {
  std::printf("== E2: measured FPR vs configured target ==\n\n");
  const uint64_t n = 1000000;
  const auto keys = GenerateDistinctKeys(n);
  const auto negatives = GenerateNegativeKeys(keys, 1000000);

  std::printf("%-10s", "target");
  for (const char* name : {"bloom", "quotient", "cuckoo", "xor", "ribbon"}) {
    std::printf(" %12s", name);
  }
  std::printf("\n");
  for (double target : {0.1, 0.01, 0.001, 0.0001}) {
    std::printf("%-10g", target);
    {
      BloomFilter f = BloomFilter::ForFpr(n, target);
      for (uint64_t k : keys) f.Insert(k);
      std::printf(" %12.5f", MeasureFpr(f, negatives));
    }
    {
      QuotientFilter f = QuotientFilter::ForCapacity(n, target);
      for (uint64_t k : keys) f.Insert(k);
      std::printf(" %12.5f", MeasureFpr(f, negatives));
    }
    {
      CuckooFilter f = CuckooFilter::ForFpr(n, target);
      for (uint64_t k : keys) f.Insert(k);
      std::printf(" %12.5f", MeasureFpr(f, negatives));
    }
    {
      XorFilter f = XorFilter::ForFpr(keys, target);
      std::printf(" %12.5f", MeasureFpr(f, negatives));
    }
    {
      RibbonFilter f = RibbonFilter::ForFpr(keys, target);
      std::printf(" %12.5f", MeasureFpr(f, negatives));
    }
    std::printf("\n");
  }

  // FPR of a quotient filter grows linearly with its load factor.
  std::printf("\nquotient-filter FPR vs load (r = 10 bits):\n");
  std::printf("  %-8s %12s\n", "load", "measured");
  QuotientFilter qf(21, 10);
  const auto load_keys = GenerateDistinctKeys(1u << 21, 91);
  size_t next = 0;
  for (double load : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const auto target_keys =
        static_cast<size_t>(load * (uint64_t{1} << 21));
    while (next < target_keys && next < load_keys.size()) {
      qf.Insert(load_keys[next++]);
    }
    std::printf("  %-8.2f %12.6f\n", qf.LoadFactor(),
                MeasureFpr(qf, negatives));
  }
  std::printf("\nexpected shape: measured tracks target within ~2x for all\n"
              "families; QF FPR scales ~linearly with load * 2^-r.\n");
  return 0;
}
