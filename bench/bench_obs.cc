// Experiment E22 (DESIGN.md §4, §11): instrumentation overhead. The
// observability budget is <= 5% on the batched lookup hot path — the
// path real deployments sit on — so this bench runs the bench_batch
// workload twice per family, once on the bare filter and once wrapped in
// obs::InstrumentedFilter, and reports the throughput delta.
//
// Usage: bench_obs [--quick] [--json=PATH]
//   --quick      only the in-cache size (1M keys); default also runs the
//                out-of-LLC size (16M keys) that the 5% gate is judged on.
//   --json=PATH  append machine-readable results (BENCH_obs.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bloom/bloom_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "obs/instrumented.h"
#include "quotient/quotient_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

struct Row {
  std::string filter;
  uint64_t n;
  std::string op;        // "insert" | "lookup"
  double raw_mops;
  double inst_mops;
  double overhead_pct;   // (raw - inst) / raw * 100.
};

std::vector<Row> g_rows;

void Record(const std::string& filter, uint64_t n, const std::string& op,
            double raw_mops, double inst_mops) {
  const double overhead =
      raw_mops > 0 ? (raw_mops - inst_mops) / raw_mops * 100.0 : 0.0;
  g_rows.push_back({filter, n, op, raw_mops, inst_mops, overhead});
  std::printf("  %-14s n=%-9llu %-7s raw %9.2f Mops   inst %9.2f Mops   "
              "overhead %+6.2f%%\n",
              filter.c_str(), static_cast<unsigned long long>(n), op.c_str(),
              raw_mops, inst_mops, overhead);
}

std::vector<uint64_t> MixedQueries(const std::vector<uint64_t>& keys,
                                   const std::vector<uint64_t>& negatives) {
  std::vector<uint64_t> q;
  q.reserve(keys.size() + negatives.size());
  for (size_t i = 0; i < keys.size() || i < negatives.size(); ++i) {
    if (i < keys.size()) q.push_back(keys[i]);
    if (i < negatives.size()) q.push_back(negatives[i]);
  }
  return q;
}

uint64_t BatchedLookup(const Filter& f, const std::vector<uint64_t>& queries,
                       uint8_t* out) {
  f.ContainsMany(queries, out);
  uint64_t hits = 0;
  for (size_t i = 0; i < queries.size(); ++i) hits += out[i];
  return hits;
}

/// Times batched insert + batched lookup on `make()`-built filters,
/// min-of-kReps each (strips co-tenant noise from both sides equally),
/// and returns {insert_mops, lookup_mops}. The built filter from the last
/// insert rep serves the lookups, so raw and instrumented runs probe
/// identically-shaped tables.
struct Throughput {
  double insert_mops;
  double lookup_mops;
};

Throughput RunOne(const std::function<std::unique_ptr<Filter>()>& make,
                  const std::vector<uint64_t>& keys,
                  const std::vector<uint64_t>& queries, uint64_t* hits_out) {
  constexpr int kInsertReps = 3;
  // The 5% lookup gate needs more noise suppression than a 3-rep min
  // gives on a shared machine; lookups are cheap enough to rerun.
  constexpr int kLookupReps = 5;
  std::unique_ptr<Filter> f;
  double t_insert = 1e30;
  for (int rep = 0; rep < kInsertReps; ++rep) {
    f = make();
    t_insert = std::min(t_insert, Seconds([&] { f->InsertMany(keys); }));
  }
  std::vector<uint8_t> out(queries.size());
  uint64_t hits = 0;
  double t_lookup = 1e30;
  for (int rep = 0; rep < kLookupReps; ++rep) {
    t_lookup = std::min(
        t_lookup, Seconds([&] { hits = BatchedLookup(*f, queries, out.data()); }));
  }
  *hits_out = hits;
  return {Mops(keys.size(), t_insert), Mops(queries.size(), t_lookup)};
}

void RunFamily(const std::string& name,
               const std::function<std::unique_ptr<Filter>()>& make,
               double epsilon, uint64_t n, const std::vector<uint64_t>& keys,
               const std::vector<uint64_t>& queries) {
  uint64_t hits_raw = 0;
  const Throughput raw = RunOne(make, keys, queries, &hits_raw);

  uint64_t hits_inst = 0;
  const Throughput inst = RunOne(
      [&make, epsilon]() -> std::unique_ptr<Filter> {
        return std::make_unique<obs::InstrumentedFilter>(make(), epsilon);
      },
      keys, queries, &hits_inst);

  // The decorator forwards every probe verbatim; a hit-count mismatch
  // means the instrumentation changed filter behaviour, not just speed.
  if (hits_raw != hits_inst) {
    std::fprintf(stderr, "FATAL: %s raw/instrumented hit mismatch (%llu vs %llu)\n",
                 name.c_str(), static_cast<unsigned long long>(hits_raw),
                 static_cast<unsigned long long>(hits_inst));
    std::exit(1);
  }

  Record(name, n, "insert", raw.insert_mops, inst.insert_mops);
  Record(name, n, "lookup", raw.lookup_mops, inst.lookup_mops);
}

void RunSize(uint64_t n) {
  std::printf("n = %llu keys (%s)\n", static_cast<unsigned long long>(n),
              n >= (uint64_t{1} << 24) ? "out-of-LLC" : "in-cache");
  const auto keys = GenerateDistinctKeys(n, 77);
  const auto negatives = GenerateNegativeKeys(keys, n, 78);
  const auto queries = MixedQueries(keys, negatives);

  RunFamily("blocked-bloom",
            [n] { return std::make_unique<BlockedBloomFilter>(n, 10.0); },
            /*epsilon=*/0.01, n, keys, queries);
  RunFamily("cuckoo", [n] { return std::make_unique<CuckooFilter>(n, 12); },
            /*epsilon=*/0.002, n, keys, queries);
  RunFamily("quotient",
            [n] {
              return std::make_unique<QuotientFilter>(
                  QuotientFilter::ForCapacity(n, 0.01));
            },
            /*epsilon=*/0.01, n, keys, queries);
  std::printf("\n");
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"obs\",\n  \"results\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"filter\": \"%s\", \"n\": %llu, \"op\": \"%s\", "
                 "\"raw_mops\": %.3f, \"instrumented_mops\": %.3f, "
                 "\"overhead_pct\": %.3f}%s\n",
                 r.filter.c_str(), static_cast<unsigned long long>(r.n),
                 r.op.c_str(), r.raw_mops, r.inst_mops, r.overhead_pct,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  RunSize(uint64_t{1} << 20);
  if (!quick) RunSize(uint64_t{1} << 24);
  if (!json_path.empty()) WriteJson(json_path);

  // The E22 gate: instrumented batched lookup within 5% of raw on the
  // largest blocked-bloom size run. Warn-only here — the committed
  // BENCH_obs.json is the record; CI machines are too noisy to gate hard.
  for (const Row& r : g_rows) {
    if (r.filter == "blocked-bloom" && r.op == "lookup" &&
        r.overhead_pct > 5.0) {
      std::fprintf(stderr,
                   "WARNING: blocked-bloom lookup overhead %.2f%% exceeds the "
                   "5%% budget (n=%llu)\n",
                   r.overhead_pct, static_cast<unsigned long long>(r.n));
    }
  }
  return 0;
}
