// Experiment E5 (DESIGN.md §4): adaptivity guarantees of §2.3.
//
// Paper claim: an adaptive filter sustains FPR <= eps on ANY sequence of
// negative queries — including adversarial repeats and skewed (Zipfian)
// streams — because it fixes each false positive once. A plain filter
// pays for the same false positive on every repeat.

#include <cstdio>

#include "adaptive/adaptive_quotient_filter.h"
#include "bench_util.h"
#include "cuckoo/adaptive_cuckoo_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/quotient_filter.h"
#include "workload/generators.h"
#include "workload/zipf.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

struct Tally {
  uint64_t fps = 0;
  uint64_t queries = 0;
  double rate() const {
    return queries == 0 ? 0 : static_cast<double>(fps) / queries;
  }
};

template <typename F>
Tally DriveZipf(F& filter, const std::vector<uint64_t>& hot, int rounds,
                bool report) {
  ZipfGenerator zipf(hot.size(), 1.1, 5);
  Tally t;
  for (int i = 0; i < rounds; ++i) {
    const uint64_t q = hot[zipf.Next()];
    ++t.queries;
    if (filter.Contains(q)) {
      ++t.fps;
      if (report) filter.ReportFalsePositive(q);
    }
  }
  return t;
}

}  // namespace

int main() {
  std::printf("== E5: adaptive filters under skewed/adversarial negatives ==\n\n");
  const uint64_t n = 200000;
  const auto keys = GenerateDistinctKeys(n);
  const auto hot = GenerateNegativeKeys(keys, 10000);
  const int kQueries = 1000000;

  // All filters ~13 bits/key-equivalent (r/f = 10).
  QuotientFilter plain_qf(18, 10);
  AdaptiveQuotientFilter aqf(18, 10);
  CuckooFilter plain_cf(n, 10);
  AdaptiveCuckooFilter acf(n, 10);
  for (uint64_t k : keys) {
    plain_qf.Insert(k);
    aqf.Insert(k);
    plain_cf.Insert(k);
    acf.Insert(k);
  }

  std::printf("1M Zipf(1.1) queries over 10k hot negatives:\n");
  std::printf("  %-22s %14s %12s\n", "filter", "false positives",
              "sustained fpr");
  {
    ZipfGenerator zipf(hot.size(), 1.1, 5);
    Tally t;
    for (int i = 0; i < kQueries; ++i) {
      ++t.queries;
      t.fps += plain_qf.Contains(hot[zipf.Next()]);
    }
    std::printf("  %-22s %14llu %12.6f\n", "quotient (plain)",
                static_cast<unsigned long long>(t.fps), t.rate());
  }
  {
    const Tally t = DriveZipf(aqf, hot, kQueries, /*report=*/true);
    std::printf("  %-22s %14llu %12.6f   (%llu adaptations)\n",
                "adaptive quotient", static_cast<unsigned long long>(t.fps),
                t.rate(), static_cast<unsigned long long>(aqf.adaptations()));
  }
  {
    ZipfGenerator zipf(hot.size(), 1.1, 5);
    Tally t;
    for (int i = 0; i < kQueries; ++i) {
      ++t.queries;
      t.fps += plain_cf.Contains(hot[zipf.Next()]);
    }
    std::printf("  %-22s %14llu %12.6f\n", "cuckoo (plain)",
                static_cast<unsigned long long>(t.fps), t.rate());
  }
  {
    const Tally t = DriveZipf(acf, hot, kQueries, /*report=*/true);
    std::printf("  %-22s %14llu %12.6f   (%llu adaptations)\n",
                "adaptive cuckoo", static_cast<unsigned long long>(t.fps),
                t.rate(), static_cast<unsigned long long>(acf.adaptations()));
  }

  // Adversarial: query ONLY known false positives, repeatedly.
  std::printf("\nadversarial repeat of discovered false positives (x100):\n");
  std::vector<uint64_t> fps_found;
  for (uint64_t q : hot) {
    if (plain_qf.Contains(q)) fps_found.push_back(q);
  }
  uint64_t plain_hits = 0;
  uint64_t adaptive_hits = 0;
  for (int round = 0; round < 100; ++round) {
    for (uint64_t q : fps_found) {
      plain_hits += plain_qf.Contains(q);
      if (aqf.Contains(q)) {
        ++adaptive_hits;
        aqf.ReportFalsePositive(q);
      }
    }
  }
  std::printf("  plain quotient : %llu false positives (every repeat pays)\n",
              static_cast<unsigned long long>(plain_hits));
  std::printf("  adaptive       : %llu (at most one per distinct query)\n",
              static_cast<unsigned long long>(adaptive_hits));
  std::printf("\nexpected shape (paper §2.3): the adaptive rows are bounded\n"
              "by one FP per distinct negative; plain rows scale with the\n"
              "query volume.\n");
  return 0;
}
