// Experiment E25 (DESIGN.md §4, §14): filter-as-a-service front end.
//
// What the network layer costs: batched lookup throughput through the
// full wire path (frame encode -> TCP loopback -> epoll loop ->
// ShardedFilter::ContainsMany -> response decode), swept over client
// connection count and per-frame batch size. The expectation mirrors
// the batch-probe story (E4): bigger batches amortize the fixed
// per-frame cost (syscalls, header validation, dispatch) over more
// keys, and QPS scales with event-loop threads until the filter or the
// loopback saturates.
//
// Usage: bench_net [--quick] [--json=PATH]
//   --quick      fewer keys per connection and a smaller sweep.
//   --json=PATH  machine-readable results (BENCH_net.json).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "apps/net/client.h"
#include "apps/net/server.h"
#include "bench_util.h"
#include "core/sharded_filter.h"
#include "quotient/quotient_filter.h"
#include "workload/generators.h"

using bbf::Filter;
using bbf::GenerateDistinctKeys;
using bbf::HashedKey;
using bbf::QuotientFilter;
using bbf::ShardedFilter;
using bbf::bench::Mops;
using bbf::bench::Seconds;
using bbf::net::FrameStatus;
using bbf::net::Server;
using bbf::net::ServerConfig;
using bbf::net::SyncClient;

namespace {

struct Row {
  int conns;
  size_t batch;
  double lookup_mops;    // Million key-lookups/s across all connections.
  double frames_per_ms;  // Request/response round trips per millisecond.
};

std::vector<Row> g_rows;

Row RunRow(uint16_t port, int conns, size_t batch, uint64_t keys_per_conn,
           const std::vector<uint64_t>& pool) {
  // Connect everything first so the timed region is pure request load.
  std::vector<std::unique_ptr<SyncClient>> clients;
  for (int c = 0; c < conns; ++c) {
    clients.push_back(std::make_unique<SyncClient>(SyncClient::ConnectTcp(port)));
    if (!clients.back()->ok()) {
      std::fprintf(stderr, "connect failed\n");
      std::exit(1);
    }
  }
  const uint64_t frames_per_conn = std::max<uint64_t>(keys_per_conn / batch, 1);
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  const double seconds = Seconds([&] {
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        SyncClient& client = *clients[c];
        std::vector<uint8_t> res;
        // Each connection walks the pool at its own offset so concurrent
        // frames hit different shards.
        size_t off = (c * 8191u) % pool.size();
        for (uint64_t f = 0; f < frames_per_conn; ++f) {
          if (off + batch > pool.size()) off = 0;
          if (client.Lookup(
                  std::span<const uint64_t>(pool.data() + off, batch),
                  &res) != FrameStatus::kOk) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          off += batch;
        }
      });
    }
    for (auto& t : threads) t.join();
  });
  if (failures.load() != 0) {
    std::fprintf(stderr, "lookup failures: %llu\n",
                 static_cast<unsigned long long>(failures.load()));
    std::exit(1);
  }
  const uint64_t total_keys = frames_per_conn * batch * conns;
  const uint64_t total_frames = frames_per_conn * conns;
  Row r;
  r.conns = conns;
  r.batch = batch;
  r.lookup_mops = Mops(total_keys, seconds);
  r.frames_per_ms = seconds > 0 ? total_frames / (seconds * 1e3) : 0.0;
  return r;
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"net\",\n  \"results\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"conns\": %d, \"batch\": %zu, "
                 "\"lookup_mops\": %.3f, \"frames_per_ms\": %.1f}%s\n",
                 r.conns, r.batch, r.lookup_mops, r.frames_per_ms,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 1;
    }
  }

  const uint64_t pool_size = 1 << 20;
  const uint64_t keys_per_conn = quick ? (1 << 17) : (1 << 21);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int loops = static_cast<int>(std::min(hw, 8u));

  ShardedFilter filter(pool_size, 16, [](uint64_t cap) {
    return std::unique_ptr<Filter>(std::make_unique<QuotientFilter>(
        QuotientFilter::ForCapacity(cap, 0.01)));
  });
  const auto pool = GenerateDistinctKeys(pool_size, 42);
  // Half the pool resident: lookups see an even hit/miss mix.
  std::vector<HashedKey> hashed;
  hashed.reserve(pool.size() / 2);
  for (size_t i = 0; i < pool.size() / 2; ++i) hashed.emplace_back(pool[i]);
  filter.InsertMany(hashed);

  ServerConfig config;
  config.num_threads = loops;
  Server server(&filter, config);
  if (!server.Listen(0) || !server.Start()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }

  std::printf("E25: wire front end, %d event-loop threads, pool %llu keys\n",
              loops, static_cast<unsigned long long>(pool_size));
  std::printf("%8s %8s %14s %14s\n", "conns", "batch", "Mkeys/s",
              "frames/ms");
  const std::vector<int> conn_sweep =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
  const std::vector<size_t> batch_sweep = quick
                                              ? std::vector<size_t>{16, 1024}
                                              : std::vector<size_t>{16, 256,
                                                                    4096};
  for (int conns : conn_sweep) {
    for (size_t batch : batch_sweep) {
      const Row r =
          RunRow(server.port(), conns, batch, keys_per_conn, pool);
      std::printf("%8d %8zu %14.3f %14.1f\n", r.conns, r.batch,
                  r.lookup_mops, r.frames_per_ms);
      g_rows.push_back(r);
    }
  }
  server.Shutdown();

  if (!json_path.empty()) WriteJson(json_path);
  return 0;
}
