// Experiment E9 (DESIGN.md §4): LSM-tree application (§3.1), plus the
// E24 lifecycle numbers (DESIGN.md §13).
//
// Paper claims: per-file filters let point lookups skip files; Monkey
// drops the expected negative-lookup cost from O(eps * #levels) to
// O(eps); range filters avert the I/O of empty range scans. The
// lifecycle section measures what the persistent manifest buys: opening
// a tree from committed filter snapshots vs. rebuilding the same tree by
// re-ingesting every key.
//
// Usage: bench_lsm [--quick] [--json=PATH]
//   --quick      smaller tree (200k keys; default 1M).
//   --json=PATH  machine-readable results (BENCH_lsm.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/lsm/lsm_tree.h"
#include "bench_util.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace bbf::lsm;
using bbf::bench::Mops;
using bbf::bench::Seconds;

namespace {

struct Row {
  std::string config;
  double neg_ios;    // Simulated data reads per negative point lookup.
  double pos_ios;    // ... per positive point lookup.
  double scan_ios;   // ... per (mostly empty) short range scan.
  double fpr;        // Measured point-lookup FPR across the whole tree.
  double neg_mops;   // Wall-clock negative-lookup throughput.
  double filter_mib;
  double w_amp;
};

struct LifecycleRow {
  std::string mode;  // "recovery" | "rebuild"
  uint64_t keys;
  double seconds;
};

std::vector<Row> g_rows;
std::vector<LifecycleRow> g_lifecycle;

void RunConfig(const char* name, const LsmOptions& options,
               const std::vector<uint64_t>& keys,
               const std::vector<uint64_t>& negatives) {
  LsmTree db(options);
  for (uint64_t k : keys) db.Put(k, k);

  db.ResetIo();
  uint64_t hits = 0;
  const double t_neg = Seconds([&] {
    for (uint64_t k : negatives) hits += db.Get(k).has_value();
  });
  const double neg_ios =
      static_cast<double>(db.io().data_reads) / negatives.size();
  // Every filter probe that passed on a negative key was a false
  // positive; `false_probes` counts exactly those across all runs.
  const double fpr = static_cast<double>(db.io().false_probes +
                                         db.io().quarantined_reads) /
                     negatives.size();
  if (hits != 0) {
    std::fprintf(stderr, "FATAL: %s returned values for negative keys\n",
                 name);
    std::exit(1);
  }

  db.ResetIo();
  for (size_t i = 0; i < 10000; ++i) db.Get(keys[i * 37 % keys.size()]);
  const double pos_ios = static_cast<double>(db.io().data_reads) / 10000;

  db.ResetIo();
  bbf::SplitMix64 rng(5);
  const int kScans = 3000;
  for (int i = 0; i < kScans; ++i) {
    const uint64_t lo = rng.Next();
    db.Scan(lo, lo + 255);
  }
  const double scan_ios = static_cast<double>(db.io().data_reads) / kScans;

  const Row row{name,
                neg_ios,
                pos_ios,
                scan_ios,
                fpr,
                Mops(negatives.size(), t_neg),
                db.TotalFilterBits() / 8.0 / (1 << 20),
                db.WriteAmplification()};
  g_rows.push_back(row);
  std::printf("%-26s | %8.4f | %8.4f | %8.4f | %8.5f | %8.2f | %9.2f | %6.1f\n",
              name, row.neg_ios, row.pos_ios, row.scan_ios, row.fpr,
              row.neg_mops, row.filter_mib, row.w_amp);
}

/// E24: persist a tree under mixed insert/flush/compact load, then time
/// LsmTree::Open (manifest + filter snapshots) against rebuilding the
/// same tree by re-ingesting every key (every filter reconstructed).
void RunLifecycle(const std::vector<uint64_t>& keys) {
  std::printf("\n== E24: recovery from manifest vs rebuild from keys ==\n\n");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bbf_bench_lsm").string();
  std::filesystem::remove_all(dir);

  LsmOptions o;
  o.memtable_entries = 4096;
  o.size_ratio = 4;
  o.point_bits_per_key = 10;
  o.range_filter = RangeFilterKind::kPrefixBloom;
  o.dir = dir;
  {
    auto db = LsmTree::Open(o);
    if (db == nullptr) {
      std::fprintf(stderr, "FATAL: cannot create %s\n", dir.c_str());
      std::exit(1);
    }
    const double t_ingest = Seconds([&] {
      for (uint64_t k : keys) db->Put(k, k);
    });
    std::printf("  ingest (persistent, %llu keys): %.3f s  (%.2f Mops, "
                "%llu generations)\n",
                static_cast<unsigned long long>(keys.size()), t_ingest,
                Mops(keys.size(), t_ingest),
                static_cast<unsigned long long>(db->generation()));
  }

  std::unique_ptr<LsmTree> recovered;
  const double t_recover = Seconds([&] { recovered = LsmTree::Open(o); });
  if (recovered == nullptr || recovered->TotalEntries() == 0) {
    std::fprintf(stderr, "FATAL: recovery failed\n");
    std::exit(1);
  }
  g_lifecycle.push_back({"recovery", keys.size(), t_recover});

  LsmOptions volatile_o = o;
  volatile_o.dir.clear();
  std::unique_ptr<LsmTree> rebuilt;
  const double t_rebuild = Seconds([&] {
    rebuilt = std::make_unique<LsmTree>(volatile_o);
    for (uint64_t k : keys) rebuilt->Put(k, k);
  });
  g_lifecycle.push_back({"rebuild", keys.size(), t_rebuild});

  std::printf("  open from manifest: %8.3f s   (filters loaded: snapshots)\n",
              t_recover);
  std::printf("  rebuild from keys:  %8.3f s   (filters reconstructed)\n",
              t_rebuild);
  std::printf("  speedup: %.1fx\n",
              t_recover > 0 ? t_rebuild / t_recover : 0.0);
  std::filesystem::remove_all(dir);
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"lsm\",\n  \"results\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"neg_ios\": %.4f, "
                 "\"pos_ios\": %.4f, \"scan_ios\": %.4f, \"fpr\": %.5f, "
                 "\"neg_mops\": %.3f, \"filter_mib\": %.2f, "
                 "\"write_amp\": %.2f}%s\n",
                 r.config.c_str(), r.neg_ios, r.pos_ios, r.scan_ios, r.fpr,
                 r.neg_mops, r.filter_mib, r.w_amp,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"lifecycle\": [\n");
  for (size_t i = 0; i < g_lifecycle.size(); ++i) {
    const LifecycleRow& r = g_lifecycle[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"keys\": %llu, "
                 "\"seconds\": %.4f}%s\n",
                 r.mode.c_str(), static_cast<unsigned long long>(r.keys),
                 r.seconds, i + 1 < g_lifecycle.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== E9: LSM point lookups and range scans (simulated I/O) ==\n\n");
  const uint64_t n = quick ? 200000 : 1000000;
  const auto keys = bbf::GenerateDistinctKeys(n, 3);
  const auto negatives = bbf::GenerateNegativeKeys(keys, n / 20, 4);

  LsmOptions base;
  base.memtable_entries = 2048;
  base.size_ratio = 4;
  base.point_bits_per_key = 8;

  std::printf("%-26s | %-8s | %-8s | %-8s | %-8s | %-8s | %-9s | %s\n",
              "config", "neg-get", "pos-get", "scan", "fpr", "neg-mops",
              "filterMiB", "w-amp");
  std::printf("%s\n", std::string(108, '-').c_str());

  {
    LsmOptions o = base;
    o.point_filter = PointFilterKind::kNone;
    o.memtable_filter = MemtableFilterKind::kNone;
    RunConfig("no filters", o, keys, negatives);
  }
  RunConfig("bloom uniform", base, keys, negatives);
  {
    LsmOptions o = base;
    o.allocation = FilterAllocation::kMonkey;
    RunConfig("bloom monkey", o, keys, negatives);
  }
  {
    LsmOptions o = base;
    o.point_filter = PointFilterKind::kXor;
    RunConfig("xor uniform", o, keys, negatives);
  }
  {
    LsmOptions o = base;
    o.point_filter = PointFilterKind::kRibbon;
    RunConfig("ribbon uniform", o, keys, negatives);
  }
  {
    LsmOptions o = base;
    o.point_filter = PointFilterKind::kQuotient;
    RunConfig("quotient uniform", o, keys, negatives);
  }
  {
    LsmOptions o = base;
    o.tiering = true;
    RunConfig("bloom tiered", o, keys, negatives);
  }
  {
    LsmOptions o = base;
    o.range_filter = RangeFilterKind::kGrafite;
    RunConfig("bloom + grafite", o, keys, negatives);
  }
  {
    LsmOptions o = base;
    o.range_filter = RangeFilterKind::kSurf;
    RunConfig("bloom + surf", o, keys, negatives);
  }
  {
    LsmOptions o = base;
    o.range_filter = RangeFilterKind::kSnarf;
    RunConfig("bloom + snarf", o, keys, negatives);
  }

  std::printf(
      "\nexpected shape (paper §3.1/[32]): uniform bloom leaves ~eps*levels\n"
      "I/Os per negative get; monkey ~eps; tiering trades lookup cost for\n"
      "write-amp; range filters collapse the empty-scan column.\n");

  RunLifecycle(keys);

  if (!json_path.empty()) WriteJson(json_path);
  return 0;
}
