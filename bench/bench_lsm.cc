// Experiment E9 (DESIGN.md §4): LSM-tree application (§3.1).
//
// Paper claims: per-file filters let point lookups skip files; Monkey
// drops the expected negative-lookup cost from O(eps * #levels) to
// O(eps); range filters avert the I/O of empty range scans.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/lsm/lsm_tree.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace bbf::lsm;

namespace {

struct Row {
  const char* name;
  LsmOptions options;
};

void Run(const Row& row, const std::vector<uint64_t>& keys,
         const std::vector<uint64_t>& negatives) {
  LsmTree db(row.options);
  for (uint64_t k : keys) db.Put(k, k);
  db.ResetIo();
  for (uint64_t k : negatives) db.Get(k);
  const double neg_ios =
      static_cast<double>(db.io().data_reads) / negatives.size();
  db.ResetIo();
  for (size_t i = 0; i < 10000; ++i) db.Get(keys[i * 37 % keys.size()]);
  const double pos_ios = static_cast<double>(db.io().data_reads) / 10000;
  db.ResetIo();
  bbf::SplitMix64 rng(5);
  const int kScans = 3000;
  for (int i = 0; i < kScans; ++i) {
    const uint64_t lo = rng.Next();
    db.Scan(lo, lo + 255);
  }
  const double scan_ios = static_cast<double>(db.io().data_reads) / kScans;
  std::printf("%-26s | %8.4f | %8.4f | %8.4f | %9.2f | %6.1f\n", row.name,
              neg_ios, pos_ios, scan_ios,
              db.TotalFilterBits() / 8.0 / (1 << 20),
              db.WriteAmplification());
}

}  // namespace

int main() {
  std::printf("== E9: LSM point lookups and range scans (simulated I/O) ==\n\n");
  const auto keys = bbf::GenerateDistinctKeys(1000000, 3);
  const auto negatives = bbf::GenerateNegativeKeys(keys, 50000, 4);

  LsmOptions base;
  base.memtable_entries = 2048;
  base.size_ratio = 4;
  base.point_bits_per_key = 8;

  std::vector<Row> rows;
  {
    Row r{"no filters", base};
    r.options.point_filter = PointFilterKind::kNone;
    rows.push_back(r);
  }
  {
    Row r{"bloom uniform", base};
    rows.push_back(r);
  }
  {
    Row r{"bloom monkey", base};
    r.options.allocation = FilterAllocation::kMonkey;
    rows.push_back(r);
  }
  {
    Row r{"xor uniform", base};
    r.options.point_filter = PointFilterKind::kXor;
    rows.push_back(r);
  }
  {
    Row r{"ribbon uniform", base};
    r.options.point_filter = PointFilterKind::kRibbon;
    rows.push_back(r);
  }
  {
    Row r{"quotient uniform", base};
    r.options.point_filter = PointFilterKind::kQuotient;
    rows.push_back(r);
  }
  {
    Row r{"bloom tiered", base};
    r.options.tiering = true;
    rows.push_back(r);
  }
  {
    Row r{"bloom + grafite", base};
    r.options.range_filter = RangeFilterKind::kGrafite;
    rows.push_back(r);
  }
  {
    Row r{"bloom + surf", base};
    r.options.range_filter = RangeFilterKind::kSurf;
    rows.push_back(r);
  }
  {
    Row r{"bloom + snarf", base};
    r.options.range_filter = RangeFilterKind::kSnarf;
    rows.push_back(r);
  }

  std::printf("%-26s | %-8s | %-8s | %-8s | %-9s | %s\n", "config",
              "neg-get", "pos-get", "scan", "filterMiB", "w-amp");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (const Row& r : rows) Run(r, keys, negatives);

  std::printf(
      "\nexpected shape (paper §3.1/[32]): uniform bloom leaves ~eps*levels\n"
      "I/Os per negative get; monkey ~eps; tiering trades lookup cost for\n"
      "write-amp; range filters collapse the empty-scan column.\n");
  return 0;
}
