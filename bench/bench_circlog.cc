// Experiment E14 (DESIGN.md §4): the circular-log storage engine (§3.1).
//
// Paper claim: circular logs need an in-memory maplet with updates,
// deletes, expansion, high performance, and a low false-positive rate —
// "no system that we are aware of uses maplets that meet these
// requirements". We measure (a) how maplet FPR becomes wasted page reads
// and (b) the cost of growing by in-place fingerprint expansion versus
// rebuild-from-log.

#include <cstdio>

#include "apps/lsm/circular_log.h"
#include "workload/generators.h"

using namespace bbf::lsm;

int main() {
  std::printf("== E14: circular-log KV store ==\n\n");
  const auto keys = bbf::GenerateDistinctKeys(400000, 71);
  const auto ghosts = bbf::GenerateNegativeKeys(keys, 100000, 72);

  // (a) Maplet noise -> wasted reads, as a function of fingerprint width.
  std::printf("(a) lookup noise vs maplet fingerprint bits (400k keys)\n");
  std::printf("  %-6s %16s %16s %14s\n", "bits", "neg-get reads",
              "wasted / query", "maplet MiB");
  for (int f : {6, 8, 10, 12, 14}) {
    CircularLog::Options o;
    o.fingerprint_bits = f;
    o.initial_q_bits = 19;  // Pre-sized: isolates FPR from expansion loss.
    CircularLog db(o);
    for (uint64_t k : keys) db.Put(k, k);
    db.ResetIo();
    for (uint64_t g : ghosts) db.Get(g);
    std::printf("  %-6d %16llu %16.4f %14.2f\n", f,
                static_cast<unsigned long long>(db.io().data_reads),
                static_cast<double>(db.io().data_reads) / ghosts.size(),
                db.MapletBits() / 8.0 / (1 << 20));
  }

  // (b) Growth strategies.
  std::printf("\n(b) growth: in-place maplet expansion vs rebuild-from-log\n");
  std::printf("  %-16s %14s %12s %12s %14s\n", "strategy", "total reads",
              "expansions", "rebuilds", "wasted probes");
  for (auto strategy : {CircularLog::ExpandStrategy::kExpandMaplet,
                        CircularLog::ExpandStrategy::kRebuildFromLog}) {
    CircularLog::Options o;
    o.expand = strategy;
    o.fingerprint_bits = 14;
    o.initial_q_bits = 12;
    CircularLog db(o);
    for (uint64_t k : keys) db.Put(k, k);
    std::printf("  %-16s %14llu %12d %12llu %14llu\n",
                strategy == CircularLog::ExpandStrategy::kExpandMaplet
                    ? "expand"
                    : "rebuild",
                static_cast<unsigned long long>(db.io().data_reads),
                db.maplet_expansions(),
                static_cast<unsigned long long>(db.rebuilds()),
                static_cast<unsigned long long>(db.io().false_probes));
  }
  std::printf(
      "\nexpected shape (paper §2.2/§3.1): expansion costs no data I/O but\n"
      "each doubling sheds one fingerprint bit (more wasted probes);\n"
      "rebuilds keep fingerprints full at the price of rescanning the log\n"
      "on every growth step.\n");
  return 0;
}
