// Experiment E13 (DESIGN.md §4): filters in computational biology (§3.2).
//
// Paper claims: a Bloom de Bruijn graph keeps its large-scale structure
// until FPR >= ~0.15 [Pell]; eliminating the critical false positives
// yields an exact navigational representation [Chikhi & Rizk]; replacing
// the exact table with a cascading Bloom filter shrinks it further
// [Salikhov]; the CQF counts skewed k-mer multisets compactly [Squeakr].

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "apps/bio/debruijn.h"
#include "apps/bio/kmer.h"
#include "apps/bio/kmer_counter.h"
#include "workload/generators.h"

using namespace bbf::bio;

namespace {

double PhantomEdgeRate(const DeBruijnGraph& g,
                       const std::vector<uint64_t>& kmers,
                       const std::unordered_set<uint64_t>& truth) {
  uint64_t phantom = 0;
  uint64_t edges = 0;
  size_t i = 0;
  for (uint64_t km : kmers) {
    for (uint64_t nb : g.RightNeighbors(km)) {
      ++edges;
      phantom += !truth.contains(nb);
    }
    if (++i >= 20000) break;
  }
  return edges == 0 ? 0 : static_cast<double>(phantom) / edges;
}

}  // namespace

int main() {
  std::printf("== E13: de Bruijn graphs and k-mer counting ==\n\n");
  const int k = 21;
  const std::string genome = bbf::GenerateDna(2000000, 0.3, 17);
  const auto all = ExtractKmers(genome, k);
  std::unordered_map<uint64_t, uint64_t> counts;
  for (uint64_t km : all) ++counts[km];
  std::vector<uint64_t> kmers;
  kmers.reserve(counts.size());
  for (const auto& [km, c] : counts) kmers.push_back(km);
  const std::unordered_set<uint64_t> truth(kmers.begin(), kmers.end());
  std::printf("genome %zu bp -> %zu distinct canonical %d-mers\n\n",
              genome.size(), kmers.size(), k);

  // (a) Phantom-edge rate of the probabilistic dBG vs Bloom budget.
  std::printf("(a) Pell-style probabilistic dBG: phantom edges vs FPR\n");
  std::printf("  %-10s %12s %14s\n", "bits/kmer", "bloom fpr", "phantom edges");
  for (double bpk : {2.0, 4.0, 6.0, 10.0}) {
    DeBruijnGraph g(kmers, k, DeBruijnGraph::Mode::kProbabilistic, bpk);
    // Estimate the raw Bloom FPR on random non-kmers.
    const auto ghosts = bbf::GenerateDistinctKeys(50000, 99);
    uint64_t fp = 0;
    uint64_t total = 0;
    for (uint64_t g2 : ghosts) {
      const uint64_t candidate = g2 & ((uint64_t{1} << (2 * k)) - 1);
      if (truth.contains(Canonical(candidate, k))) continue;
      ++total;
      fp += g.HasNode(Canonical(candidate, k));
    }
    std::printf("  %-10.1f %12.4f %14.4f\n", bpk,
                static_cast<double>(fp) / total,
                PhantomEdgeRate(g, kmers, truth));
  }

  // (b) The three representations at a fixed budget.
  std::printf("\n(b) representations at 8 bits/kmer\n");
  std::printf("  %-24s %14s %14s %12s\n", "mode", "phantom edges",
              "bits/kmer", "cFP entries");
  DeBruijnGraph prob(kmers, k, DeBruijnGraph::Mode::kProbabilistic, 8.0);
  DeBruijnGraph exact(kmers, k, DeBruijnGraph::Mode::kExactTable, 8.0);
  DeBruijnGraph cascade(kmers, k, DeBruijnGraph::Mode::kCascading, 8.0);
  std::printf("  %-24s %14.5f %14.2f %12s\n", "probabilistic",
              PhantomEdgeRate(prob, kmers, truth),
              static_cast<double>(prob.SpaceBits()) / kmers.size(), "-");
  std::printf("  %-24s %14.5f %14.2f %12zu\n", "exact cFP table",
              PhantomEdgeRate(exact, kmers, truth),
              static_cast<double>(exact.SpaceBits()) / kmers.size(),
              exact.critical_fp_count());
  std::printf("  %-24s %14.5f %14.2f %12s\n", "cascading bloom",
              PhantomEdgeRate(cascade, kmers, truth),
              static_cast<double>(cascade.SpaceBits()) / kmers.size(), "-");

  // (c) Squeakr-style counting.
  std::printf("\n(c) CQF k-mer counting (Squeakr)\n");
  KmerCounter counter(k, kmers.size() * 105 / 100);
  counter.AddSequence(genome);
  uint64_t exact_counts = 0;
  for (const auto& [km, c] : counts) {
    exact_counts += counter.CountPacked(km) == c;
  }
  std::printf("  exact counts: %.2f%%; space %.2f bits per distinct k-mer; "
              "load %.2f\n",
              100.0 * exact_counts / counts.size(),
              static_cast<double>(counter.SpaceBits()) / counts.size(),
              counter.LoadFactor());

  std::printf(
      "\nexpected shape (paper §3.2): phantom edges vanish in the exact and\n"
      "cascading modes; the cascading variant is smaller than the exact\n"
      "table; counting stays ~exact despite repeat-induced skew.\n");
  return 0;
}
