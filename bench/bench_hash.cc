// Experiment E21 (DESIGN.md §4, §10): what the hash-once key pipeline
// buys. Two angles:
//
//  * primitives — per-key hashing cost of the old pipeline (one routing
//    hash in the sharding layer plus an independent re-hash inside the
//    family) vs the new one (one canonical Mix64 at the boundary, with
//    families deriving streams via a single widening multiply each);
//  * end-to-end sharded lookups — the layer the refactor targeted: the
//    legacy double-hash route/probe emulation vs ShardedFilter's scalar
//    hash-once path vs its batched path (hash once into scratch, group by
//    shard, prefetch, probe).
//
// Usage: bench_hash [--quick] [--json=PATH]
//   --quick      only the in-cache size (1M keys); default also runs the
//                out-of-LLC size (8M keys).
//   --json=PATH  write machine-readable results (BENCH_hash.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bloom/bloom_filter.h"
#include "core/key.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "util/hash.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

constexpr int kReps = 3;
constexpr size_t kShards = 16;

struct Row {
  std::string section;  // "primitive" | "sharded-lookup"
  std::string name;
  uint64_t n;
  double mops;
  double speedup;  // vs the section's baseline row at the same n.
};

std::vector<Row> g_rows;

void Record(const std::string& section, const std::string& name, uint64_t n,
            double mops, double baseline_mops) {
  const double speedup = baseline_mops > 0 ? mops / baseline_mops : 0.0;
  g_rows.push_back({section, name, n, mops, speedup});
  std::printf("  %-14s %-22s n=%-9llu %9.2f Mops   %5.2fx\n", section.c_str(),
              name.c_str(), static_cast<unsigned long long>(n), mops, speedup);
}

/// Best-of-kReps wall time of `fn` (min strips co-tenant noise).
template <typename Fn>
double BestSeconds(Fn&& fn) {
  double t = 1e30;
  for (int rep = 0; rep < kReps; ++rep) t = std::min(t, Seconds(fn));
  return t;
}

// ---- Part A: per-key hashing primitives. The accumulator is consumed
// after timing so the hash loops cannot be dead-code-eliminated.

void RunPrimitives(const std::vector<uint64_t>& keys) {
  const uint64_t n = keys.size();
  uint64_t acc = 0;

  // Legacy pipeline: one seeded routing hash (the old ShardedFilter's
  // Hash64(key, 0x5A4D)) plus the family's own full re-mix of the raw
  // key — two finalizer-strength mixes per op.
  const double t_legacy = BestSeconds([&] {
    for (uint64_t k : keys) acc ^= Hash64(k, 0x5A4D) ^ Mix64(k);
  });
  const double legacy_mops = Mops(n, t_legacy);
  Record("primitive", "legacy-route+rehash", n, legacy_mops, legacy_mops);

  // Hash-once boundary: the single canonical mix every layer shares.
  const double t_mix = BestSeconds([&] {
    for (uint64_t k : keys) acc ^= HashedKey(k).value();
  });
  Record("primitive", "hash-once-boundary", n, Mops(n, t_mix), legacy_mops);

  // Boundary mix plus a Kirsch–Mitzenmacher h1/h2 stream pair — the full
  // per-key hashing a Bloom probe needs under the new pipeline.
  const double t_derive = BestSeconds([&] {
    for (uint64_t k : keys) {
      const HashedKey hk(k);
      acc ^= hk.Derive(0) ^ hk.Derive(1);
    }
  });
  Record("primitive", "hash-once+derive-pair", n, Mops(n, t_derive),
         legacy_mops);

  // String boundary: 16-byte keys hashed once at entry.
  std::vector<std::string> strs;
  strs.reserve(n);
  for (uint64_t k : keys) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(k));
    strs.emplace_back(buf, 16);
  }
  const double t_str = BestSeconds([&] {
    for (const std::string& s : strs) {
      acc ^= HashedKey(std::string_view(s)).value();
    }
  });
  Record("primitive", "string-boundary-16B", n, Mops(n, t_str), legacy_mops);

  if (acc == 42) std::printf("# unlikely\n");  // Consume the accumulator.
}

// ---- Part B: end-to-end sharded lookups.

std::vector<uint64_t> MixedQueries(const std::vector<uint64_t>& keys,
                                   const std::vector<uint64_t>& negatives) {
  std::vector<uint64_t> q;
  q.reserve(keys.size() + negatives.size());
  for (size_t i = 0; i < keys.size() || i < negatives.size(); ++i) {
    if (i < keys.size()) q.push_back(keys[i]);
    if (i < negatives.size()) q.push_back(negatives[i]);
  }
  return q;
}

using ShardFactory = std::function<std::unique_ptr<Filter>(uint64_t)>;

/// A bare sharded lookup structure: the routing layer re-implemented in
/// the bench over a plain shard array, with no serving-layer locks. All
/// three pipelines below run on this same structure, so the comparison
/// isolates hashing and batching — the per-shard lock economics of the
/// real ShardedFilter are E20's subject (`bench_concurrent`), not E21's.
struct BareSharded {
  BareSharded(uint64_t capacity, const ShardFactory& make) {
    shards.reserve(kShards);
    for (size_t s = 0; s < kShards; ++s) {
      shards.push_back(make(capacity / kShards + 1));
    }
  }

  // The pre-refactor pipeline: a dedicated seeded routing hash picks the
  // shard, then the family re-mixes the raw key. Two mixes per op.
  bool LegacyContains(uint64_t key) const {
    return shards[Hash64(key, 0x5A4D) % kShards]->Contains(key);
  }

  // The hash-once pipeline, scalar: one boundary mix; the router slices
  // value() and the family derives its streams from the same HashedKey.
  bool Contains(HashedKey key) const {
    return shards[key.value() % kShards]->Contains(key);
  }

  std::vector<std::unique_ptr<Filter>> shards;
};

/// The hash-once batched pipeline (what ShardedFilter::ContainsMany does
/// under its locks): mix every key once into scratch, group by shard,
/// then hand each shard one contiguous sub-batch for its prefetch
/// pipeline, scattering results back by original index.
struct BatchScratch {
  std::vector<std::vector<HashedKey>> grouped{kShards};
  std::vector<std::vector<size_t>> index{kShards};
  std::vector<uint8_t> shard_out;

  uint64_t Lookup(const BareSharded& f, std::span<const uint64_t> keys,
                  size_t batch, uint8_t* out) {
    for (size_t base = 0; base < keys.size(); base += batch) {
      const size_t m = std::min(batch, keys.size() - base);
      for (size_t s = 0; s < kShards; ++s) {
        grouped[s].clear();
        index[s].clear();
      }
      for (size_t i = 0; i < m; ++i) {
        const HashedKey hk(keys[base + i]);  // The one mix per key.
        const size_t s = hk.value() % kShards;
        grouped[s].push_back(hk);
        index[s].push_back(base + i);
      }
      for (size_t s = 0; s < kShards; ++s) {
        if (grouped[s].empty()) continue;
        shard_out.resize(grouped[s].size());
        f.shards[s]->ContainsMany(grouped[s], shard_out.data());
        for (size_t i = 0; i < index[s].size(); ++i) {
          out[index[s][i]] = shard_out[i];
        }
      }
    }
    uint64_t hits = 0;
    for (size_t i = 0; i < keys.size(); ++i) hits += out[i];
    return hits;
  }
};

void RunShardedFamily(const std::string& family, const ShardFactory& make,
                      uint64_t n, const std::vector<uint64_t>& keys,
                      const std::vector<uint64_t>& queries) {
  // Two filter states: one populated through legacy routing, one through
  // hash-once routing, so each pipeline queries the placement it built.
  BareSharded legacy(n, make);
  for (uint64_t k : keys) {
    legacy.shards[Hash64(k, 0x5A4D) % kShards]->Insert(k);
  }
  BareSharded current(n, make);
  for (uint64_t k : keys) {
    const HashedKey hk(k);
    current.shards[hk.value() % kShards]->Insert(hk);
  }

  uint64_t hits_legacy = 0;
  const double t_legacy = BestSeconds([&] {
    hits_legacy = 0;
    for (uint64_t k : queries) hits_legacy += legacy.LegacyContains(k);
  });
  const double legacy_mops = Mops(queries.size(), t_legacy);
  Record(family, "legacy-double-hash", n, legacy_mops, legacy_mops);

  uint64_t hits_scalar = 0;
  const double t_scalar = BestSeconds([&] {
    hits_scalar = 0;
    for (uint64_t k : queries) hits_scalar += current.Contains(HashedKey(k));
  });
  Record(family, "hash-once-scalar", n, Mops(queries.size(), t_scalar),
         legacy_mops);

  std::vector<uint8_t> out(queries.size());
  BatchScratch scratch;
  uint64_t hits_batch = 0;
  const double t_batch128 = BestSeconds(
      [&] { hits_batch = scratch.Lookup(current, queries, 128, out.data()); });
  Record(family, "hash-once-batch128", n, Mops(queries.size(), t_batch128),
         legacy_mops);
  const double t_batchfull = BestSeconds([&] {
    hits_batch = scratch.Lookup(current, queries, queries.size(), out.data());
  });
  Record(family, "hash-once-batchfull", n, Mops(queries.size(), t_batchfull),
         legacy_mops);

  // Routing differs between the two pipelines, so shard membership (and
  // hence which negatives false-positive) differs — but no pipeline may
  // lose a key: every positive query must hit in every mode, and the
  // batched path must agree with the scalar path bit for bit.
  if (hits_legacy < keys.size() || hits_scalar < keys.size() ||
      hits_batch != hits_scalar) {
    std::fprintf(stderr, "FATAL: %s hit-count invariant broken\n",
                 family.c_str());
    std::exit(1);
  }
}

void RunSize(uint64_t n) {
  std::printf("n = %llu keys (%s)\n", static_cast<unsigned long long>(n),
              n >= (uint64_t{1} << 23) ? "out-of-LLC" : "in-cache");
  const auto keys = GenerateDistinctKeys(n, 91);
  const auto negatives = GenerateNegativeKeys(keys, n, 92);
  const auto queries = MixedQueries(keys, negatives);

  RunPrimitives(keys);
  RunShardedFamily("sharded-blbloom",
                   [](uint64_t cap) -> std::unique_ptr<Filter> {
                     return std::make_unique<BlockedBloomFilter>(cap, 10.0);
                   },
                   n, keys, queries);
  RunShardedFamily("sharded-cuckoo",
                   [](uint64_t cap) -> std::unique_ptr<Filter> {
                     return std::make_unique<CuckooFilter>(cap, 12);
                   },
                   n, keys, queries);
  std::printf("\n");
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"hash\",\n  \"results\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"mode\": \"%s\", \"n\": %llu, "
                 "\"mops\": %.3f, \"speedup\": %.3f}%s\n",
                 r.section.c_str(), r.name.c_str(),
                 static_cast<unsigned long long>(r.n), r.mops, r.speedup,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  RunSize(uint64_t{1} << 20);
  if (!quick) RunSize(uint64_t{1} << 23);
  if (!json_path.empty()) WriteJson(json_path);
  return 0;
}
