// Experiment E8 (DESIGN.md §4): maplets (§2.4).
//
// Paper claims: fingerprint maplets (quotient/cuckoo) have PRS = 1 + eps
// and NRS = eps, support dynamic updates, and can expand; the Bloomier
// filter has PRS = NRS = 1 but is static. We measure result sizes, space,
// and exercise value updates.

#include <cstdio>
#include <utility>
#include <vector>

#include "maplet/maplet.h"
#include "util/random.h"
#include "workload/generators.h"

using namespace bbf;

int main() {
  std::printf("== E8: maplets — result sizes and space ==\n\n");
  // n chosen so power-of-two maplet tables sit near full load.
  const uint64_t n = 900000;
  const int value_bits = 8;
  const auto keys = GenerateDistinctKeys(n);
  const auto absent = GenerateNegativeKeys(keys, 200000);
  SplitMix64 rng(12);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(n);
  for (uint64_t k : keys) entries.emplace_back(k, rng.NextBelow(256));

  std::printf("%-18s %10s %10s %12s %10s\n", "maplet", "PRS", "NRS",
              "bits/key", "dynamic");

  {
    auto m = MakeQuotientMaplet(n, 1.0 / 256, value_bits);
    for (const auto& [k, v] : entries) m->Insert(k, v);
    const ResultSizes s = MeasureResultSizes(*m, keys, absent);
    std::printf("%-18s %10.4f %10.4f %12.2f %10s\n", "quotient", s.prs,
                s.nrs, static_cast<double>(m->SpaceBits()) / n, "yes");
  }
  {
    auto m = MakeCuckooMaplet(n, 8, value_bits);
    for (const auto& [k, v] : entries) m->Insert(k, v);
    const ResultSizes s = MeasureResultSizes(*m, keys, absent);
    std::printf("%-18s %10.4f %10.4f %12.2f %10s\n", "cuckoo", s.prs, s.nrs,
                static_cast<double>(m->SpaceBits()) / n, "yes");
  }
  {
    auto m = MakeBloomierMaplet(entries, value_bits);
    const ResultSizes s = MeasureResultSizes(*m, keys, absent);
    std::printf("%-18s %10.4f %10.4f %12.2f %10s\n", "bloomier", s.prs,
                s.nrs, static_cast<double>(m->SpaceBits()) / n,
                "values only");
  }

  // Dynamic churn: the quotient maplet absorbs deletes + reinserts.
  {
    auto m = MakeQuotientMaplet(n, 1.0 / 256, value_bits);
    for (const auto& [k, v] : entries) m->Insert(k, v);
    uint64_t ok = 0;
    for (size_t i = 0; i < 100000; ++i) {
      ok += m->Erase(entries[i].first, entries[i].second);
      ok += m->Insert(entries[i].first, (entries[i].second + 1) & 0xFF);
    }
    std::printf("\nquotient maplet churn: %llu/200000 update ops succeeded\n",
                static_cast<unsigned long long>(ok));
  }

  std::printf("\nexpected shape (paper §2.4): PRS ~ 1.004 and NRS ~ 0.004 at\n"
              "eps = 2^-8 for the fingerprint maplets; bloomier pins both at\n"
              "exactly 1 and refuses new keys.\n");
  return 0;
}
