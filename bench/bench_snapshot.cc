// Experiment E19 (DESIGN.md §4): snapshot save/load throughput vs
// rebuild-from-keys. The snapshot layer (DESIGN.md §8) exists so a
// restarting process can mmap/stream a checksummed frame instead of
// re-hashing every key: loading is a sequential read + checksum, while
// rebuilding repays one random cache line (or more) per key. This bench
// measures both paths per family and the blob size the frame costs.
//
// Usage: bench_snapshot [--quick]
//   --quick  200k keys (default 2M).

#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/factory.h"
#include "core/filter_io.h"
#include "core/sharded_filter.h"
#include "staticf/xor_filter.h"
#include "util/random.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

struct Row {
  std::string filter;
  double build_s;
  double save_s;
  double load_s;
  size_t blob_bytes;
};

void Print(const Row& r, uint64_t n) {
  std::printf("  %-14s build %7.1f ms   save %6.1f ms (%6.1f MB/s)   "
              "load %6.1f ms (%6.1f MB/s)   %5.2fx vs rebuild   "
              "%5.1f MiB\n",
              r.filter.c_str(), r.build_s * 1e3, r.save_s * 1e3,
              r.blob_bytes / r.save_s / 1e6, r.load_s * 1e3,
              r.blob_bytes / r.load_s / 1e6,
              r.load_s > 0 ? r.build_s / r.load_s : 0.0,
              r.blob_bytes / 1048576.0);
  (void)n;
}

std::vector<uint64_t> MakeKeys(uint64_t n) {
  SplitMix64 rng(0x5EED);
  std::vector<uint64_t> keys(n);
  for (uint64_t& k : keys) k = rng.Next();
  return keys;
}

/// Dynamic families: rebuild = construct + InsertMany; load = framed
/// snapshot through the factory (core/filter_io.h).
void BenchDynamic(std::string_view tag, const std::vector<uint64_t>& keys) {
  Row r{std::string(tag), 0, 0, 0, 0};
  std::unique_ptr<Filter> built;
  r.build_s = Seconds([&] {
    built = CreateFilterForTag(tag, keys.size());
    built->InsertMany(keys);
  });

  std::string blob;
  r.save_s = Seconds([&] {
    std::ostringstream ss;
    built->Save(ss);
    blob = std::move(ss).str();
  });
  r.blob_bytes = blob.size();

  std::unique_ptr<Filter> loaded;
  r.load_s = Seconds([&] {
    std::istringstream is(blob);
    loaded = LoadFilterSnapshot(is);
  });
  if (!loaded || loaded->NumKeys() != built->NumKeys()) {
    std::printf("  %-14s LOAD MISMATCH\n", r.filter.c_str());
    return;
  }
  Print(r, keys.size());
}

/// Static families: rebuild = the peeling/solving construction itself.
void BenchXor(const std::vector<uint64_t>& keys) {
  Row r{"xor", 0, 0, 0, 0};
  std::unique_ptr<Filter> built;
  r.build_s =
      Seconds([&] { built = std::make_unique<XorFilter>(keys, 12); });
  std::string blob;
  r.save_s = Seconds([&] {
    std::ostringstream ss;
    built->Save(ss);
    blob = std::move(ss).str();
  });
  r.blob_bytes = blob.size();
  std::unique_ptr<Filter> loaded;
  r.load_s = Seconds([&] {
    std::istringstream is(blob);
    loaded = LoadFilterSnapshot(is);
  });
  if (!loaded || loaded->NumKeys() != built->NumKeys()) {
    std::printf("  %-14s LOAD MISMATCH\n", r.filter.c_str());
    return;
  }
  Print(r, keys.size());
}

void BenchSharded(const std::vector<uint64_t>& keys) {
  Row r{"sharded(16)", 0, 0, 0, 0};
  std::unique_ptr<ShardedFilter> built;
  r.build_s = Seconds([&] {
    built = std::make_unique<ShardedFilter>(
        keys.size(), 16,
        [](uint64_t cap) { return CreateFilter("blocked-bloom", cap, 0.01); });
    built->InsertMany(keys);
  });
  std::string blob;
  r.save_s = Seconds([&] {
    std::ostringstream ss;
    built->Save(ss);
    blob = std::move(ss).str();
  });
  r.blob_bytes = blob.size();
  std::unique_ptr<Filter> loaded;
  r.load_s = Seconds([&] {
    std::istringstream is(blob);
    loaded = LoadFilterSnapshot(is);
  });
  if (!loaded || loaded->NumKeys() != built->NumKeys()) {
    std::printf("  %-14s LOAD MISMATCH\n", r.filter.c_str());
    return;
  }
  Print(r, keys.size());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t n = 2000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) n = 200000;
  }
  const std::vector<uint64_t> keys = MakeKeys(n);
  std::printf("E19 snapshot: save/load vs rebuild, n=%llu keys\n\n",
              static_cast<unsigned long long>(n));
  for (std::string_view tag :
       {"bloom", "blocked-bloom", "quotient", "cuckoo", "taffy"}) {
    BenchDynamic(tag, keys);
  }
  BenchXor(keys);
  BenchSharded(keys);
  std::printf("\n(load MB/s is framed-stream parse incl. checksum; "
              "'x vs rebuild' = build time / load time)\n");
  return 0;
}
