// Experiment E20 (DESIGN.md §4): the serving layer under thread scaling —
// ShardedFilter (cuckoo inner, chain policy) driven by 1/2/4/8 worker
// threads in scalar and batch mode, for both inserts and lookups. Where
// E16 (bench_concurrency) compares sharding against a global lock on a
// mixed workload, this experiment measures the serving layer's pure
// insert and lookup rates per mode, so the batch-vs-scalar gap and the
// thread-scaling curve land in one table.
//
// Usage: bench_concurrent [--quick] [--json=PATH]
//   --quick      256k keys instead of 1M (CI smoke run).
//   --json=PATH  write machine-readable results (BENCH_concurrent.json).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

constexpr size_t kBatch = 128;  // Sub-batch for the pipelined modes.

struct Row {
  int threads;
  uint64_t n;
  std::string op;    // "insert" | "lookup"
  std::string mode;  // "scalar" | "batch"
  double mops;
  double speedup;  // vs the 1-thread scalar row of the same op.
};

std::vector<Row> g_rows;

void Record(int threads, uint64_t n, const std::string& op,
            const std::string& mode, double mops, double base_mops) {
  const double speedup = base_mops > 0 ? mops / base_mops : 0.0;
  g_rows.push_back({threads, n, op, mode, mops, speedup});
  std::printf("  threads=%d n=%-9llu %-7s %-7s %9.2f Mops   %5.2fx\n",
              threads, static_cast<unsigned long long>(n), op.c_str(),
              mode.c_str(), mops, speedup);
}

std::unique_ptr<ShardedFilter> MakeFilter(uint64_t n) {
  // 16 shards: enough lock striping for 8 threads; chain policy keeps the
  // bench honest if a shard saturates early.
  return std::make_unique<ShardedFilter>(
      n, 16, [](uint64_t cap) -> std::unique_ptr<Filter> {
        return std::make_unique<CuckooFilter>(cap, 12);
      });
}

// Splits `keys` into `threads` contiguous chunks and times all threads
// completing `fn(chunk, tid)`.
template <typename Fn>
double DriveChunks(const std::vector<uint64_t>& keys, int threads, Fn fn) {
  return Seconds([&] {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t per = keys.size() / threads;
    for (int t = 0; t < threads; ++t) {
      const size_t begin = t * per;
      const size_t end = t + 1 == threads ? keys.size() : begin + per;
      workers.emplace_back(
          [&fn, &keys, begin, end, t] { fn(&keys[begin], end - begin, t); });
    }
    for (auto& w : workers) w.join();
  });
}

void RunThreads(uint64_t n, int threads, const std::vector<uint64_t>& keys,
                const std::vector<uint64_t>& queries, double base[2]) {
  constexpr int kReps = 3;

  // Insert, scalar: every thread loops Insert over its chunk.
  double t_ins_scalar = 1e30;
  std::unique_ptr<ShardedFilter> built;
  for (int rep = 0; rep < kReps; ++rep) {
    built = MakeFilter(n);
    ShardedFilter& f = *built;
    t_ins_scalar = std::min(
        t_ins_scalar,
        DriveChunks(keys, threads,
                    [&f](const uint64_t* chunk, size_t len, int) {
                      for (size_t i = 0; i < len; ++i) f.Insert(chunk[i]);
                    }));
  }
  const double ins_scalar = Mops(keys.size(), t_ins_scalar);
  if (threads == 1) base[0] = ins_scalar;
  Record(threads, n, "insert", "scalar", ins_scalar, base[0]);

  // Insert, batch: InsertMany over kBatch-key sub-batches (one shard-lock
  // acquisition per shard per sub-batch instead of per key).
  double t_ins_batch = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    auto f = MakeFilter(n);
    t_ins_batch = std::min(
        t_ins_batch,
        DriveChunks(keys, threads,
                    [&f](const uint64_t* chunk, size_t len, int) {
                      for (size_t base_i = 0; base_i < len; base_i += kBatch) {
                        const size_t m = std::min(kBatch, len - base_i);
                        f->InsertMany({chunk + base_i, m});
                      }
                    }));
  }
  Record(threads, n, "insert", "batch", Mops(keys.size(), t_ins_batch),
         base[0]);

  // Lookups run against the scalar-built filter.
  const ShardedFilter& f = *built;
  double t_lk_scalar = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    t_lk_scalar = std::min(
        t_lk_scalar,
        DriveChunks(queries, threads,
                    [&f](const uint64_t* chunk, size_t len, int) {
                      uint64_t hits = 0;
                      for (size_t i = 0; i < len; ++i) {
                        hits += f.Contains(chunk[i]);
                      }
                      if (hits == ~uint64_t{0}) std::printf("!");
                    }));
  }
  const double lk_scalar = Mops(queries.size(), t_lk_scalar);
  if (threads == 1) base[1] = lk_scalar;
  Record(threads, n, "lookup", "scalar", lk_scalar, base[1]);

  double t_lk_batch = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    t_lk_batch = std::min(
        t_lk_batch,
        DriveChunks(queries, threads,
                    [&f](const uint64_t* chunk, size_t len, int) {
                      std::vector<uint8_t> out(kBatch);
                      for (size_t base_i = 0; base_i < len; base_i += kBatch) {
                        const size_t m = std::min(kBatch, len - base_i);
                        f.ContainsMany({chunk + base_i, m}, out.data());
                      }
                    }));
  }
  Record(threads, n, "lookup", "batch", Mops(queries.size(), t_lk_batch),
         base[1]);
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"concurrent\",\n  \"results\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(
        f,
        "    {\"filter\": \"sharded-cuckoo\", \"threads\": %d, \"n\": %llu, "
        "\"op\": \"%s\", \"mode\": \"%s\", \"mops\": %.3f, "
        "\"speedup\": %.3f}%s\n",
        r.threads, static_cast<unsigned long long>(r.n), r.op.c_str(),
        r.mode.c_str(), r.mops, r.speedup,
        i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  const uint64_t n = quick ? (uint64_t{1} << 18) : (uint64_t{1} << 20);
  std::printf("sharded(cuckoo) n = %llu keys, 16 shards\n",
              static_cast<unsigned long long>(n));
  const auto keys = GenerateDistinctKeys(n, 79);
  const auto negatives = GenerateNegativeKeys(keys, n, 80);
  std::vector<uint64_t> queries;
  queries.reserve(2 * n);
  for (size_t i = 0; i < keys.size(); ++i) {
    queries.push_back(keys[i]);
    queries.push_back(negatives[i]);
  }
  double base[2] = {0.0, 0.0};
  for (int threads : {1, 2, 4, 8}) {
    RunThreads(n, threads, keys, queries, base);
  }
  if (!json_path.empty()) WriteJson(json_path);
  return 0;
}
