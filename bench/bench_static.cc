// Experiment E10 (DESIGN.md §4): static filters (§2.7).
//
// Paper claims: static filters approach n lg(1/eps) bits, are "reasonably
// fast to build and very fast to query", and the ribbon's query times
// "remain slower than the fast competing filters". We report build time,
// query time, and space for Bloom/XOR/Ribbon at 1M and 10M keys.

#include <cstdio>

#include "bench_util.h"
#include "bloom/bloom_filter.h"
#include "staticf/ribbon_filter.h"
#include "staticf/xor_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

template <typename F>
double QueryMops(const F& f, const std::vector<uint64_t>& queries) {
  uint64_t sink = 0;
  const double secs = Seconds([&] {
    for (uint64_t q : queries) sink += f.Contains(q);
  });
  // Keep the compiler honest.
  if (sink == 0xDEADBEEF) std::printf("!");
  return Mops(queries.size(), secs);
}

void RunSize(uint64_t n) {
  const auto keys = GenerateDistinctKeys(n);
  const auto negatives = GenerateNegativeKeys(keys, 1000000);
  std::printf("n = %llu (fingerprints sized for eps ~ 2^-10)\n",
              static_cast<unsigned long long>(n));
  std::printf("  %-10s %12s %12s %12s %12s\n", "filter", "build s",
              "query Mops", "bits/key", "fpr");

  {
    BloomFilter f(n, 14.4);
    const double build = Seconds([&] {
      for (uint64_t k : keys) f.Insert(k);
    });
    std::printf("  %-10s %12.3f %12.1f %12.2f %12.6f\n", "bloom", build,
                QueryMops(f, negatives), f.BitsPerKey(),
                MeasureFpr(f, negatives));
  }
  {
    const XorFilter f(keys, 10);
    const double build = Seconds([&] { XorFilter rebuilt(keys, 10); });
    std::printf("  %-10s %12.3f %12.1f %12.2f %12.6f\n", "xor", build,
                QueryMops(f, negatives), f.BitsPerKey(),
                MeasureFpr(f, negatives));
  }
  {
    const RibbonFilter f(keys, 10);
    const double build = Seconds([&] { RibbonFilter rebuilt(keys, 10); });
    std::printf("  %-10s %12.3f %12.1f %12.2f %12.6f\n", "ribbon", build,
                QueryMops(f, negatives), f.BitsPerKey(),
                MeasureFpr(f, negatives));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== E10: static filters — build/query/space ==\n\n");
  RunSize(1000000);
  RunSize(10000000);
  std::printf(
      "expected shape (paper §2.7): ribbon has the least space (closest to\n"
      "n lg 1/eps) but the slowest queries; xor in between; bloom pays the\n"
      "1.44x space factor with competitive queries.\n");
  return 0;
}
