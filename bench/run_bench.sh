#!/usr/bin/env bash
# Builds and runs the batch-throughput experiment, emitting BENCH_batch.json
# at the repo root so successive PRs accumulate a perf trajectory.
#
# Usage: bench/run_bench.sh [--quick] [BUILD_DIR]
#   --quick    1M-key size only (skips the ~16M-key out-of-LLC runs).
#   BUILD_DIR  existing CMake build tree (default: build).
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=""
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target bench_batch -j "$(nproc)" >/dev/null

"$BUILD_DIR"/bench/bench_batch $QUICK --json=BENCH_batch.json
