#!/usr/bin/env bash
# Builds and runs the throughput experiments, emitting BENCH_batch.json,
# BENCH_concurrent.json, BENCH_hash.json, BENCH_obs.json, BENCH_lsm.json,
# BENCH_net.json, BENCH_tuner.json, and BENCH_range.json at the repo root
# so successive PRs accumulate a perf trajectory.
#
# Usage: bench/run_bench.sh [--quick] [BUILD_DIR]
#   --quick    smaller key counts (skips the out-of-LLC batch runs and
#              shrinks the concurrent run).
#   BUILD_DIR  existing CMake build tree (default: build).
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=""
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target bench_batch bench_concurrent bench_hash \
  bench_obs bench_lsm bench_net bench_tuner bench_range -j "$(nproc)" \
  >/dev/null

"$BUILD_DIR"/bench/bench_batch $QUICK --json=BENCH_batch.json
"$BUILD_DIR"/bench/bench_concurrent $QUICK --json=BENCH_concurrent.json
"$BUILD_DIR"/bench/bench_hash $QUICK --json=BENCH_hash.json
"$BUILD_DIR"/bench/bench_obs $QUICK --json=BENCH_obs.json
"$BUILD_DIR"/bench/bench_lsm $QUICK --json=BENCH_lsm.json
"$BUILD_DIR"/bench/bench_net $QUICK --json=BENCH_net.json
"$BUILD_DIR"/bench/bench_tuner $QUICK --json=BENCH_tuner.json
"$BUILD_DIR"/bench/bench_range $QUICK --json=BENCH_range.json
