// Experiment E4 (DESIGN.md §4): the three expansion strategies of §2.2.
//
// Paper claims: chaining keeps the FPR but the query cost grows with the
// chain; bit sacrifice keeps query cost but the FPR doubles per doubling
// and eventually saturates; Taffy/InfiniFilter keeps both in check (FPR
// grows only linearly in the number of doublings).

#include <cstdio>

#include "bench_util.h"
#include "bloom/scalable_bloom.h"
#include "expandable/chained_filter.h"
#include "expandable/ring_filter.h"
#include "expandable/taffy_filter.h"
#include "quotient/expanding_quotient_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

int main() {
  std::printf("== E4: expansion strategies (start 2^14 keys, double x8) ==\n\n");
  const uint64_t max_keys = 1u << 22;
  const auto keys = GenerateDistinctKeys(max_keys);
  const auto negatives = GenerateNegativeKeys(keys, 200000);

  ExpandingQuotientFilter sacrifice(15, 16);
  TaffyFilter taffy(15, 16);
  ChainedQuotientFilter chained(15, 13);  // ~16 bits/key incl. metadata.
  ScalableBloomFilter scalable(1u << 14, 1.0 / 4096);
  RingFilter ring(16, 1u << 15);

  std::printf("%-10s | %-22s | %-22s | %-26s | %-22s | %-20s\n", "keys",
              "bit-sacrifice fpr", "taffy fpr(exp)",
              "chained-qf fpr(links)", "scalable-bloom fpr(links)",
              "ring fpr(segments)");
  size_t idx = 0;
  for (uint64_t target = 1u << 14; target <= max_keys; target <<= 1) {
    while (idx < target) {
      const uint64_t k = keys[idx++];
      sacrifice.Insert(k);
      taffy.Insert(k);
      chained.Insert(k);
      scalable.Insert(k);
      ring.Insert(k);
    }
    std::printf("%-10llu | %20.6f   | %12.6f (%2d)     | %14.6f (%2zu links) | "
                "%12.6f (%2zu) | %12.6f (%3zu)\n",
                static_cast<unsigned long long>(target),
                MeasureFpr(sacrifice, negatives), MeasureFpr(taffy, negatives),
                taffy.expansions(), MeasureFpr(chained, negatives),
                chained.chain_length(), MeasureFpr(scalable, negatives),
                scalable.chain_length(), MeasureFpr(ring, negatives),
                ring.num_segments());
  }

  std::printf("\nspace at the end (bits/key): sacrifice %.2f, taffy %.2f, "
              "chained-qf %.2f, scalable-bloom %.2f, ring %.2f\n",
              sacrifice.BitsPerKey(), taffy.BitsPerKey(),
              chained.BitsPerKey(), scalable.BitsPerKey(),
              ring.BitsPerKey());
  std::printf(
      "\nexpected shape (paper §2.2): sacrifice FPR ~doubles per row and is\n"
      "orders of magnitude above taffy by the end; taffy grows ~linearly in\n"
      "expansions; chains hold FPR but pay one probe per link per query;\n"
      "the hash ring keeps full fingerprints but every op pays an ordered\n"
      "ring search (the logarithmic cost the paper notes).\n");
  return 0;
}
