// Experiment E3b (DESIGN.md §4): batched (prefetch-pipelined) vs scalar
// probes across the filter hierarchy. Paper claim (§1.1): filter probes
// are cache-miss-bound, and real deployments (LSM compaction, join
// pre-filters, k-mer lookup) query keys in batches — hashing a batch up
// front, prefetching every target cache line, then probing hides DRAM
// latency that the traditional one-key-at-a-time loop eats per query.
//
// Usage: bench_batch [--quick] [--json=PATH]
//   --quick      only the in-cache size (1M keys); default also runs the
//                out-of-LLC size (16M keys).
//   --json=PATH  append machine-readable results (BENCH_batch.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bloom/bloom_filter.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/quotient_filter.h"
#include "simd/dispatch.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

struct Row {
  std::string filter;
  uint64_t n;
  std::string op;      // "insert" | "lookup"
  std::string mode;    // "scalar" | "batch" | "batch8" | "batch32" | ...
  double mops;
  double speedup;      // vs the scalar row of the same (filter, n, op).
};

std::vector<Row> g_rows;

void Record(const std::string& filter, uint64_t n, const std::string& op,
            const std::string& mode, double mops, double scalar_mops) {
  const double speedup = scalar_mops > 0 ? mops / scalar_mops : 0.0;
  g_rows.push_back({filter, n, op, mode, mops, speedup});
  std::printf("  %-14s n=%-9llu %-7s %-8s %9.2f Mops   %5.2fx\n",
              filter.c_str(), static_cast<unsigned long long>(n), op.c_str(),
              mode.c_str(), mops, speedup);
}

/// Mixed positive/negative query stream: realistic for join pre-filters
/// and LSM point reads, and exercises both the hit and miss probe paths.
std::vector<uint64_t> MixedQueries(const std::vector<uint64_t>& keys,
                                   const std::vector<uint64_t>& negatives) {
  std::vector<uint64_t> q;
  q.reserve(keys.size() + negatives.size());
  for (size_t i = 0; i < keys.size() || i < negatives.size(); ++i) {
    if (i < keys.size()) q.push_back(keys[i]);
    if (i < negatives.size()) q.push_back(negatives[i]);
  }
  return q;
}

uint64_t ScalarLookup(const Filter& f, const std::vector<uint64_t>& queries) {
  uint64_t hits = 0;
  for (uint64_t k : queries) hits += f.Contains(k);
  return hits;
}

/// Calls ContainsMany over consecutive sub-batches of `batch` keys — the
/// two-pass pipelined pattern a caller with a bounded reorder window uses.
uint64_t BatchedLookup(const Filter& f, const std::vector<uint64_t>& queries,
                       size_t batch, uint8_t* out) {
  for (size_t base = 0; base < queries.size(); base += batch) {
    const size_t n = std::min(batch, queries.size() - base);
    f.ContainsMany({queries.data() + base, n}, out + base);
  }
  uint64_t hits = 0;
  for (size_t i = 0; i < queries.size(); ++i) hits += out[i];
  return hits;
}

void RunFamily(const std::string& name,
               const std::function<std::unique_ptr<Filter>()>& make,
               uint64_t n, const std::vector<uint64_t>& keys,
               const std::vector<uint64_t>& queries) {
  // Insert: scalar loop vs one InsertMany over the whole key set. Like the
  // lookups below, each mode is timed kReps times on a fresh filter and the
  // best run kept (min-time strips co-tenant cache contention on this
  // shared machine from both sides of the comparison equally).
  constexpr int kReps = 3;
  std::unique_ptr<Filter> scalar_f;
  double t_ins_scalar = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    scalar_f = make();
    t_ins_scalar = std::min(
        t_ins_scalar,
        Seconds([&] { for (uint64_t k : keys) scalar_f->Insert(k); }));
  }
  const double ins_scalar = Mops(keys.size(), t_ins_scalar);
  Record(name, n, "insert", "scalar", ins_scalar, ins_scalar);

  double t_ins_batch = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    auto batch_f = make();
    t_ins_batch =
        std::min(t_ins_batch, Seconds([&] { batch_f->InsertMany(keys); }));
  }
  Record(name, n, "insert", "batch", Mops(keys.size(), t_ins_batch),
         ins_scalar);

  // Lookup on the scalar-built filter (identical state either way for the
  // Bloom variants; for fingerprint filters the batch-built one differs
  // only in kick order). Each mode is timed kLookupReps times and the best
  // run kept.
  constexpr int kLookupReps = kReps;
  const Filter& f = *scalar_f;
  uint64_t hits_scalar = 0;
  double t_scalar = 1e30;
  for (int rep = 0; rep < kLookupReps; ++rep) {
    t_scalar = std::min(
        t_scalar, Seconds([&] { hits_scalar = ScalarLookup(f, queries); }));
  }
  const double scalar_mops = Mops(queries.size(), t_scalar);
  Record(name, n, "lookup", "scalar", scalar_mops, scalar_mops);

  std::vector<uint8_t> out(queries.size());
  uint64_t hits_batch = 0;
  double t_batch = 1e30;
  for (int rep = 0; rep < kLookupReps; ++rep) {
    t_batch = std::min(t_batch, Seconds([&] {
      hits_batch = BatchedLookup(f, queries, queries.size(), out.data());
    }));
  }
  Record(name, n, "lookup", "batch", Mops(queries.size(), t_batch),
         scalar_mops);
  if (hits_batch != hits_scalar) {
    std::fprintf(stderr, "FATAL: %s batch/scalar hit mismatch (%llu vs %llu)\n",
                 name.c_str(), static_cast<unsigned long long>(hits_batch),
                 static_cast<unsigned long long>(hits_scalar));
    std::exit(1);
  }

  // Pipeline-depth sweep: how big must the caller's batch be?
  for (size_t b : {size_t{8}, size_t{32}, size_t{128}}) {
    uint64_t hits = 0;
    double t = 1e30;
    for (int rep = 0; rep < kLookupReps; ++rep) {
      t = std::min(t,
                   Seconds([&] { hits = BatchedLookup(f, queries, b, out.data()); }));
    }
    if (hits != hits_scalar) {
      std::fprintf(stderr, "FATAL: %s batch%zu hit mismatch\n", name.c_str(),
                   b);
      std::exit(1);
    }
    Record(name, n, "lookup", "batch" + std::to_string(b),
           Mops(queries.size(), t), scalar_mops);
  }
}

void RunSize(uint64_t n) {
  std::printf("n = %llu keys (%s)\n", static_cast<unsigned long long>(n),
              n >= (uint64_t{1} << 24) ? "out-of-LLC" : "in-cache");
  const auto keys = GenerateDistinctKeys(n, 77);
  const auto negatives = GenerateNegativeKeys(keys, n, 78);
  const auto queries = MixedQueries(keys, negatives);

  RunFamily("bloom", [n] { return std::make_unique<BloomFilter>(n, 10.0); },
            n, keys, queries);
  RunFamily("blocked-bloom",
            [n] { return std::make_unique<BlockedBloomFilter>(n, 10.0); }, n,
            keys, queries);
  RunFamily("cuckoo", [n] { return std::make_unique<CuckooFilter>(n, 12); },
            n, keys, queries);
  RunFamily("quotient",
            [n] {
              return std::make_unique<QuotientFilter>(
                  QuotientFilter::ForCapacity(n, 0.01));
            },
            n, keys, queries);
  RunFamily("sharded",
            [n] {
              return std::make_unique<ShardedFilter>(
                  n, 16, [](uint64_t cap) -> std::unique_ptr<Filter> {
                    return std::make_unique<BlockedBloomFilter>(cap, 10.0);
                  });
            },
            n, keys, queries);
  std::printf("\n");
}

/// The batch path exists to be faster: a full-batch lookup slower than
/// the scalar loop is a regression, not a tradeoff — for every family at
/// every size. 3% grace absorbs timer noise on a shared machine
/// (min-of-3 already strips most of it); a real regression (the
/// historical cuckoo 0.959x) sits right at the line, so the gate would
/// have caught it. The batch{8,32,128} sweep rows are informational
/// only: sub-batch per-call overhead is dominated by the host's
/// call/dispatch cost (on the 1-CPU CI container even the untouched
/// classic-bloom batch8 runs ~0.5x scalar), so gating them would test
/// the machine, not the code.
bool CheckBatchAtLeastScalar() {
  constexpr double kTolerance = 0.97;
  bool ok = true;
  for (const Row& r : g_rows) {
    if (r.op != "lookup" || r.mode != "batch") continue;
    // Quotient at the in-cache size sits below its 4 MiB batching
    // threshold, so both modes run the identical scalar loop (DESIGN §7,
    // E18 "fallback parity") — a ratio of pure timer noise that cannot
    // regress and should not gate.
    if (r.filter == "quotient" && r.n < (uint64_t{1} << 24)) continue;
    if (r.speedup < kTolerance) {
      std::fprintf(stderr,
                   "REGRESSION: %s n=%llu lookup %s is %.3fx scalar "
                   "(< %.2f)\n",
                   r.filter.c_str(), static_cast<unsigned long long>(r.n),
                   r.mode.c_str(), r.speedup, kTolerance);
      ok = false;
    }
  }
  if (ok) {
    std::printf(
        "full-batch lookup >= scalar for every family at every size "
        "(tolerance %.2f)\n",
        kTolerance);
  }
  return ok;
}

void WriteJson(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"batch\",\n  \"kernel\": \"%.*s\",\n  \"results\": [\n",
               static_cast<int>(simd::ActiveIsaName().size()),
               simd::ActiveIsaName().data());
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"filter\": \"%s\", \"n\": %llu, \"op\": \"%s\", "
                 "\"mode\": \"%s\", \"mops\": %.3f, \"speedup\": %.3f}%s\n",
                 r.filter.c_str(), static_cast<unsigned long long>(r.n),
                 r.op.c_str(), r.mode.c_str(), r.mops, r.speedup,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  std::printf("active kernel: %.*s\n\n",
              static_cast<int>(simd::ActiveIsaName().size()),
              simd::ActiveIsaName().data());
  RunSize(uint64_t{1} << 20);
  if (!quick) RunSize(uint64_t{1} << 24);
  const bool ok = CheckBatchAtLeastScalar();
  if (!json_path.empty()) WriteJson(json_path);
  return ok ? 0 : 1;
}
