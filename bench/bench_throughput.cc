// Experiment E3 (DESIGN.md §4): insert/lookup throughput across filter
// families, via google-benchmark. Paper claim (§1.1): "systems developers
// still use Bloom filters in traditional ways leaving performance on the
// table" — fingerprint filters answer lookups with one or two cache
// probes where a Bloom filter takes k dependent probes.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bloom/bloom_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/quotient_filter.h"
#include "staticf/ribbon_filter.h"
#include "staticf/xor_filter.h"
#include "workload/generators.h"

namespace bbf {
namespace {

constexpr uint64_t kN = 1 << 20;

const std::vector<uint64_t>& Keys() {
  static const auto* keys =
      new std::vector<uint64_t>(GenerateDistinctKeys(kN, 77));
  return *keys;
}

const std::vector<uint64_t>& Negatives() {
  static const auto* negatives =
      new std::vector<uint64_t>(GenerateNegativeKeys(Keys(), kN, 78));
  return *negatives;
}

template <typename F>
void LookupLoop(benchmark::State& state, const F& filter, bool positive) {
  const auto& queries = positive ? Keys() : Negatives();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Contains(queries[i]));
    if (++i == queries.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}

// Insert benchmarks construct the filter outside the timed region and
// report manual time for the insert loop alone. The previous
// PauseTiming/ResumeTiming per iteration added library overhead large
// enough to skew the numbers (google-benchmark documents the pair as
// O(μs) per call).
template <typename MakeFilter>
void InsertLoop(benchmark::State& state, const MakeFilter& make) {
  for (auto _ : state) {
    auto f = make();
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t k : Keys()) f.Insert(k);
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(f);
    state.SetIterationTime(
        std::chrono::duration<double>(end - start).count());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}

void BM_BloomInsert(benchmark::State& state) {
  InsertLoop(state, [] { return BloomFilter(kN, 10.0); });
}
BENCHMARK(BM_BloomInsert)->Unit(benchmark::kMillisecond)->UseManualTime();

void BM_QuotientInsert(benchmark::State& state) {
  InsertLoop(state, [] { return QuotientFilter(21, 9); });
}
BENCHMARK(BM_QuotientInsert)->Unit(benchmark::kMillisecond)->UseManualTime();

void BM_CuckooInsert(benchmark::State& state) {
  InsertLoop(state, [] { return CuckooFilter(kN, 12); });
}
BENCHMARK(BM_CuckooInsert)->Unit(benchmark::kMillisecond)->UseManualTime();

void BM_XorBuild(benchmark::State& state) {
  for (auto _ : state) {
    XorFilter f(Keys(), 12);
    benchmark::DoNotOptimize(f.SpaceBits());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_XorBuild)->Unit(benchmark::kMillisecond);

void BM_RibbonBuild(benchmark::State& state) {
  for (auto _ : state) {
    RibbonFilter f(Keys(), 12);
    benchmark::DoNotOptimize(f.SpaceBits());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_RibbonBuild)->Unit(benchmark::kMillisecond);

void BM_BloomLookup(benchmark::State& state) {
  static const auto* f = [] {
    auto* filter = new BloomFilter(kN, 10.0);
    for (uint64_t k : Keys()) filter->Insert(k);
    return filter;
  }();
  LookupLoop(state, *f, state.range(0) == 1);
}
BENCHMARK(BM_BloomLookup)->Arg(1)->Arg(0);

void BM_QuotientLookup(benchmark::State& state) {
  static const auto* f = [] {
    auto* filter = new QuotientFilter(21, 9);
    for (uint64_t k : Keys()) filter->Insert(k);
    return filter;
  }();
  LookupLoop(state, *f, state.range(0) == 1);
}
BENCHMARK(BM_QuotientLookup)->Arg(1)->Arg(0);

void BM_CuckooLookup(benchmark::State& state) {
  static const auto* f = [] {
    auto* filter = new CuckooFilter(kN, 12);
    for (uint64_t k : Keys()) filter->Insert(k);
    return filter;
  }();
  LookupLoop(state, *f, state.range(0) == 1);
}
BENCHMARK(BM_CuckooLookup)->Arg(1)->Arg(0);

void BM_XorLookup(benchmark::State& state) {
  static const auto* f = new XorFilter(Keys(), 12);
  LookupLoop(state, *f, state.range(0) == 1);
}
BENCHMARK(BM_XorLookup)->Arg(1)->Arg(0);

void BM_RibbonLookup(benchmark::State& state) {
  static const auto* f = new RibbonFilter(Keys(), 12);
  LookupLoop(state, *f, state.range(0) == 1);
}
BENCHMARK(BM_RibbonLookup)->Arg(1)->Arg(0);

}  // namespace
}  // namespace bbf

BENCHMARK_MAIN();
