// Experiment E15 (DESIGN.md §4): large-scale sequence search (§3.2).
//
// Paper claim: "Mantis proved to be smaller, faster, and exact compared
// to the SBT which is an approximate index." We build both over the same
// synthetic experiment collection and compare space, query time, and
// precision against an exact reference.

#include <algorithm>
#include <cstdio>
#include <set>

#include "apps/bio/sequence_index.h"
#include "bench_util.h"
#include "util/random.h"

using namespace bbf::bio;
using bbf::bench::Seconds;

namespace {

std::set<uint32_t> ExactHits(
    const std::vector<std::vector<uint64_t>>& experiments,
    const std::vector<uint64_t>& query, double theta) {
  std::set<uint32_t> hits;
  for (uint32_t e = 0; e < experiments.size(); ++e) {
    uint64_t present = 0;
    for (uint64_t km : query) {
      present += std::binary_search(experiments[e].begin(),
                                    experiments[e].end(), km);
    }
    if (static_cast<double>(present) / query.size() >= theta) hits.insert(e);
  }
  return hits;
}

}  // namespace

int main() {
  std::printf("== E15: experiment discovery — SBT vs Mantis ==\n\n");
  const int k = 21;
  const uint32_t kExperiments = 64;
  const auto experiments = GenerateExperiments(kExperiments, 60000, k, 77);
  uint64_t total_kmers = 0;
  for (const auto& e : experiments) total_kmers += e.size();
  std::printf("%u experiments, %llu k-mer postings total\n\n", kExperiments,
              static_cast<unsigned long long>(total_kmers));

  // Query workload: 200-k-mer probes, 60%% drawn from a source experiment
  // and 40%% random absent k-mers, so many experiments sit just below the
  // theta threshold — exactly where Bloom noise flips decisions.
  bbf::SplitMix64 rng(78);
  std::vector<std::vector<uint64_t>> queries;
  for (int q = 0; q < 200; ++q) {
    const auto& src = experiments[rng.NextBelow(kExperiments)];
    std::vector<uint64_t> query;
    for (int i = 0; i < 120; ++i) {
      query.push_back(src[rng.NextBelow(src.size())]);
    }
    for (int i = 0; i < 80; ++i) query.push_back(rng.Next());
    queries.push_back(std::move(query));
  }
  const double theta = 0.55;

  for (double sbt_bits : {2.0, 4.0, 8.0}) {
    SequenceBloomTree sbt(experiments, sbt_bits);
    uint64_t extra = 0;
    uint64_t missed = 0;
    const double secs = Seconds([&] {
      for (const auto& q : queries) {
        const auto got = sbt.Query(q, theta);
        const auto exact = ExactHits(experiments, q, theta);
        std::set<uint32_t> got_set;
        for (const auto& h : got) got_set.insert(h.experiment);
        for (uint32_t e : got_set) extra += !exact.contains(e);
        for (uint32_t e : exact) missed += !got_set.contains(e);
      }
    });
    std::printf("sbt @%4.1f b/kmer : %7.1f MiB, %6.1f ms/query, "
                "extra hits %llu, missed %llu\n",
                sbt_bits, sbt.SpaceBits() / 8.0 / (1 << 20),
                1000.0 * secs / queries.size(),
                static_cast<unsigned long long>(extra),
                static_cast<unsigned long long>(missed));
  }

  MantisIndex mantis(experiments);
  uint64_t extra = 0;
  uint64_t missed = 0;
  const double secs = Seconds([&] {
    for (const auto& q : queries) {
      const auto got = mantis.Query(q, theta);
      const auto exact = ExactHits(experiments, q, theta);
      std::set<uint32_t> got_set;
      for (const auto& h : got) got_set.insert(h.experiment);
      for (uint32_t e : got_set) extra += !exact.contains(e);
      for (uint32_t e : exact) missed += !got_set.contains(e);
    }
  });
  std::printf("mantis (exact)  : %7.1f MiB, %6.1f ms/query, extra hits "
              "%llu, missed %llu (%zu color classes)\n",
              mantis.SpaceBits() / 8.0 / (1 << 20),
              1000.0 * secs / queries.size(),
              static_cast<unsigned long long>(extra),
              static_cast<unsigned long long>(missed),
              mantis.num_color_classes());

  std::printf(
      "\nexpected shape (paper §3.2): the SBT needs a fat Bloom budget to\n"
      "avoid extra hits yet never reaches exactness; Mantis reports zero\n"
      "extra/missed at comparable-or-smaller space.\n");
  return 0;
}
