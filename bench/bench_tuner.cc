// Experiment E26 (DESIGN.md §4, §15): what online migration costs.
//
// Two questions decide whether workload-aware auto-tuning is usable in
// production. (1) Availability: the migration protocol promises serving
// never stops — the only blocking window is the final drain-and-swap,
// bounded at kFinalDrainTarget journal ops. So lookup p99 measured
// *during* a migration sweep must stay within a small multiple (budget:
// 10x) of steady-state p99. (2) Effectiveness: after the tuner moves an
// abused blocked-bloom shard to an adaptive family, the observed FPR on
// the abusive key set must actually fall back under the configured
// budget. This bench measures both and fails loudly if either breaks.
//
// Usage: bench_tuner [--quick] [--json=PATH]
//   --quick      fewer lookups per phase and a smaller filter.
//   --json=PATH  machine-readable results (BENCH_tuner.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "core/factory.h"
#include "core/fpr_estimator.h"
#include "core/key.h"
#include "core/sharded_filter.h"
#include "obs/instrumented.h"
#include "tuning/tuner.h"
#include "util/random.h"
#include "workload/generators.h"

using bbf::CreateFilter;
using bbf::GenerateDistinctKeys;
using bbf::HashedKey;
using bbf::ObservedFprEstimator;
using bbf::ShardedFilter;
using bbf::SplitMix64;

namespace {

ShardedFilter::ShardFactory FamilyFactory(std::string name, double fpr) {
  return [name = std::move(name), fpr](uint64_t cap) {
    return CreateFilter(name, cap, fpr);
  };
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Percentile(std::vector<uint64_t>& samples, double q) {
  if (samples.empty()) return 0;
  const size_t idx = std::min(
      samples.size() - 1, static_cast<size_t>(q * (samples.size() - 1)));
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

/// Runs `count` random lookups against `filter`, recording per-lookup
/// nanoseconds. The probe stream mixes residents and misses like E25.
std::vector<uint64_t> TimedLookups(const ShardedFilter& filter,
                                   const std::vector<uint64_t>& pool,
                                   uint64_t count, uint64_t seed) {
  std::vector<uint64_t> ns;
  ns.reserve(count);
  SplitMix64 rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t key = pool[rng.NextBelow(pool.size())];
    const uint64_t t0 = NowNs();
    (void)filter.Contains(key);
    ns.push_back(NowNs() - t0);
  }
  return ns;
}

struct PauseResult {
  uint64_t steady_p50_ns = 0;
  uint64_t steady_p99_ns = 0;
  uint64_t swap_p50_ns = 0;
  uint64_t swap_p99_ns = 0;
  uint64_t max_pause_ns = 0;
  uint64_t migrations = 0;
};

// --- Phase 1: lookup latency while every shard migrates under load. ------
PauseResult MeasureMigrationPause(bool quick) {
  const uint64_t pool_size = quick ? (uint64_t{1} << 16) : (uint64_t{1} << 18);
  const uint64_t lookups = quick ? 200'000 : 2'000'000;
  constexpr size_t kShards = 8;

  ShardedFilter filter(pool_size, kShards, FamilyFactory("quotient", 0.01));
  if (!filter.EnableMigration()) {
    std::fprintf(stderr, "EnableMigration failed\n");
    std::exit(1);
  }
  const auto pool = GenerateDistinctKeys(pool_size, 42);
  for (size_t i = 0; i < pool.size() / 2; ++i) filter.Insert(pool[i]);

  // Steady state: no migration in flight.
  auto steady = TimedLookups(filter, pool, lookups, 1);

  // Swap window: a reader thread probes continuously while the main
  // thread sweeps a migration across every shard (quotient -> cuckoo ->
  // blocked-bloom). Only lookups issued while a migration is in flight
  // land in the during-swap histogram.
  std::vector<uint64_t> swap_ns;
  std::atomic<bool> migrating{false};
  std::atomic<bool> done{false};
  std::thread reader([&] {
    SplitMix64 rng(2);
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t key = pool[rng.NextBelow(pool.size())];
      const uint64_t t0 = NowNs();
      (void)filter.Contains(key);
      const uint64_t dt = NowNs() - t0;
      if (migrating.load(std::memory_order_acquire)) swap_ns.push_back(dt);
    }
  });

  PauseResult r;
  const char* kCycle[] = {"cuckoo", "blocked-bloom"};
  for (const char* family : kCycle) {
    for (size_t s = 0; s < kShards; ++s) {
      migrating.store(true, std::memory_order_release);
      const auto report = filter.MigrateShard(s, FamilyFactory(family, 0.01));
      migrating.store(false, std::memory_order_release);
      if (!report.ok) {
        std::fprintf(stderr, "migration failed: %s\n", report.error.c_str());
        std::exit(1);
      }
      r.max_pause_ns = std::max(r.max_pause_ns, report.pause_ns);
      ++r.migrations;
    }
  }
  done.store(true, std::memory_order_release);
  reader.join();

  r.steady_p50_ns = Percentile(steady, 0.50);
  r.steady_p99_ns = Percentile(steady, 0.99);
  r.swap_p50_ns = Percentile(swap_ns, 0.50);
  r.swap_p99_ns = Percentile(swap_ns, 0.99);
  return r;
}

struct RecoveryResult {
  double fpr_before = 0.0;
  double fpr_after = 0.0;
  double budget = 0.01;
  std::string from_family;
  std::string to_family;
  uint64_t pause_ns = 0;
};

// --- Phase 2: adversarial-repeat abuse, tuner migration, FPR recovery. ---
RecoveryResult MeasureFprRecovery(bool quick) {
  const uint64_t num_keys = quick ? 2'000 : 20'000;
  // A deliberately loose blocked-bloom shard (the kind a static sizing
  // guess leaves behind) so abusive false positives are easy to find.
  auto inner = std::make_unique<ShardedFilter>(
      num_keys * 2, 1, FamilyFactory("blocked-bloom", 0.25));
  ShardedFilter* sharded = inner.get();
  if (!sharded->EnableMigration()) {
    std::fprintf(stderr, "EnableMigration failed\n");
    std::exit(1);
  }
  bbf::obs::InstrumentedFilter filter(std::move(inner), 0.25);

  const auto keys = GenerateDistinctKeys(num_keys, 7);
  std::unordered_set<uint64_t> present(keys.begin(), keys.end());
  for (uint64_t k : keys) filter.Insert(k);

  // The abusive hot set: in-domain negative keys this filter answers
  // "maybe" for. An adversary replays them forever; a static filter
  // keeps paying the false positive every time. Large enough (2048) that
  // the post-migration measurement has sub-budget resolution.
  std::vector<uint64_t> hot;
  SplitMix64 rng(99);
  for (uint64_t attempts = 0; hot.size() < 2048 && attempts < 64'000'000;
       ++attempts) {
    const uint64_t k = rng.Next();
    if (present.contains(k)) continue;
    const HashedKey hk(k);
    if (!ObservedFprEstimator::InDomain(hk)) continue;
    if (filter.Contains(k)) hot.push_back(k);
  }
  if (hot.size() < 512) {
    std::fprintf(stderr, "could not find abusive false positives\n");
    std::exit(1);
  }

  RecoveryResult r;
  uint64_t fp = 0;
  for (uint64_t k : hot) fp += filter.Contains(k);
  r.fpr_before = static_cast<double>(fp) / static_cast<double>(hot.size());

  // The replayed core: the conservative-vote sketch marks a key hot only
  // when the *same* key repeats (colliding keys cancel), so the
  // adversary's signature move is hammering a small set. 64 rounds buries
  // any votes the wide measurement pass above left behind.
  const std::vector<uint64_t> core(hot.begin(), hot.begin() + 16);
  for (int round = 0; round < 64; ++round) {
    for (uint64_t k : core) (void)filter.Contains(k);
  }

  bbf::tuning::TunerConfig cfg;
  cfg.fpr_budget = 0.01;
  r.budget = cfg.fpr_budget;
  bbf::tuning::Tuner tuner(filter, cfg);
  const auto poll = tuner.Poll();
  if (!poll.acted || !poll.report.ok) {
    std::fprintf(stderr, "tuner did not migrate: %s\n",
                 poll.decision.reason.c_str());
    std::exit(1);
  }
  if (poll.decision.action != bbf::tuning::TunerAction::kMigrateAdaptive) {
    std::fprintf(stderr, "expected the adaptive migration, got: %s\n",
                 poll.decision.reason.c_str());
    std::exit(1);
  }
  r.from_family = poll.decision.from_family;
  r.to_family = poll.decision.to_family;
  r.pause_ns = poll.report.pause_ns;

  // Replay the same abuse against the successor. The adaptive family is
  // built at the tuner's budget epsilon (vs the abused shard's loose
  // one), so the whole hot set — core and wide — drops to its base rate.
  fp = 0;
  for (uint64_t k : hot) fp += filter.Contains(k);
  r.fpr_after = static_cast<double>(fp) / static_cast<double>(hot.size());

  // Sanity: migration must not have dropped real keys.
  for (uint64_t k : keys) {
    if (!filter.Contains(k)) {
      std::fprintf(stderr, "migration lost a key\n");
      std::exit(1);
    }
  }
  return r;
}

void WriteJson(const std::string& path, const PauseResult& p,
               const RecoveryResult& f, double ratio, bool pause_ok,
               bool recovered) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"tuner\",\n");
  std::fprintf(out, "  \"migration_pause\": {\n");
  std::fprintf(out, "    \"steady_p50_ns\": %llu,\n",
               static_cast<unsigned long long>(p.steady_p50_ns));
  std::fprintf(out, "    \"steady_p99_ns\": %llu,\n",
               static_cast<unsigned long long>(p.steady_p99_ns));
  std::fprintf(out, "    \"swap_p50_ns\": %llu,\n",
               static_cast<unsigned long long>(p.swap_p50_ns));
  std::fprintf(out, "    \"swap_p99_ns\": %llu,\n",
               static_cast<unsigned long long>(p.swap_p99_ns));
  std::fprintf(out, "    \"max_pause_ns\": %llu,\n",
               static_cast<unsigned long long>(p.max_pause_ns));
  std::fprintf(out, "    \"migrations\": %llu,\n",
               static_cast<unsigned long long>(p.migrations));
  std::fprintf(out, "    \"swap_p99_over_steady_p99\": %.2f,\n", ratio);
  std::fprintf(out, "    \"within_10x_budget\": %s\n  },\n",
               pause_ok ? "true" : "false");
  std::fprintf(out, "  \"fpr_recovery\": {\n");
  std::fprintf(out, "    \"from_family\": \"%s\",\n", f.from_family.c_str());
  std::fprintf(out, "    \"to_family\": \"%s\",\n", f.to_family.c_str());
  std::fprintf(out, "    \"fpr_budget\": %.4f,\n", f.budget);
  std::fprintf(out, "    \"hot_set_fpr_before\": %.4f,\n", f.fpr_before);
  std::fprintf(out, "    \"hot_set_fpr_after\": %.4f,\n", f.fpr_after);
  std::fprintf(out, "    \"migration_pause_ns\": %llu,\n",
               static_cast<unsigned long long>(f.pause_ns));
  std::fprintf(out, "    \"recovered\": %s\n  }\n}\n",
               recovered ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 1;
    }
  }

  std::printf("E26: online migration cost and FPR recovery\n\n");

  const PauseResult p = MeasureMigrationPause(quick);
  const double ratio =
      p.steady_p99_ns > 0
          ? static_cast<double>(p.swap_p99_ns) / p.steady_p99_ns
          : 0.0;
  const bool pause_ok = ratio <= 10.0;
  std::printf("migration pause (%llu migrations across 8 shards):\n",
              static_cast<unsigned long long>(p.migrations));
  std::printf("  %-28s %10llu ns\n", "steady-state lookup p50",
              static_cast<unsigned long long>(p.steady_p50_ns));
  std::printf("  %-28s %10llu ns\n", "steady-state lookup p99",
              static_cast<unsigned long long>(p.steady_p99_ns));
  std::printf("  %-28s %10llu ns\n", "during-swap lookup p50",
              static_cast<unsigned long long>(p.swap_p50_ns));
  std::printf("  %-28s %10llu ns\n", "during-swap lookup p99",
              static_cast<unsigned long long>(p.swap_p99_ns));
  std::printf("  %-28s %10llu ns\n", "max drain-and-swap pause",
              static_cast<unsigned long long>(p.max_pause_ns));
  std::printf("  swap p99 / steady p99 = %.2fx (budget 10x) -> %s\n\n", ratio,
              pause_ok ? "ok" : "FAIL");

  const RecoveryResult f = MeasureFprRecovery(quick);
  const bool recovered = f.fpr_after < f.budget;
  std::printf("FPR recovery (adversarial repeat on a loose shard):\n");
  std::printf("  %-28s %s -> %s\n", "migration", f.from_family.c_str(),
              f.to_family.c_str());
  std::printf("  %-28s %10.4f\n", "hot-set FPR before", f.fpr_before);
  std::printf("  %-28s %10.4f (budget %.4f)\n", "hot-set FPR after",
              f.fpr_after, f.budget);
  std::printf("  %-28s %10llu ns\n", "migration pause",
              static_cast<unsigned long long>(f.pause_ns));
  std::printf("  recovery -> %s\n", recovered ? "ok" : "FAIL");

  if (!json_path.empty()) WriteJson(json_path, p, f, ratio, pause_ok, recovered);
  if (!pause_ok || !recovered) return 1;
  return 0;
}
