// Experiment E16 (DESIGN.md §4): thread scaling (§1, feature 6).
//
// Paper claim: modern filters "scale with the number of threads (i.e.,
// achieve high concurrency)". We drive the sharded concurrent wrapper
// around a cuckoo filter with 1..8 threads of mixed traffic and report
// aggregate throughput; a single global lock is the baseline.

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

constexpr uint64_t kOpsPerThread = 400000;

double DriveThreads(Filter& filter, const std::vector<uint64_t>& keys,
                    int threads) {
  std::atomic<uint64_t> sink{0};
  const double secs = Seconds([&] {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        SplitMix64 rng(1000 + t);
        uint64_t local = 0;
        for (uint64_t i = 0; i < kOpsPerThread; ++i) {
          const uint64_t key = keys[rng.NextBelow(keys.size())];
          if (rng.NextDouble() < 0.2) {
            filter.Insert(key);
          } else {
            local += filter.Contains(key);
          }
        }
        sink += local;
      });
    }
    for (auto& w : workers) w.join();
  });
  if (sink.load() == 0xDEADBEEF) std::printf("!");
  return Mops(static_cast<uint64_t>(threads) * kOpsPerThread, secs);
}

/// Baseline: one lock around the whole filter.
class GlobalLockFilter : public Filter {
 public:
  explicit GlobalLockFilter(uint64_t capacity) : inner_(capacity * 4, 12) {}

  using Filter::Contains;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override {
    std::lock_guard lock(mutex_);
    return inner_.Insert(key);
  }
  bool Contains(HashedKey key) const override {
    std::lock_guard lock(mutex_);
    return inner_.Contains(key);
  }
  bool Erase(HashedKey key) override {
    std::lock_guard lock(mutex_);
    return inner_.Erase(key);
  }
  size_t SpaceBits() const override { return inner_.SpaceBits(); }
  uint64_t NumKeys() const override { return inner_.NumKeys(); }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "global-lock"; }

 private:
  mutable std::mutex mutex_;
  CuckooFilter inner_;
};

}  // namespace

int main() {
  std::printf("== E16: concurrent throughput (80%% lookups / 20%% inserts) "
              "==\n\n");
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf("(on a single-core host both columns flat-line: the\n"
              " comparison then shows locking overhead, not scaling)\n\n");
  const auto keys = GenerateDistinctKeys(500000, 81);
  std::printf("%-10s | %-18s | %-18s\n", "threads", "global lock Mops",
              "sharded(32) Mops");
  for (int threads : {1, 2, 4, 8}) {
    GlobalLockFilter global(keys.size());
    ShardedFilter sharded(keys.size() * 4, 32, [](uint64_t capacity) {
      return std::make_unique<CuckooFilter>(capacity, 12);
    });
    const double g = DriveThreads(global, keys, threads);
    const double s = DriveThreads(sharded, keys, threads);
    std::printf("%-10d | %18.2f | %18.2f\n", threads, g, s);
  }
  std::printf(
      "\nexpected shape (multi-core): the global lock flat-lines or\n"
      "degrades with threads while the sharded filter scales near-\n"
      "linearly; with one core, throughput stays flat for both and the\n"
      "wrapper's cost is the (small) gap between the columns.\n");
  return 0;
}
