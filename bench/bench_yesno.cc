// Experiments E11 + E12 (DESIGN.md §4): the yes/no-list problem (§3.3)
// and stacked filters (§2.8).
//
// Paper claims: a no list keeps important benign URLs from ever being
// blocked; adaptive filters solve both the static and dynamic cases;
// stacked filters exponentially cut the FPR of known hot negatives.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/net/blocklist.h"
#include "bloom/bloom_filter.h"
#include "stacked/learned_filter.h"
#include "stacked/stacked_filter.h"
#include "util/hash.h"
#include "workload/generators.h"
#include "workload/zipf.h"

using namespace bbf;
using namespace bbf::net;

int main() {
  std::printf("== E11: URL yes/no lists ==\n\n");
  auto urls = GenerateUrls(1030000, 9);
  const std::vector<std::string> malicious(urls.begin(),
                                           urls.begin() + 1000000);
  const std::vector<std::string> hot(urls.begin() + 1000000,
                                     urls.begin() + 1010000);
  const std::vector<std::string> cold(urls.begin() + 1010000, urls.end());

  auto bloom = MakeBloomBlocklist(malicious, 10.0);
  auto integrated = MakeIntegratedBlocklist(malicious, hot, 10);
  auto adaptive = MakeAdaptiveBlocklist(malicious, 0.001);

  ZipfGenerator zipf(hot.size(), 1.1, 5);
  const int kVisits = 500000;
  std::printf("%-12s | %-12s | %-14s | %-10s\n", "filter",
              "hot wrong-blocks", "cold benign fpr", "MiB");
  for (Blocklist* b : {bloom.get(), integrated.get(), adaptive.get()}) {
    ZipfGenerator z(hot.size(), 1.1, 5);
    uint64_t wrong = 0;
    for (int i = 0; i < kVisits; ++i) {
      const std::string& url = hot[z.Next()];
      if (b->IsBlocked(url)) {
        ++wrong;
        b->ReportFalseBlock(url);
      }
    }
    uint64_t cold_fp = 0;
    for (const auto& u : cold) cold_fp += b->IsBlocked(u);
    std::printf("%-12s | %16llu | %14.6f | %10.1f\n",
                std::string(b->Name()).c_str(),
                static_cast<unsigned long long>(wrong),
                static_cast<double>(cold_fp) / cold.size(),
                b->SpaceBits() / 8.0 / (1 << 20));
  }

  std::printf("\n== E12: stacked filters — FPR of hot vs cold negatives ==\n\n");
  std::vector<uint64_t> positive_keys;
  for (const auto& u : malicious) positive_keys.push_back(HashBytes(u, 7));
  std::vector<uint64_t> hot_keys;
  for (const auto& u : hot) hot_keys.push_back(HashBytes(u, 7));
  std::vector<uint64_t> cold_keys;
  for (const auto& u : cold) cold_keys.push_back(HashBytes(u, 7));

  auto fpr = [](const auto& f, const std::vector<uint64_t>& qs) {
    uint64_t fp = 0;
    for (uint64_t k : qs) fp += f.Contains(k);
    return static_cast<double>(fp) / qs.size();
  };
  BloomFilter plain(positive_keys.size(), 10.0);
  for (uint64_t k : positive_keys) plain.Insert(k);
  std::printf("%-22s %12s %12s %12s\n", "filter", "hot fpr", "cold fpr",
              "bits/key");
  std::printf("%-22s %12.6f %12.6f %12.2f\n", "plain bloom",
              fpr(plain, hot_keys), fpr(plain, cold_keys),
              plain.BitsPerKey());
  for (int layers : {3, 5}) {
    StackedFilter stacked(positive_keys, hot_keys, 10.0, layers);
    std::printf("stacked (%d layers)    %12.6f %12.6f %12.2f\n", layers,
                fpr(stacked, hot_keys), fpr(stacked, cold_keys),
                static_cast<double>(stacked.SpaceBits()) /
                    positive_keys.size());
  }
  std::printf("\n== E17: learned filter (§2.8) — clustered vs uniform keys ==\n\n");
  {
    // Clustered keys (the distribution a model can exploit).
    SplitMix64 rng(170);
    std::vector<uint64_t> clustered;
    while (clustered.size() < 500000) {
      uint64_t base = rng.Next() & ~uint64_t{0xFFFFFF};
      const uint64_t count = 500 + rng.NextBelow(1500);
      for (uint64_t i = 0; i < count && clustered.size() < 500000; ++i) {
        base += 1 + rng.NextBelow(3);
        clustered.push_back(base);
      }
    }
    std::sort(clustered.begin(), clustered.end());
    clustered.erase(std::unique(clustered.begin(), clustered.end()),
                    clustered.end());
    const std::vector<uint64_t>& clustered_ref = clustered;
    const auto uniform = GenerateDistinctKeys(clustered.size(), 171);
    std::printf("%-22s %14s %14s %14s\n", "keys", "learned b/key",
                "bloom b/key", "modeled frac");
    for (const auto* keys : {&clustered_ref, &uniform}) {
      LearnedFilter learned(*keys, 16, 64, 10.0);
      BloomFilter bloom(keys->size(), 10.0);
      std::printf("%-22s %14.2f %14.2f %14.3f\n",
                  keys == &clustered_ref ? "clustered" : "uniform",
                  static_cast<double>(learned.SpaceBits()) / keys->size(),
                  10.0,
                  static_cast<double>(learned.modeled_keys()) /
                      keys->size());
    }
  }

  std::printf(
      "\nexpected shape (papers §2.8/§3.3): integrated & adaptive rows show\n"
      "(near-)zero wrong blocks; each stacked layer pair multiplies the hot\n"
      "FPR down by another Bloom factor while cold FPR stays ~plain; the\n"
      "learned filter beats Bloom only when the key set has structure.\n");
  return 0;
}
