// Experiment E6 (DESIGN.md §4): counting filters on skewed multisets
// (§2.6). Paper claims: fixed-width CBF counters saturate and stick;
// d-left saves ~2x space over CBF; the CQF's variable-length counters are
// asymptotically optimal and handle highly skewed distributions.

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "bench_util.h"
#include "bloom/counting_bloom.h"
#include "bloom/dleft_filter.h"
#include "quotient/quotient_filter.h"
#include "workload/generators.h"

using namespace bbf;
using namespace bbf::bench;

namespace {

struct Accuracy {
  double exact_frac;
  uint64_t undercounts;  // Should stay 0: counts are upper bounds.
};

template <typename F>
Accuracy Check(const F& filter,
               const std::unordered_map<uint64_t, uint64_t>& truth,
               uint64_t cap) {
  uint64_t exact = 0;
  uint64_t under = 0;
  for (const auto& [k, c] : truth) {
    const uint64_t got = filter.Count(k);
    exact += got == c;
    under += got < std::min(c, cap);
  }
  return {static_cast<double>(exact) / truth.size(), under};
}

void RunTheta(double theta) {
  const uint64_t universe = 100000;
  const uint64_t stream_len = 2000000;
  const auto stream = GenerateZipfStream(universe, theta, stream_len);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t k : stream) ++truth[k];
  uint64_t max_mult = 0;
  for (const auto& [k, c] : truth) max_mult = std::max(max_mult, c);
  std::printf("zipf theta=%.2f: %zu distinct keys, max multiplicity %llu\n",
              theta, truth.size(), static_cast<unsigned long long>(max_mult));

  {
    CountingBloomFilter cbf(universe, 40.0, /*counter_bits=*/4);
    for (uint64_t k : stream) cbf.Insert(k);
    const Accuracy a = Check(cbf, truth, 15);
    std::printf("  %-20s %8.2f bits/key  exact %5.1f%%  undercounts %llu  "
                "saturated counters %llu\n",
                "counting-bloom", static_cast<double>(cbf.SpaceBits()) /
                                      truth.size(),
                100 * a.exact_frac, static_cast<unsigned long long>(
                                        a.undercounts),
                static_cast<unsigned long long>(cbf.saturated_counters()));
  }
  {
    DleftCountingFilter dleft(universe);
    for (uint64_t k : stream) dleft.Insert(k);
    const Accuracy a = Check(dleft, truth, ~uint64_t{0});
    std::printf("  %-20s %8.2f bits/key  exact %5.1f%%  undercounts %llu  "
                "overflow entries %llu\n",
                "dleft-counting",
                static_cast<double>(dleft.SpaceBits()) / truth.size(),
                100 * a.exact_frac,
                static_cast<unsigned long long>(a.undercounts),
                static_cast<unsigned long long>(dleft.overflow_size()));
  }
  {
    CountingQuotientFilter cqf = CountingQuotientFilter::ForCapacity(
        universe * 2, 1.0 / 512);
    for (uint64_t k : stream) cqf.Insert(k);
    const Accuracy a = Check(cqf, truth, ~uint64_t{0});
    std::printf("  %-20s %8.2f bits/key  exact %5.1f%%  undercounts %llu  "
                "slots used %llu\n",
                "counting-quotient",
                static_cast<double>(cqf.SpaceBits()) / truth.size(),
                100 * a.exact_frac,
                static_cast<unsigned long long>(a.undercounts),
                static_cast<unsigned long long>(cqf.num_used_slots()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== E6: counting filters on Zipfian multisets ==\n\n");
  RunTheta(0.99);
  RunTheta(1.50);
  std::printf(
      "expected shape (paper §2.6): the CBF saturates on hot keys (exactness\n"
      "drops as theta grows); the CQF's variable-length counters stay exact\n"
      "at a fraction of the slots; undercounts are always zero.\n");
  return 0;
}
