# Empty compiler generated dependencies file for url_blocklist.
# This may be replaced when dependencies are built.
