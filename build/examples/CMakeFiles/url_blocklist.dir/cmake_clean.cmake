file(REMOVE_RECURSE
  "CMakeFiles/url_blocklist.dir/url_blocklist.cpp.o"
  "CMakeFiles/url_blocklist.dir/url_blocklist.cpp.o.d"
  "url_blocklist"
  "url_blocklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/url_blocklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
