file(REMOVE_RECURSE
  "CMakeFiles/lsm_engine.dir/lsm_engine.cpp.o"
  "CMakeFiles/lsm_engine.dir/lsm_engine.cpp.o.d"
  "lsm_engine"
  "lsm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
