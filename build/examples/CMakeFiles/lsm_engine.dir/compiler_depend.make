# Empty compiler generated dependencies file for lsm_engine.
# This may be replaced when dependencies are built.
