# Empty compiler generated dependencies file for kmer_debruijn.
# This may be replaced when dependencies are built.
