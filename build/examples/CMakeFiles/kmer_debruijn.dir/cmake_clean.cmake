file(REMOVE_RECURSE
  "CMakeFiles/kmer_debruijn.dir/kmer_debruijn.cpp.o"
  "CMakeFiles/kmer_debruijn.dir/kmer_debruijn.cpp.o.d"
  "kmer_debruijn"
  "kmer_debruijn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmer_debruijn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
