file(REMOVE_RECURSE
  "CMakeFiles/join_filter.dir/join_filter.cpp.o"
  "CMakeFiles/join_filter.dir/join_filter.cpp.o.d"
  "join_filter"
  "join_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
