# Empty compiler generated dependencies file for join_filter.
# This may be replaced when dependencies are built.
