file(REMOVE_RECURSE
  "CMakeFiles/bbf_quotient.dir/expanding_quotient_filter.cc.o"
  "CMakeFiles/bbf_quotient.dir/expanding_quotient_filter.cc.o.d"
  "CMakeFiles/bbf_quotient.dir/expanding_quotient_maplet.cc.o"
  "CMakeFiles/bbf_quotient.dir/expanding_quotient_maplet.cc.o.d"
  "CMakeFiles/bbf_quotient.dir/prefix_filter.cc.o"
  "CMakeFiles/bbf_quotient.dir/prefix_filter.cc.o.d"
  "CMakeFiles/bbf_quotient.dir/quotient_filter.cc.o"
  "CMakeFiles/bbf_quotient.dir/quotient_filter.cc.o.d"
  "CMakeFiles/bbf_quotient.dir/quotient_maplet.cc.o"
  "CMakeFiles/bbf_quotient.dir/quotient_maplet.cc.o.d"
  "CMakeFiles/bbf_quotient.dir/quotient_table.cc.o"
  "CMakeFiles/bbf_quotient.dir/quotient_table.cc.o.d"
  "CMakeFiles/bbf_quotient.dir/rsqf.cc.o"
  "CMakeFiles/bbf_quotient.dir/rsqf.cc.o.d"
  "CMakeFiles/bbf_quotient.dir/vector_quotient_filter.cc.o"
  "CMakeFiles/bbf_quotient.dir/vector_quotient_filter.cc.o.d"
  "libbbf_quotient.a"
  "libbbf_quotient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_quotient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
