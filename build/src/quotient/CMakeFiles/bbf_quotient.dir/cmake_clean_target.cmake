file(REMOVE_RECURSE
  "libbbf_quotient.a"
)
