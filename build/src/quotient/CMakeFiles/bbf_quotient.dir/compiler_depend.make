# Empty compiler generated dependencies file for bbf_quotient.
# This may be replaced when dependencies are built.
