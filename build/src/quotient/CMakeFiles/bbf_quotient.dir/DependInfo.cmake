
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quotient/expanding_quotient_filter.cc" "src/quotient/CMakeFiles/bbf_quotient.dir/expanding_quotient_filter.cc.o" "gcc" "src/quotient/CMakeFiles/bbf_quotient.dir/expanding_quotient_filter.cc.o.d"
  "/root/repo/src/quotient/expanding_quotient_maplet.cc" "src/quotient/CMakeFiles/bbf_quotient.dir/expanding_quotient_maplet.cc.o" "gcc" "src/quotient/CMakeFiles/bbf_quotient.dir/expanding_quotient_maplet.cc.o.d"
  "/root/repo/src/quotient/prefix_filter.cc" "src/quotient/CMakeFiles/bbf_quotient.dir/prefix_filter.cc.o" "gcc" "src/quotient/CMakeFiles/bbf_quotient.dir/prefix_filter.cc.o.d"
  "/root/repo/src/quotient/quotient_filter.cc" "src/quotient/CMakeFiles/bbf_quotient.dir/quotient_filter.cc.o" "gcc" "src/quotient/CMakeFiles/bbf_quotient.dir/quotient_filter.cc.o.d"
  "/root/repo/src/quotient/quotient_maplet.cc" "src/quotient/CMakeFiles/bbf_quotient.dir/quotient_maplet.cc.o" "gcc" "src/quotient/CMakeFiles/bbf_quotient.dir/quotient_maplet.cc.o.d"
  "/root/repo/src/quotient/quotient_table.cc" "src/quotient/CMakeFiles/bbf_quotient.dir/quotient_table.cc.o" "gcc" "src/quotient/CMakeFiles/bbf_quotient.dir/quotient_table.cc.o.d"
  "/root/repo/src/quotient/rsqf.cc" "src/quotient/CMakeFiles/bbf_quotient.dir/rsqf.cc.o" "gcc" "src/quotient/CMakeFiles/bbf_quotient.dir/rsqf.cc.o.d"
  "/root/repo/src/quotient/vector_quotient_filter.cc" "src/quotient/CMakeFiles/bbf_quotient.dir/vector_quotient_filter.cc.o" "gcc" "src/quotient/CMakeFiles/bbf_quotient.dir/vector_quotient_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
