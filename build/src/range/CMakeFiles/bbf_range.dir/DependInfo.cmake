
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/range/arf.cc" "src/range/CMakeFiles/bbf_range.dir/arf.cc.o" "gcc" "src/range/CMakeFiles/bbf_range.dir/arf.cc.o.d"
  "/root/repo/src/range/grafite.cc" "src/range/CMakeFiles/bbf_range.dir/grafite.cc.o" "gcc" "src/range/CMakeFiles/bbf_range.dir/grafite.cc.o.d"
  "/root/repo/src/range/prefix_bloom_range.cc" "src/range/CMakeFiles/bbf_range.dir/prefix_bloom_range.cc.o" "gcc" "src/range/CMakeFiles/bbf_range.dir/prefix_bloom_range.cc.o.d"
  "/root/repo/src/range/rosetta.cc" "src/range/CMakeFiles/bbf_range.dir/rosetta.cc.o" "gcc" "src/range/CMakeFiles/bbf_range.dir/rosetta.cc.o.d"
  "/root/repo/src/range/snarf.cc" "src/range/CMakeFiles/bbf_range.dir/snarf.cc.o" "gcc" "src/range/CMakeFiles/bbf_range.dir/snarf.cc.o.d"
  "/root/repo/src/range/surf.cc" "src/range/CMakeFiles/bbf_range.dir/surf.cc.o" "gcc" "src/range/CMakeFiles/bbf_range.dir/surf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bloom/CMakeFiles/bbf_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
