file(REMOVE_RECURSE
  "CMakeFiles/bbf_range.dir/arf.cc.o"
  "CMakeFiles/bbf_range.dir/arf.cc.o.d"
  "CMakeFiles/bbf_range.dir/grafite.cc.o"
  "CMakeFiles/bbf_range.dir/grafite.cc.o.d"
  "CMakeFiles/bbf_range.dir/prefix_bloom_range.cc.o"
  "CMakeFiles/bbf_range.dir/prefix_bloom_range.cc.o.d"
  "CMakeFiles/bbf_range.dir/rosetta.cc.o"
  "CMakeFiles/bbf_range.dir/rosetta.cc.o.d"
  "CMakeFiles/bbf_range.dir/snarf.cc.o"
  "CMakeFiles/bbf_range.dir/snarf.cc.o.d"
  "CMakeFiles/bbf_range.dir/surf.cc.o"
  "CMakeFiles/bbf_range.dir/surf.cc.o.d"
  "libbbf_range.a"
  "libbbf_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
