# Empty dependencies file for bbf_range.
# This may be replaced when dependencies are built.
