file(REMOVE_RECURSE
  "libbbf_range.a"
)
