file(REMOVE_RECURSE
  "CMakeFiles/bbf_bloom.dir/bloom_filter.cc.o"
  "CMakeFiles/bbf_bloom.dir/bloom_filter.cc.o.d"
  "CMakeFiles/bbf_bloom.dir/cascading_bloom.cc.o"
  "CMakeFiles/bbf_bloom.dir/cascading_bloom.cc.o.d"
  "CMakeFiles/bbf_bloom.dir/counting_bloom.cc.o"
  "CMakeFiles/bbf_bloom.dir/counting_bloom.cc.o.d"
  "CMakeFiles/bbf_bloom.dir/dleft_filter.cc.o"
  "CMakeFiles/bbf_bloom.dir/dleft_filter.cc.o.d"
  "CMakeFiles/bbf_bloom.dir/scalable_bloom.cc.o"
  "CMakeFiles/bbf_bloom.dir/scalable_bloom.cc.o.d"
  "libbbf_bloom.a"
  "libbbf_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
