# Empty dependencies file for bbf_bloom.
# This may be replaced when dependencies are built.
