file(REMOVE_RECURSE
  "libbbf_bloom.a"
)
