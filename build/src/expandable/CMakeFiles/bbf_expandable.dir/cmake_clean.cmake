file(REMOVE_RECURSE
  "CMakeFiles/bbf_expandable.dir/chained_filter.cc.o"
  "CMakeFiles/bbf_expandable.dir/chained_filter.cc.o.d"
  "CMakeFiles/bbf_expandable.dir/ring_filter.cc.o"
  "CMakeFiles/bbf_expandable.dir/ring_filter.cc.o.d"
  "CMakeFiles/bbf_expandable.dir/taffy_filter.cc.o"
  "CMakeFiles/bbf_expandable.dir/taffy_filter.cc.o.d"
  "libbbf_expandable.a"
  "libbbf_expandable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_expandable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
