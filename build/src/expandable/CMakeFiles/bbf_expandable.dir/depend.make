# Empty dependencies file for bbf_expandable.
# This may be replaced when dependencies are built.
