
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expandable/chained_filter.cc" "src/expandable/CMakeFiles/bbf_expandable.dir/chained_filter.cc.o" "gcc" "src/expandable/CMakeFiles/bbf_expandable.dir/chained_filter.cc.o.d"
  "/root/repo/src/expandable/ring_filter.cc" "src/expandable/CMakeFiles/bbf_expandable.dir/ring_filter.cc.o" "gcc" "src/expandable/CMakeFiles/bbf_expandable.dir/ring_filter.cc.o.d"
  "/root/repo/src/expandable/taffy_filter.cc" "src/expandable/CMakeFiles/bbf_expandable.dir/taffy_filter.cc.o" "gcc" "src/expandable/CMakeFiles/bbf_expandable.dir/taffy_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quotient/CMakeFiles/bbf_quotient.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
