file(REMOVE_RECURSE
  "libbbf_expandable.a"
)
