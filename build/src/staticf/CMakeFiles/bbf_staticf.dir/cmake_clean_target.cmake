file(REMOVE_RECURSE
  "libbbf_staticf.a"
)
