# Empty dependencies file for bbf_staticf.
# This may be replaced when dependencies are built.
