file(REMOVE_RECURSE
  "CMakeFiles/bbf_staticf.dir/bloomier_filter.cc.o"
  "CMakeFiles/bbf_staticf.dir/bloomier_filter.cc.o.d"
  "CMakeFiles/bbf_staticf.dir/peeling.cc.o"
  "CMakeFiles/bbf_staticf.dir/peeling.cc.o.d"
  "CMakeFiles/bbf_staticf.dir/ribbon_filter.cc.o"
  "CMakeFiles/bbf_staticf.dir/ribbon_filter.cc.o.d"
  "CMakeFiles/bbf_staticf.dir/xor_filter.cc.o"
  "CMakeFiles/bbf_staticf.dir/xor_filter.cc.o.d"
  "libbbf_staticf.a"
  "libbbf_staticf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_staticf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
