# CMake generated Testfile for 
# Source directory: /root/repo/src/staticf
# Build directory: /root/repo/build/src/staticf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
