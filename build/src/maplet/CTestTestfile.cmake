# CMake generated Testfile for 
# Source directory: /root/repo/src/maplet
# Build directory: /root/repo/build/src/maplet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
