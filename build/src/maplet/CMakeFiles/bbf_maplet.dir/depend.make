# Empty dependencies file for bbf_maplet.
# This may be replaced when dependencies are built.
