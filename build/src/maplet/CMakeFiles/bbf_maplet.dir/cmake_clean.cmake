file(REMOVE_RECURSE
  "CMakeFiles/bbf_maplet.dir/maplet.cc.o"
  "CMakeFiles/bbf_maplet.dir/maplet.cc.o.d"
  "libbbf_maplet.a"
  "libbbf_maplet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_maplet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
