file(REMOVE_RECURSE
  "libbbf_maplet.a"
)
