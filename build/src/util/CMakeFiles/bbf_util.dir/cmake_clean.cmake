file(REMOVE_RECURSE
  "CMakeFiles/bbf_util.dir/bit_vector.cc.o"
  "CMakeFiles/bbf_util.dir/bit_vector.cc.o.d"
  "CMakeFiles/bbf_util.dir/compact_vector.cc.o"
  "CMakeFiles/bbf_util.dir/compact_vector.cc.o.d"
  "CMakeFiles/bbf_util.dir/elias_fano.cc.o"
  "CMakeFiles/bbf_util.dir/elias_fano.cc.o.d"
  "CMakeFiles/bbf_util.dir/hash.cc.o"
  "CMakeFiles/bbf_util.dir/hash.cc.o.d"
  "CMakeFiles/bbf_util.dir/rank_select.cc.o"
  "CMakeFiles/bbf_util.dir/rank_select.cc.o.d"
  "libbbf_util.a"
  "libbbf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
