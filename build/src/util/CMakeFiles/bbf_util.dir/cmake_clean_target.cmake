file(REMOVE_RECURSE
  "libbbf_util.a"
)
