# Empty compiler generated dependencies file for bbf_util.
# This may be replaced when dependencies are built.
