# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("core")
subdirs("workload")
subdirs("bloom")
subdirs("quotient")
subdirs("cuckoo")
subdirs("staticf")
subdirs("expandable")
subdirs("adaptive")
subdirs("range")
subdirs("stacked")
subdirs("maplet")
subdirs("apps")
