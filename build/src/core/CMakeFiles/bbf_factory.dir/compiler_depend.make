# Empty compiler generated dependencies file for bbf_factory.
# This may be replaced when dependencies are built.
