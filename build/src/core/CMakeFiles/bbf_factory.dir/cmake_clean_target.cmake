file(REMOVE_RECURSE
  "libbbf_factory.a"
)
