file(REMOVE_RECURSE
  "CMakeFiles/bbf_factory.dir/factory.cc.o"
  "CMakeFiles/bbf_factory.dir/factory.cc.o.d"
  "libbbf_factory.a"
  "libbbf_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
