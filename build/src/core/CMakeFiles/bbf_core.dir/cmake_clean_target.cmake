file(REMOVE_RECURSE
  "libbbf_core.a"
)
