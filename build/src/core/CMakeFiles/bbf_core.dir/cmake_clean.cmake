file(REMOVE_RECURSE
  "CMakeFiles/bbf_core.dir/filter.cc.o"
  "CMakeFiles/bbf_core.dir/filter.cc.o.d"
  "CMakeFiles/bbf_core.dir/sharded_filter.cc.o"
  "CMakeFiles/bbf_core.dir/sharded_filter.cc.o.d"
  "libbbf_core.a"
  "libbbf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
