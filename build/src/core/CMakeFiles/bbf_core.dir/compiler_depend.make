# Empty compiler generated dependencies file for bbf_core.
# This may be replaced when dependencies are built.
