# Empty dependencies file for bbf_workload.
# This may be replaced when dependencies are built.
