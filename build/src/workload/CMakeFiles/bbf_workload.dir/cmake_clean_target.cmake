file(REMOVE_RECURSE
  "libbbf_workload.a"
)
