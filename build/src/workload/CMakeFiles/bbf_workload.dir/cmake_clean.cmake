file(REMOVE_RECURSE
  "CMakeFiles/bbf_workload.dir/generators.cc.o"
  "CMakeFiles/bbf_workload.dir/generators.cc.o.d"
  "CMakeFiles/bbf_workload.dir/zipf.cc.o"
  "CMakeFiles/bbf_workload.dir/zipf.cc.o.d"
  "libbbf_workload.a"
  "libbbf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
