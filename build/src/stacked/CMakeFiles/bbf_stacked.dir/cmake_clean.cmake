file(REMOVE_RECURSE
  "CMakeFiles/bbf_stacked.dir/learned_filter.cc.o"
  "CMakeFiles/bbf_stacked.dir/learned_filter.cc.o.d"
  "CMakeFiles/bbf_stacked.dir/stacked_filter.cc.o"
  "CMakeFiles/bbf_stacked.dir/stacked_filter.cc.o.d"
  "libbbf_stacked.a"
  "libbbf_stacked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_stacked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
