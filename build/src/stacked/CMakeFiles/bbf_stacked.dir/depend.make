# Empty dependencies file for bbf_stacked.
# This may be replaced when dependencies are built.
