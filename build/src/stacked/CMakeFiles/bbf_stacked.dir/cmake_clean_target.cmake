file(REMOVE_RECURSE
  "libbbf_stacked.a"
)
