file(REMOVE_RECURSE
  "libbbf_net.a"
)
