
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/net/blocklist.cc" "src/apps/net/CMakeFiles/bbf_net.dir/blocklist.cc.o" "gcc" "src/apps/net/CMakeFiles/bbf_net.dir/blocklist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adaptive/CMakeFiles/bbf_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/bbf_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/staticf/CMakeFiles/bbf_staticf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/quotient/CMakeFiles/bbf_quotient.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
