file(REMOVE_RECURSE
  "CMakeFiles/bbf_net.dir/blocklist.cc.o"
  "CMakeFiles/bbf_net.dir/blocklist.cc.o.d"
  "libbbf_net.a"
  "libbbf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
