# Empty compiler generated dependencies file for bbf_net.
# This may be replaced when dependencies are built.
