# Empty compiler generated dependencies file for bbf_bio.
# This may be replaced when dependencies are built.
