file(REMOVE_RECURSE
  "CMakeFiles/bbf_bio.dir/debruijn.cc.o"
  "CMakeFiles/bbf_bio.dir/debruijn.cc.o.d"
  "CMakeFiles/bbf_bio.dir/kmer.cc.o"
  "CMakeFiles/bbf_bio.dir/kmer.cc.o.d"
  "CMakeFiles/bbf_bio.dir/kmer_counter.cc.o"
  "CMakeFiles/bbf_bio.dir/kmer_counter.cc.o.d"
  "CMakeFiles/bbf_bio.dir/sequence_index.cc.o"
  "CMakeFiles/bbf_bio.dir/sequence_index.cc.o.d"
  "libbbf_bio.a"
  "libbbf_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
