
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bio/debruijn.cc" "src/apps/bio/CMakeFiles/bbf_bio.dir/debruijn.cc.o" "gcc" "src/apps/bio/CMakeFiles/bbf_bio.dir/debruijn.cc.o.d"
  "/root/repo/src/apps/bio/kmer.cc" "src/apps/bio/CMakeFiles/bbf_bio.dir/kmer.cc.o" "gcc" "src/apps/bio/CMakeFiles/bbf_bio.dir/kmer.cc.o.d"
  "/root/repo/src/apps/bio/kmer_counter.cc" "src/apps/bio/CMakeFiles/bbf_bio.dir/kmer_counter.cc.o" "gcc" "src/apps/bio/CMakeFiles/bbf_bio.dir/kmer_counter.cc.o.d"
  "/root/repo/src/apps/bio/sequence_index.cc" "src/apps/bio/CMakeFiles/bbf_bio.dir/sequence_index.cc.o" "gcc" "src/apps/bio/CMakeFiles/bbf_bio.dir/sequence_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bloom/CMakeFiles/bbf_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quotient/CMakeFiles/bbf_quotient.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bbf_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
