file(REMOVE_RECURSE
  "libbbf_bio.a"
)
