file(REMOVE_RECURSE
  "CMakeFiles/bbf_lsm.dir/circular_log.cc.o"
  "CMakeFiles/bbf_lsm.dir/circular_log.cc.o.d"
  "CMakeFiles/bbf_lsm.dir/lsm_tree.cc.o"
  "CMakeFiles/bbf_lsm.dir/lsm_tree.cc.o.d"
  "CMakeFiles/bbf_lsm.dir/run.cc.o"
  "CMakeFiles/bbf_lsm.dir/run.cc.o.d"
  "libbbf_lsm.a"
  "libbbf_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
