file(REMOVE_RECURSE
  "libbbf_lsm.a"
)
