# Empty dependencies file for bbf_lsm.
# This may be replaced when dependencies are built.
