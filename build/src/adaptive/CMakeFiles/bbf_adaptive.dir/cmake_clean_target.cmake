file(REMOVE_RECURSE
  "libbbf_adaptive.a"
)
