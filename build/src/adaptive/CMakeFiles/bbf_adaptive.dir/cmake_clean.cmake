file(REMOVE_RECURSE
  "CMakeFiles/bbf_adaptive.dir/adaptive_quotient_filter.cc.o"
  "CMakeFiles/bbf_adaptive.dir/adaptive_quotient_filter.cc.o.d"
  "libbbf_adaptive.a"
  "libbbf_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
