# Empty dependencies file for bbf_adaptive.
# This may be replaced when dependencies are built.
