
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuckoo/adaptive_cuckoo_filter.cc" "src/cuckoo/CMakeFiles/bbf_cuckoo.dir/adaptive_cuckoo_filter.cc.o" "gcc" "src/cuckoo/CMakeFiles/bbf_cuckoo.dir/adaptive_cuckoo_filter.cc.o.d"
  "/root/repo/src/cuckoo/cuckoo_filter.cc" "src/cuckoo/CMakeFiles/bbf_cuckoo.dir/cuckoo_filter.cc.o" "gcc" "src/cuckoo/CMakeFiles/bbf_cuckoo.dir/cuckoo_filter.cc.o.d"
  "/root/repo/src/cuckoo/cuckoo_maplet.cc" "src/cuckoo/CMakeFiles/bbf_cuckoo.dir/cuckoo_maplet.cc.o" "gcc" "src/cuckoo/CMakeFiles/bbf_cuckoo.dir/cuckoo_maplet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
