file(REMOVE_RECURSE
  "libbbf_cuckoo.a"
)
