# Empty dependencies file for bbf_cuckoo.
# This may be replaced when dependencies are built.
