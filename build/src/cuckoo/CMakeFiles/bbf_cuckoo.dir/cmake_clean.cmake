file(REMOVE_RECURSE
  "CMakeFiles/bbf_cuckoo.dir/adaptive_cuckoo_filter.cc.o"
  "CMakeFiles/bbf_cuckoo.dir/adaptive_cuckoo_filter.cc.o.d"
  "CMakeFiles/bbf_cuckoo.dir/cuckoo_filter.cc.o"
  "CMakeFiles/bbf_cuckoo.dir/cuckoo_filter.cc.o.d"
  "CMakeFiles/bbf_cuckoo.dir/cuckoo_maplet.cc.o"
  "CMakeFiles/bbf_cuckoo.dir/cuckoo_maplet.cc.o.d"
  "libbbf_cuckoo.a"
  "libbbf_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbf_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
