# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_test[1]_include.cmake")
include("/root/repo/build/tests/quotient_test[1]_include.cmake")
include("/root/repo/build/tests/cuckoo_test[1]_include.cmake")
include("/root/repo/build/tests/staticf_test[1]_include.cmake")
include("/root/repo/build/tests/expandable_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/range_test[1]_include.cmake")
include("/root/repo/build/tests/maplet_stacked_test[1]_include.cmake")
include("/root/repo/build/tests/lsm_test[1]_include.cmake")
include("/root/repo/build/tests/bio_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sequence_index_test[1]_include.cmake")
include("/root/repo/build/tests/circular_log_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
include("/root/repo/build/tests/rsqf_arf_learned_test[1]_include.cmake")
include("/root/repo/build/tests/contract_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/ring_factory_test[1]_include.cmake")
