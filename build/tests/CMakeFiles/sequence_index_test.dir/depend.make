# Empty dependencies file for sequence_index_test.
# This may be replaced when dependencies are built.
