file(REMOVE_RECURSE
  "CMakeFiles/sequence_index_test.dir/sequence_index_test.cc.o"
  "CMakeFiles/sequence_index_test.dir/sequence_index_test.cc.o.d"
  "sequence_index_test"
  "sequence_index_test.pdb"
  "sequence_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
