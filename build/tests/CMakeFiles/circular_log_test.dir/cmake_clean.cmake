file(REMOVE_RECURSE
  "CMakeFiles/circular_log_test.dir/circular_log_test.cc.o"
  "CMakeFiles/circular_log_test.dir/circular_log_test.cc.o.d"
  "circular_log_test"
  "circular_log_test.pdb"
  "circular_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circular_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
