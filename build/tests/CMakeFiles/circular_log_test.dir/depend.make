# Empty dependencies file for circular_log_test.
# This may be replaced when dependencies are built.
