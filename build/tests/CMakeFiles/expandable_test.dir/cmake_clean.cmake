file(REMOVE_RECURSE
  "CMakeFiles/expandable_test.dir/expandable_test.cc.o"
  "CMakeFiles/expandable_test.dir/expandable_test.cc.o.d"
  "expandable_test"
  "expandable_test.pdb"
  "expandable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expandable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
