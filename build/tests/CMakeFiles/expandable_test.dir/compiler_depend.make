# Empty compiler generated dependencies file for expandable_test.
# This may be replaced when dependencies are built.
