# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rsqf_arf_learned_test.
