# Empty dependencies file for rsqf_arf_learned_test.
# This may be replaced when dependencies are built.
