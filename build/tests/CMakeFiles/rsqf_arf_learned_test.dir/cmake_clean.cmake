file(REMOVE_RECURSE
  "CMakeFiles/rsqf_arf_learned_test.dir/rsqf_arf_learned_test.cc.o"
  "CMakeFiles/rsqf_arf_learned_test.dir/rsqf_arf_learned_test.cc.o.d"
  "rsqf_arf_learned_test"
  "rsqf_arf_learned_test.pdb"
  "rsqf_arf_learned_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsqf_arf_learned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
