# Empty compiler generated dependencies file for ring_factory_test.
# This may be replaced when dependencies are built.
