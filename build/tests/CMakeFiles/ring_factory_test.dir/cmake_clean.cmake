file(REMOVE_RECURSE
  "CMakeFiles/ring_factory_test.dir/ring_factory_test.cc.o"
  "CMakeFiles/ring_factory_test.dir/ring_factory_test.cc.o.d"
  "ring_factory_test"
  "ring_factory_test.pdb"
  "ring_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
