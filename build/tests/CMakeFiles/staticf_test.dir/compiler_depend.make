# Empty compiler generated dependencies file for staticf_test.
# This may be replaced when dependencies are built.
