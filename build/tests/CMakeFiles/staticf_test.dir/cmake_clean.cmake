file(REMOVE_RECURSE
  "CMakeFiles/staticf_test.dir/staticf_test.cc.o"
  "CMakeFiles/staticf_test.dir/staticf_test.cc.o.d"
  "staticf_test"
  "staticf_test.pdb"
  "staticf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staticf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
