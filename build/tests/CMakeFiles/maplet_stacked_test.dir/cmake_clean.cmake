file(REMOVE_RECURSE
  "CMakeFiles/maplet_stacked_test.dir/maplet_stacked_test.cc.o"
  "CMakeFiles/maplet_stacked_test.dir/maplet_stacked_test.cc.o.d"
  "maplet_stacked_test"
  "maplet_stacked_test.pdb"
  "maplet_stacked_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maplet_stacked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
