# Empty dependencies file for maplet_stacked_test.
# This may be replaced when dependencies are built.
