file(REMOVE_RECURSE
  "CMakeFiles/bench_maplet.dir/bench_maplet.cc.o"
  "CMakeFiles/bench_maplet.dir/bench_maplet.cc.o.d"
  "bench_maplet"
  "bench_maplet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maplet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
