# Empty dependencies file for bench_maplet.
# This may be replaced when dependencies are built.
