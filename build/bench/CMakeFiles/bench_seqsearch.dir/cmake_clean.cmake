file(REMOVE_RECURSE
  "CMakeFiles/bench_seqsearch.dir/bench_seqsearch.cc.o"
  "CMakeFiles/bench_seqsearch.dir/bench_seqsearch.cc.o.d"
  "bench_seqsearch"
  "bench_seqsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seqsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
