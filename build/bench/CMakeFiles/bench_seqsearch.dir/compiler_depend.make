# Empty compiler generated dependencies file for bench_seqsearch.
# This may be replaced when dependencies are built.
