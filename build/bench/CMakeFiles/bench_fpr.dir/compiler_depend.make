# Empty compiler generated dependencies file for bench_fpr.
# This may be replaced when dependencies are built.
