
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fpr.cc" "bench/CMakeFiles/bench_fpr.dir/bench_fpr.cc.o" "gcc" "bench/CMakeFiles/bench_fpr.dir/bench_fpr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bbf_factory.dir/DependInfo.cmake"
  "/root/repo/build/src/expandable/CMakeFiles/bbf_expandable.dir/DependInfo.cmake"
  "/root/repo/build/src/stacked/CMakeFiles/bbf_stacked.dir/DependInfo.cmake"
  "/root/repo/build/src/maplet/CMakeFiles/bbf_maplet.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/lsm/CMakeFiles/bbf_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/cuckoo/CMakeFiles/bbf_cuckoo.dir/DependInfo.cmake"
  "/root/repo/build/src/range/CMakeFiles/bbf_range.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/bio/CMakeFiles/bbf_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bbf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/net/CMakeFiles/bbf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/bbf_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/staticf/CMakeFiles/bbf_staticf.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/bbf_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/quotient/CMakeFiles/bbf_quotient.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
