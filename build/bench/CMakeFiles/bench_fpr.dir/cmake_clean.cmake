file(REMOVE_RECURSE
  "CMakeFiles/bench_fpr.dir/bench_fpr.cc.o"
  "CMakeFiles/bench_fpr.dir/bench_fpr.cc.o.d"
  "bench_fpr"
  "bench_fpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
