# Empty compiler generated dependencies file for bench_lsm.
# This may be replaced when dependencies are built.
