file(REMOVE_RECURSE
  "CMakeFiles/bench_lsm.dir/bench_lsm.cc.o"
  "CMakeFiles/bench_lsm.dir/bench_lsm.cc.o.d"
  "bench_lsm"
  "bench_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
