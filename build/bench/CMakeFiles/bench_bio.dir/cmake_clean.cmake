file(REMOVE_RECURSE
  "CMakeFiles/bench_bio.dir/bench_bio.cc.o"
  "CMakeFiles/bench_bio.dir/bench_bio.cc.o.d"
  "bench_bio"
  "bench_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
