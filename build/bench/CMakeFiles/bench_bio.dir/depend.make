# Empty dependencies file for bench_bio.
# This may be replaced when dependencies are built.
