# Empty dependencies file for bench_expandable.
# This may be replaced when dependencies are built.
