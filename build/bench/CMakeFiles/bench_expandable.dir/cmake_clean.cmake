file(REMOVE_RECURSE
  "CMakeFiles/bench_expandable.dir/bench_expandable.cc.o"
  "CMakeFiles/bench_expandable.dir/bench_expandable.cc.o.d"
  "bench_expandable"
  "bench_expandable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expandable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
