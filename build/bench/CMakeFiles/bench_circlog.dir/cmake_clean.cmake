file(REMOVE_RECURSE
  "CMakeFiles/bench_circlog.dir/bench_circlog.cc.o"
  "CMakeFiles/bench_circlog.dir/bench_circlog.cc.o.d"
  "bench_circlog"
  "bench_circlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_circlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
