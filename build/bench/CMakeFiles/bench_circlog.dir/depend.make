# Empty dependencies file for bench_circlog.
# This may be replaced when dependencies are built.
