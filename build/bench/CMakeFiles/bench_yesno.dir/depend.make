# Empty dependencies file for bench_yesno.
# This may be replaced when dependencies are built.
