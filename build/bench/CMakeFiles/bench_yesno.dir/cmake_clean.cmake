file(REMOVE_RECURSE
  "CMakeFiles/bench_yesno.dir/bench_yesno.cc.o"
  "CMakeFiles/bench_yesno.dir/bench_yesno.cc.o.d"
  "bench_yesno"
  "bench_yesno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yesno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
