#ifndef BBF_EXPANDABLE_TAFFY_FILTER_H_
#define BBF_EXPANDABLE_TAFFY_FILTER_H_

#include <cstdint>

#include "core/filter.h"
#include "quotient/quotient_table.h"

namespace bbf {

/// Taffy/InfiniFilter-style expandable filter (§2.2, DESIGN.md §6.2):
/// a quotient table whose slots hold *variable-length* fingerprints,
/// self-delimited by a unary marker bit (value = 1 << len | bits). On
/// expansion the table doubles and every fingerprint donates its lowest
/// bit to the quotient — exactly the bit a fresh hash would place there —
/// so no original keys are needed. Keys inserted after an expansion get
/// full-length fingerprints, so, unlike the plain bit-sacrifice scheme,
/// the false-positive rate grows only *linearly* with the number of
/// doublings (InfiniFilter's key property) instead of doubling each time.
///
/// Entries whose fingerprints are exhausted become "void" and are
/// duplicated into both children on expansion (no false negatives, slight
/// space growth); InfiniFilter's secondary structure is simplified away.
/// Deletes match the longest stored fingerprint prefix.
class TaffyFilter : public Filter {
 public:
  /// Starts with 2^q_bits slots; fresh fingerprints get
  /// `fingerprint_bits` bits (also the slot field width minus the
  /// delimiter bit).
  TaffyFilter(int q_bits, int fingerprint_bits, uint64_t hash_seed = 0x7A);

  using Filter::Contains;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  bool Erase(HashedKey key) override;
  size_t SpaceBits() const override { return table_.SpaceBits(); }
  uint64_t NumKeys() const override { return num_keys_; }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "taffy"; }

  int expansions() const { return expansions_; }
  int q_bits() const { return table_.q_bits(); }
  double LoadFactor() const override { return table_.LoadFactor(); }
  const QuotientTable& table() const { return table_; }

  static constexpr double kMaxLoadFactor = 0.90;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  // Fingerprint encoding within a slot: (1 << len) | bits, so 0 never
  // appears and void entries (len 0) encode as 1.
  static uint64_t Encode(uint64_t bits, int len) {
    return (uint64_t{1} << len) | bits;
  }
  static int LengthOf(uint64_t encoded);
  static uint64_t BitsOf(uint64_t encoded);

  void KeyParts(HashedKey key, uint64_t* fq, uint64_t* fp) const;
  bool InsertEncoded(uint64_t fq, uint64_t encoded);
  void Expand();

  QuotientTable table_;
  int fingerprint_bits_;
  uint64_t hash_seed_;
  uint64_t num_keys_ = 0;
  int expansions_ = 0;
};

}  // namespace bbf

#endif  // BBF_EXPANDABLE_TAFFY_FILTER_H_
