#ifndef BBF_EXPANDABLE_CHAINED_FILTER_H_
#define BBF_EXPANDABLE_CHAINED_FILTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/filter.h"
#include "quotient/quotient_filter.h"

namespace bbf {

/// Chained expansion (§2.2, [24, 53, 2, 98]): a linked list of quotient
/// filters of geometrically increasing capacity. Inserts go to the newest
/// filter; a query probes *every* filter on the chain — the growing query
/// cost the paper calls out as this strategy's weakness (experiment E4).
/// Unlike the Bloom chain, deletes work: Erase tries each filter.
class ChainedQuotientFilter : public Filter {
 public:
  /// First link has 2^q_bits slots; every link uses r_bits remainders
  /// (FPR per link ~2^-r, total ~chain_length * 2^-r).
  ChainedQuotientFilter(int q_bits, int r_bits, uint64_t hash_seed = 0xC4);

  using Filter::Contains;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return num_keys_; }
  /// Newest link only — a fresh link resets the load after each growth.
  double LoadFactor() const override {
    return links_.empty() ? 0.0 : links_.back()->LoadFactor();
  }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "chained-quotient"; }

  /// Per-query probe multiplier.
  size_t chain_length() const { return links_.size(); }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  int r_bits_;
  int next_q_bits_;
  uint64_t hash_seed_;
  std::vector<std::unique_ptr<QuotientFilter>> links_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_EXPANDABLE_CHAINED_FILTER_H_
