#include "expandable/chained_filter.h"

namespace bbf {

ChainedQuotientFilter::ChainedQuotientFilter(int q_bits, int r_bits,
                                             uint64_t hash_seed)
    : r_bits_(r_bits), next_q_bits_(q_bits), hash_seed_(hash_seed) {
  links_.push_back(std::make_unique<QuotientFilter>(
      next_q_bits_, r_bits_, hash_seed_ + links_.size()));
  ++next_q_bits_;
}

bool ChainedQuotientFilter::Insert(uint64_t key) {
  if (!links_.back()->Insert(key)) {
    links_.push_back(std::make_unique<QuotientFilter>(
        next_q_bits_, r_bits_, hash_seed_ + links_.size()));
    ++next_q_bits_;
    if (!links_.back()->Insert(key)) return false;
  }
  ++num_keys_;
  return true;
}

bool ChainedQuotientFilter::Contains(uint64_t key) const {
  for (const auto& link : links_) {
    if (link->Contains(key)) return true;
  }
  return false;
}

bool ChainedQuotientFilter::Erase(uint64_t key) {
  // Newest first: recently inserted keys are most likely there.
  for (auto it = links_.rbegin(); it != links_.rend(); ++it) {
    if ((*it)->Erase(key)) {
      --num_keys_;
      return true;
    }
  }
  return false;
}

uint64_t ChainedQuotientFilter::Count(uint64_t key) const {
  uint64_t count = 0;
  for (const auto& link : links_) count += link->Count(key);
  return count;
}

size_t ChainedQuotientFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& link : links_) bits += link->SpaceBits();
  return bits;
}

}  // namespace bbf
