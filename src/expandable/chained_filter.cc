#include "expandable/chained_filter.h"

#include <utility>

#include "core/metrics_sink.h"
#include "util/serialize.h"

namespace bbf {

ChainedQuotientFilter::ChainedQuotientFilter(int q_bits, int r_bits,
                                             uint64_t hash_seed)
    : r_bits_(r_bits), next_q_bits_(q_bits), hash_seed_(hash_seed) {
  links_.push_back(std::make_unique<QuotientFilter>(
      next_q_bits_, r_bits_, hash_seed_ + links_.size()));
  ++next_q_bits_;
}

bool ChainedQuotientFilter::Insert(HashedKey key) {
  if (!links_.back()->Insert(key)) {
    links_.push_back(std::make_unique<QuotientFilter>(
        next_q_bits_, r_bits_, hash_seed_ + links_.size()));
    ++next_q_bits_;
    if (sink_ != nullptr) sink_->OnExpansion();
    if (!links_.back()->Insert(key)) return false;
  }
  ++num_keys_;
  return true;
}

bool ChainedQuotientFilter::Contains(HashedKey key) const {
  for (const auto& link : links_) {
    if (link->Contains(key)) return true;
  }
  return false;
}

bool ChainedQuotientFilter::Erase(HashedKey key) {
  // Newest first: recently inserted keys are most likely there.
  for (auto it = links_.rbegin(); it != links_.rend(); ++it) {
    if ((*it)->Erase(key)) {
      --num_keys_;
      return true;
    }
  }
  return false;
}

uint64_t ChainedQuotientFilter::Count(HashedKey key) const {
  uint64_t count = 0;
  for (const auto& link : links_) count += link->Count(key);
  return count;
}

size_t ChainedQuotientFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& link : links_) bits += link->SpaceBits();
  return bits;
}

bool ChainedQuotientFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, r_bits_);
  WriteI32(os, next_q_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  WriteU64(os, links_.size());
  for (const auto& link : links_) {
    if (!link->SavePayload(os)) return false;
  }
  return os.good();
}

bool ChainedQuotientFilter::LoadPayload(std::istream& is) {
  int32_t r;
  int32_t next_q;
  uint64_t seed;
  uint64_t n;
  uint64_t num_links;
  if (!ReadI32(is, &r) || r < 1 || r > 64 || !ReadI32(is, &next_q) ||
      next_q < 1 || next_q > 38 || !ReadU64(is, &seed) || !ReadU64(is, &n) ||
      !ReadU64Capped(is, &num_links, 64) || num_links == 0) {
    return false;
  }
  std::vector<std::unique_ptr<QuotientFilter>> links;
  links.reserve(num_links);
  for (uint64_t i = 0; i < num_links; ++i) {
    auto link = std::make_unique<QuotientFilter>(6, r, seed + i);
    if (!link->LoadPayload(is)) return false;
    links.push_back(std::move(link));
  }
  r_bits_ = r;
  next_q_bits_ = next_q;
  hash_seed_ = seed;
  num_keys_ = n;
  links_ = std::move(links);
  return true;
}

}  // namespace bbf
