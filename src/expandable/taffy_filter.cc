#include "expandable/taffy_filter.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/metrics_sink.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

TaffyFilter::TaffyFilter(int q_bits, int fingerprint_bits, uint64_t hash_seed)
    : table_(q_bits, fingerprint_bits + 1),  // +1 for the unary delimiter.
      fingerprint_bits_(fingerprint_bits),
      hash_seed_(hash_seed) {}

int TaffyFilter::LengthOf(uint64_t encoded) {
  return HighestSetBit(encoded);
}

uint64_t TaffyFilter::BitsOf(uint64_t encoded) {
  return encoded ^ (uint64_t{1} << HighestSetBit(encoded));
}

void TaffyFilter::KeyParts(HashedKey key, uint64_t* fq, uint64_t* fp) const {
  const uint64_t h = key.Derive(hash_seed_);
  *fq = h & (table_.num_slots() - 1);
  *fp = h >> table_.q_bits();  // Fresh fingerprints take the next bits.
}

bool TaffyFilter::InsertEncoded(uint64_t fq, uint64_t encoded) {
  if (table_.num_used_slots() + 1 >= table_.num_slots()) return false;
  if (table_.SlotEmpty(fq) && !table_.occupied(fq)) {
    table_.InsertSlotAt(fq, fq, encoded, /*continuation=*/false);
    table_.set_occupied(fq, true);
    return true;
  }
  const bool was_occupied = table_.occupied(fq);
  table_.set_occupied(fq, true);
  const uint64_t start = table_.FindRunStart(fq);
  if (was_occupied) {
    // Runs are unordered here (lengths vary); insert as the new head.
    table_.set_continuation(start, true);
  }
  table_.InsertSlotAt(start, fq, encoded, /*continuation=*/false);
  return true;
}

bool TaffyFilter::Insert(HashedKey key) {
  if (table_.LoadFactor() >= kMaxLoadFactor) Expand();
  uint64_t fq;
  uint64_t fp;
  KeyParts(key, &fq, &fp);
  const int len = std::min(fingerprint_bits_, 64 - table_.q_bits());
  if (!InsertEncoded(fq, Encode(fp & LowMask(len), len))) return false;
  ++num_keys_;
  return true;
}

bool TaffyFilter::Contains(HashedKey key) const {
  uint64_t fq;
  uint64_t fp;
  KeyParts(key, &fq, &fp);
  if (!table_.occupied(fq)) return false;
  uint64_t s = table_.FindRunStart(fq);
  do {
    const uint64_t encoded = table_.remainder(s);
    const int len = LengthOf(encoded);
    // A stored fingerprint matches if it is a prefix (in low-order bits)
    // of the query's fingerprint; void entries (len 0) match everything.
    if ((fp & LowMask(len)) == BitsOf(encoded)) return true;
    s = table_.Next(s);
  } while (table_.continuation(s));
  return false;
}

bool TaffyFilter::Erase(HashedKey key) {
  uint64_t fq;
  uint64_t fp;
  KeyParts(key, &fq, &fp);
  if (!table_.occupied(fq)) return false;
  const uint64_t start = table_.FindRunStart(fq);
  // Remove the longest matching fingerprint (most specific entry).
  uint64_t best_pos = 0;
  int best_len = -1;
  uint64_t s = start;
  do {
    const uint64_t encoded = table_.remainder(s);
    const int len = LengthOf(encoded);
    if ((fp & LowMask(len)) == BitsOf(encoded) && len > best_len) {
      best_len = len;
      best_pos = s;
    }
    s = table_.Next(s);
  } while (table_.continuation(s));
  if (best_len < 0) return false;
  table_.RemoveEntry(best_pos, start, fq);
  --num_keys_;
  return true;
}

void TaffyFilter::Expand() {
  std::vector<std::pair<uint64_t, uint64_t>> entries;  // (quotient, encoded).
  entries.reserve(table_.num_used_slots());
  table_.ForEachSlot([&](uint64_t q, uint64_t slot) {
    entries.emplace_back(q, table_.remainder(slot));
  });
  const int old_q = table_.q_bits();
  QuotientTable bigger(old_q + 1, table_.r_bits());
  table_ = std::move(bigger);
  for (const auto& [fq, encoded] : entries) {
    const int len = LengthOf(encoded);
    if (len == 0) {
      // Void fingerprint: the donated bit is unknown, so the entry lives
      // in both children (keeps the no-false-negative guarantee).
      InsertEncoded(fq, encoded);
      InsertEncoded(fq | (uint64_t{1} << old_q), encoded);
    } else {
      const uint64_t bits = BitsOf(encoded);
      const uint64_t new_fq = fq | ((bits & 1) << old_q);
      InsertEncoded(new_fq, Encode(bits >> 1, len - 1));
    }
  }
  ++expansions_;
  if (sink_ != nullptr) sink_->OnExpansion();
}

bool TaffyFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, fingerprint_bits_);
  WriteI32(os, expansions_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  table_.Save(os);
  return os.good();
}

bool TaffyFilter::LoadPayload(std::istream& is) {
  int32_t f;
  int32_t expansions;
  uint64_t seed;
  uint64_t n;
  if (!ReadI32(is, &f) || f < 1 || f > 62 || !ReadI32(is, &expansions) ||
      expansions < 0 || expansions > 64 || !ReadU64(is, &seed) ||
      !ReadU64(is, &n)) {
    return false;
  }
  QuotientTable table;
  // Slot width is the fresh fingerprint length plus the unary delimiter;
  // it never changes across expansions.
  if (!table.Load(is) || table.r_bits() != f + 1 || table.has_tag() ||
      table.value_bits() != 0) {
    return false;
  }
  fingerprint_bits_ = f;
  expansions_ = expansions;
  hash_seed_ = seed;
  num_keys_ = n;
  table_ = std::move(table);
  return true;
}

}  // namespace bbf
