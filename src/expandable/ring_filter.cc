#include "expandable/ring_filter.h"

#include <algorithm>

#include "util/bits.h"
#include "util/hash.h"

namespace bbf {

RingFilter::RingFilter(int r_bits, uint64_t segment_capacity,
                       uint64_t hash_seed)
    : r_bits_(r_bits),
      segment_capacity_(segment_capacity),
      hash_seed_(hash_seed) {
  ring_[0] = Segment{};  // One segment initially owns the whole ring.
}

void RingFilter::Locate(uint64_t key, uint32_t* bucket, uint16_t* fp) const {
  const uint64_t h = Hash64(key, hash_seed_);
  *bucket = static_cast<uint32_t>(h >> (64 - kBucketBits));
  *fp = static_cast<uint16_t>(h & LowMask(r_bits_));
}

RingFilter::Segment& RingFilter::SegmentOf(uint32_t bucket) {
  ++ring_searches_;
  auto it = ring_.upper_bound(bucket);
  --it;  // Largest mount <= bucket; ring_[0] always exists.
  return it->second;
}

const RingFilter::Segment& RingFilter::SegmentOf(uint32_t bucket) const {
  ++ring_searches_;
  auto it = ring_.upper_bound(bucket);
  --it;
  return it->second;
}

bool RingFilter::Insert(uint64_t key) {
  uint32_t bucket;
  uint16_t fp;
  Locate(key, &bucket, &fp);
  Segment& segment = SegmentOf(bucket);
  segment.buckets[bucket].push_back(fp);
  ++segment.residents;
  ++num_keys_;
  if (segment.residents > segment_capacity_) {
    auto it = ring_.upper_bound(bucket);
    --it;
    MaybeSplit(it->first);
  }
  return true;
}

void RingFilter::MaybeSplit(uint32_t mount) {
  Segment& segment = ring_[mount];
  if (segment.buckets.size() < 2) return;  // One bucket can't split.
  // Mount a new segment at the median resident bucket; buckets at or
  // above it migrate wholesale (fingerprints untouched).
  uint64_t moved_target = segment.residents / 2;
  uint64_t seen = 0;
  uint32_t split_at = 0;
  for (const auto& [b, fps] : segment.buckets) {
    seen += fps.size();
    if (seen >= moved_target && b != mount) {
      split_at = b;
      break;
    }
  }
  if (split_at == 0) return;  // Everything is in the mount bucket.
  Segment fresh;
  auto first_moved = segment.buckets.lower_bound(split_at);
  for (auto it = first_moved; it != segment.buckets.end(); ++it) {
    fresh.residents += it->second.size();
    fresh.buckets.insert(std::move(*it));
  }
  segment.buckets.erase(first_moved, segment.buckets.end());
  segment.residents -= fresh.residents;
  ring_[split_at] = std::move(fresh);
}

bool RingFilter::Contains(uint64_t key) const {
  uint32_t bucket;
  uint16_t fp;
  Locate(key, &bucket, &fp);
  const Segment& segment = SegmentOf(bucket);
  const auto it = segment.buckets.find(bucket);
  if (it == segment.buckets.end()) return false;
  return std::find(it->second.begin(), it->second.end(), fp) !=
         it->second.end();
}

bool RingFilter::Erase(uint64_t key) {
  uint32_t bucket;
  uint16_t fp;
  Locate(key, &bucket, &fp);
  Segment& segment = SegmentOf(bucket);
  const auto it = segment.buckets.find(bucket);
  if (it == segment.buckets.end()) return false;
  const auto pos = std::find(it->second.begin(), it->second.end(), fp);
  if (pos == it->second.end()) return false;
  it->second.erase(pos);
  if (it->second.empty()) segment.buckets.erase(it);
  --segment.residents;
  --num_keys_;
  return true;
}

size_t RingFilter::SpaceBits() const {
  // Logical footprint: fingerprints + ring/bucket bookkeeping (one mount
  // id per segment, one id + length per occupied bucket).
  size_t bucket_count = 0;
  for (const auto& [m, s] : ring_) bucket_count += s.buckets.size();
  return num_keys_ * r_bits_ + ring_.size() * 64 + bucket_count * 32;
}

}  // namespace bbf
