#include "expandable/ring_filter.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

RingFilter::RingFilter(int r_bits, uint64_t segment_capacity,
                       uint64_t hash_seed)
    : r_bits_(r_bits),
      segment_capacity_(segment_capacity),
      hash_seed_(hash_seed) {
  ring_[0] = Segment{};  // One segment initially owns the whole ring.
}

void RingFilter::Locate(HashedKey key, uint32_t* bucket, uint16_t* fp) const {
  const uint64_t h = key.Derive(hash_seed_);
  *bucket = static_cast<uint32_t>(h >> (64 - kBucketBits));
  *fp = static_cast<uint16_t>(h & LowMask(r_bits_));
}

RingFilter::Segment& RingFilter::SegmentOf(uint32_t bucket) {
  ring_searches_.fetch_add(1, std::memory_order_relaxed);
  auto it = ring_.upper_bound(bucket);
  --it;  // Largest mount <= bucket; ring_[0] always exists.
  return it->second;
}

const RingFilter::Segment& RingFilter::SegmentOf(uint32_t bucket) const {
  ring_searches_.fetch_add(1, std::memory_order_relaxed);
  auto it = ring_.upper_bound(bucket);
  --it;
  return it->second;
}

bool RingFilter::Insert(HashedKey key) {
  uint32_t bucket;
  uint16_t fp;
  Locate(key, &bucket, &fp);
  Segment& segment = SegmentOf(bucket);
  segment.buckets[bucket].push_back(fp);
  ++segment.residents;
  ++num_keys_;
  if (segment.residents > segment_capacity_) {
    auto it = ring_.upper_bound(bucket);
    --it;
    MaybeSplit(it->first);
  }
  return true;
}

void RingFilter::MaybeSplit(uint32_t mount) {
  Segment& segment = ring_[mount];
  if (segment.buckets.size() < 2) return;  // One bucket can't split.
  // Mount a new segment at the median resident bucket; buckets at or
  // above it migrate wholesale (fingerprints untouched).
  uint64_t moved_target = segment.residents / 2;
  uint64_t seen = 0;
  uint32_t split_at = 0;
  for (const auto& [b, fps] : segment.buckets) {
    seen += fps.size();
    if (seen >= moved_target && b != mount) {
      split_at = b;
      break;
    }
  }
  if (split_at == 0) return;  // Everything is in the mount bucket.
  Segment fresh;
  auto first_moved = segment.buckets.lower_bound(split_at);
  for (auto it = first_moved; it != segment.buckets.end(); ++it) {
    fresh.residents += it->second.size();
    fresh.buckets.insert(std::move(*it));
  }
  segment.buckets.erase(first_moved, segment.buckets.end());
  segment.residents -= fresh.residents;
  ring_[split_at] = std::move(fresh);
}

bool RingFilter::Contains(HashedKey key) const {
  uint32_t bucket;
  uint16_t fp;
  Locate(key, &bucket, &fp);
  const Segment& segment = SegmentOf(bucket);
  const auto it = segment.buckets.find(bucket);
  if (it == segment.buckets.end()) return false;
  return std::find(it->second.begin(), it->second.end(), fp) !=
         it->second.end();
}

bool RingFilter::Erase(HashedKey key) {
  uint32_t bucket;
  uint16_t fp;
  Locate(key, &bucket, &fp);
  Segment& segment = SegmentOf(bucket);
  const auto it = segment.buckets.find(bucket);
  if (it == segment.buckets.end()) return false;
  const auto pos = std::find(it->second.begin(), it->second.end(), fp);
  if (pos == it->second.end()) return false;
  it->second.erase(pos);
  if (it->second.empty()) segment.buckets.erase(it);
  --segment.residents;
  --num_keys_;
  return true;
}

size_t RingFilter::SpaceBits() const {
  // Logical footprint: fingerprints + ring/bucket bookkeeping (one mount
  // id per segment, one id + length per occupied bucket).
  size_t bucket_count = 0;
  for (const auto& [m, s] : ring_) bucket_count += s.buckets.size();
  return num_keys_ * r_bits_ + ring_.size() * 64 + bucket_count * 32;
}

bool RingFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, r_bits_);
  WriteU64(os, segment_capacity_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  WriteU64(os, ring_.size());
  for (const auto& [mount, segment] : ring_) {
    WriteU64(os, mount);
    WriteU64(os, segment.buckets.size());
    for (const auto& [bucket, fps] : segment.buckets) {
      WriteU64(os, bucket);
      WriteU64(os, fps.size());
      for (uint16_t fp : fps) WriteU64(os, fp);
    }
  }
  return os.good();
}

bool RingFilter::LoadPayload(std::istream& is) {
  constexpr uint64_t kNumBuckets = uint64_t{1} << kBucketBits;
  int32_t r;
  uint64_t capacity;
  uint64_t seed;
  uint64_t n;
  uint64_t num_segments;
  if (!ReadI32(is, &r) || r < 1 || r > 16 ||
      !ReadU64Capped(is, &capacity, kMaxSnapshotElements) || capacity == 0 ||
      !ReadU64(is, &seed) || !ReadU64(is, &n) ||
      !ReadU64Capped(is, &num_segments, kNumBuckets) || num_segments == 0) {
    return false;
  }
  std::vector<std::pair<uint32_t, Segment>> segments;
  segments.reserve(num_segments);
  uint64_t total_keys = 0;
  for (uint64_t i = 0; i < num_segments; ++i) {
    uint64_t mount;
    uint64_t num_buckets;
    // Mounts arrive in map order; the first segment must own bucket 0 so
    // SegmentOf's "largest mount <= bucket" probe always finds a home.
    if (!ReadU64Capped(is, &mount, kNumBuckets - 1) ||
        (i == 0 ? mount != 0
                : mount <= segments.back().first) ||
        !ReadU64Capped(is, &num_buckets, kNumBuckets)) {
      return false;
    }
    Segment segment;
    uint64_t prev_bucket = 0;
    for (uint64_t b = 0; b < num_buckets; ++b) {
      uint64_t bucket;
      uint64_t count;
      if (!ReadU64Capped(is, &bucket, kNumBuckets - 1) || bucket < mount ||
          (b > 0 && bucket <= prev_bucket) ||
          !ReadU64Capped(is, &count, kMaxSnapshotElements) || count == 0) {
        return false;
      }
      prev_bucket = bucket;
      std::vector<uint16_t> fps;
      fps.reserve(std::min<uint64_t>(count, 4096));
      for (uint64_t k = 0; k < count; ++k) {
        uint64_t fp;
        if (!ReadU64Capped(is, &fp, LowMask(r))) return false;
        fps.push_back(static_cast<uint16_t>(fp));
      }
      segment.residents += count;
      segment.buckets.emplace(static_cast<uint32_t>(bucket), std::move(fps));
    }
    total_keys += segment.residents;
    segments.emplace_back(static_cast<uint32_t>(mount), std::move(segment));
  }
  if (total_keys != n) return false;
  // Every bucket must live inside its segment's arc.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    const auto& buckets = segments[i].second.buckets;
    if (!buckets.empty() && buckets.rbegin()->first >= segments[i + 1].first) {
      return false;
    }
  }
  std::map<uint32_t, Segment> ring;
  for (auto& [mount, segment] : segments) {
    ring.emplace(mount, std::move(segment));
  }
  r_bits_ = r;
  segment_capacity_ = capacity;
  hash_seed_ = seed;
  num_keys_ = n;
  ring_ = std::move(ring);
  ring_searches_ = 0;  // Query-cost stat, not semantic state.
  return true;
}

}  // namespace bbf
