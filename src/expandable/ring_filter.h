#ifndef BBF_EXPANDABLE_RING_FILTER_H_
#define BBF_EXPANDABLE_RING_FILTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "core/filter.h"

namespace bbf {

/// Elastic hash-ring filter (§2.2: "a few recent filters conceptually
/// form a hash ring of buckets to support elastic expansion" — the
/// Consistent Cuckoo / Elastic Bloom line [65, 97, 99]).
///
/// Keys hash to a fixed universe of tiny fingerprint buckets; a ring maps
/// contiguous bucket arcs to *segments* (the elastic unit — a node or a
/// memory chunk). When a segment reaches its resident budget it splits:
/// a new segment is mounted at the arc's midpoint and the upper half of
/// the buckets migrate wholesale — fingerprints never change, so there is
/// no fingerprint-bit erosion, and growth is unbounded.
///
/// The paper's criticism is reproduced measurably: every operation first
/// locates the owning segment, so "queries, deletes, and insertions all
/// become logarithmic" — ring_searches() exposes the cost.
class RingFilter : public Filter {
 public:
  /// r-bit fingerprints; each segment holds at most `segment_capacity`
  /// resident fingerprints before it splits.
  RingFilter(int r_bits, uint64_t segment_capacity = 4096,
             uint64_t hash_seed = 0x216);

  using Filter::Contains;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  bool Erase(HashedKey key) override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return num_keys_; }
  /// Mean residents per segment budget; splits keep this below 1.0, so a
  /// ring filter saturates only transiently.
  double LoadFactor() const override {
    return ring_.empty() ? 0.0
                         : static_cast<double>(num_keys_) /
                               (ring_.size() * segment_capacity_);
  }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "ring"; }

  size_t num_segments() const { return ring_.size(); }
  /// Ordered-map segment lookups so far — the logarithmic-cost proxy.
  uint64_t ring_searches() const {
    return ring_searches_.load(std::memory_order_relaxed);
  }

  static constexpr int kBucketBits = 22;  // 4M-bucket fixed universe.

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  struct Segment {
    // Buckets of this arc, ordered by bucket id so splits are range
    // moves. Each bucket is a tiny fingerprint list.
    std::map<uint32_t, std::vector<uint16_t>> buckets;
    uint64_t residents = 0;
  };

  void Locate(HashedKey key, uint32_t* bucket, uint16_t* fp) const;
  Segment& SegmentOf(uint32_t bucket);
  const Segment& SegmentOf(uint32_t bucket) const;
  void MaybeSplit(uint32_t mount);

  int r_bits_;
  uint64_t segment_capacity_;
  uint64_t hash_seed_;
  std::map<uint32_t, Segment> ring_;  // Mount bucket-id -> segment.
  uint64_t num_keys_ = 0;
  // Atomic so concurrent readers (Contains is const and lock-free under
  // ShardedFilter's shared lock) can bump the stat without a data race.
  mutable std::atomic<uint64_t> ring_searches_{0};
};

}  // namespace bbf

#endif  // BBF_EXPANDABLE_RING_FILTER_H_
