#include "adaptive/adaptive_quotient_filter.h"

#include <algorithm>
#include <utility>

#include "core/metrics_sink.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

AdaptiveQuotientFilter::AdaptiveQuotientFilter(int q_bits, int r_bits,
                                               uint64_t hash_seed)
    : base_(q_bits, r_bits, hash_seed), hash_seed_(hash_seed) {}

AdaptiveQuotientFilter AdaptiveQuotientFilter::ForCapacity(uint64_t n,
                                                           double fpr) {
  const QuotientFilter sized = QuotientFilter::ForCapacity(n, fpr);
  return AdaptiveQuotientFilter(sized.q_bits(), sized.r_bits());
}

uint64_t AdaptiveQuotientFilter::FingerprintKey(HashedKey key) const {
  uint64_t fq;
  uint64_t fr;
  base_.Fingerprint(key, &fq, &fr);
  return (fq << base_.r_bits()) | fr;
}

uint64_t AdaptiveQuotientFilter::ExtensionBitsOf(HashedKey key,
                                                 int len) const {
  // Extension bits come from an independent derived stream so they extend
  // the fingerprint regardless of the base filter's geometry.
  return key.Derive(hash_seed_ + 0xE47) & LowMask(len);
}

bool AdaptiveQuotientFilter::Insert(HashedKey key) {
  if (!base_.Insert(key)) return false;
  const uint64_t f = FingerprintKey(key);
  remote_[f].push_back(key.value());
  const auto it = extensions_.find(f);
  if (it != extensions_.end()) {
    // This fingerprint already adapted: give the new resident an extension
    // of the same length as the longest present, so Contains keeps
    // consulting extensions consistently.
    int len = 1;
    for (const Extension& e : it->second) len = std::max(len, e.len);
    it->second.push_back(
        Extension{key.value(), len, ExtensionBitsOf(key, len)});
  }
  return true;
}

bool AdaptiveQuotientFilter::Contains(HashedKey key) const {
  if (!base_.Contains(key)) return false;
  const uint64_t f = FingerprintKey(key);
  const auto it = extensions_.find(f);
  if (it == extensions_.end()) return true;  // Never adapted: plain hit.
  for (const Extension& e : it->second) {
    if (ExtensionBitsOf(key, e.len) == e.bits) return true;
  }
  return false;
}

bool AdaptiveQuotientFilter::Erase(HashedKey key) {
  const uint64_t f = FingerprintKey(key);
  const auto rit = remote_.find(f);
  if (rit == remote_.end()) return false;
  auto& keys = rit->second;
  const auto kit = std::find(keys.begin(), keys.end(), key.value());
  if (kit == keys.end()) return false;  // Exact deletes via the dictionary.
  keys.erase(kit);
  if (keys.empty()) remote_.erase(rit);
  const auto eit = extensions_.find(f);
  if (eit != extensions_.end()) {
    auto& exts = eit->second;
    for (size_t i = 0; i < exts.size(); ++i) {
      if (exts[i].key == key.value()) {
        exts.erase(exts.begin() + i);
        break;
      }
    }
    if (exts.empty()) extensions_.erase(eit);
  }
  return base_.Erase(key);
}

bool AdaptiveQuotientFilter::ReportFalsePositive(HashedKey key) {
  const uint64_t f = FingerprintKey(key);
  const auto rit = remote_.find(f);
  if (rit == remote_.end()) {
    // Nothing resident shares the fingerprint (e.g. the report was stale);
    // nothing to adapt.
    return !Contains(key);
  }
  std::vector<Extension> exts;
  exts.reserve(rit->second.size());
  for (uint64_t stored : rit->second) {
    const HashedKey resident = HashedKey::FromMix(stored);
    // Grow this resident's extension until it no longer matches `key`.
    int len = 1;
    while (len < kMaxExtensionBits &&
           ExtensionBitsOf(resident, len) == ExtensionBitsOf(key, len)) {
      ++len;
    }
    exts.push_back(Extension{stored, len, ExtensionBitsOf(resident, len)});
  }
  extensions_[f] = std::move(exts);
  ++adaptations_;
  if (sink_ != nullptr) sink_->OnAdapt();
  return !Contains(key);
}

size_t AdaptiveQuotientFilter::SpaceBits() const {
  size_t ext_bits = 0;
  for (const auto& [f, exts] : extensions_) {
    // Charge the fingerprint index plus each extension's bits and length.
    ext_bits += 64;
    for (const Extension& e : exts) ext_bits += e.len + 6;
  }
  return base_.SpaceBits() + ext_bits;
}

bool AdaptiveQuotientFilter::SavePayload(std::ostream& os) const {
  WriteU64(os, hash_seed_);
  WriteU64(os, adaptations_);
  if (!base_.SavePayload(os)) return false;
  WriteU64(os, remote_.size());
  for (const auto& [f, keys] : remote_) {
    WriteU64(os, f);
    WriteU64(os, keys.size());
    for (uint64_t k : keys) WriteU64(os, k);
  }
  WriteU64(os, extensions_.size());
  for (const auto& [f, exts] : extensions_) {
    WriteU64(os, f);
    WriteU64(os, exts.size());
    for (const Extension& e : exts) {
      WriteU64(os, e.key);
      WriteI32(os, e.len);
      WriteU64(os, e.bits);
    }
  }
  return os.good();
}

bool AdaptiveQuotientFilter::LoadPayload(std::istream& is) {
  uint64_t seed;
  uint64_t adaptations;
  if (!ReadU64(is, &seed) || !ReadU64(is, &adaptations)) return false;
  QuotientFilter base(6, 4, seed);
  if (!base.LoadPayload(is)) return false;
  uint64_t num_remote;
  if (!ReadU64Capped(is, &num_remote, kMaxSnapshotElements)) return false;
  std::unordered_map<uint64_t, std::vector<uint64_t>> remote;
  remote.reserve(std::min<uint64_t>(num_remote, 1 << 20));
  for (uint64_t i = 0; i < num_remote; ++i) {
    uint64_t f;
    uint64_t count;
    if (!ReadU64(is, &f) ||
        !ReadU64Capped(is, &count, kMaxSnapshotElements) || count == 0 ||
        remote.count(f) != 0) {
      return false;
    }
    std::vector<uint64_t>& keys = remote[f];
    keys.reserve(std::min<uint64_t>(count, 4096));
    for (uint64_t k = 0; k < count; ++k) {
      uint64_t key;
      if (!ReadU64(is, &key)) return false;
      keys.push_back(key);
    }
  }
  uint64_t num_ext;
  if (!ReadU64Capped(is, &num_ext, kMaxSnapshotElements)) return false;
  std::unordered_map<uint64_t, std::vector<Extension>> extensions;
  extensions.reserve(std::min<uint64_t>(num_ext, 1 << 20));
  for (uint64_t i = 0; i < num_ext; ++i) {
    uint64_t f;
    uint64_t count;
    if (!ReadU64(is, &f) ||
        !ReadU64Capped(is, &count, kMaxSnapshotElements) || count == 0 ||
        extensions.count(f) != 0) {
      return false;
    }
    std::vector<Extension>& exts = extensions[f];
    exts.reserve(std::min<uint64_t>(count, 4096));
    for (uint64_t k = 0; k < count; ++k) {
      uint64_t key;
      int32_t len;
      uint64_t bits;
      if (!ReadU64(is, &key) || !ReadI32(is, &len) || len < 1 ||
          len > kMaxExtensionBits || !ReadU64(is, &bits) ||
          // Extensions are pure hash derivatives of the resident key;
          // anything else is corruption.
          bits != (HashedKey::FromMix(key).Derive(seed + 0xE47) &
                   LowMask(len))) {
        return false;
      }
      exts.push_back(Extension{key, len, bits});
    }
  }
  hash_seed_ = seed;
  adaptations_ = adaptations;
  base_ = std::move(base);
  remote_ = std::move(remote);
  extensions_ = std::move(extensions);
  return true;
}

}  // namespace bbf
