#ifndef BBF_ADAPTIVE_ADAPTIVE_QUOTIENT_FILTER_H_
#define BBF_ADAPTIVE_ADAPTIVE_QUOTIENT_FILTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/filter.h"
#include "quotient/quotient_filter.h"

namespace bbf {

/// Adaptive quotient filter in the broom-filter mould [Bender et al. 2018;
/// Wen et al. 2025] (§2.3): a quotient filter plus per-fingerprint
/// *extensions*. When the fronted dictionary reports a false positive,
/// every resident key sharing the offending fingerprint grows its
/// extension — further hash bits, recomputed from the dictionary's copy of
/// the key — until the reported query no longer matches. A query that hits
/// the base filter must also match some resident's extension, so an
/// adapted false positive can never repeat: any sequence of n negative
/// queries sees O(eps * n) false positives even when chosen adversarially
/// (the *monotone adaptivity* guarantee).
///
/// The extension store is a sparse side map (most fingerprints never adapt
/// and cost nothing); the remote key store models the dictionary the
/// filter always fronts and is not charged to SpaceBits.
class AdaptiveQuotientFilter : public Filter, public AdaptiveHook {
 public:
  AdaptiveQuotientFilter(int q_bits, int r_bits, uint64_t hash_seed = 0xAD);

  static AdaptiveQuotientFilter ForCapacity(uint64_t n, double fpr);

  using Filter::Contains;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  bool Erase(HashedKey key) override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return base_.NumKeys(); }
  double LoadFactor() const override { return base_.LoadFactor(); }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "adaptive-quotient"; }

  using AdaptiveHook::ReportFalsePositive;

  /// Extends colliding residents' fingerprints until `key` stops
  /// matching. Returns true if Contains(key) is now false.
  bool ReportFalsePositive(HashedKey key) override;

  uint64_t adaptations() const { return adaptations_; }
  size_t extended_fingerprints() const { return extensions_.size(); }

  static constexpr int kMaxExtensionBits = 32;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  struct Extension {
    uint64_t key;   // Canonical resident key (remote store / dictionary).
    int len;        // Extension bits in use.
    uint64_t bits;  // The resident's own hash extension of that length.
  };

  uint64_t FingerprintKey(HashedKey key) const;  // (fq << r) | fr.
  uint64_t ExtensionBitsOf(HashedKey key, int len) const;

  QuotientFilter base_;
  uint64_t hash_seed_;
  // fingerprint -> residents with extended fingerprints. Only populated
  // for fingerprints that have adapted at least once.
  std::unordered_map<uint64_t, std::vector<Extension>> extensions_;
  // fingerprint -> canonical resident keys (dictionary reverse index).
  std::unordered_map<uint64_t, std::vector<uint64_t>> remote_;
  uint64_t adaptations_ = 0;
};

}  // namespace bbf

#endif  // BBF_ADAPTIVE_ADAPTIVE_QUOTIENT_FILTER_H_
