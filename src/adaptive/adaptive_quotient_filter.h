#ifndef BBF_ADAPTIVE_ADAPTIVE_QUOTIENT_FILTER_H_
#define BBF_ADAPTIVE_ADAPTIVE_QUOTIENT_FILTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/filter.h"
#include "quotient/quotient_filter.h"

namespace bbf {

/// Adaptive quotient filter in the broom-filter mould [Bender et al. 2018;
/// Wen et al. 2025] (§2.3): a quotient filter plus per-fingerprint
/// *extensions*. When the fronted dictionary reports a false positive,
/// every resident key sharing the offending fingerprint grows its
/// extension — further hash bits, recomputed from the dictionary's copy of
/// the key — until the reported query no longer matches. A query that hits
/// the base filter must also match some resident's extension, so an
/// adapted false positive can never repeat: any sequence of n negative
/// queries sees O(eps * n) false positives even when chosen adversarially
/// (the *monotone adaptivity* guarantee).
///
/// The extension store is a sparse side map (most fingerprints never adapt
/// and cost nothing); the remote key store models the dictionary the
/// filter always fronts and is not charged to SpaceBits.
class AdaptiveQuotientFilter : public Filter, public AdaptiveHook {
 public:
  AdaptiveQuotientFilter(int q_bits, int r_bits, uint64_t hash_seed = 0xAD);

  static AdaptiveQuotientFilter ForCapacity(uint64_t n, double fpr);

  bool Insert(uint64_t key) override;
  bool Contains(uint64_t key) const override;
  bool Erase(uint64_t key) override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return base_.NumKeys(); }
  double LoadFactor() const override { return base_.LoadFactor(); }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "adaptive-quotient"; }

  /// Extends colliding residents' fingerprints until `key` stops
  /// matching. Returns true if Contains(key) is now false.
  bool ReportFalsePositive(uint64_t key) override;

  uint64_t adaptations() const { return adaptations_; }
  size_t extended_fingerprints() const { return extensions_.size(); }

  static constexpr int kMaxExtensionBits = 32;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  struct Extension {
    uint64_t key;   // Resident (from the remote store / dictionary).
    int len;        // Extension bits in use.
    uint64_t bits;  // The resident's own hash extension of that length.
  };

  uint64_t FingerprintKey(uint64_t key) const;  // (fq << r) | fr.
  uint64_t ExtensionBitsOf(uint64_t key, int len) const;

  QuotientFilter base_;
  uint64_t hash_seed_;
  // fingerprint -> residents with extended fingerprints. Only populated
  // for fingerprints that have adapted at least once.
  std::unordered_map<uint64_t, std::vector<Extension>> extensions_;
  // fingerprint -> resident keys (the dictionary's reverse index).
  std::unordered_map<uint64_t, std::vector<uint64_t>> remote_;
  uint64_t adaptations_ = 0;
};

}  // namespace bbf

#endif  // BBF_ADAPTIVE_ADAPTIVE_QUOTIENT_FILTER_H_
