#include "bloom/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {
namespace {

int OptimalNumHashes(double bits_per_key) {
  return std::max(1, static_cast<int>(std::lround(bits_per_key * 0.6931)));
}

}  // namespace

BloomFilter::BloomFilter(uint64_t expected_keys, double bits_per_key,
                         int num_hashes, uint64_t hash_seed)
    : bits_(std::max<uint64_t>(
          64, static_cast<uint64_t>(expected_keys * bits_per_key))),
      num_hashes_(num_hashes > 0 ? num_hashes
                                 : OptimalNumHashes(bits_per_key)),
      hash_seed_(hash_seed) {}

BloomFilter BloomFilter::ForFpr(uint64_t expected_keys, double fpr,
                                uint64_t hash_seed) {
  // m/n = -ln(eps) / (ln 2)^2 = 1.44 lg(1/eps).
  const double bits_per_key = -std::log(fpr) / (0.6931 * 0.6931);
  return BloomFilter(expected_keys, bits_per_key, 0, hash_seed);
}

bool BloomFilter::Insert(uint64_t key) {
  // Kirsch–Mitzenmacher double hashing: h_i = h1 + i * h2.
  const uint64_t h1 = Hash64(key, hash_seed_ * 2 + 0x71);
  const uint64_t h2 = Hash64(key, hash_seed_ * 2 + 0x72) | 1;
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    bits_.Set(FastRange64(h, bits_.size()));
    h += h2;
  }
  ++num_keys_;
  return true;
}

bool BloomFilter::Contains(uint64_t key) const {
  const uint64_t h1 = Hash64(key, hash_seed_ * 2 + 0x71);
  const uint64_t h2 = Hash64(key, hash_seed_ * 2 + 0x72) | 1;
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    if (!bits_.Get(FastRange64(h, bits_.size()))) return false;
    h += h2;
  }
  return true;
}

void BloomFilter::Save(std::ostream& os) const {
  WriteI32(os, num_hashes_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  bits_.Save(os);
}

bool BloomFilter::Load(std::istream& is) {
  int32_t k;
  if (!ReadI32(is, &k) || k < 1 || k > 64) return false;
  num_hashes_ = k;
  return ReadU64(is, &hash_seed_) && ReadU64(is, &num_keys_) &&
         bits_.Load(is);
}

BlockedBloomFilter::BlockedBloomFilter(uint64_t expected_keys,
                                       double bits_per_key, int num_hashes)
    : num_hashes_(num_hashes > 0 ? num_hashes
                                 : OptimalNumHashes(bits_per_key)) {
  const uint64_t total_bits = std::max<uint64_t>(
      kBlockBits, static_cast<uint64_t>(expected_keys * bits_per_key));
  num_blocks_ = (total_bits + kBlockBits - 1) / kBlockBits;
  bits_.Resize(num_blocks_ * kBlockBits);
}

bool BlockedBloomFilter::Insert(uint64_t key) {
  const uint64_t block = FastRange64(Hash64(key, 0x73), num_blocks_);
  const uint64_t base = block * kBlockBits;
  uint64_t h = Hash64(key, 0x74);
  for (int i = 0; i < num_hashes_; ++i) {
    bits_.Set(base + (h & (kBlockBits - 1)));
    h >>= 9;  // 9 bits per in-block probe; 512-bit blocks need 9 bits each.
    if (i % 6 == 5) h = Hash64(key, 0x75 + i);  // Refresh hash bits.
  }
  ++num_keys_;
  return true;
}

bool BlockedBloomFilter::Contains(uint64_t key) const {
  const uint64_t block = FastRange64(Hash64(key, 0x73), num_blocks_);
  const uint64_t base = block * kBlockBits;
  uint64_t h = Hash64(key, 0x74);
  for (int i = 0; i < num_hashes_; ++i) {
    if (!bits_.Get(base + (h & (kBlockBits - 1)))) return false;
    h >>= 9;
    if (i % 6 == 5) h = Hash64(key, 0x75 + i);
  }
  return true;
}

}  // namespace bbf
