#include "bloom/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/sizing.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {
namespace {

// Batch tile for the two-pass (prefetch, then probe) paths: big enough to
// keep a pipeline of cache misses in flight, small enough that per-key
// hashes fit in registers/L1 scratch.
constexpr size_t kBatchTile = 64;

}  // namespace

BloomFilter::BloomFilter(uint64_t expected_keys, double bits_per_key,
                         int num_hashes, uint64_t hash_seed)
    : bits_(std::max<uint64_t>(
          64, static_cast<uint64_t>(expected_keys * bits_per_key))),
      num_hashes_(num_hashes > 0 ? num_hashes
                                 : OptimalBloomHashes(bits_per_key)),
      hash_seed_(hash_seed) {}

BloomFilter BloomFilter::ForFpr(uint64_t expected_keys, double fpr,
                                uint64_t hash_seed) {
  // m/n = -ln(eps) / (ln 2)^2 = 1.44 lg(1/eps).
  return BloomFilter(expected_keys, BloomBitsFor(fpr), 0, hash_seed);
}

bool BloomFilter::Insert(HashedKey key) {
  // Kirsch–Mitzenmacher double hashing: h_i = h1 + i * h2.
  const uint64_t h1 = key.Derive(hash_seed_ * 2 + 0x71);
  const uint64_t h2 = key.Derive(hash_seed_ * 2 + 0x72) | 1;
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    bits_.Set(FastRange64(h, bits_.size()));
    h += h2;
  }
  ++num_keys_;
  return true;
}

bool BloomFilter::Contains(HashedKey key) const {
  const uint64_t h1 = key.Derive(hash_seed_ * 2 + 0x71);
  const uint64_t h2 = key.Derive(hash_seed_ * 2 + 0x72) | 1;
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    if (!bits_.Get(FastRange64(h, bits_.size()))) return false;
    h += h2;
  }
  return true;
}

void BloomFilter::ContainsMany(std::span<const HashedKey> keys,
                               uint8_t* out) const {
  const uint64_t m = bits_.size();
  // Staged pipeline. A classic Bloom probe touches k scattered cache
  // lines, but a negative key is rejected by the first clear bit — on
  // average after ~1/(1-fpr^(1/k)) ≈ 2 probes. Prefetching all k lines up
  // front would cost negatives k-2 extra line fetches that the scalar
  // early-exit loop never pays, so instead: stage 1 prefetches and probes
  // only the first two positions, and only the survivors (true positives
  // plus a sliver of near-misses) fetch and probe the remaining k-2 —
  // same memory traffic as scalar, with every fetch pipelined.
  const int k0 = std::min(num_hashes_, 2);
  uint64_t h1[kBatchTile];
  uint64_t h2[kBatchTile];
  size_t survivor[kBatchTile];
  for (size_t base = 0; base < keys.size(); base += kBatchTile) {
    const size_t n = std::min(kBatchTile, keys.size() - base);
    // Stage 1a: hash the tile, request the first k0 target words.
    for (size_t j = 0; j < n; ++j) {
      h1[j] = keys[base + j].Derive(hash_seed_ * 2 + 0x71);
      h2[j] = keys[base + j].Derive(hash_seed_ * 2 + 0x72) | 1;
      uint64_t h = h1[j];
      for (int i = 0; i < k0; ++i) {
        bits_.PrefetchBit(FastRange64(h, m));
        h += h2[j];
      }
    }
    // Stage 1b: probe them (branchless — both lines are in flight) and
    // collect survivors.
    size_t num_survivors = 0;
    for (size_t j = 0; j < n; ++j) {
      uint64_t h = h1[j];
      uint8_t hit = 1;
      for (int i = 0; i < k0; ++i) {
        hit &= static_cast<uint8_t>(bits_.Get(FastRange64(h, m)));
        h += h2[j];
      }
      out[base + j] = hit;
      survivor[num_survivors] = j;
      num_survivors += hit;
    }
    if (num_hashes_ <= k0) continue;
    // Stage 2a: survivors request their remaining target words.
    for (size_t s = 0; s < num_survivors; ++s) {
      const size_t j = survivor[s];
      uint64_t h = h1[j] + static_cast<uint64_t>(k0) * h2[j];
      for (int i = k0; i < num_hashes_; ++i) {
        bits_.PrefetchBit(FastRange64(h, m));
        h += h2[j];
      }
    }
    // Stage 2b: finish the conjunction.
    for (size_t s = 0; s < num_survivors; ++s) {
      const size_t j = survivor[s];
      uint64_t h = h1[j] + static_cast<uint64_t>(k0) * h2[j];
      uint8_t hit = 1;
      for (int i = k0; i < num_hashes_; ++i) {
        hit &= static_cast<uint8_t>(bits_.Get(FastRange64(h, m)));
        h += h2[j];
      }
      out[base + j] = hit;
    }
  }
}

size_t BloomFilter::InsertMany(std::span<const HashedKey> keys) {
  const uint64_t m = bits_.size();
  uint64_t h1[kBatchTile];
  uint64_t h2[kBatchTile];
  for (size_t base = 0; base < keys.size(); base += kBatchTile) {
    const size_t n = std::min(kBatchTile, keys.size() - base);
    for (size_t j = 0; j < n; ++j) {
      h1[j] = keys[base + j].Derive(hash_seed_ * 2 + 0x71);
      h2[j] = keys[base + j].Derive(hash_seed_ * 2 + 0x72) | 1;
      uint64_t h = h1[j];
      for (int i = 0; i < num_hashes_; ++i) {
        bits_.PrefetchBit(FastRange64(h, m), /*for_write=*/true);
        h += h2[j];
      }
    }
    for (size_t j = 0; j < n; ++j) {
      uint64_t h = h1[j];
      for (int i = 0; i < num_hashes_; ++i) {
        bits_.Set(FastRange64(h, m));
        h += h2[j];
      }
    }
  }
  num_keys_ += keys.size();
  return keys.size();
}

bool BloomFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, num_hashes_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  bits_.Save(os);
  return os.good();
}

bool BloomFilter::LoadPayload(std::istream& is) {
  // Parse into locals and commit only on success, so a malformed payload
  // leaves this filter untouched. An empty bit array would make
  // FastRange64 index out of bounds, so it is rejected too.
  int32_t k;
  uint64_t seed;
  uint64_t n;
  BitVector bits;
  if (!ReadI32(is, &k) || k < 1 || k > 64 || !ReadU64(is, &seed) ||
      !ReadU64(is, &n) || !bits.Load(is) || bits.size() == 0) {
    return false;
  }
  num_hashes_ = k;
  hash_seed_ = seed;
  num_keys_ = n;
  bits_ = std::move(bits);
  return true;
}

BlockedBloomFilter::BlockedBloomFilter(uint64_t expected_keys,
                                       double bits_per_key, int num_hashes)
    : num_hashes_(std::clamp(num_hashes > 0 ? num_hashes
                                            : OptimalBloomHashes(bits_per_key),
                             1, 64)),
      hash_words_(simd::BloomHashWordsFor(num_hashes_)) {
  const uint64_t total_bits = std::max<uint64_t>(
      kBlockBits, static_cast<uint64_t>(expected_keys * bits_per_key));
  num_blocks_ = (total_bits + kBlockBits - 1) / kBlockBits;
  bits_.Resize(num_blocks_ * kBlockBits);
}

void BlockedBloomFilter::DeriveProbeWords(HashedKey key, uint64_t* hw) const {
  // Probe i consumes 9 bits of hw[i/6] at shift 9*(i%6); hash word w is
  // Derive(0x74 + 6w). Word 0 matches the historic Derive(0x74) and word
  // w >= 1 the historic refresh Derive(0x75 + (6w - 1)), so the probe
  // sequence — and therefore the bit layout and snapshot format — is
  // unchanged from the pre-kernel rolling-refresh loop.
  for (int w = 0; w < hash_words_; ++w) {
    hw[w] = key.Derive(0x74 + 6 * static_cast<uint64_t>(w));
  }
}

bool BlockedBloomFilter::Insert(HashedKey key) {
  const uint64_t block = FastRange64(key.Derive(0x73), num_blocks_);
  uint64_t hw[simd::kMaxBloomHashWords];
  DeriveProbeWords(key, hw);
  simd::ActiveBloomKernel().set_block(
      bits_.MutableWords() + block * kWordsPerBlock, hw, num_hashes_);
  ++num_keys_;
  return true;
}

bool BlockedBloomFilter::Contains(HashedKey key) const {
  const uint64_t block = FastRange64(key.Derive(0x73), num_blocks_);
  uint64_t hw[simd::kMaxBloomHashWords];
  DeriveProbeWords(key, hw);
  return simd::ActiveBloomKernel().test_block(
      bits_.Words() + block * kWordsPerBlock, hw, num_hashes_);
}

void BlockedBloomFilter::ContainsMany(std::span<const HashedKey> keys,
                                      uint8_t* out) const {
  const simd::BlockedBloomKernel& kernel = simd::ActiveBloomKernel();
  uint64_t block[kBatchTile];
  uint64_t hw[kBatchTile * simd::kMaxBloomHashWords];
  for (size_t base = 0; base < keys.size(); base += kBatchTile) {
    const size_t n = std::min(kBatchTile, keys.size() - base);
    // Pass 1: pick each key's block and issue ONE prefetch — the backing
    // store is 64-byte aligned, so a 512-bit block is exactly one line.
    // Hash-word derivation happens here too, inside the miss window.
    for (size_t j = 0; j < n; ++j) {
      block[j] = FastRange64(keys[base + j].Derive(0x73), num_blocks_);
      bits_.PrefetchWord(block[j] * kWordsPerBlock);
      DeriveProbeWords(keys[base + j], hw + j * hash_words_);
    }
    // Pass 2: the kernel tests all probes of every key against its
    // now-resident block (branchless conjunction; early exit would only
    // buy mispredicts once the line is in flight).
    kernel.test_tile(bits_.Words(), block, hw, hash_words_, num_hashes_, n,
                     out + base);
  }
}

bool BlockedBloomFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, num_hashes_);
  WriteU64(os, num_blocks_);
  WriteU64(os, num_keys_);
  bits_.Save(os);
  return os.good();
}

bool BlockedBloomFilter::LoadPayload(std::istream& is) {
  int32_t k;
  uint64_t blocks;
  uint64_t n;
  BitVector bits;
  if (!ReadI32(is, &k) || k < 1 || k > 64 ||
      !ReadU64Capped(is, &blocks, kMaxSnapshotElements / kBlockBits) ||
      blocks == 0 || !ReadU64(is, &n) || !bits.Load(is) ||
      bits.size() != blocks * kBlockBits) {
    return false;
  }
  num_hashes_ = k;
  hash_words_ = simd::BloomHashWordsFor(k);
  num_blocks_ = blocks;
  num_keys_ = n;
  bits_ = std::move(bits);
  return true;
}

size_t BlockedBloomFilter::InsertMany(std::span<const HashedKey> keys) {
  const simd::BlockedBloomKernel& kernel = simd::ActiveBloomKernel();
  uint64_t block[kBatchTile];
  uint64_t hw[kBatchTile * simd::kMaxBloomHashWords];
  for (size_t base = 0; base < keys.size(); base += kBatchTile) {
    const size_t n = std::min(kBatchTile, keys.size() - base);
    for (size_t j = 0; j < n; ++j) {
      block[j] = FastRange64(keys[base + j].Derive(0x73), num_blocks_);
      bits_.PrefetchWord(block[j] * kWordsPerBlock, /*for_write=*/true);
      DeriveProbeWords(keys[base + j], hw + j * hash_words_);
    }
    kernel.set_tile(bits_.MutableWords(), block, hw, hash_words_, num_hashes_,
                    n);
  }
  num_keys_ += keys.size();
  return keys.size();
}

}  // namespace bbf
