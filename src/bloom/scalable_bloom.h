#ifndef BBF_BLOOM_SCALABLE_BLOOM_H_
#define BBF_BLOOM_SCALABLE_BLOOM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/filter.h"

namespace bbf {

/// Scalable Bloom filter [Almeida et al. 2007] (§2.2): a chain of Bloom
/// filters with geometrically increasing capacities and geometrically
/// tightening false-positive rates. The chain's total FPR converges to
/// fpr0 / (1 - tightening). This is the "chain of filters" expansion
/// strategy whose cost — every filter on the chain may be probed per
/// query — experiment E4 measures against Taffy-style expansion.
class ScalableBloomFilter : public Filter {
 public:
  ScalableBloomFilter(uint64_t initial_capacity, double target_fpr,
                      double growth = 2.0, double tightening = 0.5);

  using Filter::Contains;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return num_keys_; }
  /// Load of the newest stage only — it resets after each growth, so a
  /// scalable filter never reports permanent saturation.
  double LoadFactor() const override {
    if (stages_.empty()) return 0.0;
    const Stage& s = stages_.back();
    return static_cast<double>(s.used) / s.capacity;
  }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "scalable-bloom"; }

  /// Number of filters on the chain — the per-query probe cost multiplier.
  size_t chain_length() const { return stages_.size(); }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  struct Stage {
    std::unique_ptr<BloomFilter> filter;
    uint64_t capacity;
    uint64_t used = 0;
  };

  void AddStage();

  double target_fpr_;
  double growth_;
  double tightening_;
  uint64_t next_capacity_;
  double next_fpr_;
  std::vector<Stage> stages_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_BLOOM_SCALABLE_BLOOM_H_
