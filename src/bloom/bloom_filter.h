#ifndef BBF_BLOOM_BLOOM_FILTER_H_
#define BBF_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <istream>
#include <numbers>
#include <ostream>

#include "core/filter.h"
#include "util/bit_vector.h"

namespace bbf {

/// The classic Bloom filter [Bloom 1970]: k hash probes into an m-bit
/// array. Semi-dynamic (§2): inserts but no deletes, and the capacity `n`
/// must be fixed up front for the FPR guarantee to hold.
///
/// Space is 1.44 n lg(1/eps) bits at the optimum k = (m/n) ln 2 — the
/// baseline every modern filter in this library is measured against.
class BloomFilter : public Filter {
 public:
  /// A filter sized for `expected_keys` keys at `bits_per_key` bits each.
  /// The number of hash functions defaults to the optimum round(b ln 2).
  /// Compositions of Bloom filters (chains, stacks, cascades, level
  /// hierarchies) MUST give each member a distinct `hash_seed`, or their
  /// probe positions correlate and the composition's FPR analysis breaks.
  BloomFilter(uint64_t expected_keys, double bits_per_key, int num_hashes = 0,
              uint64_t hash_seed = 0);

  /// Convenience: sized for a target false-positive rate.
  static BloomFilter ForFpr(uint64_t expected_keys, double fpr,
                            uint64_t hash_seed = 0);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Insert;
  using Filter::InsertMany;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Two-pass batch paths: derive every key's probes in a tile, prefetch
  /// all k target words, then probe. ~2x scalar lookup throughput
  /// out-of-LLC.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  size_t SpaceBits() const override { return bits_.size(); }
  uint64_t NumKeys() const override { return num_keys_; }
  /// Keys over design capacity, recovered from stored fields: m bits at
  /// the optimum k = b ln 2 means capacity n = m ln 2 / k.
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) * num_hashes_ /
           (std::numbers::ln2 * bits_.size());
  }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "bloom"; }

  int num_hashes() const { return num_hashes_; }

  /// Snapshot payload (framed by Filter::Save/Load).
  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  BitVector bits_;
  int num_hashes_;
  uint64_t hash_seed_;
  uint64_t num_keys_ = 0;
};

/// Cache-blocked Bloom filter: one 512-bit block per key, all probes within
/// the block. One cache miss per operation at the cost of ~1 extra bit/key
/// of FPR-equivalent space. The variant RocksDB and most LSM engines
/// actually deploy (§3.1).
class BlockedBloomFilter : public Filter {
 public:
  BlockedBloomFilter(uint64_t expected_keys, double bits_per_key,
                     int num_hashes = 0);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Insert;
  using Filter::InsertMany;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Batch paths: one prefetch per 512-bit block, then a single-word-read
  /// probe loop against BitVector::Word.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  size_t SpaceBits() const override { return bits_.size(); }
  uint64_t NumKeys() const override { return num_keys_; }
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) * num_hashes_ /
           (std::numbers::ln2 * bits_.size());
  }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "blocked-bloom"; }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  static constexpr uint64_t kBlockBits = 512;

  BitVector bits_;
  uint64_t num_blocks_;
  int num_hashes_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_BLOOM_BLOOM_FILTER_H_
