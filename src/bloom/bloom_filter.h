#ifndef BBF_BLOOM_BLOOM_FILTER_H_
#define BBF_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <istream>
#include <numbers>
#include <ostream>

#include "core/filter.h"
#include "simd/kernels.h"
#include "util/bit_vector.h"

namespace bbf {

/// The classic Bloom filter [Bloom 1970]: k hash probes into an m-bit
/// array. Semi-dynamic (§2): inserts but no deletes, and the capacity `n`
/// must be fixed up front for the FPR guarantee to hold.
///
/// Space is 1.44 n lg(1/eps) bits at the optimum k = (m/n) ln 2 — the
/// baseline every modern filter in this library is measured against.
class BloomFilter : public Filter {
 public:
  /// A filter sized for `expected_keys` keys at `bits_per_key` bits each.
  /// The number of hash functions defaults to the optimum round(b ln 2).
  /// Compositions of Bloom filters (chains, stacks, cascades, level
  /// hierarchies) MUST give each member a distinct `hash_seed`, or their
  /// probe positions correlate and the composition's FPR analysis breaks.
  BloomFilter(uint64_t expected_keys, double bits_per_key, int num_hashes = 0,
              uint64_t hash_seed = 0);

  /// Convenience: sized for a target false-positive rate.
  static BloomFilter ForFpr(uint64_t expected_keys, double fpr,
                            uint64_t hash_seed = 0);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Insert;
  using Filter::InsertMany;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Two-pass batch paths: derive every key's probes in a tile, prefetch
  /// all k target words, then probe. ~2x scalar lookup throughput
  /// out-of-LLC.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  size_t SpaceBits() const override { return bits_.size(); }
  uint64_t NumKeys() const override { return num_keys_; }
  /// Keys over design capacity, recovered from stored fields: m bits at
  /// the optimum k = b ln 2 means capacity n = m ln 2 / k.
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) * num_hashes_ /
           (std::numbers::ln2 * bits_.size());
  }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "bloom"; }

  int num_hashes() const { return num_hashes_; }

  /// Snapshot payload (framed by Filter::Save/Load).
  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  BitVector bits_;
  int num_hashes_;
  uint64_t hash_seed_;
  uint64_t num_keys_ = 0;
};

/// Cache-blocked Bloom filter: one 512-bit block per key, all probes within
/// the block. One cache miss per operation at the cost of ~1 extra bit/key
/// of FPR-equivalent space. The variant RocksDB and most LSM engines
/// actually deploy (§3.1).
///
/// Split Boost.Bloom-style into two policies: this class owns bucket
/// selection (FastRange over blocks, prefetch, tile staging) and hash-word
/// derivation; the intra-block set/test of all K probe bits is delegated
/// to a runtime-dispatched kernel (src/simd — scalar/AVX2/AVX-512/NEON,
/// identical bit layout, so snapshots are kernel-portable). The kernel is
/// re-fetched per operation, never cached, so BBF_FORCE_KERNEL and the
/// test hooks take effect at any time.
class BlockedBloomFilter : public Filter {
 public:
  BlockedBloomFilter(uint64_t expected_keys, double bits_per_key,
                     int num_hashes = 0);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Insert;
  using Filter::InsertMany;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Batch paths: pass 1 computes each key's block, issues ONE prefetch
  /// (the backing store is 64-byte aligned, so a block is exactly one
  /// line) and derives the hash words inside the miss window; pass 2 is
  /// one kernel call over the tile.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  size_t SpaceBits() const override { return bits_.size(); }
  uint64_t NumKeys() const override { return num_keys_; }
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) * num_hashes_ /
           (std::numbers::ln2 * bits_.size());
  }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "blocked-bloom"; }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  static constexpr uint64_t kBlockBits = 512;
  static constexpr uint64_t kWordsPerBlock = kBlockBits / 64;

  /// Derives the probe hash words for `key` (the `hw` contract in
  /// simd/kernels.h); hw must hold hash_words_ entries.
  void DeriveProbeWords(HashedKey key, uint64_t* hw) const;

  BitVector bits_;
  uint64_t num_blocks_;
  int num_hashes_;
  int hash_words_;  // BloomHashWordsFor(num_hashes_), cached
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_BLOOM_BLOOM_FILTER_H_
