#include "bloom/dleft_filter.h"

#include <algorithm>

#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

DleftCountingFilter::DleftCountingFilter(uint64_t expected_keys, int d,
                                         int cells_per_bucket,
                                         int fingerprint_bits,
                                         int counter_bits)
    : d_(d),
      cells_per_bucket_(cells_per_bucket),
      fingerprint_bits_(fingerprint_bits),
      counter_bits_(counter_bits) {
  const uint64_t total_cells =
      std::max<uint64_t>(d_ * cells_per_bucket_,
                         static_cast<uint64_t>(expected_keys / 0.75));
  buckets_per_table_ =
      std::max<uint64_t>(1, total_cells / (d_ * cells_per_bucket_));
  cells_ = CompactVector(
      static_cast<uint64_t>(d_) * buckets_per_table_ * cells_per_bucket_,
      fingerprint_bits_ + counter_bits_);
}

uint64_t DleftCountingFilter::Fingerprint(HashedKey key) const {
  const uint64_t fp = key.Derive(0x91) & LowMask(fingerprint_bits_);
  return fp == 0 ? 1 : fp;  // 0 is the empty-cell marker.
}

uint64_t DleftCountingFilter::BucketIndex(HashedKey key, int table) const {
  return FastRange64(key.Derive(0xA0 + table), buckets_per_table_);
}

DleftCountingFilter::Cell DleftCountingFilter::GetCell(uint64_t slot) const {
  const uint64_t raw = cells_.Get(slot);
  return Cell{raw >> counter_bits_, raw & LowMask(counter_bits_)};
}

void DleftCountingFilter::PutCell(uint64_t slot, const Cell& cell) {
  cells_.Set(slot, (cell.fingerprint << counter_bits_) |
                       (cell.count & LowMask(counter_bits_)));
}

int DleftCountingFilter::BucketLoad(int table, uint64_t bucket) const {
  int load = 0;
  for (int c = 0; c < cells_per_bucket_; ++c) {
    if (GetCell(CellSlot(table, bucket, c)).fingerprint != 0) ++load;
  }
  return load;
}

bool DleftCountingFilter::Insert(HashedKey key) {
  const uint64_t fp = Fingerprint(key);
  const uint64_t max_count = LowMask(counter_bits_);
  // Pass 1: an existing cell with this fingerprint in any candidate bucket.
  for (int t = 0; t < d_; ++t) {
    const uint64_t b = BucketIndex(key, t);
    for (int c = 0; c < cells_per_bucket_; ++c) {
      const uint64_t slot = CellSlot(t, b, c);
      Cell cell = GetCell(slot);
      if (cell.fingerprint == fp) {
        if (cell.count < max_count) {
          ++cell.count;
          PutCell(slot, cell);
        } else {
          ++overflow_[key.value()];  // Counter saturated; spill the excess exactly.
        }
        ++num_keys_;
        return true;
      }
    }
  }
  // Pass 2: d-left placement — least-loaded candidate bucket, leftmost wins.
  int best_table = -1;
  uint64_t best_bucket = 0;
  int best_load = cells_per_bucket_;
  for (int t = 0; t < d_; ++t) {
    const uint64_t b = BucketIndex(key, t);
    const int load = BucketLoad(t, b);
    if (load < best_load) {
      best_load = load;
      best_table = t;
      best_bucket = b;
    }
  }
  if (best_table < 0) {
    ++overflow_[key.value()];
    ++num_keys_;
    return true;
  }
  for (int c = 0; c < cells_per_bucket_; ++c) {
    const uint64_t slot = CellSlot(best_table, best_bucket, c);
    if (GetCell(slot).fingerprint == 0) {
      PutCell(slot, Cell{fp, 1});
      ++num_keys_;
      return true;
    }
  }
  ++overflow_[key.value()];
  ++num_keys_;
  return true;
}

bool DleftCountingFilter::Erase(HashedKey key) {
  const auto it = overflow_.find(key.value());
  if (it != overflow_.end()) {
    if (--it->second == 0) overflow_.erase(it);
    --num_keys_;
    return true;
  }
  const uint64_t fp = Fingerprint(key);
  for (int t = 0; t < d_; ++t) {
    const uint64_t b = BucketIndex(key, t);
    for (int c = 0; c < cells_per_bucket_; ++c) {
      const uint64_t slot = CellSlot(t, b, c);
      Cell cell = GetCell(slot);
      if (cell.fingerprint == fp) {
        if (--cell.count == 0) cell.fingerprint = 0;
        PutCell(slot, cell);
        --num_keys_;
        return true;
      }
    }
  }
  return false;
}

uint64_t DleftCountingFilter::Count(HashedKey key) const {
  uint64_t count = 0;
  const auto it = overflow_.find(key.value());
  if (it != overflow_.end()) count += it->second;
  const uint64_t fp = Fingerprint(key);
  // Sum over ALL matching cells: a colliding twin whose candidate buckets
  // only partially overlap ours can create a second cell with our
  // fingerprint, and our own increments may be split across both. Summing
  // preserves the counting-filter upper-bound guarantee.
  for (int t = 0; t < d_; ++t) {
    const uint64_t b = BucketIndex(key, t);
    for (int c = 0; c < cells_per_bucket_; ++c) {
      const Cell cell = GetCell(CellSlot(t, b, c));
      if (cell.fingerprint == fp) count += cell.count;
    }
  }
  return count;
}

size_t DleftCountingFilter::SpaceBits() const {
  return cells_.size() * cells_.width() +
         overflow_.size() * (sizeof(uint64_t) * 2 * 8);
}

bool DleftCountingFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, d_);
  WriteI32(os, cells_per_bucket_);
  WriteI32(os, fingerprint_bits_);
  WriteI32(os, counter_bits_);
  WriteU64(os, buckets_per_table_);
  WriteU64(os, num_keys_);
  cells_.Save(os);
  WriteU64(os, overflow_.size());
  for (const auto& [key, count] : overflow_) {
    WriteU64(os, key);
    WriteU64(os, count);
  }
  return os.good();
}

bool DleftCountingFilter::LoadPayload(std::istream& is) {
  int32_t d, cpb, fp_bits, ctr_bits;
  uint64_t bpt, n;
  if (!ReadI32(is, &d) || d < 1 || d > 16 || !ReadI32(is, &cpb) || cpb < 1 ||
      cpb > 64 || !ReadI32(is, &fp_bits) || fp_bits < 1 ||
      !ReadI32(is, &ctr_bits) || ctr_bits < 1 || fp_bits + ctr_bits > 64 ||
      !ReadU64Capped(is, &bpt, kMaxSnapshotElements) || bpt == 0 ||
      !ReadU64(is, &n)) {
    return false;
  }
  CompactVector cells;
  if (!cells.Load(is) ||
      cells.size() != static_cast<uint64_t>(d) * bpt * cpb ||
      cells.width() != fp_bits + ctr_bits) {
    return false;
  }
  uint64_t overflow_count;
  if (!ReadU64Capped(is, &overflow_count, kMaxSnapshotElements)) return false;
  std::unordered_map<uint64_t, uint64_t> overflow;
  for (uint64_t i = 0; i < overflow_count; ++i) {
    uint64_t key, count;
    if (!ReadU64(is, &key) || !ReadU64(is, &count) || count == 0) {
      return false;
    }
    overflow[key] = count;
  }
  d_ = d;
  cells_per_bucket_ = cpb;
  fingerprint_bits_ = fp_bits;
  counter_bits_ = ctr_bits;
  buckets_per_table_ = bpt;
  num_keys_ = n;
  cells_ = std::move(cells);
  overflow_ = std::move(overflow);
  return true;
}

}  // namespace bbf
