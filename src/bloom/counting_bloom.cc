#include "bloom/counting_bloom.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {
namespace {

int OptimalNumHashes(double bits_per_key, int counter_bits) {
  // bits_per_key budgets total space; the counter array has
  // bits_per_key / counter_bits counters per key.
  const double counters_per_key = bits_per_key / counter_bits;
  return std::max(1, static_cast<int>(std::lround(counters_per_key * std::numbers::ln2)));
}

uint64_t NumCounters(uint64_t expected_keys, double bits_per_key,
                     int counter_bits) {
  return std::max<uint64_t>(
      64, static_cast<uint64_t>(expected_keys * bits_per_key / counter_bits));
}

}  // namespace

CountingBloomFilter::CountingBloomFilter(uint64_t expected_keys,
                                         double bits_per_key, int counter_bits,
                                         int num_hashes)
    : counters_(NumCounters(expected_keys, bits_per_key, counter_bits),
                counter_bits),
      num_hashes_(num_hashes > 0
                      ? num_hashes
                      : OptimalNumHashes(bits_per_key, counter_bits)) {}

uint64_t CountingBloomFilter::CounterIndex(HashedKey key, int i) const {
  const uint64_t h1 = key.Derive(0x81);
  const uint64_t h2 = key.Derive(0x82) | 1;
  return FastRange64(h1 + static_cast<uint64_t>(i) * h2, counters_.size());
}

bool CountingBloomFilter::Insert(HashedKey key) {
  const uint64_t max = LowMask(counters_.width());
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t idx = CounterIndex(key, i);
    const uint64_t c = counters_.Get(idx);
    if (c < max) {
      counters_.Set(idx, c + 1);
      if (c + 1 == max) ++saturated_;
    }
  }
  ++num_keys_;
  return true;
}

bool CountingBloomFilter::Erase(HashedKey key) {
  if (Count(key) == 0) return false;
  const uint64_t max = LowMask(counters_.width());
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t idx = CounterIndex(key, i);
    const uint64_t c = counters_.Get(idx);
    // Saturated counters are sticky: decrementing one could create a false
    // negative for some other key that pushed it past the maximum.
    if (c > 0 && c < max) counters_.Set(idx, c - 1);
  }
  --num_keys_;
  return true;
}

uint64_t CountingBloomFilter::Count(HashedKey key) const {
  uint64_t min_count = ~uint64_t{0};
  for (int i = 0; i < num_hashes_; ++i) {
    min_count = std::min(min_count, counters_.Get(CounterIndex(key, i)));
  }
  return min_count;
}

CountingBloomFilter CountingBloomFilter::RebuiltWithWiderCounters() const {
  const double bits_per_key =
      NumKeys() == 0
          ? 8.0
          : static_cast<double>(counters_.size()) * counters_.width() * 2 /
                NumKeys();
  CountingBloomFilter wider(std::max<uint64_t>(NumKeys(), 1), bits_per_key,
                            counters_.width() * 2, num_hashes_);
  return wider;
}

SpectralBloomFilter::SpectralBloomFilter(uint64_t expected_keys,
                                         double bits_per_key, int counter_bits,
                                         int num_hashes)
    : counters_(NumCounters(expected_keys, bits_per_key, counter_bits),
                counter_bits),
      num_hashes_(num_hashes > 0
                      ? num_hashes
                      : OptimalNumHashes(bits_per_key, counter_bits)) {}

uint64_t SpectralBloomFilter::CounterIndex(HashedKey key, int i) const {
  const uint64_t h1 = key.Derive(0x83);
  const uint64_t h2 = key.Derive(0x84) | 1;
  return FastRange64(h1 + static_cast<uint64_t>(i) * h2, counters_.size());
}

bool SpectralBloomFilter::Insert(HashedKey key) {
  // Minimum increase: only bump the counters that hold the current minimum.
  uint64_t min_count = ~uint64_t{0};
  for (int i = 0; i < num_hashes_; ++i) {
    min_count = std::min(min_count, counters_.Get(CounterIndex(key, i)));
  }
  const uint64_t max = LowMask(counters_.width());
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t idx = CounterIndex(key, i);
    const uint64_t c = counters_.Get(idx);
    if (c == min_count && c < max) counters_.Set(idx, c + 1);
  }
  ++num_keys_;
  return true;
}

uint64_t SpectralBloomFilter::Count(HashedKey key) const {
  uint64_t min_count = ~uint64_t{0};
  for (int i = 0; i < num_hashes_; ++i) {
    min_count = std::min(min_count, counters_.Get(CounterIndex(key, i)));
  }
  return min_count;
}

namespace {

// Shared payload shape of the two counter-array filters.
bool SaveCounterArray(std::ostream& os, const CompactVector& counters,
                      int num_hashes, uint64_t num_keys, uint64_t extra) {
  WriteI32(os, num_hashes);
  WriteU64(os, num_keys);
  WriteU64(os, extra);
  counters.Save(os);
  return os.good();
}

bool LoadCounterArray(std::istream& is, CompactVector* counters,
                      int* num_hashes, uint64_t* num_keys, uint64_t* extra) {
  int32_t k;
  uint64_t n;
  uint64_t x;
  CompactVector fresh;
  if (!ReadI32(is, &k) || k < 1 || k > 64 || !ReadU64(is, &n) ||
      !ReadU64(is, &x) || !fresh.Load(is) || fresh.size() == 0 ||
      fresh.width() < 1) {
    return false;
  }
  *num_hashes = k;
  *num_keys = n;
  *extra = x;
  *counters = std::move(fresh);
  return true;
}

}  // namespace

bool CountingBloomFilter::SavePayload(std::ostream& os) const {
  return SaveCounterArray(os, counters_, num_hashes_, num_keys_, saturated_);
}

bool CountingBloomFilter::LoadPayload(std::istream& is) {
  CompactVector counters;
  int k;
  uint64_t n;
  uint64_t saturated;
  if (!LoadCounterArray(is, &counters, &k, &n, &saturated) ||
      saturated > counters.size()) {
    return false;
  }
  counters_ = std::move(counters);
  num_hashes_ = k;
  num_keys_ = n;
  saturated_ = saturated;
  return true;
}

bool SpectralBloomFilter::SavePayload(std::ostream& os) const {
  return SaveCounterArray(os, counters_, num_hashes_, num_keys_, 0);
}

bool SpectralBloomFilter::LoadPayload(std::istream& is) {
  CompactVector counters;
  int k;
  uint64_t n;
  uint64_t unused;
  if (!LoadCounterArray(is, &counters, &k, &n, &unused)) return false;
  counters_ = std::move(counters);
  num_hashes_ = k;
  num_keys_ = n;
  return true;
}

}  // namespace bbf
