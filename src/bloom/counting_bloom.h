#ifndef BBF_BLOOM_COUNTING_BLOOM_H_
#define BBF_BLOOM_COUNTING_BLOOM_H_

#include <cstdint>
#include <numbers>

#include "core/filter.h"
#include "util/compact_vector.h"

namespace bbf {

/// Counting Bloom filter (§2.6): the bit array of a Bloom filter replaced
/// by fixed-width counters so deletes become possible and queries can
/// return multiplicities (upper bounds, as in the paper: an incorrect
/// count is always *greater* than the true count).
///
/// Counters saturate at 2^width - 1 and become sticky: a saturated counter
/// is never decremented, reproducing the undercount-after-deletes hazard
/// the paper describes. Callers can watch saturated_counters() and rebuild
/// with wider counters — RebuiltWithWiderCounters() does exactly that by
/// doubling the width (the paper's prescribed fix).
class CountingBloomFilter : public Filter {
 public:
  CountingBloomFilter(uint64_t expected_keys, double bits_per_key,
                      int counter_bits = 4, int num_hashes = 0);

  using Filter::Contains;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override { return Count(key) > 0; }
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override {
    return counters_.size() * counters_.width();
  }
  uint64_t NumKeys() const override { return num_keys_; }
  /// Same capacity recovery as BloomFilter: m counters at optimum k.
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) * num_hashes_ /
           (std::numbers::ln2 * counters_.size());
  }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "counting-bloom"; }

  /// Number of counters currently pinned at their maximum value.
  uint64_t saturated_counters() const { return saturated_; }
  int counter_bits() const { return counters_.width(); }

  /// A fresh filter with doubled counter width; the caller re-inserts keys.
  CountingBloomFilter RebuiltWithWiderCounters() const;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  uint64_t CounterIndex(HashedKey key, int i) const;

  CompactVector counters_;
  int num_hashes_;
  uint64_t num_keys_ = 0;
  uint64_t saturated_ = 0;
};

/// Spectral Bloom filter, minimum-increase variant (§2.6): on insert, only
/// the counters currently holding the minimum are incremented. This keeps
/// counter values close to true multiplicities under skew at the price of
/// not supporting deletes (minimum-increase breaks delete safety).
class SpectralBloomFilter : public Filter {
 public:
  SpectralBloomFilter(uint64_t expected_keys, double bits_per_key,
                      int counter_bits = 8, int num_hashes = 0);

  using Filter::Contains;
  using Filter::Count;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override { return Count(key) > 0; }
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override {
    return counters_.size() * counters_.width();
  }
  uint64_t NumKeys() const override { return num_keys_; }
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) * num_hashes_ /
           (std::numbers::ln2 * counters_.size());
  }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "spectral-bloom"; }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  uint64_t CounterIndex(HashedKey key, int i) const;

  CompactVector counters_;
  int num_hashes_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_BLOOM_COUNTING_BLOOM_H_
