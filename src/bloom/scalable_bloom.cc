#include "bloom/scalable_bloom.h"

#include <cmath>

#include "core/metrics_sink.h"
#include "util/serialize.h"

namespace bbf {

ScalableBloomFilter::ScalableBloomFilter(uint64_t initial_capacity,
                                         double target_fpr, double growth,
                                         double tightening)
    : target_fpr_(target_fpr),
      growth_(growth),
      tightening_(tightening),
      next_capacity_(initial_capacity),
      // First stage gets fpr0 = target * (1 - r) so the geometric series
      // sums to the target.
      next_fpr_(target_fpr * (1.0 - tightening)) {
  AddStage();
}

void ScalableBloomFilter::AddStage() {
  // The constructor's first stage is initial sizing, not an expansion.
  if (sink_ != nullptr && !stages_.empty()) sink_->OnExpansion();
  Stage stage;
  stage.capacity = next_capacity_;
  stage.filter = std::make_unique<BloomFilter>(BloomFilter::ForFpr(
      next_capacity_, next_fpr_, /*hash_seed=*/0x5CA1 + stages_.size()));
  stages_.push_back(std::move(stage));
  next_capacity_ = static_cast<uint64_t>(next_capacity_ * growth_);
  next_fpr_ *= tightening_;
}

bool ScalableBloomFilter::Insert(HashedKey key) {
  Stage& last = stages_.back();
  if (last.used >= last.capacity) AddStage();
  Stage& target = stages_.back();
  target.filter->Insert(key);
  ++target.used;
  ++num_keys_;
  return true;
}

bool ScalableBloomFilter::Contains(HashedKey key) const {
  for (const Stage& s : stages_) {
    if (s.filter->Contains(key)) return true;
  }
  return false;
}

size_t ScalableBloomFilter::SpaceBits() const {
  size_t bits = 0;
  for (const Stage& s : stages_) bits += s.filter->SpaceBits();
  return bits;
}

bool ScalableBloomFilter::SavePayload(std::ostream& os) const {
  WriteDouble(os, target_fpr_);
  WriteDouble(os, growth_);
  WriteDouble(os, tightening_);
  WriteU64(os, next_capacity_);
  WriteDouble(os, next_fpr_);
  WriteU64(os, num_keys_);
  WriteU64(os, stages_.size());
  for (const Stage& s : stages_) {
    WriteU64(os, s.capacity);
    WriteU64(os, s.used);
    if (!s.filter->SavePayload(os)) return false;
  }
  return os.good();
}

bool ScalableBloomFilter::LoadPayload(std::istream& is) {
  // A corrupt chain could claim absurd stage counts or non-finite growth
  // parameters; both are rejected before any stage is parsed. 64 stages
  // at the minimum growth factor already covers > 2^64 keys.
  constexpr uint64_t kMaxStages = 64;
  double target_fpr, growth, tightening, next_fpr;
  uint64_t next_capacity, n, num_stages;
  if (!ReadDouble(is, &target_fpr) || !ReadDouble(is, &growth) ||
      !ReadDouble(is, &tightening) ||
      !ReadU64Capped(is, &next_capacity, kMaxSnapshotElements) ||
      !ReadDouble(is, &next_fpr) || !ReadU64(is, &n) ||
      !ReadU64Capped(is, &num_stages, kMaxStages) || num_stages == 0) {
    return false;
  }
  if (!std::isfinite(target_fpr) || target_fpr <= 0.0 || target_fpr >= 1.0 ||
      !std::isfinite(growth) || growth < 1.0 || growth > 1024.0 ||
      !std::isfinite(tightening) || tightening <= 0.0 || tightening >= 1.0 ||
      !std::isfinite(next_fpr) || next_fpr <= 0.0 || next_fpr >= 1.0) {
    return false;
  }
  std::vector<Stage> stages;
  for (uint64_t i = 0; i < num_stages; ++i) {
    Stage s;
    if (!ReadU64Capped(is, &s.capacity, kMaxSnapshotElements) ||
        !ReadU64(is, &s.used)) {
      return false;
    }
    s.filter = std::make_unique<BloomFilter>(1, 8.0);
    if (!s.filter->LoadPayload(is)) return false;
    stages.push_back(std::move(s));
  }
  target_fpr_ = target_fpr;
  growth_ = growth;
  tightening_ = tightening;
  next_capacity_ = next_capacity;
  next_fpr_ = next_fpr;
  num_keys_ = n;
  stages_ = std::move(stages);
  return true;
}

}  // namespace bbf
