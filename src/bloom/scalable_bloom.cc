#include "bloom/scalable_bloom.h"

namespace bbf {

ScalableBloomFilter::ScalableBloomFilter(uint64_t initial_capacity,
                                         double target_fpr, double growth,
                                         double tightening)
    : target_fpr_(target_fpr),
      growth_(growth),
      tightening_(tightening),
      next_capacity_(initial_capacity),
      // First stage gets fpr0 = target * (1 - r) so the geometric series
      // sums to the target.
      next_fpr_(target_fpr * (1.0 - tightening)) {
  AddStage();
}

void ScalableBloomFilter::AddStage() {
  Stage stage;
  stage.capacity = next_capacity_;
  stage.filter = std::make_unique<BloomFilter>(BloomFilter::ForFpr(
      next_capacity_, next_fpr_, /*hash_seed=*/0x5CA1 + stages_.size()));
  stages_.push_back(std::move(stage));
  next_capacity_ = static_cast<uint64_t>(next_capacity_ * growth_);
  next_fpr_ *= tightening_;
}

bool ScalableBloomFilter::Insert(uint64_t key) {
  Stage& last = stages_.back();
  if (last.used >= last.capacity) AddStage();
  Stage& target = stages_.back();
  target.filter->Insert(key);
  ++target.used;
  ++num_keys_;
  return true;
}

bool ScalableBloomFilter::Contains(uint64_t key) const {
  for (const Stage& s : stages_) {
    if (s.filter->Contains(key)) return true;
  }
  return false;
}

size_t ScalableBloomFilter::SpaceBits() const {
  size_t bits = 0;
  for (const Stage& s : stages_) bits += s.filter->SpaceBits();
  return bits;
}

}  // namespace bbf
