#include "bloom/cascading_bloom.h"

#include <algorithm>
#include <utility>

namespace bbf {

CascadingBloomFilter::CascadingBloomFilter(
    const std::vector<uint64_t>& members,
    const std::vector<uint64_t>& candidates, double bits_per_key, int levels) {
  // Hash every key once up front; all levels consume the same mixes.
  // side_a is the set the next filter is built over; side_b is filtered
  // through it, keeping only its false positives. Sides swap every level.
  std::vector<HashedKey> side_a;
  side_a.reserve(members.size());
  for (uint64_t k : members) side_a.emplace_back(k);
  std::vector<HashedKey> side_b;
  side_b.reserve(candidates.size());
  for (uint64_t k : candidates) side_b.emplace_back(k);
  for (int i = 0; i < levels; ++i) {
    auto filter = std::make_unique<BloomFilter>(
        std::max<uint64_t>(side_a.size(), 1), bits_per_key, 0,
        /*hash_seed=*/0xCA5C + i);
    for (HashedKey k : side_a) filter->Insert(k);
    std::vector<HashedKey> survivors;
    for (HashedKey k : side_b) {
      if (filter->Contains(k)) survivors.push_back(k);
    }
    levels_.push_back(std::move(filter));
    side_b = std::move(side_a);
    side_a = std::move(survivors);
    if (side_a.empty()) break;  // Cascade already exact.
  }
  for (HashedKey k : side_a) exact_.insert(k.value());
  // After k levels the survivor side holds members iff k is even.
  exact_holds_members_ = (levels_.size() % 2 == 0);
}

bool CascadingBloomFilter::Contains(HashedKey key) const {
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (!levels_[i]->Contains(key)) {
      // Failing an even-indexed filter refutes membership; failing an
      // odd-indexed one refutes being a recorded false positive.
      return i % 2 == 1;
    }
  }
  return exact_.contains(key.value()) == exact_holds_members_;
}

size_t CascadingBloomFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& f : levels_) bits += f->SpaceBits();
  bits += exact_.size() * 64;
  return bits;
}

}  // namespace bbf
