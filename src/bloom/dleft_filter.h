#ifndef BBF_BLOOM_DLEFT_FILTER_H_
#define BBF_BLOOM_DLEFT_FILTER_H_

#include <cstdint>
#include <unordered_map>

#include "core/filter.h"
#include "util/compact_vector.h"

namespace bbf {

/// d-left counting Bloom filter [Bonomi et al., ESA 2006] (§2.6): `d`
/// subtables of buckets, each bucket holding a few (fingerprint, counter)
/// cells. An item goes to its candidate bucket in the least-loaded subtable
/// (leftmost on ties), giving the balanced-allocation space win — generally
/// a factor of two or more over a counting Bloom filter — with one cache
/// line per subtable of data locality.
///
/// Like the original, it is not resizable and its false-positive rate is a
/// function of the fingerprint width and bucket geometry. Overflowing
/// items (all candidate buckets full) go to a small exact side map whose
/// space is charged to SpaceBits().
class DleftCountingFilter : public Filter {
 public:
  /// Geometry: `d` subtables, bucket capacity `cells_per_bucket`,
  /// fingerprints of `fingerprint_bits`, counters of `counter_bits`.
  /// Sized so that expected load is ~75% at `expected_keys` distinct keys.
  explicit DleftCountingFilter(uint64_t expected_keys, int d = 4,
                               int cells_per_bucket = 8,
                               int fingerprint_bits = 12,
                               int counter_bits = 4);

  using Filter::Contains;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override { return Count(key) > 0; }
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return num_keys_; }
  /// Insertions over total cells. Counts multiplicity (duplicates share a
  /// cell), so this slightly overstates occupancy on multisets — the safe
  /// direction for a saturation signal. Overflow-map pressure is the
  /// other saturation symptom; callers can watch overflow_size().
  double LoadFactor() const override {
    return cells_.size() == 0
               ? 1.0
               : static_cast<double>(num_keys_) / cells_.size();
  }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "dleft-counting"; }

  uint64_t overflow_size() const { return overflow_.size(); }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  struct Cell {
    uint64_t fingerprint = 0;  // 0 means empty.
    uint64_t count = 0;
  };

  uint64_t Fingerprint(HashedKey key) const;
  uint64_t BucketIndex(HashedKey key, int table) const;
  uint64_t CellSlot(int table, uint64_t bucket, int cell) const {
    return (static_cast<uint64_t>(table) * buckets_per_table_ + bucket) *
               cells_per_bucket_ +
           cell;
  }
  Cell GetCell(uint64_t slot) const;
  void PutCell(uint64_t slot, const Cell& cell);
  int BucketLoad(int table, uint64_t bucket) const;

  int d_;
  int cells_per_bucket_;
  int fingerprint_bits_;
  int counter_bits_;
  uint64_t buckets_per_table_;
  CompactVector cells_;  // (fingerprint | counter) packed per cell.
  // Canonical key mix (HashedKey::value) -> count. Exact because the
  // canonical mix is the key identity everywhere past the boundary.
  std::unordered_map<uint64_t, uint64_t> overflow_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_BLOOM_DLEFT_FILTER_H_
