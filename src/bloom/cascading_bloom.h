#ifndef BBF_BLOOM_CASCADING_BLOOM_H_
#define BBF_BLOOM_CASCADING_BLOOM_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/key.h"

namespace bbf {

/// Cascading Bloom filter [Salikhov et al. 2013; §3.2, §2.3]: an *exact*
/// representation of a set S relative to a closed candidate universe.
/// Level 0 is a Bloom filter of S; level 1 is a Bloom filter of the level-0
/// false positives among the candidates; level 2 of the level-1 false
/// positives among S; and so on, with a small exact set terminating the
/// cascade. Queries for any candidate (or member) are answered exactly.
///
/// This is the trick that turns the probabilistic de Bruijn graph of Pell
/// et al. into the exact navigational representation of Chikhi & Rizk with
/// far less memory than an exact side table.
class CascadingBloomFilter {
 public:
  /// Builds over members S and the non-member candidates that will ever be
  /// queried. `bits_per_key` applies to level 0; deeper levels get the
  /// same rate over their (much smaller) input sets. `levels` >= 1.
  CascadingBloomFilter(const std::vector<uint64_t>& members,
                       const std::vector<uint64_t>& candidates,
                       double bits_per_key, int levels = 3);

  /// Exact membership for any key in members ∪ candidates; best-effort
  /// (standard Bloom semantics) for anything else. Hashes once and probes
  /// every level of the cascade from the same HashedKey.
  bool Contains(uint64_t key) const { return Contains(HashedKey(key)); }
  bool Contains(HashedKey key) const;

  size_t SpaceBits() const;
  size_t num_levels() const { return levels_.size(); }
  size_t exact_set_size() const { return exact_.size(); }

 private:
  std::vector<std::unique_ptr<BloomFilter>> levels_;
  // Truth for survivors of the cascade, keyed by canonical mix.
  std::unordered_set<uint64_t> exact_;
  bool exact_holds_members_ = false;    // Parity of the final level.
};

}  // namespace bbf

#endif  // BBF_BLOOM_CASCADING_BLOOM_H_
