#ifndef BBF_QUOTIENT_QUOTIENT_TABLE_H_
#define BBF_QUOTIENT_QUOTIENT_TABLE_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>

#include "util/bit_vector.h"
#include "util/compact_vector.h"

namespace bbf {

/// Physical layer shared by every quotient-filter variant (§2.1): a table
/// of 2^q slots, each holding an r-bit remainder plus the classic three
/// metadata bits — is_occupied / is_continuation / is_shifted — stored as
/// separate bit planes. Collisions are resolved Robin-Hood style: runs of
/// remainders sharing a quotient are kept sorted and contiguous, shifted
/// right as needed, with wraparound.
///
/// Two optional per-slot planes ride along with the remainders during
/// shifts: a 1-bit *tag* (used by the counting variant to mark counter
/// digits) and a v-bit *value* (used by the maplet variant).
///
/// This class only manages slots; fingerprint semantics live in the
/// variant classes.
class QuotientTable {
 public:
  QuotientTable() = default;

  /// 2^q_bits slots of r_bits remainders; value_bits may be 0.
  QuotientTable(int q_bits, int r_bits, bool has_tag = false,
                int value_bits = 0);

  int q_bits() const { return q_bits_; }
  int r_bits() const { return r_bits_; }
  int value_bits() const { return value_bits_; }
  bool has_tag() const { return has_tag_; }
  uint64_t num_slots() const { return num_slots_; }
  uint64_t num_used_slots() const { return used_slots_; }
  double LoadFactor() const {
    return static_cast<double>(used_slots_) / num_slots_;
  }

  /// Total bits of all planes (remainders + metadata + tag + values).
  size_t SpaceBits() const;

  // --- Per-slot accessors -------------------------------------------------
  bool occupied(uint64_t i) const { return occupied_.Get(i); }
  bool continuation(uint64_t i) const { return continuation_.Get(i); }
  bool shifted(uint64_t i) const { return shifted_.Get(i); }
  bool tag(uint64_t i) const { return has_tag_ && tag_.Get(i); }
  uint64_t remainder(uint64_t i) const { return remainders_.Get(i); }
  uint64_t value(uint64_t i) const {
    return value_bits_ ? values_.Get(i) : 0;
  }
  void set_occupied(uint64_t i, bool v) { occupied_.Assign(i, v); }
  void set_continuation(uint64_t i, bool v) { continuation_.Assign(i, v); }
  void set_shifted(uint64_t i, bool v) { shifted_.Assign(i, v); }
  void set_tag(uint64_t i, bool v) {
    if (has_tag_) tag_.Assign(i, v);
  }
  void set_remainder(uint64_t i, uint64_t r) { remainders_.Set(i, r); }
  void set_value(uint64_t i, uint64_t v) {
    if (value_bits_) values_.Set(i, v);
  }

  bool SlotEmpty(uint64_t i) const {
    return !occupied_.Get(i) && !continuation_.Get(i) && !shifted_.Get(i);
  }

  /// Hints the cache lines a probe of slot `i` touches first: the three
  /// metadata planes and the remainder word. Cluster walks may run past
  /// them, but the home-slot lines dominate at sane load factors.
  void PrefetchSlot(uint64_t i, bool for_write = false) const {
    occupied_.PrefetchBit(i, for_write);
    continuation_.PrefetchBit(i, for_write);
    shifted_.PrefetchBit(i, for_write);
    remainders_.Prefetch(i, 1, for_write);
  }

  uint64_t Next(uint64_t i) const { return (i + 1) & slot_mask_; }
  uint64_t Prev(uint64_t i) const { return (i - 1) & slot_mask_; }

  /// Start slot of the run for quotient `q`. Requires occupied(q).
  uint64_t FindRunStart(uint64_t q) const;

  /// Inserts a slot holding (`remainder`, `value`, `tag`) at position `pos`,
  /// shifting the remaining cluster right. `continuation` is the bit for
  /// the new slot; displaced slots keep their continuation/tag/value bits
  /// and become shifted. `home` is the quotient of the inserted entry (used
  /// to decide its shifted bit). The caller is responsible for occupied
  /// bits and for clearing/setting the continuation bit of a displaced run
  /// head when inserting in front of it.
  void InsertSlotAt(uint64_t pos, uint64_t home, uint64_t remainder,
                    bool continuation, bool tag = false, uint64_t value = 0);

  /// Removes the slot at `pos`, left-shifting the rest of the cluster and
  /// fixing shifted bits of run heads that slide into their home slots.
  /// `run_quotient` is the quotient of the run containing `pos`. Does not
  /// touch occupied bits (caller's job).
  void RemoveSlotAt(uint64_t pos, uint64_t run_quotient);

  /// Removes the entry at `pos` within the run of quotient `fq` starting
  /// at `run_start`, maintaining occupied bits and promoting the run's
  /// second element to head when the head is removed.
  void RemoveEntry(uint64_t pos, uint64_t run_start, uint64_t fq);

  /// Visits every stored slot as (quotient, slot_index). Slots of one run
  /// are visited in order. Requires at least one empty slot.
  void ForEachSlot(
      const std::function<void(uint64_t quotient, uint64_t slot)>& fn) const;

  /// Structural self-check (run/cluster/occupied-bit consistency). Used by
  /// the test suite; returns false and prints the violation on corruption.
  bool CheckInvariants() const;

  /// Binary serialization of the full table state.
  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  int q_bits_ = 0;
  int r_bits_ = 0;
  int value_bits_ = 0;
  bool has_tag_ = false;
  uint64_t num_slots_ = 0;
  uint64_t slot_mask_ = 0;
  uint64_t used_slots_ = 0;

  BitVector occupied_;
  BitVector continuation_;
  BitVector shifted_;
  BitVector tag_;
  CompactVector remainders_;
  CompactVector values_;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_QUOTIENT_TABLE_H_
