#ifndef BBF_QUOTIENT_RSQF_H_
#define BBF_QUOTIENT_RSQF_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "util/bit_vector.h"
#include "util/compact_vector.h"

namespace bbf {

/// Rank-and-Select Quotient Filter [Pandey et al. 2017] — the metadata
/// scheme behind the paper's "quotient filter uses n lg(1/eps) + 2.125n
/// bits" (§2). Instead of the original three bits per slot, each slot
/// carries two: `occupieds` (some key has this quotient) and `runends`
/// (this slot ends a run), tied together by a global bijection — the i-th
/// occupied quotient's run ends at the i-th runend bit. Per-64-slot-block
/// *offsets* make rank/select local, giving the 2 + 64/|block| ≈ 2.125
/// metadata bits per slot.
///
/// This implementation keeps runs unsorted (append at run end), uses
/// 16-bit offsets (2+0.25 metadata bits/slot), and avoids wraparound with
/// a small slack region after the table — all documented in DESIGN.md.
/// Supports inserts and lookups (membership); deletes live in the
/// 3-bit QuotientFilter, counting in CountingQuotientFilter.
class Rsqf : public Filter {
 public:
  Rsqf(int q_bits, int r_bits, uint64_t hash_seed = 0x45F);

  static Rsqf ForCapacity(uint64_t n, double fpr);

  using Filter::Contains;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return num_keys_; }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "rsqf"; }

  double LoadFactor() const override {
    return static_cast<double>(num_keys_) / (uint64_t{1} << q_bits_);
  }
  int r_bits() const { return r_bits_; }

  /// Structural self-check for the test suite.
  bool CheckInvariants() const;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

  static constexpr double kMaxLoadFactor = 0.94;
  static constexpr uint64_t kBlockSlots = 64;

 private:
  void Fingerprint(HashedKey key, uint64_t* fq, uint64_t* fr) const;
  // Global position of the k-th (1-indexed) runend bit strictly after
  // `from` (pass from = -1 via uint64 wrap guard below). Returns total
  // slots if none.
  uint64_t SelectRunendAfter(uint64_t from_plus_one, uint64_t k) const;
  // Runend position of the run of occupied quotient q.
  uint64_t RunEndOf(uint64_t q) const;
  // Runend of the last occupied quotient <= q, or kNone if none.
  uint64_t RunEndUpTo(uint64_t q) const;
  void RecomputeOffsets(uint64_t first_block, uint64_t last_block);

  static constexpr uint64_t kNone = ~uint64_t{0};

  int q_bits_;
  int r_bits_;
  uint64_t hash_seed_;
  uint64_t num_quotients_;
  uint64_t total_slots_;  // num_quotients_ + slack (no wraparound).
  BitVector occupieds_;
  BitVector runends_;
  CompactVector remainders_;
  std::vector<uint16_t> offsets_;  // Per block of 64 quotient slots.
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_RSQF_H_
