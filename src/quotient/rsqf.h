#ifndef BBF_QUOTIENT_RSQF_H_
#define BBF_QUOTIENT_RSQF_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "core/filter.h"
#include "util/bit_vector.h"
#include "util/compact_vector.h"

namespace bbf {

/// The rank-and-select quotient-filter substrate [Pandey et al. 2017]:
/// the metadata scheme behind the paper's "quotient filter uses
/// n lg(1/eps) + 2.125n bits" (§2). Instead of the original three bits per
/// slot, each slot carries two: `occupieds` (some key has this quotient)
/// and `runends` (this slot ends a run), tied together by a global
/// bijection — the i-th occupied quotient's run ends at the i-th runend
/// bit. Per-64-slot-block *offsets* make rank/select local, giving the
/// 2 + 64/|block| ≈ 2.125 metadata bits per slot.
///
/// RsqfTable is the substrate itself, generic over the per-slot payload
/// width so two families can share it: `Rsqf` stores bare r-bit remainders
/// (unsorted runs, append at run end), and the Memento range filter
/// (src/range/memento.h) packs `(remainder << m) | memento` and keeps each
/// run sorted, so a run doubles as the sorted memento list of its
/// fingerprint. Runs are kept sorted by the shift-splice variant of the
/// standard RSQF shift insert; lookups scan one run. The table avoids
/// wraparound with a small slack region after the last quotient and uses
/// 16-bit offsets (2 + 0.25 metadata bits/slot) — all documented in
/// DESIGN.md.
class RsqfTable {
 public:
  RsqfTable(int q_bits, int value_bits);

  uint64_t num_quotients() const { return num_quotients_; }
  uint64_t total_slots() const { return total_slots_; }
  int value_bits() const { return value_bits_; }
  bool Occupied(uint64_t q) const { return occupieds_.Get(q); }

  /// Inserts `value` into the run of quotient `q`, shifting the cluster
  /// one slot right. With `sorted` the value is spliced at its ordered
  /// position (runs stay nondecreasing); otherwise it is appended at the
  /// run end. Returns false when the slack region is exhausted.
  bool InsertValue(uint64_t q, uint64_t value, bool sorted);

  /// True when the run of `q` holds `value`, scanning backward from the
  /// run end (the classic RSQF probe). Writes the number of slots scanned
  /// to `*probed` when non-null (0 = quotient unoccupied).
  bool ContainsValue(uint64_t q, uint64_t value, uint64_t* probed) const;

  /// Calls `fn(value)` over the run of `q` in storage order (ascending
  /// for sorted runs); stops early when fn returns false. Returns the
  /// number of slots visited (0 = quotient unoccupied).
  template <typename Fn>
  uint64_t ScanRun(uint64_t q, Fn&& fn) const {
    if (!occupieds_.Get(q)) return 0;
    const uint64_t end = RunEndUpTo(q);
    uint64_t scanned = 0;
    for (uint64_t pos = RunStart(q); pos <= end; ++pos) {
      ++scanned;
      if (!fn(values_.Get(pos))) break;
    }
    return scanned;
  }

  /// Calls `fn(q, value)` for every stored value in quotient order (and
  /// storage order within a run) — the resize/rebuild iteration.
  template <typename Fn>
  void ForEachValue(Fn&& fn) const {
    for (uint64_t q = 0; q < num_quotients_; ++q) {
      if (!occupieds_.Get(q)) continue;
      const uint64_t end = RunEndUpTo(q);
      for (uint64_t pos = RunStart(q); pos <= end; ++pos) {
        fn(q, values_.Get(pos));
      }
    }
  }

  /// 2 metadata bits + `value_bits` per slot, plus 16/64 bits of offset
  /// per block: the "2.125-ish" accounting of the paper.
  size_t SpaceBits() const {
    return total_slots_ * (2 + value_bits_) + offsets_.size() * 16;
  }

  /// Structural self-check for the test suite: the occupieds/runends
  /// bijection and offset freshness.
  bool CheckInvariants() const;

  /// Serializes the four structural members (occupieds, runends, values,
  /// offsets) — the caller frames them with its own header. Byte-for-byte
  /// the layout Rsqf snapshots have always used.
  bool SaveBody(std::ostream& os) const;
  /// Parses a SaveBody stream into `*out`, validating every size against
  /// the expected geometry before committing. `*out` is untouched on
  /// failure.
  static bool LoadBody(std::istream& is, int q_bits, int value_bits,
                       RsqfTable* out);

  static constexpr double kMaxLoadFactor = 0.94;
  static constexpr uint64_t kBlockSlots = 64;
  static constexpr uint64_t kNone = ~uint64_t{0};

 private:
  // Global position of the k-th (1-indexed) runend bit at position >=
  // `from`. Returns kNone if none.
  uint64_t SelectRunendAfter(uint64_t from, uint64_t k) const;
  // Runend of the last occupied quotient <= q, or kNone if none.
  uint64_t RunEndUpTo(uint64_t q) const;
  // First slot of the run of occupied quotient q.
  uint64_t RunStart(uint64_t q) const;
  void RecomputeOffsets(uint64_t first_block, uint64_t last_block);

  int value_bits_;
  uint64_t num_quotients_;
  uint64_t total_slots_;  // num_quotients_ + slack (no wraparound).
  BitVector occupieds_;
  BitVector runends_;
  CompactVector values_;
  std::vector<uint16_t> offsets_;  // Per block of 64 quotient slots.
};

/// Rank-and-Select Quotient Filter: the point-membership family on the
/// RsqfTable substrate. Keeps runs unsorted (append at run end) and
/// supports inserts and lookups (membership); deletes live in the 3-bit
/// QuotientFilter, counting in CountingQuotientFilter, ranges in the
/// Memento filter.
class Rsqf : public Filter {
 public:
  Rsqf(int q_bits, int r_bits, uint64_t hash_seed = 0x45F);

  static Rsqf ForCapacity(uint64_t n, double fpr);

  using Filter::Contains;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  size_t SpaceBits() const override { return table_.SpaceBits(); }
  uint64_t NumKeys() const override { return num_keys_; }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "rsqf"; }

  double LoadFactor() const override {
    return static_cast<double>(num_keys_) / (uint64_t{1} << q_bits_);
  }
  int r_bits() const { return r_bits_; }

  /// Structural self-check for the test suite.
  bool CheckInvariants() const { return table_.CheckInvariants(); }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

  static constexpr double kMaxLoadFactor = RsqfTable::kMaxLoadFactor;
  static constexpr uint64_t kBlockSlots = RsqfTable::kBlockSlots;

 private:
  void Fingerprint(HashedKey key, uint64_t* fq, uint64_t* fr) const;

  int q_bits_;
  int r_bits_;
  uint64_t hash_seed_;
  uint64_t num_quotients_;
  uint64_t num_keys_ = 0;
  RsqfTable table_;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_RSQF_H_
