#include "quotient/prefix_filter.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/hash.h"

namespace bbf {

PrefixFilter::PrefixFilter(uint64_t expected_keys, int fingerprint_bits,
                           uint64_t hash_seed)
    : fingerprint_bits_(fingerprint_bits), hash_seed_(hash_seed) {
  num_buckets_ = std::max<uint64_t>(
      2, expected_keys / (kBucketSize * 95 / 100));
  cells_ = CompactVector(num_buckets_ * kBucketSize, fingerprint_bits_);
  overflowed_.Resize(num_buckets_);
  bucket_used_.resize(num_buckets_, 0);
  // ~7% of keys land in overflowed buckets at this geometry; size the
  // spare generously so it never becomes the bottleneck.
  const uint64_t spare_capacity = std::max<uint64_t>(expected_keys / 6, 64);
  const int q_bits = std::max(
      6, BitWidth(NextPow2(static_cast<uint64_t>(
             std::ceil(spare_capacity / QuotientFilter::kMaxLoadFactor))) -
         1));
  spare_ = std::make_unique<QuotientFilter>(q_bits, fingerprint_bits_,
                                            hash_seed_ + 0x51);
}

uint64_t PrefixFilter::BucketOf(uint64_t key) const {
  return FastRange64(Hash64(key, hash_seed_), num_buckets_);
}

uint64_t PrefixFilter::FingerprintOf(uint64_t key) const {
  const uint64_t fp =
      Hash64(key, hash_seed_ + 1) & LowMask(fingerprint_bits_);
  return fp == 0 ? 1 : fp;
}

bool PrefixFilter::Insert(uint64_t key) {
  const uint64_t bucket = BucketOf(key);
  const uint64_t fp = FingerprintOf(key);
  if (bucket_used_[bucket] < kBucketSize) {
    cells_.Set(CellIndex(bucket, bucket_used_[bucket]++), fp);
    ++num_keys_;
    return true;
  }
  // Bucket full: mark it and spill to the spare (dynamic) filter.
  overflowed_.Set(bucket);
  if (!spare_->Insert(key)) return false;
  ++num_keys_;
  return true;
}

bool PrefixFilter::Contains(uint64_t key) const {
  const uint64_t bucket = BucketOf(key);
  const uint64_t fp = FingerprintOf(key);
  for (int s = 0; s < bucket_used_[bucket]; ++s) {
    if (cells_.Get(CellIndex(bucket, s)) == fp) return true;
  }
  // The spare only matters if this bucket ever spilled.
  return overflowed_.Get(bucket) && spare_->Contains(key);
}

size_t PrefixFilter::SpaceBits() const {
  return cells_.size() * cells_.width() + overflowed_.size() +
         num_buckets_ * 5 +  // bucket_used_ counters (<= 24 fits in 5 bits).
         spare_->SpaceBits();
}

}  // namespace bbf
