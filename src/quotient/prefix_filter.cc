#include "quotient/prefix_filter.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

PrefixFilter::PrefixFilter(uint64_t expected_keys, int fingerprint_bits,
                           uint64_t hash_seed)
    : fingerprint_bits_(fingerprint_bits), hash_seed_(hash_seed) {
  num_buckets_ = std::max<uint64_t>(
      2, expected_keys / (kBucketSize * 95 / 100));
  cells_ = CompactVector(num_buckets_ * kBucketSize, fingerprint_bits_);
  overflowed_.Resize(num_buckets_);
  bucket_used_.resize(num_buckets_, 0);
  // ~7% of keys land in overflowed buckets at this geometry; size the
  // spare generously so it never becomes the bottleneck.
  const uint64_t spare_capacity = std::max<uint64_t>(expected_keys / 6, 64);
  const int q_bits = std::max(
      6, BitWidth(NextPow2(static_cast<uint64_t>(
             std::ceil(spare_capacity / QuotientFilter::kMaxLoadFactor))) -
         1));
  spare_ = std::make_unique<QuotientFilter>(q_bits, fingerprint_bits_,
                                            hash_seed_ + 0x51);
}

uint64_t PrefixFilter::BucketOf(HashedKey key) const {
  return FastRange64(key.Derive(hash_seed_), num_buckets_);
}

uint64_t PrefixFilter::FingerprintOf(HashedKey key) const {
  const uint64_t fp =
      key.Derive(hash_seed_ + 1) & LowMask(fingerprint_bits_);
  return fp == 0 ? 1 : fp;
}

bool PrefixFilter::Insert(HashedKey key) {
  const uint64_t bucket = BucketOf(key);
  const uint64_t fp = FingerprintOf(key);
  if (bucket_used_[bucket] < kBucketSize) {
    cells_.Set(CellIndex(bucket, bucket_used_[bucket]++), fp);
    ++num_keys_;
    return true;
  }
  // Bucket full: mark it and spill to the spare (dynamic) filter.
  overflowed_.Set(bucket);
  if (!spare_->Insert(key)) return false;
  ++num_keys_;
  return true;
}

bool PrefixFilter::Contains(HashedKey key) const {
  const uint64_t bucket = BucketOf(key);
  const uint64_t fp = FingerprintOf(key);
  for (int s = 0; s < bucket_used_[bucket]; ++s) {
    if (cells_.Get(CellIndex(bucket, s)) == fp) return true;
  }
  // The spare only matters if this bucket ever spilled.
  return overflowed_.Get(bucket) && spare_->Contains(key);
}

size_t PrefixFilter::SpaceBits() const {
  return cells_.size() * cells_.width() + overflowed_.size() +
         num_buckets_ * 5 +  // bucket_used_ counters (<= 24 fits in 5 bits).
         spare_->SpaceBits();
}

bool PrefixFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, fingerprint_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_buckets_);
  WriteU64(os, num_keys_);
  cells_.Save(os);
  overflowed_.Save(os);
  os.write(reinterpret_cast<const char*>(bucket_used_.data()),
           static_cast<std::streamsize>(bucket_used_.size()));
  return spare_->SavePayload(os) && os.good();
}

bool PrefixFilter::LoadPayload(std::istream& is) {
  int32_t f;
  uint64_t seed;
  uint64_t buckets;
  uint64_t n;
  if (!ReadI32(is, &f) || f < 1 || f > 64 || !ReadU64(is, &seed) ||
      !ReadU64Capped(is, &buckets, kMaxSnapshotElements / kBucketSize) ||
      buckets < 2 || !ReadU64(is, &n)) {
    return false;
  }
  CompactVector cells;
  BitVector overflowed;
  if (!cells.Load(is) || cells.size() != buckets * kBucketSize ||
      cells.width() != f || !overflowed.Load(is) ||
      overflowed.size() != buckets) {
    return false;
  }
  std::string used_bytes;
  if (!ReadBytes(is, &used_bytes, buckets)) return false;
  std::vector<uint8_t> bucket_used(used_bytes.begin(), used_bytes.end());
  for (uint8_t u : bucket_used) {
    if (u > kBucketSize) return false;
  }
  auto spare = std::make_unique<QuotientFilter>(6, f, seed + 0x51);
  if (!spare->LoadPayload(is)) return false;
  fingerprint_bits_ = f;
  hash_seed_ = seed;
  num_buckets_ = buckets;
  num_keys_ = n;
  cells_ = std::move(cells);
  overflowed_ = std::move(overflowed);
  bucket_used_ = std::move(bucket_used);
  spare_ = std::move(spare);
  return true;
}

}  // namespace bbf
