#include "quotient/quotient_table.h"

#include <cstdio>
#include <deque>

#include "util/serialize.h"

namespace bbf {

QuotientTable::QuotientTable(int q_bits, int r_bits, bool has_tag,
                             int value_bits)
    : q_bits_(q_bits),
      r_bits_(r_bits),
      value_bits_(value_bits),
      has_tag_(has_tag),
      num_slots_(uint64_t{1} << q_bits),
      slot_mask_(num_slots_ - 1),
      occupied_(num_slots_),
      continuation_(num_slots_),
      shifted_(num_slots_),
      tag_(has_tag ? num_slots_ : 0),
      remainders_(num_slots_, r_bits),
      values_(value_bits ? num_slots_ : 0,
              value_bits ? value_bits : 1) {}

size_t QuotientTable::SpaceBits() const {
  return num_slots_ * (3 + (has_tag_ ? 1 : 0) + r_bits_ + value_bits_);
}

uint64_t QuotientTable::FindRunStart(uint64_t q) const {
  // Walk left to the cluster start, then replay runs forward.
  uint64_t b = q;
  while (shifted_.Get(b)) b = Prev(b);
  uint64_t s = b;
  while (b != q) {
    do {
      s = Next(s);
    } while (continuation_.Get(s));  // Skip to the next run head.
    do {
      b = Next(b);
    } while (!occupied_.Get(b));  // Next quotient with a run.
  }
  return s;
}

void QuotientTable::InsertSlotAt(uint64_t pos, uint64_t home,
                                 uint64_t remainder, bool continuation,
                                 bool tag, uint64_t value) {
  uint64_t cur_rem = remainder;
  uint64_t cur_val = value;
  bool cur_cont = continuation;
  bool cur_tag = tag;
  bool cur_shift = pos != home;
  uint64_t i = pos;
  while (!SlotEmpty(i)) {
    const uint64_t old_rem = remainders_.Get(i);
    const uint64_t old_val = value_bits_ ? values_.Get(i) : 0;
    const bool old_cont = continuation_.Get(i);
    const bool old_tag = has_tag_ && tag_.Get(i);
    remainders_.Set(i, cur_rem);
    if (value_bits_) values_.Set(i, cur_val);
    continuation_.Assign(i, cur_cont);
    if (has_tag_) tag_.Assign(i, cur_tag);
    shifted_.Assign(i, cur_shift);
    cur_rem = old_rem;
    cur_val = old_val;
    cur_cont = old_cont;
    cur_tag = old_tag;
    cur_shift = true;  // Every displaced slot is (now) shifted.
    i = Next(i);
  }
  remainders_.Set(i, cur_rem);
  if (value_bits_) values_.Set(i, cur_val);
  continuation_.Assign(i, cur_cont);
  if (has_tag_) tag_.Assign(i, cur_tag);
  shifted_.Assign(i, cur_shift);
  ++used_slots_;
}

void QuotientTable::RemoveSlotAt(uint64_t pos, uint64_t run_quotient) {
  uint64_t quot = run_quotient;
  uint64_t curr = pos;
  const uint64_t orig = pos;
  while (true) {
    const uint64_t next = Next(curr);
    const bool next_cluster_start =
        !continuation_.Get(next) && !shifted_.Get(next);
    if (SlotEmpty(next) || next_cluster_start || next == orig) {
      // Clear the vacated slot (occupied stays: it describes the index).
      continuation_.Assign(curr, false);
      shifted_.Assign(curr, false);
      if (has_tag_) tag_.Assign(curr, false);
      remainders_.Set(curr, 0);
      if (value_bits_) values_.Set(curr, 0);
      --used_slots_;
      return;
    }
    // Slide `next` into `curr`, fixing heads that reach their home slot.
    bool next_shifted = true;
    if (!continuation_.Get(next)) {
      do {
        quot = Next(quot);
      } while (!occupied_.Get(quot));
      if (curr == quot) next_shifted = false;
    }
    remainders_.Set(curr, remainders_.Get(next));
    if (value_bits_) values_.Set(curr, values_.Get(next));
    continuation_.Assign(curr, continuation_.Get(next));
    if (has_tag_) tag_.Assign(curr, has_tag_ && tag_.Get(next));
    shifted_.Assign(curr, next_shifted);
    curr = next;
  }
}

void QuotientTable::RemoveEntry(uint64_t pos, uint64_t run_start,
                                uint64_t fq) {
  const bool was_head = (pos == run_start);
  if (was_head) {
    const uint64_t nxt = Next(pos);
    const bool run_survives = !SlotEmpty(nxt) && continuation_.Get(nxt);
    if (!run_survives) occupied_.Clear(fq);
  }
  RemoveSlotAt(pos, fq);
  if (was_head && !SlotEmpty(pos) && continuation_.Get(pos)) {
    // Promote the run's second element to head.
    continuation_.Clear(pos);
    if (pos == fq) shifted_.Clear(pos);
  }
}

void QuotientTable::ForEachSlot(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  if (used_slots_ == 0) return;
  // Start right after an empty slot so no cluster straddles the scan start.
  uint64_t start = num_slots_;  // Sentinel: no empty slot found.
  for (uint64_t i = 0; i < num_slots_; ++i) {
    if (SlotEmpty(i)) {
      start = i;
      break;
    }
  }
  // Load factor is capped below 1.0, so an empty slot always exists.
  if (start == num_slots_) return;  // Defensive: full table, cannot scan.
  std::deque<uint64_t> pending;
  uint64_t cur_q = 0;
  for (uint64_t k = 1; k <= num_slots_; ++k) {
    const uint64_t i = (start + k) & slot_mask_;
    if (occupied_.Get(i)) pending.push_back(i);
    if (SlotEmpty(i)) continue;
    if (!continuation_.Get(i)) {
      cur_q = pending.front();
      pending.pop_front();
    }
    fn(cur_q, i);
  }
}

bool QuotientTable::CheckInvariants() const {
  uint64_t start = num_slots_;
  for (uint64_t i = 0; i < num_slots_; ++i) {
    if (SlotEmpty(i)) {
      if (occupied_.Get(i)) {
        std::fprintf(stderr, "invariant: empty slot %llu has occupied bit\n",
                     static_cast<unsigned long long>(i));
        return false;
      }
      if (start == num_slots_) start = i;
    }
  }
  if (used_slots_ == 0) return true;
  if (start == num_slots_) return true;  // Full table: nothing to scan from.
  std::deque<uint64_t> pending;
  uint64_t runs_seen = 0;
  uint64_t occupied_seen = 0;
  for (uint64_t k = 1; k <= num_slots_; ++k) {
    const uint64_t i = (start + k) & slot_mask_;
    if (occupied_.Get(i)) {
      pending.push_back(i);
      ++occupied_seen;
    }
    if (SlotEmpty(i)) {
      if (!pending.empty()) {
        // A pending quotient's run must appear before its cluster ends.
        std::fprintf(stderr,
                     "invariant: cluster ended at %llu with pending run %llu\n",
                     static_cast<unsigned long long>(i),
                     static_cast<unsigned long long>(pending.front()));
        return false;
      }
      continue;
    }
    if (!continuation_.Get(i)) {
      if (pending.empty()) {
        std::fprintf(stderr, "invariant: run head at %llu with no pending\n",
                     static_cast<unsigned long long>(i));
        return false;
      }
      const uint64_t q = pending.front();
      pending.pop_front();
      ++runs_seen;
      const bool at_home = (i == q);
      if (at_home != !shifted_.Get(i)) {
        std::fprintf(stderr,
                     "invariant: head at %llu quotient %llu shifted bit %d\n",
                     static_cast<unsigned long long>(i),
                     static_cast<unsigned long long>(q), (int)shifted_.Get(i));
        return false;
      }
    } else if (!shifted_.Get(i)) {
      std::fprintf(stderr, "invariant: continuation at %llu not shifted\n",
                   static_cast<unsigned long long>(i));
      return false;
    }
  }
  if (runs_seen != occupied_seen) {
    std::fprintf(stderr, "invariant: %llu runs vs %llu occupied bits\n",
                 static_cast<unsigned long long>(runs_seen),
                 static_cast<unsigned long long>(occupied_seen));
    return false;
  }
  return true;
}

void QuotientTable::Save(std::ostream& os) const {
  WriteI32(os, q_bits_);
  WriteI32(os, r_bits_);
  WriteI32(os, value_bits_);
  WriteI32(os, has_tag_ ? 1 : 0);
  WriteU64(os, used_slots_);
  occupied_.Save(os);
  continuation_.Save(os);
  shifted_.Save(os);
  tag_.Save(os);
  remainders_.Save(os);
  values_.Save(os);
}

bool QuotientTable::Load(std::istream& is) {
  // All fields come from an untrusted snapshot: parse into a fresh table,
  // cross-check every plane against the declared geometry, and only then
  // replace *this — a failed load leaves the table untouched.
  int32_t q;
  int32_t r;
  int32_t v;
  int32_t tag;
  uint64_t used;
  if (!ReadI32(is, &q) || !ReadI32(is, &r) || !ReadI32(is, &v) ||
      !ReadI32(is, &tag) || !ReadU64(is, &used)) {
    return false;
  }
  if (q < 1 || q > 38 || r < 0 || r > 64 || v < 0 || v > 64) return false;
  QuotientTable fresh;
  fresh.q_bits_ = q;
  fresh.r_bits_ = r;
  fresh.value_bits_ = v;
  fresh.has_tag_ = tag != 0;
  fresh.num_slots_ = uint64_t{1} << q;
  fresh.slot_mask_ = fresh.num_slots_ - 1;
  fresh.used_slots_ = used;
  if (used > fresh.num_slots_) return false;
  if (!fresh.occupied_.Load(is) || !fresh.continuation_.Load(is) ||
      !fresh.shifted_.Load(is) || !fresh.tag_.Load(is) ||
      !fresh.remainders_.Load(is) || !fresh.values_.Load(is)) {
    return false;
  }
  // Geometry consistency: every plane must cover exactly num_slots_.
  if (fresh.occupied_.size() != fresh.num_slots_ ||
      fresh.continuation_.size() != fresh.num_slots_ ||
      fresh.shifted_.size() != fresh.num_slots_ ||
      fresh.tag_.size() != (fresh.has_tag_ ? fresh.num_slots_ : 0) ||
      fresh.remainders_.size() != fresh.num_slots_ ||
      fresh.remainders_.width() != fresh.r_bits_ ||
      fresh.values_.size() != (fresh.value_bits_ ? fresh.num_slots_ : 0) ||
      (fresh.value_bits_ > 0 && fresh.values_.width() != fresh.value_bits_)) {
    return false;
  }
  *this = std::move(fresh);
  return true;
}

}  // namespace bbf
