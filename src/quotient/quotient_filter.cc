#include "quotient/quotient_filter.h"

#include <algorithm>
#include <cmath>

#include "core/metrics_sink.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {
namespace {

// Shared by QF and CQF: sizing from capacity and target FPR.
void SizeFor(uint64_t n, double fpr, int* q_bits, int* r_bits) {
  uint64_t slots = NextPow2(static_cast<uint64_t>(
      std::ceil(n / QuotientFilter::kMaxLoadFactor)));
  *q_bits = std::max(6, BitWidth(slots - 1));
  // FPR ~ load * 2^-r; solve r for the target at max load.
  const double needed = -std::log2(fpr / QuotientFilter::kMaxLoadFactor);
  *r_bits = std::max(1, static_cast<int>(std::ceil(needed)));
}

}  // namespace

QuotientFilter::QuotientFilter(int q_bits, int r_bits, uint64_t hash_seed)
    : table_(q_bits, r_bits), hash_seed_(hash_seed) {}

QuotientFilter QuotientFilter::ForCapacity(uint64_t n, double fpr) {
  int q_bits;
  int r_bits;
  SizeFor(n, fpr, &q_bits, &r_bits);
  return QuotientFilter(q_bits, r_bits);
}

void QuotientFilter::Fingerprint(HashedKey key, uint64_t* fq,
                                 uint64_t* fr) const {
  const uint64_t h = key.Derive(hash_seed_);
  *fq = (h >> table_.r_bits()) & (table_.num_slots() - 1);
  *fr = h & LowMask(table_.r_bits());
}

bool QuotientFilter::Insert(HashedKey key) {
  if (table_.LoadFactor() >= kMaxLoadFactor ||
      table_.num_used_slots() + 1 >= table_.num_slots()) {
    return false;
  }
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  if (!InsertFingerprint(fq, fr)) return false;
  ++num_keys_;
  return true;
}

bool QuotientFilter::InsertFingerprint(uint64_t fq, uint64_t fr) {
  // One slot must always stay empty: clusters and scans rely on it.
  if (table_.num_used_slots() + 1 >= table_.num_slots()) return false;
  if (table_.SlotEmpty(fq) && !table_.occupied(fq)) {
    table_.InsertSlotAt(fq, fq, fr, /*continuation=*/false);
    table_.set_occupied(fq, true);
    return true;
  }
  const bool was_occupied = table_.occupied(fq);
  table_.set_occupied(fq, true);
  const uint64_t start = table_.FindRunStart(fq);
  if (!was_occupied) {
    // New run: its head slides in at `start`, displacing later runs.
    table_.InsertSlotAt(start, fq, fr, /*continuation=*/false);
    return true;
  }
  // Existing run: keep remainders sorted.
  uint64_t s = start;
  do {
    if (table_.remainder(s) >= fr) break;
    s = table_.Next(s);
  } while (table_.continuation(s));
  if (s == start) {
    // New minimum: the old head becomes a continuation as it shifts.
    table_.set_continuation(start, true);
    table_.InsertSlotAt(s, fq, fr, /*continuation=*/false);
  } else {
    table_.InsertSlotAt(s, fq, fr, /*continuation=*/true);
  }
  return true;
}

bool QuotientFilter::Contains(HashedKey key) const {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  return ContainsFingerprint(fq, fr);
}

bool QuotientFilter::ContainsFingerprint(uint64_t fq, uint64_t fr) const {
  uint64_t probed = 0;  // Run slots scanned; 0 = unoccupied home slot.
  bool found = false;
  if (table_.occupied(fq)) {
    uint64_t s = table_.FindRunStart(fq);
    do {
      ++probed;
      const uint64_t rem = table_.remainder(s);
      if (rem == fr) {
        found = true;
        break;
      }
      if (rem > fr) break;  // Runs are sorted.
      s = table_.Next(s);
    } while (table_.continuation(s));
  }
  if (sink_ != nullptr) sink_->OnProbeLength(probed);
  return found;
}

void QuotientFilter::ContainsMany(std::span<const HashedKey> keys,
                                  uint8_t* out) const {
  // Prefetching only pays once probes actually miss: a cache-resident
  // table answers from L2/LLC and the two-pass bookkeeping is pure
  // overhead, so small tables keep the scalar loop.
  constexpr size_t kPrefetchMinBits = size_t{1} << 25;  // 4 MiB.
  if (table_.SpaceBits() < kPrefetchMinBits) {
    Filter::ContainsMany(keys, out);
    return;
  }
  constexpr size_t kTile = 32;
  uint64_t fq[kTile];
  uint64_t fr[kTile];
  for (size_t base = 0; base < keys.size(); base += kTile) {
    const size_t n = std::min(kTile, keys.size() - base);
    // Pass 1: fingerprint and request each home slot's four planes.
    for (size_t j = 0; j < n; ++j) {
      Fingerprint(keys[base + j], &fq[j], &fr[j]);
      table_.PrefetchSlot(fq[j]);
    }
    // Pass 2: walk the runs; the home-slot lines are resident by now.
    for (size_t j = 0; j < n; ++j) {
      out[base + j] = ContainsFingerprint(fq[j], fr[j]) ? 1 : 0;
    }
  }
}

size_t QuotientFilter::InsertMany(std::span<const HashedKey> keys) {
  constexpr size_t kTile = 32;
  uint64_t fq[kTile];
  uint64_t fr[kTile];
  size_t inserted = 0;
  for (size_t base = 0; base < keys.size(); base += kTile) {
    const size_t n = std::min(kTile, keys.size() - base);
    for (size_t j = 0; j < n; ++j) {
      Fingerprint(keys[base + j], &fq[j], &fr[j]);
      table_.PrefetchSlot(fq[j], /*for_write=*/true);
    }
    for (size_t j = 0; j < n; ++j) {
      // Same per-key admission checks as Insert.
      if (table_.LoadFactor() >= kMaxLoadFactor ||
          table_.num_used_slots() + 1 >= table_.num_slots()) {
        continue;
      }
      if (InsertFingerprint(fq[j], fr[j])) {
        ++num_keys_;
        ++inserted;
      }
    }
  }
  return inserted;
}

uint64_t QuotientFilter::Count(HashedKey key) const {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  if (!table_.occupied(fq)) return 0;
  uint64_t count = 0;
  uint64_t s = table_.FindRunStart(fq);
  do {
    const uint64_t rem = table_.remainder(s);
    if (rem == fr) ++count;
    if (rem > fr) break;
    s = table_.Next(s);
  } while (table_.continuation(s));
  return count;
}

bool QuotientFilter::Erase(HashedKey key) {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  if (!table_.occupied(fq)) return false;
  const uint64_t start = table_.FindRunStart(fq);
  uint64_t s = start;
  bool found = false;
  do {
    const uint64_t rem = table_.remainder(s);
    if (rem == fr) {
      found = true;
      break;
    }
    if (rem > fr) break;
    s = table_.Next(s);
  } while (table_.continuation(s));
  if (!found) return false;

  table_.RemoveEntry(s, start, fq);
  --num_keys_;
  return true;
}

namespace {

// Shared payload shape of the plain and counting quotient filters: seed,
// key count, full table state. The table loads into a local and is only
// committed on success, so a corrupt payload cannot leave a half-written
// filter behind.
void SaveQfPayload(std::ostream& os, uint64_t hash_seed, uint64_t num_keys,
                   const QuotientTable& table) {
  WriteU64(os, hash_seed);
  WriteU64(os, num_keys);
  table.Save(os);
}

bool LoadQfPayload(std::istream& is, uint64_t* hash_seed, uint64_t* num_keys,
                   QuotientTable* table, bool want_tag, int want_value_bits) {
  uint64_t seed;
  uint64_t n;
  QuotientTable fresh;
  if (!ReadU64(is, &seed) || !ReadU64(is, &n) || !fresh.Load(is)) {
    return false;
  }
  // The table must match this variant's geometry (the counting variant
  // needs the tag plane; the plain one must not carry values).
  if (fresh.value_bits() != want_value_bits || fresh.has_tag() != want_tag) {
    return false;
  }
  *hash_seed = seed;
  *num_keys = n;
  *table = std::move(fresh);
  return true;
}

}  // namespace

bool QuotientFilter::SavePayload(std::ostream& os) const {
  SaveQfPayload(os, hash_seed_, num_keys_, table_);
  return os.good();
}

bool QuotientFilter::LoadPayload(std::istream& is) {
  return LoadQfPayload(is, &hash_seed_, &num_keys_, &table_,
                       /*want_tag=*/false, /*want_value_bits=*/0);
}

void QuotientFilter::ForEachFingerprint(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  table_.ForEachSlot(
      [&](uint64_t q, uint64_t slot) { fn(q, table_.remainder(slot)); });
}

// ---------------------------------------------------------------------------
// CountingQuotientFilter
// ---------------------------------------------------------------------------

CountingQuotientFilter::CountingQuotientFilter(int q_bits, int r_bits,
                                               uint64_t hash_seed)
    : table_(q_bits, r_bits, /*has_tag=*/true), hash_seed_(hash_seed) {}

CountingQuotientFilter CountingQuotientFilter::ForCapacity(uint64_t n,
                                                           double fpr) {
  int q_bits;
  int r_bits;
  SizeFor(n, fpr, &q_bits, &r_bits);
  return CountingQuotientFilter(q_bits, r_bits);
}

void CountingQuotientFilter::Fingerprint(HashedKey key, uint64_t* fq,
                                         uint64_t* fr) const {
  const uint64_t h = key.Derive(hash_seed_);
  *fq = (h >> table_.r_bits()) & (table_.num_slots() - 1);
  *fr = h & LowMask(table_.r_bits());
}

bool CountingQuotientFilter::FindRemainderSlot(uint64_t fq, uint64_t fr,
                                               uint64_t* pos,
                                               uint64_t* run_start) const {
  if (!table_.occupied(fq)) return false;
  const uint64_t start = table_.FindRunStart(fq);
  *run_start = start;
  uint64_t s = start;
  do {
    if (!table_.tag(s)) {  // Remainder slot (tag slots are counter digits).
      const uint64_t rem = table_.remainder(s);
      if (rem == fr) {
        *pos = s;
        return true;
      }
      if (rem > fr) return false;
    }
    s = table_.Next(s);
  } while (table_.continuation(s));
  return false;
}

uint64_t CountingQuotientFilter::ReadCount(
    uint64_t pos, std::vector<uint64_t>* digits) const {
  // Little-endian base-2^r digits of (count - 1) follow the remainder slot.
  uint64_t count = 1;
  uint64_t base = 1;
  uint64_t s = table_.Next(pos);
  while (table_.continuation(s) && table_.tag(s)) {
    if (digits != nullptr) digits->push_back(s);
    count += table_.remainder(s) * base;
    base <<= table_.r_bits();
    s = table_.Next(s);
  }
  return count;
}

bool CountingQuotientFilter::Insert(HashedKey key) {
  if (table_.LoadFactor() >= QuotientFilter::kMaxLoadFactor ||
      table_.num_used_slots() + 1 >= table_.num_slots()) {
    return false;
  }
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);

  uint64_t pos;
  uint64_t run_start;
  if (FindRemainderSlot(fq, fr, &pos, &run_start)) {
    // Existing key: bump the variable-length counter.
    std::vector<uint64_t> digits;
    const uint64_t count = ReadCount(pos, &digits);
    uint64_t c = count;  // New count - 1 == old count.
    const uint64_t mask = LowMask(table_.r_bits());
    for (uint64_t d : digits) {
      table_.set_remainder(d, c & mask);
      c >>= table_.r_bits();
    }
    if (c > 0) {
      // Counter grew a digit: append the new most-significant digit after
      // the last existing digit (or right after the remainder slot).
      const uint64_t after = digits.empty() ? pos : digits.back();
      table_.InsertSlotAt(table_.Next(after), fq, c & mask,
                          /*continuation=*/true, /*tag=*/true);
    }
    ++num_keys_;
    return true;
  }

  // New key: insert a remainder slot at its sorted position in the run.
  if (table_.SlotEmpty(fq) && !table_.occupied(fq)) {
    table_.InsertSlotAt(fq, fq, fr, /*continuation=*/false);
    table_.set_occupied(fq, true);
    ++num_keys_;
    return true;
  }
  const bool was_occupied = table_.occupied(fq);
  table_.set_occupied(fq, true);
  const uint64_t start = table_.FindRunStart(fq);
  if (!was_occupied) {
    table_.InsertSlotAt(start, fq, fr, /*continuation=*/false);
    ++num_keys_;
    return true;
  }
  // Find the first remainder slot with rem > fr; insert before it (i.e.,
  // after the previous remainder's digit block).
  uint64_t s = start;
  uint64_t insert_at = start;
  bool placed = false;
  do {
    if (!table_.tag(s) && table_.remainder(s) > fr) {
      insert_at = s;
      placed = true;
      break;
    }
    s = table_.Next(s);
    insert_at = s;
  } while (table_.continuation(s));
  if (placed && insert_at == start) {
    // New minimum remainder: old head becomes a continuation.
    table_.set_continuation(start, true);
    table_.InsertSlotAt(start, fq, fr, /*continuation=*/false);
  } else {
    table_.InsertSlotAt(insert_at, fq, fr, /*continuation=*/true);
  }
  ++num_keys_;
  return true;
}

uint64_t CountingQuotientFilter::Count(HashedKey key) const {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  uint64_t pos;
  uint64_t run_start;
  if (!FindRemainderSlot(fq, fr, &pos, &run_start)) return 0;
  return ReadCount(pos, nullptr);
}

void CountingQuotientFilter::RemoveEntrySlot(uint64_t pos, uint64_t run_start,
                                             uint64_t fq) {
  table_.RemoveEntry(pos, run_start, fq);
}

bool CountingQuotientFilter::Erase(HashedKey key) {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  uint64_t pos;
  uint64_t run_start;
  if (!FindRemainderSlot(fq, fr, &pos, &run_start)) return false;
  std::vector<uint64_t> digits;
  const uint64_t count = ReadCount(pos, &digits);
  if (count == 1) {
    // Remove the remainder slot itself (it has no digit slots).
    RemoveEntrySlot(pos, run_start, fq);
  } else {
    // Rewrite digits for count - 2 == (count - 1) - 1; drop the last digit
    // slot if the encoding shrank.
    uint64_t c = count - 2;
    const uint64_t mask = LowMask(table_.r_bits());
    const int r = table_.r_bits();
    // Number of digits needed for value c (0 -> none).
    size_t needed = 0;
    for (uint64_t v = c; v > 0; v >>= r) ++needed;
    for (size_t i = 0; i < needed; ++i) {
      table_.set_remainder(digits[i], c & mask);
      c >>= r;
    }
    for (size_t i = digits.size(); i > needed; --i) {
      // Digit slots are never run heads; plain removal suffices.
      table_.RemoveSlotAt(digits[i - 1], fq);
    }
  }
  --num_keys_;
  return true;
}

bool CountingQuotientFilter::SavePayload(std::ostream& os) const {
  SaveQfPayload(os, hash_seed_, num_keys_, table_);
  return os.good();
}

bool CountingQuotientFilter::LoadPayload(std::istream& is) {
  return LoadQfPayload(is, &hash_seed_, &num_keys_, &table_,
                       /*want_tag=*/true, /*want_value_bits=*/0);
}

}  // namespace bbf
