#ifndef BBF_QUOTIENT_PREFIX_FILTER_H_
#define BBF_QUOTIENT_PREFIX_FILTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/filter.h"
#include "quotient/quotient_filter.h"
#include "util/compact_vector.h"

namespace bbf {

/// Prefix filter [Even, Even, Morrison 2022] (§2): a semi-dynamic filter
/// that is "practically and theoretically better than Bloom". Keys hash to
/// one bucket of a first-level fingerprint store; each bucket keeps only
/// the *prefix* of its incoming fingerprint set — once a bucket fills, it
/// is marked overflowed and later arrivals spill into a small dynamic
/// *spare* filter (here: a quotient filter sized for the expected ~7%
/// spill). Queries probe one bucket and, only if that bucket has
/// overflowed, the spare — so most negative queries cost a single cache
/// line.
///
/// Inserts only (semi-dynamic): deleting from a prefix bucket cannot know
/// whether the key lives in the spare.
class PrefixFilter : public Filter {
 public:
  PrefixFilter(uint64_t expected_keys, int fingerprint_bits,
               uint64_t hash_seed = 0x9F);

  using Filter::Contains;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return num_keys_; }
  /// Occupancy of the prefix-bucket table (the spare absorbs overflow).
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) / cells_.size();
  }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "prefix"; }

  uint64_t spare_keys() const { return spare_->NumKeys(); }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

  static constexpr int kBucketSize = 24;

 private:
  uint64_t BucketOf(HashedKey key) const;
  uint64_t FingerprintOf(HashedKey key) const;
  uint64_t CellIndex(uint64_t bucket, int slot) const {
    return bucket * kBucketSize + slot;
  }

  int fingerprint_bits_;
  uint64_t hash_seed_;
  uint64_t num_buckets_;
  CompactVector cells_;      // 0 = empty cell.
  BitVector overflowed_;     // Bucket spilled into the spare.
  std::vector<uint8_t> bucket_used_;
  std::unique_ptr<QuotientFilter> spare_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_PREFIX_FILTER_H_
