#include "quotient/expanding_quotient_maplet.h"

#include <utility>

#include "quotient/quotient_filter.h"
#include "util/bits.h"

namespace bbf {

ExpandingQuotientMaplet::ExpandingQuotientMaplet(int q_bits, int r_bits,
                                                 int value_bits,
                                                 uint64_t hash_seed)
    : maplet_(q_bits, r_bits, value_bits, hash_seed),
      hash_seed_(hash_seed) {}

bool ExpandingQuotientMaplet::Insert(uint64_t key, uint64_t value) {
  if (maplet_.Insert(key, value)) return true;
  if (!Expand()) return false;
  return maplet_.Insert(key, value);
}

bool ExpandingQuotientMaplet::Expand() {
  const int r = maplet_.table_.r_bits();
  if (r <= 1) return false;
  QuotientMaplet bigger(maplet_.table_.q_bits() + 1, r - 1,
                        maplet_.table_.value_bits(), hash_seed_);
  maplet_.ForEachEntry([&](uint64_t fq, uint64_t fr, uint64_t value) {
    const uint64_t new_fq = (fq << 1) | (fr >> (r - 1));
    bigger.InsertFingerprint(new_fq, fr & LowMask(r - 1), value);
  });
  bigger.num_entries_ = maplet_.num_entries_;
  maplet_ = std::move(bigger);
  ++expansions_;
  return true;
}

}  // namespace bbf
