#include "quotient/expanding_quotient_filter.h"

#include <utility>
#include <vector>

#include "core/metrics_sink.h"
#include "util/bits.h"
#include "util/serialize.h"

namespace bbf {

ExpandingQuotientFilter::ExpandingQuotientFilter(int q_bits, int r_bits,
                                                 uint64_t hash_seed)
    : filter_(q_bits, r_bits, hash_seed), hash_seed_(hash_seed) {}

bool ExpandingQuotientFilter::Insert(HashedKey key) {
  if (filter_.Insert(key)) return true;
  if (!Expand()) return false;
  return filter_.Insert(key);
}

bool ExpandingQuotientFilter::Erase(HashedKey key) {
  return filter_.Erase(key);
}

bool ExpandingQuotientFilter::Expand() {
  const int r = filter_.r_bits();
  if (r <= 1) return false;  // Fingerprint bits are exhausted (§2.2).
  QuotientFilter bigger(filter_.q_bits() + 1, r - 1, hash_seed_);
  // The same key hash yields (fq', fr') = ((fq << 1) | msb(fr), fr without
  // its msb) under the grown geometry, so stored fingerprints can be
  // remapped without the original keys.
  filter_.ForEachFingerprint([&](uint64_t fq, uint64_t fr) {
    const uint64_t new_fq = (fq << 1) | (fr >> (r - 1));
    const uint64_t new_fr = fr & LowMask(r - 1);
    bigger.InsertFingerprint(new_fq, new_fr);
  });
  bigger.num_keys_ = filter_.num_keys_;
  filter_ = std::move(bigger);
  ++expansions_;
  if (sink_ != nullptr) sink_->OnExpansion();
  return true;
}

bool ExpandingQuotientFilter::SavePayload(std::ostream& os) const {
  WriteU64(os, hash_seed_);
  WriteI32(os, expansions_);
  return filter_.SavePayload(os) && os.good();
}

bool ExpandingQuotientFilter::LoadPayload(std::istream& is) {
  uint64_t seed;
  int32_t expansions;
  if (!ReadU64(is, &seed) || !ReadI32(is, &expansions) || expansions < 0 ||
      expansions > 64) {
    return false;
  }
  QuotientFilter fresh(6, 4, seed);
  if (!fresh.LoadPayload(is)) return false;
  hash_seed_ = seed;
  expansions_ = expansions;
  filter_ = std::move(fresh);
  return true;
}

}  // namespace bbf
