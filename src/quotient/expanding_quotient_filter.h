#ifndef BBF_QUOTIENT_EXPANDING_QUOTIENT_FILTER_H_
#define BBF_QUOTIENT_EXPANDING_QUOTIENT_FILTER_H_

#include <cstdint>

#include "core/filter.h"
#include "quotient/quotient_filter.h"

namespace bbf {

/// The quotient filter's built-in "limited support for expansion" (§2.2):
/// when load exceeds the threshold, double the table and steal one bit
/// from every fingerprint to address the new half. No rehash of original
/// keys is needed — but fingerprints shrink, so the false-positive rate
/// doubles with each expansion, and once remainders hit one bit the filter
/// can no longer expand (Insert starts failing). Experiment E4 contrasts
/// this with chaining and with Taffy-style expansion.
class ExpandingQuotientFilter : public Filter {
 public:
  /// Starts with 2^q_bits slots and r_bits-bit remainders.
  ExpandingQuotientFilter(int q_bits, int r_bits, uint64_t hash_seed = 0xBE);

  using Filter::Contains;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override { return filter_.Contains(key); }
  bool Erase(HashedKey key) override;
  size_t SpaceBits() const override { return filter_.SpaceBits(); }
  uint64_t NumKeys() const override { return filter_.NumKeys(); }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "expanding-quotient"; }

  int expansions() const { return expansions_; }
  int r_bits() const { return filter_.r_bits(); }
  double LoadFactor() const override { return filter_.LoadFactor(); }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  /// Doubles capacity by moving every fingerprint's top remainder bit into
  /// the quotient. Returns false if remainders are exhausted.
  bool Expand();

  QuotientFilter filter_;
  uint64_t hash_seed_;
  int expansions_ = 0;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_EXPANDING_QUOTIENT_FILTER_H_
