#include "quotient/rsqf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

Rsqf::Rsqf(int q_bits, int r_bits, uint64_t hash_seed)
    : q_bits_(q_bits),
      r_bits_(r_bits),
      hash_seed_(hash_seed),
      num_quotients_(uint64_t{1} << q_bits),
      total_slots_((uint64_t{1} << q_bits) + 2 * kBlockSlots),
      occupieds_(total_slots_),
      runends_(total_slots_),
      remainders_(total_slots_, r_bits),
      offsets_(total_slots_ / kBlockSlots + 1, 0) {}

Rsqf Rsqf::ForCapacity(uint64_t n, double fpr) {
  const uint64_t slots =
      NextPow2(static_cast<uint64_t>(std::ceil(n / kMaxLoadFactor)));
  const int q = std::max(6, BitWidth(slots - 1));
  const double needed = -std::log2(fpr / kMaxLoadFactor);
  const int r = std::max(1, static_cast<int>(std::ceil(needed)));
  return Rsqf(q, r);
}

void Rsqf::Fingerprint(HashedKey key, uint64_t* fq, uint64_t* fr) const {
  const uint64_t h = key.Derive(hash_seed_);
  *fq = (h >> r_bits_) & (num_quotients_ - 1);
  *fr = h & LowMask(r_bits_);
}

uint64_t Rsqf::SelectRunendAfter(uint64_t from, uint64_t k) const {
  // Position of the k-th (1-indexed) runend bit at position >= from.
  uint64_t w = from / 64;
  const uint64_t num_words = runends_.NumWords();
  uint64_t word = w < num_words
                      ? runends_.Word(w) & ~LowMask(static_cast<int>(from % 64))
                      : 0;
  while (w < num_words) {
    const uint64_t count = Popcount(word);
    if (count >= k) {
      return w * 64 + SelectInWord(word, static_cast<int>(k - 1));
    }
    k -= count;
    ++w;
    if (w < num_words) word = runends_.Word(w);
  }
  return kNone;
}

uint64_t Rsqf::RunEndUpTo(uint64_t q) const {
  const uint64_t b = q / kBlockSlots;
  const int i = static_cast<int>(q % kBlockSlots);
  const uint64_t occ_word = occupieds_.Word(b);
  const uint64_t d = Popcount(occ_word & LowMask(i + 1));
  const uint64_t offset = offsets_[b];
  if (d == 0) {
    if (offset == 0) return kNone;  // Every earlier run ends before 64b.
    return b * kBlockSlots + offset - 1;  // Last prior run's end.
  }
  // The d-th runend at or after the prior runs' spill boundary belongs to
  // the d-th occupied quotient of this block.
  return SelectRunendAfter(b * kBlockSlots + offset, d);
}

uint64_t Rsqf::RunEndOf(uint64_t q) const { return RunEndUpTo(q); }

bool Rsqf::Contains(HashedKey key) const {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  if (!occupieds_.Get(fq)) return false;
  uint64_t pos = RunEndOf(fq);
  while (true) {
    if (remainders_.Get(pos) == fr) return true;
    if (pos <= fq) break;  // A run never starts before its quotient.
    --pos;
    if (runends_.Get(pos)) break;  // Crossed into the previous run.
  }
  return false;
}

bool Rsqf::Insert(HashedKey key) {
  if (LoadFactor() >= kMaxLoadFactor) return false;
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  const bool was_occupied = occupieds_.Get(fq);

  const uint64_t e = RunEndUpTo(fq);
  uint64_t p = (e == kNone || e < fq) ? fq : e + 1;
  // First unused slot at or after p, jumping run by run.
  uint64_t u = p;
  while (true) {
    const uint64_t ru = RunEndUpTo(u);
    if (ru == kNone || ru < u) break;
    u = ru + 1;
    if (u + 1 >= total_slots_) return false;  // Slack exhausted.
  }
  // Shift remainders and runend bits in [p, u) one slot right.
  for (uint64_t j = u; j > p; --j) {
    remainders_.Set(j, remainders_.Get(j - 1));
    runends_.Assign(j, runends_.Get(j - 1));
  }
  remainders_.Set(p, fr);
  if (was_occupied) {
    // Append to the existing run: its old end (p - 1) is an end no more.
    runends_.Clear(p - 1);
    runends_.Set(p);
  } else {
    occupieds_.Set(fq);
    runends_.Set(p);
  }
  // Offsets of block boundaries in (fq, u+1] may have changed: the
  // inserted/extended run can spill across them and the shift moved every
  // runend in [p, u) one right. Boundaries at or before fq are provably
  // untouched (their controlling runend precedes p), so the recurrence
  // can rebuild the window from the block containing fq.
  RecomputeOffsets(fq / kBlockSlots + 1, (u + 1) / kBlockSlots);
  ++num_keys_;
  return true;
}

void Rsqf::RecomputeOffsets(uint64_t first_block, uint64_t last_block) {
  last_block = std::min<uint64_t>(last_block, offsets_.size() - 1);
  for (uint64_t b = std::max<uint64_t>(first_block, 1); b <= last_block;
       ++b) {
    const uint64_t prev_occ = Popcount(occupieds_.Word(b - 1));
    uint64_t last_runend;
    if (prev_occ == 0) {
      // Block b-1 added no runs; inherit the previous spill (if any).
      if (offsets_[b - 1] == 0) {
        offsets_[b] = 0;
        continue;
      }
      last_runend = (b - 1) * kBlockSlots + offsets_[b - 1] - 1;
    } else {
      last_runend = SelectRunendAfter(
          (b - 1) * kBlockSlots + offsets_[b - 1], prev_occ);
    }
    const uint64_t boundary = b * kBlockSlots;
    offsets_[b] = last_runend != kNone && last_runend + 1 > boundary
                      ? static_cast<uint16_t>(last_runend + 1 - boundary)
                      : 0;
  }
}

size_t Rsqf::SpaceBits() const {
  // 2 metadata bits + r remainder bits per slot, plus 16/64 bits of
  // offset per block: the "2.125-ish" accounting of the paper.
  return total_slots_ * (2 + r_bits_) + offsets_.size() * 16;
}

bool Rsqf::CheckInvariants() const {
  // The occupieds/runends bijection: equal cardinality, and the i-th
  // runend must sit at or after the i-th occupied quotient.
  if (occupieds_.CountOnes() != runends_.CountOnes()) {
    std::fprintf(stderr, "rsqf: %llu occupieds vs %llu runends\n",
                 static_cast<unsigned long long>(occupieds_.CountOnes()),
                 static_cast<unsigned long long>(runends_.CountOnes()));
    return false;
  }
  uint64_t runend_pos = 0;
  uint64_t seen = 0;
  for (uint64_t q = 0; q < num_quotients_; ++q) {
    if (!occupieds_.Get(q)) continue;
    ++seen;
    const uint64_t e = SelectRunendAfter(0, seen);
    if (e == kNone || e < q) {
      std::fprintf(stderr, "rsqf: runend %llu of quotient %llu before it\n",
                   static_cast<unsigned long long>(e),
                   static_cast<unsigned long long>(q));
      return false;
    }
    runend_pos = e;
  }
  (void)runend_pos;
  // Offsets must match a from-scratch recomputation.
  std::vector<uint16_t> saved = offsets_;
  const_cast<Rsqf*>(this)->RecomputeOffsets(1, offsets_.size() - 1);
  const bool match = saved == offsets_;
  if (!match) std::fprintf(stderr, "rsqf: stale offsets\n");
  return match;
}

bool Rsqf::SavePayload(std::ostream& os) const {
  WriteI32(os, q_bits_);
  WriteI32(os, r_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  occupieds_.Save(os);
  runends_.Save(os);
  remainders_.Save(os);
  for (uint16_t o : offsets_) WriteU64(os, o);
  return os.good();
}

bool Rsqf::LoadPayload(std::istream& is) {
  int32_t q;
  int32_t r;
  uint64_t seed;
  uint64_t n;
  if (!ReadI32(is, &q) || q < 1 || q > 38 || !ReadI32(is, &r) || r < 1 ||
      r > 64 || !ReadU64(is, &seed) || !ReadU64(is, &n)) {
    return false;
  }
  const uint64_t num_quotients = uint64_t{1} << q;
  const uint64_t total_slots = num_quotients + 2 * kBlockSlots;
  BitVector occupieds;
  BitVector runends;
  CompactVector remainders;
  if (!occupieds.Load(is) || occupieds.size() != total_slots ||
      !runends.Load(is) || runends.size() != total_slots ||
      !remainders.Load(is) || remainders.size() != total_slots ||
      remainders.width() != r) {
    return false;
  }
  std::vector<uint16_t> offsets(total_slots / kBlockSlots + 1);
  for (uint16_t& o : offsets) {
    uint64_t v;
    if (!ReadU64Capped(is, &v, 0xFFFF)) return false;
    o = static_cast<uint16_t>(v);
  }
  q_bits_ = q;
  r_bits_ = r;
  hash_seed_ = seed;
  num_keys_ = n;
  num_quotients_ = num_quotients;
  total_slots_ = total_slots;
  occupieds_ = std::move(occupieds);
  runends_ = std::move(runends);
  remainders_ = std::move(remainders);
  offsets_ = std::move(offsets);
  return true;
}

}  // namespace bbf
