#include "quotient/rsqf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/metrics_sink.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

RsqfTable::RsqfTable(int q_bits, int value_bits)
    : value_bits_(value_bits),
      num_quotients_(uint64_t{1} << q_bits),
      total_slots_((uint64_t{1} << q_bits) + 2 * kBlockSlots),
      occupieds_(total_slots_),
      runends_(total_slots_),
      values_(total_slots_, value_bits),
      offsets_(total_slots_ / kBlockSlots + 1, 0) {}

uint64_t RsqfTable::SelectRunendAfter(uint64_t from, uint64_t k) const {
  // Position of the k-th (1-indexed) runend bit at position >= from.
  uint64_t w = from / 64;
  const uint64_t num_words = runends_.NumWords();
  uint64_t word = w < num_words
                      ? runends_.Word(w) & ~LowMask(static_cast<int>(from % 64))
                      : 0;
  while (w < num_words) {
    const uint64_t count = Popcount(word);
    if (count >= k) {
      return w * 64 + SelectInWord(word, static_cast<int>(k - 1));
    }
    k -= count;
    ++w;
    if (w < num_words) word = runends_.Word(w);
  }
  return kNone;
}

uint64_t RsqfTable::RunEndUpTo(uint64_t q) const {
  const uint64_t b = q / kBlockSlots;
  const int i = static_cast<int>(q % kBlockSlots);
  const uint64_t occ_word = occupieds_.Word(b);
  const uint64_t d = Popcount(occ_word & LowMask(i + 1));
  const uint64_t offset = offsets_[b];
  if (d == 0) {
    if (offset == 0) return kNone;  // Every earlier run ends before 64b.
    return b * kBlockSlots + offset - 1;  // Last prior run's end.
  }
  // The d-th runend at or after the prior runs' spill boundary belongs to
  // the d-th occupied quotient of this block.
  return SelectRunendAfter(b * kBlockSlots + offset, d);
}

uint64_t RsqfTable::RunStart(uint64_t q) const {
  // A run starts right after the previous occupied quotient's runend, but
  // never before its own quotient slot.
  if (q == 0) return 0;
  const uint64_t prev = RunEndUpTo(q - 1);
  return (prev == kNone || prev < q) ? q : prev + 1;
}

bool RsqfTable::ContainsValue(uint64_t q, uint64_t value,
                              uint64_t* probed) const {
  if (!occupieds_.Get(q)) {
    if (probed != nullptr) *probed = 0;
    return false;
  }
  uint64_t pos = RunEndUpTo(q);
  uint64_t scanned = 0;
  bool hit = false;
  while (true) {
    ++scanned;
    if (values_.Get(pos) == value) {
      hit = true;
      break;
    }
    if (pos <= q) break;  // A run never starts before its quotient.
    --pos;
    if (runends_.Get(pos)) break;  // Crossed into the previous run.
  }
  if (probed != nullptr) *probed = scanned;
  return hit;
}

bool RsqfTable::InsertValue(uint64_t q, uint64_t value, bool sorted) {
  const bool was_occupied = occupieds_.Get(q);

  const uint64_t e = RunEndUpTo(q);
  uint64_t p = (e == kNone || e < q) ? q : e + 1;
  bool mid_run = false;
  if (sorted && was_occupied) {
    // Splice position: the first run slot holding a larger value (equal
    // values append after it, so duplicate inserts stay adjacent).
    for (uint64_t pos = RunStart(q); pos <= e; ++pos) {
      if (values_.Get(pos) > value) {
        p = pos;
        mid_run = true;
        break;
      }
    }
  }
  // First unused slot at or after p, jumping run by run.
  uint64_t u = p;
  while (true) {
    const uint64_t ru = RunEndUpTo(u);
    if (ru == kNone || ru < u) break;
    u = ru + 1;
    if (u + 1 >= total_slots_) return false;  // Slack exhausted.
  }
  // Shift values and runend bits in [p, u) one slot right.
  for (uint64_t j = u; j > p; --j) {
    values_.Set(j, values_.Get(j - 1));
    runends_.Assign(j, runends_.Get(j - 1));
  }
  values_.Set(p, value);
  if (!was_occupied) {
    occupieds_.Set(q);
    runends_.Set(p);
  } else if (!mid_run) {
    // Append to the existing run: its old end (p - 1) is an end no more.
    runends_.Clear(p - 1);
    runends_.Set(p);
  } else {
    // Mid-run splice: the shift carried the run's end bit (at e) to e+1
    // on its own. The spliced slot is interior — clear the stale copy the
    // shift left behind when p was the run end itself.
    runends_.Clear(p);
  }
  // Offsets of block boundaries in (q, u+1] may have changed: the
  // inserted/extended run can spill across them and the shift moved every
  // runend in [p, u) one right. Boundaries at or before q are provably
  // untouched (their controlling runend precedes p), so the recurrence
  // can rebuild the window from the block containing q.
  RecomputeOffsets(q / kBlockSlots + 1, (u + 1) / kBlockSlots);
  return true;
}

void RsqfTable::RecomputeOffsets(uint64_t first_block, uint64_t last_block) {
  last_block = std::min<uint64_t>(last_block, offsets_.size() - 1);
  for (uint64_t b = std::max<uint64_t>(first_block, 1); b <= last_block;
       ++b) {
    const uint64_t prev_occ = Popcount(occupieds_.Word(b - 1));
    uint64_t last_runend;
    if (prev_occ == 0) {
      // Block b-1 added no runs; inherit the previous spill (if any).
      if (offsets_[b - 1] == 0) {
        offsets_[b] = 0;
        continue;
      }
      last_runend = (b - 1) * kBlockSlots + offsets_[b - 1] - 1;
    } else {
      last_runend = SelectRunendAfter(
          (b - 1) * kBlockSlots + offsets_[b - 1], prev_occ);
    }
    const uint64_t boundary = b * kBlockSlots;
    offsets_[b] = last_runend != kNone && last_runend + 1 > boundary
                      ? static_cast<uint16_t>(last_runend + 1 - boundary)
                      : 0;
  }
}

bool RsqfTable::CheckInvariants() const {
  // The occupieds/runends bijection: equal cardinality, and the i-th
  // runend must sit at or after the i-th occupied quotient.
  if (occupieds_.CountOnes() != runends_.CountOnes()) {
    std::fprintf(stderr, "rsqf: %llu occupieds vs %llu runends\n",
                 static_cast<unsigned long long>(occupieds_.CountOnes()),
                 static_cast<unsigned long long>(runends_.CountOnes()));
    return false;
  }
  uint64_t runend_pos = 0;
  uint64_t seen = 0;
  for (uint64_t q = 0; q < num_quotients_; ++q) {
    if (!occupieds_.Get(q)) continue;
    ++seen;
    const uint64_t e = SelectRunendAfter(0, seen);
    if (e == kNone || e < q) {
      std::fprintf(stderr, "rsqf: runend %llu of quotient %llu before it\n",
                   static_cast<unsigned long long>(e),
                   static_cast<unsigned long long>(q));
      return false;
    }
    runend_pos = e;
  }
  (void)runend_pos;
  // Offsets must match a from-scratch recomputation.
  std::vector<uint16_t> saved = offsets_;
  const_cast<RsqfTable*>(this)->RecomputeOffsets(1, offsets_.size() - 1);
  const bool match = saved == offsets_;
  if (!match) std::fprintf(stderr, "rsqf: stale offsets\n");
  return match;
}

bool RsqfTable::SaveBody(std::ostream& os) const {
  occupieds_.Save(os);
  runends_.Save(os);
  values_.Save(os);
  for (uint16_t o : offsets_) WriteU64(os, o);
  return os.good();
}

bool RsqfTable::LoadBody(std::istream& is, int q_bits, int value_bits,
                         RsqfTable* out) {
  if (q_bits < 1 || q_bits > 38 || value_bits < 1 || value_bits > 64) {
    return false;
  }
  const uint64_t num_quotients = uint64_t{1} << q_bits;
  const uint64_t total_slots = num_quotients + 2 * kBlockSlots;
  BitVector occupieds;
  BitVector runends;
  CompactVector values;
  if (!occupieds.Load(is) || occupieds.size() != total_slots ||
      !runends.Load(is) || runends.size() != total_slots ||
      !values.Load(is) || values.size() != total_slots ||
      values.width() != value_bits) {
    return false;
  }
  std::vector<uint16_t> offsets(total_slots / kBlockSlots + 1);
  for (size_t b = 0; b < offsets.size(); ++b) {
    uint64_t v;
    if (!ReadU64Capped(is, &v, 0xFFFF)) return false;
    // An offset names the absolute slot b*64 + v - 1; a hostile value
    // pointing past the table would turn later lookups into OOB reads.
    if (v != 0 && b * kBlockSlots + v - 1 >= total_slots) return false;
    offsets[b] = static_cast<uint16_t>(v);
  }
  out->value_bits_ = value_bits;
  out->num_quotients_ = num_quotients;
  out->total_slots_ = total_slots;
  out->occupieds_ = std::move(occupieds);
  out->runends_ = std::move(runends);
  out->values_ = std::move(values);
  out->offsets_ = std::move(offsets);
  return true;
}

Rsqf::Rsqf(int q_bits, int r_bits, uint64_t hash_seed)
    : q_bits_(q_bits),
      r_bits_(r_bits),
      hash_seed_(hash_seed),
      num_quotients_(uint64_t{1} << q_bits),
      table_(q_bits, r_bits) {}

Rsqf Rsqf::ForCapacity(uint64_t n, double fpr) {
  const uint64_t slots =
      NextPow2(static_cast<uint64_t>(std::ceil(n / kMaxLoadFactor)));
  const int q = std::max(6, BitWidth(slots - 1));
  const double needed = -std::log2(fpr / kMaxLoadFactor);
  const int r = std::max(1, static_cast<int>(std::ceil(needed)));
  return Rsqf(q, r);
}

void Rsqf::Fingerprint(HashedKey key, uint64_t* fq, uint64_t* fr) const {
  const uint64_t h = key.Derive(hash_seed_);
  *fq = (h >> r_bits_) & (num_quotients_ - 1);
  *fr = h & LowMask(r_bits_);
}

bool Rsqf::Contains(HashedKey key) const {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  uint64_t probed;
  const bool hit = table_.ContainsValue(fq, fr, &probed);
  if (sink_ != nullptr) sink_->OnProbeLength(probed);
  return hit;
}

bool Rsqf::Insert(HashedKey key) {
  if (LoadFactor() >= kMaxLoadFactor) return false;
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  if (!table_.InsertValue(fq, fr, /*sorted=*/false)) return false;
  ++num_keys_;
  return true;
}

bool Rsqf::SavePayload(std::ostream& os) const {
  WriteI32(os, q_bits_);
  WriteI32(os, r_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  return table_.SaveBody(os);
}

bool Rsqf::LoadPayload(std::istream& is) {
  int32_t q;
  int32_t r;
  uint64_t seed;
  uint64_t n;
  if (!ReadI32(is, &q) || q < 1 || q > 38 || !ReadI32(is, &r) || r < 1 ||
      r > 64 || !ReadU64(is, &seed) || !ReadU64(is, &n)) {
    return false;
  }
  RsqfTable table(1, 1);
  if (!RsqfTable::LoadBody(is, q, r, &table)) return false;
  q_bits_ = q;
  r_bits_ = r;
  hash_seed_ = seed;
  num_keys_ = n;
  num_quotients_ = uint64_t{1} << q;
  table_ = std::move(table);
  return true;
}

}  // namespace bbf
