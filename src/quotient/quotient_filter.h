#ifndef BBF_QUOTIENT_QUOTIENT_FILTER_H_
#define BBF_QUOTIENT_QUOTIENT_FILTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/filter.h"
#include "quotient/quotient_table.h"

namespace bbf {

/// Quotient filter [Bender et al. 2012] (§2.1): a p-bit fingerprint is
/// split into a q-bit quotient (the slot index, stored implicitly) and an
/// r-bit remainder (stored explicitly); Robin-Hood hashing keeps runs of
/// same-quotient remainders sorted and contiguous. Uses the original
/// 3-metadata-bit scheme, i.e. n lg(1/eps) + 3n bits at full load.
///
/// Fully dynamic: inserts, deletes, and multiset semantics (duplicate
/// inserts are stored as duplicate remainders; Count reports them).
class QuotientFilter : public Filter {
 public:
  /// 2^q_bits slots, r_bits-bit remainders. FPR ~ load * 2^-r.
  QuotientFilter(int q_bits, int r_bits, uint64_t hash_seed = 0xBB);

  /// A filter sized for `n` keys at false-positive rate `fpr` (at the
  /// default max load factor).
  static QuotientFilter ForCapacity(uint64_t n, double fpr);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;
  using Filter::InsertMany;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Batch paths: fingerprint a tile of keys, prefetch each home slot's
  /// metadata/remainder words, then walk the runs.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override { return table_.SpaceBits(); }
  uint64_t NumKeys() const override { return num_keys_; }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "quotient"; }

  double LoadFactor() const override { return table_.LoadFactor(); }
  int q_bits() const { return table_.q_bits(); }
  int r_bits() const { return table_.r_bits(); }

  /// Splits the fingerprint of `key` into (quotient, remainder).
  void Fingerprint(HashedKey key, uint64_t* fq, uint64_t* fr) const;

  /// Inserts a raw (quotient, remainder) fingerprint. Exposed for the
  /// expandable variants, which remap fingerprints across doublings.
  bool InsertFingerprint(uint64_t fq, uint64_t fr);

  /// Visits every stored fingerprint as (quotient, remainder).
  void ForEachFingerprint(
      const std::function<void(uint64_t fq, uint64_t fr)>& fn) const;

  /// Read access to the physical table (tests, invariant checks).
  const QuotientTable& table() const { return table_; }

  /// Snapshot payload (framed by Filter::Save/Load). A failed load leaves
  /// the filter in its prior state.
  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

  static constexpr double kMaxLoadFactor = 0.94;

 private:
  friend class CountingQuotientFilter;
  friend class ExpandingQuotientFilter;

  // Contains body for a pre-split fingerprint; shared by Contains and
  // ContainsMany.
  bool ContainsFingerprint(uint64_t fq, uint64_t fr) const;

  QuotientTable table_;
  uint64_t hash_seed_;
  uint64_t num_keys_ = 0;
};

/// Counting quotient filter (§2.6): multiset counts embedded *inside* the
/// run as variable-length counters. We mark counter-digit slots with a
/// fourth metadata bit (tag) instead of the paper's 2.125-bit
/// rank-and-select encoding — see DESIGN.md §6.1. A key with count c uses
/// its remainder slot plus ceil(log_{2^r}(c)) digit slots, so hot keys in
/// a skewed multiset cost O(log c) slots instead of c slots.
class CountingQuotientFilter : public Filter {
 public:
  CountingQuotientFilter(int q_bits, int r_bits, uint64_t hash_seed = 0xBC);

  static CountingQuotientFilter ForCapacity(uint64_t n, double fpr);

  using Filter::Contains;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override { return Count(key) > 0; }
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override { return table_.SpaceBits(); }
  uint64_t NumKeys() const override { return num_keys_; }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "counting-quotient"; }

  double LoadFactor() const override { return table_.LoadFactor(); }
  uint64_t num_used_slots() const { return table_.num_used_slots(); }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  void Fingerprint(HashedKey key, uint64_t* fq, uint64_t* fr) const;
  // Locates the remainder slot for (fq, fr). Returns false if absent;
  // otherwise *pos is the slot and *run_start the head of the run.
  bool FindRemainderSlot(uint64_t fq, uint64_t fr, uint64_t* pos,
                         uint64_t* run_start) const;
  // Reads the counter digits after `pos`; returns the count (>= 1) and the
  // digit slot positions in *digits.
  uint64_t ReadCount(uint64_t pos, std::vector<uint64_t>* digits) const;
  void RemoveEntrySlot(uint64_t pos, uint64_t run_start, uint64_t fq);

  QuotientTable table_;
  uint64_t hash_seed_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_QUOTIENT_FILTER_H_
