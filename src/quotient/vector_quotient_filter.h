#ifndef BBF_QUOTIENT_VECTOR_QUOTIENT_FILTER_H_
#define BBF_QUOTIENT_VECTOR_QUOTIENT_FILTER_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "util/bit_vector.h"
#include "util/compact_vector.h"

namespace bbf {

/// Vector quotient filter [Pandey et al. 2021] (§2.1, footnote 1): the
/// table is split into cache-line-sized *blocks*, each a mini quotient
/// filter of many tiny buckets whose sizes are encoded in unary inside a
/// per-block metadata bit vector (~2.9 metadata bits/slot at our
/// geometry). Every key has two candidate blocks (power-of-two choices),
/// which keeps all blocks near-uniformly loaded and makes inserts two
/// cache lines in the worst case — the time/space sweet spot the VQF paper
/// targets.
///
/// Deletions are supported (remove a remainder from its mini bucket).
class VectorQuotientFilter : public Filter {
 public:
  /// Capacity for ~expected_keys at 90% load; r-bit remainders.
  VectorQuotientFilter(uint64_t expected_keys, int remainder_bits,
                       uint64_t hash_seed = 0xF6);

  using Filter::Contains;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  bool Erase(HashedKey key) override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return num_keys_; }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "vector-quotient"; }

  double LoadFactor() const override {
    return static_cast<double>(num_keys_) /
           (static_cast<double>(blocks_.size()) * kSlotsPerBlock);
  }

  static constexpr int kBucketsPerBlock = 40;
  static constexpr int kSlotsPerBlock = 48;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  struct Block {
    // Unary bucket-size encoding: kBucketsPerBlock ones (bucket markers),
    // one zero per occupied slot, placed after its bucket's marker.
    BitVector metadata;
    CompactVector remainders;  // Occupied slots, in bucket order.
    int used = 0;
  };

  struct Probe {
    uint64_t block;
    uint32_t bucket;
    uint64_t remainder;
  };

  Probe ProbeOf(HashedKey key, int which) const;
  // Slot range [begin, end) of `bucket` within `block`.
  void BucketRange(const Block& block, uint32_t bucket, int* begin,
                   int* end) const;
  bool BlockContains(const Block& block, uint32_t bucket,
                     uint64_t remainder) const;
  bool InsertIntoBlock(Block* block, uint32_t bucket, uint64_t remainder);
  bool EraseFromBlock(Block* block, uint32_t bucket, uint64_t remainder);

  int remainder_bits_;
  uint64_t hash_seed_;
  std::vector<Block> blocks_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_VECTOR_QUOTIENT_FILTER_H_
