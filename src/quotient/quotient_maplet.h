#ifndef BBF_QUOTIENT_QUOTIENT_MAPLET_H_
#define BBF_QUOTIENT_QUOTIENT_MAPLET_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/key.h"
#include "quotient/quotient_table.h"

namespace bbf {

/// Quotient-filter maplet (§2.4): each slot stores a small value alongside
/// the remainder. A positive lookup returns the target key's value plus,
/// with probability epsilon per colliding fingerprint, a few arbitrary
/// extras (expected positive result size 1 + eps); a negative lookup
/// returns eps extras in expectation. The application disambiguates — the
/// SplinterDB/Chucky/Mantis pattern.
///
/// Multiple inserts of the same key accumulate multiple values (Mantis
/// maps each k-mer to a *collection* of experiments this way).
class QuotientMaplet {
 public:
  QuotientMaplet(int q_bits, int r_bits, int value_bits,
                 uint64_t hash_seed = 0xBD);

  static QuotientMaplet ForCapacity(uint64_t n, double fpr, int value_bits);

  /// Associates `value` (low value_bits) with `key`.
  /// Returns false when full.
  bool Insert(HashedKey key, uint64_t value);
  bool Insert(uint64_t key, uint64_t value) {
    return Insert(HashedKey(key), value);
  }

  /// All values whose fingerprints match `key` (possibly empty).
  std::vector<uint64_t> Lookup(HashedKey key) const;
  std::vector<uint64_t> Lookup(uint64_t key) const {
    return Lookup(HashedKey(key));
  }

  bool Contains(HashedKey key) const { return !Lookup(key).empty(); }
  bool Contains(uint64_t key) const { return Contains(HashedKey(key)); }

  /// Removes one (key, value) association; value must match exactly.
  bool Erase(HashedKey key, uint64_t value);
  bool Erase(uint64_t key, uint64_t value) {
    return Erase(HashedKey(key), value);
  }

  /// Visits every stored entry as (quotient, remainder, value). Exposed
  /// for the expandable variant, which remaps fingerprints on doubling.
  void ForEachEntry(
      const std::function<void(uint64_t fq, uint64_t fr, uint64_t value)>&
          fn) const;

  /// Inserts a raw (quotient, remainder, value) triple (expansion path).
  bool InsertFingerprint(uint64_t fq, uint64_t fr, uint64_t value);

  size_t SpaceBits() const { return table_.SpaceBits(); }
  uint64_t NumEntries() const { return num_entries_; }
  double LoadFactor() const { return table_.LoadFactor(); }
  int value_bits() const { return table_.value_bits(); }

  /// Raw snapshot payload (framing is the caller's job; the Maplet
  /// adapters wrap these in checksummed frames).
  bool SavePayload(std::ostream& os) const;
  bool LoadPayload(std::istream& is);

 private:
  friend class ExpandingQuotientMaplet;

  void Fingerprint(HashedKey key, uint64_t* fq, uint64_t* fr) const;

  QuotientTable table_;
  uint64_t hash_seed_;
  uint64_t num_entries_ = 0;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_QUOTIENT_MAPLET_H_
