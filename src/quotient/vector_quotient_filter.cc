#include "quotient/vector_quotient_filter.h"

#include <algorithm>

#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

VectorQuotientFilter::VectorQuotientFilter(uint64_t expected_keys,
                                           int remainder_bits,
                                           uint64_t hash_seed)
    : remainder_bits_(remainder_bits), hash_seed_(hash_seed) {
  const uint64_t num_blocks = std::max<uint64_t>(
      2, (expected_keys + kSlotsPerBlock - 1) /
             static_cast<uint64_t>(kSlotsPerBlock * 0.9));
  blocks_.resize(num_blocks);
  for (Block& b : blocks_) {
    b.metadata.Resize(kBucketsPerBlock + kSlotsPerBlock);
    // All buckets empty: the first kBucketsPerBlock bits are the markers.
    for (int i = 0; i < kBucketsPerBlock; ++i) b.metadata.Set(i);
    b.remainders = CompactVector(kSlotsPerBlock, remainder_bits_);
  }
}

VectorQuotientFilter::Probe VectorQuotientFilter::ProbeOf(HashedKey key,
                                                          int which) const {
  const uint64_t h = key.Derive(hash_seed_ + which);
  Probe p;
  p.block = FastRange64(h, blocks_.size());
  p.bucket = static_cast<uint32_t>((h >> 32) % kBucketsPerBlock);
  p.remainder = key.Derive(hash_seed_ + 9) & LowMask(remainder_bits_);
  return p;
}

void VectorQuotientFilter::BucketRange(const Block& block, uint32_t bucket,
                                       int* begin, int* end) const {
  // Walk the small metadata vector counting markers (1s) and slots (0s).
  int ones = 0;
  int zeros = 0;
  int i = 0;
  const int total = kBucketsPerBlock + block.used;
  // Find the marker of `bucket`.
  while (ones <= static_cast<int>(bucket)) {
    if (block.metadata.Get(i)) {
      ++ones;
    } else {
      ++zeros;
    }
    ++i;
  }
  *begin = zeros;
  // Items of this bucket are the zeros before the next marker.
  while (i < total && !block.metadata.Get(i)) {
    ++zeros;
    ++i;
  }
  *end = zeros;
}

bool VectorQuotientFilter::BlockContains(const Block& block, uint32_t bucket,
                                         uint64_t remainder) const {
  int begin;
  int end;
  BucketRange(block, bucket, &begin, &end);
  for (int s = begin; s < end; ++s) {
    if (block.remainders.Get(s) == remainder) return true;
  }
  return false;
}

bool VectorQuotientFilter::InsertIntoBlock(Block* block, uint32_t bucket,
                                           uint64_t remainder) {
  if (block->used >= kSlotsPerBlock) return false;
  int begin;
  int end;
  BucketRange(*block, bucket, &begin, &end);
  // Metadata: insert a 0 right after this bucket's marker. The marker of
  // bucket b sits at bit position b + begin... more precisely at
  // (number of 1s up to it) + (zeros before) = bucket + begin.
  const int marker_pos = static_cast<int>(bucket) + begin;
  const int total = kBucketsPerBlock + block->used;
  for (int i = total; i > marker_pos + 1; --i) {
    block->metadata.Assign(i, block->metadata.Get(i - 1));
  }
  block->metadata.Clear(marker_pos + 1);
  // Remainders: shift right from slot `begin`.
  for (int s = block->used; s > begin; --s) {
    block->remainders.Set(s, block->remainders.Get(s - 1));
  }
  block->remainders.Set(begin, remainder);
  ++block->used;
  return true;
}

bool VectorQuotientFilter::EraseFromBlock(Block* block, uint32_t bucket,
                                          uint64_t remainder) {
  int begin;
  int end;
  BucketRange(*block, bucket, &begin, &end);
  int slot = -1;
  for (int s = begin; s < end; ++s) {
    if (block->remainders.Get(s) == remainder) {
      slot = s;
      break;
    }
  }
  if (slot < 0) return false;
  // Remove the zero after this bucket's marker (any zero of the bucket
  // works: sizes are what matters).
  const int zero_pos = static_cast<int>(bucket) + begin + 1;
  const int total = kBucketsPerBlock + block->used;
  for (int i = zero_pos; i < total - 1; ++i) {
    block->metadata.Assign(i, block->metadata.Get(i + 1));
  }
  block->metadata.Clear(total - 1);
  for (int s = slot; s < block->used - 1; ++s) {
    block->remainders.Set(s, block->remainders.Get(s + 1));
  }
  --block->used;
  return true;
}

bool VectorQuotientFilter::Insert(HashedKey key) {
  const Probe p1 = ProbeOf(key, 0);
  const Probe p2 = ProbeOf(key, 1);
  // Power of two choices: the emptier candidate block wins.
  Block& b1 = blocks_[p1.block];
  Block& b2 = blocks_[p2.block];
  const bool first = b1.used <= b2.used;
  if (InsertIntoBlock(first ? &b1 : &b2, first ? p1.bucket : p2.bucket,
                      p1.remainder) ||
      InsertIntoBlock(first ? &b2 : &b1, first ? p2.bucket : p1.bucket,
                      p1.remainder)) {
    ++num_keys_;
    return true;
  }
  return false;  // Both candidate blocks full: the filter is at capacity.
}

bool VectorQuotientFilter::Contains(HashedKey key) const {
  const Probe p1 = ProbeOf(key, 0);
  if (BlockContains(blocks_[p1.block], p1.bucket, p1.remainder)) return true;
  const Probe p2 = ProbeOf(key, 1);
  return BlockContains(blocks_[p2.block], p2.bucket, p1.remainder);
}

bool VectorQuotientFilter::Erase(HashedKey key) {
  const Probe p1 = ProbeOf(key, 0);
  if (EraseFromBlock(&blocks_[p1.block], p1.bucket, p1.remainder)) {
    --num_keys_;
    return true;
  }
  const Probe p2 = ProbeOf(key, 1);
  if (EraseFromBlock(&blocks_[p2.block], p2.bucket, p1.remainder)) {
    --num_keys_;
    return true;
  }
  return false;
}

size_t VectorQuotientFilter::SpaceBits() const {
  // Metadata (buckets + slots bits) + remainder storage per block.
  return blocks_.size() * (kBucketsPerBlock + kSlotsPerBlock +
                           kSlotsPerBlock * remainder_bits_);
}

bool VectorQuotientFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, remainder_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  WriteU64(os, blocks_.size());
  for (const Block& b : blocks_) {
    WriteI32(os, b.used);
    b.metadata.Save(os);
    b.remainders.Save(os);
  }
  return os.good();
}

bool VectorQuotientFilter::LoadPayload(std::istream& is) {
  int32_t r;
  uint64_t seed;
  uint64_t n;
  uint64_t num_blocks;
  if (!ReadI32(is, &r) || r < 1 || r > 64 || !ReadU64(is, &seed) ||
      !ReadU64(is, &n) ||
      !ReadU64Capped(is, &num_blocks,
                     kMaxSnapshotElements / kSlotsPerBlock) ||
      num_blocks < 2) {
    return false;
  }
  std::vector<Block> blocks(num_blocks);
  for (Block& b : blocks) {
    int32_t used;
    if (!ReadI32(is, &used) || used < 0 || used > kSlotsPerBlock ||
        !b.metadata.Load(is) ||
        b.metadata.size() !=
            static_cast<uint64_t>(kBucketsPerBlock + kSlotsPerBlock) ||
        !b.remainders.Load(is) ||
        b.remainders.size() != static_cast<uint64_t>(kSlotsPerBlock) ||
        b.remainders.width() != r) {
      return false;
    }
    b.used = used;
  }
  remainder_bits_ = r;
  hash_seed_ = seed;
  num_keys_ = n;
  blocks_ = std::move(blocks);
  return true;
}

}  // namespace bbf
