#include "quotient/quotient_maplet.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "quotient/quotient_filter.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

QuotientMaplet::QuotientMaplet(int q_bits, int r_bits, int value_bits,
                               uint64_t hash_seed)
    : table_(q_bits, r_bits, /*has_tag=*/false, value_bits),
      hash_seed_(hash_seed) {}

QuotientMaplet QuotientMaplet::ForCapacity(uint64_t n, double fpr,
                                           int value_bits) {
  uint64_t slots = NextPow2(static_cast<uint64_t>(
      std::ceil(n / QuotientFilter::kMaxLoadFactor)));
  const int q_bits = std::max(6, BitWidth(slots - 1));
  const double needed = -std::log2(fpr / QuotientFilter::kMaxLoadFactor);
  const int r_bits = std::max(1, static_cast<int>(std::ceil(needed)));
  return QuotientMaplet(q_bits, r_bits, value_bits);
}

void QuotientMaplet::Fingerprint(HashedKey key, uint64_t* fq,
                                 uint64_t* fr) const {
  const uint64_t h = key.Derive(hash_seed_);
  *fq = (h >> table_.r_bits()) & (table_.num_slots() - 1);
  *fr = h & LowMask(table_.r_bits());
}

bool QuotientMaplet::Insert(HashedKey key, uint64_t value) {
  if (table_.LoadFactor() >= QuotientFilter::kMaxLoadFactor) return false;
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  return InsertFingerprint(fq, fr, value);
}

bool QuotientMaplet::InsertFingerprint(uint64_t fq, uint64_t fr,
                                       uint64_t value) {
  if (table_.num_used_slots() + 1 >= table_.num_slots()) return false;
  if (table_.SlotEmpty(fq) && !table_.occupied(fq)) {
    table_.InsertSlotAt(fq, fq, fr, /*continuation=*/false, /*tag=*/false,
                        value);
    table_.set_occupied(fq, true);
    ++num_entries_;
    return true;
  }
  const bool was_occupied = table_.occupied(fq);
  table_.set_occupied(fq, true);
  const uint64_t start = table_.FindRunStart(fq);
  if (!was_occupied) {
    table_.InsertSlotAt(start, fq, fr, /*continuation=*/false, /*tag=*/false,
                        value);
    ++num_entries_;
    return true;
  }
  uint64_t s = start;
  do {
    if (table_.remainder(s) >= fr) break;
    s = table_.Next(s);
  } while (table_.continuation(s));
  if (s == start) {
    table_.set_continuation(start, true);
    table_.InsertSlotAt(s, fq, fr, /*continuation=*/false, /*tag=*/false,
                        value);
  } else {
    table_.InsertSlotAt(s, fq, fr, /*continuation=*/true, /*tag=*/false,
                        value);
  }
  ++num_entries_;
  return true;
}

void QuotientMaplet::ForEachEntry(
    const std::function<void(uint64_t, uint64_t, uint64_t)>& fn) const {
  table_.ForEachSlot([&](uint64_t q, uint64_t slot) {
    fn(q, table_.remainder(slot), table_.value(slot));
  });
}

std::vector<uint64_t> QuotientMaplet::Lookup(HashedKey key) const {
  std::vector<uint64_t> values;
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  if (!table_.occupied(fq)) return values;
  uint64_t s = table_.FindRunStart(fq);
  do {
    const uint64_t rem = table_.remainder(s);
    if (rem == fr) values.push_back(table_.value(s));
    if (rem > fr) break;
    s = table_.Next(s);
  } while (table_.continuation(s));
  return values;
}

bool QuotientMaplet::Erase(HashedKey key, uint64_t value) {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(key, &fq, &fr);
  if (!table_.occupied(fq)) return false;
  const uint64_t start = table_.FindRunStart(fq);
  uint64_t s = start;
  bool found = false;
  do {
    const uint64_t rem = table_.remainder(s);
    if (rem == fr && table_.value(s) == value) {
      found = true;
      break;
    }
    if (rem > fr) break;
    s = table_.Next(s);
  } while (table_.continuation(s));
  if (!found) return false;

  table_.RemoveEntry(s, start, fq);
  --num_entries_;
  return true;
}

bool QuotientMaplet::SavePayload(std::ostream& os) const {
  WriteU64(os, hash_seed_);
  WriteU64(os, num_entries_);
  table_.Save(os);
  return os.good();
}

bool QuotientMaplet::LoadPayload(std::istream& is) {
  uint64_t seed;
  uint64_t n;
  if (!ReadU64(is, &seed) || !ReadU64(is, &n)) return false;
  QuotientTable table;
  // A maplet table always carries values, never run-compaction tags.
  if (!table.Load(is) || table.value_bits() == 0 || table.has_tag()) {
    return false;
  }
  hash_seed_ = seed;
  num_entries_ = n;
  table_ = std::move(table);
  return true;
}

}  // namespace bbf
