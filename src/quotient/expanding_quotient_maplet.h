#ifndef BBF_QUOTIENT_EXPANDING_QUOTIENT_MAPLET_H_
#define BBF_QUOTIENT_EXPANDING_QUOTIENT_MAPLET_H_

#include <cstdint>
#include <vector>

#include "quotient/quotient_maplet.h"

namespace bbf {

/// An expandable maplet (§2.2 + §2.4): "as the data size grows, the maplet
/// must expand to map a greater number of keys and their storage
/// locations." Expansion uses the quotient filter's bit-sacrifice trick on
/// the fingerprints while values ride along untouched — no access to the
/// original keys, no I/O against the mapped data. The cost is one
/// fingerprint bit (2x FPR, i.e. 2x lookup noise) per doubling.
class ExpandingQuotientMaplet {
 public:
  ExpandingQuotientMaplet(int q_bits, int r_bits, int value_bits,
                          uint64_t hash_seed = 0xE9);

  /// Inserts; doubles the table first if full. Returns false only once
  /// fingerprints are exhausted.
  bool Insert(uint64_t key, uint64_t value);

  std::vector<uint64_t> Lookup(uint64_t key) const {
    return maplet_.Lookup(key);
  }
  bool Erase(uint64_t key, uint64_t value) {
    const bool ok = maplet_.Erase(key, value);
    return ok;
  }

  size_t SpaceBits() const { return maplet_.SpaceBits(); }
  uint64_t NumEntries() const { return maplet_.NumEntries(); }
  int expansions() const { return expansions_; }
  int r_bits() const { return maplet_.table_.r_bits(); }

 private:
  bool Expand();

  QuotientMaplet maplet_;
  uint64_t hash_seed_;
  int expansions_ = 0;
};

}  // namespace bbf

#endif  // BBF_QUOTIENT_EXPANDING_QUOTIENT_MAPLET_H_
