#include "maplet/maplet.h"

namespace bbf {
namespace {

class QuotientMapletAdapter : public Maplet {
 public:
  QuotientMapletAdapter(uint64_t capacity, double fpr, int value_bits)
      : impl_(QuotientMaplet::ForCapacity(capacity, fpr, value_bits)) {}

  bool Insert(HashedKey key, uint64_t value) override {
    return impl_.Insert(key, value);
  }
  std::vector<uint64_t> Lookup(HashedKey key) const override {
    return impl_.Lookup(key);
  }
  bool Erase(HashedKey key, uint64_t value) override {
    return impl_.Erase(key, value);
  }
  size_t SpaceBits() const override { return impl_.SpaceBits(); }
  std::string_view Name() const override { return "quotient-maplet"; }
  bool SavePayload(std::ostream& os) const override {
    return impl_.SavePayload(os);
  }
  bool LoadPayload(std::istream& is) override {
    return impl_.LoadPayload(is);
  }

 private:
  QuotientMaplet impl_;
};

class CuckooMapletAdapter : public Maplet {
 public:
  CuckooMapletAdapter(uint64_t capacity, int fingerprint_bits, int value_bits)
      : impl_(capacity, fingerprint_bits, value_bits) {}

  bool Insert(HashedKey key, uint64_t value) override {
    return impl_.Insert(key, value);
  }
  std::vector<uint64_t> Lookup(HashedKey key) const override {
    return impl_.Lookup(key);
  }
  bool Erase(HashedKey key, uint64_t value) override {
    return impl_.Erase(key, value);
  }
  size_t SpaceBits() const override { return impl_.SpaceBits(); }
  std::string_view Name() const override { return "cuckoo-maplet"; }
  bool SavePayload(std::ostream& os) const override {
    return impl_.SavePayload(os);
  }
  bool LoadPayload(std::istream& is) override {
    return impl_.LoadPayload(is);
  }

 private:
  CuckooMaplet impl_;
};

class BloomierMapletAdapter : public Maplet {
 public:
  BloomierMapletAdapter(
      const std::vector<std::pair<uint64_t, uint64_t>>& entries,
      int value_bits)
      : impl_(entries, value_bits) {}

  bool Insert(HashedKey, uint64_t) override { return false; }  // Static.
  std::vector<uint64_t> Lookup(HashedKey key) const override {
    return {impl_.Get(key)};  // PRS = NRS = 1 by construction.
  }
  bool Erase(HashedKey, uint64_t) override { return false; }
  size_t SpaceBits() const override { return impl_.SpaceBits(); }
  std::string_view Name() const override { return "bloomier"; }

 private:
  BloomierFilter impl_;
};

}  // namespace

std::unique_ptr<Maplet> MakeQuotientMaplet(uint64_t capacity, double fpr,
                                           int value_bits) {
  return std::make_unique<QuotientMapletAdapter>(capacity, fpr, value_bits);
}

std::unique_ptr<Maplet> MakeCuckooMaplet(uint64_t capacity,
                                         int fingerprint_bits,
                                         int value_bits) {
  return std::make_unique<CuckooMapletAdapter>(capacity, fingerprint_bits,
                                               value_bits);
}

std::unique_ptr<Maplet> MakeBloomierMaplet(
    const std::vector<std::pair<uint64_t, uint64_t>>& entries,
    int value_bits) {
  return std::make_unique<BloomierMapletAdapter>(entries, value_bits);
}

ResultSizes MeasureResultSizes(const Maplet& maplet,
                               const std::vector<uint64_t>& present,
                               const std::vector<uint64_t>& absent) {
  double prs = 0;
  for (uint64_t k : present) prs += maplet.Lookup(k).size();
  double nrs = 0;
  for (uint64_t k : absent) nrs += maplet.Lookup(k).size();
  return ResultSizes{present.empty() ? 0 : prs / present.size(),
                     absent.empty() ? 0 : nrs / absent.size()};
}

}  // namespace bbf
