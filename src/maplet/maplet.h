#ifndef BBF_MAPLET_MAPLET_H_
#define BBF_MAPLET_MAPLET_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/key.h"
#include "cuckoo/cuckoo_maplet.h"
#include "quotient/quotient_maplet.h"
#include "staticf/bloomier_filter.h"
#include "util/serialize.h"

namespace bbf {

/// The unified maplet API (§2.4): a key-value filter. Lookup returns the
/// target key's value plus possibly a few arbitrary extras (positive
/// result size, PRS) and may return arbitrary values for absent keys
/// (negative result size, NRS); the application deals with the noise.
class Maplet {
 public:
  virtual ~Maplet() = default;

  /// Associates a value with a key. Static maplets return false.
  /// The HashedKey overloads are the primitives; the uint64_t wrappers
  /// hash once at this boundary (mirroring Filter's hash-once pipeline).
  virtual bool Insert(HashedKey key, uint64_t value) = 0;
  bool Insert(uint64_t key, uint64_t value) {
    return Insert(HashedKey(key), value);
  }

  /// Candidate values for `key` (PRS entries for members, NRS for others).
  virtual std::vector<uint64_t> Lookup(HashedKey key) const = 0;
  std::vector<uint64_t> Lookup(uint64_t key) const {
    return Lookup(HashedKey(key));
  }

  /// Removes one association. Unsupported on static maplets.
  virtual bool Erase(HashedKey key, uint64_t value) = 0;
  bool Erase(uint64_t key, uint64_t value) {
    return Erase(HashedKey(key), value);
  }

  virtual size_t SpaceBits() const = 0;
  virtual std::string_view Name() const = 0;

  /// Snapshot support, mirroring Filter (DESIGN.md §8): the same framed
  /// format with Name() as the tag. Maplets without payload overrides
  /// (e.g. the static Bloomier build) report failure instead.
  virtual bool Save(std::ostream& os) const {
    std::ostringstream payload;
    if (!SavePayload(payload) || !payload.good()) return false;
    return WriteSnapshotFrame(os, Name(), std::move(payload).str());
  }
  virtual bool Load(std::istream& is) {
    std::string tag;
    std::string payload;
    if (!ReadSnapshotFrame(is, &tag, &payload)) return false;
    if (tag != Name()) return false;
    std::istringstream ps(payload);
    return LoadPayload(ps);
  }
  virtual bool SavePayload(std::ostream&) const { return false; }
  virtual bool LoadPayload(std::istream&) { return false; }
};

/// Adapters over the concrete maplets, for generic benchmarking (E8).
std::unique_ptr<Maplet> MakeQuotientMaplet(uint64_t capacity, double fpr,
                                           int value_bits);
std::unique_ptr<Maplet> MakeCuckooMaplet(uint64_t capacity,
                                         int fingerprint_bits,
                                         int value_bits);
/// Bloomier: static; built up-front from all entries, Insert/Erase fail.
std::unique_ptr<Maplet> MakeBloomierMaplet(
    const std::vector<std::pair<uint64_t, uint64_t>>& entries,
    int value_bits);

/// Measured expected positive / negative result sizes of a maplet.
struct ResultSizes {
  double prs;  // Mean Lookup size over present keys.
  double nrs;  // Mean Lookup size over absent keys.
};

ResultSizes MeasureResultSizes(const Maplet& maplet,
                               const std::vector<uint64_t>& present,
                               const std::vector<uint64_t>& absent);

}  // namespace bbf

#endif  // BBF_MAPLET_MAPLET_H_
