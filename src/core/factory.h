#ifndef BBF_CORE_FACTORY_H_
#define BBF_CORE_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/filter.h"

namespace bbf {

/// Creates a point filter by name, sized for `expected_keys` at roughly
/// `fpr` — the tutorial's "modern filter API" as a one-liner, and the
/// mechanism behind pluggable-filter configuration in the applications.
/// Backed by the self-registering registry (core/registry.h), which is
/// the single source of truth shared with snapshot tag dispatch.
///
/// Names: bloom, blocked-bloom, counting-bloom, dleft (alias of
/// dleft-counting), scalable-bloom, quotient, counting-quotient, rsqf,
/// vector-quotient, prefix, cuckoo, adaptive-cuckoo, adaptive-quotient,
/// taffy, chained-quotient, expanding-quotient, ring, memento (the
/// dynamic range filter's point surface).
///
/// Returns nullptr for unknown names. Static filters (xor/ribbon) need
/// the key set up front and therefore have no factory entry — construct
/// them directly (their tags are still loadable from snapshots).
std::unique_ptr<Filter> CreateFilter(std::string_view name,
                                     uint64_t expected_keys, double fpr);

/// Every name CreateFilter accepts, sorted.
std::vector<std::string_view> KnownFilterNames();

}  // namespace bbf

#endif  // BBF_CORE_FACTORY_H_
