#include "core/filter_io.h"

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/registry.h"
#include "core/sharded_filter.h"
#include "util/serialize.h"

namespace bbf {

bool SaveFilterSnapshot(const Filter& f, std::ostream& os) {
  return f.Save(os);
}

std::unique_ptr<Filter> CreateFilterForTag(std::string_view tag,
                                           uint64_t expected_keys) {
  // Snapshot tags and factory names share one registry; tag dispatch
  // additionally accepts the snapshot-only entries (static filters, whose
  // empty build stands in until Load replaces it).
  const FilterEntry* entry = FindFilterEntry(tag);
  if (entry == nullptr) return nullptr;
  return entry->make(expected_keys == 0 ? 1 : expected_keys, 0.01);
}

namespace {

std::unique_ptr<Filter> LoadShardedSnapshot(std::istream& is,
                                            std::istream::pos_type start,
                                            const std::string& directory) {
  // The outer payload is only the shard directory; pull the inner family
  // tag out of it so we can hand ShardedFilter a matching factory, then
  // replay the whole snapshot through its own Load (which re-verifies the
  // frame and quarantines corrupt shards).
  std::istringstream dir(directory);
  uint64_t version;
  uint64_t capacity;
  uint64_t tag_len;
  std::string inner_tag;
  if (!ReadU64(dir, &version) ||
      !ReadU64Capped(dir, &capacity, kMaxSnapshotElements) ||
      !ReadU64Capped(dir, &tag_len, kMaxSnapshotTagBytes) ||
      !ReadBytes(dir, &inner_tag, tag_len)) {
    return nullptr;
  }
  if (!CreateFilterForTag(inner_tag, capacity)) return nullptr;
  auto sharded = std::make_unique<ShardedFilter>(
      1, 1, [inner_tag](uint64_t shard_capacity) {
        return CreateFilterForTag(inner_tag, shard_capacity);
      });
  // Shards migrated away from the factory family carry their own
  // generation tags (v3 directory); resolve them through the registry so
  // heterogeneous snapshots reload instead of quarantining.
  sharded->SetSnapshotTagBuilder(
      [](std::string_view gen_tag, uint64_t shard_capacity) {
        return CreateFilterForTag(gen_tag, shard_capacity);
      });
  is.clear();
  if (!is.seekg(start)) return nullptr;
  if (!sharded->Load(is)) return nullptr;
  return sharded;
}

}  // namespace

std::unique_ptr<Filter> LoadFilterSnapshot(std::istream& is) {
  const std::istream::pos_type start = is.tellg();
  std::string tag;
  std::string payload;
  if (!ReadSnapshotFrame(is, &tag, &payload)) return nullptr;
  if (tag == "sharded") return LoadShardedSnapshot(is, start, payload);
  std::unique_ptr<Filter> filter = CreateFilterForTag(tag);
  if (!filter || filter->Name() != tag) return nullptr;
  std::istringstream ps(payload);
  if (!filter->LoadPayload(ps)) return nullptr;
  return filter;
}

}  // namespace bbf
