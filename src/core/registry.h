#ifndef BBF_CORE_REGISTRY_H_
#define BBF_CORE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/filter.h"

namespace bbf {

/// Builds an empty filter of one family, sized for `expected_keys` at
/// roughly `fpr`. Builders registered for snapshot-only tags (static
/// filters, spectral-bloom) may ignore `fpr`.
using FilterBuilder =
    std::function<std::unique_ptr<Filter>(uint64_t expected_keys, double fpr)>;

/// Relative cost of rebuilding a family from a key set (snapshot-drain-
/// replay migration, compaction-time rebuilds). Drives the Tuner's
/// decision table: under pressure it prefers the cheapest family that has
/// the capability it needs.
enum class BuildCostClass : uint8_t {
  kCheap,     // One pass of hash-and-set inserts (bloom variants).
  kModerate,  // Insert with displacement/shifting (cuckoo, quotient).
  kExpensive, // Needs auxiliary state per key (adaptive families) or a
              // global construction pass (xor/ribbon peeling).
};

/// Capability metadata for one family — what the registry knows about a
/// tag beyond how to build it. The declared bits are contract, verified
/// against behavior for every registered family in registry_test.
struct FilterCaps {
  /// Erase(key) removes a previously inserted key (counting/slot-moving
  /// families). False for plain bit-setting families, where Erase is a
  /// no-op returning false.
  bool supports_erase = false;
  /// The filter implements AdaptiveHook: ReportFalsePositive(key) can
  /// repair the slot so that exact false positive stops recurring.
  bool supports_adapt = false;
  /// Cost class for building a fresh instance from an enumerated key set.
  BuildCostClass build_cost = BuildCostClass::kModerate;
};

/// One row of the filter registry — the single source of truth consulted
/// by CreateFilter (factory construction), CreateFilterForTag (snapshot
/// tag dispatch), sharded snapshot recovery, and the Tuner's migration
/// decision table.
struct FilterEntry {
  /// The stable snapshot tag: must equal Name() of every filter `make`
  /// produces, because LoadFilterSnapshot routes frames by it.
  std::string_view tag;
  FilterBuilder make;
  /// Whether CreateFilter/KnownFilterNames expose this entry. Tags that
  /// need their key set up front (xor, ribbon) or a non-fpr parameter
  /// (spectral-bloom) are snapshot-only: loadable, not factory-built.
  bool in_factory = true;
  FilterCaps caps;
};

/// Registers a family under its stable Name() tag. Later registrations of
/// the same tag win, so tests can shadow a builtin. Thread-compatible:
/// registration is expected at static-init or test-setup time, not
/// concurrently with lookups.
void RegisterFilter(std::string_view tag, FilterBuilder make,
                    bool in_factory = true, FilterCaps caps = {});

/// Registers `alias` as an alternate factory-visible name for `tag`
/// ("dleft" builds the "dleft-counting" family). The alias participates
/// in CreateFilter and KnownFilterNames; snapshot frames always carry the
/// canonical tag.
void RegisterFilterAlias(std::string_view alias, std::string_view tag);

/// Looks up a name or alias. Returns nullptr when unknown.
const FilterEntry* FindFilterEntry(std::string_view name_or_alias);

/// Every canonical tag with a registered builder (no aliases), sorted.
std::vector<std::string_view> RegisteredFilterTags();

/// Every name CreateFilter accepts (factory-visible tags plus aliases),
/// sorted.
std::vector<std::string_view> FactoryFilterNames();

/// RAII registrar for namespace-scope self-registration:
///   static const FilterRegistrar kReg("mine", [](uint64_t n, double fpr) {
///     return std::make_unique<MyFilter>(n, fpr);
///   });
/// The builtin families register exactly this way inside registry.cc —
/// deliberately in the same translation unit as the registry storage, so
/// static-lib dead-stripping can never drop a builtin.
struct FilterRegistrar {
  FilterRegistrar(std::string_view tag, FilterBuilder make,
                  bool in_factory = true, FilterCaps caps = {}) {
    RegisterFilter(tag, std::move(make), in_factory, caps);
  }
  FilterRegistrar(std::string_view alias, std::string_view tag) {
    RegisterFilterAlias(alias, tag);
  }
};

}  // namespace bbf

#endif  // BBF_CORE_REGISTRY_H_
