#include "core/factory.h"

#include <cmath>

#include "adaptive/adaptive_quotient_filter.h"
#include "bloom/bloom_filter.h"
#include "bloom/counting_bloom.h"
#include "bloom/dleft_filter.h"
#include "bloom/scalable_bloom.h"
#include "cuckoo/adaptive_cuckoo_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "expandable/chained_filter.h"
#include "expandable/ring_filter.h"
#include "expandable/taffy_filter.h"
#include "quotient/expanding_quotient_filter.h"
#include "quotient/prefix_filter.h"
#include "quotient/quotient_filter.h"
#include "quotient/rsqf.h"
#include "quotient/vector_quotient_filter.h"
#include "util/bits.h"

namespace bbf {
namespace {

int FingerprintBitsFor(double fpr, double probes) {
  return std::max(2, static_cast<int>(std::ceil(std::log2(probes / fpr))));
}

double BloomBitsFor(double fpr) {
  return -std::log(fpr) / (0.6931 * 0.6931);
}

}  // namespace

std::unique_ptr<Filter> CreateFilter(std::string_view name,
                                     uint64_t expected_keys, double fpr) {
  const uint64_t n = expected_keys == 0 ? 1 : expected_keys;
  if (name == "bloom") {
    return std::make_unique<BloomFilter>(n, BloomBitsFor(fpr));
  }
  if (name == "blocked-bloom") {
    return std::make_unique<BlockedBloomFilter>(n, BloomBitsFor(fpr) + 2);
  }
  if (name == "counting-bloom") {
    return std::make_unique<CountingBloomFilter>(n, 4 * BloomBitsFor(fpr));
  }
  if (name == "dleft") {
    return std::make_unique<DleftCountingFilter>(
        n, 4, 8, FingerprintBitsFor(fpr, 8.0));
  }
  if (name == "scalable-bloom") {
    return std::make_unique<ScalableBloomFilter>(std::max<uint64_t>(n, 64),
                                                 fpr);
  }
  if (name == "quotient") {
    return std::make_unique<QuotientFilter>(
        QuotientFilter::ForCapacity(n, fpr));
  }
  if (name == "counting-quotient") {
    return std::make_unique<CountingQuotientFilter>(
        CountingQuotientFilter::ForCapacity(n, fpr));
  }
  if (name == "rsqf") {
    return std::make_unique<Rsqf>(Rsqf::ForCapacity(n, fpr));
  }
  if (name == "vector-quotient") {
    return std::make_unique<VectorQuotientFilter>(
        n, FingerprintBitsFor(fpr, 2.2));
  }
  if (name == "prefix") {
    return std::make_unique<PrefixFilter>(n, FingerprintBitsFor(fpr, 24.0));
  }
  if (name == "cuckoo") {
    return std::make_unique<CuckooFilter>(CuckooFilter::ForFpr(n, fpr));
  }
  if (name == "adaptive-cuckoo") {
    return std::make_unique<AdaptiveCuckooFilter>(
        n, FingerprintBitsFor(fpr, 8.0));
  }
  if (name == "adaptive-quotient") {
    return std::make_unique<AdaptiveQuotientFilter>(
        AdaptiveQuotientFilter::ForCapacity(n, fpr));
  }
  if (name == "taffy") {
    return std::make_unique<TaffyFilter>(
        10, FingerprintBitsFor(fpr, 1.0) + 4);
  }
  if (name == "chained-quotient") {
    return std::make_unique<ChainedQuotientFilter>(
        10, FingerprintBitsFor(fpr, 1.0) + 3);
  }
  if (name == "expanding-quotient") {
    return std::make_unique<ExpandingQuotientFilter>(
        10, FingerprintBitsFor(fpr, 1.0) + 4);
  }
  if (name == "ring") {
    return std::make_unique<RingFilter>(
        std::min(16, FingerprintBitsFor(fpr, 4.0)));
  }
  return nullptr;
}

std::vector<std::string_view> KnownFilterNames() {
  return {"bloom",          "blocked-bloom",   "counting-bloom",
          "dleft",          "scalable-bloom",  "quotient",
          "counting-quotient", "rsqf",         "vector-quotient",
          "prefix",         "cuckoo",          "adaptive-cuckoo",
          "adaptive-quotient", "taffy",        "chained-quotient",
          "expanding-quotient", "ring"};
}

}  // namespace bbf
