#include "core/factory.h"

#include "core/registry.h"

namespace bbf {

std::unique_ptr<Filter> CreateFilter(std::string_view name,
                                     uint64_t expected_keys, double fpr) {
  const FilterEntry* entry = FindFilterEntry(name);
  if (entry == nullptr || !entry->in_factory) return nullptr;
  return entry->make(expected_keys == 0 ? 1 : expected_keys, fpr);
}

std::vector<std::string_view> KnownFilterNames() {
  return FactoryFilterNames();
}

}  // namespace bbf
