#include "core/filter.h"

#include <algorithm>
#include <array>
#include <sstream>
#include <string>

#include "util/serialize.h"

namespace bbf {

namespace {

// Tile size for the uint64 -> HashedKey boundary conversion. Batches can
// be tens of millions of keys; a fixed stack tile keeps the wrappers
// allocation-free while still amortizing the virtual batch dispatch.
constexpr size_t kHashTile = 4096;

}  // namespace

void Filter::ContainsMany(std::span<const uint64_t> keys,
                          uint8_t* out) const {
  std::array<HashedKey, kHashTile> tile;
  for (size_t base = 0; base < keys.size(); base += kHashTile) {
    const size_t n = std::min(kHashTile, keys.size() - base);
    for (size_t i = 0; i < n; ++i) tile[i] = HashedKey(keys[base + i]);
    ContainsMany(std::span<const HashedKey>(tile.data(), n), out + base);
  }
}

size_t Filter::InsertMany(std::span<const uint64_t> keys) {
  std::array<HashedKey, kHashTile> tile;
  size_t inserted = 0;
  for (size_t base = 0; base < keys.size(); base += kHashTile) {
    const size_t n = std::min(kHashTile, keys.size() - base);
    for (size_t i = 0; i < n; ++i) tile[i] = HashedKey(keys[base + i]);
    inserted += InsertMany(std::span<const HashedKey>(tile.data(), n));
  }
  return inserted;
}

void Filter::ContainsMany(std::span<const HashedKey> keys,
                          uint8_t* out) const {
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i] = Contains(keys[i]) ? 1 : 0;
  }
}

size_t Filter::InsertMany(std::span<const HashedKey> keys) {
  size_t inserted = 0;
  for (HashedKey key : keys) inserted += Insert(key);
  return inserted;
}

bool Filter::Erase(HashedKey /*key*/) { return false; }

double Filter::LoadFactor() const { return 0.0; }

uint64_t Filter::Count(HashedKey key) const { return Contains(key) ? 1 : 0; }

bool Filter::Save(std::ostream& os) const {
  // Buffer the payload so the frame can carry its exact length and
  // checksum — the two fields the loader uses to detect torn writes.
  std::ostringstream payload;
  if (!SavePayload(payload) || !payload.good()) return false;
  return WriteSnapshotFrame(os, Name(), payload.str());
}

bool Filter::Load(std::istream& is) {
  std::string tag;
  std::string payload;
  if (!ReadSnapshotFrame(is, &tag, &payload)) return false;
  if (tag != Name()) return false;
  std::istringstream ps(payload);
  return LoadPayload(ps);
}

bool Filter::SavePayload(std::ostream& /*os*/) const { return false; }

bool Filter::LoadPayload(std::istream& /*is*/) { return false; }

}  // namespace bbf
