#include "core/filter.h"

#include <sstream>
#include <string>

#include "util/serialize.h"

namespace bbf {

void Filter::ContainsMany(std::span<const uint64_t> keys,
                          uint8_t* out) const {
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i] = Contains(keys[i]) ? 1 : 0;
  }
}

size_t Filter::InsertMany(std::span<const uint64_t> keys) {
  size_t inserted = 0;
  for (uint64_t key : keys) inserted += Insert(key);
  return inserted;
}

bool Filter::Erase(uint64_t /*key*/) { return false; }

double Filter::LoadFactor() const { return 0.0; }

uint64_t Filter::Count(uint64_t key) const { return Contains(key) ? 1 : 0; }

bool Filter::Save(std::ostream& os) const {
  // Buffer the payload so the frame can carry its exact length and
  // checksum — the two fields the loader uses to detect torn writes.
  std::ostringstream payload;
  if (!SavePayload(payload) || !payload.good()) return false;
  return WriteSnapshotFrame(os, Name(), payload.str());
}

bool Filter::Load(std::istream& is) {
  std::string tag;
  std::string payload;
  if (!ReadSnapshotFrame(is, &tag, &payload)) return false;
  if (tag != Name()) return false;
  std::istringstream ps(payload);
  return LoadPayload(ps);
}

bool Filter::SavePayload(std::ostream& /*os*/) const { return false; }

bool Filter::LoadPayload(std::istream& /*is*/) { return false; }

}  // namespace bbf
