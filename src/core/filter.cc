#include "core/filter.h"

namespace bbf {

void Filter::ContainsMany(std::span<const uint64_t> keys,
                          uint8_t* out) const {
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i] = Contains(keys[i]) ? 1 : 0;
  }
}

size_t Filter::InsertMany(std::span<const uint64_t> keys) {
  size_t inserted = 0;
  for (uint64_t key : keys) inserted += Insert(key);
  return inserted;
}

bool Filter::Erase(uint64_t /*key*/) { return false; }

uint64_t Filter::Count(uint64_t key) const { return Contains(key) ? 1 : 0; }

}  // namespace bbf
