#include "core/filter.h"

namespace bbf {

bool Filter::Erase(uint64_t /*key*/) { return false; }

uint64_t Filter::Count(uint64_t key) const { return Contains(key) ? 1 : 0; }

}  // namespace bbf
