#ifndef BBF_CORE_FPR_ESTIMATOR_H_
#define BBF_CORE_FPR_ESTIMATOR_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/key.h"

namespace bbf {

/// Live false-positive-rate estimator (§2, §2.3): tracks exact ground
/// truth for a deterministic 1-in-64 sample of the key space, so a
/// production filter can report its *observed* FPR next to the configured
/// epsilon without storing every key.
///
/// The sample domain is a function of the key alone — the low bits of
/// the canonical mix — so inserts and lookups agree on membership in the
/// domain, and the test costs one AND on the batched-insert hot path
/// (a fresh Derive per key measurably dents Bloom-speed inserts).
/// Families never consume raw mix bits (they use Derive streams, which
/// decorrelate from any fixed bit pattern of the mix), and the layers
/// that do slice value() directly — shard routing, batch grouping — use
/// the TOP bits, so the low-bit domain stays uncorrelated with both
/// filter placement and routing. For an in-domain lookup the estimator
/// knows the truth exactly: filter-positive on a key never recorded as
/// inserted is a false positive; filter-negative on a recorded key is a
/// false negative (the cardinal sin — exported so it can be alerted on,
/// expected to stay 0).
///
/// Lives in core (not obs) because ShardedFilter hosts one estimator per
/// shard when migration instrumentation is enabled; the obs layer's
/// FilterMetrics embeds the same class for whole-filter estimates.
///
/// Caveats (documented, deliberate): after a partial batch insert every
/// in-domain key of the batch is recorded as inserted, which removes any
/// rejected keys from the negative pool (conservative: never inflates the
/// FPR estimate). Erasing one copy of a multiply-inserted key removes its
/// ground truth, so erase-heavy multiset workloads can overcount FPs.
class ObservedFprEstimator {
 public:
  static constexpr uint64_t kDomainMask = 63;  // 1-in-64 sampling.

  /// Slots in the repeated-false-positive sketch. Each slot holds one
  /// candidate mix plus a saturating vote count (space-saving style:
  /// a colliding FP decrements; an empty slot is claimed). Adversarial
  /// repeat workloads hammer a handful of keys, so a small fixed table
  /// finds them; a benign FPR spread across the key space never keeps a
  /// slot's count high.
  static constexpr size_t kSketchSlots = 256;
  /// A slot count at or above this marks the key as an adversarial
  /// repeat (exported as `fp_repeated_keys`).
  static constexpr uint64_t kRepeatHot = 8;

  static bool InDomain(HashedKey key) {
    return (key.value() & kDomainMask) == 0;
  }

  /// Records an in-domain key as present. Call only for InDomain keys.
  void RecordInsert(HashedKey key);
  /// Bulk form for batch inserts: one lock and one reserve for the whole
  /// batch (per-key locking plus incremental rehash was the largest
  /// single instrumentation cost on the batched insert path).
  void RecordInserts(const std::vector<uint64_t>& mixed_values);
  /// Drops an in-domain key's ground truth after a successful erase.
  void RecordErase(HashedKey key);
  /// Scores an in-domain membership answer against ground truth.
  void RecordLookup(HashedKey key, bool filter_positive);

  /// Clears the lookup counters and the repeat sketch but keeps the
  /// ground-truth set: after an online migration the successor filter's
  /// FPR starts from a clean slate while insert history stays valid.
  void ResetObservations();

  struct Snapshot {
    uint64_t tracked_keys = 0;       // Current ground-truth set size.
    uint64_t negative_lookups = 0;   // In-domain lookups of absent keys.
    uint64_t false_positives = 0;    // Filter said yes on an absent key.
    uint64_t positive_lookups = 0;   // In-domain lookups of present keys.
    uint64_t false_negatives = 0;    // Filter said no on a present key.
    /// false_positives / negative_lookups; 0 when no negatives were seen.
    double observed_fpr = 0.0;
    /// 95% Wilson score interval on the FP proportion. Both 0 until a
    /// negative lookup lands. The Tuner acts on ci_low (FPR provably
    /// above budget) rather than the point estimate, so a handful of
    /// unlucky samples can't trigger a migration.
    double ci_low = 0.0;
    double ci_high = 0.0;
    /// Highest vote count in the repeat sketch — how often the single
    /// worst key has re-produced a false positive.
    uint64_t max_fp_repeats = 0;
    /// Sketch slots at or above kRepeatHot: distinct keys being replayed
    /// against the filter.
    uint64_t fp_repeated_keys = 0;
  };
  Snapshot Snap() const;

 private:
  struct SketchSlot {
    uint64_t mix = 0;
    uint64_t count = 0;
  };

  mutable std::mutex mu_;
  std::unordered_set<uint64_t> present_;  // value() of sampled inserts.
  uint64_t negative_lookups_ = 0;
  uint64_t false_positives_ = 0;
  uint64_t positive_lookups_ = 0;
  uint64_t false_negatives_ = 0;
  std::array<SketchSlot, kSketchSlots> sketch_{};
};

}  // namespace bbf

#endif  // BBF_CORE_FPR_ESTIMATOR_H_
