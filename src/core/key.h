#ifndef BBF_CORE_KEY_H_
#define BBF_CORE_KEY_H_

#include <cstdint>
#include <string_view>

#include "util/hash.h"

namespace bbf {

/// A key hashed exactly once at the API boundary (DESIGN.md §10).
///
/// The paper's modern filter API treats a key as "hashed once": every
/// downstream structure — shard router, quotient, fingerprint, probe
/// sequence — is a *view* of one canonical 64-bit mix. HashedKey is that
/// mix as a value type. It is produced from a raw `uint64_t` (via the
/// bijective Mix64 finalizer) or from a byte string (via HashBytes), and
/// from then on no layer touches the original key again.
///
/// Two disjoint ways to consume it:
///  - Routing layers (ShardedFilter, snapshot sharding) may slice the
///    canonical bits directly via value() — e.g. `value() % num_shards`.
///  - Families must derive their structural bits (bucket, quotient,
///    fingerprint, probe offsets) through Derive(stream), a seeded
///    single-multiply remix. Streams with different ids are independent,
///    and — crucially — independent of any bit-slice of value(), so shard
///    routing cannot bias a family's fingerprint distribution.
///
/// Constructors are explicit so a raw integer can never silently become a
/// HashedKey (or worse, a HashedKey be re-mixed as if it were raw).
class HashedKey {
 public:
  /// The canonical mix of a 64-bit key. Mix64 is bijective, so integer
  /// keys keep their exact-identity semantics (no added collisions).
  explicit HashedKey(uint64_t key) : h_(Mix64(key)) {}

  /// The canonical mix of a byte-string key: hashed to 64 bits here, at
  /// the boundary, and never re-read. kStringSeed domain-separates string
  /// keys from the integer-key mix.
  explicit HashedKey(std::string_view key)
      : h_(HashBytes(key, kStringSeed)) {}

  /// Wraps an already-canonical mix (a value() that was stored, shipped,
  /// or grouped earlier). Never pass a raw key here.
  static HashedKey FromMix(uint64_t mixed) { return HashedKey(mixed, 0); }

  /// Zero-valued placeholder so scratch buffers can be stack-allocated.
  HashedKey() : h_(0) {}

  /// The canonical 64-bit mix. Routing layers may slice this; families
  /// must use Derive instead.
  uint64_t value() const { return h_; }

  /// An independent 64-bit stream derived from the canonical mix: the
  /// stream id is spread into a 64-bit constant (golden-ratio odd
  /// multiple) and xored into the mix, then one widening multiply by a
  /// fixed strong odd constant, xor-folded (Mum). The stream constant
  /// must be XORED into the multiplicand, not used AS the multiplier:
  /// multipliers of related streams (kGolden*3 vs kGolden*5) are linearly
  /// related, which leaves their products — and the low bits families
  /// mask off — jointly biased. The xor perturbs the multiplicand
  /// nonlinearly with respect to the multiply, so distinct streams are
  /// pairwise independent — safe as Kirsch–Mitzenmacher h1/h2 pairs or
  /// per-generation seeds. The hash-quality test (hash_quality_test.cc)
  /// enforces avalanche, uniformity, and joint-stream independence on
  /// this exact pipeline.
  uint64_t Derive(uint64_t stream) const {
    return Mum(h_ ^ (kGolden * (2 * stream + 1)), kDeriveMul);
  }

  friend bool operator==(HashedKey a, HashedKey b) { return a.h_ == b.h_; }
  friend bool operator!=(HashedKey a, HashedKey b) { return a.h_ != b.h_; }

  /// Seed domain-separating string keys from integer keys.
  static constexpr uint64_t kStringSeed = 0x5ce7b10ca11ed0e5ULL;

 private:
  HashedKey(uint64_t mixed, int /*already_mixed*/) : h_(mixed) {}

  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  static constexpr uint64_t kDeriveMul = 0xe7037ed1a0b428dbULL;

  uint64_t h_;
};

}  // namespace bbf

#endif  // BBF_CORE_KEY_H_
