#ifndef BBF_CORE_FILTER_H_
#define BBF_CORE_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string_view>

#include "core/key.h"

namespace bbf {

class MetricsSink;

/// Taxonomy of §2 of the paper: static filters are built once from a known
/// key set; semi-dynamic filters support inserts but not deletes; dynamic
/// filters support both.
enum class FilterClass {
  kStatic,
  kSemiDynamic,
  kDynamic,
};

/// Structured insert result for serving layers (DESIGN.md §9). A bare
/// bool conflates "stored normally" with "stored, but the filter had to
/// degrade itself to take it" — callers driving admission control and
/// rebalancing need the distinction.
enum class InsertOutcome : uint8_t {
  kAccepted,      // Stored in the current structure, below saturation.
  kExpanded,      // Stored, but only by expanding or chaining a generation.
  kRejectedFull,  // Not stored; the key is NOT queryable. State unchanged.
};

/// True when the key was actually stored (and is therefore queryable).
constexpr bool Accepted(InsertOutcome outcome) {
  return outcome != InsertOutcome::kRejectedFull;
}

/// The "modern filter API" (§1, §1.1): a point-membership filter over
/// keys hashed exactly once at the boundary (DESIGN.md §10).
///
/// The primitive operations are the HashedKey virtuals: families consume
/// the canonical mix (via HashedKey::Derive streams) and never see — or
/// re-hash — the raw key. The `uint64_t` and `std::string_view` overloads
/// are thin non-virtual wrappers that perform the one canonical mix and
/// forward. Subclasses override the HashedKey virtuals and pull the
/// wrappers back into scope with `using Filter::Insert;` etc. (C++ name
/// hiding would otherwise shadow them).
///
/// Implementations return `false` from Insert when the structure is full
/// (fingerprint filters have a load-factor limit) and from Erase when
/// deletion is unsupported or the key's fingerprint is absent. Contains is
/// approximate in one direction only: no false negatives, false positives
/// with probability <= epsilon.
class Filter {
 public:
  virtual ~Filter() = default;

  // ----- Boundary wrappers: mix once, forward. Non-virtual on purpose.

  bool Insert(uint64_t key) { return Insert(HashedKey(key)); }
  bool Insert(std::string_view key) { return Insert(HashedKey(key)); }
  bool Contains(uint64_t key) const { return Contains(HashedKey(key)); }
  bool Contains(std::string_view key) const {
    return Contains(HashedKey(key));
  }
  bool Erase(uint64_t key) { return Erase(HashedKey(key)); }
  bool Erase(std::string_view key) { return Erase(HashedKey(key)); }
  uint64_t Count(uint64_t key) const { return Count(HashedKey(key)); }
  uint64_t Count(std::string_view key) const {
    return Count(HashedKey(key));
  }

  /// Batched wrappers: hash the whole tile once into a stack scratch
  /// buffer, then run the HashedKey batch primitive — so shard grouping
  /// and prefetch pipelines downstream reuse the same mixes.
  void ContainsMany(std::span<const uint64_t> keys, uint8_t* out) const;
  size_t InsertMany(std::span<const uint64_t> keys);

  // ----- Primitive virtuals (families implement these).

  /// Adds `key`. Returns false if the filter is full or insert-incapable.
  virtual bool Insert(HashedKey key) = 0;

  /// Membership query: always true for inserted keys; true with probability
  /// <= epsilon for others.
  virtual bool Contains(HashedKey key) const = 0;

  /// Batched membership: writes 0/1 to `out[i]` for each `keys[i]`,
  /// bit-for-bit identical to calling Contains in a loop. The base
  /// implementation is that loop; hot families override it with a
  /// prefetch-pipelined two-pass path (derive the whole batch, issue a
  /// software prefetch for every target cache line, then probe), which
  /// hides DRAM latency when the filter is larger than the LLC. Real
  /// deployments (LSM compaction, join pre-filters, k-mer lookup) query in
  /// batches, so this is the intended hot-path entry point.
  virtual void ContainsMany(std::span<const HashedKey> keys,
                            uint8_t* out) const;

  /// Batched insert: attempts every key in order and returns the number
  /// successfully inserted. Equivalent to summing Insert over the batch —
  /// including the full-filter failure path, where individual inserts
  /// return false but later keys are still attempted.
  virtual size_t InsertMany(std::span<const HashedKey> keys);

  /// Removes one occurrence of `key`. Only meaningful for dynamic filters;
  /// default implementation reports lack of support.
  virtual bool Erase(HashedKey key);

  /// Multiplicity query (counting filters, §2.6). Default: 0/1 membership.
  virtual uint64_t Count(HashedKey key) const;

  /// Occupied-structure size in bits, for bits/key accounting.
  virtual size_t SpaceBits() const = 0;

  /// Number of keys currently represented (with multiplicity).
  virtual uint64_t NumKeys() const = 0;

  /// Fraction of nominal capacity in use, the saturation signal behind
  /// the overload policies of DESIGN.md §9. Conventions: fixed-capacity
  /// families report keys / design capacity (>= 1.0 means Insert is at
  /// or past its reliable range); self-expanding families report the
  /// load of their *current* generation, which drops after each
  /// expansion; static filters report 1.0 — they are full by
  /// construction. The default, for wrappers with no meaningful bound,
  /// is 0.0 ("never saturates").
  virtual double LoadFactor() const;

  /// Static / semi-dynamic / dynamic, per the paper's taxonomy.
  virtual FilterClass Class() const = 0;

  /// Short human-readable name ("bloom", "quotient", ...). Doubles as the
  /// snapshot frame tag, so it must be stable across versions.
  virtual std::string_view Name() const = 0;

  /// Writes a crash-safe snapshot: a self-describing frame (magic, format
  /// version, Name() tag, payload length, checksum — DESIGN.md §8) around
  /// the class-specific payload. Returns false if this filter does not
  /// support snapshots or the stream failed.
  virtual bool Save(std::ostream& os) const;

  /// Reads and verifies a frame written by Save. Any defect — bad magic,
  /// wrong tag, truncation, bit flips, hostile length fields — returns
  /// false and leaves the filter in its prior, fully usable state. A true
  /// return restores the exact saved state (bit-for-bit Contains/Count
  /// behaviour).
  virtual bool Load(std::istream& is);

  /// Payload hooks behind Save/Load: raw member serialization without
  /// framing or integrity checks. LoadPayload reads from a checksum-
  /// verified buffer but must still validate all structural fields (it
  /// also runs on intact-but-foreign payloads) and must not modify *this
  /// on failure. Defaults report "snapshots unsupported".
  virtual bool SavePayload(std::ostream& os) const;
  virtual bool LoadPayload(std::istream& is);

  /// Bits per stored key at the current occupancy.
  double BitsPerKey() const {
    const uint64_t n = NumKeys();
    return n == 0 ? 0.0 : static_cast<double>(SpaceBits()) / n;
  }

  /// Attaches (or detaches, with nullptr) a structural-event listener
  /// (DESIGN.md §11). Families report kick chains, probe scans,
  /// expansions, and adapt repairs through it; a null sink — the default
  /// — costs one predictable branch per reporting site. Wrappers that own
  /// inner filters (ShardedFilter) override to propagate the sink; call
  /// before concurrent use, the pointer itself is unsynchronized.
  virtual void AttachMetricsSink(MetricsSink* sink) { sink_ = sink; }
  MetricsSink* metrics_sink() const { return sink_; }

 protected:
  /// Event listener for families to report through; null when
  /// uninstrumented.
  MetricsSink* sink_ = nullptr;
};

/// Extension point for adaptive filters (§2.3): the fronted dictionary
/// reports a confirmed false positive, and the filter restructures so the
/// same query cannot trigger it again.
class AdaptiveHook {
 public:
  virtual ~AdaptiveHook() = default;

  /// Boundary wrappers, mirroring Filter's: mix once and forward.
  bool ReportFalsePositive(uint64_t key) {
    return ReportFalsePositive(HashedKey(key));
  }
  bool ReportFalsePositive(std::string_view key) {
    return ReportFalsePositive(HashedKey(key));
  }

  /// Notifies the filter that `key` produced a false positive. Returns true
  /// if the filter adapted (subsequent Contains(key) will be false).
  virtual bool ReportFalsePositive(HashedKey key) = 0;
};

}  // namespace bbf

#endif  // BBF_CORE_FILTER_H_
