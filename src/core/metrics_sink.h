#ifndef BBF_CORE_METRICS_SINK_H_
#define BBF_CORE_METRICS_SINK_H_

#include <cstdint>

namespace bbf {

/// Structural-event listener for the observability layer (DESIGN.md §11).
///
/// Families report events a wrapper cannot observe from outside — cuckoo
/// kick-chain lengths, quotient run-scan lengths, native expansions,
/// adapt repairs — through the `sink_` pointer on Filter. The sink is
/// null by default, so an uninstrumented filter pays exactly one
/// predictable `if (sink_)` branch per reporting site and nothing else;
/// core never depends on the obs library.
///
/// Implementations must be thread-safe: sharded filters invoke family
/// code from many threads, each under its own shard lock, against one
/// shared sink. The obs implementation (obs/metrics.h) uses relaxed
/// atomics throughout.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;

  /// A cuckoo-style insert finished after displacing `kicks` residents
  /// (0 = placed directly). Called once per attempted placement,
  /// including stash landings and unwound failures (which report the
  /// full chain they walked).
  virtual void OnKickChain(uint64_t kicks) = 0;

  /// A quotient-style membership probe scanned `slots` run slots
  /// (0 = home slot unoccupied, answered without scanning). The Memento
  /// range filter reports one event per probed prefix — its run scans are
  /// the memento-list walks, so this histogram doubles as the
  /// memento-scan-length signal.
  virtual void OnProbeLength(uint64_t slots) = 0;

  /// The structure grew a generation: a chained shard generation, a
  /// scalable-bloom stage, a taffy/quotient doubling, a chained link.
  virtual void OnExpansion() = 0;

  /// A confirmed false positive was repaired (§2.3 adaptivity).
  virtual void OnAdapt() = 0;
};

}  // namespace bbf

#endif  // BBF_CORE_METRICS_SINK_H_
