#ifndef BBF_CORE_FILTER_IO_H_
#define BBF_CORE_FILTER_IO_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string_view>

#include "core/filter.h"

namespace bbf {

/// Writes `f`'s framed snapshot (DESIGN.md §8) to `os`. Thin veneer over
/// Filter::Save so callers pairing with LoadFilterSnapshot read
/// symmetrically.
bool SaveFilterSnapshot(const Filter& f, std::ostream& os);

/// An empty instance of the filter family whose frame tag is `tag`, sized
/// for roughly `expected_keys`. Covers every family with snapshot support
/// except "sharded" (which needs a shard factory — LoadFilterSnapshot
/// derives one from the snapshot's own directory). Returns nullptr for
/// unknown tags.
std::unique_ptr<Filter> CreateFilterForTag(std::string_view tag,
                                           uint64_t expected_keys = 1);

/// Reads one snapshot from `is`, instantiates the right filter family
/// from the frame's tag, loads it, and returns it — nullptr on any
/// corruption (bad magic, checksum mismatch, truncation, hostile lengths,
/// unknown tag). Sharded snapshots need a seekable stream (file or string
/// stream): the directory is parsed once to build the shard factory, then
/// the snapshot is re-read through ShardedFilter::Load.
std::unique_ptr<Filter> LoadFilterSnapshot(std::istream& is);

}  // namespace bbf

#endif  // BBF_CORE_FILTER_IO_H_
