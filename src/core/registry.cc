#include "core/registry.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "adaptive/adaptive_quotient_filter.h"
#include "bloom/bloom_filter.h"
#include "bloom/counting_bloom.h"
#include "bloom/dleft_filter.h"
#include "bloom/scalable_bloom.h"
#include "core/sizing.h"
#include "cuckoo/adaptive_cuckoo_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "expandable/chained_filter.h"
#include "expandable/ring_filter.h"
#include "expandable/taffy_filter.h"
#include "quotient/expanding_quotient_filter.h"
#include "quotient/prefix_filter.h"
#include "quotient/quotient_filter.h"
#include "quotient/rsqf.h"
#include "quotient/vector_quotient_filter.h"
#include "range/memento.h"
#include "staticf/ribbon_filter.h"
#include "staticf/xor_filter.h"

namespace bbf {
namespace {

struct AliasTarget {
  std::string tag;
};

struct Registry {
  // Transparent comparator so string_view lookups avoid a temporary.
  std::map<std::string, FilterEntry, std::less<>> entries;
  std::map<std::string, AliasTarget, std::less<>> aliases;
};

Registry& GlobalRegistry() {
  static Registry registry;
  return registry;
}

}  // namespace

void RegisterFilter(std::string_view tag, FilterBuilder make,
                    bool in_factory, FilterCaps caps) {
  Registry& r = GlobalRegistry();
  auto [it, inserted] = r.entries.insert_or_assign(
      std::string(tag), FilterEntry{{}, std::move(make), in_factory, caps});
  (void)inserted;
  it->second.tag = it->first;  // Point at the stable map-owned string.
}

void RegisterFilterAlias(std::string_view alias, std::string_view tag) {
  GlobalRegistry().aliases.insert_or_assign(std::string(alias),
                                            AliasTarget{std::string(tag)});
}

const FilterEntry* FindFilterEntry(std::string_view name_or_alias) {
  Registry& r = GlobalRegistry();
  auto it = r.entries.find(name_or_alias);
  if (it != r.entries.end()) return &it->second;
  auto alias = r.aliases.find(name_or_alias);
  if (alias == r.aliases.end()) return nullptr;
  it = r.entries.find(alias->second.tag);
  return it == r.entries.end() ? nullptr : &it->second;
}

std::vector<std::string_view> RegisteredFilterTags() {
  std::vector<std::string_view> tags;
  for (const auto& [tag, entry] : GlobalRegistry().entries) {
    tags.push_back(entry.tag);
  }
  return tags;  // std::map iteration is already sorted.
}

std::vector<std::string_view> FactoryFilterNames() {
  Registry& r = GlobalRegistry();
  std::vector<std::string_view> names;
  for (const auto& [tag, entry] : r.entries) {
    if (entry.in_factory) names.push_back(entry.tag);
  }
  for (const auto& [alias, target] : r.aliases) {
    auto it = r.entries.find(target.tag);
    if (it != r.entries.end() && it->second.in_factory) {
      names.push_back(alias);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

// ----- Builtin families. These registrars live in the registry's own
// translation unit on purpose: with per-subsystem static libraries, a
// registrar parked in a family's TU would be dead-stripped from any
// binary that only references the factory. Anything that links the
// registry gets every builtin.

namespace {

// Capability rows for the builtins (FilterCaps in registry.h). The
// declared bits are verified against behavior for every registered tag in
// registry_test, so a new family with a wrong row fails CI, not a
// migration.
constexpr FilterCaps kBitSet{false, false, BuildCostClass::kCheap};
constexpr FilterCaps kCountingCheap{true, false, BuildCostClass::kCheap};
constexpr FilterCaps kSlotted{true, false, BuildCostClass::kModerate};
constexpr FilterCaps kSlottedNoErase{false, false, BuildCostClass::kModerate};
constexpr FilterCaps kAdaptiveCaps{true, true, BuildCostClass::kExpensive};
constexpr FilterCaps kStaticBuild{false, false, BuildCostClass::kExpensive};

std::unique_ptr<Filter> MakeSharedBloom(uint64_t n, double fpr) {
  return std::make_unique<BloomFilter>(n, BloomBitsFor(fpr));
}

const FilterRegistrar kBloom("bloom", MakeSharedBloom,
                             /*in_factory=*/true, kBitSet);
const FilterRegistrar kBlockedBloom(
    "blocked-bloom", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<BlockedBloomFilter>(n, BloomBitsFor(fpr) + 2);
    },
    /*in_factory=*/true, kBitSet);
const FilterRegistrar kCountingBloom(
    "counting-bloom", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<CountingBloomFilter>(n, 4 * BloomBitsFor(fpr));
    },
    /*in_factory=*/true, kCountingCheap);
// Spectral's parameter is a bits-per-key budget, not an fpr target, so it
// is snapshot-only: the tag must load, but CreateFilter rejects it.
const FilterRegistrar kSpectralBloom(
    "spectral-bloom",
    [](uint64_t n, double /*fpr*/) -> std::unique_ptr<Filter> {
      return std::make_unique<SpectralBloomFilter>(n, 8.0);
    },
    // Spectral counts occurrences but exposes no Erase (count estimates
    // only decay via its own sketch semantics).
    /*in_factory=*/false, kBitSet);
const FilterRegistrar kDleft(
    "dleft-counting", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      // A lookup scans all d=4 subtables x 8 cells; at the ~75% design
      // load that is ~24 occupied candidates, each a 2^-f collision.
      return std::make_unique<DleftCountingFilter>(
          n, 4, 8, FingerprintBitsFor(fpr, 24.0));
    },
    /*in_factory=*/true, kSlotted);
// Historical factory name for the d-left family.
const FilterRegistrar kDleftAlias("dleft", std::string_view("dleft-counting"));
const FilterRegistrar kScalableBloom(
    "scalable-bloom", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<ScalableBloomFilter>(std::max<uint64_t>(n, 64),
                                                   fpr);
    },
    /*in_factory=*/true, kBitSet);
const FilterRegistrar kQuotient(
    "quotient", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<QuotientFilter>(
          QuotientFilter::ForCapacity(n, fpr));
    },
    /*in_factory=*/true, kSlotted);
const FilterRegistrar kCountingQuotient(
    "counting-quotient",
    [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<CountingQuotientFilter>(
          CountingQuotientFilter::ForCapacity(n, fpr));
    },
    /*in_factory=*/true, kSlotted);
const FilterRegistrar kRsqf(
    "rsqf", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<Rsqf>(Rsqf::ForCapacity(n, fpr));
    },
    /*in_factory=*/true, kSlottedNoErase);
// The dynamic range filter (DESIGN.md §16). Its point surface is a full
// Filter — online inserts on the RSQF substrate, expansion by doubling —
// so it rides the registry, factory, and snapshot dispatcher like any
// point family; the RangeFilter surface is reached through the same
// object (LSM adoption in apps/lsm/run.cc).
const FilterRegistrar kMemento(
    "memento", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<MementoFilter>(
          MementoFilter::ForCapacity(n, fpr));
    },
    /*in_factory=*/true, kSlottedNoErase);
const FilterRegistrar kVectorQuotient(
    "vector-quotient", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<VectorQuotientFilter>(
          n, FingerprintBitsFor(fpr, 2.2));
    },
    /*in_factory=*/true, kSlotted);
const FilterRegistrar kPrefix(
    "prefix", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<PrefixFilter>(n, FingerprintBitsFor(fpr, 24.0));
    },
    /*in_factory=*/true, kSlottedNoErase);
const FilterRegistrar kCuckoo(
    "cuckoo", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<CuckooFilter>(CuckooFilter::ForFpr(n, fpr));
    },
    /*in_factory=*/true, kSlotted);
const FilterRegistrar kAdaptiveCuckoo(
    "adaptive-cuckoo", [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<AdaptiveCuckooFilter>(
          n, FingerprintBitsFor(fpr, 8.0));
    },
    /*in_factory=*/true, kAdaptiveCaps);
const FilterRegistrar kAdaptiveQuotient(
    "adaptive-quotient",
    [](uint64_t n, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<AdaptiveQuotientFilter>(
          AdaptiveQuotientFilter::ForCapacity(n, fpr));
    },
    /*in_factory=*/true, kAdaptiveCaps);
const FilterRegistrar kTaffy(
    "taffy", [](uint64_t /*n*/, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<TaffyFilter>(10,
                                           FingerprintBitsFor(fpr, 1.0) + 4);
    },
    /*in_factory=*/true, kSlotted);
const FilterRegistrar kChainedQuotient(
    "chained-quotient",
    [](uint64_t /*n*/, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<ChainedQuotientFilter>(
          10, FingerprintBitsFor(fpr, 1.0) + 3);
    },
    /*in_factory=*/true, kSlotted);
const FilterRegistrar kExpandingQuotient(
    "expanding-quotient",
    [](uint64_t /*n*/, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<ExpandingQuotientFilter>(
          10, FingerprintBitsFor(fpr, 1.0) + 4);
    },
    /*in_factory=*/true, kSlotted);
const FilterRegistrar kRing(
    "ring", [](uint64_t /*n*/, double fpr) -> std::unique_ptr<Filter> {
      return std::make_unique<RingFilter>(
          std::min(16, FingerprintBitsFor(fpr, 4.0)));
    },
    /*in_factory=*/true, kSlotted);
// Static filters want the key set up front; an empty build stands in
// until LoadPayload replaces it — snapshot-only, like spectral.
const FilterRegistrar kXor(
    "xor", [](uint64_t /*n*/, double /*fpr*/) -> std::unique_ptr<Filter> {
      return std::make_unique<XorFilter>(std::vector<uint64_t>{}, 8);
    },
    /*in_factory=*/false, kStaticBuild);
const FilterRegistrar kRibbon(
    "ribbon", [](uint64_t /*n*/, double /*fpr*/) -> std::unique_ptr<Filter> {
      return std::make_unique<RibbonFilter>(std::vector<uint64_t>{}, 8);
    },
    /*in_factory=*/false, kStaticBuild);

}  // namespace

}  // namespace bbf
