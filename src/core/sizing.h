#ifndef BBF_CORE_SIZING_H_
#define BBF_CORE_SIZING_H_

#include <algorithm>
#include <cmath>
#include <numbers>

namespace bbf {

/// Sizing math shared by the factory, the families, and the benches —
/// previously duplicated (with a drifting ln2 approximation) across
/// factory.cc and the bloom family.

/// Fingerprint width for a fingerprint filter probing `probes`
/// slot-candidates per query: eps ~= probes / 2^f, so f = lg(probes/eps).
inline int FingerprintBitsFor(double fpr, double probes) {
  return std::max(2, static_cast<int>(std::ceil(std::log2(probes / fpr))));
}

/// Optimal Bloom bits per key for a target false-positive rate:
/// m/n = -ln(eps) / ln(2)^2 (§2 of the paper).
inline double BloomBitsFor(double fpr) {
  return -std::log(fpr) / (std::numbers::ln2 * std::numbers::ln2);
}

/// Optimal Bloom probe count for a bits-per-key budget: k = (m/n) ln 2.
inline int OptimalBloomHashes(double bits_per_key) {
  return std::max(1, static_cast<int>(std::round(bits_per_key *
                                                 std::numbers::ln2)));
}

}  // namespace bbf

#endif  // BBF_CORE_SIZING_H_
