#ifndef BBF_CORE_SHARDED_FILTER_H_
#define BBF_CORE_SHARDED_FILTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/filter.h"

namespace bbf {

/// What a shard does once its newest generation crosses the load
/// threshold (DESIGN.md §9). The paper's §2.2 expansion strategies,
/// recast as serving policies.
enum class SaturationPolicy : uint8_t {
  /// Stop admitting: Insert reports kRejectedFull, state is untouched.
  /// For callers that would rather shed load than degrade FPR.
  kReject,
  /// Scalable-Bloom-style chaining: mount a fresh generation behind the
  /// saturated one and insert there. Queries probe every generation, so
  /// each extra generation adds one probe and one generation's FPR —
  /// max_generations is the FPR/latency budget.
  kChain,
  /// Lean on the family's native expansion (taffy, scalable-bloom,
  /// expanding-quotient, chained-quotient): keep inserting into the same
  /// filter and let it restructure itself. Rejects only once the family
  /// itself is exhausted.
  kExpandInPlace,
};

/// Per-shard degradation knobs for ShardedFilter.
struct SaturationConfig {
  SaturationPolicy policy = SaturationPolicy::kChain;
  /// Newest-generation LoadFactor at which the policy engages. Below the
  /// family's own hard limit so degradation is deliberate, not forced.
  double load_threshold = 0.85;
  /// Capacity multiplier for each chained generation (kChain only).
  double growth = 2.0;
  /// Hard cap on generations per shard (kChain only). Total shard FPR is
  /// bounded by max_generations * per-generation FPR.
  int max_generations = 4;

  /// Generations affordable under a total FPR budget when every chained
  /// generation is built at `per_generation_fpr` (the additive union
  /// bound on the chain's false-positive probability).
  static int GenerationsForFprBudget(double per_generation_fpr,
                                     double fpr_budget);
};

/// Thread scaling (§1, feature 6): a hash-sharded wrapper that turns any
/// dynamic filter into a concurrent one. Keys partition across S
/// independent shards by high hash bits; each shard is guarded by its own
/// reader-writer lock, so queries proceed fully in parallel and inserts
/// contend only within a shard — the standard recipe behind concurrent
/// CQF deployments.
///
/// Overload behaviour: each shard is a chain of generations (usually one).
/// When the newest generation crosses the configured load threshold the
/// shard degrades per SaturationConfig instead of silently returning
/// false; InsertWithStatus reports which path each key took, and Stats()
/// exposes per-shard occupancy so callers can rebalance hot shards.
class ShardedFilter : public Filter {
 public:
  using ShardFactory =
      std::function<std::unique_ptr<Filter>(uint64_t shard_capacity)>;

  /// `num_shards` should be a power of two near the expected thread count;
  /// `factory` builds one shard sized for `expected_keys / num_shards`.
  /// Default saturation policy is kChain — the filter keeps serving past
  /// capacity at a bounded FPR cost.
  ShardedFilter(uint64_t expected_keys, int num_shards, ShardFactory factory);
  ShardedFilter(uint64_t expected_keys, int num_shards, ShardFactory factory,
                const SaturationConfig& config);

  /// Structured insert: kAccepted below the threshold, kExpanded when the
  /// key was only admitted by chaining/expanding a generation,
  /// kRejectedFull when the policy refused it (key NOT queryable).
  InsertOutcome InsertWithStatus(HashedKey key);
  InsertOutcome InsertWithStatus(uint64_t key) {
    return InsertWithStatus(HashedKey(key));
  }
  InsertOutcome InsertWithStatus(std::string_view key) {
    return InsertWithStatus(HashedKey(key));
  }

  /// Batched structured insert — the serving-layer twin of InsertMany
  /// (DESIGN.md §14): writes InsertWithStatus's outcome for keys[i] to
  /// out[i], equivalent to calling InsertWithStatus in order. Keys are
  /// grouped by shard first so each shard lock is taken once per batch
  /// (not once per key); within a shard the per-key policy path runs so
  /// every outcome is exact — a network server acks precisely the keys
  /// that are queryable, which the count-only InsertMany cannot promise
  /// when a family refuses keys mid-batch.
  void InsertManyWithStatus(std::span<const HashedKey> keys,
                            InsertOutcome* out);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;
  using Filter::InsertMany;

  /// Accepted(InsertWithStatus(key)) — kept for the Filter contract.
  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Batch paths group pre-hashed keys by shard first, so a batch of B
  /// keys is hashed exactly once (by the Filter wrappers), takes each
  /// shard lock at most once (~num_shards acquisitions instead of B) and
  /// hands every shard one contiguous sub-batch — which flows into the
  /// shard filter's own prefetch-pipelined batch path. Sub-batches that
  /// fit under the load threshold go straight to the newest generation's
  /// InsertMany; near saturation the per-key policy path takes over.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override;
  /// Load of the hottest shard's newest generation — the binding
  /// constraint for admission.
  double LoadFactor() const override;
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "sharded"; }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const SaturationConfig& saturation_config() const { return config_; }

  /// Propagates the sink to every live generation (under each shard's
  /// exclusive lock) and to generations created later by chaining or
  /// quarantine rebuilds, so family-level events (kick chains, probe
  /// scans) from all shards land in one metrics block. Chaining a
  /// generation additionally reports MetricsSink::OnExpansion.
  void AttachMetricsSink(MetricsSink* sink) override;

  /// Point-in-time occupancy and outcome counters for one shard. Counters
  /// reset on Load (snapshots persist structure, not serving history).
  struct ShardStats {
    uint64_t num_keys = 0;
    double load_factor = 0.0;  // Newest generation.
    size_t generations = 1;
    uint64_t accepted = 0;   // Inserts stored below the threshold.
    uint64_t expanded = 0;   // Inserts that needed expansion/chaining.
    uint64_t rejected = 0;   // Inserts refused (kRejectedFull).
    bool saturated = false;  // At threshold with no expansion headroom.
  };

  /// One entry per shard, each read under that shard's lock.
  std::vector<ShardStats> Stats() const;
  /// Index of the shard holding the most keys — the rebalancing target.
  size_t HottestShard() const;
  /// Total inserts refused across all shards since construction/Load.
  uint64_t TotalRejected() const;

  /// What happened to each shard during LoadWithReport.
  struct LoadReport {
    size_t total_shards = 0;
    size_t healthy_shards = 0;
    std::vector<size_t> quarantined;  // Shard indices rebuilt empty.
    bool AllHealthy() const { return quarantined.empty(); }
  };

  /// Snapshot layout (v2): one outer frame holding only the shard
  /// directory (layout version, shard count, inner filter tag, per-shard
  /// generation counts, per-generation blob lengths), followed by every
  /// generation's own independent frame, shard-major. Because every
  /// generation frame carries its own checksum, one corrupt blob doesn't
  /// poison the rest. Safe to call concurrently with inserts/queries:
  /// each shard is serialized under its reader lock (the snapshot is a
  /// per-shard-consistent cut, not a global point in time).
  bool Save(std::ostream& os) const override;

  /// Loads a snapshot written by Save. A shard with any corrupt or
  /// truncated generation frame is *quarantined*: it is rebuilt empty via
  /// the shard factory and listed in the report, while every healthy
  /// shard loads normally. Returns false only when the directory frame
  /// itself is unusable (the filter is left untouched in that case). Not
  /// thread-safe; callers must quiesce concurrent readers first.
  bool LoadWithReport(std::istream& is, LoadReport* report);
  bool Load(std::istream& is) override;

  /// Shards quarantined across every LoadWithReport on this object —
  /// monotone (unlike per-call LoadReport), so the obs layer can export
  /// it as a counter.
  uint64_t TotalQuarantinedShards() const { return shards_quarantined_total_; }

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    // Generations, oldest first; inserts target back(). Never empty.
    std::vector<std::unique_ptr<Filter>> gens;
    uint64_t newest_capacity;  // Capacity back() was built with.
    uint64_t next_capacity;    // Capacity for the next chained generation.
    uint64_t accepted = 0;
    uint64_t expanded = 0;
    uint64_t rejected = 0;
  };

  size_t ShardOf(HashedKey key) const;
  // The policy-driven insert path; requires shard.mutex held exclusively.
  InsertOutcome InsertIntoShardLocked(Shard& shard, HashedKey key);
  // Chains a fresh generation onto `shard` (kChain). Requires the lock.
  Filter& AddGenerationLocked(Shard& shard);
  std::unique_ptr<Shard> MakeShard() const;

  // Flat counting sort of pre-hashed `keys` by shard: on return,
  // sorted[start[s]..start[s+1]) holds shard s's keys in batch order and
  // src[p] is the batch position sorted[p] came from (for scattering
  // results back). All outputs are caller-provided flat arrays of
  // keys.size() entries (start: shards+1) — no per-shard vectors, no
  // allocation. The shard id is computed once per key and reused for the
  // scatter.
  void GroupByShard(std::span<const HashedKey> keys, HashedKey* sorted,
                    size_t* src, size_t* start) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  ShardFactory factory_;          // Kept for chaining + quarantine rebuilds.
  uint64_t per_shard_capacity_;   // Capacity each shard was built with.
  SaturationConfig config_;
  uint64_t shards_quarantined_total_ = 0;  // Not reset by Load.
};

}  // namespace bbf

#endif  // BBF_CORE_SHARDED_FILTER_H_
