#ifndef BBF_CORE_SHARDED_FILTER_H_
#define BBF_CORE_SHARDED_FILTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/filter.h"

namespace bbf {

/// Thread scaling (§1, feature 6): a hash-sharded wrapper that turns any
/// dynamic filter into a concurrent one. Keys partition across S
/// independent shards by high hash bits; each shard is guarded by its own
/// reader-writer lock, so queries proceed fully in parallel and inserts
/// contend only within a shard — the standard recipe behind concurrent
/// CQF deployments.
class ShardedFilter : public Filter {
 public:
  using ShardFactory =
      std::function<std::unique_ptr<Filter>(uint64_t shard_capacity)>;

  /// `num_shards` should be a power of two near the expected thread count;
  /// `factory` builds one shard sized for `expected_keys / num_shards`.
  ShardedFilter(uint64_t expected_keys, int num_shards, ShardFactory factory);

  bool Insert(uint64_t key) override;
  bool Contains(uint64_t key) const override;
  /// Batch paths group keys by shard first, so a batch of B keys takes
  /// each shard lock at most once (~num_shards acquisitions instead of B)
  /// and hands every shard one contiguous sub-batch — which flows into the
  /// shard filter's own prefetch-pipelined batch path.
  void ContainsMany(std::span<const uint64_t> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const uint64_t> keys) override;
  bool Erase(uint64_t key) override;
  uint64_t Count(uint64_t key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override;
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "sharded"; }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// What happened to each shard during LoadWithReport.
  struct LoadReport {
    size_t total_shards = 0;
    size_t healthy_shards = 0;
    std::vector<size_t> quarantined;  // Shard indices rebuilt empty.
    bool AllHealthy() const { return quarantined.empty(); }
  };

  /// Snapshot layout: one outer frame holding only the shard directory
  /// (shard count, inner filter tag, per-shard blob lengths), followed by
  /// each shard's own independent frame. Because every shard frame carries
  /// its own checksum, one corrupt shard doesn't poison the rest.
  bool Save(std::ostream& os) const override;

  /// Loads a snapshot written by Save. A shard whose frame is corrupt or
  /// truncated is *quarantined*: it is rebuilt empty via the shard factory
  /// and listed in the report, while every healthy shard loads normally.
  /// Returns false only when the directory frame itself is unusable (the
  /// filter is left untouched in that case). Not thread-safe; callers
  /// must quiesce concurrent readers first.
  bool LoadWithReport(std::istream& is, LoadReport* report);
  bool Load(std::istream& is) override;

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unique_ptr<Filter> filter;
  };

  size_t ShardOf(uint64_t key) const;

  // Counting-sorts `keys` by shard. On return, group[s] holds the keys of
  // shard s in batch order and index[s][j] is the batch position of
  // group[s][j] (for scattering results back).
  void GroupByShard(std::span<const uint64_t> keys,
                    std::vector<std::vector<uint64_t>>* group,
                    std::vector<std::vector<size_t>>* index) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  ShardFactory factory_;          // Kept for quarantine rebuilds.
  uint64_t per_shard_capacity_;   // Capacity each shard was built with.
};

}  // namespace bbf

#endif  // BBF_CORE_SHARDED_FILTER_H_
