#ifndef BBF_CORE_SHARDED_FILTER_H_
#define BBF_CORE_SHARDED_FILTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/filter.h"
#include "core/fpr_estimator.h"

namespace bbf {

/// One acked mutation in a shard's migration journal. Filters cannot
/// enumerate their keys, so online migration (snapshot-drain-replay,
/// DESIGN.md §15) rebuilds a successor by replaying the journal;
/// HashedKey::FromMix(mix) reconstitutes the exact key the families saw.
struct FilterJournalOp {
  uint64_t mix = 0;
  uint8_t erase = 0;  // 0 = insert, 1 = erase.
};

/// What a shard does once its newest generation crosses the load
/// threshold (DESIGN.md §9). The paper's §2.2 expansion strategies,
/// recast as serving policies.
enum class SaturationPolicy : uint8_t {
  /// Stop admitting: Insert reports kRejectedFull, state is untouched.
  /// For callers that would rather shed load than degrade FPR.
  kReject,
  /// Scalable-Bloom-style chaining: mount a fresh generation behind the
  /// saturated one and insert there. Queries probe every generation, so
  /// each extra generation adds one probe and one generation's FPR —
  /// max_generations is the FPR/latency budget.
  kChain,
  /// Lean on the family's native expansion (taffy, scalable-bloom,
  /// expanding-quotient, chained-quotient): keep inserting into the same
  /// filter and let it restructure itself. Rejects only once the family
  /// itself is exhausted.
  kExpandInPlace,
};

/// Per-shard degradation knobs for ShardedFilter.
struct SaturationConfig {
  SaturationPolicy policy = SaturationPolicy::kChain;
  /// Newest-generation LoadFactor at which the policy engages. Below the
  /// family's own hard limit so degradation is deliberate, not forced.
  double load_threshold = 0.85;
  /// Capacity multiplier for each chained generation (kChain only).
  double growth = 2.0;
  /// Hard cap on generations per shard (kChain only). Total shard FPR is
  /// bounded by max_generations * per-generation FPR.
  int max_generations = 4;

  /// Generations affordable under a total FPR budget when every chained
  /// generation is built at `per_generation_fpr` (the additive union
  /// bound on the chain's false-positive probability).
  static int GenerationsForFprBudget(double per_generation_fpr,
                                     double fpr_budget);
};

/// Thread scaling (§1, feature 6): a hash-sharded wrapper that turns any
/// dynamic filter into a concurrent one. Keys partition across S
/// independent shards by high hash bits; each shard is guarded by its own
/// reader-writer lock, so queries proceed fully in parallel and inserts
/// contend only within a shard — the standard recipe behind concurrent
/// CQF deployments.
///
/// Overload behaviour: each shard is a chain of generations (usually one).
/// When the newest generation crosses the configured load threshold the
/// shard degrades per SaturationConfig instead of silently returning
/// false; InsertWithStatus reports which path each key took, and Stats()
/// exposes per-shard occupancy so callers can rebalance hot shards.
class ShardedFilter : public Filter {
 public:
  using ShardFactory =
      std::function<std::unique_ptr<Filter>(uint64_t shard_capacity)>;

  /// `num_shards` should be a power of two near the expected thread count;
  /// `factory` builds one shard sized for `expected_keys / num_shards`.
  /// Default saturation policy is kChain — the filter keeps serving past
  /// capacity at a bounded FPR cost.
  ShardedFilter(uint64_t expected_keys, int num_shards, ShardFactory factory);
  ShardedFilter(uint64_t expected_keys, int num_shards, ShardFactory factory,
                const SaturationConfig& config);

  /// Structured insert: kAccepted below the threshold, kExpanded when the
  /// key was only admitted by chaining/expanding a generation,
  /// kRejectedFull when the policy refused it (key NOT queryable).
  InsertOutcome InsertWithStatus(HashedKey key);
  InsertOutcome InsertWithStatus(uint64_t key) {
    return InsertWithStatus(HashedKey(key));
  }
  InsertOutcome InsertWithStatus(std::string_view key) {
    return InsertWithStatus(HashedKey(key));
  }

  /// Batched structured insert — the serving-layer twin of InsertMany
  /// (DESIGN.md §14): writes InsertWithStatus's outcome for keys[i] to
  /// out[i], equivalent to calling InsertWithStatus in order. Keys are
  /// grouped by shard first so each shard lock is taken once per batch
  /// (not once per key); within a shard the per-key policy path runs so
  /// every outcome is exact — a network server acks precisely the keys
  /// that are queryable, which the count-only InsertMany cannot promise
  /// when a family refuses keys mid-batch.
  void InsertManyWithStatus(std::span<const HashedKey> keys,
                            InsertOutcome* out);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;
  using Filter::InsertMany;

  /// Accepted(InsertWithStatus(key)) — kept for the Filter contract.
  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Batch paths group pre-hashed keys by shard first, so a batch of B
  /// keys is hashed exactly once (by the Filter wrappers), takes each
  /// shard lock at most once (~num_shards acquisitions instead of B) and
  /// hands every shard one contiguous sub-batch — which flows into the
  /// shard filter's own prefetch-pipelined batch path. Sub-batches that
  /// fit under the load threshold go straight to the newest generation's
  /// InsertMany; near saturation the per-key policy path takes over.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override;
  /// Load of the hottest shard's newest generation — the binding
  /// constraint for admission.
  double LoadFactor() const override;
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "sharded"; }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const SaturationConfig& saturation_config() const { return config_; }

  /// Propagates the sink to every live generation (under each shard's
  /// exclusive lock) and to generations created later by chaining or
  /// quarantine rebuilds, so family-level events (kick chains, probe
  /// scans) from all shards land in one metrics block. Chaining a
  /// generation additionally reports MetricsSink::OnExpansion.
  void AttachMetricsSink(MetricsSink* sink) override;

  /// Point-in-time occupancy and outcome counters for one shard. Counters
  /// reset on Load (snapshots persist structure, not serving history).
  struct ShardStats {
    uint64_t num_keys = 0;
    double load_factor = 0.0;  // Newest generation.
    size_t generations = 1;
    uint64_t accepted = 0;   // Inserts stored below the threshold.
    uint64_t expanded = 0;   // Inserts that needed expansion/chaining.
    uint64_t rejected = 0;   // Inserts refused (kRejectedFull).
    bool saturated = false;  // At threshold with no expansion headroom.
    /// Newest generation's family tag — shards diverge after migration.
    std::string family;
    uint64_t migrations = 0;  // Completed online migrations of this shard.
    /// Observed-FPR column (EnableMigration with track_shard_fpr):
    /// negative = shard not instrumented. The per-shard twin of
    /// HottestShard() — triage by FPR, not just by load.
    double observed_fpr = -1.0;
    double fpr_ci_low = 0.0;   // 95% Wilson bounds on observed_fpr.
    double fpr_ci_high = 0.0;
    uint64_t fpr_negative_lookups = 0;
    uint64_t fpr_repeated_keys = 0;  // Adversarial-repeat sketch hits.
  };

  /// One entry per shard, each read under that shard's lock.
  std::vector<ShardStats> Stats() const;
  /// Index of the shard holding the most keys — the rebalancing target.
  size_t HottestShard() const;
  /// Total inserts refused across all shards since construction/Load.
  uint64_t TotalRejected() const;

  // --- Online migration (DESIGN.md §15) -------------------------------------

  /// Knobs for the migratable-shard seam.
  struct MigrationConfig {
    /// Writes that may land during one successor build before the
    /// migration aborts — bounds both the replay backlog and the final
    /// locked drain.
    size_t replay_cap = size_t{1} << 16;
    /// Unlocked catch-up rounds draining the replay backlog before the
    /// final locked drain-and-swap.
    int max_catchup_rounds = 8;
    /// Attach a per-shard ObservedFprEstimator so Stats() grows the
    /// observed-FPR column and WorstFprShard works.
    bool track_shard_fpr = true;
    /// Hard cap on one shard's journal; past it the journal is marked
    /// broken and that shard refuses migration (serving is unaffected).
    size_t journal_cap = size_t{1} << 22;
  };

  /// Arms the migration seam: every shard starts journaling acked
  /// inserts/erases so a successor filter can be rebuilt online. Must be
  /// called while the filter is empty (the journal cannot reconstruct
  /// history it never saw) — returns false otherwise. Loading a snapshot
  /// disarms journaling for the loaded shards (snapshots persist
  /// structure, not op history); re-enable only on an empty filter.
  bool EnableMigration(const MigrationConfig& config);
  bool EnableMigration() { return EnableMigration(MigrationConfig{}); }
  bool migration_enabled() const { return migration_enabled_; }
  const MigrationConfig& migration_config() const {
    return migration_config_;
  }

  /// What happened during one MigrateShard call.
  struct MigrationReport {
    bool ok = false;
    uint64_t snapshot_ops = 0;  // Journal ops replayed in the build phase.
    uint64_t replayed_ops = 0;  // Ops drained in catch-up + final drain.
    uint64_t pause_ns = 0;      // Exclusive-lock hold for drain-and-swap.
    std::string to_family;      // Name() of the successor filter.
    std::string error;          // Empty iff ok.
  };

  /// Builds a successor filter already containing the journal snapshot.
  /// `ops` is the journal prefix captured at migration start; `capacity`
  /// is a sizing hint (live keys with headroom). Returning nullptr aborts
  /// the migration. The default builder constructs via a ShardFactory and
  /// replays the ops; the Tuner's stacked builder constructs a
  /// learned/stacked front from the ops instead.
  using SuccessorBuilder = std::function<std::unique_ptr<Filter>(
      std::span<const FilterJournalOp> ops, uint64_t capacity)>;

  /// Online snapshot-drain-replay migration of one shard (DESIGN.md §15):
  ///   A. under the shard lock, snapshot the journal (a cheap copy) —
  ///      serving continues immediately;
  ///   B. unlocked, build the successor from the snapshot while writes
  ///      keep landing in the old generations *and* the journal;
  ///   C. drain the journal tail in bounded unlocked rounds, then take
  ///      the lock once for the final drain and the atomic swap — the
  ///      only pause serving ever sees, reported as pause_ns.
  /// On any failure (successor refuses a replay op, backlog exceeds
  /// replay_cap) the old generations are untouched and every acked key
  /// is still served: migration is abort-safe by construction.
  /// `successor_factory` becomes the shard's factory afterwards, so
  /// chained generations and quarantine rebuilds stay in the new family.
  MigrationReport MigrateShard(size_t shard, ShardFactory successor_factory);
  MigrationReport MigrateShard(size_t shard, SuccessorBuilder build,
                               ShardFactory successor_factory);

  /// Completed migrations across all shards.
  uint64_t TotalMigrations() const;

  /// Sentinel for "no shard qualified".
  static constexpr size_t kNoShard = ~size_t{0};

  /// Index of the instrumented shard with the highest observed FPR among
  /// those with at least `min_negative_lookups` scored negatives;
  /// kNoShard when none qualify. The FPR twin of HottestShard().
  size_t WorstFprShard(uint64_t min_negative_lookups = 256) const;

  /// What happened to each shard during LoadWithReport.
  struct LoadReport {
    size_t total_shards = 0;
    size_t healthy_shards = 0;
    std::vector<size_t> quarantined;  // Shard indices rebuilt empty.
    bool AllHealthy() const { return quarantined.empty(); }
  };

  /// Snapshot layout (v3): one outer frame holding only the shard
  /// directory (layout version, per-shard capacity, the factory family's
  /// tag, shard count, then per shard its capacities and per-generation
  /// (tag, blob length) pairs), followed by every generation's own
  /// independent frame, shard-major. Per-generation tags because shards
  /// diverge by family after migration. Because every generation frame
  /// carries its own checksum, one corrupt blob doesn't poison the rest.
  /// Safe to call concurrently with inserts/queries: each shard is
  /// serialized under its reader lock (the snapshot is a per-shard-
  /// consistent cut, not a global point in time).
  bool Save(std::ostream& os) const override;

  /// Builds an empty filter for a foreign generation tag found in a
  /// snapshot — shards migrated away from the factory family need one.
  /// Installed by the factory/tuning layer (registry-backed); core stays
  /// registry-free. Without a builder, foreign-tag shards quarantine.
  using TagBuilder = std::function<std::unique_ptr<Filter>(
      std::string_view tag, uint64_t capacity)>;
  void SetSnapshotTagBuilder(TagBuilder builder) {
    tag_builder_ = std::move(builder);
  }

  /// Loads a snapshot written by Save. A shard with any corrupt or
  /// truncated generation frame is *quarantined*: it is rebuilt empty via
  /// the shard factory and listed in the report, while every healthy
  /// shard loads normally. Returns false only when the directory frame
  /// itself is unusable (the filter is left untouched in that case). Not
  /// thread-safe; callers must quiesce concurrent readers first.
  bool LoadWithReport(std::istream& is, LoadReport* report);
  bool Load(std::istream& is) override;

  /// Shards quarantined across every LoadWithReport on this object —
  /// monotone (unlike per-call LoadReport), so the obs layer can export
  /// it as a counter.
  uint64_t TotalQuarantinedShards() const { return shards_quarantined_total_; }

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    // Generations, oldest first; inserts target back(). Never empty.
    std::vector<std::unique_ptr<Filter>> gens;
    uint64_t newest_capacity;  // Capacity back() was built with.
    uint64_t next_capacity;    // Capacity for the next chained generation.
    uint64_t accepted = 0;
    uint64_t expanded = 0;
    uint64_t rejected = 0;
    // Migration seam. The journal records every acked mutation since the
    // shard was last empty; valid only when that invariant holds.
    std::vector<FilterJournalOp> journal;
    bool journal_valid = false;
    bool journal_broken = false;  // Overflowed journal_cap; stays serving.
    bool migrating = false;       // One migration per shard at a time.
    uint64_t migrations = 0;
    // Post-migration family factory; empty -> the filter-level factory_.
    ShardFactory factory;
    // Per-shard FPR estimator (track_shard_fpr); null when disabled.
    std::unique_ptr<ObservedFprEstimator> fpr;
  };

  size_t ShardOf(HashedKey key) const;
  // The policy-driven insert path; requires shard.mutex held exclusively.
  InsertOutcome InsertIntoShardLocked(Shard& shard, HashedKey key);
  // InsertIntoShardLocked without the journal/estimator bookkeeping.
  InsertOutcome InsertPolicyLocked(Shard& shard, HashedKey key);
  // Chains a fresh generation onto `shard` (kChain). Requires the lock.
  Filter& AddGenerationLocked(Shard& shard);
  std::unique_ptr<Shard> MakeShard() const;
  // The factory chained generations of `shard` build from.
  const ShardFactory& FactoryFor(const Shard& shard) const {
    return shard.factory ? shard.factory : factory_;
  }
  // Rewrites the journal to the net multiset of live ops. Requires the
  // shard lock; called after a successful swap so journal length tracks
  // live keys, not op history.
  static void CompactJournalLocked(Shard& shard);

  // Flat counting sort of pre-hashed `keys` by shard: on return,
  // sorted[start[s]..start[s+1]) holds shard s's keys in batch order and
  // src[p] is the batch position sorted[p] came from (for scattering
  // results back). All outputs are caller-provided flat arrays of
  // keys.size() entries (start: shards+1) — no per-shard vectors, no
  // allocation. The shard id is computed once per key and reused for the
  // scatter.
  void GroupByShard(std::span<const HashedKey> keys, HashedKey* sorted,
                    size_t* src, size_t* start) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  ShardFactory factory_;          // Kept for chaining + quarantine rebuilds.
  uint64_t per_shard_capacity_;   // Capacity each shard was built with.
  SaturationConfig config_;
  uint64_t shards_quarantined_total_ = 0;  // Not reset by Load.
  bool migration_enabled_ = false;
  MigrationConfig migration_config_;
  TagBuilder tag_builder_;
};

}  // namespace bbf

#endif  // BBF_CORE_SHARDED_FILTER_H_
