#include "core/sharded_filter.h"

#include <mutex>

#include "util/hash.h"

namespace bbf {

ShardedFilter::ShardedFilter(uint64_t expected_keys, int num_shards,
                             ShardFactory factory) {
  shards_.reserve(num_shards);
  const uint64_t per_shard =
      expected_keys / num_shards + expected_keys / (num_shards * 4) + 16;
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->filter = factory(per_shard);
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedFilter::ShardOf(uint64_t key) const {
  // Shard selection uses hash bits disjoint from what the shard filters
  // consume (they re-hash with their own seeds anyway).
  return static_cast<size_t>(Hash64(key, 0x5A4D) % shards_.size());
}

bool ShardedFilter::Insert(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  return shard.filter->Insert(key);
}

bool ShardedFilter::Contains(uint64_t key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  return shard.filter->Contains(key);
}

void ShardedFilter::GroupByShard(
    std::span<const uint64_t> keys,
    std::vector<std::vector<uint64_t>>* group,
    std::vector<std::vector<size_t>>* index) const {
  group->assign(shards_.size(), {});
  index->assign(shards_.size(), {});
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t s = ShardOf(keys[i]);
    (*group)[s].push_back(keys[i]);
    (*index)[s].push_back(i);
  }
}

void ShardedFilter::ContainsMany(std::span<const uint64_t> keys,
                                 uint8_t* out) const {
  // Grouping costs per-batch allocations and a gather/scatter; it pays
  // only when each shard receives a sub-batch deep enough for its own
  // prefetch pipeline. Shallow batches keep the per-key path.
  if (keys.size() < shards_.size() * 32) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out[i] = Contains(keys[i]) ? 1 : 0;
    }
    return;
  }
  std::vector<std::vector<uint64_t>> group;
  std::vector<std::vector<size_t>> index;
  GroupByShard(keys, &group, &index);
  std::vector<uint8_t> shard_out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (group[s].empty()) continue;
    shard_out.resize(group[s].size());
    {
      std::shared_lock lock(shards_[s]->mutex);
      shards_[s]->filter->ContainsMany(group[s], shard_out.data());
    }
    for (size_t j = 0; j < group[s].size(); ++j) {
      out[index[s][j]] = shard_out[j];
    }
  }
}

size_t ShardedFilter::InsertMany(std::span<const uint64_t> keys) {
  if (keys.size() < shards_.size() * 32) {
    size_t inserted = 0;
    for (uint64_t key : keys) inserted += Insert(key);
    return inserted;
  }
  std::vector<std::vector<uint64_t>> group;
  std::vector<std::vector<size_t>> index;
  GroupByShard(keys, &group, &index);
  size_t inserted = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (group[s].empty()) continue;
    std::unique_lock lock(shards_[s]->mutex);
    inserted += shards_[s]->filter->InsertMany(group[s]);
  }
  return inserted;
}

bool ShardedFilter::Erase(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  return shard.filter->Erase(key);
}

uint64_t ShardedFilter::Count(uint64_t key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  return shard.filter->Count(key);
}

size_t ShardedFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    bits += shard->filter->SpaceBits();
  }
  return bits;
}

uint64_t ShardedFilter::NumKeys() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->filter->NumKeys();
  }
  return n;
}

}  // namespace bbf
