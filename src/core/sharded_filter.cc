#include "core/sharded_filter.h"

#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

ShardedFilter::ShardedFilter(uint64_t expected_keys, int num_shards,
                             ShardFactory factory)
    : factory_(std::move(factory)) {
  shards_.reserve(num_shards);
  per_shard_capacity_ =
      expected_keys / num_shards + expected_keys / (num_shards * 4) + 16;
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->filter = factory_(per_shard_capacity_);
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedFilter::ShardOf(uint64_t key) const {
  // Shard selection uses hash bits disjoint from what the shard filters
  // consume (they re-hash with their own seeds anyway).
  return static_cast<size_t>(Hash64(key, 0x5A4D) % shards_.size());
}

bool ShardedFilter::Insert(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  return shard.filter->Insert(key);
}

bool ShardedFilter::Contains(uint64_t key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  return shard.filter->Contains(key);
}

void ShardedFilter::GroupByShard(
    std::span<const uint64_t> keys,
    std::vector<std::vector<uint64_t>>* group,
    std::vector<std::vector<size_t>>* index) const {
  group->assign(shards_.size(), {});
  index->assign(shards_.size(), {});
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t s = ShardOf(keys[i]);
    (*group)[s].push_back(keys[i]);
    (*index)[s].push_back(i);
  }
}

void ShardedFilter::ContainsMany(std::span<const uint64_t> keys,
                                 uint8_t* out) const {
  // Grouping costs per-batch allocations and a gather/scatter; it pays
  // only when each shard receives a sub-batch deep enough for its own
  // prefetch pipeline. Shallow batches keep the per-key path.
  if (keys.size() < shards_.size() * 32) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out[i] = Contains(keys[i]) ? 1 : 0;
    }
    return;
  }
  std::vector<std::vector<uint64_t>> group;
  std::vector<std::vector<size_t>> index;
  GroupByShard(keys, &group, &index);
  std::vector<uint8_t> shard_out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (group[s].empty()) continue;
    shard_out.resize(group[s].size());
    {
      std::shared_lock lock(shards_[s]->mutex);
      shards_[s]->filter->ContainsMany(group[s], shard_out.data());
    }
    for (size_t j = 0; j < group[s].size(); ++j) {
      out[index[s][j]] = shard_out[j];
    }
  }
}

size_t ShardedFilter::InsertMany(std::span<const uint64_t> keys) {
  if (keys.size() < shards_.size() * 32) {
    size_t inserted = 0;
    for (uint64_t key : keys) inserted += Insert(key);
    return inserted;
  }
  std::vector<std::vector<uint64_t>> group;
  std::vector<std::vector<size_t>> index;
  GroupByShard(keys, &group, &index);
  size_t inserted = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (group[s].empty()) continue;
    std::unique_lock lock(shards_[s]->mutex);
    inserted += shards_[s]->filter->InsertMany(group[s]);
  }
  return inserted;
}

bool ShardedFilter::Erase(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  return shard.filter->Erase(key);
}

uint64_t ShardedFilter::Count(uint64_t key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  return shard.filter->Count(key);
}

size_t ShardedFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    bits += shard->filter->SpaceBits();
  }
  return bits;
}

uint64_t ShardedFilter::NumKeys() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->filter->NumKeys();
  }
  return n;
}

bool ShardedFilter::Save(std::ostream& os) const {
  if (shards_.empty()) return false;
  // Frame every shard independently first; the directory needs the blob
  // lengths, and each blob keeps its own checksum so corruption stays
  // contained to one shard.
  std::vector<std::string> blobs;
  blobs.reserve(shards_.size());
  std::string inner_tag;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    std::ostringstream ss;
    if (!shard->filter->Save(ss)) return false;
    inner_tag = shard->filter->Name();
    blobs.push_back(std::move(ss).str());
  }
  std::ostringstream dir;
  WriteU64(dir, per_shard_capacity_);
  WriteU64(dir, inner_tag.size());
  dir.write(inner_tag.data(),
            static_cast<std::streamsize>(inner_tag.size()));
  WriteU64(dir, blobs.size());
  for (const std::string& blob : blobs) WriteU64(dir, blob.size());
  if (!WriteSnapshotFrame(os, Name(), std::move(dir).str())) return false;
  for (const std::string& blob : blobs) {
    os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  return os.good();
}

bool ShardedFilter::Load(std::istream& is) {
  LoadReport report;
  return LoadWithReport(is, &report);
}

bool ShardedFilter::LoadWithReport(std::istream& is, LoadReport* report) {
  *report = LoadReport{};
  std::string tag;
  std::string directory;
  if (!ReadSnapshotFrame(is, &tag, &directory) || tag != Name()) {
    return false;
  }
  std::istringstream dir(directory);
  uint64_t capacity;
  uint64_t tag_len;
  std::string inner_tag;
  uint64_t count;
  if (!ReadU64Capped(dir, &capacity, kMaxSnapshotElements) ||
      !ReadU64Capped(dir, &tag_len, kMaxSnapshotTagBytes) ||
      !ReadBytes(dir, &inner_tag, tag_len) ||
      !ReadU64Capped(dir, &count, uint64_t{1} << 20) || count == 0) {
    return false;
  }
  std::vector<uint64_t> blob_lens(count);
  for (uint64_t& len : blob_lens) {
    if (!ReadU64Capped(dir, &len, kMaxSnapshotPayloadBytes)) return false;
  }
  // The factory must produce the filter family the snapshot was taken
  // from; otherwise every shard frame's tag check would quarantine it and
  // the caller would silently get an empty filter.
  {
    std::unique_ptr<Filter> probe = factory_(capacity);
    if (!probe || probe->Name() != inner_tag) return false;
  }
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(count);
  for (uint64_t s = 0; s < count; ++s) {
    std::string blob;
    const bool have_blob = ReadBytes(is, &blob, blob_lens[s]);
    auto shard = std::make_unique<Shard>();
    shard->filter = factory_(capacity);
    bool healthy = false;
    if (have_blob) {
      std::istringstream bs(blob);
      healthy = shard->filter->Load(bs);
    }
    if (healthy) {
      ++report->healthy_shards;
    } else {
      // Quarantine: keep the freshly built empty shard. A failed Load
      // leaves the filter untouched, but rebuild anyway so a partially
      // corrupt blob can never leak state.
      shard->filter = factory_(capacity);
      report->quarantined.push_back(static_cast<size_t>(s));
    }
    shards.push_back(std::move(shard));
  }
  report->total_shards = static_cast<size_t>(count);
  per_shard_capacity_ = capacity;
  shards_ = std::move(shards);
  return true;
}

}  // namespace bbf
