#include "core/sharded_filter.h"

#include <mutex>

#include "util/hash.h"

namespace bbf {

ShardedFilter::ShardedFilter(uint64_t expected_keys, int num_shards,
                             ShardFactory factory) {
  shards_.reserve(num_shards);
  const uint64_t per_shard =
      expected_keys / num_shards + expected_keys / (num_shards * 4) + 16;
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->filter = factory(per_shard);
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedFilter::ShardOf(uint64_t key) const {
  // Shard selection uses hash bits disjoint from what the shard filters
  // consume (they re-hash with their own seeds anyway).
  return static_cast<size_t>(Hash64(key, 0x5A4D) % shards_.size());
}

bool ShardedFilter::Insert(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  return shard.filter->Insert(key);
}

bool ShardedFilter::Contains(uint64_t key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  return shard.filter->Contains(key);
}

bool ShardedFilter::Erase(uint64_t key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  return shard.filter->Erase(key);
}

uint64_t ShardedFilter::Count(uint64_t key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  return shard.filter->Count(key);
}

size_t ShardedFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    bits += shard->filter->SpaceBits();
  }
  return bits;
}

uint64_t ShardedFilter::NumKeys() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->filter->NumKeys();
  }
  return n;
}

}  // namespace bbf
