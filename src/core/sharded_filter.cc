#include "core/sharded_filter.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "core/metrics_sink.h"
#include "util/serialize.h"

namespace bbf {
namespace {

// Directory layout version for the sharded snapshot frame. v1 had no
// generation chains; its first directory field was a capacity (always far
// larger than any version number), so v1 streams fail the version check
// cleanly instead of misparsing.
constexpr uint64_t kShardedDirVersion = 2;

// Sanity cap on per-shard generation counts in snapshots; real configs
// stay in single digits.
constexpr uint64_t kMaxSnapshotGenerations = 4096;

}  // namespace

int SaturationConfig::GenerationsForFprBudget(double per_generation_fpr,
                                              double fpr_budget) {
  if (per_generation_fpr <= 0 || fpr_budget <= 0) return 1;
  return std::max(1, static_cast<int>(fpr_budget / per_generation_fpr));
}

std::unique_ptr<ShardedFilter::Shard> ShardedFilter::MakeShard() const {
  auto shard = std::make_unique<Shard>();
  shard->gens.push_back(factory_(per_shard_capacity_));
  // Quarantine rebuilds and snapshot loads create shards after a sink may
  // have been attached; keep them reporting.
  shard->gens.back()->AttachMetricsSink(sink_);
  shard->newest_capacity = per_shard_capacity_;
  shard->next_capacity = static_cast<uint64_t>(
      std::max(1.0, per_shard_capacity_ * config_.growth));
  return shard;
}

ShardedFilter::ShardedFilter(uint64_t expected_keys, int num_shards,
                             ShardFactory factory)
    : ShardedFilter(expected_keys, num_shards, std::move(factory),
                    SaturationConfig{}) {}

ShardedFilter::ShardedFilter(uint64_t expected_keys, int num_shards,
                             ShardFactory factory,
                             const SaturationConfig& config)
    : factory_(std::move(factory)), config_(config) {
  shards_.reserve(num_shards);
  per_shard_capacity_ =
      expected_keys / num_shards + expected_keys / (num_shards * 4) + 16;
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(MakeShard());
  }
}

size_t ShardedFilter::ShardOf(HashedKey key) const {
  // Routing slices the canonical mix directly — zero extra hashing. The
  // bit-usage contract (core/key.h) keeps this sound: families only ever
  // consume Derive(stream) values, never value() itself, so shard
  // selection cannot bias any family's fingerprint distribution.
  return static_cast<size_t>(key.value() % shards_.size());
}

Filter& ShardedFilter::AddGenerationLocked(Shard& shard) {
  shard.gens.push_back(factory_(shard.next_capacity));
  shard.gens.back()->AttachMetricsSink(sink_);
  if (sink_ != nullptr) sink_->OnExpansion();
  shard.newest_capacity = shard.next_capacity;
  shard.next_capacity = static_cast<uint64_t>(
      std::max(1.0, shard.next_capacity * config_.growth));
  return *shard.gens.back();
}

void ShardedFilter::AttachMetricsSink(MetricsSink* sink) {
  Filter::AttachMetricsSink(sink);
  for (const auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    for (const auto& gen : shard->gens) gen->AttachMetricsSink(sink);
  }
}

InsertOutcome ShardedFilter::InsertIntoShardLocked(Shard& shard,
                                                   HashedKey key) {
  Filter& cur = *shard.gens.back();
  const bool saturated = cur.LoadFactor() >= config_.load_threshold;
  if (!saturated && cur.Insert(key)) {
    ++shard.accepted;
    return InsertOutcome::kAccepted;
  }
  // Either the threshold tripped or the family refused early (e.g. a
  // cuckoo kick failure below nominal load) — degrade per policy.
  switch (config_.policy) {
    case SaturationPolicy::kReject:
      ++shard.rejected;
      return InsertOutcome::kRejectedFull;
    case SaturationPolicy::kChain:
      if (static_cast<int>(shard.gens.size()) < config_.max_generations) {
        if (AddGenerationLocked(shard).Insert(key)) {
          ++shard.expanded;
          return InsertOutcome::kExpanded;
        }
        ++shard.rejected;
        return InsertOutcome::kRejectedFull;
      }
      // Generation budget exhausted: squeeze the newest generation past
      // the threshold (its own hard limit still applies) rather than
      // reject outright. Only worth attempting if we haven't already.
      if (saturated && cur.Insert(key)) {
        ++shard.accepted;
        return InsertOutcome::kAccepted;
      }
      ++shard.rejected;
      return InsertOutcome::kRejectedFull;
    case SaturationPolicy::kExpandInPlace:
      // Natively expanding families restructure inside Insert; all we add
      // is the honest status. A second attempt after a sub-threshold
      // failure is safe: a failed Insert left no trace of the key.
      if (cur.Insert(key)) {
        ++shard.expanded;
        return InsertOutcome::kExpanded;
      }
      ++shard.rejected;
      return InsertOutcome::kRejectedFull;
  }
  ++shard.rejected;
  return InsertOutcome::kRejectedFull;  // Unreachable; placates compilers.
}

InsertOutcome ShardedFilter::InsertWithStatus(HashedKey key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  return InsertIntoShardLocked(shard, key);
}

bool ShardedFilter::Insert(HashedKey key) {
  return Accepted(InsertWithStatus(key));
}

bool ShardedFilter::Contains(HashedKey key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  for (const auto& gen : shard.gens) {
    if (gen->Contains(key)) return true;
  }
  return false;
}

void ShardedFilter::GroupByShard(std::span<const HashedKey> keys,
                                 HashedKey* sorted, size_t* src,
                                 size_t* start) const {
  const size_t num_shards = shards_.size();
  // The shard id of each key is stored, not recomputed — `% num_shards`
  // is a 64-bit divide, and paying it twice per key was a measurable
  // share of the old grouping cost.
  constexpr size_t kStackIds = 4096;
  uint32_t sid_stack[kStackIds];
  std::vector<uint32_t> sid_heap;
  uint32_t* sid = sid_stack;
  if (keys.size() > kStackIds) {
    sid_heap.resize(keys.size());
    sid = sid_heap.data();
  }
  std::fill(start, start + num_shards + 1, 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    sid[i] = static_cast<uint32_t>(keys[i].value() % num_shards);
    ++start[sid[i] + 1];
  }
  for (size_t s = 0; s < num_shards; ++s) start[s + 1] += start[s];
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t pos = start[sid[i]]++;
    sorted[pos] = keys[i];
    src[pos] = i;
  }
  // The scatter advanced every cursor to its successor's offset; shift
  // back in place instead of keeping a second cursor array.
  for (size_t s = num_shards; s > 0; --s) start[s] = start[s - 1];
  start[0] = 0;
}

namespace {

// Stack scratch bounds for the grouped batch paths: batches up to
// kStackKeys keys (and up to kStackShards-1 shards) run with zero heap
// allocation, which is what makes grouping profitable for mid-size
// batches that the old vector-of-vectors grouping lost money on.
constexpr size_t kStackKeys = 1024;
constexpr size_t kStackShards = 129;

}  // namespace

void ShardedFilter::ContainsMany(std::span<const HashedKey> keys,
                                 uint8_t* out) const {
  const size_t num_shards = shards_.size();
  // Passthrough: a batch shallower than ~2 keys per shard can't feed any
  // shard's prefetch pipeline — grouping would add the sort and scatter
  // for nothing — so it routes through per-key dispatch.
  if (keys.size() < num_shards * 2) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out[i] = Contains(keys[i]) ? 1 : 0;
    }
    return;
  }
  HashedKey sorted_stack[kStackKeys];
  size_t src_stack[kStackKeys];
  uint8_t res_stack[kStackKeys];
  size_t start_stack[kStackShards];
  std::vector<HashedKey> sorted_heap;
  std::vector<size_t> src_heap;
  std::vector<uint8_t> res_heap;
  std::vector<size_t> start_heap;
  HashedKey* sorted = sorted_stack;
  size_t* src = src_stack;
  uint8_t* res = res_stack;
  size_t* start = start_stack;
  if (keys.size() > kStackKeys) {
    sorted_heap.resize(keys.size());
    src_heap.resize(keys.size());
    res_heap.resize(keys.size());
    sorted = sorted_heap.data();
    src = src_heap.data();
    res = res_heap.data();
  }
  if (num_shards + 1 > kStackShards) {
    start_heap.resize(num_shards + 1);
    start = start_heap.data();
  }
  GroupByShard(keys, sorted, src, start);
  std::vector<uint8_t> gen_out;  // Only sized when a shard has chained.
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t b = start[s];
    const size_t e = start[s + 1];
    if (b == e) continue;
    const std::span<const HashedKey> sub(sorted + b, e - b);
    std::shared_lock lock(shards_[s]->mutex);
    const auto& gens = shards_[s]->gens;
    // Single generation (the common case) writes results directly;
    // chained shards OR the per-generation answers together.
    gens.front()->ContainsMany(sub, res + b);
    if (gens.size() > 1) {
      gen_out.resize(sub.size());
      for (size_t g = 1; g < gens.size(); ++g) {
        gens[g]->ContainsMany(sub, gen_out.data());
        for (size_t j = 0; j < sub.size(); ++j) res[b + j] |= gen_out[j];
      }
    }
  }
  for (size_t p = 0; p < keys.size(); ++p) out[src[p]] = res[p];
}

size_t ShardedFilter::InsertMany(std::span<const HashedKey> keys) {
  const size_t num_shards = shards_.size();
  if (keys.size() < num_shards * 2) {
    size_t inserted = 0;
    for (HashedKey key : keys) inserted += Insert(key);
    return inserted;
  }
  HashedKey sorted_stack[kStackKeys];
  size_t src_stack[kStackKeys];
  size_t start_stack[kStackShards];
  std::vector<HashedKey> sorted_heap;
  std::vector<size_t> src_heap;
  std::vector<size_t> start_heap;
  HashedKey* sorted = sorted_stack;
  size_t* src = src_stack;
  size_t* start = start_stack;
  if (keys.size() > kStackKeys) {
    sorted_heap.resize(keys.size());
    src_heap.resize(keys.size());
    sorted = sorted_heap.data();
    src = src_heap.data();
  }
  if (num_shards + 1 > kStackShards) {
    start_heap.resize(num_shards + 1);
    start = start_heap.data();
  }
  GroupByShard(keys, sorted, src, start);
  size_t inserted = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t b = start[s];
    const size_t e = start[s + 1];
    if (b == e) continue;
    const std::span<const HashedKey> sub(sorted + b, e - b);
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    Filter& cur = *shard.gens.back();
    // Fast path: if the whole sub-batch fits under the threshold, hand it
    // to the newest generation's prefetch-pipelined InsertMany. The
    // headroom estimate is conservative (batch over built capacity), so
    // a family shouldn't hit its hard limit inside the batch; if it still
    // refuses some keys the returned count stays truthful.
    const double headroom =
        config_.load_threshold - cur.LoadFactor() -
        static_cast<double>(sub.size()) / shard.newest_capacity;
    if (headroom > 0) {
      const size_t n = cur.InsertMany(sub);
      shard.accepted += n;
      shard.rejected += sub.size() - n;
      inserted += n;
      continue;
    }
    // Near saturation: per-key policy path (chaining mid-batch is fine).
    for (HashedKey key : sub) {
      inserted += Accepted(InsertIntoShardLocked(shard, key));
    }
  }
  return inserted;
}

void ShardedFilter::InsertManyWithStatus(std::span<const HashedKey> keys,
                                         InsertOutcome* out) {
  const size_t num_shards = shards_.size();
  if (keys.size() < num_shards * 2) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out[i] = InsertWithStatus(keys[i]);
    }
    return;
  }
  HashedKey sorted_stack[kStackKeys];
  size_t src_stack[kStackKeys];
  size_t start_stack[kStackShards];
  std::vector<HashedKey> sorted_heap;
  std::vector<size_t> src_heap;
  std::vector<size_t> start_heap;
  HashedKey* sorted = sorted_stack;
  size_t* src = src_stack;
  size_t* start = start_stack;
  if (keys.size() > kStackKeys) {
    sorted_heap.resize(keys.size());
    src_heap.resize(keys.size());
    sorted = sorted_heap.data();
    src = src_heap.data();
  }
  if (num_shards + 1 > kStackShards) {
    start_heap.resize(num_shards + 1);
    start = start_heap.data();
  }
  GroupByShard(keys, sorted, src, start);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t b = start[s];
    const size_t e = start[s + 1];
    if (b == e) continue;
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    // Always the per-key policy path: the InsertMany fast path returns
    // only a count, which cannot be attributed to keys when a family
    // refuses some of a sub-batch — and guessing would ack a key that
    // was never stored.
    for (size_t p = b; p < e; ++p) {
      out[src[p]] = InsertIntoShardLocked(shard, sorted[p]);
    }
  }
}

bool ShardedFilter::Erase(HashedKey key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  // Newest first: recent inserts are the likeliest erase targets.
  for (auto it = shard.gens.rbegin(); it != shard.gens.rend(); ++it) {
    if ((*it)->Erase(key)) return true;
  }
  return false;
}

uint64_t ShardedFilter::Count(HashedKey key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  uint64_t count = 0;
  for (const auto& gen : shard.gens) count += gen->Count(key);
  return count;
}

size_t ShardedFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& gen : shard->gens) bits += gen->SpaceBits();
  }
  return bits;
}

uint64_t ShardedFilter::NumKeys() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& gen : shard->gens) n += gen->NumKeys();
  }
  return n;
}

double ShardedFilter::LoadFactor() const {
  double max_load = 0.0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    max_load = std::max(max_load, shard->gens.back()->LoadFactor());
  }
  return max_load;
}

std::vector<ShardedFilter::ShardStats> ShardedFilter::Stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    ShardStats s;
    for (const auto& gen : shard->gens) s.num_keys += gen->NumKeys();
    s.load_factor = shard->gens.back()->LoadFactor();
    s.generations = shard->gens.size();
    s.accepted = shard->accepted;
    s.expanded = shard->expanded;
    s.rejected = shard->rejected;
    const bool can_chain =
        config_.policy == SaturationPolicy::kChain &&
        static_cast<int>(shard->gens.size()) < config_.max_generations;
    s.saturated = s.load_factor >= config_.load_threshold && !can_chain &&
                  config_.policy != SaturationPolicy::kExpandInPlace;
    stats.push_back(s);
  }
  return stats;
}

size_t ShardedFilter::HottestShard() const {
  size_t hottest = 0;
  uint64_t hottest_keys = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::shared_lock lock(shards_[i]->mutex);
    uint64_t n = 0;
    for (const auto& gen : shards_[i]->gens) n += gen->NumKeys();
    if (n > hottest_keys) {
      hottest_keys = n;
      hottest = i;
    }
  }
  return hottest;
}

uint64_t ShardedFilter::TotalRejected() const {
  uint64_t rejected = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    rejected += shard->rejected;
  }
  return rejected;
}

bool ShardedFilter::Save(std::ostream& os) const {
  if (shards_.empty()) return false;
  // Frame every generation independently first; the directory needs the
  // blob lengths, and each blob keeps its own checksum so corruption
  // stays contained. Serializing under per-shard reader locks makes Save
  // safe against concurrent inserts: the result is a per-shard-consistent
  // cut (shard i may be older than shard j, each internally intact).
  std::vector<std::vector<std::string>> blobs(shards_.size());
  std::string inner_tag;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock lock(shards_[s]->mutex);
    for (const auto& gen : shards_[s]->gens) {
      std::ostringstream ss;
      if (!gen->Save(ss)) return false;
      inner_tag = gen->Name();
      blobs[s].push_back(std::move(ss).str());
    }
  }
  std::ostringstream dir;
  WriteU64(dir, kShardedDirVersion);
  WriteU64(dir, per_shard_capacity_);
  WriteU64(dir, inner_tag.size());
  dir.write(inner_tag.data(),
            static_cast<std::streamsize>(inner_tag.size()));
  WriteU64(dir, blobs.size());
  for (const auto& shard_blobs : blobs) {
    WriteU64(dir, shard_blobs.size());
    for (const std::string& blob : shard_blobs) WriteU64(dir, blob.size());
  }
  if (!WriteSnapshotFrame(os, Name(), std::move(dir).str())) return false;
  for (const auto& shard_blobs : blobs) {
    for (const std::string& blob : shard_blobs) {
      os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    }
  }
  return os.good();
}

bool ShardedFilter::Load(std::istream& is) {
  LoadReport report;
  return LoadWithReport(is, &report);
}

bool ShardedFilter::LoadWithReport(std::istream& is, LoadReport* report) {
  *report = LoadReport{};
  std::string tag;
  std::string directory;
  if (!ReadSnapshotFrame(is, &tag, &directory) || tag != Name()) {
    return false;
  }
  std::istringstream dir(directory);
  uint64_t version;
  uint64_t capacity;
  uint64_t tag_len;
  std::string inner_tag;
  uint64_t count;
  if (!ReadU64(dir, &version) || version != kShardedDirVersion ||
      !ReadU64Capped(dir, &capacity, kMaxSnapshotElements) ||
      !ReadU64Capped(dir, &tag_len, kMaxSnapshotTagBytes) ||
      !ReadBytes(dir, &inner_tag, tag_len) ||
      !ReadU64Capped(dir, &count, uint64_t{1} << 20) || count == 0) {
    return false;
  }
  std::vector<std::vector<uint64_t>> blob_lens(count);
  for (auto& shard_lens : blob_lens) {
    uint64_t gens;
    if (!ReadU64Capped(dir, &gens, kMaxSnapshotGenerations) || gens == 0) {
      return false;
    }
    shard_lens.resize(gens);
    for (uint64_t& len : shard_lens) {
      if (!ReadU64Capped(dir, &len, kMaxSnapshotPayloadBytes)) return false;
    }
  }
  // The factory must produce the filter family the snapshot was taken
  // from; otherwise every generation frame's tag check would quarantine
  // it and the caller would silently get an empty filter.
  {
    std::unique_ptr<Filter> probe = factory_(capacity);
    if (!probe || probe->Name() != inner_tag) return false;
  }
  // Directory verified — from here on every defect is per-shard and
  // handled by quarantine, so committing the capacity now is safe.
  per_shard_capacity_ = capacity;
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(count);
  for (uint64_t s = 0; s < count; ++s) {
    auto shard = MakeShard();
    bool healthy = true;
    for (size_t g = 0; g < blob_lens[s].size(); ++g) {
      std::string blob;
      // Keep consuming blobs even after a corrupt one so later shards
      // stay aligned in the stream.
      const bool have_blob = ReadBytes(is, &blob, blob_lens[s][g]);
      if (!healthy) continue;
      std::unique_ptr<Filter> gen =
          g == 0 ? std::move(shard->gens.front())
                 : factory_(shard->next_capacity);
      gen->AttachMetricsSink(sink_);
      std::istringstream bs(blob);
      if (have_blob && gen->Load(bs)) {
        if (g == 0) {
          shard->gens.front() = std::move(gen);
        } else {
          shard->gens.push_back(std::move(gen));
          shard->newest_capacity = shard->next_capacity;
          shard->next_capacity = static_cast<uint64_t>(
              std::max(1.0, shard->next_capacity * config_.growth));
        }
      } else {
        healthy = false;
      }
    }
    if (healthy) {
      ++report->healthy_shards;
    } else {
      // Quarantine: any bad generation rebuilds the whole shard empty so
      // a partially corrupt chain can never leak state.
      shard = MakeShard();
      report->quarantined.push_back(static_cast<size_t>(s));
      ++shards_quarantined_total_;
    }
    shards.push_back(std::move(shard));
  }
  report->total_shards = static_cast<size_t>(count);
  shards_ = std::move(shards);
  return true;
}

}  // namespace bbf
