#include "core/sharded_filter.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/metrics_sink.h"
#include "util/serialize.h"

namespace bbf {
namespace {

// Directory layout version for the sharded snapshot frame. v1 had no
// generation chains; its first directory field was a capacity (always far
// larger than any version number), so v1 streams fail the version check
// cleanly instead of misparsing. v3 (migration) records a tag per
// generation because shards diverge by family after MigrateShard.
constexpr uint64_t kShardedDirVersion = 3;

// Sanity cap on per-shard generation counts in snapshots; real configs
// stay in single digits.
constexpr uint64_t kMaxSnapshotGenerations = 4096;

// A catch-up round that drains the replay backlog to this size or below
// stops iterating: the remainder is cheap enough to drain under the lock.
constexpr size_t kFinalDrainTarget = 64;

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int SaturationConfig::GenerationsForFprBudget(double per_generation_fpr,
                                              double fpr_budget) {
  if (per_generation_fpr <= 0 || fpr_budget <= 0) return 1;
  return std::max(1, static_cast<int>(fpr_budget / per_generation_fpr));
}

std::unique_ptr<ShardedFilter::Shard> ShardedFilter::MakeShard() const {
  auto shard = std::make_unique<Shard>();
  shard->gens.push_back(factory_(per_shard_capacity_));
  // Quarantine rebuilds and snapshot loads create shards after a sink may
  // have been attached; keep them reporting.
  shard->gens.back()->AttachMetricsSink(sink_);
  shard->newest_capacity = per_shard_capacity_;
  shard->next_capacity = static_cast<uint64_t>(
      std::max(1.0, per_shard_capacity_ * config_.growth));
  // A freshly built shard is empty, so its (empty) journal is a complete
  // op history — quarantine rebuilds stay migratable.
  if (migration_enabled_) {
    shard->journal_valid = true;
    if (migration_config_.track_shard_fpr) {
      shard->fpr = std::make_unique<ObservedFprEstimator>();
    }
  }
  return shard;
}

ShardedFilter::ShardedFilter(uint64_t expected_keys, int num_shards,
                             ShardFactory factory)
    : ShardedFilter(expected_keys, num_shards, std::move(factory),
                    SaturationConfig{}) {}

ShardedFilter::ShardedFilter(uint64_t expected_keys, int num_shards,
                             ShardFactory factory,
                             const SaturationConfig& config)
    : factory_(std::move(factory)), config_(config) {
  shards_.reserve(num_shards);
  per_shard_capacity_ =
      expected_keys / num_shards + expected_keys / (num_shards * 4) + 16;
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(MakeShard());
  }
}

size_t ShardedFilter::ShardOf(HashedKey key) const {
  // Routing slices the canonical mix directly — zero extra hashing. The
  // bit-usage contract (core/key.h) keeps this sound: families only ever
  // consume Derive(stream) values, never value() itself, so shard
  // selection cannot bias any family's fingerprint distribution.
  return static_cast<size_t>(key.value() % shards_.size());
}

Filter& ShardedFilter::AddGenerationLocked(Shard& shard) {
  shard.gens.push_back(FactoryFor(shard)(shard.next_capacity));
  shard.gens.back()->AttachMetricsSink(sink_);
  if (sink_ != nullptr) sink_->OnExpansion();
  shard.newest_capacity = shard.next_capacity;
  shard.next_capacity = static_cast<uint64_t>(
      std::max(1.0, shard.next_capacity * config_.growth));
  return *shard.gens.back();
}

void ShardedFilter::AttachMetricsSink(MetricsSink* sink) {
  Filter::AttachMetricsSink(sink);
  for (const auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    for (const auto& gen : shard->gens) gen->AttachMetricsSink(sink);
  }
}

InsertOutcome ShardedFilter::InsertIntoShardLocked(Shard& shard,
                                                   HashedKey key) {
  const InsertOutcome out = InsertPolicyLocked(shard, key);
  if (Accepted(out)) {
    if (shard.journal_valid && !shard.journal_broken) {
      if (shard.journal.size() >= migration_config_.journal_cap) {
        // Over the cap the journal can no longer claim to be the full
        // history; serving continues, migration of this shard is refused.
        shard.journal_broken = true;
      } else {
        shard.journal.push_back({key.value(), 0});
      }
    }
    if (shard.fpr && ObservedFprEstimator::InDomain(key)) {
      shard.fpr->RecordInsert(key);
    }
  }
  return out;
}

InsertOutcome ShardedFilter::InsertPolicyLocked(Shard& shard, HashedKey key) {
  Filter& cur = *shard.gens.back();
  const bool saturated = cur.LoadFactor() >= config_.load_threshold;
  if (!saturated && cur.Insert(key)) {
    ++shard.accepted;
    return InsertOutcome::kAccepted;
  }
  // Either the threshold tripped or the family refused early (e.g. a
  // cuckoo kick failure below nominal load) — degrade per policy.
  switch (config_.policy) {
    case SaturationPolicy::kReject:
      ++shard.rejected;
      return InsertOutcome::kRejectedFull;
    case SaturationPolicy::kChain:
      if (static_cast<int>(shard.gens.size()) < config_.max_generations) {
        if (AddGenerationLocked(shard).Insert(key)) {
          ++shard.expanded;
          return InsertOutcome::kExpanded;
        }
        ++shard.rejected;
        return InsertOutcome::kRejectedFull;
      }
      // Generation budget exhausted: squeeze the newest generation past
      // the threshold (its own hard limit still applies) rather than
      // reject outright. Only worth attempting if we haven't already.
      if (saturated && cur.Insert(key)) {
        ++shard.accepted;
        return InsertOutcome::kAccepted;
      }
      ++shard.rejected;
      return InsertOutcome::kRejectedFull;
    case SaturationPolicy::kExpandInPlace:
      // Natively expanding families restructure inside Insert; all we add
      // is the honest status. A second attempt after a sub-threshold
      // failure is safe: a failed Insert left no trace of the key.
      if (cur.Insert(key)) {
        ++shard.expanded;
        return InsertOutcome::kExpanded;
      }
      ++shard.rejected;
      return InsertOutcome::kRejectedFull;
  }
  ++shard.rejected;
  return InsertOutcome::kRejectedFull;  // Unreachable; placates compilers.
}

InsertOutcome ShardedFilter::InsertWithStatus(HashedKey key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  return InsertIntoShardLocked(shard, key);
}

bool ShardedFilter::Insert(HashedKey key) {
  return Accepted(InsertWithStatus(key));
}

bool ShardedFilter::Contains(HashedKey key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  bool hit = false;
  for (const auto& gen : shard.gens) {
    if (gen->Contains(key)) {
      hit = true;
      break;
    }
  }
  if (shard.fpr && ObservedFprEstimator::InDomain(key)) {
    shard.fpr->RecordLookup(key, hit);
  }
  return hit;
}

void ShardedFilter::GroupByShard(std::span<const HashedKey> keys,
                                 HashedKey* sorted, size_t* src,
                                 size_t* start) const {
  const size_t num_shards = shards_.size();
  // The shard id of each key is stored, not recomputed — `% num_shards`
  // is a 64-bit divide, and paying it twice per key was a measurable
  // share of the old grouping cost.
  constexpr size_t kStackIds = 4096;
  uint32_t sid_stack[kStackIds];
  std::vector<uint32_t> sid_heap;
  uint32_t* sid = sid_stack;
  if (keys.size() > kStackIds) {
    sid_heap.resize(keys.size());
    sid = sid_heap.data();
  }
  std::fill(start, start + num_shards + 1, 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    sid[i] = static_cast<uint32_t>(keys[i].value() % num_shards);
    ++start[sid[i] + 1];
  }
  for (size_t s = 0; s < num_shards; ++s) start[s + 1] += start[s];
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t pos = start[sid[i]]++;
    sorted[pos] = keys[i];
    src[pos] = i;
  }
  // The scatter advanced every cursor to its successor's offset; shift
  // back in place instead of keeping a second cursor array.
  for (size_t s = num_shards; s > 0; --s) start[s] = start[s - 1];
  start[0] = 0;
}

namespace {

// Stack scratch bounds for the grouped batch paths: batches up to
// kStackKeys keys (and up to kStackShards-1 shards) run with zero heap
// allocation, which is what makes grouping profitable for mid-size
// batches that the old vector-of-vectors grouping lost money on.
constexpr size_t kStackKeys = 1024;
constexpr size_t kStackShards = 129;

}  // namespace

void ShardedFilter::ContainsMany(std::span<const HashedKey> keys,
                                 uint8_t* out) const {
  const size_t num_shards = shards_.size();
  // Passthrough: a batch shallower than ~2 keys per shard can't feed any
  // shard's prefetch pipeline — grouping would add the sort and scatter
  // for nothing — so it routes through per-key dispatch.
  if (keys.size() < num_shards * 2) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out[i] = Contains(keys[i]) ? 1 : 0;
    }
    return;
  }
  HashedKey sorted_stack[kStackKeys];
  size_t src_stack[kStackKeys];
  uint8_t res_stack[kStackKeys];
  size_t start_stack[kStackShards];
  std::vector<HashedKey> sorted_heap;
  std::vector<size_t> src_heap;
  std::vector<uint8_t> res_heap;
  std::vector<size_t> start_heap;
  HashedKey* sorted = sorted_stack;
  size_t* src = src_stack;
  uint8_t* res = res_stack;
  size_t* start = start_stack;
  if (keys.size() > kStackKeys) {
    sorted_heap.resize(keys.size());
    src_heap.resize(keys.size());
    res_heap.resize(keys.size());
    sorted = sorted_heap.data();
    src = src_heap.data();
    res = res_heap.data();
  }
  if (num_shards + 1 > kStackShards) {
    start_heap.resize(num_shards + 1);
    start = start_heap.data();
  }
  GroupByShard(keys, sorted, src, start);
  std::vector<uint8_t> gen_out;  // Only sized when a shard has chained.
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t b = start[s];
    const size_t e = start[s + 1];
    if (b == e) continue;
    const std::span<const HashedKey> sub(sorted + b, e - b);
    std::shared_lock lock(shards_[s]->mutex);
    const auto& gens = shards_[s]->gens;
    // Single generation (the common case) writes results directly;
    // chained shards OR the per-generation answers together.
    gens.front()->ContainsMany(sub, res + b);
    if (gens.size() > 1) {
      gen_out.resize(sub.size());
      for (size_t g = 1; g < gens.size(); ++g) {
        gens[g]->ContainsMany(sub, gen_out.data());
        for (size_t j = 0; j < sub.size(); ++j) res[b + j] |= gen_out[j];
      }
    }
    if (shards_[s]->fpr != nullptr) {
      // Strided like InstrumentedFilter's batch path: scoring every
      // in-domain key would funnel 1/64th of the batch through the
      // estimator mutex while the shard lock is held.
      for (size_t j = 0; j < sub.size(); j += 16) {
        if (ObservedFprEstimator::InDomain(sub[j])) {
          shards_[s]->fpr->RecordLookup(sub[j], res[b + j] != 0);
        }
      }
    }
  }
  for (size_t p = 0; p < keys.size(); ++p) out[src[p]] = res[p];
}

size_t ShardedFilter::InsertMany(std::span<const HashedKey> keys) {
  const size_t num_shards = shards_.size();
  if (keys.size() < num_shards * 2) {
    size_t inserted = 0;
    for (HashedKey key : keys) inserted += Insert(key);
    return inserted;
  }
  HashedKey sorted_stack[kStackKeys];
  size_t src_stack[kStackKeys];
  size_t start_stack[kStackShards];
  std::vector<HashedKey> sorted_heap;
  std::vector<size_t> src_heap;
  std::vector<size_t> start_heap;
  HashedKey* sorted = sorted_stack;
  size_t* src = src_stack;
  size_t* start = start_stack;
  if (keys.size() > kStackKeys) {
    sorted_heap.resize(keys.size());
    src_heap.resize(keys.size());
    sorted = sorted_heap.data();
    src = src_heap.data();
  }
  if (num_shards + 1 > kStackShards) {
    start_heap.resize(num_shards + 1);
    start = start_heap.data();
  }
  GroupByShard(keys, sorted, src, start);
  size_t inserted = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t b = start[s];
    const size_t e = start[s + 1];
    if (b == e) continue;
    const std::span<const HashedKey> sub(sorted + b, e - b);
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    Filter& cur = *shard.gens.back();
    // Journaling shards always take the per-key path: the count-only
    // fast path cannot attribute a partial batch to keys, and a journal
    // recording a key the family refused would replay a phantom insert.
    if (shard.journal_valid || shard.fpr != nullptr) {
      for (HashedKey key : sub) {
        inserted += Accepted(InsertIntoShardLocked(shard, key));
      }
      continue;
    }
    // Fast path: if the whole sub-batch fits under the threshold, hand it
    // to the newest generation's prefetch-pipelined InsertMany. The
    // headroom estimate is conservative (batch over built capacity), so
    // a family shouldn't hit its hard limit inside the batch; if it still
    // refuses some keys the returned count stays truthful.
    const double headroom =
        config_.load_threshold - cur.LoadFactor() -
        static_cast<double>(sub.size()) / shard.newest_capacity;
    if (headroom > 0) {
      const size_t n = cur.InsertMany(sub);
      shard.accepted += n;
      shard.rejected += sub.size() - n;
      inserted += n;
      continue;
    }
    // Near saturation: per-key policy path (chaining mid-batch is fine).
    for (HashedKey key : sub) {
      inserted += Accepted(InsertIntoShardLocked(shard, key));
    }
  }
  return inserted;
}

void ShardedFilter::InsertManyWithStatus(std::span<const HashedKey> keys,
                                         InsertOutcome* out) {
  const size_t num_shards = shards_.size();
  if (keys.size() < num_shards * 2) {
    for (size_t i = 0; i < keys.size(); ++i) {
      out[i] = InsertWithStatus(keys[i]);
    }
    return;
  }
  HashedKey sorted_stack[kStackKeys];
  size_t src_stack[kStackKeys];
  size_t start_stack[kStackShards];
  std::vector<HashedKey> sorted_heap;
  std::vector<size_t> src_heap;
  std::vector<size_t> start_heap;
  HashedKey* sorted = sorted_stack;
  size_t* src = src_stack;
  size_t* start = start_stack;
  if (keys.size() > kStackKeys) {
    sorted_heap.resize(keys.size());
    src_heap.resize(keys.size());
    sorted = sorted_heap.data();
    src = src_heap.data();
  }
  if (num_shards + 1 > kStackShards) {
    start_heap.resize(num_shards + 1);
    start = start_heap.data();
  }
  GroupByShard(keys, sorted, src, start);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t b = start[s];
    const size_t e = start[s + 1];
    if (b == e) continue;
    Shard& shard = *shards_[s];
    std::unique_lock lock(shard.mutex);
    // Always the per-key policy path: the InsertMany fast path returns
    // only a count, which cannot be attributed to keys when a family
    // refuses some of a sub-batch — and guessing would ack a key that
    // was never stored.
    for (size_t p = b; p < e; ++p) {
      out[src[p]] = InsertIntoShardLocked(shard, sorted[p]);
    }
  }
}

bool ShardedFilter::Erase(HashedKey key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::unique_lock lock(shard.mutex);
  // Newest first: recent inserts are the likeliest erase targets.
  bool erased = false;
  for (auto it = shard.gens.rbegin(); it != shard.gens.rend(); ++it) {
    if ((*it)->Erase(key)) {
      erased = true;
      break;
    }
  }
  if (erased) {
    if (shard.journal_valid && !shard.journal_broken) {
      if (shard.journal.size() >= migration_config_.journal_cap) {
        shard.journal_broken = true;
      } else {
        shard.journal.push_back({key.value(), 1});
      }
    }
    if (shard.fpr && ObservedFprEstimator::InDomain(key)) {
      shard.fpr->RecordErase(key);
    }
  }
  return erased;
}

uint64_t ShardedFilter::Count(HashedKey key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  std::shared_lock lock(shard.mutex);
  uint64_t count = 0;
  for (const auto& gen : shard.gens) count += gen->Count(key);
  return count;
}

size_t ShardedFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& gen : shard->gens) bits += gen->SpaceBits();
  }
  return bits;
}

uint64_t ShardedFilter::NumKeys() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& gen : shard->gens) n += gen->NumKeys();
  }
  return n;
}

double ShardedFilter::LoadFactor() const {
  double max_load = 0.0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    max_load = std::max(max_load, shard->gens.back()->LoadFactor());
  }
  return max_load;
}

std::vector<ShardedFilter::ShardStats> ShardedFilter::Stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    ShardStats s;
    for (const auto& gen : shard->gens) s.num_keys += gen->NumKeys();
    s.load_factor = shard->gens.back()->LoadFactor();
    s.generations = shard->gens.size();
    s.accepted = shard->accepted;
    s.expanded = shard->expanded;
    s.rejected = shard->rejected;
    s.family = std::string(shard->gens.back()->Name());
    s.migrations = shard->migrations;
    if (shard->fpr != nullptr) {
      const ObservedFprEstimator::Snapshot f = shard->fpr->Snap();
      s.observed_fpr = f.observed_fpr;
      s.fpr_ci_low = f.ci_low;
      s.fpr_ci_high = f.ci_high;
      s.fpr_negative_lookups = f.negative_lookups;
      s.fpr_repeated_keys = f.fp_repeated_keys;
    }
    const bool can_chain =
        config_.policy == SaturationPolicy::kChain &&
        static_cast<int>(shard->gens.size()) < config_.max_generations;
    s.saturated = s.load_factor >= config_.load_threshold && !can_chain &&
                  config_.policy != SaturationPolicy::kExpandInPlace;
    stats.push_back(s);
  }
  return stats;
}

size_t ShardedFilter::HottestShard() const {
  size_t hottest = 0;
  uint64_t hottest_keys = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::shared_lock lock(shards_[i]->mutex);
    uint64_t n = 0;
    for (const auto& gen : shards_[i]->gens) n += gen->NumKeys();
    if (n > hottest_keys) {
      hottest_keys = n;
      hottest = i;
    }
  }
  return hottest;
}

uint64_t ShardedFilter::TotalRejected() const {
  uint64_t rejected = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    rejected += shard->rejected;
  }
  return rejected;
}

uint64_t ShardedFilter::TotalMigrations() const {
  uint64_t migrations = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    migrations += shard->migrations;
  }
  return migrations;
}

size_t ShardedFilter::WorstFprShard(uint64_t min_negative_lookups) const {
  size_t worst = kNoShard;
  double worst_fpr = -1.0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::shared_lock lock(shards_[i]->mutex);
    if (shards_[i]->fpr == nullptr) continue;
    const ObservedFprEstimator::Snapshot f = shards_[i]->fpr->Snap();
    if (f.negative_lookups < min_negative_lookups) continue;
    if (f.observed_fpr > worst_fpr) {
      worst_fpr = f.observed_fpr;
      worst = i;
    }
  }
  return worst;
}

bool ShardedFilter::EnableMigration(const MigrationConfig& config) {
  // All shard locks held at once (ordered, so no deadlock risk) so the
  // emptiness check and the arm are one atomic step across the filter.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  for (const auto& shard : shards_) {
    for (const auto& gen : shard->gens) {
      if (gen->NumKeys() > 0) return false;
    }
  }
  migration_enabled_ = true;
  migration_config_ = config;
  for (const auto& shard : shards_) {
    shard->journal.clear();
    shard->journal_valid = true;
    shard->journal_broken = false;
    if (config.track_shard_fpr && shard->fpr == nullptr) {
      shard->fpr = std::make_unique<ObservedFprEstimator>();
    }
  }
  return true;
}

void ShardedFilter::CompactJournalLocked(Shard& shard) {
  // The net multiset of live ops replaces the op history: membership
  // families ignore multiplicity and order, counting families keep their
  // counts, and journal length now tracks live keys instead of traffic.
  std::unordered_map<uint64_t, int64_t> counts;
  counts.reserve(shard.journal.size());
  for (const FilterJournalOp& op : shard.journal) {
    counts[op.mix] += op.erase ? -1 : 1;
  }
  shard.journal.clear();
  for (const auto& [mix, count] : counts) {
    for (int64_t i = 0; i < count; ++i) shard.journal.push_back({mix, 0});
  }
}

ShardedFilter::MigrationReport ShardedFilter::MigrateShard(
    size_t shard_idx, ShardFactory successor_factory) {
  // Default successor builder: construct empty via the factory and replay
  // the snapshot ops in journal order.
  ShardFactory factory = successor_factory;
  return MigrateShard(
      shard_idx,
      [factory](std::span<const FilterJournalOp> ops,
                uint64_t capacity) -> std::unique_ptr<Filter> {
        std::unique_ptr<Filter> successor = factory(capacity);
        if (!successor) return nullptr;
        for (const FilterJournalOp& op : ops) {
          const HashedKey key = HashedKey::FromMix(op.mix);
          if (op.erase) {
            successor->Erase(key);
          } else if (!successor->Insert(key)) {
            return nullptr;
          }
        }
        return successor;
      },
      std::move(successor_factory));
}

ShardedFilter::MigrationReport ShardedFilter::MigrateShard(
    size_t shard_idx, SuccessorBuilder build, ShardFactory successor_factory) {
  MigrationReport report;
  if (shard_idx >= shards_.size()) {
    report.error = "shard index out of range";
    return report;
  }
  Shard& shard = *shards_[shard_idx];
  auto fail = [&](std::string error) {
    std::unique_lock lock(shard.mutex);
    shard.migrating = false;
    report.error = std::move(error);
    return report;
  };

  // Phase A — snapshot the journal under the lock. The copy is the whole
  // pause writers see at this point; serving resumes immediately.
  std::vector<FilterJournalOp> snapshot_ops;
  {
    std::unique_lock lock(shard.mutex);
    if (!migration_enabled_ || !shard.journal_valid) {
      report.error = "migration not enabled for this shard";
      return report;
    }
    if (shard.journal_broken) {
      report.error = "journal broken (overflowed journal_cap)";
      return report;
    }
    if (shard.migrating) {
      report.error = "migration already in progress";
      return report;
    }
    shard.migrating = true;
    snapshot_ops = shard.journal;
  }
  report.snapshot_ops = snapshot_ops.size();
  int64_t live = 0;
  for (const FilterJournalOp& op : snapshot_ops) live += op.erase ? -1 : 1;
  live = std::max<int64_t>(live, 0);
  const uint64_t capacity = std::max<uint64_t>(
      per_shard_capacity_,
      static_cast<uint64_t>(live) + static_cast<uint64_t>(live) / 2 + 16);

  // Phase B — build the successor unlocked; reads and writes keep
  // flowing through the old generations, writes also land in the journal.
  std::unique_ptr<Filter> successor = build(
      std::span<const FilterJournalOp>(snapshot_ops), capacity);
  if (!successor) {
    return fail("successor build failed (builder refused a snapshot op)");
  }

  auto replay = [&](std::span<const FilterJournalOp> ops) {
    for (const FilterJournalOp& op : ops) {
      const HashedKey key = HashedKey::FromMix(op.mix);
      if (op.erase) {
        successor->Erase(key);
      } else if (!successor->Insert(key)) {
        return false;
      }
    }
    return true;
  };

  // Phase C — catch-up rounds: drain the ops that landed during the
  // build, reading the tail under a shared lock, replaying unlocked.
  size_t cursor = snapshot_ops.size();
  std::vector<FilterJournalOp> tail;
  for (int round = 0; round < migration_config_.max_catchup_rounds; ++round) {
    tail.clear();
    {
      std::shared_lock lock(shard.mutex);
      if (shard.journal_broken) {
        lock.unlock();
        return fail("journal broke during migration");
      }
      if (shard.journal.size() - cursor > migration_config_.replay_cap) {
        lock.unlock();
        return fail("replay backlog exceeded replay_cap");
      }
      tail.assign(shard.journal.begin() + static_cast<ptrdiff_t>(cursor),
                  shard.journal.end());
    }
    if (tail.size() <= kFinalDrainTarget) break;
    if (!replay(tail)) return fail("successor rejected a replayed op");
    cursor += tail.size();
    report.replayed_ops += tail.size();
  }

  // Final drain and swap under the exclusive lock — the migration pause.
  const uint64_t pause_start = MonotonicNanos();
  {
    std::unique_lock lock(shard.mutex);
    if (shard.journal_broken) {
      shard.migrating = false;
      report.error = "journal broke during migration";
      return report;
    }
    if (shard.journal.size() - cursor > migration_config_.replay_cap) {
      shard.migrating = false;
      report.error = "replay backlog exceeded replay_cap";
      return report;
    }
    const std::span<const FilterJournalOp> rest(
        shard.journal.data() + cursor, shard.journal.size() - cursor);
    if (!replay(rest)) {
      shard.migrating = false;
      report.error = "successor rejected a replayed op";
      return report;
    }
    report.replayed_ops += rest.size();
    successor->AttachMetricsSink(sink_);
    report.to_family = std::string(successor->Name());
    shard.gens.clear();
    shard.gens.push_back(std::move(successor));
    shard.newest_capacity = capacity;
    shard.next_capacity = static_cast<uint64_t>(
        std::max(1.0, static_cast<double>(capacity) * config_.growth));
    if (successor_factory) shard.factory = std::move(successor_factory);
    CompactJournalLocked(shard);
    if (shard.fpr != nullptr) shard.fpr->ResetObservations();
    shard.migrating = false;
    ++shard.migrations;
  }
  report.pause_ns = MonotonicNanos() - pause_start;
  report.ok = true;
  return report;
}

bool ShardedFilter::Save(std::ostream& os) const {
  if (shards_.empty()) return false;
  // Frame every generation independently first; the directory needs the
  // blob lengths, and each blob keeps its own checksum so corruption
  // stays contained. Serializing under per-shard reader locks makes Save
  // safe against concurrent inserts: the result is a per-shard-consistent
  // cut (shard i may be older than shard j, each internally intact).
  struct GenEntry {
    std::string tag;
    std::string blob;
  };
  std::vector<std::vector<GenEntry>> blobs(shards_.size());
  std::vector<uint64_t> newest_caps(shards_.size());
  std::vector<uint64_t> next_caps(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock lock(shards_[s]->mutex);
    newest_caps[s] = shards_[s]->newest_capacity;
    next_caps[s] = shards_[s]->next_capacity;
    for (const auto& gen : shards_[s]->gens) {
      std::ostringstream ss;
      if (!gen->Save(ss)) return false;
      blobs[s].push_back({std::string(gen->Name()), std::move(ss).str()});
    }
  }
  // The directory leads with the *factory* family's tag (not a
  // generation's): LoadWithReport probes the factory against it, and
  // filter_io's tag dispatcher rebuilds a matching factory from it. The
  // per-generation tags that follow carry the real (possibly migrated)
  // families.
  const std::string factory_tag(factory_(1)->Name());
  std::ostringstream dir;
  WriteU64(dir, kShardedDirVersion);
  WriteU64(dir, per_shard_capacity_);
  WriteU64(dir, factory_tag.size());
  dir.write(factory_tag.data(),
            static_cast<std::streamsize>(factory_tag.size()));
  WriteU64(dir, blobs.size());
  for (size_t s = 0; s < blobs.size(); ++s) {
    WriteU64(dir, newest_caps[s]);
    WriteU64(dir, next_caps[s]);
    WriteU64(dir, blobs[s].size());
    for (const GenEntry& gen : blobs[s]) {
      WriteU64(dir, gen.tag.size());
      dir.write(gen.tag.data(), static_cast<std::streamsize>(gen.tag.size()));
      WriteU64(dir, gen.blob.size());
    }
  }
  if (!WriteSnapshotFrame(os, Name(), std::move(dir).str())) return false;
  for (const auto& shard_blobs : blobs) {
    for (const GenEntry& gen : shard_blobs) {
      os.write(gen.blob.data(),
               static_cast<std::streamsize>(gen.blob.size()));
    }
  }
  return os.good();
}

bool ShardedFilter::Load(std::istream& is) {
  LoadReport report;
  return LoadWithReport(is, &report);
}

bool ShardedFilter::LoadWithReport(std::istream& is, LoadReport* report) {
  *report = LoadReport{};
  std::string tag;
  std::string directory;
  if (!ReadSnapshotFrame(is, &tag, &directory) || tag != Name()) {
    return false;
  }
  std::istringstream dir(directory);
  uint64_t version;
  uint64_t capacity;
  uint64_t tag_len;
  std::string factory_tag;
  uint64_t count;
  if (!ReadU64(dir, &version) || version != kShardedDirVersion ||
      !ReadU64Capped(dir, &capacity, kMaxSnapshotElements) ||
      !ReadU64Capped(dir, &tag_len, kMaxSnapshotTagBytes) ||
      !ReadBytes(dir, &factory_tag, tag_len) ||
      !ReadU64Capped(dir, &count, uint64_t{1} << 20) || count == 0) {
    return false;
  }
  struct GenMeta {
    std::string tag;
    uint64_t blob_len = 0;
  };
  struct ShardMeta {
    uint64_t newest_capacity = 0;
    uint64_t next_capacity = 0;
    std::vector<GenMeta> gens;
  };
  std::vector<ShardMeta> meta(count);
  for (ShardMeta& sm : meta) {
    uint64_t gens;
    if (!ReadU64Capped(dir, &sm.newest_capacity, kMaxSnapshotElements) ||
        !ReadU64Capped(dir, &sm.next_capacity, kMaxSnapshotElements) ||
        !ReadU64Capped(dir, &gens, kMaxSnapshotGenerations) || gens == 0) {
      return false;
    }
    sm.gens.resize(gens);
    for (GenMeta& gm : sm.gens) {
      uint64_t gen_tag_len;
      if (!ReadU64Capped(dir, &gen_tag_len, kMaxSnapshotTagBytes) ||
          !ReadBytes(dir, &gm.tag, gen_tag_len) ||
          !ReadU64Capped(dir, &gm.blob_len, kMaxSnapshotPayloadBytes)) {
        return false;
      }
    }
  }
  // The factory must produce the family the snapshot's directory names;
  // otherwise every factory-tagged generation would quarantine and the
  // caller would silently get an empty filter. Generations with *other*
  // tags (shards migrated to a new family) construct through the
  // injectable TagBuilder; without one, those shards quarantine.
  std::string probe_tag;
  {
    std::unique_ptr<Filter> probe = factory_(capacity);
    if (!probe || probe->Name() != factory_tag) return false;
    probe_tag = std::string(probe->Name());
  }
  // Directory verified — from here on every defect is per-shard and
  // handled by quarantine, so committing the capacity now is safe.
  per_shard_capacity_ = capacity;
  auto build_for_tag = [&](const std::string& gen_tag,
                           uint64_t gen_capacity) -> std::unique_ptr<Filter> {
    if (gen_tag == probe_tag) return factory_(gen_capacity);
    if (tag_builder_) return tag_builder_(gen_tag, gen_capacity);
    return nullptr;
  };
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(count);
  for (uint64_t s = 0; s < count; ++s) {
    auto shard = MakeShard();
    shard->gens.clear();
    bool healthy = true;
    for (size_t g = 0; g < meta[s].gens.size(); ++g) {
      std::string blob;
      // Keep consuming blobs even after a corrupt one so later shards
      // stay aligned in the stream.
      const bool have_blob = ReadBytes(is, &blob, meta[s].gens[g].blob_len);
      if (!healthy) continue;
      std::unique_ptr<Filter> gen =
          build_for_tag(meta[s].gens[g].tag, meta[s].newest_capacity);
      if (gen == nullptr) {
        healthy = false;
        continue;
      }
      gen->AttachMetricsSink(sink_);
      std::istringstream bs(blob);
      if (have_blob && gen->Load(bs)) {
        shard->gens.push_back(std::move(gen));
      } else {
        healthy = false;
      }
    }
    if (healthy && !shard->gens.empty()) {
      shard->newest_capacity = meta[s].newest_capacity;
      shard->next_capacity = std::max<uint64_t>(1, meta[s].next_capacity);
      // A loaded shard carries keys with no op history: journaling stays
      // off until the filter is emptied and EnableMigration runs again.
      shard->journal_valid = false;
      ++report->healthy_shards;
    } else {
      // Quarantine: any bad generation rebuilds the whole shard empty so
      // a partially corrupt chain can never leak state.
      shard = MakeShard();
      report->quarantined.push_back(static_cast<size_t>(s));
      ++shards_quarantined_total_;
    }
    shards.push_back(std::move(shard));
  }
  report->total_shards = static_cast<size_t>(count);
  shards_ = std::move(shards);
  return true;
}

}  // namespace bbf
