#include "core/fpr_estimator.h"

#include <algorithm>
#include <cmath>

namespace bbf {

void ObservedFprEstimator::RecordInsert(HashedKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  present_.insert(key.value());
}

void ObservedFprEstimator::RecordInserts(
    const std::vector<uint64_t>& mixed_values) {
  if (mixed_values.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  present_.reserve(present_.size() + mixed_values.size());
  for (uint64_t v : mixed_values) present_.insert(v);
}

void ObservedFprEstimator::RecordErase(HashedKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  present_.erase(key.value());
}

void ObservedFprEstimator::RecordLookup(HashedKey key, bool filter_positive) {
  std::lock_guard<std::mutex> lock(mu_);
  if (present_.count(key.value())) {
    ++positive_lookups_;
    if (!filter_positive) ++false_negatives_;
  } else {
    ++negative_lookups_;
    if (filter_positive) {
      ++false_positives_;
      // Repeat sketch. In-domain mixes have their low 6 bits zero, so
      // the slot index comes from the bits above the domain mask.
      SketchSlot& slot =
          sketch_[(key.value() >> 6) & (kSketchSlots - 1)];
      if (slot.count == 0) {
        slot.mix = key.value();
        slot.count = 1;
      } else if (slot.mix == key.value()) {
        ++slot.count;
      } else {
        --slot.count;
      }
    }
  }
}

void ObservedFprEstimator::ResetObservations() {
  std::lock_guard<std::mutex> lock(mu_);
  negative_lookups_ = 0;
  false_positives_ = 0;
  positive_lookups_ = 0;
  false_negatives_ = 0;
  sketch_.fill(SketchSlot{});
}

ObservedFprEstimator::Snapshot ObservedFprEstimator::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.tracked_keys = present_.size();
  snap.negative_lookups = negative_lookups_;
  snap.false_positives = false_positives_;
  snap.positive_lookups = positive_lookups_;
  snap.false_negatives = false_negatives_;
  if (negative_lookups_ > 0) {
    const double n = static_cast<double>(negative_lookups_);
    const double p = static_cast<double>(false_positives_) / n;
    snap.observed_fpr = p;
    // 95% Wilson score interval: robust at the small counts and extreme
    // proportions an FPR estimator lives at (the Wald interval collapses
    // to [p, p] when no FP has been seen yet).
    const double z = 1.959964;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    snap.ci_low = std::max(0.0, center - half);
    snap.ci_high = std::min(1.0, center + half);
  }
  for (const SketchSlot& slot : sketch_) {
    snap.max_fp_repeats = std::max(snap.max_fp_repeats, slot.count);
    if (slot.count >= kRepeatHot) ++snap.fp_repeated_keys;
  }
  return snap;
}

}  // namespace bbf
