// AVX2 kernels. This TU (alone) is compiled with -mavx2; nothing here may
// leak into other TUs (hence the anonymous namespace — see kernel_impl.h).
// Dispatch only selects this table when cpuid reports AVX2 at runtime.

#if defined(BBF_HAVE_KERNEL_AVX2)

#include <immintrin.h>

#include "simd/kernel_impl.h"
#include "simd/kernel_tables.h"

namespace {

/// Tests all k (<= 8) probes of one 512-bit block in one vector step.
///
/// The block is 16 x u32; for probe positions P[0..7] (32-bit lanes,
/// each in [0,512)):
///   word index  = P >> 5            (0..15)
///   both block halves are permuted by the index (permutevar8x32 ignores
///   bit 3), then blended on bit 3 to pick the right half;
///   bit mask    = 1 << (P & 31)    (per-lane variable shift)
/// A probe hits when word & mask != 0; the key is present when every
/// lane below k hits (kLaneMask discards the rest).
// Lane-validity masks: row j enables the first j of 8 u32 lanes. Used to
// discard miss verdicts from lanes past k instead of padding positions
// (padding needs a scalar store-and-reload of the position vector, and
// the resulting store-forwarding stall was slower than no SIMD at all).
alignas(32) constexpr uint32_t kLaneMask[9][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},
    {~0u, 0, 0, 0, 0, 0, 0, 0},
    {~0u, ~0u, 0, 0, 0, 0, 0, 0},
    {~0u, ~0u, ~0u, 0, 0, 0, 0, 0},
    {~0u, ~0u, ~0u, ~0u, 0, 0, 0, 0},
    {~0u, ~0u, ~0u, ~0u, ~0u, 0, 0, 0},
    {~0u, ~0u, ~0u, ~0u, ~0u, ~0u, 0, 0},
    {~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, 0},
    {~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u},
};

inline bool Avx2TestBlock(const uint64_t* block_words, const uint64_t* hw,
                          int k) {
  if (k > 8) {
    // Multi-group vector extraction needs a gather per group here; the
    // portable loop wins for these rare wide configs.
    return KScalarTestBlock(block_words, hw, k);
  }
  const __m256i lo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block_words));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block_words + 4));

  // Extract the k probe positions with vector shifts straight from the
  // hash words: probes 0..5 are 9-bit fields of hw[0], probes 6..7 of
  // hw[1] (kernels.h layout contract). hw[1] is only derived when k > 6,
  // so substitute hw[0] below that — those lanes are masked off anyway.
  const long long hw0 = static_cast<long long>(hw[0]);
  const long long hw1 = static_cast<long long>(k > 6 ? hw[1] : hw[0]);
  const __m256i va = _mm256_srlv_epi64(
      _mm256_set1_epi64x(hw0), _mm256_set_epi64x(27, 18, 9, 0));
  const __m256i vb = _mm256_srlv_epi64(
      _mm256_set_epi64x(hw1, hw1, hw0, hw0), _mm256_set_epi64x(9, 0, 45, 36));
  // Compress the 8 x u64 fields into 8 x u32 lanes (low dwords of va to
  // the low half, of vb to the high half), then mask to 9 bits.
  const __m256i low_dwords = _mm256_set_epi32(6, 4, 2, 0, 6, 4, 2, 0);
  const __m256i p = _mm256_and_si256(
      _mm256_blend_epi32(_mm256_permutevar8x32_epi32(va, low_dwords),
                         _mm256_permutevar8x32_epi32(vb, low_dwords), 0xF0),
      _mm256_set1_epi32(511));

  const __m256i idx = _mm256_srli_epi32(p, 5);
  const __m256i wlo = _mm256_permutevar8x32_epi32(lo, idx);
  const __m256i whi = _mm256_permutevar8x32_epi32(hi, idx);
  // Move idx bit 3 (half select) into the lane sign bit for blendv.
  const __m256i sel = _mm256_slli_epi32(idx, 28);
  const __m256i w = _mm256_castps_si256(
      _mm256_blendv_ps(_mm256_castsi256_ps(wlo), _mm256_castsi256_ps(whi),
                       _mm256_castsi256_ps(sel)));
  const __m256i bit = _mm256_sllv_epi32(_mm256_set1_epi32(1),
                                        _mm256_and_si256(p, _mm256_set1_epi32(31)));
  const __m256i missed = _mm256_and_si256(
      _mm256_cmpeq_epi32(_mm256_and_si256(w, bit), _mm256_setzero_si256()),
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kLaneMask[k])));
  return _mm256_testz_si256(missed, missed);
}

void Avx2TestTile(const uint64_t* words, const uint64_t* block,
                  const uint64_t* hw, int hw_stride, int k, size_t n,
                  uint8_t* out) {
  KTestTile(Avx2TestBlock, words, block, hw, hw_stride, k, n, out);
}

// Setting bits is a scatter; there is no profitable AVX2 form for 8
// conflicting read-modify-writes into one cache line, so inserts reuse
// the scalar block op (compiled here, under AVX2 flags, which is fine —
// this TU only runs on AVX2 hosts).
void Avx2SetTile(uint64_t* words, const uint64_t* block, const uint64_t* hw,
                 int hw_stride, int k, size_t n) {
  KSetTile(KScalarSetBlock, words, block, hw, hw_stride, k, n);
}

/// Both candidate buckets checked in one 128-bit SWAR step: lane 0 holds
/// bucket 1, lane 1 bucket 2, and the scalar zero-field algebra runs on
/// both lanes at once.
inline bool Avx2Contains2(uint64_t b1_bits, uint64_t b2_bits, uint64_t fp,
                          const bbf::simd::BucketLayout& l) {
  const __m128i b = _mm_set_epi64x(static_cast<long long>(b2_bits),
                                   static_cast<long long>(b1_bits));
  const __m128i probe = _mm_set1_epi64x(static_cast<long long>(fp * l.ones));
  const __m128i low = _mm_set1_epi64x(static_cast<long long>(l.low));
  const __m128i msbs = _mm_set1_epi64x(static_cast<long long>(l.msbs));
  const __m128i x = _mm_xor_si128(b, probe);
  const __m128i t =
      _mm_or_si128(_mm_add_epi64(_mm_and_si128(x, low), low), x);
  const __m128i zeros = _mm_andnot_si128(t, msbs);
  return !_mm_testz_si128(zeros, zeros);
}

void Avx2ContainsTile(const uint64_t* words, const uint64_t* bit1,
                      const uint64_t* bit2, const uint64_t* fp,
                      const bbf::simd::BucketLayout& l, size_t n,
                      uint8_t* out) {
  KContainsTile(Avx2Contains2, words, bit1, bit2, fp, l, n, out);
}

}  // namespace

namespace bbf::simd::internal {

const BlockedBloomKernel kAvx2BloomKernel = {
    Avx2TestTile, Avx2SetTile, Avx2TestBlock, KScalarSetBlock,
    "avx2",
};

const CuckooKernel kAvx2CuckooKernel = {
    KSwarMatchMask, Avx2Contains2, Avx2ContainsTile,
    "avx2",
};

}  // namespace bbf::simd::internal

#endif  // BBF_HAVE_KERNEL_AVX2
