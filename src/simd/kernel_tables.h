#ifndef BBF_SIMD_KERNEL_TABLES_H_
#define BBF_SIMD_KERNEL_TABLES_H_

// Internal: declarations of the per-ISA kernel tables, one pair per
// translation unit in this directory. Only dispatch.cc and the kernel TUs
// include this. The BBF_HAVE_KERNEL_* macros come from src/simd/CMakeLists
// and reflect what the toolchain could compile, NOT what the CPU supports —
// runtime support is checked separately in dispatch.cc.

#include "simd/kernels.h"

namespace bbf::simd::internal {

extern const BlockedBloomKernel kScalarBloomKernel;
extern const CuckooKernel kScalarCuckooKernel;

#if defined(BBF_HAVE_KERNEL_AVX2)
extern const BlockedBloomKernel kAvx2BloomKernel;
extern const CuckooKernel kAvx2CuckooKernel;
#endif

#if defined(BBF_HAVE_KERNEL_AVX512)
extern const BlockedBloomKernel kAvx512BloomKernel;
extern const CuckooKernel kAvx512CuckooKernel;
#endif

#if defined(BBF_HAVE_KERNEL_NEON)
extern const BlockedBloomKernel kNeonBloomKernel;
extern const CuckooKernel kNeonCuckooKernel;
#endif

}  // namespace bbf::simd::internal

#endif  // BBF_SIMD_KERNEL_TABLES_H_
