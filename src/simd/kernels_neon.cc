// NEON kernels (AArch64). NEON is baseline on AArch64, so no extra
// compile flags and no runtime cpuid check are needed — the table is
// simply absent from non-ARM builds.

#if defined(BBF_HAVE_KERNEL_NEON)

#include <arm_neon.h>

#include "simd/kernel_impl.h"
#include "simd/kernel_tables.h"

namespace {

/// Probes are tested two at a time in a 64x2 lane pair: gather the two
/// target words scalar (NEON has no gather anyway), then one vtstq_u64
/// answers both probes. Odd k tests the last probe scalar.
inline bool NeonTestBlock(const uint64_t* block_words, const uint64_t* hw,
                          int k) {
  int i = 0;
  for (; i + 2 <= k; i += 2) {
    const uint32_t p0 = KProbePos(hw, i);
    const uint32_t p1 = KProbePos(hw, i + 1);
    const uint64x2_t w = {block_words[p0 >> 6], block_words[p1 >> 6]};
    const uint64x2_t bit = {uint64_t{1} << (p0 & 63), uint64_t{1} << (p1 & 63)};
    const uint64x2_t hit = vtstq_u64(w, bit);
    if (vgetq_lane_u64(hit, 0) == 0 || vgetq_lane_u64(hit, 1) == 0) {
      return false;
    }
  }
  if (i < k) {
    const uint32_t p = KProbePos(hw, i);
    if (((block_words[p >> 6] >> (p & 63)) & 1) == 0) return false;
  }
  return true;
}

void NeonTestTile(const uint64_t* words, const uint64_t* block,
                  const uint64_t* hw, int hw_stride, int k, size_t n,
                  uint8_t* out) {
  KTestTile(NeonTestBlock, words, block, hw, hw_stride, k, n, out);
}

void NeonSetTile(uint64_t* words, const uint64_t* block, const uint64_t* hw,
                 int hw_stride, int k, size_t n) {
  KSetTile(KScalarSetBlock, words, block, hw, hw_stride, k, n);
}

/// Two buckets in a 64x2 lane pair, SWAR zero-field algebra vectorized.
inline bool NeonContains2(uint64_t b1_bits, uint64_t b2_bits, uint64_t fp,
                          const bbf::simd::BucketLayout& l) {
  const uint64x2_t b = {b1_bits, b2_bits};
  const uint64x2_t probe = vdupq_n_u64(fp * l.ones);
  const uint64x2_t low = vdupq_n_u64(l.low);
  const uint64x2_t msbs = vdupq_n_u64(l.msbs);
  const uint64x2_t x = veorq_u64(b, probe);
  const uint64x2_t t = vorrq_u64(vaddq_u64(vandq_u64(x, low), low), x);
  const uint64x2_t zeros = vbicq_u64(msbs, t);
  return (vgetq_lane_u64(zeros, 0) | vgetq_lane_u64(zeros, 1)) != 0;
}

void NeonContainsTile(const uint64_t* words, const uint64_t* bit1,
                      const uint64_t* bit2, const uint64_t* fp,
                      const bbf::simd::BucketLayout& l, size_t n,
                      uint8_t* out) {
  KContainsTile(NeonContains2, words, bit1, bit2, fp, l, n, out);
}

}  // namespace

namespace bbf::simd::internal {

const BlockedBloomKernel kNeonBloomKernel = {
    NeonTestTile, NeonSetTile, NeonTestBlock, KScalarSetBlock,
    "neon",
};

const CuckooKernel kNeonCuckooKernel = {
    KSwarMatchMask, NeonContains2, NeonContainsTile,
    "neon",
};

}  // namespace bbf::simd::internal

#endif  // BBF_HAVE_KERNEL_NEON
