#ifndef BBF_SIMD_KERNEL_IMPL_H_
#define BBF_SIMD_KERNEL_IMPL_H_

// Internal: shared helpers for the per-ISA kernel translation units.
//
// Everything here lives in an ANONYMOUS namespace on purpose. Each TU in
// this directory is compiled with different ISA flags (-mavx2, -mavx512f);
// if these helpers had external (comdat) linkage the linker would keep one
// arbitrary copy — possibly one compiled with AVX2 auto-vectorization —
// and a non-AVX2 host would SIGILL inside what looks like scalar code.
// Internal linkage gives every TU its own correctly-flagged copy. For the
// same reason this header must not pull in other inline-heavy headers;
// the few bit helpers it needs are (re)defined here.

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

namespace {

/// Low `width` bits set; width in [1, 64].
inline uint64_t KLowMask(int width) {
  return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

/// Reads `width` (1..64) bits starting at bit offset `pos` of `words`.
/// Only touches words[pos>>6 + 1] when the read actually straddles, so a
/// run ending at the last valid bit never reads past the backing array.
inline uint64_t KReadBits(const uint64_t* words, uint64_t pos, int width) {
  const uint64_t w = pos >> 6;
  const int off = static_cast<int>(pos & 63);
  uint64_t v = words[w] >> off;
  if (off + width > 64) {
    v |= words[w + 1] << (64 - off);
  }
  return v & KLowMask(width);
}

/// Probe position (0..511) of probe `i` from the derived hash words. This
/// IS the bit-layout contract shared by every kernel; see kernels.h.
inline uint32_t KProbePos(const uint64_t* hw, int i) {
  return static_cast<uint32_t>(
      (hw[i / bbf::simd::kBloomProbesPerWord] >>
       (9 * (i % bbf::simd::kBloomProbesPerWord))) &
      511);
}

/// Portable 512-bit block ops — the reference semantics every vector
/// kernel must reproduce bit for bit.
inline bool KScalarTestBlock(const uint64_t* block_words, const uint64_t* hw,
                             int k) {
  for (int i = 0; i < k; ++i) {
    const uint32_t pos = KProbePos(hw, i);
    if (((block_words[pos >> 6] >> (pos & 63)) & 1) == 0) return false;
  }
  return true;
}

inline void KScalarSetBlock(uint64_t* block_words, const uint64_t* hw, int k) {
  for (int i = 0; i < k; ++i) {
    const uint32_t pos = KProbePos(hw, i);
    block_words[pos >> 6] |= uint64_t{1} << (pos & 63);
  }
}

/// Exact SWAR zero-field detect over 4 packed `l.width`-bit fields.
/// For each field f of x: MSB of (((f & low) + low) | f) is set iff
/// f != 0, with no carry into the neighbouring field because
/// (f & low) + low <= 2^w - 2. So ~t & msbs marks exactly the fields
/// equal to fp. Exact per-field — Erase/TryPlace pick slots from it.
inline uint64_t KSwarZeroFields(uint64_t x, const bbf::simd::BucketLayout& l) {
  const uint64_t t = ((x & l.low) + l.low) | x;
  return ~t & l.msbs;
}

inline uint32_t KSwarMatchMask(uint64_t bucket_bits, uint64_t fp,
                               const bbf::simd::BucketLayout& l) {
  const uint64_t zeros = KSwarZeroFields(bucket_bits ^ (fp * l.ones), l);
  // Compress one-MSB-per-field down to bits 0..3.
  const uint64_t z = zeros >> (l.width - 1);
  uint32_t m = 0;
  for (int s = 0; s < 4; ++s) {
    m |= static_cast<uint32_t>((z >> (s * l.width)) & 1) << s;
  }
  return m;
}

inline bool KSwarContains2(uint64_t b1_bits, uint64_t b2_bits, uint64_t fp,
                           const bbf::simd::BucketLayout& l) {
  const uint64_t probe = fp * l.ones;
  return (KSwarZeroFields(b1_bits ^ probe, l) |
          KSwarZeroFields(b2_bits ^ probe, l)) != 0;
}

/// Tile drivers shared by every ISA: the per-block functor is the only
/// part that differs. n is unbounded (callers pass whole tiles).
template <typename TestBlockFn>
inline void KTestTile(TestBlockFn test_block, const uint64_t* words,
                      const uint64_t* block, const uint64_t* hw, int hw_stride,
                      int k, size_t n, uint8_t* out) {
  for (size_t j = 0; j < n; ++j) {
    out[j] = test_block(words + 8 * block[j], hw + j * hw_stride, k) ? 1 : 0;
  }
}

template <typename SetBlockFn>
inline void KSetTile(SetBlockFn set_block, uint64_t* words,
                     const uint64_t* block, const uint64_t* hw, int hw_stride,
                     int k, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    set_block(words + 8 * block[j], hw + j * hw_stride, k);
  }
}

template <typename Contains2Fn>
inline void KContainsTile(Contains2Fn contains2, const uint64_t* words,
                          const uint64_t* bit1, const uint64_t* bit2,
                          const uint64_t* fp, const bbf::simd::BucketLayout& l,
                          size_t n, uint8_t* out) {
  const int run_bits = l.width * 4;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t b1 = KReadBits(words, bit1[j], run_bits);
    const uint64_t b2 = KReadBits(words, bit2[j], run_bits);
    out[j] = contains2(b1, b2, fp[j], l) ? 1 : 0;
  }
}

}  // namespace

#endif  // BBF_SIMD_KERNEL_IMPL_H_
