// Portable scalar kernels — the reference implementation, always compiled,
// and the parity baseline every vector kernel is tested against. Built
// with the project's default flags only (no ISA extensions), so this TU is
// safe on any host the binary runs on.

#include "simd/kernel_impl.h"
#include "simd/kernel_tables.h"

namespace {

void ScalarTestTile(const uint64_t* words, const uint64_t* block,
                    const uint64_t* hw, int hw_stride, int k, size_t n,
                    uint8_t* out) {
  KTestTile(KScalarTestBlock, words, block, hw, hw_stride, k, n, out);
}

void ScalarSetTile(uint64_t* words, const uint64_t* block, const uint64_t* hw,
                   int hw_stride, int k, size_t n) {
  KSetTile(KScalarSetBlock, words, block, hw, hw_stride, k, n);
}

void ScalarContainsTile(const uint64_t* words, const uint64_t* bit1,
                        const uint64_t* bit2, const uint64_t* fp,
                        const bbf::simd::BucketLayout& l, size_t n,
                        uint8_t* out) {
  KContainsTile(KSwarContains2, words, bit1, bit2, fp, l, n, out);
}

}  // namespace

namespace bbf::simd::internal {

const BlockedBloomKernel kScalarBloomKernel = {
    ScalarTestTile, ScalarSetTile, KScalarTestBlock, KScalarSetBlock,
    "scalar",
};

const CuckooKernel kScalarCuckooKernel = {
    KSwarMatchMask, KSwarContains2, ScalarContainsTile,
    "scalar",
};

}  // namespace bbf::simd::internal
