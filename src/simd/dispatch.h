#ifndef BBF_SIMD_DISPATCH_H_
#define BBF_SIMD_DISPATCH_H_

#include <string_view>
#include <vector>

namespace bbf::simd {

/// Instruction-set targets the kernel layer can be built for. Which of
/// them exist in a given binary is a compile-time property (per-file ISA
/// flags, see src/simd/CMakeLists.txt); which one runs is decided exactly
/// once per process, at first use, from:
///
///   1. the `BBF_FORCE_KERNEL` environment variable
///      (`scalar|avx2|avx512|neon`) — testing/benchmark override; an
///      unavailable ISA is ignored with a one-time stderr note rather than
///      crashing, so a pinned CI matrix entry is portable across hosts;
///   2. otherwise the widest ISA both compiled in and reported by the CPU
///      (cpuid via `__builtin_cpu_supports` on x86; NEON is baseline on
///      AArch64).
///
/// The hot paths pay one relaxed atomic load plus one indirect call per
/// *tile* (not per key), so per-call branching is zero.
enum class Isa : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

inline constexpr int kNumIsas = 4;

/// "scalar", "avx2", "avx512", "neon".
std::string_view IsaName(Isa isa);

/// Parses an ISA name (as accepted in BBF_FORCE_KERNEL). Returns true and
/// sets *isa on success.
bool ParseIsaName(std::string_view name, Isa* isa);

/// True when kernels for `isa` were compiled into this binary.
bool IsaCompiledIn(Isa isa);

/// True when `isa` is compiled in AND the running CPU supports it.
bool IsaAvailable(Isa isa);

/// Every ISA the current process can actually run, scalar first. The
/// kernel-parity tests sweep this list.
std::vector<Isa> AvailableIsas();

/// The ISA the kernel getters resolve to. Resolved once (env override,
/// then widest available) and cached; a ForceIsaForTesting override takes
/// precedence.
Isa ActiveIsa();

/// Name of ActiveIsa(), for bench/diagnostic output.
std::string_view ActiveIsaName();

/// Test hook: pin kernel dispatch to `isa` for the rest of the process (or
/// until cleared). Returns false — and changes nothing — if `isa` is not
/// available on this host. Not thread-safe against in-flight filter ops;
/// tests flip it only between operations.
bool ForceIsaForTesting(Isa isa);

/// Test hook: drop the ForceIsaForTesting override.
void ClearForcedIsaForTesting();

}  // namespace bbf::simd

#endif  // BBF_SIMD_DISPATCH_H_
