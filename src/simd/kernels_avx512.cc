// AVX-512 kernels (foundation subset only: -mavx512f). This TU alone is
// compiled with AVX-512 flags; dispatch selects it only when cpuid reports
// avx512f at runtime.

#if defined(BBF_HAVE_KERNEL_AVX512)

#include <immintrin.h>

#include "simd/kernel_impl.h"
#include "simd/kernel_tables.h"

// GCC's own avx512fintrin.h builds _mm512_sllv_epi64 on top of an
// intentionally-undefined merge operand (_mm512_undefined_pd), which
// -Wmaybe-uninitialized flags after inlining (GCC PR105593). Nothing of
// ours is uninitialized; silence it for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace {

// Probe-position extraction tables, one row per group of 8 probes: probe
// i reads hash word i/6 at shift 9*(i%6) (the layout contract in
// kernels.h). Rows cover k <= 48, i.e. hash words 0..7 — the reach of a
// single permutexvar over one zmm of hash words.
struct PosGroup {
  uint64_t word[8];
  uint64_t shift[8];
};
constexpr PosGroup MakePosGroup(int g) {
  PosGroup r{};
  for (int l = 0; l < 8; ++l) {
    const int i = g * 8 + l;
    r.word[l] = static_cast<uint64_t>(i / 6);
    r.shift[l] = static_cast<uint64_t>(9 * (i % 6));
  }
  return r;
}
constexpr PosGroup kPosGroups[6] = {MakePosGroup(0), MakePosGroup(1),
                                    MakePosGroup(2), MakePosGroup(3),
                                    MakePosGroup(4), MakePosGroup(5)};

/// One zmm register holds the whole 512-bit block (8 x u64), so up to 8
/// probes resolve in a single permute + variable shift + test:
///   word  = permutexvar_epi64(P >> 6, block)
///   mask  = 1 << (P & 63)
///   hit   = test_epi64_mask(word, mask)
/// The probe positions themselves are extracted with the same trick — one
/// permute of the hash words + one variable shift — instead of a scalar
/// store-and-reload, which costs a store-forwarding stall per group and
/// was measurably slower than not vectorizing at all. Lanes past k are
/// excluded by mask arithmetic, never padded.
inline bool Avx512TestBlock(const uint64_t* block_words, const uint64_t* hw,
                            int k) {
  const __m512i blk = _mm512_loadu_si512(block_words);
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i nine_bits = _mm512_set1_epi64(511);
  if (k <= 48) {
    // Masked load: only the ceil(k/6) derived hash words are readable
    // semantically; masked-out lanes never contribute (their probe lanes
    // are excluded from `valid` below).
    const int words = (k + 5) / 6;
    const __m512i hwv = _mm512_maskz_loadu_epi64(
        static_cast<__mmask8>((1u << words) - 1), hw);
    for (int g = 0; g * 8 < k; ++g) {
      const __m512i widx = _mm512_loadu_si512(kPosGroups[g].word);
      const __m512i sh = _mm512_loadu_si512(kPosGroups[g].shift);
      const __m512i p = _mm512_and_si512(
          _mm512_srlv_epi64(_mm512_permutexvar_epi64(widx, hwv), sh),
          nine_bits);
      const __m512i w =
          _mm512_permutexvar_epi64(_mm512_srli_epi64(p, 6), blk);
      const __m512i bit = _mm512_sllv_epi64(
          one, _mm512_and_si512(p, _mm512_set1_epi64(63)));
      const int lanes = k - g * 8;
      const __mmask8 valid =
          lanes >= 8 ? __mmask8{0xFF}
                     : static_cast<__mmask8>((1u << lanes) - 1);
      if ((_mm512_test_epi64_mask(w, bit) & valid) != valid) return false;
    }
    return true;
  }
  // k in (48, 64]: beyond one permute's reach; take the portable path.
  return KScalarTestBlock(block_words, hw, k);
}

void Avx512TestTile(const uint64_t* words, const uint64_t* block,
                    const uint64_t* hw, int hw_stride, int k, size_t n,
                    uint8_t* out) {
  KTestTile(Avx512TestBlock, words, block, hw, hw_stride, k, n, out);
}

// Inserts scatter into one line; scalar read-modify-write is the fastest
// correct form (see the AVX2 TU note).
void Avx512SetTile(uint64_t* words, const uint64_t* block, const uint64_t* hw,
                   int hw_stride, int k, size_t n) {
  KSetTile(KScalarSetBlock, words, block, hw, hw_stride, k, n);
}

/// Same two-lane SWAR as the AVX2 kernel — SSE registers suffice and avoid
/// any 512-bit frequency licensing on the cuckoo path.
inline bool Avx512Contains2(uint64_t b1_bits, uint64_t b2_bits, uint64_t fp,
                            const bbf::simd::BucketLayout& l) {
  const __m128i b = _mm_set_epi64x(static_cast<long long>(b2_bits),
                                   static_cast<long long>(b1_bits));
  const __m128i probe = _mm_set1_epi64x(static_cast<long long>(fp * l.ones));
  const __m128i low = _mm_set1_epi64x(static_cast<long long>(l.low));
  const __m128i msbs = _mm_set1_epi64x(static_cast<long long>(l.msbs));
  const __m128i x = _mm_xor_si128(b, probe);
  const __m128i t =
      _mm_or_si128(_mm_add_epi64(_mm_and_si128(x, low), low), x);
  const __m128i zeros = _mm_andnot_si128(t, msbs);
  return !_mm_testz_si128(zeros, zeros);
}

void Avx512ContainsTile(const uint64_t* words, const uint64_t* bit1,
                        const uint64_t* bit2, const uint64_t* fp,
                        const bbf::simd::BucketLayout& l, size_t n,
                        uint8_t* out) {
  KContainsTile(Avx512Contains2, words, bit1, bit2, fp, l, n, out);
}

}  // namespace

namespace bbf::simd::internal {

const BlockedBloomKernel kAvx512BloomKernel = {
    Avx512TestTile, Avx512SetTile, Avx512TestBlock, KScalarSetBlock,
    "avx512",
};

const CuckooKernel kAvx512CuckooKernel = {
    KSwarMatchMask, Avx512Contains2, Avx512ContainsTile,
    "avx512",
};

}  // namespace bbf::simd::internal

#endif  // BBF_HAVE_KERNEL_AVX512
