#ifndef BBF_SIMD_KERNELS_H_
#define BBF_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"

namespace bbf::simd {

// ---------------------------------------------------------------------------
// Blocked-Bloom block kernels.
//
// BlockedBloomFilter is decomposed Boost.Bloom-style into two policies:
//
//   * bucket selection — FastRange over 512-bit blocks, software prefetch,
//     tile staging. Lives in the filter (src/bloom) and is ISA-independent.
//   * intra-block marking — set/test all K probe bits of one 512-bit block.
//     Lives here, with one implementation per ISA, chosen at runtime.
//
// The probe-derivation contract is fixed across every kernel (it defines
// the on-disk/in-memory bit layout, so snapshots are kernel-portable):
// probe i reads 9 bits from derived hash word hw[i / 6] at shift
// 9 * (i % 6) and sets/tests bit (those 9 bits) of the block. The filter
// derives hw[w] = key.Derive(0x74 + 6 * w), matching the pre-kernel
// rolling-refresh loop bit for bit.
// ---------------------------------------------------------------------------

/// Max derived hash words per key: 6 nine-bit probes per 64-bit word and a
/// hard cap of 64 probes (enforced at construction and snapshot load).
inline constexpr int kMaxBloomHashWords = 11;

/// Probes drawn from one derived hash word before refreshing.
inline constexpr int kBloomProbesPerWord = 6;

/// Derived hash words needed for k probes.
constexpr int BloomHashWordsFor(int k) {
  return (k + kBloomProbesPerWord - 1) / kBloomProbesPerWord;
}

struct BlockedBloomKernel {
  /// Tests all k probes of each key against its (pre-fetched) block.
  /// `words` is the 64-byte-aligned backing array; key j's block occupies
  /// words [8 * block[j], 8 * block[j] + 8). `hw` is row-major,
  /// `hw_stride` words per key. Writes 0/1 to out[j].
  void (*test_tile)(const uint64_t* words, const uint64_t* block,
                    const uint64_t* hw, int hw_stride, int k, size_t n,
                    uint8_t* out);

  /// Sets all k probe bits of each key's block.
  void (*set_tile)(uint64_t* words, const uint64_t* block, const uint64_t* hw,
                   int hw_stride, int k, size_t n);

  /// Single-block forms for the scalar (per-key) filter API.
  bool (*test_block)(const uint64_t* block_words, const uint64_t* hw, int k);
  void (*set_block)(uint64_t* block_words, const uint64_t* hw, int k);

  const char* name;
};

// ---------------------------------------------------------------------------
// Cuckoo bucket-scan kernels.
//
// A 4-slot bucket of w-bit fingerprints is read as ONE packed word
// (CompactVector::GetRun4) whenever 4 * w <= 64, and the 4-way compare
// against the probe fingerprint collapses into one SWAR / vector
// zero-field detect instead of four field extractions — both candidate
// buckets in two loads and two compares. Wider fingerprints (w > 16) keep
// the portable per-slot loop in the filters.
// ---------------------------------------------------------------------------

/// Precomputed per-filter SWAR constants for 4 packed w-bit fields.
struct BucketLayout {
  int width = 0;        // fingerprint bits per slot
  uint64_t ones = 0;    // bit 0 of each field
  uint64_t msbs = 0;    // top bit of each field
  uint64_t low = 0;     // all field bits except the top one

  static BucketLayout Make(int width) {
    BucketLayout l;
    l.width = width;
    if (width >= 1 && width * 4 <= 64) {
      for (int s = 0; s < 4; ++s) l.ones |= uint64_t{1} << (s * width);
      l.msbs = l.ones << (width - 1);
      l.low = l.msbs - l.ones;
    }
    return l;
  }

  /// True when the packed-bucket kernels apply (the whole bucket fits in
  /// one 64-bit word). width == 1 is excluded: its fields have no sub-MSB
  /// bits, and such fingerprints do not occur (minimum is 2).
  bool PackedEligible() const { return width >= 2 && width * 4 <= 64; }
};

struct CuckooKernel {
  /// Per-slot match mask (bits 0..3) of fingerprint `fp` against the four
  /// fields packed in `bucket_bits` (upper bits zero). Exact — safe for
  /// Erase/TryPlace slot selection. fp == 0 finds empty slots.
  uint32_t (*match_mask)(uint64_t bucket_bits, uint64_t fp,
                         const BucketLayout& l);

  /// True iff `fp` occurs in either packed bucket. One compare per bucket,
  /// no early exit (the branchless form wins once both buckets are
  /// resident).
  bool (*contains2)(uint64_t b1_bits, uint64_t b2_bits, uint64_t fp,
                    const BucketLayout& l);

  /// Batched both-bucket membership over a tile: for each key j, reads the
  /// packed buckets at bit offsets bit1[j] / bit2[j] of `words` and writes
  /// 0/1 to out[j]. Buckets must be pre-fetched by the caller.
  void (*contains_tile)(const uint64_t* words, const uint64_t* bit1,
                        const uint64_t* bit2, const uint64_t* fp,
                        const BucketLayout& l, size_t n, uint8_t* out);

  const char* name;
};

/// Kernel tables for the active ISA (see dispatch.h for resolution).
const BlockedBloomKernel& ActiveBloomKernel();
const CuckooKernel& ActiveCuckooKernel();

/// Kernel tables for a specific ISA; nullptr when not compiled in. The
/// parity tests use these to cross-check every host-runnable kernel.
const BlockedBloomKernel* BloomKernelFor(Isa isa);
const CuckooKernel* CuckooKernelFor(Isa isa);

}  // namespace bbf::simd

#endif  // BBF_SIMD_KERNELS_H_
