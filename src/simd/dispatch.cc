#include "simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "simd/kernel_tables.h"
#include "simd/kernels.h"

namespace bbf::simd {

namespace {

// -1 = no test override; otherwise the forced Isa as an int. Relaxed is
// enough: tests only flip this between operations, and the hot paths read
// it once per tile.
std::atomic<int> g_forced_isa{-1};

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      // __builtin_cpu_supports also verifies OSXSAVE/XCR0, i.e. that the
      // OS actually saves the wide registers, not just that the CPU has
      // the execution units.
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is architecturally baseline on AArch64.
#else
      return false;
#endif
  }
  return false;
}

/// Resolves the default (un-forced) ISA exactly once per process:
/// BBF_FORCE_KERNEL if it names an available ISA, else the widest
/// available, preferring avx512 > avx2 > neon > scalar.
Isa ResolveDefaultIsa() {
  const char* env = std::getenv("BBF_FORCE_KERNEL");
  if (env != nullptr && env[0] != '\0') {  // Set-but-empty means auto.
    Isa isa;
    if (ParseIsaName(env, &isa) && IsaAvailable(isa)) {
      return isa;
    }
    std::fprintf(stderr,
                 "bbf: BBF_FORCE_KERNEL=%s is not available in this build/on "
                 "this CPU; falling back to auto-detection\n",
                 env);
  }
  for (Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (IsaAvailable(isa)) return isa;
  }
  return Isa::kScalar;
}

}  // namespace

std::string_view IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool ParseIsaName(std::string_view name, Isa* isa) {
  for (int i = 0; i < kNumIsas; ++i) {
    if (name == IsaName(static_cast<Isa>(i))) {
      *isa = static_cast<Isa>(i);
      return true;
    }
  }
  return false;
}

bool IsaCompiledIn(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(BBF_HAVE_KERNEL_AVX2)
      return true;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(BBF_HAVE_KERNEL_AVX512)
      return true;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(BBF_HAVE_KERNEL_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool IsaAvailable(Isa isa) { return IsaCompiledIn(isa) && CpuSupports(isa); }

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> out;
  for (int i = 0; i < kNumIsas; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (IsaAvailable(isa)) out.push_back(isa);
  }
  return out;
}

Isa ActiveIsa() {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  static const Isa kResolved = ResolveDefaultIsa();
  return kResolved;
}

std::string_view ActiveIsaName() { return IsaName(ActiveIsa()); }

bool ForceIsaForTesting(Isa isa) {
  if (!IsaAvailable(isa)) return false;
  g_forced_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

void ClearForcedIsaForTesting() {
  g_forced_isa.store(-1, std::memory_order_relaxed);
}

const BlockedBloomKernel* BloomKernelFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &internal::kScalarBloomKernel;
    case Isa::kAvx2:
#if defined(BBF_HAVE_KERNEL_AVX2)
      return &internal::kAvx2BloomKernel;
#else
      return nullptr;
#endif
    case Isa::kAvx512:
#if defined(BBF_HAVE_KERNEL_AVX512)
      return &internal::kAvx512BloomKernel;
#else
      return nullptr;
#endif
    case Isa::kNeon:
#if defined(BBF_HAVE_KERNEL_NEON)
      return &internal::kNeonBloomKernel;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const CuckooKernel* CuckooKernelFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &internal::kScalarCuckooKernel;
    case Isa::kAvx2:
#if defined(BBF_HAVE_KERNEL_AVX2)
      return &internal::kAvx2CuckooKernel;
#else
      return nullptr;
#endif
    case Isa::kAvx512:
#if defined(BBF_HAVE_KERNEL_AVX512)
      return &internal::kAvx512CuckooKernel;
#else
      return nullptr;
#endif
    case Isa::kNeon:
#if defined(BBF_HAVE_KERNEL_NEON)
      return &internal::kNeonCuckooKernel;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const BlockedBloomKernel& ActiveBloomKernel() {
  // ActiveIsa() only ever resolves to an available (hence compiled-in) ISA.
  return *BloomKernelFor(ActiveIsa());
}

const CuckooKernel& ActiveCuckooKernel() {
  return *CuckooKernelFor(ActiveIsa());
}

}  // namespace bbf::simd
