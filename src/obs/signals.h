#ifndef BBF_OBS_SIGNALS_H_
#define BBF_OBS_SIGNALS_H_

#include <cstdint>
#include <vector>

#include "core/fpr_estimator.h"
#include "core/sharded_filter.h"
#include "obs/instrumented.h"

namespace bbf::obs {

/// Everything the Tuner (src/tuning) reads in one pull — the
/// observability half of the auto-tuning loop (DESIGN.md §15). A pull
/// API rather than a callback: the Tuner polls on its own cadence, so
/// the hot paths never pay for a subscriber and the obs layer needs no
/// knowledge of tuning policy.
struct TunerSignals {
  /// The epsilon the filter was configured for (0 = unknown).
  double configured_epsilon = 0.0;
  /// Whole-filter observed-FPR estimate with Wilson CI and the
  /// repeated-false-positive sketch readout.
  ObservedFprEstimator::Snapshot fpr;
  /// Live occupancy gauges from the wrapped filter.
  double load_factor = 0.0;
  uint64_t num_keys = 0;
  /// ReportFalsePositive calls seen (adversarial pressure even when the
  /// inner family cannot adapt) and adapt repairs that succeeded.
  uint64_t fp_reports = 0;
  uint64_t adapt_events = 0;
  /// Whether the inner filter implements AdaptiveHook.
  bool adaptive = false;

  // --- Sharded-only signals (empty/default when the inner filter is not
  // a ShardedFilter) ---------------------------------------------------
  bool sharded = false;
  /// Per-shard occupancy, family, migration count, and (when migration
  /// tracking is armed) the observed-FPR column.
  std::vector<ShardedFilter::ShardStats> shards;
  /// Index of the shard holding the most keys.
  size_t hottest_shard = 0;
  /// Instrumented shard with the worst observed FPR (given at least
  /// `min_negative_lookups` scored negatives); ShardedFilter::kNoShard
  /// when none qualifies.
  size_t worst_fpr_shard = ShardedFilter::kNoShard;
  uint64_t total_rejected = 0;
  uint64_t total_migrations = 0;
};

/// Reads every tuner-relevant signal from an instrumented filter. Cheap
/// enough to poll: one metrics snapshot plus, for sharded filters, one
/// Stats() pass (each shard read under its shared lock).
TunerSignals PullTunerSignals(const InstrumentedFilter& filter,
                              uint64_t min_negative_lookups = 256);

}  // namespace bbf::obs

#endif  // BBF_OBS_SIGNALS_H_
