#ifndef BBF_OBS_METRICS_H_
#define BBF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/fpr_estimator.h"
#include "core/key.h"
#include "core/metrics_sink.h"

namespace bbf::obs {

/// The estimator moved to core/fpr_estimator.h so ShardedFilter can host
/// one per shard (core cannot depend on obs); this alias keeps the obs
/// spelling every consumer already uses.
using bbf::ObservedFprEstimator;

/// Monotonic wall time in nanoseconds, for sampled latency measurement.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One relaxed-atomic counter padded to a full cache line, so counters
/// incremented by different threads (per-shard insert paths) never
/// false-share. Relaxed ordering is sufficient: counters are monotone
/// tallies read at snapshot time, never used for synchronization.
struct alignas(64) PaddedCounter {
  std::atomic<uint64_t> value{0};

  void Add(uint64_t n = 1) { value.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Load() const { return value.load(std::memory_order_relaxed); }
};

/// Point-in-time copy of one histogram, in exporter-ready form:
/// Prometheus-style cumulative bucket counts over power-of-two upper
/// bounds plus an implicit +Inf bucket.
struct HistogramSnapshot {
  std::string name;
  std::vector<uint64_t> bounds;      // Finite upper bounds (0, 1, 2, 4, ...).
  std::vector<uint64_t> cumulative;  // bounds.size() + 1 entries; last = +Inf.
  uint64_t sum = 0;
  uint64_t count = 0;  // == cumulative.back().
};

/// Lock-free histogram over power-of-two buckets: bucket 0 holds exact
/// zeros, bucket i (i >= 1) holds values in (2^(i-2), 2^(i-1)], and the
/// final bucket absorbs everything larger. Covers kick-chain lengths,
/// probe scans, and batch sizes without configuration; Record is two
/// relaxed fetch_adds.
class Log2Histogram {
 public:
  /// 0, 1, 2, 4, ..., 2^14 finite bounds plus the +Inf catch-all.
  static constexpr size_t kFiniteBounds = 16;
  static constexpr size_t kBuckets = kFiniteBounds + 1;

  static size_t BucketOf(uint64_t v) {
    if (v == 0) return 0;
    // Smallest i with v <= 2^(i-1), i.e. ceil(log2(v)) + 1.
    const size_t b = static_cast<size_t>(std::bit_width(v - 1)) + 1;
    return b < kBuckets ? b : kBuckets - 1;
  }

  static uint64_t BoundOf(size_t bucket) {
    return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  }

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot(std::string name) const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// Fixed-size sampled latency reservoir. Writers overwrite slots round-
/// robin with relaxed atomics (a torn quantile sample is acceptable by
/// design — this is an estimator, not an audit log); Snapshot copies and
/// sorts. Callers decide the sampling rate; recording is one fetch_add
/// plus one store.
class LatencyReservoir {
 public:
  static constexpr size_t kCapacity = 1024;

  void Record(uint64_t nanos) {
    const size_t slot = static_cast<size_t>(
        next_.fetch_add(1, std::memory_order_relaxed) % kCapacity);
    slots_[slot].store(nanos, std::memory_order_relaxed);
  }

  struct Snapshot {
    uint64_t samples = 0;  // Total recorded (may exceed kCapacity).
    uint64_t p50_ns = 0;
    uint64_t p99_ns = 0;
    uint64_t max_ns = 0;
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> next_{0};
  std::array<std::atomic<uint64_t>, kCapacity> slots_{};
};

/// Point-in-time copy of a full metrics set, the unit the exporters
/// (obs/export.h) render. Names are final Prometheus-style suffixed
/// names without the `bbf_` prefix (the exporter adds it).
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// The always-on per-filter metrics block (DESIGN.md §11): cache-line-
/// padded relaxed-atomic counters, three power-of-two histograms, a
/// sampled latency reservoir, and the observed-FPR estimator. Implements
/// MetricsSink so families report structural events straight into it.
struct FilterMetrics : MetricsSink {
  // Op counters, maintained by InstrumentedFilter.
  PaddedCounter lookups;
  PaddedCounter lookup_hits;
  PaddedCounter inserts;
  PaddedCounter insert_failures;
  PaddedCounter erases;
  PaddedCounter erase_failures;
  PaddedCounter fp_reports;  // ReportFalsePositive calls.
  // Structural-event counters, maintained via the MetricsSink hooks.
  PaddedCounter expansions;
  PaddedCounter adapt_events;

  Log2Histogram kick_chain;    // Cuckoo displacement-chain lengths.
  Log2Histogram probe_length;  // Quotient run-scan lengths, including the
                               // Memento filter's memento-list scans (one
                               // event per probed prefix).
  Log2Histogram batch_size;    // ContainsMany/InsertMany batch sizes.

  LatencyReservoir lookup_latency;
  ObservedFprEstimator fpr;

  /// The epsilon the filter was configured for; exported next to the
  /// observed FPR. 0 = unknown.
  double configured_epsilon = 0.0;

  /// Kick-chain and probe-run events fire once per insert/lookup in some
  /// families, and a histogram Record costs two uncontended RMWs — real
  /// money next to a one-cache-line probe (it alone put quotient lookups
  /// ~20% over raw). They are therefore sampled 1-in-kStructuralSample
  /// before touching the histogram. The tick uses relaxed load+store, not
  /// fetch_add: concurrent updates may lose ticks, which only perturbs
  /// the sampling phase, never histogram integrity, and keeps the common
  /// path at two plain MOVs. Single-threaded sequences are deterministic:
  /// events 0, S, 2S, ... are the ones recorded. Rare events (expansions,
  /// adapts) stay exact. The factor is exported as the
  /// `structural_event_sample_every` gauge so dashboards can scale
  /// histogram counts back to event rates.
  static constexpr uint64_t kStructuralSampleEvery = 32;

  // MetricsSink:
  void OnKickChain(uint64_t kicks) override {
    if (SampleTick(kick_tick_)) kick_chain.Record(kicks);
  }
  void OnProbeLength(uint64_t slots) override {
    if (SampleTick(probe_tick_)) probe_length.Record(slots);
  }
  void OnExpansion() override { expansions.Add(); }
  void OnAdapt() override { adapt_events.Add(); }

  /// Renders every counter, gauge, and histogram in fixed order.
  MetricsSnapshot Snapshot() const;

 private:
  static bool SampleTick(std::atomic<uint64_t>& tick) {
    const uint64_t t = tick.load(std::memory_order_relaxed);
    tick.store(t + 1, std::memory_order_relaxed);
    return (t & (kStructuralSampleEvery - 1)) == 0;
  }

  alignas(64) std::atomic<uint64_t> kick_tick_{0};
  alignas(64) std::atomic<uint64_t> probe_tick_{0};
};

}  // namespace bbf::obs

#endif  // BBF_OBS_METRICS_H_
