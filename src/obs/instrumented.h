#ifndef BBF_OBS_INSTRUMENTED_H_
#define BBF_OBS_INSTRUMENTED_H_

#include <memory>
#include <span>

#include "core/filter.h"
#include "obs/metrics.h"

namespace bbf::obs {

/// Opt-in observability decorator (DESIGN.md §11): wraps any Filter and
/// maintains a FilterMetrics block — op counters, batch-size histogram,
/// sampled lookup latency, and the observed-FPR estimator — while
/// attaching itself as the inner filter's MetricsSink so family-level
/// events (kick chains, probe scans, expansions, adapt repairs) land in
/// the same block. Because the decorator wraps the Filter interface and
/// the sink rides the base class, every registered family reports without
/// per-family wrapper code.
///
/// Overhead budget: <= 5% on the batched lookup hot path (bench_obs, E22).
/// The costly pieces are therefore sampled — latency via steady_clock on
/// every 64th scalar lookup (batches are timed whole and amortized), the
/// FPR estimator via a deterministic 1-in-64 key-domain sample, checked
/// on every scalar op but only every 16th batch position.
///
/// Thread-safe to the same degree as the wrapped filter: all metric
/// updates are relaxed atomics or a sampled mutex, so wrapping a
/// ShardedFilter keeps the whole stack concurrent.
class InstrumentedFilter : public Filter, public AdaptiveHook {
 public:
  /// Takes ownership of `inner` and attaches the metrics block as its
  /// sink. `configured_epsilon` is exported next to the observed FPR
  /// (0 = unknown).
  explicit InstrumentedFilter(std::unique_ptr<Filter> inner,
                              double configured_epsilon = 0.0);
  ~InstrumentedFilter() override;

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;
  using Filter::InsertMany;
  using AdaptiveHook::ReportFalsePositive;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;

  size_t SpaceBits() const override { return inner_->SpaceBits(); }
  uint64_t NumKeys() const override { return inner_->NumKeys(); }
  double LoadFactor() const override { return inner_->LoadFactor(); }
  FilterClass Class() const override { return inner_->Class(); }
  /// The inner family's name: snapshots written through the decorator are
  /// byte-compatible with the bare filter's.
  std::string_view Name() const override { return inner_->Name(); }
  bool Save(std::ostream& os) const override { return inner_->Save(os); }
  bool Load(std::istream& is) override { return inner_->Load(is); }

  /// Forwards to the inner filter *and* the inner generations if the
  /// inner filter propagates; the decorator's own metrics stay attached —
  /// the last attachment wins, so only use this to chain custom sinks
  /// when the default instrumentation is not wanted.
  void AttachMetricsSink(MetricsSink* sink) override;

  /// Counts the report and forwards when the inner filter is adaptive;
  /// returns false (un-adapted) otherwise. Adapt *successes* are counted
  /// by the family itself through MetricsSink::OnAdapt.
  bool ReportFalsePositive(HashedKey key) override;
  bool adaptive() const { return hook_ != nullptr; }

  const FilterMetrics& metrics() const { return metrics_; }
  FilterMetrics& metrics() { return metrics_; }
  const Filter& inner() const { return *inner_; }
  Filter& inner() { return *inner_; }

  /// Full exporter-ready snapshot: the metrics block plus live gauges
  /// (load factor, keys, space) and — when the inner filter is a
  /// ShardedFilter — the aggregated Stats() surface (saturation-policy
  /// outcome counters, generation and saturation gauges).
  MetricsSnapshot Snapshot() const;

  /// Latency is clocked on every kLatencySampleEvery-th scalar lookup.
  static constexpr uint64_t kLatencySampleEvery = 64;
  /// Batch positions checked against the FPR sample domain.
  static constexpr size_t kBatchFprStride = 16;

 private:
  std::unique_ptr<Filter> inner_;
  AdaptiveHook* hook_ = nullptr;  // Non-null when inner_ is adaptive.
  mutable FilterMetrics metrics_;
  mutable PaddedCounter op_tick_;  // Drives latency sampling.
};

}  // namespace bbf::obs

#endif  // BBF_OBS_INSTRUMENTED_H_
