#include "obs/instrumented.h"

#include <algorithm>
#include <utility>

#include "core/sharded_filter.h"

namespace bbf::obs {

InstrumentedFilter::InstrumentedFilter(std::unique_ptr<Filter> inner,
                                       double configured_epsilon)
    : inner_(std::move(inner)),
      hook_(dynamic_cast<AdaptiveHook*>(inner_.get())) {
  metrics_.configured_epsilon = configured_epsilon;
  inner_->AttachMetricsSink(&metrics_);
}

InstrumentedFilter::~InstrumentedFilter() {
  // The metrics block dies with this object; never leave the inner
  // filter pointing at it.
  if (inner_) inner_->AttachMetricsSink(nullptr);
}

bool InstrumentedFilter::Insert(HashedKey key) {
  const bool ok = inner_->Insert(key);
  metrics_.inserts.Add();
  if (!ok) metrics_.insert_failures.Add();
  if (ok && ObservedFprEstimator::InDomain(key)) {
    metrics_.fpr.RecordInsert(key);
  }
  return ok;
}

bool InstrumentedFilter::Contains(HashedKey key) const {
  // Load+store, not fetch_add: ticks lost to races only shift the
  // sampling phase, and the plain MOVs keep the scalar path cheap.
  const uint64_t tick = op_tick_.value.load(std::memory_order_relaxed);
  op_tick_.value.store(tick + 1, std::memory_order_relaxed);
  const bool timed = (tick & (kLatencySampleEvery - 1)) == 0;
  const uint64_t start = timed ? NowNanos() : 0;
  const bool hit = inner_->Contains(key);
  if (timed) metrics_.lookup_latency.Record(NowNanos() - start);
  metrics_.lookups.Add();
  if (hit) metrics_.lookup_hits.Add();
  if (ObservedFprEstimator::InDomain(key)) {
    metrics_.fpr.RecordLookup(key, hit);
  }
  return hit;
}

void InstrumentedFilter::ContainsMany(std::span<const HashedKey> keys,
                                      uint8_t* out) const {
  if (keys.empty()) return;
  const uint64_t start = NowNanos();
  inner_->ContainsMany(keys, out);
  const uint64_t elapsed = NowNanos() - start;
  const size_t n = keys.size();
  metrics_.batch_size.Record(n);
  metrics_.lookups.Add(n);
  uint64_t hits = 0;
  for (size_t i = 0; i < n; ++i) hits += out[i];
  metrics_.lookup_hits.Add(hits);
  // One amortized per-key latency sample per batch.
  metrics_.lookup_latency.Record(elapsed / n);
  // Strided FPR sampling: scoring every in-domain key would funnel 1/64th
  // of the batch through the estimator mutex. A position stride is
  // unbiased (batch order is independent of the key-domain test) and caps
  // the cost at 1/16th of a domain test per key.
  for (size_t i = 0; i < n; i += kBatchFprStride) {
    if (ObservedFprEstimator::InDomain(keys[i])) {
      metrics_.fpr.RecordLookup(keys[i], out[i] != 0);
    }
  }
}

size_t InstrumentedFilter::InsertMany(std::span<const HashedKey> keys) {
  const size_t inserted = inner_->InsertMany(keys);
  metrics_.inserts.Add(keys.size());
  metrics_.insert_failures.Add(keys.size() - inserted);
  // A partial batch doesn't report *which* keys failed, so record every
  // in-domain key as present. A rejected key recorded as present is only
  // ever excluded from the estimator's negative pool — conservative, the
  // observed FPR can't be inflated by it. Collect first, record once:
  // the bulk form takes the estimator lock a single time per batch.
  std::vector<uint64_t> sampled;
  sampled.reserve(keys.size() / (ObservedFprEstimator::kDomainMask + 1) + 1);
  for (HashedKey key : keys) {
    if (ObservedFprEstimator::InDomain(key)) sampled.push_back(key.value());
  }
  metrics_.fpr.RecordInserts(sampled);
  return inserted;
}

bool InstrumentedFilter::Erase(HashedKey key) {
  const bool ok = inner_->Erase(key);
  metrics_.erases.Add();
  if (!ok) metrics_.erase_failures.Add();
  if (ok && ObservedFprEstimator::InDomain(key)) {
    metrics_.fpr.RecordErase(key);
  }
  return ok;
}

uint64_t InstrumentedFilter::Count(HashedKey key) const {
  const uint64_t count = inner_->Count(key);
  metrics_.lookups.Add();
  if (count > 0) metrics_.lookup_hits.Add();
  if (ObservedFprEstimator::InDomain(key)) {
    metrics_.fpr.RecordLookup(key, count > 0);
  }
  return count;
}

void InstrumentedFilter::AttachMetricsSink(MetricsSink* sink) {
  Filter::AttachMetricsSink(sink);
  inner_->AttachMetricsSink(sink);
}

bool InstrumentedFilter::ReportFalsePositive(HashedKey key) {
  metrics_.fp_reports.Add();
  return hook_ != nullptr && hook_->ReportFalsePositive(key);
}

MetricsSnapshot InstrumentedFilter::Snapshot() const {
  MetricsSnapshot snap = metrics_.Snapshot();
  snap.gauges.push_back({"load_factor", inner_->LoadFactor()});
  snap.gauges.push_back(
      {"num_keys", static_cast<double>(inner_->NumKeys())});
  snap.gauges.push_back(
      {"space_bits", static_cast<double>(inner_->SpaceBits())});
  snap.gauges.push_back({"bits_per_key", inner_->BitsPerKey()});
  if (const auto* sharded = dynamic_cast<const ShardedFilter*>(inner_.get())) {
    uint64_t accepted = 0;
    uint64_t expanded = 0;
    uint64_t rejected = 0;
    uint64_t generations = 0;
    uint64_t saturated = 0;
    uint64_t hottest_keys = 0;
    for (const ShardedFilter::ShardStats& s : sharded->Stats()) {
      accepted += s.accepted;
      expanded += s.expanded;
      rejected += s.rejected;
      generations += s.generations;
      saturated += s.saturated;
      hottest_keys = std::max(hottest_keys, s.num_keys);
    }
    snap.counters.push_back({"saturation_accepted_total", accepted});
    snap.counters.push_back({"saturation_expanded_total", expanded});
    snap.counters.push_back({"saturation_rejected_total", rejected});
    snap.counters.push_back({"load_quarantined_shards_total",
                             sharded->TotalQuarantinedShards()});
    snap.gauges.push_back(
        {"shard_count",
         static_cast<double>(sharded->num_shards())});
    snap.gauges.push_back(
        {"shard_generations", static_cast<double>(generations)});
    snap.gauges.push_back(
        {"shards_saturated", static_cast<double>(saturated)});
    snap.gauges.push_back(
        {"hottest_shard_keys", static_cast<double>(hottest_keys)});
  }
  return snap;
}

}  // namespace bbf::obs
