#ifndef BBF_OBS_EXPORT_H_
#define BBF_OBS_EXPORT_H_

#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/instrumented.h"
#include "obs/metrics.h"

namespace bbf::obs {

/// Named collection of metric sources — the unit a scrape endpoint
/// serves. Register each instrumented filter (or any snapshot provider)
/// under a label; Snapshot() materializes every source at once so one
/// exporter call renders a consistent page.
class MetricsRegistry {
 public:
  /// The caller keeps `filter` alive for the registry's lifetime.
  void Register(std::string label, const InstrumentedFilter* filter);
  /// Fully general form: any provider of MetricsSnapshot.
  void Register(std::string label, std::function<MetricsSnapshot()> provider);

  struct Entry {
    std::string label;
    MetricsSnapshot snapshot;
  };
  /// One entry per registered source, in registration order.
  std::vector<Entry> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::function<MetricsSnapshot()>>>
      sources_;
};

/// Renders registry entries in the Prometheus text exposition format.
/// Metric names get the `bbf_` prefix; each source's label becomes the
/// `filter="<label>"` label; series of the same metric are grouped under
/// a single `# TYPE` line, as the format requires. Output is
/// deterministic for a given entry vector (fixed metric order, fixed
/// float formatting), so tests can validate it byte-for-byte.
std::string RenderPrometheus(const std::vector<MetricsRegistry::Entry>& entries);

/// Renders the same data as a JSON document:
/// {"filters":[{"filter":label,"counters":{...},"gauges":{...},
///              "histograms":{name:{"bounds":[...],"cumulative":[...],
///                                  "sum":S,"count":C}}}]}
/// Deterministic like the Prometheus form.
std::string RenderJson(const std::vector<MetricsRegistry::Entry>& entries);

/// Fixed double formatting shared by both exporters (shortest round-trip
/// via %.17g would leak noise into byte-validated goldens; %.9g keeps
/// FPR-scale values exact and stable).
std::string FormatMetricValue(double value);

}  // namespace bbf::obs

#endif  // BBF_OBS_EXPORT_H_
