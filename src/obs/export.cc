#include "obs/export.h"

#include <cstdarg>
#include <cstdio>
#include <map>

namespace bbf::obs {
namespace {

// One rendered series: the label value and its formatted number(s).
struct Series {
  std::string label;
  const MetricsSnapshot::Counter* counter = nullptr;
  const MetricsSnapshot::Gauge* gauge = nullptr;
  const HistogramSnapshot* histogram = nullptr;
};

// Groups every entry's metrics by metric name, preserving first-seen
// order, so the Prometheus renderer can emit one # TYPE line per metric
// even with many registered filters.
struct MetricGroup {
  std::string name;
  const char* type;  // "counter" | "gauge" | "histogram"
  std::vector<Series> series;
};

std::vector<MetricGroup> GroupByMetric(
    const std::vector<MetricsRegistry::Entry>& entries) {
  std::vector<MetricGroup> groups;
  std::map<std::string, size_t> index;
  auto group_for = [&](const std::string& name,
                       const char* type) -> MetricGroup& {
    auto [it, inserted] = index.emplace(name, groups.size());
    if (inserted) groups.push_back(MetricGroup{name, type, {}});
    return groups[it->second];
  };
  for (const MetricsRegistry::Entry& e : entries) {
    for (const auto& c : e.snapshot.counters) {
      Series s;
      s.label = e.label;
      s.counter = &c;
      group_for(c.name, "counter").series.push_back(s);
    }
    for (const auto& g : e.snapshot.gauges) {
      Series s;
      s.label = e.label;
      s.gauge = &g;
      group_for(g.name, "gauge").series.push_back(s);
    }
    for (const auto& h : e.snapshot.histograms) {
      Series s;
      s.label = e.label;
      s.histogram = &h;
      group_for(h.name, "histogram").series.push_back(s);
    }
  }
  return groups;
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

}  // namespace

void MetricsRegistry::Register(std::string label,
                               const InstrumentedFilter* filter) {
  Register(std::move(label), [filter] { return filter->Snapshot(); });
}

void MetricsRegistry::Register(std::string label,
                               std::function<MetricsSnapshot()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.emplace_back(std::move(label), std::move(provider));
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> entries;
  entries.reserve(sources_.size());
  for (const auto& [label, provider] : sources_) {
    entries.push_back(Entry{label, provider()});
  }
  return entries;
}

std::string FormatMetricValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string RenderPrometheus(
    const std::vector<MetricsRegistry::Entry>& entries) {
  std::string out;
  for (const MetricGroup& group : GroupByMetric(entries)) {
    Append(&out, "# TYPE bbf_%s %s\n", group.name.c_str(), group.type);
    for (const Series& s : group.series) {
      if (s.counter != nullptr) {
        Append(&out, "bbf_%s{filter=\"%s\"} %llu\n", group.name.c_str(),
               s.label.c_str(),
               static_cast<unsigned long long>(s.counter->value));
      } else if (s.gauge != nullptr) {
        Append(&out, "bbf_%s{filter=\"%s\"} %s\n", group.name.c_str(),
               s.label.c_str(), FormatMetricValue(s.gauge->value).c_str());
      } else {
        const HistogramSnapshot& h = *s.histogram;
        for (size_t b = 0; b < h.bounds.size(); ++b) {
          Append(&out, "bbf_%s_bucket{filter=\"%s\",le=\"%llu\"} %llu\n",
                 group.name.c_str(), s.label.c_str(),
                 static_cast<unsigned long long>(h.bounds[b]),
                 static_cast<unsigned long long>(h.cumulative[b]));
        }
        Append(&out, "bbf_%s_bucket{filter=\"%s\",le=\"+Inf\"} %llu\n",
               group.name.c_str(), s.label.c_str(),
               static_cast<unsigned long long>(h.cumulative.back()));
        Append(&out, "bbf_%s_sum{filter=\"%s\"} %llu\n", group.name.c_str(),
               s.label.c_str(), static_cast<unsigned long long>(h.sum));
        Append(&out, "bbf_%s_count{filter=\"%s\"} %llu\n", group.name.c_str(),
               s.label.c_str(), static_cast<unsigned long long>(h.count));
      }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<MetricsRegistry::Entry>& entries) {
  std::string out = "{\n  \"filters\": [\n";
  for (size_t e = 0; e < entries.size(); ++e) {
    const MetricsRegistry::Entry& entry = entries[e];
    Append(&out, "    {\n      \"filter\": \"%s\",\n",
           entry.label.c_str());
    out += "      \"counters\": {";
    for (size_t i = 0; i < entry.snapshot.counters.size(); ++i) {
      const auto& c = entry.snapshot.counters[i];
      Append(&out, "%s\"%s\": %llu", i == 0 ? "" : ", ", c.name.c_str(),
             static_cast<unsigned long long>(c.value));
    }
    out += "},\n      \"gauges\": {";
    for (size_t i = 0; i < entry.snapshot.gauges.size(); ++i) {
      const auto& g = entry.snapshot.gauges[i];
      Append(&out, "%s\"%s\": %s", i == 0 ? "" : ", ", g.name.c_str(),
             FormatMetricValue(g.value).c_str());
    }
    out += "},\n      \"histograms\": {\n";
    for (size_t i = 0; i < entry.snapshot.histograms.size(); ++i) {
      const HistogramSnapshot& h = entry.snapshot.histograms[i];
      Append(&out, "        \"%s\": {\"bounds\": [", h.name.c_str());
      for (size_t b = 0; b < h.bounds.size(); ++b) {
        Append(&out, "%s%llu", b == 0 ? "" : ", ",
               static_cast<unsigned long long>(h.bounds[b]));
      }
      out += "], \"cumulative\": [";
      for (size_t b = 0; b < h.cumulative.size(); ++b) {
        Append(&out, "%s%llu", b == 0 ? "" : ", ",
               static_cast<unsigned long long>(h.cumulative[b]));
      }
      Append(&out, "], \"sum\": %llu, \"count\": %llu}%s\n",
             static_cast<unsigned long long>(h.sum),
             static_cast<unsigned long long>(h.count),
             i + 1 < entry.snapshot.histograms.size() ? "," : "");
    }
    Append(&out, "      }\n    }%s\n", e + 1 < entries.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace bbf::obs
