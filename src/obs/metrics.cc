#include "obs/metrics.h"

#include <algorithm>
#include <utility>

namespace bbf::obs {

HistogramSnapshot Log2Histogram::Snapshot(std::string name) const {
  HistogramSnapshot snap;
  snap.name = std::move(name);
  snap.bounds.reserve(kFiniteBounds);
  snap.cumulative.reserve(kBuckets);
  uint64_t running = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    running += buckets_[b].load(std::memory_order_relaxed);
    if (b < kFiniteBounds) snap.bounds.push_back(BoundOf(b));
    snap.cumulative.push_back(running);
  }
  snap.count = running;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

LatencyReservoir::Snapshot LatencyReservoir::Snap() const {
  Snapshot snap;
  snap.samples = next_.load(std::memory_order_relaxed);
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(snap.samples, kCapacity));
  if (n == 0) return snap;
  std::vector<uint64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(slots_[i].load(std::memory_order_relaxed));
  }
  std::sort(values.begin(), values.end());
  snap.p50_ns = values[(n - 1) / 2];
  snap.p99_ns = values[(n - 1) * 99 / 100];
  snap.max_ns = values.back();
  return snap;
}

MetricsSnapshot FilterMetrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.counters = {
      {"lookups_total", lookups.Load()},
      {"lookup_hits_total", lookup_hits.Load()},
      {"inserts_total", inserts.Load()},
      {"insert_failures_total", insert_failures.Load()},
      {"erases_total", erases.Load()},
      {"erase_failures_total", erase_failures.Load()},
      {"fp_reports_total", fp_reports.Load()},
      {"expansions_total", expansions.Load()},
      {"adapt_events_total", adapt_events.Load()},
  };
  const ObservedFprEstimator::Snapshot fpr_snap = fpr.Snap();
  snap.counters.push_back(
      {"sampled_negative_lookups_total", fpr_snap.negative_lookups});
  snap.counters.push_back(
      {"sampled_false_positives_total", fpr_snap.false_positives});
  snap.counters.push_back(
      {"sampled_positive_lookups_total", fpr_snap.positive_lookups});
  snap.counters.push_back(
      {"sampled_false_negatives_total", fpr_snap.false_negatives});

  const LatencyReservoir::Snapshot lat = lookup_latency.Snap();
  snap.gauges = {
      {"configured_epsilon", configured_epsilon},
      {"structural_event_sample_every",
       static_cast<double>(kStructuralSampleEvery)},
      {"observed_fpr", fpr_snap.observed_fpr},
      // 95% Wilson interval bounds next to the point estimate: dashboards
      // and the Tuner both need to know when observed_fpr is noise.
      {"observed_fpr_ci_low", fpr_snap.ci_low},
      {"observed_fpr_ci_high", fpr_snap.ci_high},
      {"fp_repeat_max", static_cast<double>(fpr_snap.max_fp_repeats)},
      {"fp_repeated_keys", static_cast<double>(fpr_snap.fp_repeated_keys)},
      {"sampled_tracked_keys", static_cast<double>(fpr_snap.tracked_keys)},
      {"lookup_latency_samples", static_cast<double>(lat.samples)},
      {"lookup_latency_p50_ns", static_cast<double>(lat.p50_ns)},
      {"lookup_latency_p99_ns", static_cast<double>(lat.p99_ns)},
      {"lookup_latency_max_ns", static_cast<double>(lat.max_ns)},
  };

  snap.histograms.push_back(kick_chain.Snapshot("kick_chain_length"));
  snap.histograms.push_back(probe_length.Snapshot("probe_run_length"));
  snap.histograms.push_back(batch_size.Snapshot("batch_size"));
  return snap;
}

}  // namespace bbf::obs
