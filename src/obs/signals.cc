#include "obs/signals.h"

namespace bbf::obs {

TunerSignals PullTunerSignals(const InstrumentedFilter& filter,
                              uint64_t min_negative_lookups) {
  TunerSignals s;
  const FilterMetrics& m = filter.metrics();
  s.configured_epsilon = m.configured_epsilon;
  s.fpr = m.fpr.Snap();
  s.load_factor = filter.LoadFactor();
  s.num_keys = filter.NumKeys();
  s.fp_reports = m.fp_reports.Load();
  s.adapt_events = m.adapt_events.Load();
  s.adaptive = filter.adaptive();
  if (const auto* sharded =
          dynamic_cast<const ShardedFilter*>(&filter.inner())) {
    s.sharded = true;
    s.shards = sharded->Stats();
    s.hottest_shard = sharded->HottestShard();
    s.worst_fpr_shard = sharded->WorstFprShard(min_negative_lookups);
    s.total_rejected = sharded->TotalRejected();
    s.total_migrations = sharded->TotalMigrations();
  }
  return s;
}

}  // namespace bbf::obs
