#include "tuning/tuner.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/factory.h"
#include "core/filter_io.h"
#include "core/registry.h"

namespace bbf::tuning {

namespace {

constexpr size_t kHistoryCap = 64;

// Reasons carry numbers; keep a stable, greppable formatting.
std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* ToString(TunerTrigger trigger) {
  switch (trigger) {
    case TunerTrigger::kNone:
      return "none";
    case TunerTrigger::kRepeatedFp:
      return "repeated-fp";
    case TunerTrigger::kFprBreach:
      return "fpr-breach";
    case TunerTrigger::kLoadKnee:
      return "load-knee";
    case TunerTrigger::kShardSkew:
      return "shard-skew";
  }
  return "unknown";
}

const char* ToString(TunerAction action) {
  switch (action) {
    case TunerAction::kNone:
      return "none";
    case TunerAction::kMigrateAdaptive:
      return "migrate-adaptive";
    case TunerAction::kMigrateStacked:
      return "migrate-stacked";
    case TunerAction::kMigrateTighterFpr:
      return "migrate-tighter-fpr";
    case TunerAction::kRebalanceShard:
      return "rebalance-shard";
  }
  return "unknown";
}

Tuner::Tuner(obs::InstrumentedFilter& filter, TunerConfig config)
    : filter_(filter),
      sharded_(dynamic_cast<ShardedFilter*>(&filter.inner())),
      config_(std::move(config)),
      // Start past the cooldown so the first solid decision acts.
      polls_since_action_(config_.cooldown_polls) {
  InstallTagBuilder();
}

void Tuner::InstallTagBuilder() {
  if (sharded_ == nullptr) return;
  // Resolve stacked-serving shards ourselves (the tag is deliberately
  // not in the global registry); everything else goes through it.
  sharded_->SetSnapshotTagBuilder(
      [](std::string_view tag, uint64_t capacity) -> std::unique_ptr<Filter> {
        if (tag == "stacked-serving") {
          return std::make_unique<StackedServingFilter>(capacity);
        }
        return CreateFilterForTag(tag, capacity);
      });
}

TunerDecision Tuner::Evaluate(const obs::TunerSignals& s) const {
  TunerDecision d;
  if (!s.sharded) {
    d.reason = "inner filter is not a ShardedFilter; tuner idle";
    return d;
  }
  const size_t n = s.shards.size();

  // --- 1. Adversarial repeats: the strongest signal. A per-shard sketch
  // hit names the shard directly; the whole-filter sketch (always on via
  // InstrumentedFilter) falls back to the worst-FPR shard.
  size_t repeat_shard = ShardedFilter::kNoShard;
  uint64_t repeat_keys = 0;
  auto lacks_adapt = [](const std::string& family) {
    const FilterEntry* e = FindFilterEntry(family);
    return e == nullptr || !e->caps.supports_adapt;
  };
  for (size_t i = 0; i < n; ++i) {
    const ShardedFilter::ShardStats& sh = s.shards[i];
    if (sh.fpr_repeated_keys >= config_.repeat_threshold &&
        sh.fpr_repeated_keys > repeat_keys && lacks_adapt(sh.family)) {
      repeat_shard = i;
      repeat_keys = sh.fpr_repeated_keys;
    }
  }
  if (repeat_shard == ShardedFilter::kNoShard &&
      s.fpr.fp_repeated_keys >= config_.repeat_threshold &&
      s.worst_fpr_shard != ShardedFilter::kNoShard &&
      lacks_adapt(s.shards[s.worst_fpr_shard].family)) {
    repeat_shard = s.worst_fpr_shard;
    repeat_keys = s.fpr.fp_repeated_keys;
  }
  if (repeat_shard != ShardedFilter::kNoShard) {
    for (const std::string& candidate : config_.adapt_candidates) {
      const FilterEntry* e = FindFilterEntry(candidate);
      if (e != nullptr && e->in_factory && e->caps.supports_adapt) {
        d.action = TunerAction::kMigrateAdaptive;
        d.trigger = TunerTrigger::kRepeatedFp;
        d.shard = repeat_shard;
        d.from_family = s.shards[repeat_shard].family;
        d.to_family = candidate;
        d.target_fpr = config_.fpr_budget;
        d.reason = std::to_string(repeat_keys) +
                   " repeat-hot false-positive keys on shard " +
                   std::to_string(repeat_shard) + " (" + d.from_family +
                   " cannot adapt)";
        return d;
      }
    }
    // No registered adaptive family: fall through to the FPR policies.
  }

  // --- 2. FPR provably over budget: ci_low (not the point estimate)
  // above budget with enough scored negatives.
  size_t breach_shard = ShardedFilter::kNoShard;
  double worst_ci_low = config_.fpr_budget;
  for (size_t i = 0; i < n; ++i) {
    const ShardedFilter::ShardStats& sh = s.shards[i];
    if (sh.observed_fpr >= 0.0 &&
        sh.fpr_negative_lookups >= config_.min_negative_samples &&
        sh.fpr_ci_low > worst_ci_low) {
      breach_shard = i;
      worst_ci_low = sh.fpr_ci_low;
    }
  }
  if (breach_shard != ShardedFilter::kNoShard) {
    const ShardedFilter::ShardStats& sh = s.shards[breach_shard];
    const std::string detail =
        "shard " + std::to_string(breach_shard) + " observed FPR " +
        FmtDouble(sh.observed_fpr) + " (ci_low " + FmtDouble(sh.fpr_ci_low) +
        ") above budget " + FmtDouble(config_.fpr_budget);
    if (config_.training_sample) {
      d.action = TunerAction::kMigrateStacked;
      d.trigger = TunerTrigger::kFprBreach;
      d.shard = breach_shard;
      d.from_family = sh.family;
      d.to_family = "stacked-serving";
      d.target_fpr = config_.fpr_budget;
      d.reason = detail + "; training sample available, stacking";
      return d;
    }
    const FilterEntry* e = FindFilterEntry(sh.family);
    if (e != nullptr && e->in_factory) {
      d.action = TunerAction::kMigrateTighterFpr;
      d.trigger = TunerTrigger::kFprBreach;
      d.shard = breach_shard;
      d.from_family = sh.family;
      d.to_family = sh.family;
      d.target_fpr = config_.fpr_budget * config_.tighten_factor;
      d.reason = detail + "; rebuilding at epsilon " + FmtDouble(d.target_fpr);
      return d;
    }
  }

  // --- 3. Load knee: the shard is about to degrade (chain/reject).
  size_t knee_shard = ShardedFilter::kNoShard;
  double knee_load = config_.load_knee;
  for (size_t i = 0; i < n; ++i) {
    const ShardedFilter::ShardStats& sh = s.shards[i];
    const FilterEntry* e = FindFilterEntry(sh.family);
    if (sh.load_factor >= knee_load && e != nullptr && e->in_factory) {
      knee_shard = i;
      knee_load = sh.load_factor;
    }
  }
  if (knee_shard != ShardedFilter::kNoShard) {
    d.action = TunerAction::kRebalanceShard;
    d.trigger = TunerTrigger::kLoadKnee;
    d.shard = knee_shard;
    d.from_family = s.shards[knee_shard].family;
    d.to_family = d.from_family;
    d.target_fpr = config_.fpr_budget;
    d.capacity_boost = 2;
    d.reason = "shard " + std::to_string(knee_shard) + " load factor " +
               FmtDouble(knee_load) + " past knee " +
               FmtDouble(config_.load_knee);
    return d;
  }

  // --- 4. Skew: one shard holds a multiple of the mean key count.
  if (n > 1) {
    uint64_t total = 0;
    for (const ShardedFilter::ShardStats& sh : s.shards) total += sh.num_keys;
    const double mean = static_cast<double>(total) / static_cast<double>(n);
    const ShardedFilter::ShardStats& hot = s.shards[s.hottest_shard];
    const FilterEntry* e = FindFilterEntry(hot.family);
    if (hot.num_keys >= config_.skew_min_keys && mean > 0.0 &&
        static_cast<double>(hot.num_keys) > config_.skew_ratio * mean &&
        e != nullptr && e->in_factory) {
      d.action = TunerAction::kRebalanceShard;
      d.trigger = TunerTrigger::kShardSkew;
      d.shard = s.hottest_shard;
      d.from_family = hot.family;
      d.to_family = hot.family;
      d.target_fpr = config_.fpr_budget;
      d.capacity_boost = 2;
      d.reason = "shard " + std::to_string(s.hottest_shard) + " holds " +
                 std::to_string(hot.num_keys) + " keys vs mean " +
                 FmtDouble(mean) + " (ratio budget " +
                 FmtDouble(config_.skew_ratio) + ")";
      return d;
    }
  }

  d.reason = "no policy tripped";
  return d;
}

Tuner::PollResult Tuner::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  return PollLocked();
}

Tuner::PollResult Tuner::PollLocked() {
  ++counters_.polls;
  PollResult result;
  if (sharded_ == nullptr) {
    result.decision.reason = "inner filter is not a ShardedFilter";
    return result;
  }
  const obs::TunerSignals signals =
      obs::PullTunerSignals(filter_, config_.min_negative_samples);
  result.decision = Evaluate(signals);
  if (result.decision.action == TunerAction::kNone) {
    ++polls_since_action_;
    return result;
  }
  if (polls_since_action_ < config_.cooldown_polls) {
    ++polls_since_action_;
    result.decision.reason += " [cooling down, not applied]";
    return result;
  }
  ++counters_.decisions;
  switch (result.decision.trigger) {
    case TunerTrigger::kRepeatedFp:
      ++counters_.trigger_repeat;
      break;
    case TunerTrigger::kFprBreach:
      ++counters_.trigger_fpr;
      break;
    case TunerTrigger::kLoadKnee:
      ++counters_.trigger_load;
      break;
    case TunerTrigger::kShardSkew:
      ++counters_.trigger_skew;
      break;
    case TunerTrigger::kNone:
      break;
  }
  result.report = ApplyLocked(result.decision);
  result.acted = true;
  if (result.report.ok) {
    ++counters_.migrations;
    counters_.last_pause_ns = result.report.pause_ns;
    counters_.last_shard = result.decision.shard;
    polls_since_action_ = 0;
  } else {
    ++counters_.migration_failures;
    result.decision.reason += " [migration failed: " + result.report.error +
                              "]";
  }
  history_.push_back(result.decision);
  if (history_.size() > kHistoryCap) {
    history_.erase(history_.begin(), history_.end() - kHistoryCap);
  }
  return result;
}

ShardedFilter::MigrationReport Tuner::ApplyLocked(
    const TunerDecision& decision) {
  switch (decision.action) {
    case TunerAction::kMigrateAdaptive:
    case TunerAction::kMigrateTighterFpr:
    case TunerAction::kRebalanceShard: {
      const std::string family = decision.to_family;
      const double fpr = decision.target_fpr;
      const uint64_t boost = std::max<uint64_t>(decision.capacity_boost, 1);
      return sharded_->MigrateShard(
          decision.shard, [family, fpr, boost](uint64_t capacity) {
            return CreateFilter(family, capacity * boost, fpr);
          });
    }
    case TunerAction::kMigrateStacked: {
      std::vector<uint64_t> sample;
      if (config_.training_sample) sample = config_.training_sample();
      StackedServingFilter::Params params = config_.stacked;
      params.fpr_budget =
          decision.target_fpr > 0.0 ? decision.target_fpr : config_.fpr_budget;
      auto builder = [sample = std::move(sample), params](
                         std::span<const FilterJournalOp> ops,
                         uint64_t capacity) -> std::unique_ptr<Filter> {
        // Stacking is insert-only: a journaled erase means the workload
        // can delete, which the static front cannot unlearn — abort and
        // leave the shard on its current family.
        for (const FilterJournalOp& op : ops) {
          if (op.erase) return nullptr;
        }
        return std::make_unique<StackedServingFilter>(
            StackedServingFilter::NetPositives(ops), sample, capacity,
            params);
      };
      // Chained generations and quarantine rebuilds after the swap go to
      // a self-expanding overflow family at the same budget.
      auto overflow_factory = [params](uint64_t capacity) {
        return std::unique_ptr<Filter>(std::make_unique<ScalableBloomFilter>(
            std::max<uint64_t>(capacity / 8, 64), params.fpr_budget));
      };
      return sharded_->MigrateShard(decision.shard, std::move(builder),
                                    std::move(overflow_factory));
    }
    case TunerAction::kNone:
      break;
  }
  return {};
}

obs::MetricsSnapshot Tuner::MetricsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::MetricsSnapshot snap;
  snap.counters = {
      {"tuner_polls_total", counters_.polls},
      {"tuner_decisions_total", counters_.decisions},
      {"tuner_migrations_total", counters_.migrations},
      {"tuner_migration_failures_total", counters_.migration_failures},
      {"tuner_trigger_repeated_fp_total", counters_.trigger_repeat},
      {"tuner_trigger_fpr_breach_total", counters_.trigger_fpr},
      {"tuner_trigger_load_knee_total", counters_.trigger_load},
      {"tuner_trigger_shard_skew_total", counters_.trigger_skew},
  };
  const int cooldown_left =
      std::max(0, config_.cooldown_polls - polls_since_action_);
  snap.gauges = {
      {"tuner_last_pause_ns", static_cast<double>(counters_.last_pause_ns)},
      {"tuner_last_migrated_shard",
       static_cast<double>(counters_.last_shard)},
      {"tuner_cooldown_polls_left", static_cast<double>(cooldown_left)},
  };
  return snap;
}

void Tuner::RegisterMetrics(obs::MetricsRegistry& registry,
                            std::string label) {
  registry.Register(std::move(label),
                    [this]() { return MetricsSnapshot(); });
}

std::string Tuner::StatusText() const {
  std::ostringstream os;
  if (sharded_ == nullptr) {
    return "tuner idle: inner filter is not a ShardedFilter\n";
  }
  const obs::TunerSignals s =
      obs::PullTunerSignals(filter_, config_.min_negative_samples);
  {
    std::lock_guard<std::mutex> lock(mu_);
    os << "tuner polls=" << counters_.polls
       << " decisions=" << counters_.decisions
       << " migrations=" << counters_.migrations
       << " failures=" << counters_.migration_failures
       << " last_pause_ns=" << counters_.last_pause_ns << "\n";
  }
  os << "budget fpr=" << FmtDouble(config_.fpr_budget)
     << " observed=" << FmtDouble(s.fpr.observed_fpr) << " ci=["
     << FmtDouble(s.fpr.ci_low) << "," << FmtDouble(s.fpr.ci_high)
     << "] repeats=" << s.fpr.fp_repeated_keys << "\n";
  for (size_t i = 0; i < s.shards.size(); ++i) {
    const ShardedFilter::ShardStats& sh = s.shards[i];
    os << "shard " << i << ": family=" << sh.family
       << " keys=" << sh.num_keys << " load=" << FmtDouble(sh.load_factor)
       << " gens=" << sh.generations << " migrations=" << sh.migrations;
    if (sh.observed_fpr >= 0.0) {
      os << " fpr=" << FmtDouble(sh.observed_fpr)
         << " neg=" << sh.fpr_negative_lookups
         << " repeats=" << sh.fpr_repeated_keys;
    }
    os << "\n";
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const TunerDecision& d : history_) {
    os << "decision: " << ToString(d.action) << " shard=" << d.shard << " "
       << d.from_family << "->" << d.to_family << " ["
       << ToString(d.trigger) << "] " << d.reason << "\n";
  }
  return os.str();
}

std::function<std::string(uint8_t)> Tuner::WireControl() {
  return [this](uint8_t cmd) -> std::string {
    switch (cmd) {
      case 0:
        return StatusText();
      case 1: {
        PollResult r = Poll();
        std::ostringstream os;
        os << "action=" << ToString(r.decision.action)
           << " trigger=" << ToString(r.decision.trigger)
           << " shard=" << r.decision.shard << " acted=" << (r.acted ? 1 : 0)
           << " ok=" << (r.report.ok ? 1 : 0)
           << " pause_ns=" << r.report.pause_ns << " reason="
           << r.decision.reason;
        return os.str();
      }
      default:
        return "unknown tuner command " + std::to_string(cmd);
    }
  };
}

std::vector<TunerDecision> Tuner::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace bbf::tuning
