#include "tuning/stacked_serving.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/hash.h"
#include "util/serialize.h"

namespace bbf::tuning {

namespace {
constexpr uint64_t kPayloadVersion = 1;
// A migrated shard's journal is already capped at journal_cap (2^22); a
// length field past this in a snapshot is corruption.
constexpr uint64_t kMaxKeys = uint64_t{1} << 24;
}  // namespace

StackedServingFilter::StackedServingFilter(
    std::vector<uint64_t> positive_keys, std::vector<uint64_t> hot_negative_keys,
    uint64_t capacity, const Params& params)
    : positives_(std::move(positive_keys)),
      hot_negatives_(std::move(hot_negative_keys)),
      capacity_(std::max<uint64_t>(capacity, 1)),
      params_(params),
      overflow_(MakeOverflow(capacity_, params_)) {
  BuildFront();
}

StackedServingFilter::StackedServingFilter(uint64_t capacity)
    : capacity_(std::max<uint64_t>(capacity, 1)),
      overflow_(MakeOverflow(capacity_, params_)) {}

std::vector<uint64_t> StackedServingFilter::NetPositives(
    std::span<const FilterJournalOp> ops) {
  std::unordered_map<uint64_t, int64_t> net;
  net.reserve(ops.size());
  for (const FilterJournalOp& op : ops) {
    net[op.mix] += op.erase ? -1 : 1;
  }
  std::vector<uint64_t> keys;
  keys.reserve(net.size());
  for (const auto& [mix, count] : net) {
    if (count > 0) keys.push_back(InverseMix64(mix));
  }
  return keys;
}

void StackedServingFilter::BuildFront() {
  front_ = std::make_unique<StackedFilter>(
      positives_, hot_negatives_, params_.stacked_bits_per_key, params_.layers);
}

std::unique_ptr<ScalableBloomFilter> StackedServingFilter::MakeOverflow(
    uint64_t capacity, const Params& params) {
  // Sized small: the front already holds every key known at build time,
  // so the overflow only sees post-migration inserts.
  const uint64_t initial = std::max<uint64_t>(capacity / 8, 64);
  return std::make_unique<ScalableBloomFilter>(initial, params.fpr_budget);
}

bool StackedServingFilter::Insert(HashedKey key) {
  return overflow_->Insert(key);
}

bool StackedServingFilter::Contains(HashedKey key) const {
  if (front_ != nullptr && front_->Contains(key)) return true;
  return overflow_->Contains(key);
}

size_t StackedServingFilter::SpaceBits() const {
  const size_t retained = 64 * (positives_.size() + hot_negatives_.size());
  return (front_ ? front_->SpaceBits() : 0) + overflow_->SpaceBits() + retained;
}

uint64_t StackedServingFilter::NumKeys() const {
  return positives_.size() + overflow_->NumKeys();
}

bool StackedServingFilter::SavePayload(std::ostream& os) const {
  WriteU64(os, kPayloadVersion);
  WriteU64(os, capacity_);
  WriteDouble(os, params_.fpr_budget);
  WriteDouble(os, params_.stacked_bits_per_key);
  WriteI32(os, params_.layers);
  WriteU64(os, positives_.size());
  for (uint64_t k : positives_) WriteU64(os, k);
  WriteU64(os, hot_negatives_.size());
  for (uint64_t k : hot_negatives_) WriteU64(os, k);
  // The overflow rides along as its own self-describing frame, so its
  // family owns its format.
  return overflow_->Save(os) && os.good();
}

bool StackedServingFilter::LoadPayload(std::istream& is) {
  uint64_t version;
  uint64_t capacity;
  Params params;
  if (!ReadU64(is, &version) || version != kPayloadVersion) return false;
  if (!ReadU64Capped(is, &capacity, kMaxSnapshotElements)) return false;
  if (!ReadDouble(is, &params.fpr_budget) ||
      !ReadDouble(is, &params.stacked_bits_per_key) ||
      !ReadI32(is, &params.layers)) {
    return false;
  }
  if (params.fpr_budget <= 0.0 || params.fpr_budget >= 1.0 ||
      params.stacked_bits_per_key <= 0.0 ||
      params.stacked_bits_per_key > 64.0 || params.layers < 1 ||
      params.layers > 15) {
    return false;
  }
  auto read_keys = [&is](std::vector<uint64_t>* out) {
    uint64_t n;
    if (!ReadU64Capped(is, &n, kMaxKeys)) return false;
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t k;
      if (!ReadU64(is, &k)) return false;
      out->push_back(k);
    }
    return true;
  };
  std::vector<uint64_t> positives;
  std::vector<uint64_t> negatives;
  if (!read_keys(&positives) || !read_keys(&negatives)) return false;
  auto overflow = MakeOverflow(std::max<uint64_t>(capacity, 1), params);
  if (!overflow->Load(is)) return false;
  // Every piece parsed; commit.
  positives_ = std::move(positives);
  hot_negatives_ = std::move(negatives);
  capacity_ = std::max<uint64_t>(capacity, 1);
  params_ = params;
  overflow_ = std::move(overflow);
  BuildFront();
  return true;
}

}  // namespace bbf::tuning
