#ifndef BBF_TUNING_STACKED_SERVING_H_
#define BBF_TUNING_STACKED_SERVING_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bloom/scalable_bloom.h"
#include "core/filter.h"
#include "core/sharded_filter.h"
#include "stacked/stacked_filter.h"

namespace bbf::tuning {

/// A StackedFilter (§2.8) wrapped up as a servable Filter — the Tuner's
/// migration target when a training sample of hot negative keys is
/// available. The stacked front is static (built once from the journal's
/// net positives plus the sample); inserts that land after the build go
/// to a scalable-bloom overflow sized at the same FPR budget, so the
/// shard keeps admitting keys while hot negatives enjoy the stacked
/// front's exponentially reduced false-positive rate.
///
/// Deliberately NOT registered in the global filter registry: the tag
/// only means something to deployments running a Tuner, which installs a
/// matching TagBuilder on the ShardedFilter (Tuner::InstallTagBuilder)
/// so v3 snapshots holding stacked shards reload. Erase is unsupported
/// (the front cannot unlearn a key) — the Tuner only stacks shards whose
/// journal shows an insert-only workload.
class StackedServingFilter : public Filter {
 public:
  struct Params {
    /// FPR budget for the overflow filter (and the approximate per-layer
    /// budget of the stacked front, via bits_per_key).
    double fpr_budget = 0.01;
    /// Bits per key for each stacked layer.
    double stacked_bits_per_key = 8.0;
    /// Stacked layers (odd, so the deepest layer is a positive side).
    int layers = 3;
  };

  /// Builds the stacked front from raw keys (both sides are re-mixed at
  /// the hash-once boundary, exactly like direct StackedFilter use).
  StackedServingFilter(std::vector<uint64_t> positive_keys,
                       std::vector<uint64_t> hot_negative_keys,
                       uint64_t capacity, const Params& params);

  /// Empty shell for snapshot loading: no front, an empty overflow.
  /// LoadPayload restores the real structure.
  explicit StackedServingFilter(uint64_t capacity);

  /// Net positive keys of a migration journal snapshot, as raw keys
  /// (InverseMix64 of the stored mixes — exact, Mix64 is bijective).
  /// Erases cancel earlier inserts multiset-style.
  static std::vector<uint64_t> NetPositives(
      std::span<const FilterJournalOp> ops);

  using Filter::Contains;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override;
  double LoadFactor() const override { return overflow_->LoadFactor(); }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  std::string_view Name() const override { return "stacked-serving"; }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

  size_t front_layers() const { return front_ ? front_->num_layers() : 0; }
  uint64_t front_keys() const { return positives_.size(); }
  const Params& params() const { return params_; }

 private:
  void BuildFront();
  static std::unique_ptr<ScalableBloomFilter> MakeOverflow(
      uint64_t capacity, const Params& params);

  // Both key vectors are retained: they are the serialization format (the
  // stacked front has no incremental snapshot of its own) and they make
  // rebuild-on-load exact. Counted in SpaceBits — they are real memory
  // the serving structure needs.
  std::vector<uint64_t> positives_;
  std::vector<uint64_t> hot_negatives_;
  uint64_t capacity_;
  Params params_;
  std::unique_ptr<StackedFilter> front_;
  std::unique_ptr<ScalableBloomFilter> overflow_;
};

}  // namespace bbf::tuning

#endif  // BBF_TUNING_STACKED_SERVING_H_
