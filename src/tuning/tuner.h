#ifndef BBF_TUNING_TUNER_H_
#define BBF_TUNING_TUNER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/sharded_filter.h"
#include "obs/export.h"
#include "obs/instrumented.h"
#include "obs/signals.h"
#include "tuning/stacked_serving.h"

namespace bbf::tuning {

/// Why a policy tripped.
enum class TunerTrigger : uint8_t {
  kNone = 0,
  kRepeatedFp,  // Adversarial-repeat sketch found hammered FP keys.
  kFprBreach,   // Observed FPR provably (ci_low) above budget.
  kLoadKnee,    // Shard's newest generation past the load knee.
  kShardSkew,   // Hottest shard holds a skew_ratio multiple of the mean.
};

/// What the decision table chose to do about it.
enum class TunerAction : uint8_t {
  kNone = 0,
  kMigrateAdaptive,   // Move the shard to a supports_adapt family.
  kMigrateStacked,    // Front the shard with a stacked filter.
  kMigrateTighterFpr, // Rebuild the same family at a tighter epsilon.
  kRebalanceShard,    // Rebuild the same family with more capacity.
};

const char* ToString(TunerTrigger trigger);
const char* ToString(TunerAction action);

/// One decision of the table — pure data, so tests can drive Evaluate()
/// on synthetic signals without touching a live filter.
struct TunerDecision {
  TunerAction action = TunerAction::kNone;
  TunerTrigger trigger = TunerTrigger::kNone;
  size_t shard = ShardedFilter::kNoShard;
  std::string from_family;
  std::string to_family;
  double target_fpr = 0.0;
  uint64_t capacity_boost = 1;  // Successor capacity multiplier.
  std::string reason;           // Human-readable, for logs and the wire.
};

/// Policy knobs. Defaults are deliberately conservative: the Tuner only
/// acts on statistically solid evidence (Wilson ci_low, a minimum
/// negative-sample count) and cools down between actions.
struct TunerConfig {
  /// Total FPR budget the serving filter must stay under.
  double fpr_budget = 0.01;
  /// Scored negative lookups a shard needs before its CI is trusted.
  uint64_t min_negative_samples = 512;
  /// Newest-generation load factor that counts as "past the knee".
  double load_knee = 0.95;
  /// Hottest-shard num_keys over the mean that counts as skew.
  double skew_ratio = 4.0;
  /// Minimum keys in the hottest shard before skew is actionable.
  uint64_t skew_min_keys = 1024;
  /// Distinct repeat-sketch-hot keys that count as adversarial.
  uint64_t repeat_threshold = 2;
  /// Polls that must pass after an action before the next one.
  int cooldown_polls = 2;
  /// Epsilon multiplier for the tighter rebuild on a plain FPR breach.
  double tighten_factor = 0.25;
  /// Families considered for the adaptive migration, in preference
  /// order; each is checked against the registry's supports_adapt bit.
  std::vector<std::string> adapt_candidates{"adaptive-cuckoo",
                                            "adaptive-quotient"};
  /// When set, a training sample of hot negative raw keys is available
  /// and FPR breaches migrate to a stacked front instead of a tighter
  /// rebuild. Called at migration time.
  std::function<std::vector<uint64_t>()> training_sample;
  /// Parameters for the stacked front (fpr_budget is overridden with the
  /// budget above).
  StackedServingFilter::Params stacked;
};

/// The closed loop from observability to the registry (DESIGN.md §15):
/// polls an InstrumentedFilter's signals, walks a registry-driven
/// decision table, and migrates individual shards online via
/// ShardedFilter::MigrateShard when a policy trips. The wrapped filter's
/// inner filter must be a ShardedFilter with EnableMigration() armed;
/// otherwise every poll is a no-op with a reason.
///
/// Thread-safety: Poll/Evaluate/status may be called from any thread
/// (one internal mutex serializes the tuner; serving threads only ever
/// contend on the shard being swapped, and only for the migration
/// pause). Typical deployments run Poll on a timer thread and expose
/// WireControl() through the network front end.
class Tuner {
 public:
  /// `filter` must outlive the Tuner. Installs a stacked-serving-aware
  /// snapshot TagBuilder on the inner ShardedFilter so v3 snapshots with
  /// migrated shards reload.
  explicit Tuner(obs::InstrumentedFilter& filter, TunerConfig config = {});

  /// False when the wrapped inner filter is not a ShardedFilter.
  bool valid() const { return sharded_ != nullptr; }

  /// Pure decision table over one signal pull — no side effects, no
  /// cooldown. Exposed so tests can table-drive it.
  TunerDecision Evaluate(const obs::TunerSignals& signals) const;

  /// One tick of the loop: pull signals, evaluate, and (cooldown
  /// permitting) apply the decision by migrating the chosen shard.
  struct PollResult {
    TunerDecision decision;
    bool acted = false;
    ShardedFilter::MigrationReport report;  // Meaningful when acted.
  };
  PollResult Poll();

  /// Lifecycle counters and last-action gauges, exporter-ready with the
  /// tuner_ name prefix; feed to MetricsRegistry::Register for both the
  /// Prometheus and JSON exporters.
  obs::MetricsSnapshot MetricsSnapshot() const;
  void RegisterMetrics(obs::MetricsRegistry& registry, std::string label);

  /// Human-readable status: per-shard family/FPR table plus the decision
  /// history tail. Served by the network front end's tuner-ctl opcode.
  std::string StatusText() const;

  /// Control surface for the network front end (kTunerCtl): cmd 0 =
  /// status text, cmd 1 = poll once and describe the outcome. Returned
  /// as a function so apps/net never links against bbf_tuning.
  std::function<std::string(uint8_t)> WireControl();

  /// Decisions applied so far (most recent last, capped).
  std::vector<TunerDecision> History() const;

  const TunerConfig& config() const { return config_; }

 private:
  PollResult PollLocked();
  ShardedFilter::MigrationReport ApplyLocked(const TunerDecision& decision);
  void InstallTagBuilder();

  obs::InstrumentedFilter& filter_;
  ShardedFilter* sharded_;  // filter_'s inner, when sharded.
  TunerConfig config_;

  mutable std::mutex mu_;
  int polls_since_action_;
  std::vector<TunerDecision> history_;
  struct Counters {
    uint64_t polls = 0;
    uint64_t decisions = 0;
    uint64_t migrations = 0;
    uint64_t migration_failures = 0;
    uint64_t trigger_repeat = 0;
    uint64_t trigger_fpr = 0;
    uint64_t trigger_load = 0;
    uint64_t trigger_skew = 0;
    uint64_t last_pause_ns = 0;
    uint64_t last_shard = 0;
  } counters_;
};

}  // namespace bbf::tuning

#endif  // BBF_TUNING_TUNER_H_
