#include "stacked/stacked_filter.h"

#include <algorithm>
#include <utility>

namespace bbf {

StackedFilter::StackedFilter(const std::vector<uint64_t>& positives,
                             const std::vector<uint64_t>& hot_negatives,
                             double bits_per_key, int layers) {
  // Hash-once boundary: both sides are mixed here, then every layer
  // build and probe runs on canonical keys.
  auto hash_side = [](const std::vector<uint64_t>& raw) {
    std::vector<HashedKey> side;
    side.reserve(raw.size());
    for (uint64_t k : raw) side.emplace_back(k);
    return side;
  };
  // side_a feeds the next layer; side_b is filtered through it.
  std::vector<HashedKey> side_a = hash_side(positives);
  std::vector<HashedKey> side_b = hash_side(hot_negatives);
  for (int i = 0; i < layers; ++i) {
    auto filter = std::make_unique<BloomFilter>(
        std::max<uint64_t>(side_a.size(), 1), bits_per_key, 0,
        /*hash_seed=*/0x57AC + i);
    for (HashedKey k : side_a) filter->Insert(k);
    std::vector<HashedKey> survivors;
    for (HashedKey k : side_b) {
      if (filter->Contains(k)) survivors.push_back(k);
    }
    layers_.push_back(std::move(filter));
    side_b = std::move(side_a);
    side_a = std::move(survivors);
    if (side_a.empty()) break;
  }
}

bool StackedFilter::Contains(HashedKey key) const {
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i]->Contains(key)) {
      return i % 2 == 1;  // Failing an even layer refutes membership.
    }
  }
  // Survived all layers: the deepest layer's side wins.
  return layers_.size() % 2 == 1;
}

size_t StackedFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& f : layers_) bits += f->SpaceBits();
  return bits;
}

}  // namespace bbf
