#ifndef BBF_STACKED_LEARNED_FILTER_H_
#define BBF_STACKED_LEARNED_FILTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/filter.h"
#include "util/elias_fano.h"

namespace bbf {

/// Learned filter in the Kraska et al. mould (§2.8): a model trained on
/// the key distribution predicts membership; keys the model misses go to
/// a small backup Bloom filter, preserving the no-false-negative
/// contract. Our model is the classic piecewise stand-in for the paper's
/// neural classifier: dense key intervals (runs of keys with small gaps)
/// predict positive for anything inside them.
///
/// Reproduced trade-off: on *clustered* key sets the model covers most
/// keys with a handful of intervals, so the backup filter — and hence the
/// total space — shrinks well below a plain Bloom filter; on uniform keys
/// the model finds nothing and the filter degenerates to the backup
/// Bloom. Negative queries that fall *inside* dense intervals are
/// guaranteed false positives — the distribution-dependence §2.8 warns
/// about.
class LearnedFilter : public Filter {
 public:
  /// Builds over `keys`. A dense interval is a maximal run of >=
  /// `min_run` keys with consecutive gaps <= `max_gap`; remaining keys go
  /// to a Bloom filter with `backup_bits_per_key`.
  LearnedFilter(const std::vector<uint64_t>& keys, uint64_t max_gap,
                uint64_t min_run, double backup_bits_per_key);

  using Filter::Contains;
  using Filter::Insert;

  bool Insert(HashedKey) override { return false; }  // Static (trained).
  /// The interval model consults the *raw* key space, recovered from the
  /// canonical hash via the Mix64 bijection; the backup Bloom consumes
  /// the canonical key directly.
  bool Contains(HashedKey key) const override;
  size_t SpaceBits() const override;
  uint64_t NumKeys() const override { return num_keys_; }
  /// Static: full by construction (trained over its whole key set).
  double LoadFactor() const override { return 1.0; }
  FilterClass Class() const override { return FilterClass::kStatic; }
  std::string_view Name() const override { return "learned"; }

  size_t num_intervals() const { return num_intervals_; }
  uint64_t modeled_keys() const { return modeled_keys_; }

 private:
  // Interval ends/starts interleaved in one monotone sequence:
  // [s0, e0, s1, e1, ...]; x is inside an interval iff the number of
  // boundaries <= x is odd-indexed ... resolved via NextGeq.
  EliasFano boundaries_;
  size_t num_intervals_ = 0;
  uint64_t modeled_keys_ = 0;
  std::unique_ptr<BloomFilter> backup_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_STACKED_LEARNED_FILTER_H_
