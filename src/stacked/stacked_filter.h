#ifndef BBF_STACKED_STACKED_FILTER_H_
#define BBF_STACKED_STACKED_FILTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/key.h"

namespace bbf {

/// Stacked filter [Deeds, Hentschel, Idreos 2020] (§2.8): exploits a
/// sample of frequently queried *non-existing* keys. Layer 1 holds the
/// positives; layer 2 holds the hot negatives that pass layer 1; layer 3
/// holds the positives that pass layer 2; and so on, alternating. A query
/// walks down until some layer rejects it — failing an odd layer means
/// "absent", failing an even layer means "present". Each extra layer pair
/// multiplies the false-positive rate of the *hot* negatives by another
/// Bloom factor: the "exponentially decrease the false positive rate when
/// querying for them" effect the paper describes. Cold negatives still
/// see roughly the layer-1 rate.
class StackedFilter {
 public:
  /// `layers` is odd (so the last word belongs to the positive side);
  /// each layer is a Bloom filter with `bits_per_key` bits per element of
  /// the set it encodes.
  StackedFilter(const std::vector<uint64_t>& positives,
                const std::vector<uint64_t>& hot_negatives,
                double bits_per_key, int layers = 3);

  bool Contains(HashedKey key) const;
  bool Contains(uint64_t key) const { return Contains(HashedKey(key)); }

  size_t SpaceBits() const;
  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<BloomFilter>> layers_;
};

}  // namespace bbf

#endif  // BBF_STACKED_STACKED_FILTER_H_
