#include "stacked/learned_filter.h"

#include <algorithm>

#include "util/hash.h"

namespace bbf {

LearnedFilter::LearnedFilter(const std::vector<uint64_t>& keys,
                             uint64_t max_gap, uint64_t min_run,
                             double backup_bits_per_key) {
  std::vector<uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  num_keys_ = sorted.size();

  // "Train": find maximal dense runs.
  std::vector<uint64_t> boundaries;
  std::vector<uint64_t> leftover;
  size_t run_start = 0;
  auto flush_run = [&](size_t end) {  // Keys [run_start, end).
    if (end - run_start >= min_run) {
      boundaries.push_back(sorted[run_start]);
      boundaries.push_back(sorted[end - 1]);
      modeled_keys_ += end - run_start;
      ++num_intervals_;
    } else {
      for (size_t i = run_start; i < end; ++i) leftover.push_back(sorted[i]);
    }
    run_start = end;
  };
  for (size_t i = 1; i <= sorted.size(); ++i) {
    if (i == sorted.size() || sorted[i] - sorted[i - 1] > max_gap) {
      flush_run(i);
    }
  }
  boundaries_ = EliasFano(boundaries);
  backup_ = std::make_unique<BloomFilter>(
      std::max<uint64_t>(leftover.size(), 1), backup_bits_per_key, 0,
      /*hash_seed=*/0x1EA2);
  for (uint64_t k : leftover) backup_->Insert(k);
}

bool LearnedFilter::Contains(HashedKey key) const {
  // Intervals live in raw key space; Mix64 is bijective, so the raw key
  // is recoverable without a second hash of the original input.
  const uint64_t raw = InverseMix64(key.value());
  if (boundaries_.size() > 0) {
    const auto idx = boundaries_.NextGeq(raw);
    if (idx.has_value()) {
      if (*idx % 2 == 1) return true;  // Next boundary is an interval end.
      if (boundaries_.Get(*idx) == raw) return true;  // Exactly a start.
    }
  }
  return backup_->Contains(key);
}

size_t LearnedFilter::SpaceBits() const {
  return boundaries_.MemoryUsageBytes() * 8 + backup_->SpaceBits();
}

}  // namespace bbf
