#ifndef BBF_CUCKOO_CUCKOO_FILTER_H_
#define BBF_CUCKOO_CUCKOO_FILTER_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "simd/kernels.h"
#include "util/compact_vector.h"
#include "util/random.h"

namespace bbf {

/// Cuckoo filter [Fan et al. 2014] (§2.1): a 4-way-associative table of
/// fingerprints with partial-key cuckoo hashing. Each key has two candidate
/// buckets (the second derived by XORing the first with a hash of the
/// fingerprint, so relocation never needs the original key); inserts kick
/// resident fingerprints between their two buckets until something lands.
/// Space is n lg(1/eps) + 3n bits at 95% load with 4-slot buckets.
class CuckooFilter : public Filter {
 public:
  /// A table with >= `expected_keys` capacity at ~95% load and
  /// `fingerprint_bits`-bit fingerprints (FPR ~ 8/2^f).
  CuckooFilter(uint64_t expected_keys, int fingerprint_bits,
               uint64_t hash_seed = 0xCF);

  static CuckooFilter ForFpr(uint64_t expected_keys, double fpr);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Count;
  using Filter::Erase;
  using Filter::Insert;
  using Filter::InsertMany;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Batch paths: derive a tile of keys, prefetch both candidate buckets
  /// per key, then probe/place — one pipeline of independent cache misses
  /// instead of two dependent misses per key. Bucket scans go through the
  /// runtime-dispatched match kernels (src/simd): each 4-slot bucket is
  /// read as ONE packed word and compared against the fingerprint in a
  /// single SWAR/vector step instead of four field extractions.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  size_t InsertMany(std::span<const HashedKey> keys) override;
  bool Erase(HashedKey key) override;
  uint64_t Count(HashedKey key) const override;
  size_t SpaceBits() const override {
    return cells_.size() * cells_.width() + stash_.size() * 64;
  }
  uint64_t NumKeys() const override { return num_keys_; }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "cuckoo"; }

  double LoadFactor() const override {
    return static_cast<double>(num_keys_) / cells_.size();
  }
  int fingerprint_bits() const { return fingerprint_bits_; }
  size_t stash_size() const { return stash_.size(); }

  static constexpr int kSlotsPerBucket = 4;
  static constexpr int kMaxKicks = 500;
  static constexpr size_t kMaxStash = 8;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  uint64_t FingerprintOf(HashedKey key) const;
  uint64_t IndexOf(HashedKey key) const;
  uint64_t AltIndex(uint64_t index, uint64_t fp) const;
  uint64_t CellAt(uint64_t bucket, int slot) const {
    return cells_.Get(bucket * kSlotsPerBucket + slot);
  }
  void SetCell(uint64_t bucket, int slot, uint64_t fp) {
    cells_.Set(bucket * kSlotsPerBucket + slot, fp);
  }
  /// The whole 4-slot bucket as one packed word, for the SWAR/SIMD match
  /// kernels (src/simd). Only valid when layout_.PackedEligible().
  uint64_t BucketBits(uint64_t bucket) const {
    return cells_.GetRun4(bucket * kSlotsPerBucket);
  }
  bool TryPlace(uint64_t bucket, uint64_t fp);
  // Insert body for a pre-hashed key; shared by Insert and InsertMany.
  bool InsertPrepared(uint64_t fp, uint64_t i1, uint64_t i2);

  uint64_t num_buckets_;
  int fingerprint_bits_;
  uint64_t hash_seed_;
  // SWAR constants for kernel bucket scans; PackedEligible() is false for
  // fingerprints wider than 16 bits, which keep the per-slot loops.
  simd::BucketLayout layout_;
  CompactVector cells_;  // num_buckets * 4 fingerprints; 0 = empty.
  std::vector<uint64_t> stash_;  // Fingerprint-homeless victims (rare).
  SplitMix64 kick_rng_;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_CUCKOO_CUCKOO_FILTER_H_
