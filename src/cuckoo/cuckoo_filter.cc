#include "cuckoo/cuckoo_filter.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/metrics_sink.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {
namespace {

// Stash entries pack (bucket, fingerprint) so a stashed victim only
// matches queries aimed at its own bucket pair.
uint64_t PackStash(uint64_t bucket, uint64_t fp, int f_bits) {
  return (bucket << f_bits) | fp;
}

}  // namespace

CuckooFilter::CuckooFilter(uint64_t expected_keys, int fingerprint_bits,
                           uint64_t hash_seed)
    : fingerprint_bits_(fingerprint_bits),
      hash_seed_(hash_seed),
      kick_rng_(hash_seed * 7919 + 1) {
  const uint64_t cells =
      std::max<uint64_t>(kSlotsPerBucket * 2,
                         static_cast<uint64_t>(expected_keys / 0.95));
  num_buckets_ = NextPow2((cells + kSlotsPerBucket - 1) / kSlotsPerBucket);
  layout_ = simd::BucketLayout::Make(fingerprint_bits);
  cells_ = CompactVector(num_buckets_ * kSlotsPerBucket, fingerprint_bits);
}

CuckooFilter CuckooFilter::ForFpr(uint64_t expected_keys, double fpr) {
  // FPR ~ 2 * slots-per-bucket / 2^f.
  const int f = std::max(
      2, static_cast<int>(std::ceil(std::log2(2.0 * kSlotsPerBucket / fpr))));
  return CuckooFilter(expected_keys, f);
}

uint64_t CuckooFilter::FingerprintOf(HashedKey key) const {
  const uint64_t fp =
      key.Derive(hash_seed_ + 1) & LowMask(fingerprint_bits_);
  return fp == 0 ? 1 : fp;  // 0 marks an empty cell.
}

uint64_t CuckooFilter::IndexOf(HashedKey key) const {
  return key.Derive(hash_seed_) & (num_buckets_ - 1);
}

uint64_t CuckooFilter::AltIndex(uint64_t index, uint64_t fp) const {
  // Partial-key cuckoo hashing: the pair relation is an involution.
  return (index ^ Hash64(fp, hash_seed_ + 2)) & (num_buckets_ - 1);
}

bool CuckooFilter::TryPlace(uint64_t bucket, uint64_t fp) {
  if (layout_.PackedEligible()) {
    // match_mask(fp = 0) marks the empty slots; ctz picks the lowest one,
    // matching the scalar loop's slot order exactly (kick-chain contents —
    // and so snapshots — stay identical across kernels).
    const uint32_t empty =
        simd::ActiveCuckooKernel().match_mask(BucketBits(bucket), 0, layout_);
    if (empty == 0) return false;
    SetCell(bucket, CountTrailingZeros(empty), fp);
    return true;
  }
  for (int s = 0; s < kSlotsPerBucket; ++s) {
    if (CellAt(bucket, s) == 0) {
      SetCell(bucket, s, fp);
      return true;
    }
  }
  return false;
}

bool CuckooFilter::Insert(HashedKey key) {
  const uint64_t fp = FingerprintOf(key);
  const uint64_t i1 = IndexOf(key);
  return InsertPrepared(fp, i1, AltIndex(i1, fp));
}

bool CuckooFilter::InsertPrepared(uint64_t fp, uint64_t i1, uint64_t i2) {
  if (TryPlace(i1, fp) || TryPlace(i2, fp)) {
    if (sink_ != nullptr) sink_->OnKickChain(0);
    ++num_keys_;
    return true;
  }
  // Kicking can leave a victim fingerprint homeless; the stash absorbs
  // it. When the stash is already full the kick chain may still succeed
  // without it, so record every displacement and, if the chain dead-ends,
  // unwind it exactly — mutating the table and then dropping the last
  // victim would manufacture a false negative for a previously-
  // acknowledged key.
  const bool may_need_unwind = stash_.size() >= kMaxStash;
  std::vector<std::pair<uint64_t, int>> path;  // (bucket, slot) per kick.
  if (may_need_unwind) path.reserve(kMaxKicks);
  // Kick a random resident back and forth between its two buckets.
  uint64_t bucket = kick_rng_.NextBelow(2) ? i1 : i2;
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    const int victim_slot =
        static_cast<int>(kick_rng_.NextBelow(kSlotsPerBucket));
    const uint64_t victim = CellAt(bucket, victim_slot);
    SetCell(bucket, victim_slot, fp);
    if (may_need_unwind) path.emplace_back(bucket, victim_slot);
    fp = victim;
    bucket = AltIndex(bucket, fp);
    if (TryPlace(bucket, fp)) {
      if (sink_ != nullptr) sink_->OnKickChain(static_cast<uint64_t>(kick) + 1);
      ++num_keys_;
      return true;
    }
  }
  // Chain dead-ended after the full budget; both the stash landing and
  // the unwound failure walked kMaxKicks displacements.
  if (sink_ != nullptr) sink_->OnKickChain(kMaxKicks);
  if (may_need_unwind) {
    // Walk the chain backwards: each touched cell currently holds the
    // fingerprint placed into it, and must get back the victim it lost —
    // which is exactly the fingerprint left homeless one step later.
    for (size_t i = path.size(); i-- > 0;) {
      const uint64_t placed = CellAt(path[i].first, path[i].second);
      SetCell(path[i].first, path[i].second, fp);
      fp = placed;
    }
    return false;  // Table bit-for-bit as before; the insert never happened.
  }
  stash_.push_back(PackStash(bucket, fp, fingerprint_bits_));
  ++num_keys_;
  return true;
}

bool CuckooFilter::Contains(HashedKey key) const {
  const uint64_t fp = FingerprintOf(key);
  const uint64_t i1 = IndexOf(key);
  const uint64_t i2 = AltIndex(i1, fp);
  if (layout_.PackedEligible()) {
    if (simd::ActiveCuckooKernel().contains2(BucketBits(i1), BucketBits(i2),
                                             fp, layout_)) {
      return true;
    }
  } else {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      if (CellAt(i1, s) == fp || CellAt(i2, s) == fp) return true;
    }
  }
  for (uint64_t packed : stash_) {
    if (packed == PackStash(i1, fp, fingerprint_bits_) ||
        packed == PackStash(i2, fp, fingerprint_bits_)) {
      return true;
    }
  }
  return false;
}

void CuckooFilter::ContainsMany(std::span<const HashedKey> keys,
                                uint8_t* out) const {
  constexpr size_t kTile = 32;
  uint64_t fp[kTile];
  uint64_t i1[kTile];
  uint64_t i2[kTile];
  if (layout_.PackedEligible()) {
    const simd::CuckooKernel& kernel = simd::ActiveCuckooKernel();
    uint64_t bit1[kTile];
    uint64_t bit2[kTile];
    for (size_t base = 0; base < keys.size(); base += kTile) {
      const size_t n = std::min(kTile, keys.size() - base);
      // Pass 1: hash, request both candidate buckets of every key, and
      // precompute the packed-run bit offsets the kernel reads from.
      for (size_t j = 0; j < n; ++j) {
        fp[j] = FingerprintOf(keys[base + j]);
        i1[j] = IndexOf(keys[base + j]);
        i2[j] = AltIndex(i1[j], fp[j]);
        cells_.Prefetch(i1[j] * kSlotsPerBucket, kSlotsPerBucket);
        cells_.Prefetch(i2[j] * kSlotsPerBucket, kSlotsPerBucket);
        bit1[j] = cells_.BitOffset(i1[j] * kSlotsPerBucket);
        bit2[j] = cells_.BitOffset(i2[j] * kSlotsPerBucket);
      }
      // Pass 2: one kernel call scans both buckets of the whole tile.
      kernel.contains_tile(cells_.Words(), bit1, bit2, fp, layout_, n,
                           out + base);
      // Stash fix-up only for misses, and only when a stash exists at all
      // (it is empty until an insert dead-ends, i.e. almost always).
      if (!stash_.empty()) {
        for (size_t j = 0; j < n; ++j) {
          if (out[base + j]) continue;
          for (uint64_t packed : stash_) {
            if (packed == PackStash(i1[j], fp[j], fingerprint_bits_) ||
                packed == PackStash(i2[j], fp[j], fingerprint_bits_)) {
              out[base + j] = 1;
              break;
            }
          }
        }
      }
    }
    return;
  }
  for (size_t base = 0; base < keys.size(); base += kTile) {
    const size_t n = std::min(kTile, keys.size() - base);
    // Pass 1: hash and request both candidate buckets of every key.
    for (size_t j = 0; j < n; ++j) {
      fp[j] = FingerprintOf(keys[base + j]);
      i1[j] = IndexOf(keys[base + j]);
      i2[j] = AltIndex(i1[j], fp[j]);
      cells_.Prefetch(i1[j] * kSlotsPerBucket, kSlotsPerBucket);
      cells_.Prefetch(i2[j] * kSlotsPerBucket, kSlotsPerBucket);
    }
    // Pass 2: probe the now-resident buckets (and the tiny stash).
    for (size_t j = 0; j < n; ++j) {
      uint8_t hit = 0;
      for (int s = 0; s < kSlotsPerBucket; ++s) {
        if (CellAt(i1[j], s) == fp[j] || CellAt(i2[j], s) == fp[j]) {
          hit = 1;
          break;
        }
      }
      if (!hit) {
        for (uint64_t packed : stash_) {
          if (packed == PackStash(i1[j], fp[j], fingerprint_bits_) ||
              packed == PackStash(i2[j], fp[j], fingerprint_bits_)) {
            hit = 1;
            break;
          }
        }
      }
      out[base + j] = hit;
    }
  }
}

size_t CuckooFilter::InsertMany(std::span<const HashedKey> keys) {
  constexpr size_t kTile = 32;
  uint64_t fp[kTile];
  uint64_t i1[kTile];
  uint64_t i2[kTile];
  size_t inserted = 0;
  for (size_t base = 0; base < keys.size(); base += kTile) {
    const size_t n = std::min(kTile, keys.size() - base);
    for (size_t j = 0; j < n; ++j) {
      fp[j] = FingerprintOf(keys[base + j]);
      i1[j] = IndexOf(keys[base + j]);
      i2[j] = AltIndex(i1[j], fp[j]);
      cells_.Prefetch(i1[j] * kSlotsPerBucket, kSlotsPerBucket,
                      /*for_write=*/true);
      cells_.Prefetch(i2[j] * kSlotsPerBucket, kSlotsPerBucket,
                      /*for_write=*/true);
    }
    // Placement stays sequential — kicking may touch arbitrary buckets —
    // but the common no-kick case lands in prefetched lines.
    for (size_t j = 0; j < n; ++j) {
      inserted += InsertPrepared(fp[j], i1[j], i2[j]);
    }
  }
  return inserted;
}

uint64_t CuckooFilter::Count(HashedKey key) const {
  const uint64_t fp = FingerprintOf(key);
  const uint64_t i1 = IndexOf(key);
  const uint64_t i2 = AltIndex(i1, fp);
  uint64_t count = 0;
  if (layout_.PackedEligible()) {
    const simd::CuckooKernel& kernel = simd::ActiveCuckooKernel();
    count += Popcount(kernel.match_mask(BucketBits(i1), fp, layout_));
    if (i2 != i1) {
      count += Popcount(kernel.match_mask(BucketBits(i2), fp, layout_));
    }
  } else {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      count += CellAt(i1, s) == fp;
      if (i2 != i1) count += CellAt(i2, s) == fp;
    }
  }
  for (uint64_t packed : stash_) {
    count += packed == PackStash(i1, fp, fingerprint_bits_);
    if (i2 != i1) count += packed == PackStash(i2, fp, fingerprint_bits_);
  }
  return count;
}

bool CuckooFilter::Erase(HashedKey key) {
  const uint64_t fp = FingerprintOf(key);
  const uint64_t i1 = IndexOf(key);
  const uint64_t i2 = AltIndex(i1, fp);
  if (layout_.PackedEligible()) {
    const simd::CuckooKernel& kernel = simd::ActiveCuckooKernel();
    const uint32_t m1 = kernel.match_mask(BucketBits(i1), fp, layout_);
    const uint32_t m2 = kernel.match_mask(BucketBits(i2), fp, layout_);
    if ((m1 | m2) != 0) {
      // Reproduce the scalar loop's interleaved slot order (i1.s, i2.s,
      // i1.s+1, ...) so every kernel erases the same physical copy.
      const int s1 = m1 ? CountTrailingZeros(m1) : kSlotsPerBucket;
      const int s2 = m2 ? CountTrailingZeros(m2) : kSlotsPerBucket;
      if (s1 <= s2) {
        SetCell(i1, s1, 0);
      } else {
        SetCell(i2, s2, 0);
      }
      --num_keys_;
      return true;
    }
  } else {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      if (CellAt(i1, s) == fp) {
        SetCell(i1, s, 0);
        --num_keys_;
        return true;
      }
      if (CellAt(i2, s) == fp) {
        SetCell(i2, s, 0);
        --num_keys_;
        return true;
      }
    }
  }
  for (size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i] == PackStash(i1, fp, fingerprint_bits_) ||
        stash_[i] == PackStash(i2, fp, fingerprint_bits_)) {
      stash_.erase(stash_.begin() + i);
      --num_keys_;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, fingerprint_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_buckets_);
  WriteU64(os, num_keys_);
  cells_.Save(os);
  WriteU64(os, stash_.size());
  for (uint64_t s : stash_) WriteU64(os, s);
  return os.good();
}

bool CuckooFilter::LoadPayload(std::istream& is) {
  int32_t f;
  uint64_t seed;
  uint64_t buckets;
  uint64_t n;
  if (!ReadI32(is, &f) || f < 1 || f > 60 || !ReadU64(is, &seed) ||
      !ReadU64Capped(is, &buckets, kMaxSnapshotElements / kSlotsPerBucket) ||
      buckets == 0 || (buckets & (buckets - 1)) != 0 || !ReadU64(is, &n)) {
    return false;
  }
  CompactVector cells;
  if (!cells.Load(is) || cells.size() != buckets * kSlotsPerBucket ||
      cells.width() != f) {
    return false;
  }
  uint64_t stash_size;
  if (!ReadU64Capped(is, &stash_size, kMaxStash)) return false;
  std::vector<uint64_t> stash(stash_size);
  for (uint64_t& s : stash) {
    if (!ReadU64(is, &s)) return false;
  }
  fingerprint_bits_ = f;
  hash_seed_ = seed;
  num_buckets_ = buckets;
  num_keys_ = n;
  layout_ = simd::BucketLayout::Make(f);
  cells_ = std::move(cells);
  stash_ = std::move(stash);
  // The kick RNG only drives future insert randomization; reseed it the
  // way the constructor does.
  kick_rng_ = SplitMix64(seed * 7919 + 1);
  return true;
}

}  // namespace bbf
