#include "cuckoo/cuckoo_maplet.h"

#include <algorithm>
#include <utility>

#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

CuckooMaplet::CuckooMaplet(uint64_t expected_keys, int fingerprint_bits,
                           int value_bits, uint64_t hash_seed)
    : fingerprint_bits_(fingerprint_bits),
      hash_seed_(hash_seed),
      kick_rng_(hash_seed * 104729 + 3) {
  const uint64_t cells =
      std::max<uint64_t>(kSlotsPerBucket * 2,
                         static_cast<uint64_t>(expected_keys / 0.95));
  num_buckets_ = NextPow2((cells + kSlotsPerBucket - 1) / kSlotsPerBucket);
  layout_ = simd::BucketLayout::Make(fingerprint_bits);
  fingerprints_ =
      CompactVector(num_buckets_ * kSlotsPerBucket, fingerprint_bits);
  values_ = CompactVector(num_buckets_ * kSlotsPerBucket, value_bits);
}

uint64_t CuckooMaplet::FingerprintOf(HashedKey key) const {
  const uint64_t fp =
      key.Derive(hash_seed_ + 1) & LowMask(fingerprint_bits_);
  return fp == 0 ? 1 : fp;
}

uint64_t CuckooMaplet::IndexOf(HashedKey key) const {
  return key.Derive(hash_seed_) & (num_buckets_ - 1);
}

uint64_t CuckooMaplet::AltIndex(uint64_t index, uint64_t fp) const {
  return (index ^ Hash64(fp, hash_seed_ + 2)) & (num_buckets_ - 1);
}

bool CuckooMaplet::TryPlace(uint64_t bucket, uint64_t fp, uint64_t value) {
  if (layout_.PackedEligible()) {
    // Lowest empty slot via one packed compare against fp = 0 — same slot
    // order as the scalar loop, so table contents stay kernel-independent.
    const uint32_t empty = simd::ActiveCuckooKernel().match_mask(
        fingerprints_.GetRun4(bucket * kSlotsPerBucket), 0, layout_);
    if (empty == 0) return false;
    const uint64_t idx =
        bucket * kSlotsPerBucket + CountTrailingZeros(empty);
    fingerprints_.Set(idx, fp);
    values_.Set(idx, value);
    return true;
  }
  for (int s = 0; s < kSlotsPerBucket; ++s) {
    const uint64_t idx = bucket * kSlotsPerBucket + s;
    if (fingerprints_.Get(idx) == 0) {
      fingerprints_.Set(idx, fp);
      values_.Set(idx, value);
      return true;
    }
  }
  return false;
}

bool CuckooMaplet::Insert(HashedKey key, uint64_t value) {
  uint64_t fp = FingerprintOf(key);
  uint64_t val = value;
  const uint64_t i1 = IndexOf(key);
  const uint64_t i2 = AltIndex(i1, fp);
  if (TryPlace(i1, fp, val) || TryPlace(i2, fp, val)) {
    ++num_entries_;
    return true;
  }
  // Kicking may orphan a victim; the stash absorbs it. With a full stash
  // the chain can still land every pair, so record each displaced slot and
  // unwind on a dead end — no (fingerprint, value) pair is ever dropped.
  const bool may_need_unwind = stash_.size() >= kMaxStash;
  std::vector<uint64_t> path;  // Cell index per kick.
  if (may_need_unwind) path.reserve(kMaxKicks);
  uint64_t bucket = kick_rng_.NextBelow(2) ? i1 : i2;
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    const int slot = static_cast<int>(kick_rng_.NextBelow(kSlotsPerBucket));
    const uint64_t idx = bucket * kSlotsPerBucket + slot;
    const uint64_t vfp = fingerprints_.Get(idx);
    const uint64_t vval = values_.Get(idx);
    fingerprints_.Set(idx, fp);
    values_.Set(idx, val);
    if (may_need_unwind) path.push_back(idx);
    fp = vfp;
    val = vval;
    bucket = AltIndex(bucket, fp);
    if (TryPlace(bucket, fp, val)) {
      ++num_entries_;
      return true;
    }
  }
  if (may_need_unwind) {
    // Reverse the chain: each touched cell holds the pair placed into it
    // and gets back the victim left homeless one step later.
    for (size_t i = path.size(); i-- > 0;) {
      const uint64_t placed_fp = fingerprints_.Get(path[i]);
      const uint64_t placed_val = values_.Get(path[i]);
      fingerprints_.Set(path[i], fp);
      values_.Set(path[i], val);
      fp = placed_fp;
      val = placed_val;
    }
    return false;  // Table exactly as before the attempt.
  }
  stash_.push_back(StashEntry{bucket, fp, val});
  ++num_entries_;
  return true;
}

std::vector<uint64_t> CuckooMaplet::Lookup(HashedKey key) const {
  std::vector<uint64_t> out;
  const uint64_t fp = FingerprintOf(key);
  const uint64_t i1 = IndexOf(key);
  const uint64_t i2 = AltIndex(i1, fp);
  if (layout_.PackedEligible()) {
    const simd::CuckooKernel& kernel = simd::ActiveCuckooKernel();
    const uint32_t m1 = kernel.match_mask(
        fingerprints_.GetRun4(i1 * kSlotsPerBucket), fp, layout_);
    const uint32_t m2 =
        i2 != i1 ? kernel.match_mask(
                       fingerprints_.GetRun4(i2 * kSlotsPerBucket), fp,
                       layout_)
                 : 0;
    // Emit in the same interleaved (i1.s, i2.s) order as the scalar scan
    // so callers see an identical value sequence on every kernel.
    for (int s = 0; (m1 | m2) >> s != 0 && s < kSlotsPerBucket; ++s) {
      if ((m1 >> s) & 1) out.push_back(values_.Get(i1 * kSlotsPerBucket + s));
      if ((m2 >> s) & 1) out.push_back(values_.Get(i2 * kSlotsPerBucket + s));
    }
  } else {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      if (fingerprints_.Get(i1 * kSlotsPerBucket + s) == fp) {
        out.push_back(values_.Get(i1 * kSlotsPerBucket + s));
      }
      if (i2 != i1 && fingerprints_.Get(i2 * kSlotsPerBucket + s) == fp) {
        out.push_back(values_.Get(i2 * kSlotsPerBucket + s));
      }
    }
  }
  for (const StashEntry& e : stash_) {
    if (e.fp == fp && (e.bucket == i1 || e.bucket == i2)) {
      out.push_back(e.value);
    }
  }
  return out;
}

bool CuckooMaplet::Erase(HashedKey key, uint64_t value) {
  const uint64_t fp = FingerprintOf(key);
  const uint64_t i1 = IndexOf(key);
  const uint64_t i2 = AltIndex(i1, fp);
  for (uint64_t bucket : {i1, i2}) {
    if (layout_.PackedEligible()) {
      // Candidate slots from one packed compare; the value plane then
      // disambiguates (the mask is exact on fingerprints only).
      uint32_t m = simd::ActiveCuckooKernel().match_mask(
          fingerprints_.GetRun4(bucket * kSlotsPerBucket), fp, layout_);
      while (m != 0) {
        const int s = CountTrailingZeros(m);
        const uint64_t idx = bucket * kSlotsPerBucket + s;
        if (values_.Get(idx) == value) {
          fingerprints_.Set(idx, 0);
          values_.Set(idx, 0);
          --num_entries_;
          return true;
        }
        m &= m - 1;
      }
    } else {
      for (int s = 0; s < kSlotsPerBucket; ++s) {
        const uint64_t idx = bucket * kSlotsPerBucket + s;
        if (fingerprints_.Get(idx) == fp && values_.Get(idx) == value) {
          fingerprints_.Set(idx, 0);
          values_.Set(idx, 0);
          --num_entries_;
          return true;
        }
      }
    }
    if (i2 == i1) break;
  }
  for (size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].fp == fp && stash_[i].value == value &&
        (stash_[i].bucket == i1 || stash_[i].bucket == i2)) {
      stash_.erase(stash_.begin() + i);
      --num_entries_;
      return true;
    }
  }
  return false;
}

bool CuckooMaplet::SavePayload(std::ostream& os) const {
  WriteI32(os, fingerprint_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_buckets_);
  WriteU64(os, num_entries_);
  fingerprints_.Save(os);
  values_.Save(os);
  WriteU64(os, stash_.size());
  for (const StashEntry& e : stash_) {
    WriteU64(os, e.bucket);
    WriteU64(os, e.fp);
    WriteU64(os, e.value);
  }
  return os.good();
}

bool CuckooMaplet::LoadPayload(std::istream& is) {
  int32_t f;
  uint64_t seed;
  uint64_t buckets;
  uint64_t n;
  if (!ReadI32(is, &f) || f < 1 || f > 60 || !ReadU64(is, &seed) ||
      !ReadU64Capped(is, &buckets, kMaxSnapshotElements / kSlotsPerBucket) ||
      buckets == 0 || (buckets & (buckets - 1)) != 0 || !ReadU64(is, &n)) {
    return false;
  }
  const uint64_t cells = buckets * kSlotsPerBucket;
  CompactVector fingerprints;
  CompactVector values;
  if (!fingerprints.Load(is) || fingerprints.size() != cells ||
      fingerprints.width() != f || !values.Load(is) ||
      values.size() != cells || values.width() < 1) {
    return false;
  }
  uint64_t stash_size;
  if (!ReadU64Capped(is, &stash_size, kMaxStash)) return false;
  std::vector<StashEntry> stash(stash_size);
  for (StashEntry& e : stash) {
    if (!ReadU64Capped(is, &e.bucket, buckets - 1) || !ReadU64(is, &e.fp) ||
        !ReadU64(is, &e.value)) {
      return false;
    }
  }
  fingerprint_bits_ = f;
  hash_seed_ = seed;
  num_buckets_ = buckets;
  num_entries_ = n;
  layout_ = simd::BucketLayout::Make(f);
  fingerprints_ = std::move(fingerprints);
  values_ = std::move(values);
  stash_ = std::move(stash);
  kick_rng_ = SplitMix64(seed * 104729 + 3);
  return true;
}

}  // namespace bbf
