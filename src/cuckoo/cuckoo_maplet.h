#ifndef BBF_CUCKOO_CUCKOO_MAPLET_H_
#define BBF_CUCKOO_CUCKOO_MAPLET_H_

#include <cstdint>
#include <vector>

#include "core/key.h"
#include "simd/kernels.h"
#include "util/compact_vector.h"
#include "util/random.h"

namespace bbf {

/// Cuckoo-filter maplet (§2.4): each cell stores a small value next to the
/// fingerprint; kicks move (fingerprint, value) pairs together. PRS is
/// 1 + eps and NRS is eps, as for the quotient maplet.
class CuckooMaplet {
 public:
  CuckooMaplet(uint64_t expected_keys, int fingerprint_bits, int value_bits,
               uint64_t hash_seed = 0xCA);

  /// Associates `value` with `key`; returns false if the table is full.
  bool Insert(HashedKey key, uint64_t value);
  bool Insert(uint64_t key, uint64_t value) {
    return Insert(HashedKey(key), value);
  }

  /// All values stored under `key`'s fingerprint (possibly empty).
  std::vector<uint64_t> Lookup(HashedKey key) const;
  std::vector<uint64_t> Lookup(uint64_t key) const {
    return Lookup(HashedKey(key));
  }

  bool Contains(HashedKey key) const { return !Lookup(key).empty(); }
  bool Contains(uint64_t key) const { return Contains(HashedKey(key)); }

  /// Removes one (key, value) association.
  bool Erase(HashedKey key, uint64_t value);
  bool Erase(uint64_t key, uint64_t value) {
    return Erase(HashedKey(key), value);
  }

  size_t SpaceBits() const {
    return fingerprints_.size() * (fingerprints_.width() + values_.width()) +
           stash_.size() * 128;
  }
  uint64_t NumEntries() const { return num_entries_; }

  static constexpr int kSlotsPerBucket = 4;
  static constexpr int kMaxKicks = 500;
  static constexpr size_t kMaxStash = 8;

  /// Raw snapshot payload (framing is the caller's job; the Maplet
  /// adapters wrap these in checksummed frames).
  bool SavePayload(std::ostream& os) const;
  bool LoadPayload(std::istream& is);

 private:
  struct StashEntry {
    uint64_t bucket;
    uint64_t fp;
    uint64_t value;
  };
  uint64_t FingerprintOf(HashedKey key) const;
  uint64_t IndexOf(HashedKey key) const;
  uint64_t AltIndex(uint64_t index, uint64_t fp) const;
  bool TryPlace(uint64_t bucket, uint64_t fp, uint64_t value);

  uint64_t num_buckets_;
  int fingerprint_bits_;
  uint64_t hash_seed_;
  // SWAR constants for the packed bucket-scan kernels (src/simd).
  simd::BucketLayout layout_;
  CompactVector fingerprints_;
  CompactVector values_;
  std::vector<StashEntry> stash_;  // Homeless kick victims (rare).
  SplitMix64 kick_rng_;
  uint64_t num_entries_ = 0;
};

}  // namespace bbf

#endif  // BBF_CUCKOO_CUCKOO_MAPLET_H_
