#include "cuckoo/adaptive_cuckoo_filter.h"

#include <algorithm>
#include <cmath>

#include "core/metrics_sink.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

AdaptiveCuckooFilter::AdaptiveCuckooFilter(uint64_t expected_keys,
                                           int fingerprint_bits,
                                           int selector_bits,
                                           uint64_t hash_seed)
    : fingerprint_bits_(fingerprint_bits),
      selector_bits_(selector_bits),
      hash_seed_(hash_seed),
      kick_rng_(hash_seed * 31337 + 5) {
  const uint64_t cells =
      std::max<uint64_t>(kSlotsPerBucket * 2,
                         static_cast<uint64_t>(expected_keys / 0.90));
  num_buckets_ = NextPow2((cells + kSlotsPerBucket - 1) / kSlotsPerBucket);
  layout_ = simd::BucketLayout::Make(fingerprint_bits);
  fingerprints_ =
      CompactVector(num_buckets_ * kSlotsPerBucket, fingerprint_bits);
  selectors_ = CompactVector(num_buckets_ * kSlotsPerBucket, selector_bits);
  remote_keys_.resize(num_buckets_ * kSlotsPerBucket, 0);
}

uint64_t AdaptiveCuckooFilter::FingerprintOf(HashedKey key,
                                             uint64_t selector) const {
  const uint64_t fp = key.Derive(hash_seed_ + 11 + selector) &
                      LowMask(fingerprint_bits_);
  return fp == 0 ? 1 : fp;
}

uint64_t AdaptiveCuckooFilter::Index1(HashedKey key) const {
  return key.Derive(hash_seed_ + 1) & (num_buckets_ - 1);
}

uint64_t AdaptiveCuckooFilter::Index2(HashedKey key) const {
  // Location hashes are key-based (not fingerprint-based): the remote
  // store lets relocation re-derive from the original key, unlike a
  // plain CF.
  const uint64_t i2 = key.Derive(hash_seed_ + 2) & (num_buckets_ - 1);
  return i2 == Index1(key) ? (i2 ^ 1) & (num_buckets_ - 1) : i2;
}

bool AdaptiveCuckooFilter::SlotMatches(uint64_t bucket, int slot,
                                       HashedKey key) const {
  const uint64_t idx = CellIndex(bucket, slot);
  const uint64_t fp = fingerprints_.Get(idx);
  if (fp == 0) return false;
  return fp == FingerprintOf(key, selectors_.Get(idx));
}

bool AdaptiveCuckooFilter::TryPlace(uint64_t bucket, HashedKey key) {
  for (int s = 0; s < kSlotsPerBucket; ++s) {
    const uint64_t idx = CellIndex(bucket, s);
    if (fingerprints_.Get(idx) == 0) {
      fingerprints_.Set(idx, FingerprintOf(key, 0));
      selectors_.Set(idx, 0);
      remote_keys_[idx] = key.value();
      return true;
    }
  }
  return false;
}

bool AdaptiveCuckooFilter::Insert(HashedKey key) {
  if (TryPlace(Index1(key), key) || TryPlace(Index2(key), key)) {
    ++num_keys_;
    return true;
  }
  // Cuckoo eviction on original keys via the remote store. With a full
  // stash the chain may still land every key, so record each displaced
  // slot's (fingerprint, selector) and unwind on failure — dropping a
  // victim would manufacture a false negative, and the selector must come
  // back too or an adapted slot would forget its adaptation.
  struct KickRecord {
    uint64_t idx;
    uint64_t fp;
    uint64_t selector;
  };
  const bool may_need_unwind = stash_.size() >= kMaxStash;
  std::vector<KickRecord> path;
  if (may_need_unwind) path.reserve(kMaxKicks);
  HashedKey cur = key;
  uint64_t bucket = kick_rng_.NextBelow(2) ? Index1(key) : Index2(key);
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    const int slot = static_cast<int>(kick_rng_.NextBelow(kSlotsPerBucket));
    const uint64_t idx = CellIndex(bucket, slot);
    const HashedKey victim = HashedKey::FromMix(remote_keys_[idx]);
    if (may_need_unwind) {
      path.push_back({idx, fingerprints_.Get(idx), selectors_.Get(idx)});
    }
    fingerprints_.Set(idx, FingerprintOf(cur, 0));
    selectors_.Set(idx, 0);
    remote_keys_[idx] = cur.value();
    cur = victim;
    bucket = (bucket == Index1(cur)) ? Index2(cur) : Index1(cur);
    if (TryPlace(bucket, cur)) {
      ++num_keys_;
      return true;
    }
  }
  if (may_need_unwind) {
    // Reverse the chain: each touched slot holds the key placed into it;
    // hand back the victim (left homeless one step later) with its
    // original fingerprint/selector pair.
    for (size_t i = path.size(); i-- > 0;) {
      const uint64_t placed = remote_keys_[path[i].idx];
      fingerprints_.Set(path[i].idx, path[i].fp);
      selectors_.Set(path[i].idx, path[i].selector);
      remote_keys_[path[i].idx] = cur.value();
      cur = HashedKey::FromMix(placed);
    }
    return false;  // State exactly as before the attempt.
  }
  // Exact canonical keys: the stash never false-positives.
  stash_.push_back(cur.value());
  ++num_keys_;
  return true;
}

bool AdaptiveCuckooFilter::ContainsInBuckets(HashedKey key, uint64_t i1,
                                             uint64_t i2) const {
  // Selectors only move off zero when a false positive is reported, so in
  // the steady state every slot's fingerprint is H_0(key) and the whole
  // bucket pair collapses to one packed-word kernel compare. Any adapted
  // slot (nonzero selector run) falls back to the per-slot scan that
  // honours each slot's own selector.
  if (layout_.PackedEligible() &&
      (selectors_.GetRun4(i1 * kSlotsPerBucket) |
       selectors_.GetRun4(i2 * kSlotsPerBucket)) == 0) {
    if (simd::ActiveCuckooKernel().contains2(
            fingerprints_.GetRun4(i1 * kSlotsPerBucket),
            fingerprints_.GetRun4(i2 * kSlotsPerBucket),
            FingerprintOf(key, 0), layout_)) {
      return true;
    }
  } else {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      if (SlotMatches(i1, s, key) || SlotMatches(i2, s, key)) return true;
    }
  }
  for (uint64_t k : stash_) {
    if (k == key.value()) return true;
  }
  return false;
}

bool AdaptiveCuckooFilter::Contains(HashedKey key) const {
  return ContainsInBuckets(key, Index1(key), Index2(key));
}

void AdaptiveCuckooFilter::ContainsMany(std::span<const HashedKey> keys,
                                        uint8_t* out) const {
  constexpr size_t kTile = 32;
  uint64_t i1[kTile];
  uint64_t i2[kTile];
  for (size_t base = 0; base < keys.size(); base += kTile) {
    const size_t n = std::min(kTile, keys.size() - base);
    // Pass 1: request both candidate buckets of every key — fingerprints
    // and selectors live in separate planes, so both are prefetched.
    for (size_t j = 0; j < n; ++j) {
      i1[j] = Index1(keys[base + j]);
      i2[j] = Index2(keys[base + j]);
      fingerprints_.Prefetch(i1[j] * kSlotsPerBucket, kSlotsPerBucket);
      fingerprints_.Prefetch(i2[j] * kSlotsPerBucket, kSlotsPerBucket);
      selectors_.Prefetch(i1[j] * kSlotsPerBucket, kSlotsPerBucket);
      selectors_.Prefetch(i2[j] * kSlotsPerBucket, kSlotsPerBucket);
    }
    // Pass 2: probe the now-resident buckets.
    for (size_t j = 0; j < n; ++j) {
      out[base + j] = ContainsInBuckets(keys[base + j], i1[j], i2[j]) ? 1 : 0;
    }
  }
}

bool AdaptiveCuckooFilter::Erase(HashedKey key) {
  for (uint64_t bucket : {Index1(key), Index2(key)}) {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      const uint64_t idx = CellIndex(bucket, s);
      // Exact delete: the remote store disambiguates colliding twins.
      if (fingerprints_.Get(idx) != 0 && remote_keys_[idx] == key.value()) {
        fingerprints_.Set(idx, 0);
        selectors_.Set(idx, 0);
        remote_keys_[idx] = 0;
        --num_keys_;
        return true;
      }
    }
  }
  for (size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i] == key.value()) {
      stash_.erase(stash_.begin() + i);
      --num_keys_;
      return true;
    }
  }
  return false;
}

bool AdaptiveCuckooFilter::ReportFalsePositive(HashedKey key) {
  const uint64_t max_selector = LowMask(selector_bits_);
  for (uint64_t bucket : {Index1(key), Index2(key)}) {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      const uint64_t idx = CellIndex(bucket, s);
      if (!SlotMatches(bucket, s, key)) continue;
      // True positive, not an FP.
      if (remote_keys_[idx] == key.value()) continue;
      // Bump the selector and recompute from the resident's true key.
      const uint64_t sel = (selectors_.Get(idx) + 1) & max_selector;
      selectors_.Set(idx, sel);
      fingerprints_.Set(
          idx, FingerprintOf(HashedKey::FromMix(remote_keys_[idx]), sel));
      ++adaptations_;
      if (sink_ != nullptr) sink_->OnAdapt();
    }
  }
  return !Contains(key);
}

bool AdaptiveCuckooFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, fingerprint_bits_);
  WriteI32(os, selector_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_buckets_);
  WriteU64(os, num_keys_);
  WriteU64(os, adaptations_);
  fingerprints_.Save(os);
  selectors_.Save(os);
  for (uint64_t k : remote_keys_) WriteU64(os, k);
  WriteU64(os, stash_.size());
  for (uint64_t k : stash_) WriteU64(os, k);
  return os.good();
}

bool AdaptiveCuckooFilter::LoadPayload(std::istream& is) {
  int32_t f;
  int32_t sel;
  uint64_t seed;
  uint64_t buckets;
  uint64_t n;
  uint64_t adaptations;
  if (!ReadI32(is, &f) || f < 1 || f > 60 || !ReadI32(is, &sel) || sel < 1 ||
      sel > 16 || !ReadU64(is, &seed) ||
      !ReadU64Capped(is, &buckets, kMaxSnapshotElements / kSlotsPerBucket) ||
      buckets == 0 || (buckets & (buckets - 1)) != 0 || !ReadU64(is, &n) ||
      !ReadU64(is, &adaptations)) {
    return false;
  }
  const uint64_t cells = buckets * kSlotsPerBucket;
  CompactVector fingerprints;
  CompactVector selectors;
  if (!fingerprints.Load(is) || fingerprints.size() != cells ||
      fingerprints.width() != f || !selectors.Load(is) ||
      selectors.size() != cells || selectors.width() != sel) {
    return false;
  }
  std::vector<uint64_t> remote(cells);
  for (uint64_t& k : remote) {
    if (!ReadU64(is, &k)) return false;
  }
  uint64_t stash_size;
  if (!ReadU64Capped(is, &stash_size, kMaxStash)) return false;
  std::vector<uint64_t> stash(stash_size);
  for (uint64_t& k : stash) {
    if (!ReadU64(is, &k)) return false;
  }
  fingerprint_bits_ = f;
  selector_bits_ = sel;
  hash_seed_ = seed;
  num_buckets_ = buckets;
  num_keys_ = n;
  adaptations_ = adaptations;
  layout_ = simd::BucketLayout::Make(f);
  fingerprints_ = std::move(fingerprints);
  selectors_ = std::move(selectors);
  remote_keys_ = std::move(remote);
  stash_ = std::move(stash);
  kick_rng_ = SplitMix64(seed * 31337 + 5);
  return true;
}

}  // namespace bbf
