#include "cuckoo/adaptive_cuckoo_filter.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/hash.h"

namespace bbf {

AdaptiveCuckooFilter::AdaptiveCuckooFilter(uint64_t expected_keys,
                                           int fingerprint_bits,
                                           int selector_bits,
                                           uint64_t hash_seed)
    : fingerprint_bits_(fingerprint_bits),
      selector_bits_(selector_bits),
      hash_seed_(hash_seed),
      kick_rng_(hash_seed * 31337 + 5) {
  const uint64_t cells =
      std::max<uint64_t>(kSlotsPerBucket * 2,
                         static_cast<uint64_t>(expected_keys / 0.90));
  num_buckets_ = NextPow2((cells + kSlotsPerBucket - 1) / kSlotsPerBucket);
  fingerprints_ =
      CompactVector(num_buckets_ * kSlotsPerBucket, fingerprint_bits);
  selectors_ = CompactVector(num_buckets_ * kSlotsPerBucket, selector_bits);
  remote_keys_.resize(num_buckets_ * kSlotsPerBucket, 0);
}

uint64_t AdaptiveCuckooFilter::FingerprintOf(uint64_t key,
                                             uint64_t selector) const {
  const uint64_t fp = Hash64(key, hash_seed_ + 11 + selector) &
                      LowMask(fingerprint_bits_);
  return fp == 0 ? 1 : fp;
}

uint64_t AdaptiveCuckooFilter::Index1(uint64_t key) const {
  return Hash64(key, hash_seed_ + 1) & (num_buckets_ - 1);
}

uint64_t AdaptiveCuckooFilter::Index2(uint64_t key) const {
  // Location hashes are key-based (not fingerprint-based): the remote
  // store lets relocation rehash the original key, unlike a plain CF.
  const uint64_t i2 = Hash64(key, hash_seed_ + 2) & (num_buckets_ - 1);
  return i2 == Index1(key) ? (i2 ^ 1) & (num_buckets_ - 1) : i2;
}

bool AdaptiveCuckooFilter::SlotMatches(uint64_t bucket, int slot,
                                       uint64_t key) const {
  const uint64_t idx = CellIndex(bucket, slot);
  const uint64_t fp = fingerprints_.Get(idx);
  if (fp == 0) return false;
  return fp == FingerprintOf(key, selectors_.Get(idx));
}

bool AdaptiveCuckooFilter::TryPlace(uint64_t bucket, uint64_t key) {
  for (int s = 0; s < kSlotsPerBucket; ++s) {
    const uint64_t idx = CellIndex(bucket, s);
    if (fingerprints_.Get(idx) == 0) {
      fingerprints_.Set(idx, FingerprintOf(key, 0));
      selectors_.Set(idx, 0);
      remote_keys_[idx] = key;
      return true;
    }
  }
  return false;
}

bool AdaptiveCuckooFilter::Insert(uint64_t key) {
  if (TryPlace(Index1(key), key) || TryPlace(Index2(key), key)) {
    ++num_keys_;
    return true;
  }
  if (stash_.size() >= kMaxStash) return false;  // Never drop a victim.
  // Cuckoo eviction on original keys via the remote store.
  uint64_t cur = key;
  uint64_t bucket = kick_rng_.NextBelow(2) ? Index1(key) : Index2(key);
  for (int kick = 0; kick < kMaxKicks; ++kick) {
    const int slot = static_cast<int>(kick_rng_.NextBelow(kSlotsPerBucket));
    const uint64_t idx = CellIndex(bucket, slot);
    const uint64_t victim = remote_keys_[idx];
    fingerprints_.Set(idx, FingerprintOf(cur, 0));
    selectors_.Set(idx, 0);
    remote_keys_[idx] = cur;
    cur = victim;
    bucket = (bucket == Index1(cur)) ? Index2(cur) : Index1(cur);
    if (TryPlace(bucket, cur)) {
      ++num_keys_;
      return true;
    }
  }
  stash_.push_back(cur);  // Exact keys: the stash never false-positives.
  ++num_keys_;
  return true;
}

bool AdaptiveCuckooFilter::Contains(uint64_t key) const {
  const uint64_t i1 = Index1(key);
  const uint64_t i2 = Index2(key);
  for (int s = 0; s < kSlotsPerBucket; ++s) {
    if (SlotMatches(i1, s, key) || SlotMatches(i2, s, key)) return true;
  }
  for (uint64_t k : stash_) {
    if (k == key) return true;
  }
  return false;
}

bool AdaptiveCuckooFilter::Erase(uint64_t key) {
  for (uint64_t bucket : {Index1(key), Index2(key)}) {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      const uint64_t idx = CellIndex(bucket, s);
      // Exact delete: the remote store disambiguates colliding twins.
      if (fingerprints_.Get(idx) != 0 && remote_keys_[idx] == key) {
        fingerprints_.Set(idx, 0);
        selectors_.Set(idx, 0);
        remote_keys_[idx] = 0;
        --num_keys_;
        return true;
      }
    }
  }
  for (size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i] == key) {
      stash_.erase(stash_.begin() + i);
      --num_keys_;
      return true;
    }
  }
  return false;
}

bool AdaptiveCuckooFilter::ReportFalsePositive(uint64_t key) {
  const uint64_t max_selector = LowMask(selector_bits_);
  for (uint64_t bucket : {Index1(key), Index2(key)}) {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      const uint64_t idx = CellIndex(bucket, s);
      if (!SlotMatches(bucket, s, key)) continue;
      if (remote_keys_[idx] == key) continue;  // True positive, not an FP.
      // Bump the selector and recompute from the resident's true key.
      const uint64_t sel = (selectors_.Get(idx) + 1) & max_selector;
      selectors_.Set(idx, sel);
      fingerprints_.Set(idx, FingerprintOf(remote_keys_[idx], sel));
      ++adaptations_;
    }
  }
  return !Contains(key);
}

}  // namespace bbf
