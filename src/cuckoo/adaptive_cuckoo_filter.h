#ifndef BBF_CUCKOO_ADAPTIVE_CUCKOO_FILTER_H_
#define BBF_CUCKOO_ADAPTIVE_CUCKOO_FILTER_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "simd/kernels.h"
#include "util/compact_vector.h"
#include "util/random.h"

namespace bbf {

/// Adaptive cuckoo filter [Mitzenmacher, Pontarelli, Reviriego 2020]
/// (§2.3): a cuckoo filter whose slots carry a small *selector*; the
/// fingerprint stored in a slot is H_selector(key). When the fronted
/// dictionary observes a false positive, the filter bumps the selector of
/// every colliding slot and recomputes those slots' fingerprints from a
/// remote store of the original keys, so the same negative query stops
/// colliding (with high probability).
///
/// The remote key store stands in for the backing dictionary the filter
/// fronts (the ACF always assumes one); its memory is *not* counted in
/// SpaceBits, matching how the paper accounts filter space.
class AdaptiveCuckooFilter : public Filter, public AdaptiveHook {
 public:
  AdaptiveCuckooFilter(uint64_t expected_keys, int fingerprint_bits,
                       int selector_bits = 2, uint64_t hash_seed = 0xAC);

  using Filter::Contains;
  using Filter::ContainsMany;
  using Filter::Erase;
  using Filter::Insert;

  bool Insert(HashedKey key) override;
  bool Contains(HashedKey key) const override;
  /// Batch path: prefetch both candidate buckets (fingerprints AND
  /// selectors) for a tile of keys, then probe. Buckets whose selectors
  /// are all still zero — the steady state until false positives are
  /// reported — take the packed-bucket kernel fast path (src/simd);
  /// adapted buckets fall back to the per-slot selector-aware scan.
  void ContainsMany(std::span<const HashedKey> keys,
                    uint8_t* out) const override;
  bool Erase(HashedKey key) override;
  size_t SpaceBits() const override {
    return fingerprints_.size() * (fingerprints_.width() + selector_bits_);
  }
  uint64_t NumKeys() const override { return num_keys_; }
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) / fingerprints_.size();
  }
  FilterClass Class() const override { return FilterClass::kDynamic; }
  std::string_view Name() const override { return "adaptive-cuckoo"; }

  using AdaptiveHook::ReportFalsePositive;

  /// Rehashes every slot that collides with `key` under its current
  /// selector. Returns true if Contains(key) is now false.
  bool ReportFalsePositive(HashedKey key) override;

  uint64_t adaptations() const { return adaptations_; }

  static constexpr int kSlotsPerBucket = 4;
  static constexpr int kMaxKicks = 500;
  static constexpr size_t kMaxStash = 8;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  struct SlotRef {
    uint64_t bucket;
    int slot;
  };

  uint64_t FingerprintOf(HashedKey key, uint64_t selector) const;
  uint64_t Index1(HashedKey key) const;
  uint64_t Index2(HashedKey key) const;
  uint64_t CellIndex(uint64_t bucket, int slot) const {
    return bucket * kSlotsPerBucket + slot;
  }
  bool TryPlace(uint64_t bucket, HashedKey key);
  bool SlotMatches(uint64_t bucket, int slot, HashedKey key) const;
  /// Shared probe body for Contains/ContainsMany: both candidate buckets
  /// plus the stash.
  bool ContainsInBuckets(HashedKey key, uint64_t i1, uint64_t i2) const;

  uint64_t num_buckets_;
  int fingerprint_bits_;
  int selector_bits_;
  uint64_t hash_seed_;
  // SWAR constants for the zero-selector kernel fast path.
  simd::BucketLayout layout_;
  CompactVector fingerprints_;        // 0 = empty cell.
  CompactVector selectors_;
  // Canonical (pre-mixed) key per cell — the backing dictionary.
  std::vector<uint64_t> remote_keys_;
  std::vector<uint64_t> stash_;  // Exact homeless canonical keys (rare).
  SplitMix64 kick_rng_;
  uint64_t num_keys_ = 0;
  uint64_t adaptations_ = 0;
};

}  // namespace bbf

#endif  // BBF_CUCKOO_ADAPTIVE_CUCKOO_FILTER_H_
