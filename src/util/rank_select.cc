#include "util/rank_select.h"

#include <utility>

#include "util/bits.h"

namespace bbf {

RankSelect::RankSelect(BitVector bits) : bits_(std::move(bits)) {
  const uint64_t num_words = bits_.NumWords();
  const uint64_t num_supers = num_words / kWordsPerSuper + 1;
  super_rank_.resize(num_supers + 1, 0);
  uint64_t acc = 0;
  for (uint64_t w = 0; w < num_words; ++w) {
    if (w % kWordsPerSuper == 0) super_rank_[w / kWordsPerSuper] = acc;
    acc += Popcount(bits_.Word(w));
  }
  num_ones_ = acc;
  for (uint64_t s = (num_words + kWordsPerSuper - 1) / kWordsPerSuper;
       s < super_rank_.size(); ++s) {
    super_rank_[s] = acc;
  }
}

uint64_t RankSelect::Rank1(uint64_t i) const {
  const uint64_t w = i >> 6;
  uint64_t r = super_rank_[w / kWordsPerSuper];
  for (uint64_t j = (w / kWordsPerSuper) * kWordsPerSuper; j < w; ++j) {
    r += Popcount(bits_.Word(j));
  }
  if (i & 63) r += Popcount(bits_.Word(w) & LowMask(static_cast<int>(i & 63)));
  return r;
}

uint64_t RankSelect::Select1(uint64_t k) const {
  // Binary search the superblock whose cumulative rank covers k.
  uint64_t lo = 0;
  uint64_t hi = super_rank_.size() - 1;
  while (lo < hi) {
    const uint64_t mid = (lo + hi + 1) / 2;
    if (super_rank_[mid] <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  uint64_t remaining = k - super_rank_[lo];
  uint64_t w = lo * kWordsPerSuper;
  while (true) {
    const uint64_t cnt = Popcount(bits_.Word(w));
    if (remaining < cnt) break;
    remaining -= cnt;
    ++w;
  }
  return (w << 6) + SelectInWord(bits_.Word(w), static_cast<int>(remaining));
}

uint64_t RankSelect::Select0(uint64_t k) const {
  // Zeros lack a directory; binary search Rank0 over superblock boundaries.
  uint64_t lo = 0;
  uint64_t hi = super_rank_.size() - 1;
  while (lo < hi) {
    const uint64_t mid = (lo + hi + 1) / 2;
    const uint64_t bits_before = mid * kWordsPerSuper * 64;
    const uint64_t zeros_before =
        (bits_before > bits_.size() ? bits_.size() : bits_before) -
        super_rank_[mid];
    if (zeros_before <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  uint64_t w = lo * kWordsPerSuper;
  uint64_t remaining = k - (w * 64 - super_rank_[lo]);
  while (true) {
    const uint64_t cnt = Popcount(~bits_.Word(w));
    if (remaining < cnt) break;
    remaining -= cnt;
    ++w;
  }
  return (w << 6) + SelectInWord(~bits_.Word(w), static_cast<int>(remaining));
}

}  // namespace bbf
