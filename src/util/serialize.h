#ifndef BBF_UTIL_SERIALIZE_H_
#define BBF_UTIL_SERIALIZE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "util/hash.h"

namespace bbf {

/// Little binary I/O helpers shared by every Save/Load implementation.
/// All encodings are little-endian fixed-width; Load functions return
/// false on truncated or malformed input instead of throwing.
///
/// Snapshot streams are untrusted input (a torn write or a flipped disk
/// bit must never crash the loader), so every reader here is defensive:
/// length fields are range-checked before they drive an allocation, and
/// bulk reads grow their buffers incrementally so a hostile length field
/// can at most make us allocate what the stream actually contains.

/// Hard ceiling on any single snapshot payload. Nothing in this library
/// produces frames anywhere near this; a length field above it is
/// corruption by definition.
inline constexpr uint64_t kMaxSnapshotPayloadBytes = uint64_t{1} << 31;

/// Ceiling on element counts read from snapshots (bits, slots, entries).
/// 2^38 bits = 32 GiB of bit-vector — beyond any filter this library
/// builds, but below the point where a corrupt count wedges the loader.
inline constexpr uint64_t kMaxSnapshotElements = uint64_t{1} << 38;

inline void WriteU64(std::ostream& os, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  os.write(buf, 8);
}

inline bool ReadU64(std::istream& is, uint64_t* v) {
  char buf[8];
  if (!is.read(buf, 8)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  *v = out;
  return true;
}

/// Reads a u64 and rejects values above `cap` — the guard every count or
/// length field in a Load path goes through, so a corrupt field cannot
/// drive a multi-GiB allocation or an effectively-infinite loop.
inline bool ReadU64Capped(std::istream& is, uint64_t* v, uint64_t cap) {
  uint64_t tmp;
  if (!ReadU64(is, &tmp) || tmp > cap) return false;
  *v = tmp;
  return true;
}

inline void WriteI32(std::ostream& os, int32_t v) {
  WriteU64(os, static_cast<uint64_t>(static_cast<uint32_t>(v)));
}

inline bool ReadI32(std::istream& is, int32_t* v) {
  uint64_t tmp;
  if (!ReadU64(is, &tmp)) return false;
  *v = static_cast<int32_t>(static_cast<uint32_t>(tmp));
  return true;
}

/// IEEE-754 doubles as their bit pattern (portable across the platforms
/// this library targets).
inline void WriteDouble(std::ostream& os, double v) {
  WriteU64(os, std::bit_cast<uint64_t>(v));
}

inline bool ReadDouble(std::istream& is, double* v) {
  uint64_t bits;
  if (!ReadU64(is, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

/// Reads exactly `len` bytes into `out`. The buffer grows chunk by chunk
/// while the stream keeps delivering, so a hostile length field makes the
/// read fail at end-of-stream instead of pre-allocating `len` bytes.
inline bool ReadBytes(std::istream& is, std::string* out, uint64_t len) {
  if (len > kMaxSnapshotPayloadBytes) return false;
  constexpr uint64_t kChunk = 64 * 1024;
  out->clear();
  while (out->size() < len) {
    const uint64_t want = std::min<uint64_t>(kChunk, len - out->size());
    const size_t old = out->size();
    out->resize(old + want);
    if (!is.read(out->data() + old, static_cast<std::streamsize>(want))) {
      out->clear();
      return false;
    }
  }
  return true;
}

// --- Snapshot framing --------------------------------------------------------
//
// Every persistent filter snapshot is wrapped in a self-describing frame
// (DESIGN.md §8):
//
//   magic    u64   "BBFSNAP1" (little-endian bytes)
//   version  u64   format version, currently 1
//   tag_len  u64   length of the filter-class tag (<= 64)
//   tag      bytes the filter's Name() — dispatch key for filter_io
//   len      u64   payload length in bytes (<= kMaxSnapshotPayloadBytes)
//   checksum u64   HashBytes(payload, kSnapshotChecksumSeed)
//   payload  bytes class-specific member serialization
//
// The checksum is over the raw payload only; header fields are protected
// implicitly (corrupt them and either the magic/caps reject the frame or
// the payload no longer matches the checksum).

inline constexpr uint64_t kSnapshotMagic = 0x3150414E53464242ULL;  // BBFSNAP1
inline constexpr uint64_t kSnapshotVersion = 1;
inline constexpr uint64_t kSnapshotChecksumSeed = 0xC0DEC0DE5EED5EEDULL;
inline constexpr uint64_t kMaxSnapshotTagBytes = 64;

inline bool WriteSnapshotFrame(std::ostream& os, std::string_view tag,
                               std::string_view payload) {
  if (tag.size() > kMaxSnapshotTagBytes ||
      payload.size() > kMaxSnapshotPayloadBytes) {
    return false;
  }
  WriteU64(os, kSnapshotMagic);
  WriteU64(os, kSnapshotVersion);
  WriteU64(os, tag.size());
  os.write(tag.data(), static_cast<std::streamsize>(tag.size()));
  WriteU64(os, payload.size());
  WriteU64(os, HashBytes(payload.data(), payload.size(),
                         kSnapshotChecksumSeed));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return os.good();
}

/// Reads and verifies one frame. On success fills `tag` and `payload` and
/// leaves the stream positioned right after the frame. On any defect —
/// bad magic, unknown version, oversized fields, truncation, checksum
/// mismatch — returns false.
inline bool ReadSnapshotFrame(std::istream& is, std::string* tag,
                              std::string* payload) {
  uint64_t magic, version, tag_len, payload_len, checksum;
  if (!ReadU64(is, &magic) || magic != kSnapshotMagic) return false;
  if (!ReadU64(is, &version) || version != kSnapshotVersion) return false;
  if (!ReadU64Capped(is, &tag_len, kMaxSnapshotTagBytes)) return false;
  if (!ReadBytes(is, tag, tag_len)) return false;
  if (!ReadU64Capped(is, &payload_len, kMaxSnapshotPayloadBytes)) {
    return false;
  }
  if (!ReadU64(is, &checksum)) return false;
  if (!ReadBytes(is, payload, payload_len)) return false;
  return HashBytes(payload->data(), payload->size(),
                   kSnapshotChecksumSeed) == checksum;
}

}  // namespace bbf

#endif  // BBF_UTIL_SERIALIZE_H_
