#ifndef BBF_UTIL_SERIALIZE_H_
#define BBF_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>

namespace bbf {

/// Little binary I/O helpers shared by every Save/Load implementation.
/// All encodings are little-endian fixed-width; Load functions return
/// false on truncated or malformed input instead of throwing.

inline void WriteU64(std::ostream& os, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  os.write(buf, 8);
}

inline bool ReadU64(std::istream& is, uint64_t* v) {
  char buf[8];
  if (!is.read(buf, 8)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(buf[i])) << (8 * i);
  }
  *v = out;
  return true;
}

inline void WriteI32(std::ostream& os, int32_t v) {
  WriteU64(os, static_cast<uint64_t>(static_cast<uint32_t>(v)));
}

inline bool ReadI32(std::istream& is, int32_t* v) {
  uint64_t tmp;
  if (!ReadU64(is, &tmp)) return false;
  *v = static_cast<int32_t>(static_cast<uint32_t>(tmp));
  return true;
}

}  // namespace bbf

#endif  // BBF_UTIL_SERIALIZE_H_
