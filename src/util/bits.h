#ifndef BBF_UTIL_BITS_H_
#define BBF_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace bbf {

/// Number of set bits in `x`.
inline int Popcount(uint64_t x) { return std::popcount(x); }

/// Index of the lowest set bit; undefined for x == 0.
inline int CountTrailingZeros(uint64_t x) { return std::countr_zero(x); }

/// Index of the highest set bit; undefined for x == 0.
inline int HighestSetBit(uint64_t x) { return 63 - std::countl_zero(x); }

/// Number of bits needed to represent `x` (0 for x == 0).
inline int BitWidth(uint64_t x) { return std::bit_width(x); }

/// A mask with the low `n` bits set, for n in [0, 64].
inline uint64_t LowMask(int n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/// Position (0-based, from LSB) of the (k+1)-th set bit of `x`.
/// Requires k < Popcount(x). Branch-free broadword select.
inline int SelectInWord(uint64_t x, int k) {
  for (int i = 0; i < k; ++i) x &= x - 1;  // Clear k lowest set bits.
  return CountTrailingZeros(x);
}

/// Next power of two >= x (returns 1 for x == 0).
inline uint64_t NextPow2(uint64_t x) { return x <= 1 ? 1 : std::bit_ceil(x); }

/// True if x is a power of two (and nonzero).
inline bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Lemire's fast alternative to `h % n` for uniformly distributed h.
inline uint64_t FastRange64(uint64_t h, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(h) * static_cast<__uint128_t>(n)) >> 64);
}

/// Software prefetch hints for the batch query paths: hash a batch of keys
/// up front, request every target cache line, then probe — hiding DRAM
/// latency behind the remaining hash work. No-ops on compilers without
/// `__builtin_prefetch`.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline void PrefetchWrite(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace bbf

#endif  // BBF_UTIL_BITS_H_
