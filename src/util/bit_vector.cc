#include "util/bit_vector.h"

#include "util/bits.h"
#include "util/serialize.h"

namespace bbf {

void BitVector::Resize(uint64_t n) {
  size_ = n;
  words_.resize((n + 63) / 64, 0);
  // Clear any stale bits beyond the new size in the last word so that
  // CountOnes and word-granularity scans stay exact.
  if (n % 64 != 0 && !words_.empty()) {
    words_.back() &= LowMask(static_cast<int>(n % 64));
  }
}

uint64_t BitVector::GetBits(uint64_t pos, int width) const {
  if (width == 0) return 0;
  const uint64_t w = pos >> 6;
  const int off = static_cast<int>(pos & 63);
  uint64_t v = words_[w] >> off;
  if (off + width > 64) {
    v |= words_[w + 1] << (64 - off);
  }
  return v & LowMask(width);
}

void BitVector::SetBits(uint64_t pos, int width, uint64_t value) {
  if (width == 0) return;
  value &= LowMask(width);
  const uint64_t w = pos >> 6;
  const int off = static_cast<int>(pos & 63);
  words_[w] = (words_[w] & ~(LowMask(width) << off)) | (value << off);
  if (off + width > 64) {
    const int spill = off + width - 64;
    words_[w + 1] =
        (words_[w + 1] & ~LowMask(spill)) | (value >> (width - spill));
  }
}

uint64_t BitVector::CountOnes() const {
  uint64_t total = 0;
  for (uint64_t w : words_) total += Popcount(w);
  return total;
}

void BitVector::Reset() {
  for (uint64_t& w : words_) w = 0;
}

void BitVector::Save(std::ostream& os) const {
  WriteU64(os, size_);
  for (uint64_t w : words_) WriteU64(os, w);
}

bool BitVector::Load(std::istream& is) {
  // Defensive: the size field is untrusted (snapshots survive torn writes
  // and bit rot), so cap it and grow the word buffer incrementally — a
  // hostile length can only make us allocate what the stream delivers.
  uint64_t n;
  if (!ReadU64Capped(is, &n, kMaxSnapshotElements)) return false;
  const uint64_t num_words = (n + 63) / 64;
  WordVector words;
  for (uint64_t i = 0; i < num_words; ++i) {
    uint64_t w;
    if (!ReadU64(is, &w)) return false;
    words.push_back(w);
  }
  // Reapply the stale-bit clearing invariant.
  if (n % 64 != 0 && !words.empty()) {
    words.back() &= LowMask(static_cast<int>(n % 64));
  }
  size_ = n;
  words_ = std::move(words);
  return true;
}

}  // namespace bbf
