#include "util/compact_vector.h"

#include "util/serialize.h"

namespace bbf {

CompactVector::CompactVector(uint64_t n, int width)
    : size_(n), width_(width), bits_(n * width) {}

void CompactVector::Resize(uint64_t n) {
  size_ = n;
  bits_.Resize(n * width_);
}

void CompactVector::Save(std::ostream& os) const {
  WriteU64(os, size_);
  WriteI32(os, width_);
  bits_.Save(os);
}

bool CompactVector::Load(std::istream& is) {
  // Untrusted input: cap the element count, bound the count*width product,
  // and require the backing bit vector to match it exactly — a corrupt
  // header cannot leave Get/Set reading out of bounds.
  uint64_t n;
  int32_t w;
  if (!ReadU64Capped(is, &n, kMaxSnapshotElements) || !ReadI32(is, &w) ||
      w < 0 || w > 64) {
    return false;
  }
  const uint64_t total_bits = n * static_cast<uint64_t>(w);
  if (w > 0 && total_bits / static_cast<uint64_t>(w) != n) return false;
  if (total_bits > kMaxSnapshotElements) return false;
  BitVector bits;
  if (!bits.Load(is) || bits.size() != total_bits) return false;
  size_ = n;
  width_ = w;
  bits_ = std::move(bits);
  return true;
}

}  // namespace bbf
