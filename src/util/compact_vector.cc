#include "util/compact_vector.h"

#include "util/serialize.h"

namespace bbf {

CompactVector::CompactVector(uint64_t n, int width)
    : size_(n), width_(width), bits_(n * width) {}

void CompactVector::Resize(uint64_t n) {
  size_ = n;
  bits_.Resize(n * width_);
}

void CompactVector::Save(std::ostream& os) const {
  WriteU64(os, size_);
  WriteI32(os, width_);
  bits_.Save(os);
}

bool CompactVector::Load(std::istream& is) {
  uint64_t n;
  int32_t w;
  if (!ReadU64(is, &n) || !ReadI32(is, &w) || w < 0 || w > 64) return false;
  size_ = n;
  width_ = w;
  return bits_.Load(is);
}

}  // namespace bbf
