#ifndef BBF_UTIL_ALIGNED_H_
#define BBF_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>

namespace bbf {

/// Minimal cache-line-aligning allocator. BitVector uses it so that a
/// 512-bit filter block (8 words) starting at a block boundary occupies
/// exactly ONE cache line — the blocked-bloom paths then pay a single miss
/// and a single prefetch per operation instead of straddling two lines.
template <typename T, size_t Alignment = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr size_t kAlignment =
      Alignment > alignof(T) ? Alignment : alignof(T);

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace bbf

#endif  // BBF_UTIL_ALIGNED_H_
