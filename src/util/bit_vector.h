#ifndef BBF_UTIL_BIT_VECTOR_H_
#define BBF_UTIL_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "util/aligned.h"
#include "util/bits.h"

namespace bbf {

/// A resizable vector of bits with word-granularity access. Used as the
/// backing store for Bloom filters, metadata planes of quotient filters,
/// and the succinct structures in util/.
class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `n` zero bits.
  explicit BitVector(uint64_t n) { Resize(n); }

  BitVector(const BitVector&) = default;
  BitVector& operator=(const BitVector&) = default;
  BitVector(BitVector&&) = default;
  BitVector& operator=(BitVector&&) = default;

  /// Number of bits.
  uint64_t size() const { return size_; }

  /// Resizes to `n` bits; new bits are zero.
  void Resize(uint64_t n);

  bool Get(uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(uint64_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  void Clear(uint64_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  void Assign(uint64_t i, bool v) {
    if (v) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Reads `width` (<= 64) bits starting at bit offset `pos`.
  uint64_t GetBits(uint64_t pos, int width) const;

  /// Writes the low `width` (<= 64) bits of `value` at bit offset `pos`.
  void SetBits(uint64_t pos, int width, uint64_t value);

  /// Raw 64-bit word `w` (bits [64w, 64w+63]).
  uint64_t Word(uint64_t w) const { return words_[w]; }
  uint64_t NumWords() const { return words_.size(); }

  /// Raw word storage for the SIMD kernel layer (src/simd). The backing
  /// array is 64-byte aligned, so any run of 8 words starting at a
  /// multiple of 8 is exactly one cache line.
  const uint64_t* Words() const { return words_.data(); }
  uint64_t* MutableWords() { return words_.data(); }

  /// Hints the cache line holding word `w` (resp. bit `i`) into cache.
  /// Used by the batched filter paths: prefetch every target line for a
  /// batch, then probe. `for_write` requests exclusive ownership (inserts).
  void PrefetchWord(uint64_t w, bool for_write = false) const {
    if (for_write) {
      PrefetchWrite(&words_[w]);
    } else {
      PrefetchRead(&words_[w]);
    }
  }
  void PrefetchBit(uint64_t i, bool for_write = false) const {
    PrefetchWord(i >> 6, for_write);
  }

  /// Total set bits.
  uint64_t CountOnes() const;

  /// Sets all bits to zero without changing the size.
  void Reset();

  /// Heap bytes used by the backing store.
  size_t MemoryUsageBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Binary serialization (little-endian); Load returns false on bad input.
  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  using WordVector = std::vector<uint64_t, AlignedAllocator<uint64_t>>;

  uint64_t size_ = 0;
  WordVector words_;
};

}  // namespace bbf

#endif  // BBF_UTIL_BIT_VECTOR_H_
