#ifndef BBF_UTIL_HASH_H_
#define BBF_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bbf {

/// Strong 64-bit mixing of a 64-bit key (xxhash/splitmix-style finalizer).
/// Bijective for a fixed seed, so it can also serve as an invertible
/// scrambling permutation.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Seeded hash of a 64-bit key.
inline uint64_t Hash64(uint64_t key, uint64_t seed = 0) {
  return Mix64(key + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// Seeded hash of an arbitrary byte string (wyhash-flavoured; see hash.cc).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// Convenience overload for string views.
inline uint64_t HashBytes(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

}  // namespace bbf

#endif  // BBF_UTIL_HASH_H_
