#ifndef BBF_UTIL_HASH_H_
#define BBF_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bbf {

/// Strong 64-bit mixing of a 64-bit key (xxhash/splitmix-style finalizer).
/// Bijective for a fixed seed, so it can also serve as an invertible
/// scrambling permutation.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Exact inverse of Mix64: the xorshift-33 steps are involutions and the
/// multiplier constants are odd, hence invertible mod 2^64. Lets layers
/// that model the *raw* key space (e.g. the learned filter's intervals)
/// recover the original integer key from a canonical pre-mixed value.
inline uint64_t InverseMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0x9cb4b2f8129337dbULL;  // 0xc4ceb9fe1a85ec53^-1 mod 2^64.
  x ^= x >> 33;
  x *= 0x4f74430c22a54005ULL;  // 0xff51afd7ed558ccd^-1 mod 2^64.
  x ^= x >> 33;
  return x;
}

/// Seeded hash of a 64-bit key.
inline uint64_t Hash64(uint64_t key, uint64_t seed = 0) {
  return Mix64(key + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// 128-bit multiply-and-fold (the wyhash/mum primitive): one widening
/// multiply whose high and low halves are xor-folded. A single Mum is a
/// full-avalanche mix when either operand is a good odd constant, at half
/// the multiply count of Mix64 — HashedKey::Derive builds on it.
inline uint64_t Mum(uint64_t a, uint64_t b) {
  __uint128_t r = static_cast<__uint128_t>(a) * b;
  return static_cast<uint64_t>(r) ^ static_cast<uint64_t>(r >> 64);
}

/// Seeded hash of an arbitrary byte string (wyhash-flavoured; see hash.cc).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// Convenience overload for string views.
inline uint64_t HashBytes(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

}  // namespace bbf

#endif  // BBF_UTIL_HASH_H_
