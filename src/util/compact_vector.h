#ifndef BBF_UTIL_COMPACT_VECTOR_H_
#define BBF_UTIL_COMPACT_VECTOR_H_

#include <cstddef>
#include <cstdint>

#include "util/bit_vector.h"

namespace bbf {

/// A vector of fixed-width integers packed into a bit vector. The width is
/// chosen at construction (1..64 bits). This is the remainder/value store
/// for every fingerprint-based filter in the library.
class CompactVector {
 public:
  CompactVector() = default;
  /// Creates `n` zero entries of `width` bits each.
  CompactVector(uint64_t n, int width);

  uint64_t size() const { return size_; }
  int width() const { return width_; }

  uint64_t Get(uint64_t i) const { return bits_.GetBits(i * width_, width_); }
  void Set(uint64_t i, uint64_t v) { bits_.SetBits(i * width_, width_, v); }

  /// Packed read of entries [i, i+4) as one word: entry i in the low
  /// `width()` bits, entry i+3 in the top field, upper bits zero. This is
  /// the whole 4-slot bucket of a cuckoo-family filter in one load, fed to
  /// the SIMD/SWAR match kernels (src/simd). Requires 4 * width() <= 64.
  uint64_t GetRun4(uint64_t i) const {
    return bits_.GetBits(i * width_, width_ * 4);
  }

  /// Raw word storage plus the bit offset of entry `i`, for kernels that
  /// read packed runs themselves.
  const uint64_t* Words() const { return bits_.Words(); }
  uint64_t BitOffset(uint64_t i) const { return i * width_; }

  /// Hints the cache lines holding entries [i, i + count) into cache; the
  /// batched filter paths prefetch whole buckets before probing them.
  void Prefetch(uint64_t i, uint64_t count = 1, bool for_write = false) const {
    const uint64_t first = i * width_;
    const uint64_t last = (i + count) * width_ - 1;
    bits_.PrefetchBit(first, for_write);
    if ((last >> 6) != (first >> 6)) bits_.PrefetchBit(last, for_write);
  }

  /// Resizes to `n` entries, preserving existing values; new entries zero.
  void Resize(uint64_t n);

  /// Sets all entries to zero.
  void Reset() { bits_.Reset(); }

  size_t MemoryUsageBytes() const { return bits_.MemoryUsageBytes(); }

  /// Binary serialization; Load returns false on bad input.
  void Save(std::ostream& os) const;
  bool Load(std::istream& is);

 private:
  uint64_t size_ = 0;
  int width_ = 0;
  BitVector bits_;
};

}  // namespace bbf

#endif  // BBF_UTIL_COMPACT_VECTOR_H_
