#include "util/elias_fano.h"

#include "util/bits.h"

namespace bbf {

EliasFano::EliasFano(const std::vector<uint64_t>& sorted, uint64_t universe) {
  n_ = sorted.size();
  if (universe == 0) {
    universe = sorted.empty() ? 1 : sorted.back() + 1;
  }
  universe_ = universe;
  if (n_ == 0) return;
  low_bits_ = (universe_ / n_) <= 1
                  ? 0
                  : HighestSetBit(universe_ / n_);
  lower_ = CompactVector(n_, low_bits_ == 0 ? 1 : low_bits_);
  const uint64_t max_high = (universe_ - 1) >> low_bits_;
  BitVector upper(n_ + max_high + 1);
  for (uint64_t i = 0; i < n_; ++i) {
    const uint64_t v = sorted[i];
    if (low_bits_ > 0) lower_.Set(i, v & LowMask(low_bits_));
    upper.Set((v >> low_bits_) + i);
  }
  upper_ = RankSelect(std::move(upper));
}

uint64_t EliasFano::Get(uint64_t i) const {
  const uint64_t high = upper_.Select1(i) - i;
  const uint64_t low = low_bits_ > 0 ? lower_.Get(i) : 0;
  return (high << low_bits_) | low;
}

std::optional<uint64_t> EliasFano::NextGeq(uint64_t x) const {
  if (n_ == 0) return std::nullopt;
  if (x >= universe_) return std::nullopt;
  const uint64_t h = x >> low_bits_;
  // Index of the first element whose high part is >= h, and its position in
  // the unary stream. Elements with high <= j all precede zero #j, which
  // sits at position j + (#elements with high <= j).
  uint64_t idx;
  uint64_t pos;
  if (h == 0) {
    idx = 0;
    pos = 0;
  } else {
    if (h - 1 >= upper_.num_zeros()) return std::nullopt;
    pos = upper_.Select0(h - 1) + 1;
    idx = pos - h;
  }
  const uint64_t xlow = low_bits_ > 0 ? (x & LowMask(low_bits_)) : 0;
  // Scan the stretch of elements whose high part equals h.
  while (pos < upper_.size() && upper_.bits().Get(pos)) {
    const uint64_t low = low_bits_ > 0 ? lower_.Get(idx) : 0;
    if (low >= xlow) return idx;
    ++idx;
    ++pos;
  }
  // Any later element has high > h, hence value > x.
  if (idx < n_) return idx;
  return std::nullopt;
}

bool EliasFano::ContainsInRange(uint64_t lo, uint64_t hi) const {
  const std::optional<uint64_t> i = NextGeq(lo);
  return i.has_value() && Get(*i) <= hi;
}

}  // namespace bbf
