#include "util/hash.h"

#include <cstring>

namespace bbf {
namespace {

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

constexpr uint64_t kP0 = 0xa0761d6478bd642fULL;
constexpr uint64_t kP1 = 0xe7037ed1a0b428dbULL;
constexpr uint64_t kP2 = 0x8ebc6af09c88c6e3ULL;

}  // namespace

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed ^ kP0;
  size_t n = len;
  while (n >= 16) {
    h = Mum(Load64(p) ^ kP1, Load64(p + 8) ^ h);
    p += 16;
    n -= 16;
  }
  uint64_t a = 0;
  uint64_t b = 0;
  if (n >= 8) {
    a = Load64(p);
    if (n > 8) b = Load64(p + n - 8);
  } else if (n >= 4) {
    a = Load32(p);
    b = Load32(p + n - 4);
  } else if (n > 0) {
    a = (static_cast<uint64_t>(p[0]) << 16) |
        (static_cast<uint64_t>(p[n >> 1]) << 8) | p[n - 1];
  }
  return Mum(kP2 ^ len, Mum(a ^ kP1, b ^ h));
}

}  // namespace bbf
