#ifndef BBF_UTIL_RANK_SELECT_H_
#define BBF_UTIL_RANK_SELECT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bit_vector.h"

namespace bbf {

/// Static rank/select directory over a BitVector. Construct once the bit
/// vector is final; the directory keeps its own copy of the bits.
///
/// Rank uses cumulative counts per 512-bit superblock plus word popcounts;
/// Select binary-searches the superblock directory and finishes in-word.
class RankSelect {
 public:
  RankSelect() = default;
  /// Builds the directory over a snapshot of `bits`.
  explicit RankSelect(BitVector bits);

  const BitVector& bits() const { return bits_; }
  uint64_t size() const { return bits_.size(); }
  /// Total number of 1-bits.
  uint64_t num_ones() const { return num_ones_; }
  /// Total number of 0-bits.
  uint64_t num_zeros() const { return bits_.size() - num_ones_; }

  /// Number of 1-bits in positions [0, i). Requires i <= size().
  uint64_t Rank1(uint64_t i) const;
  /// Number of 0-bits in positions [0, i). Requires i <= size().
  uint64_t Rank0(uint64_t i) const { return i - Rank1(i); }

  /// Position of the (k+1)-th 1-bit (0-indexed k). Requires k < num_ones().
  uint64_t Select1(uint64_t k) const;
  /// Position of the (k+1)-th 0-bit (0-indexed k). Requires k < num_zeros().
  uint64_t Select0(uint64_t k) const;

  size_t MemoryUsageBytes() const {
    return bits_.MemoryUsageBytes() + super_rank_.size() * sizeof(uint64_t);
  }

 private:
  static constexpr uint64_t kWordsPerSuper = 8;  // 512-bit superblocks.

  BitVector bits_;
  uint64_t num_ones_ = 0;
  // super_rank_[s] = number of ones before superblock s.
  std::vector<uint64_t> super_rank_;
};

}  // namespace bbf

#endif  // BBF_UTIL_RANK_SELECT_H_
