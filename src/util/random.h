#ifndef BBF_UTIL_RANDOM_H_
#define BBF_UTIL_RANDOM_H_

#include <cstdint>

namespace bbf {

/// SplitMix64: tiny, fast, statistically solid PRNG. Deterministic for a
/// given seed, which all tests and benchmarks rely on.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed = 0x853c49e6748fea9bULL) : state_(seed) {}

  /// Next 64 uniformly random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Multiply-shift range reduction; bias is negligible for our use.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

}  // namespace bbf

#endif  // BBF_UTIL_RANDOM_H_
