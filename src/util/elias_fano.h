#ifndef BBF_UTIL_ELIAS_FANO_H_
#define BBF_UTIL_ELIAS_FANO_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/compact_vector.h"
#include "util/rank_select.h"

namespace bbf {

/// Elias–Fano encoding of a monotone non-decreasing sequence of 64-bit
/// integers. Supports random access, successor (NextGeq) and predecessor
/// queries. This is the storage layer of the Grafite and SNARF range
/// filters (§2.5 of the paper) and takes ~n(2 + lg(u/n)) bits.
class EliasFano {
 public:
  EliasFano() = default;

  /// Builds from a sorted (non-decreasing) sequence. `universe` must be
  /// strictly greater than the last element; pass 0 to derive it.
  EliasFano(const std::vector<uint64_t>& sorted, uint64_t universe = 0);

  uint64_t size() const { return n_; }
  uint64_t universe() const { return universe_; }

  /// The i-th element. Requires i < size().
  uint64_t Get(uint64_t i) const;

  /// Index of the first element >= x, or nullopt if none.
  std::optional<uint64_t> NextGeq(uint64_t x) const;

  /// True iff some element lies in [lo, hi] (inclusive).
  bool ContainsInRange(uint64_t lo, uint64_t hi) const;

  size_t MemoryUsageBytes() const {
    return upper_.MemoryUsageBytes() + lower_.MemoryUsageBytes();
  }

 private:
  uint64_t n_ = 0;
  uint64_t universe_ = 0;
  int low_bits_ = 0;
  RankSelect upper_;     // Unary-coded high parts: element i -> bit at
                         // (high_i + i).
  CompactVector lower_;  // low_bits_ per element.
};

}  // namespace bbf

#endif  // BBF_UTIL_ELIAS_FANO_H_
