#ifndef BBF_STATICF_RIBBON_FILTER_H_
#define BBF_STATICF_RIBBON_FILTER_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "util/compact_vector.h"

namespace bbf {

/// Ribbon filter [Dillinger et al. 2022] (§2.7): a static filter that
/// solves a banded linear system over GF(2). Each key contributes one
/// equation whose 64 coefficient bits start at a hashed position; on-the-
/// fly Gaussian elimination keeps the band upper-triangular, and back-
/// substitution yields an r-bit solution column per slot. Space is
/// ~1.05-1.15 n lg(1/eps) bits here (the paper's 1.005 needs the smash/
/// bumping refinements; we back off the load factor on rare construction
/// failures instead); queries XOR up to 64 solution entries — the "slower than
/// the fastest competing filters" query cost the paper notes.
class RibbonFilter : public Filter {
 public:
  /// Builds over distinct keys (duplicates removed internally).
  RibbonFilter(const std::vector<uint64_t>& keys, int fingerprint_bits);

  static RibbonFilter ForFpr(const std::vector<uint64_t>& keys, double fpr);

  using Filter::Contains;
  using Filter::Insert;

  bool Insert(HashedKey) override { return false; }
  bool Contains(HashedKey key) const override;
  size_t SpaceBits() const override {
    return solution_.size() * solution_.width();
  }
  uint64_t NumKeys() const override { return num_keys_; }
  /// Static: full by construction.
  double LoadFactor() const override { return 1.0; }
  FilterClass Class() const override { return FilterClass::kStatic; }
  std::string_view Name() const override { return "ribbon"; }

  int build_attempts() const { return build_attempts_; }

  static constexpr int kRibbonWidth = 64;

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  uint64_t StartOf(HashedKey key) const;
  uint64_t CoeffOf(HashedKey key) const;
  uint64_t FingerprintOf(HashedKey key) const;

  CompactVector solution_;  // One r-bit entry per slot (plus overhang).
  int fingerprint_bits_ = 0;
  uint64_t num_starts_ = 0;
  uint64_t seed_ = 0;
  uint64_t num_keys_ = 0;
  int build_attempts_ = 0;
};

}  // namespace bbf

#endif  // BBF_STATICF_RIBBON_FILTER_H_
