#ifndef BBF_STATICF_XOR_FILTER_H_
#define BBF_STATICF_XOR_FILTER_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "core/filter.h"
#include "util/compact_vector.h"

namespace bbf {

/// XOR filter [Graf & Lemire 2020] (§2.7): a static algebraic filter
/// storing r-bit fingerprints in ~1.23n cells such that for every key,
/// fp(key) == T[h0] ^ T[h1] ^ T[h2]. Construction peels the 3-hypergraph;
/// queries are three probes and two XORs. 1.22 n lg(1/eps) bits — well
/// under a Bloom filter's 1.44 factor.
class XorFilter : public Filter {
 public:
  /// Builds over distinct `keys` (duplicates are removed internally).
  /// Each raw key is hashed exactly once here; everything downstream
  /// consumes the canonical value.
  XorFilter(const std::vector<uint64_t>& keys, int fingerprint_bits);

  static XorFilter ForFpr(const std::vector<uint64_t>& keys, double fpr);

  using Filter::Contains;
  using Filter::Insert;

  /// Static filter: no inserts after construction.
  bool Insert(HashedKey) override { return false; }
  bool Contains(HashedKey key) const override;
  size_t SpaceBits() const override {
    return table_.size() * table_.width();
  }
  uint64_t NumKeys() const override { return num_keys_; }
  /// Static: full by construction.
  double LoadFactor() const override { return 1.0; }
  FilterClass Class() const override { return FilterClass::kStatic; }
  std::string_view Name() const override { return "xor"; }

  int fingerprint_bits() const { return table_.width(); }
  int build_attempts() const { return build_attempts_; }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  uint64_t FingerprintOf(HashedKey key) const;

  CompactVector table_;
  uint32_t segment_len_ = 0;
  uint64_t seed_ = 0;
  uint64_t num_keys_ = 0;
  int build_attempts_ = 0;
};

}  // namespace bbf

#endif  // BBF_STATICF_XOR_FILTER_H_
