#include "staticf/xor_filter.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "staticf/peeling.h"
#include "util/bits.h"
#include "util/serialize.h"

namespace bbf {

XorFilter::XorFilter(const std::vector<uint64_t>& keys, int fingerprint_bits) {
  // Hash-once boundary: mix every raw key here, then build purely over
  // canonical values (Mix64 is bijective, so dedup is preserved).
  std::vector<uint64_t> unique;
  unique.reserve(keys.size());
  for (uint64_t k : keys) unique.push_back(HashedKey(k).value());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  num_keys_ = unique.size();

  const uint32_t capacity = XorPeeler::CapacityFor(unique.size());
  segment_len_ = capacity / 3;
  table_ = CompactVector(capacity, fingerprint_bits);

  std::vector<PeelEntry> order;
  for (seed_ = 1;; ++seed_) {
    ++build_attempts_;
    if (XorPeeler::Peel(unique, capacity, seed_, &order)) break;
  }
  // Back-substitute in reverse peel order: each key's owned slot is free
  // to absorb whatever makes the 3-way XOR equal its fingerprint.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    uint32_t s[3];
    XorPeeler::Slots(it->key, segment_len_, seed_, s);
    uint64_t v = FingerprintOf(HashedKey::FromMix(it->key));
    for (int i = 0; i < 3; ++i) {
      if (s[i] != it->slot) v ^= table_.Get(s[i]);
    }
    table_.Set(it->slot, v);
  }
}

XorFilter XorFilter::ForFpr(const std::vector<uint64_t>& keys, double fpr) {
  const int bits =
      std::max(2, static_cast<int>(std::ceil(-std::log2(fpr))));
  return XorFilter(keys, bits);
}

uint64_t XorFilter::FingerprintOf(HashedKey key) const {
  return key.Derive(seed_ + 0xF1A9) & LowMask(table_.width());
}

bool XorFilter::Contains(HashedKey key) const {
  uint32_t s[3];
  XorPeeler::Slots(key.value(), segment_len_, seed_, s);
  const uint64_t v =
      table_.Get(s[0]) ^ table_.Get(s[1]) ^ table_.Get(s[2]);
  return v == FingerprintOf(key);
}

bool XorFilter::SavePayload(std::ostream& os) const {
  WriteU64(os, seed_);
  WriteU64(os, segment_len_);
  WriteU64(os, num_keys_);
  table_.Save(os);
  return os.good();
}

bool XorFilter::LoadPayload(std::istream& is) {
  uint64_t seed;
  uint64_t seg;
  uint64_t n;
  if (!ReadU64(is, &seed) ||
      !ReadU64Capped(is, &seg, uint64_t{0xFFFFFFFF} / 3) || seg == 0 ||
      !ReadU64(is, &n)) {
    return false;
  }
  CompactVector table;
  // Construction always makes exactly three equal segments, and peeling
  // needs capacity > n.
  if (!table.Load(is) || table.size() != seg * 3 || table.width() < 1 ||
      n > table.size()) {
    return false;
  }
  seed_ = seed;
  segment_len_ = static_cast<uint32_t>(seg);
  num_keys_ = n;
  table_ = std::move(table);
  build_attempts_ = 0;  // Build-time stat; unknown after a reload.
  return true;
}

}  // namespace bbf
