#ifndef BBF_STATICF_BLOOMIER_FILTER_H_
#define BBF_STATICF_BLOOMIER_FILTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/key.h"
#include "util/compact_vector.h"

namespace bbf {

/// Bloomier filter [Chazelle et al. 2004] (§2.4, §3.3): a *static maplet*.
/// Built over a fixed key set, it returns each key's value exactly
/// (PRS = 1) and an arbitrary value for non-keys (NRS = 1).
///
/// The mutable two-table construction: peeling assigns every key a private
/// slot; an XOR-encoded tau table (2 bits per slot) tells each key which
/// of its three hash slots it owns, and the values live in a direct-
/// indexed table at the owned slot. Because owned slots form a perfect
/// matching, values of existing keys can be updated in place without
/// disturbing any other key — but the key *set* is immutable, exactly the
/// "supports updates to values ... does not support insertions of new
/// data entries" contract in §2.4.
class BloomierFilter {
 public:
  /// Builds over (key, value) pairs with distinct keys; values are
  /// truncated to `value_bits`.
  BloomierFilter(const std::vector<std::pair<uint64_t, uint64_t>>& entries,
                 int value_bits);

  /// The value for `key`: exact for built keys, arbitrary otherwise.
  uint64_t Get(HashedKey key) const;
  uint64_t Get(uint64_t key) const { return Get(HashedKey(key)); }

  /// Rewrites the value of an existing key in place. Calling this for a
  /// key outside the build set overwrites some unrelated slot — the
  /// classic Bloomier contract.
  void Update(HashedKey key, uint64_t new_value);
  void Update(uint64_t key, uint64_t new_value) {
    Update(HashedKey(key), new_value);
  }

  size_t SpaceBits() const {
    return tau_table_.size() * tau_table_.width() +
           value_table_.size() * value_table_.width();
  }
  uint64_t NumKeys() const { return num_keys_; }
  int value_bits() const { return value_table_.width(); }

 private:
  /// The slot this key privately owns (exact for built keys).
  uint32_t OwnedSlot(HashedKey key) const;

  CompactVector tau_table_;    // 2-bit XOR-encoded owned-slot index.
  CompactVector value_table_;  // Direct-indexed values.
  uint32_t segment_len_ = 0;
  uint64_t seed_ = 0;
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_STATICF_BLOOMIER_FILTER_H_
