#include "staticf/peeling.h"

#include <algorithm>

#include "core/key.h"
#include "util/bits.h"

namespace bbf {

uint32_t XorPeeler::CapacityFor(uint64_t n) {
  const uint64_t c = static_cast<uint64_t>(1.23 * static_cast<double>(n)) + 32;
  const uint32_t segment = static_cast<uint32_t>((c + 2) / 3);
  return segment * 3;
}

void XorPeeler::Slots(uint64_t key, uint32_t segment_len, uint64_t seed,
                      uint32_t out[3]) {
  // One slot per segment, each from an independent derived stream
  // (robust at any n). `key` is already canonical; no re-mix of the raw
  // key happens here.
  const HashedKey hk = HashedKey::FromMix(key);
  for (int i = 0; i < 3; ++i) {
    const uint64_t h = hk.Derive(seed + 0x9E37 * (i + 1));
    out[i] = static_cast<uint32_t>(i) * segment_len +
             static_cast<uint32_t>(FastRange64(h, segment_len));
  }
}

bool XorPeeler::Peel(const std::vector<uint64_t>& keys, uint32_t capacity,
                     uint64_t seed, std::vector<PeelEntry>* order) {
  const uint32_t segment_len = capacity / 3;
  // Per-slot key-count and XOR-of-keys: a count-1 slot's xor is its key.
  std::vector<uint32_t> count(capacity, 0);
  std::vector<uint64_t> xor_keys(capacity, 0);
  for (uint64_t key : keys) {
    uint32_t s[3];
    Slots(key, segment_len, seed, s);
    for (int i = 0; i < 3; ++i) {
      ++count[s[i]];
      xor_keys[s[i]] ^= key;
    }
  }
  std::vector<uint32_t> queue;
  queue.reserve(capacity);
  for (uint32_t i = 0; i < capacity; ++i) {
    if (count[i] == 1) queue.push_back(i);
  }
  order->clear();
  order->reserve(keys.size());
  while (!queue.empty()) {
    const uint32_t slot = queue.back();
    queue.pop_back();
    if (count[slot] != 1) continue;  // Became 0 since enqueued.
    const uint64_t key = xor_keys[slot];
    order->push_back(PeelEntry{key, slot});
    uint32_t s[3];
    Slots(key, segment_len, seed, s);
    for (int i = 0; i < 3; ++i) {
      --count[s[i]];
      xor_keys[s[i]] ^= key;
      if (count[s[i]] == 1) queue.push_back(s[i]);
    }
  }
  return order->size() == keys.size();
}

}  // namespace bbf
