#ifndef BBF_STATICF_PEELING_H_
#define BBF_STATICF_PEELING_H_

#include <cstdint>
#include <vector>

namespace bbf {

/// Shared 3-hypergraph peeling used by the XOR and Bloomier filters
/// (§2.7, §2.4). Each key maps to three slots, one per equal segment of a
/// table of ~1.23n cells; peeling repeatedly extracts a slot referenced by
/// exactly one remaining key, producing an order in which each key "owns"
/// a private slot. Back-substitution in reverse order then satisfies
/// key -> payload equations of the form
///   payload(key) = T[h0] ^ T[h1] ^ T[h2].
///
/// All keys here are *canonical* pre-mixed values (HashedKey::value());
/// builders hash raw keys exactly once at their own entry point. The
/// XOR-of-keys peeling trick needs the raw 64-bit value, so the peeler
/// carries the canonical form rather than HashedKey itself.
struct PeelEntry {
  uint64_t key;   // Canonical (pre-mixed) key value.
  uint32_t slot;  // The slot this key uniquely owns.
};

class XorPeeler {
 public:
  /// Attempts to peel canonical `keys` into `capacity` slots with hash
  /// `seed`. Returns true and fills `order` (peel order) on success.
  static bool Peel(const std::vector<uint64_t>& keys, uint32_t capacity,
                   uint64_t seed, std::vector<PeelEntry>* order);

  /// The three candidate slots of canonical `key` for the given geometry.
  static void Slots(uint64_t key, uint32_t segment_len, uint64_t seed,
                    uint32_t out[3]);

  /// Table capacity for n keys: 3 equal segments, ~1.23n total.
  static uint32_t CapacityFor(uint64_t n);
};

}  // namespace bbf

#endif  // BBF_STATICF_PEELING_H_
