#include "staticf/bloomier_filter.h"

#include "staticf/peeling.h"
#include "util/bits.h"

namespace bbf {

BloomierFilter::BloomierFilter(
    const std::vector<std::pair<uint64_t, uint64_t>>& entries,
    int value_bits)
    : num_keys_(entries.size()) {
  // Hash-once boundary: mix each raw key here; the peeler and every
  // probe work on canonical values.
  std::vector<uint64_t> keys;
  keys.reserve(entries.size());
  for (const auto& [k, v] : entries) keys.push_back(HashedKey(k).value());

  const uint32_t capacity = XorPeeler::CapacityFor(keys.size());
  segment_len_ = capacity / 3;
  tau_table_ = CompactVector(capacity, 2);
  value_table_ = CompactVector(capacity, value_bits);

  std::vector<PeelEntry> order;
  for (seed_ = 1;; ++seed_) {
    if (XorPeeler::Peel(keys, capacity, seed_, &order)) break;
  }
  // Reverse peel order: encode each key's owned-slot index tau such that
  // tau(key) = T[h0] ^ T[h1] ^ T[h2].
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    uint32_t s[3];
    XorPeeler::Slots(it->key, segment_len_, seed_, s);
    uint64_t tau = 0;
    uint64_t acc = 0;
    for (uint64_t i = 0; i < 3; ++i) {
      if (s[i] == it->slot) {
        tau = i;
      } else {
        acc ^= tau_table_.Get(s[i]);
      }
    }
    tau_table_.Set(it->slot, tau ^ acc);
  }
  // Owned slots form a perfect matching: write values directly.
  for (const auto& [k, v] : entries) {
    value_table_.Set(OwnedSlot(HashedKey(k)), v & LowMask(value_bits));
  }
}

uint32_t BloomierFilter::OwnedSlot(HashedKey key) const {
  uint32_t s[3];
  XorPeeler::Slots(key.value(), segment_len_, seed_, s);
  uint64_t tau =
      tau_table_.Get(s[0]) ^ tau_table_.Get(s[1]) ^ tau_table_.Get(s[2]);
  if (tau > 2) tau = 0;  // Non-key garbage; clamp to a valid slot.
  return s[tau];
}

uint64_t BloomierFilter::Get(HashedKey key) const {
  return value_table_.Get(OwnedSlot(key));
}

void BloomierFilter::Update(HashedKey key, uint64_t new_value) {
  value_table_.Set(OwnedSlot(key),
                   new_value & LowMask(value_table_.width()));
}

}  // namespace bbf
