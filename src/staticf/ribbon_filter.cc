#include "staticf/ribbon_filter.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/bits.h"
#include "util/serialize.h"

namespace bbf {

RibbonFilter::RibbonFilter(const std::vector<uint64_t>& keys,
                           int fingerprint_bits)
    : fingerprint_bits_(fingerprint_bits) {
  // Hash-once boundary: mix every raw key here (bijective, so dedup is
  // preserved) and build over canonical values.
  std::vector<uint64_t> unique;
  unique.reserve(keys.size());
  for (uint64_t k : keys) unique.push_back(HashedKey(k).value());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  num_keys_ = unique.size();

  // Start at 95% load; each failed attempt backs the load off by 3%.
  // (The published ribbon instead "bumps" failed rows into an overflow
  // layer; backing off trades a little space for a much simpler build.)
  double load = 0.95;
  uint64_t total_slots = 0;
  std::vector<uint64_t> coeff;
  std::vector<uint64_t> rhs;
  for (seed_ = 0x5eed;; ++seed_, load = std::max(0.5, load - 0.03)) {
    ++build_attempts_;
    num_starts_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(unique.size() / load) + 1);
    total_slots = num_starts_ + kRibbonWidth;
    coeff.resize(total_slots);
    rhs.resize(total_slots);
    std::fill(coeff.begin(), coeff.end(), 0);
    std::fill(rhs.begin(), rhs.end(), 0);
    bool ok = true;
    for (uint64_t stored : unique) {
      const HashedKey key = HashedKey::FromMix(stored);
      uint64_t pos = StartOf(key);
      uint64_t c = CoeffOf(key);  // Bit 0 always set.
      uint64_t r = FingerprintOf(key);
      // Incremental Gaussian elimination within the band.
      while (true) {
        if (coeff[pos] == 0) {
          coeff[pos] = c;
          rhs[pos] = r;
          break;
        }
        c ^= coeff[pos];
        r ^= rhs[pos];
        if (c == 0) {
          ok = (r == 0);  // Redundant row is fine; contradiction is not.
          break;
        }
        const int shift = CountTrailingZeros(c);
        c >>= shift;
        pos += shift;
      }
      if (!ok) break;
    }
    if (!ok) continue;
    // Back-substitution, highest slot first.
    solution_ = CompactVector(total_slots, fingerprint_bits);
    for (uint64_t pos = total_slots; pos-- > 0;) {
      if (coeff[pos] == 0) continue;
      uint64_t acc = rhs[pos];
      uint64_t c = coeff[pos] & ~uint64_t{1};
      while (c != 0) {
        const int j = CountTrailingZeros(c);
        acc ^= solution_.Get(pos + j);
        c &= c - 1;
      }
      solution_.Set(pos, acc);
    }
    return;
  }
}

RibbonFilter RibbonFilter::ForFpr(const std::vector<uint64_t>& keys,
                                  double fpr) {
  const int bits =
      std::max(2, static_cast<int>(std::ceil(-std::log2(fpr))));
  return RibbonFilter(keys, bits);
}

uint64_t RibbonFilter::StartOf(HashedKey key) const {
  return FastRange64(key.Derive(seed_), num_starts_);
}

uint64_t RibbonFilter::CoeffOf(HashedKey key) const {
  return key.Derive(seed_ + 1) | 1;
}

uint64_t RibbonFilter::FingerprintOf(HashedKey key) const {
  return key.Derive(seed_ + 2) & LowMask(fingerprint_bits_);
}

bool RibbonFilter::Contains(HashedKey key) const {
  const uint64_t start = StartOf(key);
  uint64_t c = CoeffOf(key);
  uint64_t acc = 0;
  while (c != 0) {
    const int j = CountTrailingZeros(c);
    acc ^= solution_.Get(start + j);
    c &= c - 1;
  }
  return acc == FingerprintOf(key);
}

bool RibbonFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, fingerprint_bits_);
  WriteU64(os, num_starts_);
  WriteU64(os, seed_);
  WriteU64(os, num_keys_);
  solution_.Save(os);
  return os.good();
}

bool RibbonFilter::LoadPayload(std::istream& is) {
  int32_t f;
  uint64_t starts;
  uint64_t seed;
  uint64_t n;
  if (!ReadI32(is, &f) || f < 1 || f > 64 ||
      !ReadU64Capped(is, &starts, kMaxSnapshotElements) || starts == 0 ||
      !ReadU64(is, &seed) || !ReadU64(is, &n) || n > starts) {
    return false;
  }
  CompactVector solution;
  if (!solution.Load(is) || solution.size() != starts + kRibbonWidth ||
      solution.width() != f) {
    return false;
  }
  fingerprint_bits_ = f;
  num_starts_ = starts;
  seed_ = seed;
  num_keys_ = n;
  solution_ = std::move(solution);
  build_attempts_ = 0;  // Build-time stat; unknown after a reload.
  return true;
}

}  // namespace bbf
