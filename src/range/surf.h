#ifndef BBF_RANGE_SURF_H_
#define BBF_RANGE_SURF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "range/range_filter.h"
#include "util/compact_vector.h"
#include "util/rank_select.h"

namespace bbf {

/// SuRF — the Succinct Range Filter [Zhang et al. 2018] (§2.5).
///
/// Stores the minimal distinguishing prefixes of the key set in a
/// LOUDS-Sparse succinct trie (three parallel per-edge sequences: label,
/// has-child flag, and a LOUDS bit marking each node's first edge, with
/// rank/select directories for navigation). Optional per-leaf suffix bits
/// trade space for false-positive rate:
///   * kBase: no suffixes — smallest, highest FPR.
///   * kHash: h hashed bits of the full key — sharpens point queries only.
///   * kReal: the next h real key bits — sharpens point *and* range
///     boundaries.
///
/// Keys are arbitrary byte strings; 64-bit integers are encoded big-endian
/// so that integer order matches lexicographic order. The trie structure
/// mirrors the key distribution, which is what makes SuRF compact on
/// realistic data and *vulnerable to adversarial keys* (long shared
/// prefixes blow up the trie) — reproduced deliberately, see experiment E7.
class SurfFilter : public RangeFilter {
 public:
  enum class SuffixMode { kBase, kHash, kReal };

  /// Builds from a *sorted, distinct* set of byte-string keys.
  SurfFilter(const std::vector<std::string>& sorted_keys, SuffixMode mode,
             int suffix_bits);

  /// Convenience: builds over sorted distinct 64-bit keys (big-endian).
  SurfFilter(const std::vector<uint64_t>& sorted_keys, SuffixMode mode,
             int suffix_bits);

  /// Point query for a byte-string key.
  bool MayContainKey(std::string_view key) const;

  /// Range emptiness over byte strings, inclusive bounds.
  bool MayContainStringRange(std::string_view lo, std::string_view hi) const;

  // RangeFilter interface over 64-bit integers.
  bool MayContainRange(uint64_t lo, uint64_t hi) const override;
  bool MayContain(uint64_t key) const override;
  size_t SpaceBits() const override;
  std::string_view Name() const override { return "surf"; }

  uint64_t num_edges() const { return labels_.size(); }

 private:
  // Label encoding inside the 9-bit label plane: 0 is the terminator
  // (a key ending at an internal node), byte b is stored as b + 1.
  static constexpr uint64_t kTerminator = 0;

  struct NodeRange {
    uint64_t begin;
    uint64_t end;  // Half-open edge range of one node.
  };

  void Build(const std::vector<std::string>& keys, SuffixMode mode,
             int suffix_bits);
  NodeRange Root() const;
  NodeRange ChildOf(uint64_t edge) const;
  uint64_t LeafIndexOf(uint64_t edge) const;
  bool CheckLeafSuffix(uint64_t edge, std::string_view key,
                       size_t depth) const;

  // Recursive range probe; lo/hi are whole-query bounds, `depth` the
  // current byte position, tight flags track boundary adherence.
  bool RangeProbe(NodeRange node, std::string_view lo, std::string_view hi,
                  size_t depth, bool lo_tight, bool hi_tight) const;

  SuffixMode mode_ = SuffixMode::kBase;
  int suffix_bits_ = 0;
  CompactVector labels_;      // 9-bit encoded labels, edge order.
  RankSelect has_child_;      // 1 = edge leads to an internal node.
  RankSelect louds_;          // 1 = first edge of a node.
  CompactVector suffixes_;    // Per leaf, in edge order.
  uint64_t num_keys_ = 0;
};

}  // namespace bbf

#endif  // BBF_RANGE_SURF_H_
