#include "range/prefix_bloom_range.h"

#include <utility>

#include "util/serialize.h"

namespace bbf {

PrefixBloomRangeFilter::PrefixBloomRangeFilter(
    const std::vector<uint64_t>& keys, int prefix_bits, double bits_per_key,
    int max_probes)
    : prefix_bits_(prefix_bits), max_probes_(max_probes) {
  bloom_ = std::make_unique<BloomFilter>(
      std::max<uint64_t>(keys.size(), 1), bits_per_key);
  for (uint64_t k : keys) bloom_->Insert(k >> (64 - prefix_bits_));
}

bool PrefixBloomRangeFilter::MayContainRange(uint64_t lo, uint64_t hi) const {
  const int shift = 64 - prefix_bits_;
  const uint64_t first = lo >> shift;
  const uint64_t last = hi >> shift;
  if (last - first >= static_cast<uint64_t>(max_probes_)) {
    return true;  // Interval spans too many prefixes: cannot filter.
  }
  for (uint64_t p = first; p <= last; ++p) {
    if (bloom_->Contains(p)) return true;
    if (p == last) break;  // Guard overflow at the domain edge.
  }
  return false;
}

bool PrefixBloomRangeFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, prefix_bits_);
  WriteI32(os, max_probes_);
  return bloom_->SavePayload(os) && os.good();
}

bool PrefixBloomRangeFilter::LoadPayload(std::istream& is) {
  int32_t prefix_bits;
  int32_t max_probes;
  if (!ReadI32(is, &prefix_bits) || prefix_bits < 1 || prefix_bits > 64 ||
      !ReadI32(is, &max_probes) || max_probes < 1 ||
      max_probes > (1 << 20)) {
    return false;
  }
  auto bloom = std::make_unique<BloomFilter>(1, 8.0);
  if (!bloom->LoadPayload(is)) return false;
  prefix_bits_ = prefix_bits;
  max_probes_ = max_probes;
  bloom_ = std::move(bloom);
  return true;
}

}  // namespace bbf
