#include "range/arf.h"

namespace bbf {

ArfRangeFilter::ArfRangeFilter(uint64_t max_nodes) : max_nodes_(max_nodes) {
  nodes_.push_back(Node{});  // Occupied root covering the whole domain.
}

void ArfRangeFilter::Train(uint64_t lo, uint64_t hi, bool was_empty) {
  if (!was_empty || hi < lo) return;  // Only verified emptiness teaches.
  TrainNode(0, 0, ~uint64_t{0}, lo, hi);
}

void ArfRangeFilter::TrainNode(int32_t node, uint64_t node_lo,
                               uint64_t node_hi, uint64_t lo, uint64_t hi) {
  if (hi < node_lo || lo > node_hi) return;  // Disjoint.
  Node& n = nodes_[node];
  if (n.left < 0) {  // Leaf.
    if (!n.occupied) return;  // Already known empty.
    if (lo <= node_lo && node_hi <= hi) {
      n.occupied = false;  // The whole region was verified empty.
      return;
    }
    if (node_lo == node_hi || nodes_.size() + 2 > max_nodes_) {
      return;  // Budget exhausted or indivisible: stay conservative.
    }
    // Split and recurse; children start occupied (no information).
    const int32_t left = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_.push_back(Node{});
    nodes_[node].left = left;
    nodes_[node].right = left + 1;
  }
  const uint64_t mid = node_lo + (node_hi - node_lo) / 2;
  const int32_t left = nodes_[node].left;
  const int32_t right = nodes_[node].right;
  TrainNode(left, node_lo, mid, lo, hi);
  TrainNode(right, mid + 1, node_hi, lo, hi);
}

bool ArfRangeFilter::QueryNode(int32_t node, uint64_t node_lo,
                               uint64_t node_hi, uint64_t lo,
                               uint64_t hi) const {
  if (hi < node_lo || lo > node_hi) return false;
  const Node& n = nodes_[node];
  if (n.left < 0) return n.occupied;
  const uint64_t mid = node_lo + (node_hi - node_lo) / 2;
  return QueryNode(n.left, node_lo, mid, lo, hi) ||
         QueryNode(n.right, mid + 1, node_hi, lo, hi);
}

bool ArfRangeFilter::MayContainRange(uint64_t lo, uint64_t hi) const {
  return QueryNode(0, 0, ~uint64_t{0}, lo, hi);
}

size_t ArfRangeFilter::SpaceBits() const {
  // A succinct encoding needs ~2 bits of shape + 1 occupancy bit per
  // node; we charge that (our pointer representation is a constant factor
  // fatter, as in the original paper's prototype).
  return nodes_.size() * 3;
}

}  // namespace bbf
