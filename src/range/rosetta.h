#ifndef BBF_RANGE_ROSETTA_H_
#define BBF_RANGE_ROSETTA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "range/range_filter.h"

namespace bbf {

/// Rosetta [Luo et al. 2020] (§2.5): a hierarchy of Bloom filters forming
/// an implicit segment tree over the key domain. The Bloom filter at
/// level l stores every key's l-bit prefix; a range query decomposes into
/// dyadic intervals and probes each, recursing into children of doubted
/// nodes down to full-length leaves.
///
/// Properties reproduced from the paper: robust for point and short-range
/// queries (no trie-structure leakage to attack); FPR grows quickly with
/// range length and provides no filtering beyond the deepest maintained
/// level; CPU cost per query is high (many Bloom probes).
class RosettaRangeFilter : public RangeFilter {
 public:
  /// Maintains Bloom levels for prefix lengths 64-levels+1 .. 64.
  /// `bits_per_key` is split geometrically: each level gets `decay` times
  /// the bits of the level below it, concentrating the budget at the
  /// deepest levels exactly as Rosetta's memory optimization prescribes
  /// (short ranges only consult deep levels). decay = 1 reproduces the
  /// naive even split. Ranges longer than 2^levels cannot be filtered
  /// (queries return true).
  RosettaRangeFilter(const std::vector<uint64_t>& keys, int levels,
                     double bits_per_key, double decay = 0.5);

  bool MayContainRange(uint64_t lo, uint64_t hi) const override;
  size_t SpaceBits() const override;
  std::string_view Name() const override { return "rosetta"; }

  /// Bloom probes issued by the last query (CPU-cost proxy, E7).
  uint64_t last_query_probes() const { return probes_; }

 private:
  /// True if some key may lie under `prefix` (length `len` bits),
  /// recursing to the leaf level.
  bool Doubt(uint64_t prefix, int len) const;
  /// Segment-tree descent over node [prefix << (64-len), ...].
  bool Decompose(uint64_t lo, uint64_t hi, uint64_t prefix, int len) const;

  const BloomFilter& LevelFilter(int len) const {
    return *levels_[len - min_len_];
  }

  int min_len_;  // Shallowest maintained prefix length.
  std::vector<std::unique_ptr<BloomFilter>> levels_;
  mutable uint64_t probes_ = 0;
};

}  // namespace bbf

#endif  // BBF_RANGE_ROSETTA_H_
