#include "range/grafite.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/hash.h"

namespace bbf {

GrafiteRangeFilter::GrafiteRangeFilter(const std::vector<uint64_t>& keys,
                                       int reduced_bits, int block_bits,
                                       uint64_t seed)
    : reduced_bits_(std::max(reduced_bits, block_bits + 1)),
      block_bits_(block_bits),
      seed_(seed) {
  std::vector<uint64_t> codes;
  codes.reserve(keys.size());
  for (uint64_t k : keys) codes.push_back(CodeOf(k));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  codes_ = EliasFano(codes, uint64_t{1} << reduced_bits_);
}

GrafiteRangeFilter GrafiteRangeFilter::ForBitsPerKey(
    const std::vector<uint64_t>& keys, double bits_per_key, int block_bits) {
  const double lg_n =
      std::log2(static_cast<double>(std::max<size_t>(keys.size(), 2)));
  int reduced = static_cast<int>(bits_per_key - 2.0 + lg_n);
  reduced = std::clamp(reduced, block_bits + 1, 62);
  return GrafiteRangeFilter(keys, reduced, block_bits);
}

uint64_t GrafiteRangeFilter::HashBlock(uint64_t block) const {
  return Hash64(block, seed_) & LowMask(reduced_bits_ - block_bits_);
}

bool GrafiteRangeFilter::MayContainRange(uint64_t lo, uint64_t hi) const {
  const uint64_t block_mask = LowMask(block_bits_);
  const uint64_t first_block = lo >> block_bits_;
  const uint64_t last_block = hi >> block_bits_;
  if (last_block - first_block >= kMaxProbes) {
    return true;  // Range spans too many blocks to probe economically.
  }
  for (uint64_t b = first_block;; ++b) {
    const uint64_t off_lo = b == first_block ? (lo & block_mask) : 0;
    const uint64_t off_hi = b == last_block ? (hi & block_mask) : block_mask;
    const uint64_t base = HashBlock(b) << block_bits_;
    if (codes_.ContainsInRange(base | off_lo, base | off_hi)) return true;
    if (b == last_block) break;
  }
  return false;
}

}  // namespace bbf
