#ifndef BBF_RANGE_RANGE_FILTER_H_
#define BBF_RANGE_RANGE_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

#include "util/serialize.h"

namespace bbf {

/// Range-filter API (§2.5): the eps-approximate range-emptiness problem.
/// Built statically over a set of 64-bit integer keys (every practical
/// range filter the tutorial covers is static; "a dynamic and expandable
/// range filter is still an unsolved problem").
///
/// MayContainRange must return true whenever some stored key lies in
/// [lo, hi] (no false negatives) and should return false with probability
/// >= 1 - eps otherwise.
class RangeFilter {
 public:
  virtual ~RangeFilter() = default;

  /// Emptiness query for the inclusive interval [lo, hi].
  virtual bool MayContainRange(uint64_t lo, uint64_t hi) const = 0;

  /// Point query (range of length 1).
  virtual bool MayContain(uint64_t key) const {
    return MayContainRange(key, key);
  }

  virtual size_t SpaceBits() const = 0;
  virtual std::string_view Name() const = 0;

  /// Snapshot support, mirroring Filter (DESIGN.md §8): the same framed
  /// format with Name() as the tag. Families without SavePayload /
  /// LoadPayload overrides report failure rather than writing partial
  /// frames.
  virtual bool Save(std::ostream& os) const {
    std::ostringstream payload;
    if (!SavePayload(payload) || !payload.good()) return false;
    return WriteSnapshotFrame(os, Name(), std::move(payload).str());
  }
  virtual bool Load(std::istream& is) {
    std::string tag;
    std::string payload;
    if (!ReadSnapshotFrame(is, &tag, &payload)) return false;
    if (tag != Name()) return false;
    std::istringstream ps(payload);
    return LoadPayload(ps);
  }
  virtual bool SavePayload(std::ostream&) const { return false; }
  virtual bool LoadPayload(std::istream&) { return false; }
};

}  // namespace bbf

#endif  // BBF_RANGE_RANGE_FILTER_H_
