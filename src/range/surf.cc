#include "range/surf.h"

#include <algorithm>
#include <deque>

#include "util/bits.h"
#include "util/hash.h"

namespace bbf {
namespace {

std::string EncodeBigEndian(uint64_t v) {
  std::string s(8, '\0');
  for (int i = 0; i < 8; ++i) {
    s[i] = static_cast<char>((v >> (56 - 8 * i)) & 0xFF);
  }
  return s;
}

size_t CommonPrefixLen(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

// `count` bits of `s` starting at bit offset pos*8, MSB-first, zero padded.
uint64_t BitsAt(std::string_view s, size_t byte_pos, int count) {
  uint64_t out = 0;
  for (int b = 0; b < count; ++b) {
    const size_t byte = byte_pos + static_cast<size_t>(b) / 8;
    int bit = 0;
    if (byte < s.size()) {
      bit = (static_cast<uint8_t>(s[byte]) >> (7 - (b % 8))) & 1;
    }
    out = (out << 1) | static_cast<uint64_t>(bit);
  }
  return out;
}

}  // namespace

SurfFilter::SurfFilter(const std::vector<std::string>& sorted_keys,
                       SuffixMode mode, int suffix_bits) {
  Build(sorted_keys, mode, suffix_bits);
}

SurfFilter::SurfFilter(const std::vector<uint64_t>& sorted_keys,
                       SuffixMode mode, int suffix_bits) {
  std::vector<std::string> encoded;
  encoded.reserve(sorted_keys.size());
  for (uint64_t k : sorted_keys) encoded.push_back(EncodeBigEndian(k));
  Build(encoded, mode, suffix_bits);
}

void SurfFilter::Build(const std::vector<std::string>& keys, SuffixMode mode,
                       int suffix_bits) {
  mode_ = mode;
  suffix_bits_ = mode == SuffixMode::kBase ? 0 : suffix_bits;
  num_keys_ = keys.size();
  if (keys.empty()) {
    labels_ = CompactVector(0, 9);
    has_child_ = RankSelect(BitVector(0));
    louds_ = RankSelect(BitVector(0));
    suffixes_ = CompactVector(0, std::max(1, suffix_bits_));
    return;
  }

  // Minimal distinguishing prefix of each key (clamped to its length; a
  // clamped key is a prefix of a neighbour and ends with a terminator).
  std::vector<size_t> trunc_len(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    size_t lcp = 0;
    if (i > 0) lcp = std::max(lcp, CommonPrefixLen(keys[i - 1], keys[i]));
    if (i + 1 < keys.size()) {
      lcp = std::max(lcp, CommonPrefixLen(keys[i], keys[i + 1]));
    }
    trunc_len[i] = std::min(keys[i].size(), lcp + 1);
  }

  // Breadth-first construction over (depth, key-range) nodes.
  struct PendingNode {
    size_t depth;
    size_t begin;
    size_t end;
  };
  std::vector<uint64_t> labels;
  std::vector<bool> has_child_bits;
  std::vector<bool> louds_bits;
  std::vector<uint64_t> suffixes;

  std::deque<PendingNode> queue;
  queue.push_back(PendingNode{0, 0, keys.size()});
  while (!queue.empty()) {
    const PendingNode node = queue.front();
    queue.pop_front();
    bool first_edge = true;
    size_t i = node.begin;
    while (i < node.end) {
      // Group keys sharing the edge symbol at this depth.
      const bool ends_here = trunc_len[i] == node.depth;
      const uint64_t symbol =
          ends_here ? kTerminator
                    : static_cast<uint64_t>(
                          static_cast<uint8_t>(keys[i][node.depth])) +
                          1;
      size_t j = i + 1;
      if (!ends_here) {
        while (j < node.end && trunc_len[j] > node.depth &&
               static_cast<uint64_t>(
                   static_cast<uint8_t>(keys[j][node.depth])) +
                       1 ==
                   symbol) {
          ++j;
        }
      }
      labels.push_back(symbol);
      louds_bits.push_back(first_edge);
      first_edge = false;
      const bool internal = (j - i) > 1;
      has_child_bits.push_back(internal);
      if (internal) {
        queue.push_back(PendingNode{node.depth + 1, i, j});
      } else {
        // Leaf: remember the suffix of the single underlying key.
        uint64_t suffix = 0;
        if (mode == SuffixMode::kHash) {
          suffix = HashBytes(keys[i]) & LowMask(suffix_bits_);
        } else if (mode == SuffixMode::kReal) {
          suffix = BitsAt(keys[i], trunc_len[i], suffix_bits_);
        }
        suffixes.push_back(suffix);
      }
      i = j;
    }
  }

  labels_ = CompactVector(labels.size(), 9);
  BitVector hc(labels.size());
  BitVector ld(labels.size());
  for (size_t e = 0; e < labels.size(); ++e) {
    labels_.Set(e, labels[e]);
    if (has_child_bits[e]) hc.Set(e);
    if (louds_bits[e]) ld.Set(e);
  }
  has_child_ = RankSelect(std::move(hc));
  louds_ = RankSelect(std::move(ld));
  suffixes_ = CompactVector(suffixes.size(), std::max(1, suffix_bits_));
  for (size_t l = 0; l < suffixes.size(); ++l) suffixes_.Set(l, suffixes[l]);
}

SurfFilter::NodeRange SurfFilter::Root() const {
  if (labels_.size() == 0) return NodeRange{0, 0};
  const uint64_t end =
      louds_.num_ones() > 1 ? louds_.Select1(1) : labels_.size();
  return NodeRange{0, end};
}

SurfFilter::NodeRange SurfFilter::ChildOf(uint64_t edge) const {
  const uint64_t child = has_child_.Rank1(edge + 1);  // Node number.
  const uint64_t begin = louds_.Select1(child);
  const uint64_t end = child + 1 < louds_.num_ones()
                           ? louds_.Select1(child + 1)
                           : labels_.size();
  return NodeRange{begin, end};
}

uint64_t SurfFilter::LeafIndexOf(uint64_t edge) const {
  return has_child_.Rank0(edge + 1) - 1;
}

bool SurfFilter::CheckLeafSuffix(uint64_t edge, std::string_view key,
                                 size_t trunc_end) const {
  if (mode_ == SuffixMode::kBase) return true;
  const uint64_t stored = suffixes_.Get(LeafIndexOf(edge));
  if (mode_ == SuffixMode::kHash) {
    return stored == (HashBytes(key) & LowMask(suffix_bits_));
  }
  return stored == BitsAt(key, trunc_end, suffix_bits_);
}

bool SurfFilter::MayContainKey(std::string_view key) const {
  if (labels_.size() == 0) return false;
  NodeRange node = Root();
  size_t depth = 0;
  while (true) {
    const uint64_t symbol =
        depth < key.size()
            ? static_cast<uint64_t>(static_cast<uint8_t>(key[depth])) + 1
            : kTerminator;
    bool found = false;
    for (uint64_t e = node.begin; e < node.end; ++e) {
      const uint64_t label = labels_.Get(e);
      if (label > symbol) break;  // Labels are sorted within a node.
      if (label != symbol) continue;
      found = true;
      if (symbol == kTerminator || !has_child_.bits().Get(e)) {
        // The stored key's distinguishing prefix ends here.
        const size_t trunc_end =
            symbol == kTerminator ? depth : depth + 1;
        return CheckLeafSuffix(e, key, trunc_end);
      }
      node = ChildOf(e);
      ++depth;
      break;
    }
    if (!found) return false;
  }
}

bool SurfFilter::RangeProbe(NodeRange node, std::string_view lo,
                            std::string_view hi, size_t depth, bool lo_tight,
                            bool hi_tight) const {
  // Allowed label window at this depth given boundary tightness.
  const uint64_t lo_sym =
      !lo_tight ? 0
      : depth < lo.size()
          ? static_cast<uint64_t>(static_cast<uint8_t>(lo[depth])) + 1
          : kTerminator;
  const uint64_t hi_sym =
      !hi_tight ? 257
      : depth < hi.size()
          ? static_cast<uint64_t>(static_cast<uint8_t>(hi[depth])) + 1
          : kTerminator;
  for (uint64_t e = node.begin; e < node.end; ++e) {
    const uint64_t label = labels_.Get(e);
    if (label < lo_sym) continue;
    if (label > hi_sym) break;
    const bool next_lo_tight = lo_tight && label == lo_sym;
    const bool next_hi_tight = hi_tight && label == hi_sym;
    if (label == kTerminator || !has_child_.bits().Get(e)) {
      // Leaf edge: some key shares the path (+label). With real suffixes
      // we can refute at a tight boundary; otherwise be conservative.
      if (mode_ == SuffixMode::kReal &&
          (next_lo_tight || next_hi_tight)) {
        const size_t trunc_end =
            label == kTerminator ? depth : depth + 1;
        const uint64_t stored = suffixes_.Get(LeafIndexOf(e));
        if (next_lo_tight && label != kTerminator &&
            stored < BitsAt(lo, trunc_end, suffix_bits_)) {
          continue;  // Whole leaf interval lies below lo.
        }
        if (next_hi_tight && label != kTerminator &&
            stored > BitsAt(hi, trunc_end, suffix_bits_)) {
          continue;  // Whole leaf interval lies above hi.
        }
      }
      return true;
    }
    if (RangeProbe(ChildOf(e), lo, hi, depth + 1, next_lo_tight,
                   next_hi_tight)) {
      return true;
    }
  }
  return false;
}

bool SurfFilter::MayContainStringRange(std::string_view lo,
                                       std::string_view hi) const {
  if (labels_.size() == 0) return false;
  return RangeProbe(Root(), lo, hi, 0, /*lo_tight=*/true, /*hi_tight=*/true);
}

bool SurfFilter::MayContainRange(uint64_t lo, uint64_t hi) const {
  const std::string lo_s = EncodeBigEndian(lo);
  const std::string hi_s = EncodeBigEndian(hi);
  return MayContainStringRange(lo_s, hi_s);
}

bool SurfFilter::MayContain(uint64_t key) const {
  return MayContainKey(EncodeBigEndian(key));
}

size_t SurfFilter::SpaceBits() const {
  return labels_.size() * 9 +                    // Labels.
         labels_.size() * 2 +                    // has-child + LOUDS planes.
         suffixes_.size() * suffix_bits_ +       // Suffixes.
         128;                                    // Rank directories (approx).
}

}  // namespace bbf
