#include "range/snarf.h"

#include <algorithm>

namespace bbf {

SnarfRangeFilter::SnarfRangeFilter(const std::vector<uint64_t>& keys,
                                   int cells_per_key_log2,
                                   uint64_t knot_every)
    : cells_per_key_log2_(cells_per_key_log2) {
  std::vector<uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  num_keys_ = sorted.size();
  num_cells_ = num_keys_ << cells_per_key_log2_;
  if (sorted.empty()) return;

  // Spline knots: (key, rank) every knot_every keys plus both endpoints.
  for (uint64_t i = 0; i < sorted.size(); i += knot_every) {
    knots_.push_back(Knot{sorted[i], i});
  }
  knots_.push_back(Knot{sorted.back(), sorted.size() - 1});

  // Map every key through the model; positions are monotone because the
  // model is a monotone piecewise-linear function.
  std::vector<uint64_t> cells;
  cells.reserve(sorted.size());
  for (uint64_t k : sorted) cells.push_back(MapToCell(k));
  positions_ = EliasFano(cells, num_cells_ + 1);
}

uint64_t SnarfRangeFilter::MapToCell(uint64_t x) const {
  if (knots_.empty()) return 0;
  if (x <= knots_.front().key) return 0;
  if (x >= knots_.back().key) return num_cells_;
  // Find the spline segment containing x.
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](uint64_t v, const Knot& k) { return v < k.key; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  const double span_keys = static_cast<double>(hi.key - lo.key);
  const double frac =
      span_keys == 0 ? 0.0 : static_cast<double>(x - lo.key) / span_keys;
  const double rank_est =
      static_cast<double>(lo.rank) +
      frac * static_cast<double>(hi.rank - lo.rank);
  const double cell = rank_est * static_cast<double>(num_cells_) /
                      static_cast<double>(num_keys_);
  return static_cast<uint64_t>(cell);
}

bool SnarfRangeFilter::MayContainRange(uint64_t lo, uint64_t hi) const {
  if (num_keys_ == 0) return false;
  return positions_.ContainsInRange(MapToCell(lo), MapToCell(hi));
}

}  // namespace bbf
