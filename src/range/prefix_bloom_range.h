#ifndef BBF_RANGE_PREFIX_BLOOM_RANGE_H_
#define BBF_RANGE_PREFIX_BLOOM_RANGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "range/range_filter.h"

namespace bbf {

/// Fixed-prefix Bloom range filter — the folklore baseline (RocksDB's
/// prefix_extractor approach, referenced in §2.5 via Proteus's prefix
/// Bloom component). Stores every key's p-bit prefix in a Bloom filter; a
/// range query probes each distinct prefix the interval covers, giving up
/// (returning true) once the interval spans more prefixes than the probe
/// budget. Great for short ranges aligned with the prefix granularity,
/// useless beyond it — the weakness the purpose-built filters fix.
class PrefixBloomRangeFilter : public RangeFilter {
 public:
  /// `prefix_bits` of each key (from the MSB side) go into the filter.
  PrefixBloomRangeFilter(const std::vector<uint64_t>& keys, int prefix_bits,
                         double bits_per_key, int max_probes = 64);

  bool MayContainRange(uint64_t lo, uint64_t hi) const override;
  size_t SpaceBits() const override { return bloom_->SpaceBits(); }
  std::string_view Name() const override { return "prefix-bloom"; }

  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

 private:
  int prefix_bits_;
  int max_probes_;
  std::unique_ptr<BloomFilter> bloom_;
};

}  // namespace bbf

#endif  // BBF_RANGE_PREFIX_BLOOM_RANGE_H_
