#ifndef BBF_RANGE_GRAFITE_H_
#define BBF_RANGE_GRAFITE_H_

#include <cstdint>
#include <vector>

#include "range/range_filter.h"
#include "util/elias_fano.h"

namespace bbf {

/// Grafite [Costa, Ferragina, Vinciguerra 2023] (§2.5): the practical
/// instantiation of the Goswami et al. space-optimal range filter.
///
/// Keys pass through a locality-preserving hash: split x into
/// (block = x >> l, offset = low l bits), hash only the block with a
/// random hash g into a reduced domain, and emit code = (g(block) << l) |
/// offset. Inside a block locality is exact; distinct blocks collide
/// uniformly. The sorted codes live in an Elias–Fano sequence, and a range
/// query probes the (at most two, for ranges <= 2^l) reduced intervals its
/// endpoints map to.
///
/// Collisions are independent of the key/query layout, so the FPR
/// ~ n * 2^l / 2^reduced_bits holds even under the correlated workloads
/// that break trie-based filters — the robustness §2.5 highlights.
/// Integer keys only (Grafite "sacrifices the ability to handle
/// non-integer keys").
class GrafiteRangeFilter : public RangeFilter {
 public:
  /// 2^reduced_bits code universe; ranges up to 2^block_bits are answered
  /// with two probes, longer ones with one probe per spanned block (up to
  /// kMaxProbes, then the filter gives up and returns true).
  GrafiteRangeFilter(const std::vector<uint64_t>& keys, int reduced_bits,
                     int block_bits = 16, uint64_t seed = 0x60AF);

  /// Sizes the reduced universe from a space budget: Elias–Fano costs
  /// ~2 + reduced_bits - lg n bits per key.
  static GrafiteRangeFilter ForBitsPerKey(const std::vector<uint64_t>& keys,
                                          double bits_per_key,
                                          int block_bits = 16);

  bool MayContainRange(uint64_t lo, uint64_t hi) const override;
  size_t SpaceBits() const override {
    return codes_.MemoryUsageBytes() * 8;
  }
  std::string_view Name() const override { return "grafite"; }

  int reduced_bits() const { return reduced_bits_; }
  int block_bits() const { return block_bits_; }

  static constexpr int kMaxProbes = 64;

 private:
  uint64_t HashBlock(uint64_t block) const;
  uint64_t CodeOf(uint64_t x) const {
    const uint64_t offset = x & ((uint64_t{1} << block_bits_) - 1);
    return (HashBlock(x >> block_bits_) << block_bits_) | offset;
  }

  int reduced_bits_;
  int block_bits_;
  uint64_t seed_;
  EliasFano codes_;
};

}  // namespace bbf

#endif  // BBF_RANGE_GRAFITE_H_
