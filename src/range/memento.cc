#include "range/memento.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/metrics_sink.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/serialize.h"

namespace bbf {

MementoFilter::MementoFilter(int q_bits, int r_bits, int memento_bits,
                             uint64_t hash_seed)
    : q_bits_(q_bits),
      r_bits_(r_bits),
      m_bits_(memento_bits),
      hash_seed_(hash_seed),
      num_quotients_(uint64_t{1} << q_bits),
      table_(q_bits, r_bits + memento_bits) {}

MementoFilter MementoFilter::ForCapacity(uint64_t n, double fpr,
                                         int memento_bits) {
  const uint64_t slots = NextPow2(static_cast<uint64_t>(
      std::ceil(std::max<uint64_t>(n, 1) / kMaxLoadFactor)));
  const int q = std::max(6, BitWidth(slots - 1));
  const double needed = std::log2(2.0 * kMaxLoadFactor / fpr);
  const int r =
      std::clamp(static_cast<int>(std::ceil(needed)), 1, 64 - memento_bits);
  return MementoFilter(q, r, memento_bits);
}

MementoFilter MementoFilter::ForBitsPerKey(uint64_t n, double bits_per_key,
                                           int memento_bits) {
  const uint64_t slots = NextPow2(static_cast<uint64_t>(
      std::ceil(std::max<uint64_t>(n, 1) / kMaxLoadFactor)));
  const int q = std::max(6, BitWidth(slots - 1));
  // bits/key = (2 metadata + r + m + 0.25 offset) / load; solve for r.
  const int r = std::clamp(
      static_cast<int>(std::lround(bits_per_key * kMaxLoadFactor - 2.25 -
                                   memento_bits)),
      1, 64 - memento_bits);
  return MementoFilter(q, r, memento_bits);
}

void MementoFilter::Fingerprint(uint64_t prefix, uint64_t* fq,
                                uint64_t* fr) const {
  const uint64_t h = Hash64(prefix, hash_seed_);
  *fq = (h >> r_bits_) & (num_quotients_ - 1);
  *fr = h & LowMask(r_bits_);
}

bool MementoFilter::AddKey(uint64_t key) {
  const uint64_t memento = key & LowMask(m_bits_);
  const uint64_t prefix = key >> m_bits_;
  while (true) {
    if (static_cast<double>(num_keys_) <
        kMaxLoadFactor * static_cast<double>(num_quotients_)) {
      uint64_t fq;
      uint64_t fr;
      Fingerprint(prefix, &fq, &fr);
      if (table_.InsertValue(fq, (fr << m_bits_) | memento,
                             /*sorted=*/true)) {
        ++num_keys_;
        return true;
      }
    }
    if (!Expand()) return false;
  }
}

bool MementoFilter::ProbePrefix(uint64_t prefix, uint64_t m_lo,
                                uint64_t m_hi) const {
  uint64_t fq;
  uint64_t fr;
  Fingerprint(prefix, &fq, &fr);
  if (!table_.Occupied(fq)) {
    if (sink_ != nullptr) sink_->OnProbeLength(0);
    return false;
  }
  const uint64_t lo = (fr << m_bits_) | m_lo;
  const uint64_t hi = (fr << m_bits_) | m_hi;
  bool hit = false;
  // Sorted run: stop at the first value past the window.
  const uint64_t scanned = table_.ScanRun(fq, [&](uint64_t v) {
    if (v > hi) return false;
    if (v >= lo) {
      hit = true;
      return false;
    }
    return true;
  });
  if (sink_ != nullptr) sink_->OnProbeLength(scanned);
  return hit;
}

bool MementoFilter::MayContainRange(uint64_t lo, uint64_t hi) const {
  if (lo > hi) return false;
  const uint64_t mask = LowMask(m_bits_);
  const uint64_t p_lo = lo >> m_bits_;
  const uint64_t p_hi = hi >> m_bits_;
  if (p_lo == p_hi) return ProbePrefix(p_lo, lo & mask, hi & mask);
  if (ProbePrefix(p_lo, lo & mask, mask)) return true;
  if (ProbePrefix(p_hi, 0, hi & mask)) return true;
  // Fully-covered interior prefixes need only fingerprint presence. Very
  // wide ranges give up and admit, like prefix-bloom and Grafite.
  if (p_hi - p_lo - 1 > kMaxInteriorProbes) return true;
  for (uint64_t p = p_lo + 1; p < p_hi; ++p) {
    if (ProbePrefix(p, 0, mask)) return true;
  }
  return false;
}

bool MementoFilter::Expand() {
  if (r_bits_ <= 1 || q_bits_ >= 38) return false;
  const int new_r = r_bits_ - 1;
  RsqfTable next(q_bits_ + 1, new_r + m_bits_);
  const uint64_t m_mask = LowMask(m_bits_);
  bool ok = true;
  // Old runs are sorted by (fr << m) | memento, so fingerprints arrive in
  // ascending full-fingerprint order per quotient and every re-split
  // insert appends at its new run's end — the rebuild is one linear pass.
  table_.ForEachValue([&](uint64_t fq, uint64_t value) {
    if (!ok) return;
    const uint64_t fr = value >> m_bits_;
    const uint64_t full = (fq << r_bits_) | fr;
    const uint64_t nfq = full >> new_r;
    const uint64_t nvalue =
        ((full & LowMask(new_r)) << m_bits_) | (value & m_mask);
    ok = next.InsertValue(nfq, nvalue, /*sorted=*/true);
  });
  if (!ok) return false;
  table_ = std::move(next);
  ++q_bits_;
  r_bits_ = new_r;
  num_quotients_ <<= 1;
  ++expansions_;
  if (sink_ != nullptr) sink_->OnExpansion();
  return true;
}

bool MementoFilter::CheckInvariants() const {
  if (!table_.CheckInvariants()) return false;
  // Every run must be nondecreasing — the sorted-memento-list contract.
  bool sorted = true;
  for (uint64_t q = 0; q < table_.num_quotients(); ++q) {
    if (!table_.Occupied(q)) continue;
    uint64_t prev = 0;
    bool first = true;
    table_.ScanRun(q, [&](uint64_t v) {
      if (!first && v < prev) sorted = false;
      prev = v;
      first = false;
      return sorted;
    });
    if (!sorted) return false;
  }
  return true;
}

bool MementoFilter::Save(std::ostream& os) const {
  std::ostringstream payload;
  if (!SavePayload(payload) || !payload.good()) return false;
  return WriteSnapshotFrame(os, Name(), std::move(payload).str());
}

bool MementoFilter::Load(std::istream& is) {
  std::string tag;
  std::string payload;
  if (!ReadSnapshotFrame(is, &tag, &payload)) return false;
  if (tag != Name()) return false;
  std::istringstream ps(payload);
  return LoadPayload(ps);
}

bool MementoFilter::SavePayload(std::ostream& os) const {
  WriteI32(os, q_bits_);
  WriteI32(os, r_bits_);
  WriteI32(os, m_bits_);
  WriteU64(os, hash_seed_);
  WriteU64(os, num_keys_);
  WriteU64(os, expansions_);
  return table_.SaveBody(os);
}

bool MementoFilter::LoadPayload(std::istream& is) {
  int32_t q;
  int32_t r;
  int32_t m;
  uint64_t seed;
  uint64_t n;
  uint64_t expansions;
  if (!ReadI32(is, &q) || q < 1 || q > 38 || !ReadI32(is, &r) || r < 1 ||
      r > 32 || !ReadI32(is, &m) || m < 1 || m > 32 ||
      !ReadU64(is, &seed) || !ReadU64(is, &n) ||
      !ReadU64(is, &expansions)) {
    return false;
  }
  RsqfTable table(1, 1);
  if (!RsqfTable::LoadBody(is, q, r + m, &table)) return false;
  q_bits_ = q;
  r_bits_ = r;
  m_bits_ = m;
  hash_seed_ = seed;
  num_keys_ = n;
  expansions_ = expansions;
  num_quotients_ = uint64_t{1} << q;
  table_ = std::move(table);
  return true;
}

}  // namespace bbf
