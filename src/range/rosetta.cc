#include "range/rosetta.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"

namespace bbf {

RosettaRangeFilter::RosettaRangeFilter(const std::vector<uint64_t>& keys,
                                       int levels, double bits_per_key,
                                       double decay)
    : min_len_(64 - levels + 1) {
  // Geometric split: weight(level at depth-distance d from the bottom)
  // = decay^d, normalized so the weights sum to 1.
  double norm = 0;
  double w = 1;
  for (int i = 0; i < levels; ++i) {
    norm += w;
    w *= decay;
  }
  for (int len = min_len_; len <= 64; ++len) {
    const double weight = std::pow(decay, 64 - len) / norm;
    // Never let a level drop below ~0.7 bits/key: a filter that is nearly
    // always positive only burns probes without filtering.
    const double level_bits = std::max(0.7, bits_per_key * weight);
    auto filter = std::make_unique<BloomFilter>(
        std::max<uint64_t>(keys.size(), 1), level_bits, 0,
        /*hash_seed=*/0x2057 + len);
    for (uint64_t k : keys) {
      filter->Insert(len == 64 ? k : (k >> (64 - len)));
    }
    levels_.push_back(std::move(filter));
  }
}

bool RosettaRangeFilter::Doubt(uint64_t prefix, int len) const {
  if (len < min_len_) {
    // A fully-covered node above the shallowest maintained level means
    // the queried range exceeds the filter's reach: no filtering.
    return true;
  }
  ++probes_;
  if (!LevelFilter(len).Contains(prefix)) return false;
  if (len == 64) return true;
  return Doubt(prefix << 1, len + 1) || Doubt((prefix << 1) | 1, len + 1);
}

bool RosettaRangeFilter::Decompose(uint64_t lo, uint64_t hi, uint64_t prefix,
                                   int len) const {
  const uint64_t node_lo = len == 0 ? 0 : prefix << (64 - len);
  const uint64_t node_hi = len == 0 ? ~uint64_t{0}
                                    : node_lo | LowMask(64 - len);
  if (hi < node_lo || lo > node_hi) return false;
  if (lo <= node_lo && node_hi <= hi) return Doubt(prefix, len);
  return Decompose(lo, hi, prefix << 1, len + 1) ||
         Decompose(lo, hi, (prefix << 1) | 1, len + 1);
}

bool RosettaRangeFilter::MayContainRange(uint64_t lo, uint64_t hi) const {
  probes_ = 0;
  return Decompose(lo, hi, 0, 0);
}

size_t RosettaRangeFilter::SpaceBits() const {
  size_t bits = 0;
  for (const auto& f : levels_) bits += f->SpaceBits();
  return bits;
}

}  // namespace bbf
