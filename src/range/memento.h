#ifndef BBF_RANGE_MEMENTO_H_
#define BBF_RANGE_MEMENTO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string_view>

#include "core/filter.h"
#include "quotient/rsqf.h"
#include "range/range_filter.h"

namespace bbf {

/// Memento filter [Eslami & Dayan 2024, arXiv 2408.05625]: the *dynamic*
/// range filter the tutorial's §2.5 calls unsolved. Every other family in
/// src/range is static-or-rebuild; Memento supports online AddKey at
/// quotient-filter insert cost and expands by table doubling.
///
/// The idea: split each raw key into a prefix (the high 64-m bits) and an
/// m-bit *memento* (the low bits). The prefix is hashed into an RSQF
/// fingerprint — quotient fq, remainder fr — and the slot payload packs
/// `(fr << m) | memento`, so the sorted run of a quotient doubles as the
/// sorted memento list of each stored prefix. A range query touches at
/// most two boundary prefixes exactly (memento-window scan over one run
/// each) plus fingerprint-presence probes for fully-covered interior
/// prefixes, capped at kMaxInteriorProbes before giving up (admitting).
///
/// Correlation robustness falls out of the construction: a query landing
/// just above a stored key shares that key's *prefix*, and within a
/// prefix the mementos answer exactly — a false positive requires a
/// cross-prefix hash collision on (fq, fr), probability ~ load * 2^-r per
/// probed prefix regardless of how adversarially the queries hug the
/// keys. SuRF and Rosetta, which store key-derived prefixes verbatim,
/// degrade on exactly those workloads (EXPERIMENTS.md E27).
///
/// Expansion keeps the full (q + r)-bit fingerprint constant: each
/// doubling moves one bit from the remainder to the quotient
/// (q+1, r-1), re-splitting the stored fingerprints without touching the
/// original keys — the RSQF resize path. FPR doubles per expansion and
/// the path ends at r == 1, like ExpandingQuotientFilter.
///
/// MementoFilter is both a Filter (point membership; it rides the
/// registry, snapshot dispatcher, and obs hooks like any family) and a
/// RangeFilter (the LSM Scan path). Integer keys round-trip through the
/// bijective boundary mix (InverseMix64, the learned-filter precedent) so
/// range semantics see the *raw* key order; string keys degrade to
/// pseudo-random integers — membership stays exact, ranges are
/// meaningless, same as every range family.
class MementoFilter : public Filter, public RangeFilter {
 public:
  /// 2^q_bits quotients, r_bits of remainder, memento_bits of per-key
  /// memento (slot payload width r + m).
  MementoFilter(int q_bits, int r_bits, int memento_bits = kDefaultMementoBits,
                uint64_t hash_seed = 0x3E3);

  /// Sizes for n keys at a bounded-range FPR target: a query spanning at
  /// most 2^memento_bits raw values costs two boundary probes, each a
  /// load * 2^-r cross-prefix collision, so r = ceil(lg(2*load/fpr)).
  static MementoFilter ForCapacity(uint64_t n, double fpr,
                                   int memento_bits = kDefaultMementoBits);

  /// LSM build-path sizing: spends ~bits_per_key total, i.e.
  /// (2 + r + m + 0.25) / load per key, solving for r.
  static MementoFilter ForBitsPerKey(uint64_t n, double bits_per_key,
                                     int memento_bits = kDefaultMementoBits);

  /// Online insert of a raw integer key. Expands (doubling the table)
  /// when the load factor or slack is exhausted; returns false only when
  /// expansion itself is impossible (r == 1).
  bool AddKey(uint64_t key);

  // ----- Filter surface (point membership).

  using Filter::Contains;
  using Filter::Insert;

  bool Insert(HashedKey key) override {
    return AddKey(InverseMix64(key.value()));
  }
  bool Contains(HashedKey key) const override {
    const uint64_t raw = InverseMix64(key.value());
    return MayContainRange(raw, raw);
  }
  uint64_t NumKeys() const override { return num_keys_; }
  FilterClass Class() const override { return FilterClass::kSemiDynamic; }
  double LoadFactor() const override {
    return static_cast<double>(num_keys_) /
           static_cast<double>(num_quotients_);
  }

  // ----- RangeFilter surface.

  /// Emptiness query for the inclusive interval [lo, hi] of *raw* keys.
  bool MayContainRange(uint64_t lo, uint64_t hi) const override;

  // ----- Shared between the two bases: one override resolves both.

  size_t SpaceBits() const override { return table_.SpaceBits(); }
  std::string_view Name() const override { return "memento"; }
  bool Save(std::ostream& os) const override;
  bool Load(std::istream& is) override;
  bool SavePayload(std::ostream& os) const override;
  bool LoadPayload(std::istream& is) override;

  int q_bits() const { return q_bits_; }
  int r_bits() const { return r_bits_; }
  int memento_bits() const { return m_bits_; }
  uint64_t expansions() const { return expansions_; }

  /// Structural self-check for the test suite: the substrate invariants
  /// plus sortedness of every run.
  bool CheckInvariants() const;

  static constexpr int kDefaultMementoBits = 8;
  static constexpr double kMaxLoadFactor = RsqfTable::kMaxLoadFactor;
  /// Interior (fully-covered) prefixes probed before a very wide range is
  /// admitted outright — the same give-up idiom as prefix-bloom/Grafite.
  static constexpr uint64_t kMaxInteriorProbes = 64;

 private:
  void Fingerprint(uint64_t prefix, uint64_t* fq, uint64_t* fr) const;
  /// One prefix probe: true when the run of the prefix's quotient holds
  /// its remainder with a memento in [m_lo, m_hi]. Reports the run-scan
  /// length through the metrics sink.
  bool ProbePrefix(uint64_t prefix, uint64_t m_lo, uint64_t m_hi) const;
  /// The RSQF resize path: rebuilds into a (q+1, r-1) table, re-splitting
  /// the constant (q + r)-bit fingerprints. False when r == 1.
  bool Expand();

  int q_bits_;
  int r_bits_;
  int m_bits_;
  uint64_t hash_seed_;
  uint64_t num_quotients_;
  uint64_t num_keys_ = 0;
  uint64_t expansions_ = 0;
  RsqfTable table_;
};

}  // namespace bbf

#endif  // BBF_RANGE_MEMENTO_H_
