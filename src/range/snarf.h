#ifndef BBF_RANGE_SNARF_H_
#define BBF_RANGE_SNARF_H_

#include <cstdint>
#include <vector>

#include "range/range_filter.h"
#include "util/elias_fano.h"

namespace bbf {

/// SNARF [Vaidya et al. 2022] (§2.5): the "learned" range filter. A
/// linear-spline model of the keys' CDF maps every key to a position in a
/// sparse bit array of n * 2^b cells; set positions are stored compressed
/// (Elias–Fano — the Golomb-coded variant of the paper has the same
/// asymptotics). A range query maps its endpoints through the model and
/// reports emptiness of the mapped interval. FPR ~ per-key cell slack
/// 2^-b when the model is accurate; skewed or adversarial key sets degrade
/// the model and hence the FPR — the "learned" trade-off.
class SnarfRangeFilter : public RangeFilter {
 public:
  /// `cells_per_key_log2` = b: the bit array has n * 2^b cells. The spline
  /// keeps one knot every `knot_every` keys (model granularity).
  SnarfRangeFilter(const std::vector<uint64_t>& keys, int cells_per_key_log2,
                   uint64_t knot_every = 128);

  bool MayContainRange(uint64_t lo, uint64_t hi) const override;
  size_t SpaceBits() const override {
    return positions_.MemoryUsageBytes() * 8 + knots_.size() * 128;
  }
  std::string_view Name() const override { return "snarf"; }

 private:
  struct Knot {
    uint64_t key;
    uint64_t rank;  // Number of keys strictly below `key`.
  };

  /// Monotone model position of `x` in [0, num_cells_].
  uint64_t MapToCell(uint64_t x) const;

  std::vector<Knot> knots_;
  uint64_t num_cells_ = 0;
  uint64_t num_keys_ = 0;
  int cells_per_key_log2_;
  EliasFano positions_;
};

}  // namespace bbf

#endif  // BBF_RANGE_SNARF_H_
