#ifndef BBF_RANGE_ARF_H_
#define BBF_RANGE_ARF_H_

#include <cstdint>
#include <vector>

#include "range/range_filter.h"

namespace bbf {

/// Adaptive Range Filter [Alexiou, Kossmann, Larson 2013] (§2.5):
/// Hekaton's trainable range filter, "considered the first attempt to
/// build a practical range filter". A binary trie over the integer key
/// space whose leaves carry one bit: *might contain keys* or *certainly
/// empty*. Everything starts as one occupied root; the filter learns only
/// from feedback — when the store confirms a queried range was empty, the
/// trie splits along the range and marks the covered regions empty.
///
/// Reproduced properties: zero false negatives by construction (a region
/// is only marked empty after a verified-empty query covered it); "works
/// well with a stable or repeating integer workload" but needs retraining
/// when the workload shifts; and the node budget caps the space, after
/// which refinement stops (the paper merges cold nodes; we freeze, which
/// keeps the same never-false-negative contract).
class ArfRangeFilter : public RangeFilter {
 public:
  /// `max_nodes` bounds the trie; untrained the filter passes everything.
  explicit ArfRangeFilter(uint64_t max_nodes = 1 << 16);

  /// Feedback from the data store: [lo, hi] was queried and `was_empty`
  /// says whether it actually held keys. Only verified-empty ranges
  /// refine the trie.
  void Train(uint64_t lo, uint64_t hi, bool was_empty);

  bool MayContainRange(uint64_t lo, uint64_t hi) const override;
  size_t SpaceBits() const override;
  std::string_view Name() const override { return "arf"; }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int32_t left = -1;   // -1: leaf.
    int32_t right = -1;
    bool occupied = true;
  };

  void TrainNode(int32_t node, uint64_t node_lo, uint64_t node_hi,
                 uint64_t lo, uint64_t hi);
  bool QueryNode(int32_t node, uint64_t node_lo, uint64_t node_hi,
                 uint64_t lo, uint64_t hi) const;

  uint64_t max_nodes_;
  std::vector<Node> nodes_;
};

}  // namespace bbf

#endif  // BBF_RANGE_ARF_H_
