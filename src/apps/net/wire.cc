#include "apps/net/wire.h"

#include "util/hash.h"

namespace bbf::net {
namespace {

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeFrame(Opcode opcode, FrameStatus status, uint32_t count,
                        uint64_t seq, std::string_view payload) {
  std::string out;
  out.reserve(kWireHeaderBytes + payload.size());
  PutU64(&out, kWireMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(opcode));
  out.push_back(static_cast<char>(status));
  out.push_back('\0');  // flags
  PutU32(&out, count);
  PutU64(&out, seq);
  PutU64(&out, payload.size());
  PutU64(&out, HashBytes(payload.data(), payload.size(), kWireChecksumSeed));
  out.append(payload);
  return out;
}

FrameHeader PeekHeader(std::string_view buf) {
  FrameHeader h;
  const char* p = buf.data();
  h.magic = GetU64(p + kWireMagicOffset);
  h.version = static_cast<uint8_t>(p[kWireVersionOffset]);
  h.opcode = static_cast<uint8_t>(p[kWireOpcodeOffset]);
  h.status = static_cast<uint8_t>(p[kWireStatusOffset]);
  h.flags = static_cast<uint8_t>(p[kWireFlagsOffset]);
  h.count = GetU32(p + kWireCountOffset);
  h.seq = GetU64(p + kWireSeqOffset);
  h.payload_len = GetU64(p + kWireLenOffset);
  h.checksum = GetU64(p + kWireChecksumOffset);
  return h;
}

HeaderCheck CheckHeader(const FrameHeader& h) {
  if (h.magic != kWireMagic) return HeaderCheck::kBadMagic;
  if (h.version != kWireVersion) return HeaderCheck::kBadVersion;
  if (h.flags != 0) return HeaderCheck::kBadFlags;
  if (h.opcode < static_cast<uint8_t>(Opcode::kPing) ||
      h.opcode > static_cast<uint8_t>(Opcode::kTunerCtl)) {
    return HeaderCheck::kBadOpcode;
  }
  if (h.payload_len > kMaxWirePayloadBytes || h.count > kMaxWireBatchCount) {
    return HeaderCheck::kHostileLength;
  }
  return HeaderCheck::kOk;
}

CutResult CutFrame(std::string_view buf, FrameHeader* header,
                   std::string_view* payload, size_t* consumed) {
  if (buf.size() < kWireHeaderBytes) return CutResult::kNeedMore;
  const FrameHeader h = PeekHeader(buf);
  // Header validation runs the instant 40 bytes exist — BEFORE the
  // payload is awaited, so a hostile payload_len can never make the
  // receiver sit on (or allocate toward) gigabytes it will reject anyway.
  if (CheckHeader(h) != HeaderCheck::kOk) return CutResult::kMalformed;
  const size_t total = kWireHeaderBytes + static_cast<size_t>(h.payload_len);
  if (buf.size() < total) return CutResult::kNeedMore;
  const std::string_view body =
      buf.substr(kWireHeaderBytes, static_cast<size_t>(h.payload_len));
  if (HashBytes(body.data(), body.size(), kWireChecksumSeed) != h.checksum) {
    return CutResult::kMalformed;
  }
  *header = h;
  *payload = body;
  *consumed = total;
  return CutResult::kFrame;
}

std::string EncodeKeysPayload(std::span<const uint64_t> keys) {
  std::string out;
  out.reserve(keys.size() * 8);
  for (uint64_t k : keys) PutU64(&out, k);
  return out;
}

bool DecodeKeysPayload(const FrameHeader& h, std::string_view payload,
                       std::vector<uint64_t>* keys) {
  if (h.count > kMaxWireBatchCount) return false;
  if (payload.size() != static_cast<size_t>(h.count) * 8) return false;
  std::vector<uint64_t> local(h.count);
  for (uint32_t i = 0; i < h.count; ++i) {
    local[i] = GetU64(payload.data() + static_cast<size_t>(i) * 8);
  }
  *keys = std::move(local);
  return true;
}

std::string EncodeStringsPayload(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& s : items) {
    PutU32(&out, static_cast<uint32_t>(s.size()));
    out.append(s);
  }
  return out;
}

bool DecodeStringsPayload(const FrameHeader& h, std::string_view payload,
                          std::vector<std::string_view>* items) {
  if (h.count > kMaxWireBatchCount) return false;
  std::vector<std::string_view> local;
  local.reserve(h.count);
  size_t off = 0;
  for (uint32_t i = 0; i < h.count; ++i) {
    if (payload.size() - off < 4) return false;
    const uint32_t len = GetU32(payload.data() + off);
    off += 4;
    if (len > kMaxWireStringBytes || payload.size() - off < len) return false;
    local.push_back(payload.substr(off, len));
    off += len;
  }
  if (off != payload.size()) return false;  // Trailing bytes = malformed.
  *items = std::move(local);
  return true;
}

}  // namespace bbf::net
