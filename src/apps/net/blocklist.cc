#include "apps/net/blocklist.h"

#include <utility>

#include "core/key.h"
#include "staticf/peeling.h"
#include "util/bits.h"

namespace bbf::net {
namespace {

// Hash-once boundary for the app layer: each URL is hashed exactly once
// into a canonical HashedKey; every filter probe below derives from it.
HashedKey UrlKey(std::string_view url) { return HashedKey(url); }

class BloomBlocklist : public Blocklist {
 public:
  BloomBlocklist(const std::vector<std::string>& malicious,
                 double bits_per_key)
      : filter_(std::max<uint64_t>(malicious.size(), 1), bits_per_key) {
    for (const auto& url : malicious) filter_.Insert(UrlKey(url));
  }

  bool IsBlocked(std::string_view url) const override {
    return filter_.Contains(UrlKey(url));
  }
  size_t SpaceBits() const override { return filter_.SpaceBits(); }
  std::string_view Name() const override { return "bloom"; }

 private:
  BloomFilter filter_;
};

/// XOR table over yes ∪ no keys. Yes keys satisfy
/// T[h0]^T[h1]^T[h2] == fp(key); no keys are written with fp(key)^1, so
/// they can never be blocked (a false-positive-free set).
class IntegratedBlocklist : public Blocklist {
 public:
  IntegratedBlocklist(const std::vector<std::string>& malicious,
                      const std::vector<std::string>& benign_no_list,
                      int fingerprint_bits)
      : fingerprint_bits_(fingerprint_bits) {
    std::vector<uint64_t> keys;
    std::unordered_set<uint64_t> no_keys;
    for (const auto& url : malicious) keys.push_back(UrlKey(url).value());
    for (const auto& url : benign_no_list) {
      const uint64_t k = UrlKey(url).value();
      keys.push_back(k);
      no_keys.insert(k);
    }
    const uint32_t capacity = XorPeeler::CapacityFor(keys.size());
    segment_len_ = capacity / 3;
    table_ = CompactVector(capacity, fingerprint_bits_);
    std::vector<PeelEntry> order;
    for (seed_ = 1;; ++seed_) {
      if (XorPeeler::Peel(keys, capacity, seed_, &order)) break;
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      uint32_t s[3];
      XorPeeler::Slots(it->key, segment_len_, seed_, s);
      uint64_t v = Fingerprint(HashedKey::FromMix(it->key));
      if (no_keys.contains(it->key)) v ^= 1;  // Deliberate mismatch.
      for (int i = 0; i < 3; ++i) {
        if (s[i] != it->slot) v ^= table_.Get(s[i]);
      }
      table_.Set(it->slot, v);
    }
  }

  bool IsBlocked(std::string_view url) const override {
    const HashedKey key = UrlKey(url);
    uint32_t s[3];
    XorPeeler::Slots(key.value(), segment_len_, seed_, s);
    const uint64_t v =
        table_.Get(s[0]) ^ table_.Get(s[1]) ^ table_.Get(s[2]);
    return v == Fingerprint(key);
  }
  size_t SpaceBits() const override {
    return table_.size() * table_.width();
  }
  std::string_view Name() const override { return "integrated"; }

 private:
  uint64_t Fingerprint(HashedKey key) const {
    return key.Derive(seed_ + 0x1F) & LowMask(fingerprint_bits_);
  }

  int fingerprint_bits_;
  uint32_t segment_len_ = 0;
  uint64_t seed_ = 0;
  CompactVector table_;
};

class AdaptiveBlocklist : public Blocklist {
 public:
  AdaptiveBlocklist(const std::vector<std::string>& malicious, double fpr)
      : filter_(AdaptiveQuotientFilter::ForCapacity(
            std::max<uint64_t>(malicious.size(), 1), fpr)) {
    for (const auto& url : malicious) filter_.Insert(UrlKey(url));
  }

  bool IsBlocked(std::string_view url) const override {
    return filter_.Contains(UrlKey(url));
  }
  bool ReportFalseBlock(std::string_view url) override {
    return filter_.ReportFalsePositive(UrlKey(url));
  }
  size_t SpaceBits() const override { return filter_.SpaceBits(); }
  std::string_view Name() const override { return "adaptive"; }

 private:
  AdaptiveQuotientFilter filter_;
};

}  // namespace

std::unique_ptr<Blocklist> MakeBloomBlocklist(
    const std::vector<std::string>& malicious, double bits_per_key) {
  return std::make_unique<BloomBlocklist>(malicious, bits_per_key);
}

std::unique_ptr<Blocklist> MakeIntegratedBlocklist(
    const std::vector<std::string>& malicious,
    const std::vector<std::string>& benign_no_list, int fingerprint_bits) {
  return std::make_unique<IntegratedBlocklist>(malicious, benign_no_list,
                                               fingerprint_bits);
}

std::unique_ptr<Blocklist> MakeAdaptiveBlocklist(
    const std::vector<std::string>& malicious, double fpr) {
  return std::make_unique<AdaptiveBlocklist>(malicious, fpr);
}

}  // namespace bbf::net
