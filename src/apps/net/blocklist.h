#ifndef BBF_APPS_NET_BLOCKLIST_H_
#define BBF_APPS_NET_BLOCKLIST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "adaptive/adaptive_quotient_filter.h"
#include "bloom/bloom_filter.h"
#include "util/compact_vector.h"

namespace bbf::net {

/// Malicious-URL blocking (§3.3): a router stores the malicious URLs as
/// the *yes list* of a filter; false positives send benign traffic through
/// an expensive verification path. The yes/no-list problem asks for a
/// filter that never blocks a designated *no list* of important benign
/// URLs.
///
/// Abstract interface over the three solutions the paper discusses.
class Blocklist {
 public:
  virtual ~Blocklist() = default;

  /// True if the URL should be blocked (sent to verification).
  virtual bool IsBlocked(std::string_view url) const = 0;

  /// Reports that a *benign* URL was wrongly blocked. Adaptive
  /// implementations restructure so the same URL passes next time;
  /// static ones ignore it and return false.
  virtual bool ReportFalseBlock(std::string_view /*url*/) { return false; }

  virtual size_t SpaceBits() const = 0;
  virtual std::string_view Name() const = 0;
};

/// Baseline: a plain Bloom filter of the malicious URLs. Every benign URL
/// keeps paying the FPR forever.
std::unique_ptr<Blocklist> MakeBloomBlocklist(
    const std::vector<std::string>& malicious, double bits_per_key);

/// Static yes/no list via the Integrated-Filter idea [Reviriego et al.;
/// Chazelle et al.]: an XOR/Bloomier table over yes ∪ no keys where no-list
/// keys are written with a deliberately mismatched fingerprint, so they are
/// *guaranteed* to pass while unknown URLs see the usual 2^-f FPR.
std::unique_ptr<Blocklist> MakeIntegratedBlocklist(
    const std::vector<std::string>& malicious,
    const std::vector<std::string>& benign_no_list, int fingerprint_bits);

/// Dynamic yes/no list via an adaptive filter [Wen et al. 2025]: benign
/// URLs join the no list the first time they are wrongly blocked, and
/// adaptation guarantees they are never blocked again.
std::unique_ptr<Blocklist> MakeAdaptiveBlocklist(
    const std::vector<std::string>& malicious, double fpr);

}  // namespace bbf::net

#endif  // BBF_APPS_NET_BLOCKLIST_H_
