#ifndef BBF_APPS_NET_CLIENT_H_
#define BBF_APPS_NET_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "apps/net/wire.h"

namespace bbf::net {

/// Blocking request/response client for the wire protocol — one call per
/// frame, used by tests, bench_net, and the demo. It validates response
/// frames with the same CutFrame discipline as the server (a hostile or
/// corrupt *server* cannot crash a client either) and reports transport
/// failure as FrameStatus::kTransportError, after which the connection
/// is closed and every later call fails fast.
class SyncClient {
 public:
  /// Takes ownership of a connected socket (socketpair end, TCP socket).
  explicit SyncClient(int fd) : fd_(fd) {}
  ~SyncClient();

  SyncClient(SyncClient&& other) noexcept : fd_(other.fd_), seq_(other.seq_) {
    other.fd_ = -1;
  }
  SyncClient& operator=(SyncClient&&) = delete;
  SyncClient(const SyncClient&) = delete;
  SyncClient& operator=(const SyncClient&) = delete;

  /// Connects to 127.0.0.1:port. Returns the fd, or -1.
  static int ConnectTcp(uint16_t port);

  bool ok() const { return fd_ >= 0; }

  FrameStatus Ping();
  /// out[i] = kKeyPresent/kKeyAbsent for keys[i].
  FrameStatus Lookup(std::span<const uint64_t> keys,
                     std::vector<uint8_t>* out);
  /// out[i] = kInsertAccepted/kInsertExpanded/kInsertNacked for keys[i].
  /// A key is ACKED (queryable forever after) iff its byte is not
  /// kInsertNacked AND the frame status is kOk.
  FrameStatus Insert(std::span<const uint64_t> keys,
                     std::vector<uint8_t>* out);
  /// out[i] = kEraseDone/kEraseMiss.
  FrameStatus Erase(std::span<const uint64_t> keys,
                    std::vector<uint8_t>* out);
  /// Prometheus text from the server's metrics endpoint.
  FrameStatus Metrics(std::string* text);
  /// out[i] = 1 if urls[i] is blocked.
  FrameStatus BlockCheck(const std::vector<std::string>& urls,
                         std::vector<uint8_t>* out);
  /// out[i] = 1 if the blocklist adapted for urls[i].
  FrameStatus ReportFalseBlock(const std::vector<std::string>& urls,
                               std::vector<uint8_t>* out);
  /// Tuner control (kTunerCtl): `cmd` is kTunerCmdStatus/kTunerCmdPoll;
  /// the tuner's text reply lands in `text`. kUnsupported when the
  /// server runs without a tuner.
  FrameStatus TunerCtl(uint8_t cmd, std::string* text);

 private:
  FrameStatus Call(Opcode op, uint32_t count, std::string_view payload,
                   std::string* response_payload);
  bool WriteAll(std::string_view bytes);
  bool ReadExactly(char* buf, size_t len);
  void Fail();

  int fd_;
  uint64_t seq_ = 0;
};

}  // namespace bbf::net

#endif  // BBF_APPS_NET_CLIENT_H_
