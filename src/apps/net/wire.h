#ifndef BBF_APPS_NET_WIRE_H_
#define BBF_APPS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bbf::net {

/// The filter-as-a-service wire protocol (DESIGN.md §14): framed binary
/// request/response pairs carrying batched filter operations. The frame
/// discipline is the snapshot layer's (§8) applied to a socket: a fixed
/// self-describing header with capped length fields, a payload checksum,
/// and loaders that parse into locals and validate everything before a
/// single byte drives an allocation or a filter probe. Network input is
/// *more* hostile than a snapshot file — every field arrives from an
/// untrusted, possibly adversarial peer, one byte at a time.
///
/// Frame layout (little-endian, 40-byte header):
///
///   magic        u64   "BBFWIRE1"
///   version      u8    kWireVersion (currently 1)
///   opcode       u8    Opcode below
///   status       u8    FrameStatus; 0 (kOk) in requests
///   flags        u8    reserved, must be 0
///   count        u32   items in the payload (keys, strings, statuses)
///   seq          u64   request sequence number, echoed in the response
///   payload_len  u64   <= kMaxWirePayloadBytes
///   checksum     u64   HashBytes(payload, kWireChecksumSeed)
///   payload      bytes
///
/// The checksum covers the payload only; header corruption is caught by
/// the magic/version/cap checks or by the payload no longer matching —
/// the same implicit-protection argument as the §8 frame.
inline constexpr uint64_t kWireMagic = 0x3145524957464242ULL;  // "BBFWIRE1"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderBytes = 40;
inline constexpr uint64_t kWireChecksumSeed = 0x57495245C0DE5EEDULL;

/// Hard ceiling on one frame's payload. A length field above it is
/// rejected before any buffering, so a hostile peer cannot make the
/// server hold more than this per connection while mid-frame.
inline constexpr uint64_t kMaxWirePayloadBytes = uint64_t{1} << 20;

/// Ceiling on the per-frame item count (64Ki keys = 512 KiB of payload).
inline constexpr uint32_t kMaxWireBatchCount = 64 * 1024;

/// Ceiling on one length-prefixed string item (URLs, not documents).
inline constexpr uint32_t kMaxWireStringBytes = 64 * 1024;

/// Header field offsets, exported so the fault-corpus generator
/// (tests/fault_injection.h FrameSpec) can truncate at every boundary
/// and bomb every length field without duplicating the layout.
inline constexpr size_t kWireMagicOffset = 0;
inline constexpr size_t kWireVersionOffset = 8;
inline constexpr size_t kWireOpcodeOffset = 9;
inline constexpr size_t kWireStatusOffset = 10;
inline constexpr size_t kWireFlagsOffset = 11;
inline constexpr size_t kWireCountOffset = 12;
inline constexpr size_t kWireSeqOffset = 16;
inline constexpr size_t kWireLenOffset = 24;
inline constexpr size_t kWireChecksumOffset = 32;
inline constexpr size_t kWireFieldBoundaries[] = {0,  8,  9,  10, 11,
                                                  12, 16, 24, 32, 40};

enum class Opcode : uint8_t {
  kPing = 1,              // Liveness probe; empty payload both ways.
  kLookup = 2,            // count u64 keys -> count bytes (kKey*).
  kInsert = 3,            // count u64 keys -> count bytes (kInsert*).
  kErase = 4,             // count u64 keys -> count bytes (kErase*).
  kMetrics = 5,           // empty -> Prometheus text payload.
  kBlockCheck = 6,        // count strings -> count bytes (0/1 blocked).
  kReportFalseBlock = 7,  // count strings -> count bytes (0/1 adapted).
  kTunerCtl = 8,          // 1 command byte -> tuner status/decision text.
};

/// kTunerCtl command bytes (the single-byte request payload).
inline constexpr uint8_t kTunerCmdStatus = 0;  // Status + decision history.
inline constexpr uint8_t kTunerCmdPoll = 1;    // Manual poll-once trigger.

/// Frame-level status in responses. Per-key outcomes ride in the payload;
/// these describe the fate of the frame itself.
enum class FrameStatus : uint8_t {
  kOk = 0,
  /// Backpressure NACK: the connection or server in-flight byte budget is
  /// exhausted. The request was NOT processed; retry after draining reads.
  kBusy = 1,
  /// The frame failed validation. The server closes the connection after
  /// sending this (framing is unrecoverable once desynchronized).
  kMalformed = 2,
  /// The server is draining; the request was not processed.
  kDraining = 3,
  /// Opcode valid but no backend mounted (e.g. kBlockCheck without a
  /// blocklist).
  kUnsupported = 4,
  /// Client-side only, never on the wire: the transport failed
  /// (disconnect, short read, garbage header).
  kTransportError = 250,
};

/// Per-key payload bytes in responses.
inline constexpr uint8_t kKeyAbsent = 0;
inline constexpr uint8_t kKeyPresent = 1;
inline constexpr uint8_t kInsertAccepted = 0;   // Stored below threshold.
inline constexpr uint8_t kInsertExpanded = 1;   // Stored by expansion.
inline constexpr uint8_t kInsertNacked = 2;     // NOT stored (kReject).
inline constexpr uint8_t kEraseMiss = 0;
inline constexpr uint8_t kEraseDone = 1;

/// One decoded header, exactly as read — validation is a separate step so
/// tests can exercise hostile values.
struct FrameHeader {
  uint64_t magic = 0;
  uint8_t version = 0;
  uint8_t opcode = 0;
  uint8_t status = 0;
  uint8_t flags = 0;
  uint32_t count = 0;
  uint64_t seq = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;
};

/// Why a header was rejected; kOk means structurally admissible (the
/// payload checksum is still pending).
enum class HeaderCheck : uint8_t {
  kOk = 0,
  kBadMagic,
  kBadVersion,
  kBadFlags,
  kBadOpcode,
  kHostileLength,  // payload_len or count above the caps.
};

/// Serializes one complete frame (header + payload).
std::string EncodeFrame(Opcode opcode, FrameStatus status, uint32_t count,
                        uint64_t seq, std::string_view payload);

/// Decodes the fixed header from `buf` (requires
/// buf.size() >= kWireHeaderBytes). Pure read, no validation.
FrameHeader PeekHeader(std::string_view buf);

/// Structural validation of a decoded header (magic, version, flags,
/// opcode range, length caps). Checked BEFORE any payload buffering, so
/// hostile length fields cannot make the receiver allocate.
HeaderCheck CheckHeader(const FrameHeader& h);

/// Result of attempting to cut one frame off the front of a buffer.
enum class CutResult : uint8_t {
  kNeedMore,   // Prefix of a (so far) valid frame; read more bytes.
  kFrame,      // One whole valid frame; *consumed bytes were used.
  kMalformed,  // The buffer can never become a valid frame.
};

/// Incremental framing shared by the server loop, the client, and the
/// fuzz harness: validates the header as soon as 40 bytes exist, waits
/// for the payload, verifies the checksum, and only then exposes the
/// payload view (into `buf`, valid while `buf` is).
CutResult CutFrame(std::string_view buf, FrameHeader* header,
                   std::string_view* payload, size_t* consumed);

// --- Payload codecs ---------------------------------------------------------

/// count x u64 little-endian keys.
std::string EncodeKeysPayload(std::span<const uint64_t> keys);

/// Strict inverse: requires payload_len == 8 * count with count within
/// the batch cap. False on any mismatch; `keys` untouched on failure.
bool DecodeKeysPayload(const FrameHeader& h, std::string_view payload,
                       std::vector<uint64_t>* keys);

/// count x (u32 length, bytes) strings.
std::string EncodeStringsPayload(const std::vector<std::string>& items);

/// Strict inverse; items are views into `payload`. False on count/length
/// mismatch, a string above kMaxWireStringBytes, or trailing bytes.
bool DecodeStringsPayload(const FrameHeader& h, std::string_view payload,
                          std::vector<std::string_view>* items);

}  // namespace bbf::net

#endif  // BBF_APPS_NET_WIRE_H_
