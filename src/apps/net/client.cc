#include "apps/net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/hash.h"

namespace bbf::net {

SyncClient::~SyncClient() {
  if (fd_ >= 0) ::close(fd_);
}

int SyncClient::ConnectTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SyncClient::Fail() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SyncClient::WriteAll(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SyncClient::ReadExactly(char* buf, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd_, buf + off, len - off, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

FrameStatus SyncClient::Call(Opcode op, uint32_t count,
                             std::string_view payload,
                             std::string* response_payload) {
  if (fd_ < 0) return FrameStatus::kTransportError;
  const uint64_t seq = ++seq_;
  if (!WriteAll(EncodeFrame(op, FrameStatus::kOk, count, seq, payload))) {
    Fail();
    return FrameStatus::kTransportError;
  }
  char header_buf[kWireHeaderBytes];
  if (!ReadExactly(header_buf, sizeof(header_buf))) {
    Fail();
    return FrameStatus::kTransportError;
  }
  const FrameHeader h =
      PeekHeader(std::string_view(header_buf, sizeof(header_buf)));
  // The client applies the server's own defensive discipline: validate
  // the header (caps included) before trusting payload_len, verify the
  // checksum, and treat any mismatch as a dead connection.
  if (CheckHeader(h) != HeaderCheck::kOk || h.seq != seq) {
    Fail();
    return FrameStatus::kTransportError;
  }
  std::string body(static_cast<size_t>(h.payload_len), '\0');
  if (!body.empty() && !ReadExactly(body.data(), body.size())) {
    Fail();
    return FrameStatus::kTransportError;
  }
  if (HashBytes(body.data(), body.size(), kWireChecksumSeed) != h.checksum) {
    Fail();
    return FrameStatus::kTransportError;
  }
  if (response_payload != nullptr) *response_payload = std::move(body);
  return static_cast<FrameStatus>(h.status);
}

FrameStatus SyncClient::Ping() { return Call(Opcode::kPing, 0, "", nullptr); }

namespace {

FrameStatus StatusesFromBody(FrameStatus st, const std::string& body,
                             size_t want, std::vector<uint8_t>* out) {
  if (st != FrameStatus::kOk) return st;
  if (body.size() != want) return FrameStatus::kTransportError;
  out->assign(body.begin(), body.end());
  return st;
}

}  // namespace

FrameStatus SyncClient::Lookup(std::span<const uint64_t> keys,
                               std::vector<uint8_t>* out) {
  std::string body;
  const FrameStatus st =
      Call(Opcode::kLookup, static_cast<uint32_t>(keys.size()),
           EncodeKeysPayload(keys), &body);
  return StatusesFromBody(st, body, keys.size(), out);
}

FrameStatus SyncClient::Insert(std::span<const uint64_t> keys,
                               std::vector<uint8_t>* out) {
  std::string body;
  const FrameStatus st =
      Call(Opcode::kInsert, static_cast<uint32_t>(keys.size()),
           EncodeKeysPayload(keys), &body);
  return StatusesFromBody(st, body, keys.size(), out);
}

FrameStatus SyncClient::Erase(std::span<const uint64_t> keys,
                              std::vector<uint8_t>* out) {
  std::string body;
  const FrameStatus st =
      Call(Opcode::kErase, static_cast<uint32_t>(keys.size()),
           EncodeKeysPayload(keys), &body);
  return StatusesFromBody(st, body, keys.size(), out);
}

FrameStatus SyncClient::Metrics(std::string* text) {
  return Call(Opcode::kMetrics, 0, "", text);
}

FrameStatus SyncClient::TunerCtl(uint8_t cmd, std::string* text) {
  const char payload[1] = {static_cast<char>(cmd)};
  return Call(Opcode::kTunerCtl, 1, std::string_view(payload, 1), text);
}

FrameStatus SyncClient::BlockCheck(const std::vector<std::string>& urls,
                                   std::vector<uint8_t>* out) {
  std::string body;
  const FrameStatus st =
      Call(Opcode::kBlockCheck, static_cast<uint32_t>(urls.size()),
           EncodeStringsPayload(urls), &body);
  return StatusesFromBody(st, body, urls.size(), out);
}

FrameStatus SyncClient::ReportFalseBlock(const std::vector<std::string>& urls,
                                         std::vector<uint8_t>* out) {
  std::string body;
  const FrameStatus st =
      Call(Opcode::kReportFalseBlock, static_cast<uint32_t>(urls.size()),
           EncodeStringsPayload(urls), &body);
  return StatusesFromBody(st, body, urls.size(), out);
}

}  // namespace bbf::net
