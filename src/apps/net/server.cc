#include "apps/net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "core/filter_io.h"
#include "obs/export.h"

namespace bbf::net {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Upper bound on a buffered-but-unparsed HTTP request head.
constexpr size_t kMaxHttpHeadBytes = 8 * 1024;

/// Event-loop tick: epoll_wait wakes at least this often so deadline
/// scans and the drain flag are observed promptly even on idle loops.
constexpr int kTickMs = 20;

/// The drain flag installed by InstallDrainOnSignal. A signal handler may
/// only touch lock-free state; storing one atomic flag that the loops
/// poll every tick is exactly that.
std::atomic<std::atomic<bool>*> g_signal_drain_flag{nullptr};

extern "C" void DrainSignalHandler(int) {
  if (auto* flag = g_signal_drain_flag.load(std::memory_order_acquire)) {
    flag->store(true, std::memory_order_release);
  }
}

}  // namespace

obs::MetricsSnapshot ServerMetrics::Snapshot() const {
  obs::MetricsSnapshot snap;
  snap.counters = {
      {"net_connections_accepted_total", accepted.Load()},
      {"net_connections_closed_total", closed.Load()},
      {"net_connections_evicted_idle_total", evicted_idle.Load()},
      {"net_connections_evicted_deadline_total", evicted_deadline.Load()},
      {"net_frames_served_total", frames_served.Load()},
      {"net_frames_nacked_busy_total", nacked_busy.Load()},
      {"net_frames_malformed_total", malformed_rejected.Load()},
      {"net_frames_drained_inflight_total", drained_inflight.Load()},
      {"net_keys_looked_up_total", keys_looked_up.Load()},
      {"net_keys_inserted_total", keys_inserted.Load()},
      {"net_keys_insert_nacked_total", keys_insert_nacked.Load()},
      {"net_http_scrapes_total", http_scrapes.Load()},
      {"net_tuner_ctl_total", tuner_ctl.Load()},
  };
  return snap;
}

/// One event loop: its own epoll instance, its own listening socket (when
/// Listen was called), its own connection table. Connections never
/// migrate, so everything here is single-threaded except the explicitly
/// atomic cross-thread state (adopt queue, global budgets, drain flags).
struct Server::Worker {
  struct Conn {
    int fd = -1;
    std::string in;       // Buffered unparsed input.
    size_t in_off = 0;    // Consumed prefix of `in`.
    std::string out;      // Pending responses.
    size_t out_off = 0;   // Flushed prefix of `out`.
    bool http = false;    // First bytes were "GET " — scrape mode.
    bool mode_known = false;
    bool closing = false;  // Flush `out`, then close.
    bool paused = false;   // Over budget: EPOLLIN disabled until drained.
    bool peer_eof = false;  // Peer half-closed; serve what we hold, then go.
    int64_t last_activity_ms = 0;
    int64_t deadline_ms = 0;  // 0 = no armed deadline.
  };

  explicit Worker(Server* server) : server_(server) {}

  Server* server_;
  int epoll_fd = -1;
  int wake_fd = -1;
  int listen_fd = -1;
  std::unordered_map<int, Conn> conns;
  std::mutex adopt_mu;
  std::vector<int> adopt_queue;
  bool drain_seen = false;

  bool Init() {
    epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd < 0 || wake_fd < 0) return false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd;
    return epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) == 0;
  }

  ~Worker() {
    for (auto& [fd, conn] : conns) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  size_t PendingBytes(const Conn& conn) const {
    return conn.out.size() - conn.out_off;
  }

  void UpdateEpoll(Conn& conn) {
    epoll_event ev{};
    ev.data.fd = conn.fd;
    ev.events = 0;
    if (!conn.paused && !conn.closing && !conn.peer_eof) ev.events |= EPOLLIN;
    if (PendingBytes(conn) > 0) ev.events |= EPOLLOUT;
    epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void CloseConn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    server_->global_pending_.fetch_sub(PendingBytes(it->second),
                                       std::memory_order_relaxed);
    epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(it);
    server_->open_connections_.fetch_sub(1, std::memory_order_relaxed);
    server_->metrics_.closed.Add();
  }

  void AddConn(int fd) {
    if (server_->open_connections_.load(std::memory_order_relaxed) >=
        server_->config_.max_connections) {
      ::close(fd);
      return;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conn.last_activity_ms = NowMs();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return;
    }
    conns.emplace(fd, std::move(conn));
    server_->open_connections_.fetch_add(1, std::memory_order_relaxed);
    server_->metrics_.accepted.Add();
  }

  void Enqueue(int fd) {
    {
      std::lock_guard<std::mutex> lock(adopt_mu);
      adopt_queue.push_back(fd);
    }
    Wake();
  }

  void DrainAdoptQueue() {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> lock(adopt_mu);
      fds.swap(adopt_queue);
    }
    for (int fd : fds) {
      if (server_->draining_.load(std::memory_order_acquire) ||
          server_->stop_now_.load(std::memory_order_acquire)) {
        ::close(fd);
      } else {
        AddConn(fd);
      }
    }
  }

  void Accept() {
    while (true) {
      const int fd =
          accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN, or transient error — both: stop.
      AddConn(fd);
    }
  }

  void AppendOut(Conn& conn, std::string_view bytes) {
    conn.out.append(bytes);
    server_->global_pending_.fetch_add(bytes.size(),
                                       std::memory_order_relaxed);
  }

  /// Flushes as much of `out` as the socket takes. Returns false when the
  /// connection was closed.
  bool TryFlush(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          // Peer not reading: arm the write-progress deadline.
          if (conn.deadline_ms == 0) {
            conn.deadline_ms = NowMs() + server_->config_.io_deadline_ms;
          }
          UpdateEpoll(conn);
          return true;
        }
        CloseConn(conn.fd);
        return false;
      }
      conn.out_off += static_cast<size_t>(n);
      conn.last_activity_ms = NowMs();
      conn.deadline_ms = 0;  // Progress; re-armed below if still pending.
      server_->global_pending_.fetch_sub(static_cast<size_t>(n),
                                         std::memory_order_relaxed);
    }
    conn.out.clear();
    conn.out_off = 0;
    if (conn.closing) {
      CloseConn(conn.fd);
      return false;
    }
    // Fully drained: a paused (over-budget) connection may resume.
    // Resumption is the CALLER's job (ProcessBuffered's loop or the
    // EPOLLOUT handler) — doing it here would recurse flush->process->
    // flush arbitrarily deep on a buffer full of tiny frames.
    conn.paused = false;
    UpdateEpoll(conn);
    return true;
  }

  /// Sends a best-effort NACK (the connection is being torn down for a
  /// framing violation; the peer may already be gone).
  void SendDirect(Conn& conn, const std::string& frame) {
    [[maybe_unused]] ssize_t n =
        ::send(conn.fd, frame.data(), frame.size(), MSG_NOSIGNAL);
  }

  /// A half-closed peer sent everything it ever will: whatever responses
  /// are owed get flushed (under the io deadline — the peer must still
  /// read), then the connection closes. An incomplete trailing frame was
  /// never acked, so abandoning it is within contract.
  void FinishEof(Conn& conn) {
    conn.closing = true;
    if (PendingBytes(conn) == 0) {
      CloseConn(conn.fd);
      return;
    }
    if (conn.deadline_ms == 0) {
      conn.deadline_ms = NowMs() + server_->config_.io_deadline_ms;
    }
    UpdateEpoll(conn);
  }

  bool OverBudget(const Conn& conn) const {
    return PendingBytes(conn) > server_->config_.conn_inflight_budget ||
           server_->global_pending_.load(std::memory_order_relaxed) >
               server_->config_.global_inflight_budget;
  }

  /// Handles one validated frame. Returns the response frame.
  std::string Dispatch(const FrameHeader& h, std::string_view payload) {
    Server& s = *server_;
    const Opcode op = static_cast<Opcode>(h.opcode);
    if (s.filter_ == nullptr &&
        (op == Opcode::kLookup || op == Opcode::kInsert ||
         op == Opcode::kErase)) {
      return EncodeFrame(op, FrameStatus::kUnsupported, 0, h.seq, "");
    }
    switch (op) {
      case Opcode::kPing:
        return EncodeFrame(op, FrameStatus::kOk, 0, h.seq, "");
      case Opcode::kLookup: {
        std::vector<uint64_t> raw;
        if (!DecodeKeysPayload(h, payload, &raw)) return std::string();
        // Hash-once boundary: the server is the API boundary, clients
        // ship raw u64 keys, each mixed exactly once here.
        std::vector<HashedKey> keys;
        keys.reserve(raw.size());
        for (uint64_t k : raw) keys.emplace_back(k);
        std::vector<uint8_t> res(raw.size());
        if (!keys.empty()) {
          s.filter_->ContainsMany(std::span<const HashedKey>(keys),
                                  res.data());
        }
        s.metrics_.keys_looked_up.Add(raw.size());
        return EncodeFrame(op, FrameStatus::kOk,
                           static_cast<uint32_t>(res.size()), h.seq,
                           std::string(res.begin(), res.end()));
      }
      case Opcode::kInsert: {
        std::vector<uint64_t> raw;
        if (!DecodeKeysPayload(h, payload, &raw)) return std::string();
        std::vector<HashedKey> keys;
        keys.reserve(raw.size());
        for (uint64_t k : raw) keys.emplace_back(k);
        std::vector<InsertOutcome> outcomes(raw.size());
        if (!keys.empty()) {
          s.filter_->InsertManyWithStatus(std::span<const HashedKey>(keys),
                                          outcomes.data());
        }
        std::string body(raw.size(), '\0');
        uint64_t stored = 0;
        uint64_t nacked = 0;
        for (size_t i = 0; i < outcomes.size(); ++i) {
          switch (outcomes[i]) {
            case InsertOutcome::kAccepted:
              body[i] = static_cast<char>(kInsertAccepted);
              ++stored;
              break;
            case InsertOutcome::kExpanded:
              body[i] = static_cast<char>(kInsertExpanded);
              ++stored;
              break;
            case InsertOutcome::kRejectedFull:
              // The saturation policy refused the key: an explicit
              // per-key NACK, never a silent ack-then-drop.
              body[i] = static_cast<char>(kInsertNacked);
              ++nacked;
              break;
          }
        }
        s.metrics_.keys_inserted.Add(stored);
        s.metrics_.keys_insert_nacked.Add(nacked);
        return EncodeFrame(op, FrameStatus::kOk,
                           static_cast<uint32_t>(body.size()), h.seq, body);
      }
      case Opcode::kErase: {
        std::vector<uint64_t> raw;
        if (!DecodeKeysPayload(h, payload, &raw)) return std::string();
        std::string body(raw.size(), '\0');
        for (size_t i = 0; i < raw.size(); ++i) {
          body[i] = static_cast<char>(s.filter_->Erase(HashedKey(raw[i]))
                                          ? kEraseDone
                                          : kEraseMiss);
        }
        return EncodeFrame(op, FrameStatus::kOk,
                           static_cast<uint32_t>(body.size()), h.seq, body);
      }
      case Opcode::kMetrics: {
        std::string text = s.MetricsText();
        if (text.size() > kMaxWirePayloadBytes) {
          text.resize(kMaxWirePayloadBytes);
        }
        return EncodeFrame(op, FrameStatus::kOk, 0, h.seq, text);
      }
      case Opcode::kBlockCheck:
      case Opcode::kReportFalseBlock: {
        if (s.blocklist_ == nullptr) {
          return EncodeFrame(op, FrameStatus::kUnsupported, 0, h.seq, "");
        }
        std::vector<std::string_view> urls;
        if (!DecodeStringsPayload(h, payload, &urls)) return std::string();
        std::string body(urls.size(), '\0');
        {
          // Blocklist implementations are not internally locked (and
          // ReportFalseBlock mutates); serialize across loops.
          std::lock_guard<std::mutex> lock(s.blocklist_mu_);
          for (size_t i = 0; i < urls.size(); ++i) {
            const bool r = op == Opcode::kBlockCheck
                               ? s.blocklist_->IsBlocked(urls[i])
                               : s.blocklist_->ReportFalseBlock(urls[i]);
            body[i] = static_cast<char>(r ? 1 : 0);
          }
        }
        return EncodeFrame(op, FrameStatus::kOk,
                           static_cast<uint32_t>(body.size()), h.seq, body);
      }
      case Opcode::kTunerCtl: {
        if (!s.tuner_control_) {
          return EncodeFrame(op, FrameStatus::kUnsupported, 0, h.seq, "");
        }
        // Exactly one command byte; anything else is a framing error.
        if (payload.size() != 1 || h.count > 1) return std::string();
        s.metrics_.tuner_ctl.Add();
        std::string text = s.tuner_control_(static_cast<uint8_t>(payload[0]));
        if (text.size() > kMaxWirePayloadBytes) {
          text.resize(kMaxWirePayloadBytes);
        }
        return EncodeFrame(op, FrameStatus::kOk, 0, h.seq, text);
      }
    }
    return std::string();
  }

  /// Cuts and serves every complete frame buffered on `conn`. Returns
  /// false when the connection was closed.
  bool ProcessBuffered(Conn& conn) {
    while (true) {
      const std::string_view buf(conn.in.data() + conn.in_off,
                                 conn.in.size() - conn.in_off);
      FrameHeader h;
      std::string_view payload;
      size_t consumed = 0;
      const CutResult res = CutFrame(buf, &h, &payload, &consumed);
      if (res == CutResult::kNeedMore) {
        // Mid-frame: the peer owes us bytes — arm the read deadline
        // (slow-loris eviction). A clean frame boundary owes nothing.
        if (!buf.empty() && PendingBytes(conn) == 0) {
          if (conn.deadline_ms == 0) {
            conn.deadline_ms = NowMs() + server_->config_.io_deadline_ms;
          }
        } else if (buf.empty() && PendingBytes(conn) == 0) {
          conn.deadline_ms = 0;
        }
        break;
      }
      if (res == CutResult::kMalformed) {
        server_->metrics_.malformed_rejected.Add();
        // Framing is unrecoverable: NACK best-effort and close. The NACK
        // goes around the write buffer on purpose — this connection has
        // no future, only a diagnostic to offer.
        SendDirect(conn, EncodeFrame(static_cast<Opcode>(1),
                                     FrameStatus::kMalformed, 0, 0, ""));
        CloseConn(conn.fd);
        return false;
      }
      // One whole valid frame. Budget check before any processing: an
      // over-budget connection gets an explicit BUSY NACK and stops
      // being read until its responses drain.
      if (OverBudget(conn)) {
        server_->metrics_.nacked_busy.Add();
        conn.in_off += consumed;
        AppendOut(conn, EncodeFrame(static_cast<Opcode>(h.opcode),
                                    FrameStatus::kBusy, 0, h.seq, ""));
        conn.paused = true;
        if (!TryFlush(conn)) return false;
        if (conn.paused) break;  // Still pending: wait for EPOLLOUT.
        continue;                // Budget freed: keep serving buffered frames.
      }
      conn.in_off += consumed;
      std::string response = Dispatch(h, payload);
      if (response.empty()) {
        // Structurally valid frame with a semantically malformed payload
        // (count/length mismatch, oversized string): same treatment as a
        // framing violation.
        server_->metrics_.malformed_rejected.Add();
        SendDirect(conn, EncodeFrame(static_cast<Opcode>(h.opcode),
                                     FrameStatus::kMalformed, 0, h.seq, ""));
        CloseConn(conn.fd);
        return false;
      }
      server_->metrics_.frames_served.Add();
      if (drain_seen) server_->metrics_.drained_inflight.Add();
      conn.deadline_ms = 0;
      AppendOut(conn, response);
      if (!TryFlush(conn)) return false;
      if (conn.paused || conn.closing) break;
    }
    // Compact the consumed prefix; `in` stays bounded by one partial
    // frame (<= header + kMaxWirePayloadBytes) plus one read chunk.
    if (conn.in_off == conn.in.size()) {
      conn.in.clear();
      conn.in_off = 0;
    } else if (conn.in_off > (size_t{256} << 10)) {
      conn.in.erase(0, conn.in_off);
      conn.in_off = 0;
    }
    // Every servable frame is served (a paused connection still has work;
    // its EPOLLOUT resume re-enters here): a half-closed peer can now be
    // flushed and finished.
    if (conn.peer_eof && !conn.paused) {
      FinishEof(conn);
      return false;
    }
    return true;
  }

  bool HandleHttp(Conn& conn) {
    const size_t head_end = conn.in.find("\r\n\r\n", conn.in_off);
    if (head_end == std::string::npos) {
      if (conn.in.size() - conn.in_off > kMaxHttpHeadBytes) {
        server_->metrics_.malformed_rejected.Add();
        CloseConn(conn.fd);
        return false;
      }
      return true;  // Await the rest of the head.
    }
    server_->metrics_.http_scrapes.Add();
    std::string body = server_->MetricsText();
    std::string resp = "HTTP/1.0 200 OK\r\n"
                       "Content-Type: text/plain; version=0.0.4\r\n"
                       "Content-Length: " +
                       std::to_string(body.size()) +
                       "\r\n"
                       "Connection: close\r\n\r\n" +
                       body;
    conn.in.clear();
    conn.in_off = 0;
    AppendOut(conn, resp);
    conn.closing = true;  // One scrape per connection, like node_exporter.
    return TryFlush(conn);
  }

  bool OnReadable(Conn& conn) {
    char chunk[64 * 1024];
    while (true) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n == 0) {
        // Half-close, not abandonment: responses for frames the peer DID
        // finish sending are still owed (acked work is never dropped).
        conn.peer_eof = true;
        break;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        CloseConn(conn.fd);
        return false;
      }
      conn.in.append(chunk, static_cast<size_t>(n));
      conn.last_activity_ms = NowMs();
      if (!conn.mode_known && conn.in.size() >= 4) {
        conn.mode_known = true;
        conn.http = conn.in.compare(0, 4, "GET ") == 0;
      }
      if (conn.mode_known) {
        if (conn.http) {
          if (!HandleHttp(conn)) return false;
        } else {
          if (!ProcessBuffered(conn)) return false;
        }
      } else if (conn.deadline_ms == 0) {
        // 1-3 bytes of something: mid-frame either way — arm a deadline.
        conn.deadline_ms = NowMs() + server_->config_.io_deadline_ms;
      }
      if (conn.paused || conn.closing) break;
    }
    if (conn.peer_eof) {
      if (conn.http || !conn.mode_known) {
        // An HTTP head that never completed, or <4 bytes then EOF:
        // nothing servable remains. (A served scrape is `closing` and
        // flushing — leave it to TryFlush.)
        if (!conn.closing) {
          CloseConn(conn.fd);
          return false;
        }
        return true;
      }
      if (!conn.paused) return ProcessBuffered(conn);
    }
    return true;
  }

  void ScanDeadlines() {
    const int64_t now = NowMs();
    std::vector<int> evict_deadline;
    std::vector<int> evict_idle;
    for (auto& [fd, conn] : conns) {
      if (conn.deadline_ms != 0 && now >= conn.deadline_ms) {
        evict_deadline.push_back(fd);
      } else if (server_->config_.idle_timeout_ms > 0 &&
                 now - conn.last_activity_ms >=
                     server_->config_.idle_timeout_ms &&
                 PendingBytes(conn) == 0 && conn.in_off == conn.in.size()) {
        evict_idle.push_back(fd);
      }
    }
    for (int fd : evict_deadline) {
      server_->metrics_.evicted_deadline.Add();
      CloseConn(fd);
    }
    for (int fd : evict_idle) {
      server_->metrics_.evicted_idle.Add();
      CloseConn(fd);
    }
  }

  void BeginDrain() {
    drain_seen = true;
    if (listen_fd >= 0) {
      epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    // Finish what is already in flight: slurp whatever the kernel has
    // buffered, serve every complete frame, then flush-and-close. A
    // frame that was never fully received was never acked — dropping it
    // is within contract.
    std::vector<int> fds;
    fds.reserve(conns.size());
    for (auto& [fd, conn] : conns) fds.push_back(fd);
    for (int fd : fds) {
      auto it = conns.find(fd);
      if (it == conns.end()) continue;
      Conn& conn = it->second;
      conn.paused = false;
      if (!OnReadable(conn)) continue;  // May close.
      auto it2 = conns.find(fd);
      if (it2 == conns.end()) continue;
      Conn& c2 = it2->second;
      c2.closing = true;
      if (PendingBytes(c2) == 0) {
        CloseConn(fd);
      } else {
        // Flush under the io deadline; a peer that won't read its last
        // responses is evicted, not waited on forever.
        c2.deadline_ms = NowMs() + server_->config_.io_deadline_ms;
        UpdateEpoll(c2);
      }
    }
  }

  void Run() {
    epoll_event events[128];
    while (true) {
      if (server_->stop_now_.load(std::memory_order_acquire)) return;
      const bool draining = server_->draining_.load(std::memory_order_acquire);
      if (draining && !drain_seen) BeginDrain();
      if (drain_seen && conns.empty()) return;
      const int n = epoll_wait(epoll_fd, events,
                               static_cast<int>(std::size(events)), kTickMs);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const uint32_t ev = events[i].events;
        if (fd == wake_fd) {
          uint64_t junk;
          while (::read(wake_fd, &junk, sizeof(junk)) > 0) {
          }
          DrainAdoptQueue();
          continue;
        }
        if (fd == listen_fd) {
          Accept();
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
          CloseConn(fd);
          continue;
        }
        if ((ev & EPOLLOUT) != 0) {
          Conn& conn = it->second;
          const bool was_paused = conn.paused;
          if (!TryFlush(conn)) continue;
          // A connection un-paused by this flush has requests buffered
          // from before the pause; no further EPOLLIN will announce
          // them, so resume serving here.
          if (was_paused && !conn.paused && !conn.http) {
            if (!ProcessBuffered(conn)) continue;
          }
        }
        it = conns.find(fd);
        if (it == conns.end()) continue;
        if ((ev & EPOLLIN) != 0) {
          OnReadable(it->second);
        }
      }
      DrainAdoptQueue();
      ScanDeadlines();
    }
  }
};

Server::Server(ShardedFilter* filter, ServerConfig config)
    : filter_(filter), config_(std::move(config)) {
  if (config_.num_threads < 1) config_.num_threads = 1;
  workers_.reserve(config_.num_threads);
  for (int i = 0; i < config_.num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(this));
  }
}

Server::~Server() {
  if (running()) {
    stop_now_.store(true, std::memory_order_release);
    for (auto& w : workers_) w->Wake();
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::string Server::MetricsText() const {
  if (metrics_text_) return metrics_text_();
  obs::MetricsRegistry registry;
  registry.Register("net", [this] { return metrics_.Snapshot(); });
  return obs::RenderPrometheus(registry.Snapshot());
}

bool Server::Listen(uint16_t port) {
  uint16_t bound = port;
  for (auto& w : workers_) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    // One listening socket per loop: the kernel balances accepts across
    // them, and each accepted connection is owned end-to-end by the loop
    // that accepted it.
    setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(bound);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 512) != 0 || !SetNonBlocking(fd)) {
      ::close(fd);
      return false;
    }
    if (bound == 0) {
      sockaddr_in actual{};
      socklen_t len = sizeof(actual);
      if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
        ::close(fd);
        return false;
      }
      bound = ntohs(actual.sin_port);
    }
    w->listen_fd = fd;
  }
  port_ = bound;
  return true;
}

void Server::AdoptConnection(int fd) {
  const size_t i = adopt_rr_.fetch_add(1, std::memory_order_relaxed);
  workers_[i % workers_.size()]->Enqueue(fd);
}

bool Server::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return false;
  for (auto& w : workers_) {
    if (!w->Init()) {
      stop_now_.store(true, std::memory_order_release);
      return false;
    }
    if (w->listen_fd >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = w->listen_fd;
      epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->listen_fd, &ev);
    }
  }
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    threads_.emplace_back([worker = w.get()] { worker->Run(); });
  }
  return true;
}

void Server::InstallDrainOnSignal(int signo) {
  g_signal_drain_flag.store(&draining_, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = DrainSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(signo, &sa, nullptr);
}

bool Server::WriteDrainSnapshot() const {
  if (config_.drain_snapshot_path.empty() || filter_ == nullptr) return true;
  std::ofstream os(config_.drain_snapshot_path,
                   std::ios::binary | std::ios::trunc);
  return os.good() && SaveFilterSnapshot(*filter_, os) && os.good();
}

void Server::Shutdown() {
  RequestDrain();
  for (auto& w : workers_) w->Wake();
  if (!joined_) {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    joined_ = true;
    running_.store(false, std::memory_order_release);
    WriteDrainSnapshot();
  }
}

}  // namespace bbf::net
