#ifndef BBF_APPS_NET_SERVER_H_
#define BBF_APPS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/net/blocklist.h"
#include "apps/net/wire.h"
#include "core/sharded_filter.h"
#include "obs/metrics.h"

namespace bbf::net {

/// Tuning and robustness knobs for Server. Defaults are sized for tests
/// and demos; production deployments raise the budgets and timeouts.
struct ServerConfig {
  /// Event-loop threads. Each runs its own epoll instance and (when
  /// listening) its own SO_REUSEPORT listening socket, so accepted
  /// connections are kernel-balanced across loops and a connection lives
  /// its whole life on one thread — shared-nothing connection state, no
  /// cross-thread handoff on the data path.
  int num_threads = 2;

  /// Per-connection in-flight byte budget: unflushed response bytes a
  /// connection may hold. A request arriving over budget is answered
  /// with an explicit kBusy NACK (not processed, not acked) and the
  /// connection stops being read until its responses drain — TCP
  /// backpressure does the rest.
  size_t conn_inflight_budget = size_t{1} << 20;

  /// Global in-flight byte budget across all connections and threads.
  size_t global_inflight_budget = size_t{8} << 20;

  /// A connection with no traffic at all for this long is evicted.
  int idle_timeout_ms = 30'000;

  /// A connection mid-frame (slow-loris: header or payload started but
  /// never finished) or with pending output must make progress this
  /// often, or it is evicted.
  int io_deadline_ms = 5'000;

  /// Hard cap on simultaneously open connections (across all threads);
  /// accepts beyond it are closed immediately.
  size_t max_connections = 4096;

  /// When non-empty, a graceful drain finishes by writing the filter's
  /// snapshot (core/filter_io.h frame) to this path.
  std::string drain_snapshot_path;
};

/// Connection- and frame-lifecycle counters (DESIGN.md §14), exported
/// through the obs layer like every other subsystem: Snapshot() renders
/// a MetricsSnapshot for obs::MetricsRegistry, so one scrape page shows
/// filter internals and serving health side by side.
struct ServerMetrics {
  obs::PaddedCounter accepted;            // Connections admitted.
  obs::PaddedCounter closed;              // Connections closed (any cause).
  obs::PaddedCounter evicted_idle;        // Closed by idle timeout.
  obs::PaddedCounter evicted_deadline;    // Closed by io deadline.
  obs::PaddedCounter frames_served;       // Requests fully processed.
  obs::PaddedCounter nacked_busy;         // Requests NACKed by budgets.
  obs::PaddedCounter malformed_rejected;  // Frames failing validation.
  obs::PaddedCounter drained_inflight;    // Frames completed during drain.
  obs::PaddedCounter keys_looked_up;
  obs::PaddedCounter keys_inserted;       // Accepted or expanded.
  obs::PaddedCounter keys_insert_nacked;  // Per-key kRejectedFull NACKs.
  obs::PaddedCounter http_scrapes;        // Plain-HTTP metrics fetches.
  obs::PaddedCounter tuner_ctl;           // kTunerCtl frames handled.

  obs::MetricsSnapshot Snapshot() const;
};

/// Filter-as-a-service (DESIGN.md §14): a thread-per-core epoll front end
/// that carries the wire protocol's batched lookup/insert/erase frames
/// straight into ShardedFilter::ContainsMany / InsertManyWithStatus, and
/// optionally fronts a Blocklist (kBlockCheck / kReportFalseBlock) and a
/// Prometheus text endpoint — both over the binary protocol (kMetrics)
/// and as a plain "GET ..." HTTP scrape on the same port.
///
/// Robustness contract (enforced by tests/net_test.cc's fault sweep):
///  - a hostile or flaky peer can never crash the loop or corrupt filter
///    state: every frame is validated parse-into-locals-then-commit, and
///    hostile length fields are rejected before any buffering;
///  - an acked insert is never dropped: a key's response byte says
///    exactly what InsertWithStatus reported, and kReject saturation
///    surfaces as a per-key NACK, not a silent miss;
///  - slow-loris and stalled peers are evicted on deadlines; over-budget
///    peers get explicit kBusy NACKs;
///  - graceful drain (RequestDrain / SIGTERM via InstallDrainOnSignal)
///    stops accepting, finishes every fully received request, flushes
///    write buffers, then optionally snapshots the filter.
///
/// The filter itself is shared (it is internally locked per shard);
/// "shared-nothing" refers to connection state, which never leaves its
/// owning thread.
class Server {
 public:
  explicit Server(ShardedFilter* filter, ServerConfig config = {});
  ~Server();  // Hard-stops the loops if Shutdown was not called.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Mounts a yes/no-list backend for kBlockCheck/kReportFalseBlock.
  /// Call before Start; the blocklist must outlive the server. Blocklist
  /// implementations are not internally locked, so frames touching it
  /// are serialized across threads by an internal mutex.
  void set_blocklist(Blocklist* blocklist) { blocklist_ = blocklist; }

  /// Source of the kMetrics / HTTP scrape text. Defaults to rendering
  /// this server's own ServerMetrics; point it at an
  /// obs::MetricsRegistry render to serve the whole process's page.
  /// Call before Start. Must be thread-safe.
  void set_metrics_text_provider(std::function<std::string()> provider) {
    metrics_text_ = std::move(provider);
  }

  /// Mounts the auto-tuner's control surface for kTunerCtl frames —
  /// typically tuning::Tuner::WireControl(). Wired as a function so
  /// apps/net never links against bbf_tuning. Call before Start; the
  /// function must be thread-safe (WireControl's is). Without it,
  /// kTunerCtl answers kUnsupported.
  void set_tuner_control(std::function<std::string(uint8_t)> control) {
    tuner_control_ = std::move(control);
  }

  /// Binds one SO_REUSEPORT listening socket per thread on 127.0.0.1.
  /// `port` 0 picks an ephemeral port, readable via port() afterwards.
  bool Listen(uint16_t port = 0);
  uint16_t port() const { return port_; }

  /// Hands an already-connected socket (socketpair end, accepted fd) to
  /// one of the loops, round-robin. Usable before or after Start.
  void AdoptConnection(int fd);

  /// Spawns the event-loop threads. Returns false if already running.
  bool Start();

  /// Begins a graceful drain: stop accepting, finish every fully
  /// received request, flush, close. Safe from any thread and from
  /// signal handlers (it only stores a flag the loops poll).
  void RequestDrain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Installs a `signo` (default SIGTERM) handler that calls
  /// RequestDrain on this server. Async-signal-safe by construction.
  void InstallDrainOnSignal(int signo);

  /// RequestDrain + join all loops + optional drain snapshot. Idempotent.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  const ServerMetrics& metrics() const { return metrics_; }
  obs::MetricsSnapshot MetricsSnap() const { return metrics_.Snapshot(); }

 private:
  struct Worker;
  friend struct Worker;

  std::string MetricsText() const;
  bool WriteDrainSnapshot() const;

  ShardedFilter* filter_;
  Blocklist* blocklist_ = nullptr;
  ServerConfig config_;
  std::function<std::string()> metrics_text_;
  std::function<std::string(uint8_t)> tuner_control_;
  ServerMetrics metrics_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_now_{false};
  std::atomic<bool> running_{false};
  bool joined_ = false;
  std::atomic<size_t> global_pending_{0};  // Unflushed response bytes.
  std::atomic<size_t> open_connections_{0};
  std::atomic<size_t> adopt_rr_{0};
  std::mutex blocklist_mu_;
  uint16_t port_ = 0;
};

}  // namespace bbf::net

#endif  // BBF_APPS_NET_SERVER_H_
