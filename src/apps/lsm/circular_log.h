#ifndef BBF_APPS_LSM_CIRCULAR_LOG_H_
#define BBF_APPS_LSM_CIRCULAR_LOG_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "apps/lsm/io_model.h"
#include "quotient/expanding_quotient_maplet.h"

namespace bbf::lsm {

/// A circular-log key-value store (§3.1, the FAWN/FASTER/Pliops family):
/// every put/delete appends a record to an append-only log; an in-memory
/// maplet maps each live key to its log position. The paper: "it is
/// crucial for these maplets to support updates, deletes, and expansion
/// ... and to exhibit high performance and low false positive rates."
///
/// This engine makes those requirements measurable:
///   * the maplet stores each key's log *page*; a lookup reads every
///     candidate page the maplet returns, so maplet noise (eps) turns
///     directly into wasted page reads;
///   * updates/deletes erase the stale mapping in place (dynamic maplet);
///   * growth beyond capacity triggers either an in-place fingerprint
///     expansion (no data I/O, costs one fingerprint bit) or a full log
///     scan rebuild (costs a read of every live page) — the two
///     strategies of §2.2, selectable per instance;
///   * garbage collection compacts the log once enough of it is dead.
class CircularLog {
 public:
  enum class ExpandStrategy { kExpandMaplet, kRebuildFromLog };

  struct Options {
    ExpandStrategy expand = ExpandStrategy::kExpandMaplet;
    int initial_q_bits = 12;        // Maplet starts with 2^12 slots.
    int fingerprint_bits = 12;
    double gc_dead_fraction = 0.5;  // Compact when half the log is dead.
  };

  explicit CircularLog(Options options);

  void Put(uint64_t key, uint64_t value);
  void Delete(uint64_t key);
  std::optional<uint64_t> Get(uint64_t key);

  const IoStats& io() const { return io_; }
  void ResetIo() { io_.Reset(); }

  uint64_t live_entries() const { return live_; }
  uint64_t log_records() const { return log_.size(); }
  int maplet_expansions() const;
  uint64_t rebuilds() const { return rebuilds_; }
  uint64_t gc_runs() const { return gc_runs_; }
  size_t MapletBits() const { return maplet_->SpaceBits(); }

 private:
  struct Record {
    uint64_t key;
    uint64_t value;
    bool dead = false;  // Superseded or deleted.
  };

  static constexpr uint64_t kRecordsPerPage = 64;

  uint64_t PageOf(uint64_t offset) const { return offset / kRecordsPerPage; }
  /// Finds the live record offset for key (reads candidate pages).
  std::optional<uint64_t> FindOffset(uint64_t key);
  void Append(uint64_t key, uint64_t value, bool tombstone_of_delete);
  void MaybeGc();
  void RebuildMaplet(int q_bits);

  Options options_;
  std::vector<Record> log_;
  std::unique_ptr<ExpandingQuotientMaplet> maplet_;  // key -> page.
  IoStats io_;
  uint64_t live_ = 0;
  uint64_t dead_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t gc_runs_ = 0;
  int rebuild_q_bits_;
};

}  // namespace bbf::lsm

#endif  // BBF_APPS_LSM_CIRCULAR_LOG_H_
