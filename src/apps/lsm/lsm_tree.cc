#include "apps/lsm/lsm_tree.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/filter_io.h"
#include "expandable/ring_filter.h"
#include "expandable/taffy_filter.h"
#include "util/bits.h"

namespace bbf::lsm {

LsmTree::LsmTree(LsmOptions options, StorageEnv* env)
    : options_(std::move(options)), env_(env != nullptr ? env : RealEnv()) {
  if (!options_.dir.empty()) {
    env_->CreateDir(options_.dir);
    store_ = std::make_unique<ManifestStore>(options_.dir, env_);
  }
  memtable_filter_ = MakeMemtableFilter();
}

std::unique_ptr<LsmTree> LsmTree::Open(LsmOptions options, StorageEnv* env) {
  auto tree =
      std::unique_ptr<LsmTree>(new LsmTree(std::move(options), env));
  if (tree->store_ != nullptr && !tree->RecoverOrInit()) return nullptr;
  return tree;
}

bool LsmTree::RecoverOrInit() {
  bool current_ok = false;
  const std::vector<std::string> candidates =
      store_->CandidateManifests(&current_ok);
  if (!current_ok && !candidates.empty()) ++recovery_.manifest_fallbacks;
  bool loaded = candidates.empty();  // Fresh directory: nothing to load.
  for (const std::string& name : candidates) {
    ManifestData m;
    if (!store_->ReadManifest(name, &m) || !LoadGeneration(m)) {
      ++recovery_.manifest_fallbacks;
      continue;
    }
    generation_ = m.generation;
    next_run_id_ = m.next_run_id;
    committed_ = std::move(m);
    loaded = true;
    break;
  }
  // Manifests exist but none yields a loadable generation: fail cleanly
  // rather than serve an empty tree as if it were the data.
  if (!loaded) return false;
  recovery_.generations_committed = generation_;
  ReplayWal();
  // No GC here on purpose: stale manifests widen the fallback pool until
  // the next commit's GC trims it, and orphaned run files from a crashed
  // generation are overwritten atomically when their ids are reused.
  return true;
}

bool LsmTree::LoadGeneration(const ManifestData& m) {
  std::vector<Level> levels(m.levels.size());
  uint64_t quarantined = 0;
  for (size_t li = 0; li < m.levels.size(); ++li) {
    for (const RunManifest& rm : m.levels[li].runs) {
      // Run data is a hard requirement — a run we cannot read means this
      // generation is unusable (the caller falls back to an older one).
      std::string bytes;
      if (!env_->ReadFileBytes(store_->PathOf(RunDataFileName(rm.id)),
                               &bytes)) {
        return false;
      }
      std::istringstream ds(bytes);
      std::vector<Entry> entries;
      if (!SortedRun::LoadData(ds, &entries) || entries.size() != rm.entries) {
        return false;
      }
      // Filters are soft: a corrupt frame quarantines the run (served
      // filterless, rebuilt from its key stream at the next flush)
      // instead of failing recovery.
      std::unique_ptr<Filter> pf;
      bool point_quarantined = false;
      if (rm.has_point_filter) {
        std::string pf_bytes;
        if (env_->ReadFileBytes(store_->PathOf(PointFilterFileName(rm.id)),
                                &pf_bytes)) {
          std::istringstream ps(pf_bytes);
          pf = LoadFilterSnapshot(ps);
        }
        if (pf == nullptr) {
          point_quarantined = true;
          ++quarantined;
        }
      }
      std::unique_ptr<RangeFilter> rf;
      bool range_quarantined = false;
      if (rm.has_range_filter) {
        std::string rf_bytes;
        if (env_->ReadFileBytes(store_->PathOf(RangeFilterFileName(rm.id)),
                                &rf_bytes)) {
          std::istringstream rs(rf_bytes);
          rf = LoadRangeFilterSnapshot(rs);
        }
        if (rf == nullptr) {
          range_quarantined = true;
          ++quarantined;
        }
      }
      levels[li].runs.push_back(std::make_shared<SortedRun>(
          rm.id, std::move(entries), std::move(pf), point_quarantined,
          std::move(rf), range_quarantined));
    }
  }
  levels_ = std::move(levels);
  recovery_.filters_quarantined += quarantined;
  return true;
}

void LsmTree::ReplayWal() {
  std::string bytes;
  if (!env_->ReadFileBytes(store_->PathOf(kWalFileName), &bytes)) return;
  std::vector<Entry> records;
  recovery_.wal_records_replayed = DecodeWalRecords(bytes, &records);
  for (const Entry& e : records) {
    ApplyWrite(e);
    ++ingested_;
  }
  // Rewrite the log to exactly the replayed prefix: a torn tail frame
  // would otherwise wedge the log (appends after it could never be
  // decoded past the bad frame).
  std::string valid;
  for (const Entry& e : records) valid += EncodeWalRecord(e);
  store_->WriteFileAtomic(kWalFileName, valid);
  if (memtable_.size() >= options_.memtable_entries) FlushMemtable();
}

void LsmTree::ApplyWrite(const Entry& e) {
  const bool fresh = memtable_.find(e.key) == memtable_.end();
  memtable_[e.key] = e;
  if (fresh && memtable_filter_ != nullptr &&
      !memtable_filter_->Insert(e.key)) {
    // An expandable filter refusing an insert is out of policy; drop it
    // and let the flush build the L0 filter from scratch instead.
    memtable_filter_ = nullptr;
  }
}

bool LsmTree::Put(uint64_t key, uint64_t value) {
  const Entry e{key, value, false};
  bool acked = true;
  if (store_ != nullptr) {
    acked = env_->AppendFile(store_->PathOf(kWalFileName), EncodeWalRecord(e));
    if (!acked) ++wal_append_failures_total_;
  }
  ApplyWrite(e);
  ++ingested_;
  if (memtable_.size() >= options_.memtable_entries) FlushMemtable();
  return acked;
}

bool LsmTree::Delete(uint64_t key) {
  const Entry e{key, 0, true};
  bool acked = true;
  if (store_ != nullptr) {
    acked = env_->AppendFile(store_->PathOf(kWalFileName), EncodeWalRecord(e));
    if (!acked) ++wal_append_failures_total_;
  }
  ApplyWrite(e);
  ++ingested_;
  if (memtable_.size() >= options_.memtable_entries) FlushMemtable();
  return acked;
}

std::optional<uint64_t> LsmTree::Get(uint64_t key) {
  const uint64_t quarantined_before = io_.quarantined_reads;
  const auto result = [&]() -> std::optional<uint64_t> {
    const auto mit = memtable_.find(key);
    if (mit != memtable_.end()) {
      if (mit->second.tombstone) return std::nullopt;
      return mit->second.value;
    }
    for (const Level& level : levels_) {
      for (const auto& run : level.runs) {  // Newest first within a level.
        const std::optional<Entry> e = run->Get(key, &io_);
        if (e.has_value()) {
          if (e->tombstone) return std::nullopt;
          return e->value;
        }
      }
    }
    return std::nullopt;
  }();
  quarantined_reads_total_ += io_.quarantined_reads - quarantined_before;
  return result;
}

std::vector<std::pair<uint64_t, uint64_t>> LsmTree::Scan(uint64_t lo,
                                                         uint64_t hi) {
  const uint64_t quarantined_before = io_.quarantined_reads;
  // Collect matches per source, newest source first, then merge.
  std::map<uint64_t, Entry> merged;  // Key -> newest version seen.
  const auto absorb = [&merged](const Entry& e) {
    merged.emplace(e.key, e);  // emplace keeps the first (newest) version.
  };
  for (auto it = memtable_.lower_bound(lo);
       it != memtable_.end() && it->first <= hi; ++it) {
    absorb(it->second);
  }
  std::vector<Entry> batch;
  for (const Level& level : levels_) {
    for (const auto& run : level.runs) {
      batch.clear();
      run->Scan(lo, hi, &batch, &io_);
      for (const Entry& e : batch) absorb(e);
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(merged.size());
  for (const auto& [k, e] : merged) {
    if (!e.tombstone) out.emplace_back(k, e.value);
  }
  quarantined_reads_total_ += io_.quarantined_reads - quarantined_before;
  return out;
}

uint64_t LsmTree::LevelCapacity(size_t level_idx) const {
  // Level i holds up to memtable * T^(i+1) entries.
  double cap = static_cast<double>(options_.memtable_entries);
  for (size_t i = 0; i <= level_idx; ++i) cap *= options_.size_ratio;
  return static_cast<uint64_t>(cap);
}

double LsmTree::PointBitsForLevel(size_t level_idx) const {
  if (options_.allocation == FilterAllocation::kUniform ||
      options_.point_filter == PointFilterKind::kNone) {
    return options_.point_bits_per_key;
  }
  // Monkey: FPR_i = eps0 / T^(L-1-i) — the bottom level carries the base
  // rate, each smaller level a T-times lower one, so the SUM of FPRs (the
  // expected wasted I/Os per negative lookup) converges to eps0*T/(T-1)
  // instead of growing linearly in L.
  //
  // Memory matching: level i spends 1.44*lg(T) extra bits per key per
  // level of distance from the bottom, but holds a T^-distance fraction
  // of the keys, so the total overhead versus uniform allocation is
  // 1.44*lg(T)*sum(j T^-j) = 1.44*lg(T)*T/(T-1)^2 bits/key. We give the
  // bottom level that much less so total memory matches the uniform
  // budget.
  const size_t num_levels = std::max<size_t>(levels_.size(), 1);
  const double t = static_cast<double>(options_.size_ratio);
  const double overhead = 1.44 * std::log2(t) * t / ((t - 1) * (t - 1));
  const double base_bits =
      std::max(1.0, options_.point_bits_per_key - overhead);
  const double base_fpr = std::exp2(-base_bits / 1.44);
  const double distance =
      static_cast<double>(num_levels - 1 -
                          std::min(level_idx, num_levels - 1));
  const double fpr = base_fpr / std::pow(t, distance);
  return -std::log2(std::max(fpr, 1e-12)) * 1.44;
}

std::shared_ptr<SortedRun> LsmTree::BuildRun(std::vector<Entry> entries,
                                             size_t level_idx) {
  return std::make_shared<SortedRun>(
      next_run_id_++, std::move(entries), options_.point_filter,
      PointBitsForLevel(level_idx), options_.range_filter,
      options_.range_bits_per_key, ++run_seed_);
}

std::unique_ptr<Filter> LsmTree::MakeMemtableFilter() const {
  if (options_.point_filter == PointFilterKind::kNone) return nullptr;
  switch (options_.memtable_filter) {
    case MemtableFilterKind::kNone:
      return nullptr;
    case MemtableFilterKind::kTaffy: {
      // Size for the flush threshold at the max load factor; expansion
      // covers overshoot (replays of an over-threshold WAL).
      const uint64_t target = std::max<uint64_t>(options_.memtable_entries, 64);
      const int q_bits =
          std::max(6, BitWidth(NextPow2(static_cast<uint64_t>(std::ceil(
                           target / TaffyFilter::kMaxLoadFactor))) -
                       1));
      const int fp_bits = std::max(
          4, static_cast<int>(std::lround(options_.point_bits_per_key)) - 4);
      return std::make_unique<TaffyFilter>(q_bits, fp_bits,
                                           0x15A + run_seed_);
    }
    case MemtableFilterKind::kRing: {
      const int r_bits = std::max(
          4, static_cast<int>(std::lround(options_.point_bits_per_key)));
      return std::make_unique<RingFilter>(
          r_bits, std::max<uint64_t>(options_.memtable_entries, 256),
          0x15A + run_seed_);
    }
  }
  return nullptr;
}

void LsmTree::FlushMemtable() {
  if (memtable_.empty()) return;
  std::vector<Entry> entries;
  entries.reserve(memtable_.size());
  for (const auto& [k, e] : memtable_) entries.push_back(e);
  memtable_.clear();
  if (levels_.empty()) levels_.emplace_back();
  std::shared_ptr<SortedRun> run;
  if (memtable_filter_ != nullptr) {
    // Adoption (§13): the expandable memtable filter already covers
    // exactly these keys, so the L0 run takes it whole — no
    // rebuild-on-flush (the Taffy/Aleph argument).
    run = std::make_shared<SortedRun>(
        next_run_id_++, std::move(entries), std::move(memtable_filter_),
        options_.range_filter, options_.range_bits_per_key);
  } else {
    run = BuildRun(std::move(entries), 0);
  }
  memtable_filter_ = MakeMemtableFilter();
  levels_[0].runs.insert(levels_[0].runs.begin(), std::move(run));
  MaybeCompact(0);
  RebuildMissingFilters();
  PersistGeneration();
}

void LsmTree::MaybeCompact(size_t level_idx) {
  if (level_idx >= levels_.size()) return;
  uint64_t level_entries = 0;
  for (const auto& run : levels_[level_idx].runs) {
    level_entries += run->size();
  }
  const size_t max_runs = options_.tiering
                              ? static_cast<size_t>(options_.size_ratio)
                              : 1;
  const bool overflow = options_.tiering
                            ? levels_[level_idx].runs.size() > max_runs
                            : level_entries > LevelCapacity(level_idx);
  if (!overflow || levels_[level_idx].runs.empty()) return;

  // Merge every run of this level with the next level's runs. NOTE:
  // emplace_back can reallocate levels_, so only index-based access here.
  if (level_idx + 1 >= levels_.size()) levels_.emplace_back();
  std::vector<std::shared_ptr<SortedRun>> sources = levels_[level_idx].runs;
  if (!options_.tiering) {
    // Leveling: the next level's single run participates in the merge.
    for (const auto& run : levels_[level_idx + 1].runs) {
      sources.push_back(run);
    }
    levels_[level_idx + 1].runs.clear();
  }
  levels_[level_idx].runs.clear();

  // K-way merge, newest source wins per key. Sources are ordered newest
  // to oldest already (level order preserved).
  std::map<uint64_t, Entry> merged;
  for (const auto& run : sources) {
    for (const Entry& e : run->entries()) merged.emplace(e.key, e);
  }
  // Tombstones may only be dropped when nothing older can resurrect the
  // key: the destination is the last level and (under tiering) holds no
  // older runs that escaped this merge.
  const bool bottom_level =
      level_idx + 2 >= levels_.size() &&
      (!options_.tiering || levels_[level_idx + 1].runs.empty());
  std::vector<Entry> entries;
  entries.reserve(merged.size());
  for (const auto& [k, e] : merged) {
    // Tombstones drop out once they reach the bottom of the tree.
    if (e.tombstone && bottom_level) continue;
    entries.push_back(e);
  }
  compaction_writes_ += entries.size();
  if (!entries.empty()) {
    levels_[level_idx + 1].runs.insert(
        levels_[level_idx + 1].runs.begin(),
        BuildRun(std::move(entries), level_idx + 1));
  }
  MaybeCompact(level_idx + 1);
}

void LsmTree::RebuildMissingFilters() {
  for (size_t li = 0; li < levels_.size(); ++li) {
    for (auto& run : levels_[li].runs) {
      if (run->size() == 0) continue;
      if (options_.point_filter != PointFilterKind::kNone &&
          run->point_filter() == nullptr) {
        run->ReplacePointFilter(BuildPointFilter(run->Keys(),
                                                 options_.point_filter,
                                                 PointBitsForLevel(li),
                                                 ++run_seed_));
        ++filters_rebuilt_total_;
        ++recovery_.filters_rebuilt;
      }
      if (options_.range_filter != RangeFilterKind::kNone &&
          run->range_filter() == nullptr) {
        run->ReplaceRangeFilter(BuildRangeFilter(run->Keys(),
                                                 options_.range_filter,
                                                 options_.range_bits_per_key));
        ++filters_rebuilt_total_;
        ++recovery_.filters_rebuilt;
      }
    }
  }
}

void LsmTree::PersistGeneration() {
  if (store_ == nullptr) return;
  // Stage every unpersisted artifact — each file written to a temp
  // sibling and renamed into place, so readers (and recovery) never see
  // half a file. Any failure aborts the generation: CURRENT still names
  // the old one, and the in-memory tree keeps serving.
  for (auto& level : levels_) {
    for (auto& run : level.runs) {
      if (!run->data_persisted()) {
        std::ostringstream os;
        if (!run->SaveData(os) ||
            !store_->WriteFileAtomic(RunDataFileName(run->id()),
                                     std::move(os).str())) {
          ++persist_failures_total_;
          return;
        }
        run->set_data_persisted();
      }
      if (run->point_filter() != nullptr && !run->point_filter_persisted()) {
        std::ostringstream os;
        if (!SaveFilterSnapshot(*run->point_filter(), os) ||
            !store_->WriteFileAtomic(PointFilterFileName(run->id()),
                                     std::move(os).str())) {
          ++persist_failures_total_;
          return;
        }
        run->set_point_filter_persisted(true);
      }
      if (run->range_filter() != nullptr && !run->range_filter_persisted()) {
        std::ostringstream os;
        // Not every range family snapshots (DESIGN.md §13); the ones
        // that don't are rebuilt from the key stream after recovery.
        if (run->range_filter()->Save(os)) {
          if (!store_->WriteFileAtomic(RangeFilterFileName(run->id()),
                                       std::move(os).str())) {
            ++persist_failures_total_;
            return;
          }
          run->set_range_filter_persisted(true);
        }
      }
    }
  }
  ManifestData m;
  m.generation = generation_ + 1;
  m.next_run_id = next_run_id_;
  m.levels.resize(levels_.size());
  for (size_t li = 0; li < levels_.size(); ++li) {
    for (const auto& run : levels_[li].runs) {
      RunManifest rm;
      rm.id = run->id();
      rm.entries = run->size();
      rm.has_point_filter = run->point_filter_persisted();
      rm.has_range_filter = run->range_filter_persisted();
      m.levels[li].runs.push_back(rm);
    }
  }
  if (!store_->Commit(m)) {
    ++persist_failures_total_;
    return;
  }
  ++generation_;
  ++generations_committed_total_;
  previous_ = std::move(committed_);
  committed_ = std::move(m);
  // Every acked key the WAL held is now owned by the committed
  // generation; a crash here at worst replays it idempotently.
  store_->WriteFileAtomic(kWalFileName, "");
  // Advisory GC: keep the committed and previous generations (the
  // fallback pool), drop temp litter and orphaned runs.
  std::vector<const ManifestData*> keep;
  if (committed_.has_value()) keep.push_back(&*committed_);
  if (previous_.has_value()) keep.push_back(&*previous_);
  store_->GarbageCollect(keep);
}

uint64_t LsmTree::TotalEntries() const {
  uint64_t total = memtable_.size();
  for (const Level& level : levels_) {
    for (const auto& run : level.runs) total += run->size();
  }
  return total;
}

size_t LsmTree::TotalFilterBits() const {
  size_t bits = 0;
  for (const Level& level : levels_) {
    for (const auto& run : level.runs) bits += run->FilterBits();
  }
  return bits;
}

uint64_t LsmTree::QuarantinedRuns() const {
  uint64_t n = 0;
  for (const Level& level : levels_) {
    for (const auto& run : level.runs) {
      if (run->point_quarantined() || run->range_quarantined()) ++n;
    }
  }
  return n;
}

obs::MetricsSnapshot LsmTree::ObsSnapshot() const {
  obs::MetricsSnapshot s;
  s.counters.push_back(
      {"lsm_generations_committed_total", generations_committed_total_});
  s.counters.push_back({"lsm_persist_failures_total", persist_failures_total_});
  s.counters.push_back(
      {"lsm_wal_append_failures_total", wal_append_failures_total_});
  s.counters.push_back(
      {"lsm_wal_records_replayed_total", recovery_.wal_records_replayed});
  s.counters.push_back(
      {"lsm_filters_quarantined_total", recovery_.filters_quarantined});
  s.counters.push_back({"lsm_filters_rebuilt_total", filters_rebuilt_total_});
  s.counters.push_back(
      {"lsm_manifest_fallbacks_total", recovery_.manifest_fallbacks});
  s.counters.push_back(
      {"lsm_quarantined_reads_total", quarantined_reads_total_});
  uint64_t runs = 0;
  for (const Level& level : levels_) runs += level.runs.size();
  s.gauges.push_back({"lsm_levels", static_cast<double>(levels_.size())});
  s.gauges.push_back({"lsm_runs", static_cast<double>(runs)});
  s.gauges.push_back(
      {"lsm_quarantined_runs", static_cast<double>(QuarantinedRuns())});
  s.gauges.push_back({"lsm_entries", static_cast<double>(TotalEntries())});
  s.gauges.push_back(
      {"lsm_filter_bits", static_cast<double>(TotalFilterBits())});
  s.gauges.push_back({"lsm_generation", static_cast<double>(generation_)});
  s.gauges.push_back({"lsm_write_amplification", WriteAmplification()});
  return s;
}

}  // namespace bbf::lsm
