#include "apps/lsm/lsm_tree.h"

#include <algorithm>
#include <cmath>

namespace bbf::lsm {

LsmTree::LsmTree(LsmOptions options) : options_(options) {}

void LsmTree::Put(uint64_t key, uint64_t value) {
  memtable_[key] = Entry{key, value, false};
  ++ingested_;
  if (memtable_.size() >= options_.memtable_entries) FlushMemtable();
}

void LsmTree::Delete(uint64_t key) {
  memtable_[key] = Entry{key, 0, true};
  ++ingested_;
  if (memtable_.size() >= options_.memtable_entries) FlushMemtable();
}

std::optional<uint64_t> LsmTree::Get(uint64_t key) {
  const auto mit = memtable_.find(key);
  if (mit != memtable_.end()) {
    if (mit->second.tombstone) return std::nullopt;
    return mit->second.value;
  }
  for (const Level& level : levels_) {
    for (const auto& run : level.runs) {  // Newest first within a level.
      const std::optional<Entry> e = run->Get(key, &io_);
      if (e.has_value()) {
        if (e->tombstone) return std::nullopt;
        return e->value;
      }
    }
  }
  return std::nullopt;
}

std::vector<std::pair<uint64_t, uint64_t>> LsmTree::Scan(uint64_t lo,
                                                         uint64_t hi) {
  // Collect matches per source, newest source first, then merge.
  std::map<uint64_t, Entry> merged;  // Key -> newest version seen.
  const auto absorb = [&merged](const Entry& e) {
    merged.emplace(e.key, e);  // emplace keeps the first (newest) version.
  };
  for (auto it = memtable_.lower_bound(lo);
       it != memtable_.end() && it->first <= hi; ++it) {
    absorb(it->second);
  }
  std::vector<Entry> batch;
  for (const Level& level : levels_) {
    for (const auto& run : level.runs) {
      batch.clear();
      run->Scan(lo, hi, &batch, &io_);
      for (const Entry& e : batch) absorb(e);
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(merged.size());
  for (const auto& [k, e] : merged) {
    if (!e.tombstone) out.emplace_back(k, e.value);
  }
  return out;
}

uint64_t LsmTree::LevelCapacity(size_t level_idx) const {
  // Level i holds up to memtable * T^(i+1) entries.
  double cap = static_cast<double>(options_.memtable_entries);
  for (size_t i = 0; i <= level_idx; ++i) cap *= options_.size_ratio;
  return static_cast<uint64_t>(cap);
}

double LsmTree::PointBitsForLevel(size_t level_idx) const {
  if (options_.allocation == FilterAllocation::kUniform ||
      options_.point_filter == PointFilterKind::kNone) {
    return options_.point_bits_per_key;
  }
  // Monkey: FPR_i = eps0 / T^(L-1-i) — the bottom level carries the base
  // rate, each smaller level a T-times lower one, so the SUM of FPRs (the
  // expected wasted I/Os per negative lookup) converges to eps0*T/(T-1)
  // instead of growing linearly in L.
  //
  // Memory matching: level i spends 1.44*lg(T) extra bits per key per
  // level of distance from the bottom, but holds a T^-distance fraction
  // of the keys, so the total overhead versus uniform allocation is
  // 1.44*lg(T)*sum(j T^-j) = 1.44*lg(T)*T/(T-1)^2 bits/key. We give the
  // bottom level that much less so total memory matches the uniform
  // budget.
  const size_t num_levels = std::max<size_t>(levels_.size(), 1);
  const double t = static_cast<double>(options_.size_ratio);
  const double overhead = 1.44 * std::log2(t) * t / ((t - 1) * (t - 1));
  const double base_bits =
      std::max(1.0, options_.point_bits_per_key - overhead);
  const double base_fpr = std::exp2(-base_bits / 1.44);
  const double distance =
      static_cast<double>(num_levels - 1 -
                          std::min(level_idx, num_levels - 1));
  const double fpr = base_fpr / std::pow(t, distance);
  return -std::log2(std::max(fpr, 1e-12)) * 1.44;
}

std::shared_ptr<SortedRun> LsmTree::BuildRun(std::vector<Entry> entries,
                                             size_t level_idx) {
  return std::make_shared<SortedRun>(
      std::move(entries), options_.point_filter, PointBitsForLevel(level_idx),
      options_.range_filter, options_.range_bits_per_key, ++run_seed_);
}

void LsmTree::FlushMemtable() {
  if (memtable_.empty()) return;
  std::vector<Entry> entries;
  entries.reserve(memtable_.size());
  for (const auto& [k, e] : memtable_) entries.push_back(e);
  memtable_.clear();
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].runs.insert(levels_[0].runs.begin(),
                         BuildRun(std::move(entries), 0));
  MaybeCompact(0);
}

void LsmTree::MaybeCompact(size_t level_idx) {
  if (level_idx >= levels_.size()) return;
  uint64_t level_entries = 0;
  for (const auto& run : levels_[level_idx].runs) {
    level_entries += run->size();
  }
  const size_t max_runs = options_.tiering
                              ? static_cast<size_t>(options_.size_ratio)
                              : 1;
  const bool overflow = options_.tiering
                            ? levels_[level_idx].runs.size() > max_runs
                            : level_entries > LevelCapacity(level_idx);
  if (!overflow || levels_[level_idx].runs.empty()) return;

  // Merge every run of this level with the next level's runs. NOTE:
  // emplace_back can reallocate levels_, so only index-based access here.
  if (level_idx + 1 >= levels_.size()) levels_.emplace_back();
  std::vector<std::shared_ptr<SortedRun>> sources = levels_[level_idx].runs;
  if (!options_.tiering) {
    // Leveling: the next level's single run participates in the merge.
    for (const auto& run : levels_[level_idx + 1].runs) {
      sources.push_back(run);
    }
    levels_[level_idx + 1].runs.clear();
  }
  levels_[level_idx].runs.clear();

  // K-way merge, newest source wins per key. Sources are ordered newest
  // to oldest already (level order preserved).
  std::map<uint64_t, Entry> merged;
  for (const auto& run : sources) {
    for (const Entry& e : run->entries()) merged.emplace(e.key, e);
  }
  // Tombstones may only be dropped when nothing older can resurrect the
  // key: the destination is the last level and (under tiering) holds no
  // older runs that escaped this merge.
  const bool bottom_level =
      level_idx + 2 >= levels_.size() &&
      (!options_.tiering || levels_[level_idx + 1].runs.empty());
  std::vector<Entry> entries;
  entries.reserve(merged.size());
  for (const auto& [k, e] : merged) {
    // Tombstones drop out once they reach the bottom of the tree.
    if (e.tombstone && bottom_level) continue;
    entries.push_back(e);
  }
  compaction_writes_ += entries.size();
  if (!entries.empty()) {
    levels_[level_idx + 1].runs.insert(
        levels_[level_idx + 1].runs.begin(),
        BuildRun(std::move(entries), level_idx + 1));
  }
  MaybeCompact(level_idx + 1);
}

uint64_t LsmTree::TotalEntries() const {
  uint64_t total = memtable_.size();
  for (const Level& level : levels_) {
    for (const auto& run : level.runs) total += run->size();
  }
  return total;
}

size_t LsmTree::TotalFilterBits() const {
  size_t bits = 0;
  for (const Level& level : levels_) {
    for (const auto& run : level.runs) bits += run->FilterBits();
  }
  return bits;
}

}  // namespace bbf::lsm
