#include "apps/lsm/manifest.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <system_error>

#include "util/serialize.h"

namespace bbf::lsm {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kManifestTag = "lsm-manifest";
constexpr std::string_view kCurrentTag = "lsm-current";
constexpr std::string_view kWalTag = "lsm-wal";
constexpr uint64_t kManifestVersion = 1;
// A tree deeper than this holds size_ratio^64 entries — corruption.
constexpr uint64_t kMaxManifestLevels = 64;
constexpr uint64_t kMaxManifestRunsPerLevel = 1u << 16;

class RealStorageEnv : public StorageEnv {};

}  // namespace

// --- StorageEnv (real filesystem) --------------------------------------------

bool StorageEnv::CreateDir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  return fs::is_directory(path, ec);
}

bool StorageEnv::WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  return os.good();
}

bool StorageEnv::AppendFile(const std::string& path, std::string_view bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::app);
  if (!os) return false;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  return os.good();
}

bool StorageEnv::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  return !ec;
}

bool StorageEnv::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  return !fs::exists(path, ec);
}

bool StorageEnv::ReadFileBytes(const std::string& path,
                               std::string* out) const {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) return false;
  *out = std::move(buf).str();
  return true;
}

bool StorageEnv::Exists(const std::string& path) const {
  std::error_code ec;
  return fs::exists(path, ec);
}

std::vector<std::string> StorageEnv::ListDir(const std::string& dir) const {
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  return names;
}

StorageEnv* RealEnv() {
  static RealStorageEnv env;
  return &env;
}

// --- File naming -------------------------------------------------------------

std::string ManifestFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%08llu",
                static_cast<unsigned long long>(generation));
  return buf;
}

bool ParseManifestFileName(std::string_view name, uint64_t* generation) {
  constexpr std::string_view kPrefix = "MANIFEST-";
  if (name.size() <= kPrefix.size() ||
      name.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  uint64_t gen = 0;
  for (char c : name.substr(kPrefix.size())) {
    if (c < '0' || c > '9') return false;
    gen = gen * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = gen;
  return true;
}

std::string RunDataFileName(uint64_t run_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "run-%08llu.data",
                static_cast<unsigned long long>(run_id));
  return buf;
}

std::string PointFilterFileName(uint64_t run_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "run-%08llu.pf",
                static_cast<unsigned long long>(run_id));
  return buf;
}

std::string RangeFilterFileName(uint64_t run_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "run-%08llu.rf",
                static_cast<unsigned long long>(run_id));
  return buf;
}

// --- Manifest encode/decode --------------------------------------------------

std::string EncodeManifest(const ManifestData& m) {
  std::ostringstream os;
  WriteU64(os, kManifestVersion);
  WriteU64(os, m.generation);
  WriteU64(os, m.next_run_id);
  WriteU64(os, m.levels.size());
  for (const LevelManifest& level : m.levels) {
    WriteU64(os, level.runs.size());
    for (const RunManifest& run : level.runs) {
      WriteU64(os, run.id);
      WriteU64(os, run.entries);
      const uint64_t flags = (run.has_point_filter ? 1u : 0u) |
                             (run.has_range_filter ? 2u : 0u);
      WriteU64(os, flags);
    }
  }
  return std::move(os).str();
}

bool DecodeManifest(std::string_view payload, ManifestData* out) {
  std::istringstream is{std::string(payload)};
  uint64_t version;
  ManifestData m;
  uint64_t num_levels;
  if (!ReadU64(is, &version) || version != kManifestVersion ||
      !ReadU64(is, &m.generation) || !ReadU64(is, &m.next_run_id) ||
      !ReadU64Capped(is, &num_levels, kMaxManifestLevels)) {
    return false;
  }
  m.levels.resize(num_levels);
  for (LevelManifest& level : m.levels) {
    uint64_t num_runs;
    if (!ReadU64Capped(is, &num_runs, kMaxManifestRunsPerLevel)) return false;
    level.runs.resize(num_runs);
    for (RunManifest& run : level.runs) {
      uint64_t flags;
      if (!ReadU64(is, &run.id) ||
          !ReadU64Capped(is, &run.entries, kMaxSnapshotElements) ||
          !ReadU64Capped(is, &flags, 3)) {
        return false;
      }
      // Run ids below next_run_id only; an id at/above the allocator
      // high-water mark cannot have been written by any committed
      // generation.
      if (run.id == 0 || run.id >= m.next_run_id) return false;
      run.has_point_filter = (flags & 1) != 0;
      run.has_range_filter = (flags & 2) != 0;
    }
  }
  // The whole payload must be consumed: trailing bytes mean a foreign or
  // damaged frame that happened to parse.
  is.peek();
  if (!is.eof()) return false;
  *out = std::move(m);
  return true;
}

// --- WAL ---------------------------------------------------------------------

std::string EncodeWalRecord(const Entry& e) {
  std::ostringstream payload;
  WriteU64(payload, e.key);
  WriteU64(payload, e.value);
  WriteU64(payload, e.tombstone ? 1 : 0);
  std::ostringstream frame;
  WriteSnapshotFrame(frame, kWalTag, std::move(payload).str());
  return std::move(frame).str();
}

uint64_t DecodeWalRecords(const std::string& bytes, std::vector<Entry>* out) {
  std::istringstream is(bytes);
  uint64_t recovered = 0;
  std::string tag;
  std::string payload;
  while (is.peek() != std::char_traits<char>::eof()) {
    if (!ReadSnapshotFrame(is, &tag, &payload) || tag != kWalTag) break;
    std::istringstream ps(payload);
    Entry e;
    uint64_t tombstone;
    if (!ReadU64(ps, &e.key) || !ReadU64(ps, &e.value) ||
        !ReadU64Capped(ps, &tombstone, 1)) {
      break;
    }
    e.tombstone = tombstone != 0;
    out->push_back(e);
    ++recovered;
  }
  return recovered;
}

// --- ManifestStore -----------------------------------------------------------

ManifestStore::ManifestStore(std::string dir, StorageEnv* env)
    : dir_(std::move(dir)), env_(env) {}

std::string ManifestStore::PathOf(std::string_view file_name) const {
  std::string path = dir_;
  path += '/';
  path += file_name;
  return path;
}

bool ManifestStore::WriteFileAtomic(std::string_view file_name,
                                    std::string_view bytes) {
  const std::string tmp = PathOf(std::string(file_name) + ".tmp");
  if (!env_->WriteFile(tmp, bytes)) return false;
  return env_->Rename(tmp, PathOf(file_name));
}

bool ManifestStore::Commit(const ManifestData& m) {
  const std::string manifest_name = ManifestFileName(m.generation);
  std::ostringstream manifest_frame;
  if (!WriteSnapshotFrame(manifest_frame, kManifestTag, EncodeManifest(m))) {
    return false;
  }
  if (!WriteFileAtomic(manifest_name, std::move(manifest_frame).str())) {
    return false;
  }
  std::ostringstream current_frame;
  if (!WriteSnapshotFrame(current_frame, kCurrentTag, manifest_name)) {
    return false;
  }
  // The commit point: replacing CURRENT is one atomic rename.
  return WriteFileAtomic(kCurrentFileName, std::move(current_frame).str());
}

std::vector<std::string> ManifestStore::CandidateManifests(
    bool* current_target_ok) const {
  std::vector<std::string> candidates;
  *current_target_ok = false;
  std::string current_bytes;
  if (env_->ReadFileBytes(PathOf(kCurrentFileName), &current_bytes)) {
    std::istringstream is(current_bytes);
    std::string tag;
    std::string target;
    uint64_t gen;
    if (ReadSnapshotFrame(is, &tag, &target) && tag == kCurrentTag &&
        ParseManifestFileName(target, &gen) && env_->Exists(PathOf(target))) {
      candidates.push_back(target);
      *current_target_ok = true;
    }
  }
  // Fallback pool: every manifest on disk, newest first. Recovery walks
  // these only when the CURRENT route (or a file it references) is
  // unusable — falling back can lose the newest generation but never
  // mixes two.
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const std::string& name : env_->ListDir(dir_)) {
    uint64_t gen;
    if (ParseManifestFileName(name, &gen)) found.emplace_back(gen, name);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (auto& [gen, name] : found) {
    if (candidates.empty() || candidates.front() != name) {
      candidates.push_back(std::move(name));
    }
  }
  return candidates;
}

bool ManifestStore::ReadManifest(const std::string& file_name,
                                 ManifestData* out) const {
  std::string bytes;
  if (!env_->ReadFileBytes(PathOf(file_name), &bytes)) return false;
  std::istringstream is(bytes);
  std::string tag;
  std::string payload;
  if (!ReadSnapshotFrame(is, &tag, &payload) || tag != kManifestTag) {
    return false;
  }
  return DecodeManifest(payload, out);
}

void ManifestStore::GarbageCollect(
    const std::vector<const ManifestData*>& keep) const {
  std::set<std::string> retained;
  retained.insert(std::string(kCurrentFileName));
  retained.insert(std::string(kWalFileName));
  for (const ManifestData* m : keep) {
    if (m == nullptr) continue;
    retained.insert(ManifestFileName(m->generation));
    for (const LevelManifest& level : m->levels) {
      for (const RunManifest& run : level.runs) {
        retained.insert(RunDataFileName(run.id));
        if (run.has_point_filter) retained.insert(PointFilterFileName(run.id));
        if (run.has_range_filter) retained.insert(RangeFilterFileName(run.id));
      }
    }
  }
  for (const std::string& name : env_->ListDir(dir_)) {
    if (!retained.contains(name)) env_->Remove(PathOf(name));
  }
}

}  // namespace bbf::lsm
