#ifndef BBF_APPS_LSM_LSM_TREE_H_
#define BBF_APPS_LSM_LSM_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "apps/lsm/io_model.h"
#include "apps/lsm/run.h"

namespace bbf::lsm {

/// Filter-memory allocation across levels (§3.1).
enum class FilterAllocation {
  kUniform,  // Same bits/key everywhere: expected lookup cost O(eps * L).
  kMonkey,   // Monkey [32]: geometrically lower FPR for smaller levels,
             // sum of FPRs converges -> expected lookup cost O(eps).
};

struct LsmOptions {
  uint64_t memtable_entries = 4096;  // Flush threshold.
  int size_ratio = 4;                // T: level i+1 is T times level i.
  bool tiering = false;              // false = leveling (1 run/level).
  PointFilterKind point_filter = PointFilterKind::kBloom;
  double point_bits_per_key = 10.0;
  RangeFilterKind range_filter = RangeFilterKind::kNone;
  double range_bits_per_key = 14.0;
  FilterAllocation allocation = FilterAllocation::kUniform;
};

/// A miniature LSM-tree storage engine (§3.1): memtable + leveled or
/// tiered sorted runs, each fronted by pluggable point/range filters, over
/// the simulated I/O model. Supports puts, deletes (tombstones), point
/// lookups, and range scans; tracks write amplification and I/O counts so
/// experiments E9 can reproduce the Monkey / range-filter claims.
class LsmTree {
 public:
  explicit LsmTree(LsmOptions options);

  void Put(uint64_t key, uint64_t value);
  void Delete(uint64_t key);

  /// Point lookup: newest to oldest. Charges the I/O model.
  std::optional<uint64_t> Get(uint64_t key);

  /// All live key/value pairs in [lo, hi], newest version wins.
  std::vector<std::pair<uint64_t, uint64_t>> Scan(uint64_t lo, uint64_t hi);

  const IoStats& io() const { return io_; }
  void ResetIo() { io_.Reset(); }

  uint64_t TotalEntries() const;
  size_t TotalFilterBits() const;
  int NumLevels() const { return static_cast<int>(levels_.size()); }
  /// Entries written by compactions / entries ingested.
  double WriteAmplification() const {
    return ingested_ == 0
               ? 0.0
               : static_cast<double>(compaction_writes_) / ingested_;
  }

 private:
  struct Level {
    std::vector<std::shared_ptr<SortedRun>> runs;  // Newest first.
  };

  void FlushMemtable();
  void MaybeCompact(size_t level_idx);
  uint64_t LevelCapacity(size_t level_idx) const;
  double PointBitsForLevel(size_t level_idx) const;
  std::shared_ptr<SortedRun> BuildRun(std::vector<Entry> entries,
                                      size_t level_idx);

  LsmOptions options_;
  std::map<uint64_t, Entry> memtable_;
  std::vector<Level> levels_;
  IoStats io_;
  uint64_t ingested_ = 0;
  uint64_t compaction_writes_ = 0;
  uint64_t run_seed_ = 0;
};

}  // namespace bbf::lsm

#endif  // BBF_APPS_LSM_LSM_TREE_H_
