#ifndef BBF_APPS_LSM_LSM_TREE_H_
#define BBF_APPS_LSM_LSM_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/lsm/io_model.h"
#include "apps/lsm/manifest.h"
#include "apps/lsm/run.h"
#include "obs/metrics.h"

namespace bbf::lsm {

/// Filter-memory allocation across levels (§3.1).
enum class FilterAllocation {
  kUniform,  // Same bits/key everywhere: expected lookup cost O(eps * L).
  kMonkey,   // Monkey [32]: geometrically lower FPR for smaller levels,
             // sum of FPRs converges -> expected lookup cost O(eps).
};

/// What fronts the mutable memtable level (§2.2). The expandable kinds
/// grow with the memtable and are ADOPTED by the L0 run at flush — the
/// mutable level survives flush cycles without rebuild-from-scratch
/// (the Taffy/Aleph argument for why mutable levels want expandable
/// filters rather than statically-sized blooms).
enum class MemtableFilterKind {
  kNone,   // No memtable filter; L0 runs build theirs at flush.
  kTaffy,  // Quotient table, variable-length fingerprints, doubling.
  kRing,   // Elastic hash ring of fingerprint segments.
};

struct LsmOptions {
  uint64_t memtable_entries = 4096;  // Flush threshold.
  int size_ratio = 4;                // T: level i+1 is T times level i.
  bool tiering = false;              // false = leveling (1 run/level).
  PointFilterKind point_filter = PointFilterKind::kBloom;
  double point_bits_per_key = 10.0;
  RangeFilterKind range_filter = RangeFilterKind::kNone;
  double range_bits_per_key = 14.0;
  FilterAllocation allocation = FilterAllocation::kUniform;
  MemtableFilterKind memtable_filter = MemtableFilterKind::kTaffy;
  /// Directory for the persistent generation store (DESIGN.md §13).
  /// Empty = volatile: the tree lives and dies in memory, exactly the
  /// pre-lifecycle behavior.
  std::string dir;
};

/// What LsmTree::Open found on disk — exported through ObsSnapshot() so
/// recovery health is scrapeable.
struct RecoveryStats {
  uint64_t generations_committed = 0;  // Generation number recovered to.
  uint64_t wal_records_replayed = 0;   // Acked ops replayed from the WAL.
  uint64_t filters_quarantined = 0;    // Corrupt filter frames survived.
  uint64_t filters_rebuilt = 0;        // Quarantined/unpersisted filters
                                       // regenerated from key streams.
  uint64_t manifest_fallbacks = 0;     // Manifests tried and rejected
                                       // before one loaded.
};

/// A miniature LSM-tree storage engine (§3.1): memtable + leveled or
/// tiered sorted runs, each fronted by pluggable point/range filters, over
/// the simulated I/O model. Supports puts, deletes (tombstones), point
/// lookups, and range scans; tracks write amplification and I/O counts so
/// experiments E9 can reproduce the Monkey / range-filter claims.
///
/// With `options.dir` set, every flush/compaction persists a new
/// generation — all new run data + filter snapshots, then a manifest,
/// committed by one atomic CURRENT rename — and every acked Put/Delete is
/// WAL-framed first, so a crash at any instant recovers (via Open) to
/// exactly the old or the new generation plus the acked WAL prefix:
/// never a mix, never a lost acked key.
class LsmTree {
 public:
  /// A volatile tree, or (dir set) a fresh persistent one. For a
  /// directory that may already hold a tree, use Open — this constructor
  /// never reads existing state.
  explicit LsmTree(LsmOptions options, StorageEnv* env = nullptr);

  /// Opens (or creates) the persistent tree in `options.dir`, replaying
  /// the newest committed generation through the filter registry and the
  /// WAL's valid prefix. Degrades rather than fails: a corrupt filter
  /// frame quarantines its run (served filterless, rebuilt at the next
  /// flush); a corrupt CURRENT or manifest falls back to the newest
  /// loadable generation. Returns nullptr only when no generation loads
  /// at all even though manifests exist — the clean-failure path, never
  /// wrong answers. With `options.dir` empty this is just the
  /// constructor.
  static std::unique_ptr<LsmTree> Open(LsmOptions options,
                                       StorageEnv* env = nullptr);

  /// Returns true when the op is durably acked (WAL append succeeded, or
  /// the tree is volatile). A false return still applies the op in
  /// memory — the caller decides whether a lame-duck store is fatal.
  bool Put(uint64_t key, uint64_t value);
  bool Delete(uint64_t key);

  /// Point lookup: newest to oldest. Charges the I/O model.
  std::optional<uint64_t> Get(uint64_t key);

  /// All live key/value pairs in [lo, hi], newest version wins.
  std::vector<std::pair<uint64_t, uint64_t>> Scan(uint64_t lo, uint64_t hi);

  const IoStats& io() const { return io_; }
  void ResetIo() { io_.Reset(); }

  uint64_t TotalEntries() const;
  size_t TotalFilterBits() const;
  int NumLevels() const { return static_cast<int>(levels_.size()); }
  /// Entries written by compactions / entries ingested. Resets across
  /// recovery (neither tally is persisted).
  double WriteAmplification() const {
    return ingested_ == 0
               ? 0.0
               : static_cast<double>(compaction_writes_) / ingested_;
  }

  bool persistent() const { return store_ != nullptr; }
  uint64_t generation() const { return generation_; }
  const RecoveryStats& recovery() const { return recovery_; }
  /// Runs currently serving filterless because of a quarantined frame.
  uint64_t QuarantinedRuns() const;
  const Filter* memtable_filter() const { return memtable_filter_.get(); }

  /// Lifecycle + degraded-mode metrics for MetricsRegistry::Register
  /// (counters are monotone over this object's lifetime).
  obs::MetricsSnapshot ObsSnapshot() const;

 private:
  struct Level {
    std::vector<std::shared_ptr<SortedRun>> runs;  // Newest first.
  };

  bool RecoverOrInit();
  bool LoadGeneration(const ManifestData& m);
  void ReplayWal();
  void ApplyWrite(const Entry& e);
  void FlushMemtable();
  void MaybeCompact(size_t level_idx);
  void RebuildMissingFilters();
  void PersistGeneration();
  uint64_t LevelCapacity(size_t level_idx) const;
  double PointBitsForLevel(size_t level_idx) const;
  std::shared_ptr<SortedRun> BuildRun(std::vector<Entry> entries,
                                      size_t level_idx);
  std::unique_ptr<Filter> MakeMemtableFilter() const;

  LsmOptions options_;
  StorageEnv* env_;
  std::unique_ptr<ManifestStore> store_;  // Null = volatile.
  std::map<uint64_t, Entry> memtable_;
  /// Expandable filter over the memtable's keys, adopted by the L0 run
  /// at flush. Null when disabled; dropped (and the L0 filter built from
  /// scratch instead) if an insert ever fails.
  std::unique_ptr<Filter> memtable_filter_;
  std::vector<Level> levels_;
  IoStats io_;
  uint64_t ingested_ = 0;
  uint64_t compaction_writes_ = 0;
  uint64_t run_seed_ = 0;
  uint64_t next_run_id_ = 1;
  uint64_t generation_ = 0;
  std::optional<ManifestData> committed_;  // Last committed manifest.
  std::optional<ManifestData> previous_;   // The one before, for GC.
  RecoveryStats recovery_;
  // Monotone lifecycle counters (ObsSnapshot does not reset with io_).
  uint64_t generations_committed_total_ = 0;
  uint64_t persist_failures_total_ = 0;
  uint64_t wal_append_failures_total_ = 0;
  uint64_t filters_rebuilt_total_ = 0;
  uint64_t quarantined_reads_total_ = 0;
};

}  // namespace bbf::lsm

#endif  // BBF_APPS_LSM_LSM_TREE_H_
