#include "apps/lsm/run.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "bloom/bloom_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/quotient_filter.h"
#include "range/grafite.h"
#include "range/memento.h"
#include "range/prefix_bloom_range.h"
#include "range/rosetta.h"
#include "range/snarf.h"
#include "range/surf.h"
#include "staticf/ribbon_filter.h"
#include "util/bits.h"
#include "util/serialize.h"
#include "staticf/xor_filter.h"

namespace bbf::lsm {
namespace {

constexpr std::string_view kRunDataTag = "lsm-run";

}  // namespace

std::unique_ptr<Filter> BuildPointFilter(const std::vector<uint64_t>& keys,
                                         PointFilterKind kind,
                                         double bits_per_key, uint64_t seed) {
  const uint64_t n = std::max<uint64_t>(keys.size(), 1);
  // Fingerprint widths chosen so each filter spends ~bits_per_key.
  switch (kind) {
    case PointFilterKind::kNone:
      return nullptr;
    case PointFilterKind::kBloom: {
      auto f = std::make_unique<BloomFilter>(n, bits_per_key, 0, seed);
      for (uint64_t k : keys) f->Insert(k);
      return f;
    }
    case PointFilterKind::kBlockedBloom: {
      auto f = std::make_unique<BlockedBloomFilter>(n, bits_per_key);
      for (uint64_t k : keys) f->Insert(k);
      return f;
    }
    case PointFilterKind::kXor: {
      const int fp_bits =
          std::max(2, static_cast<int>(std::lround(bits_per_key / 1.23)));
      return std::make_unique<XorFilter>(keys, fp_bits);
    }
    case PointFilterKind::kRibbon: {
      const int fp_bits =
          std::max(2, static_cast<int>(std::lround(bits_per_key / 1.05)));
      return std::make_unique<RibbonFilter>(keys, fp_bits);
    }
    case PointFilterKind::kCuckoo: {
      const int fp_bits =
          std::max(4, static_cast<int>(std::lround(bits_per_key * 0.95)));
      auto f = std::make_unique<CuckooFilter>(n, fp_bits, seed);
      for (uint64_t k : keys) f->Insert(k);
      return f;
    }
    case PointFilterKind::kQuotient: {
      const int r_bits =
          std::max(2, static_cast<int>(std::lround(bits_per_key - 3)));
      const int q_bits = std::max(
          6, BitWidth(NextPow2(static_cast<uint64_t>(
                 std::ceil(n / QuotientFilter::kMaxLoadFactor))) -
             1));
      auto f = std::make_unique<QuotientFilter>(q_bits, r_bits, seed);
      for (uint64_t k : keys) f->Insert(k);
      return f;
    }
  }
  return nullptr;
}

std::unique_ptr<RangeFilter> BuildRangeFilter(
    const std::vector<uint64_t>& keys, RangeFilterKind kind,
    double bits_per_key) {
  if (keys.empty()) return nullptr;
  switch (kind) {
    case RangeFilterKind::kNone:
      return nullptr;
    case RangeFilterKind::kPrefixBloom:
      return std::make_unique<PrefixBloomRangeFilter>(keys, 44, bits_per_key);
    case RangeFilterKind::kSurf: {
      // Spend whatever the trie doesn't need on real suffix bits.
      return std::make_unique<SurfFilter>(keys, SurfFilter::SuffixMode::kReal,
                                          8);
    }
    case RangeFilterKind::kRosetta:
      return std::make_unique<RosettaRangeFilter>(keys, 17, bits_per_key);
    case RangeFilterKind::kSnarf:
      return std::make_unique<SnarfRangeFilter>(
          keys, std::max(1, static_cast<int>(bits_per_key) - 2));
    case RangeFilterKind::kGrafite:
      return std::make_unique<GrafiteRangeFilter>(
          GrafiteRangeFilter::ForBitsPerKey(keys, bits_per_key));
    case RangeFilterKind::kMemento: {
      // The dynamic family: the "build" is just the online insert path.
      auto f = std::make_unique<MementoFilter>(
          MementoFilter::ForBitsPerKey(keys.size(), bits_per_key));
      for (uint64_t k : keys) f->AddKey(k);
      return f;
    }
  }
  return nullptr;
}

std::unique_ptr<RangeFilter> LoadRangeFilterSnapshot(std::istream& is) {
  const std::istream::pos_type start = is.tellg();
  std::string tag;
  std::string payload;
  if (!ReadSnapshotFrame(is, &tag, &payload)) return nullptr;
  std::unique_ptr<RangeFilter> filter;
  if (tag == "prefix-bloom") {
    filter = std::make_unique<PrefixBloomRangeFilter>(
        std::vector<uint64_t>{}, 44, 10.0);
  } else if (tag == "memento") {
    filter = std::make_unique<MementoFilter>(6, 8);
  } else {
    return nullptr;
  }
  // Replay the whole frame through the family's own Load so its tag check
  // and payload validation run exactly as for point filters.
  is.clear();
  if (!is.seekg(start)) return nullptr;
  if (!filter->Load(is)) return nullptr;
  return filter;
}

SortedRun::SortedRun(uint64_t id, std::vector<Entry> entries,
                     PointFilterKind point_kind, double point_bits_per_key,
                     RangeFilterKind range_kind, double range_bits_per_key,
                     uint64_t filter_seed)
    : id_(id), entries_(std::move(entries)) {
  const std::vector<uint64_t> keys = Keys();
  if (!keys.empty()) {
    point_filter_ =
        BuildPointFilter(keys, point_kind, point_bits_per_key, filter_seed);
    range_filter_ = BuildRangeFilter(keys, range_kind, range_bits_per_key);
  }
}

SortedRun::SortedRun(uint64_t id, std::vector<Entry> entries,
                     std::unique_ptr<Filter> adopted_point_filter,
                     RangeFilterKind range_kind, double range_bits_per_key)
    : id_(id),
      entries_(std::move(entries)),
      point_filter_(std::move(adopted_point_filter)) {
  const std::vector<uint64_t> keys = Keys();
  if (!keys.empty()) {
    range_filter_ = BuildRangeFilter(keys, range_kind, range_bits_per_key);
  }
}

SortedRun::SortedRun(uint64_t id, std::vector<Entry> entries,
                     std::unique_ptr<Filter> point_filter,
                     bool point_quarantined,
                     std::unique_ptr<RangeFilter> range_filter,
                     bool range_quarantined)
    : id_(id),
      entries_(std::move(entries)),
      point_filter_(std::move(point_filter)),
      range_filter_(std::move(range_filter)),
      point_quarantined_(point_quarantined),
      range_quarantined_(range_quarantined),
      data_persisted_(true),
      point_filter_persisted_(point_filter_ != nullptr),
      range_filter_persisted_(range_filter_ != nullptr) {}

std::vector<uint64_t> SortedRun::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(entries_.size());
  for (const Entry& e : entries_) keys.push_back(e.key);
  return keys;
}

void SortedRun::ReplacePointFilter(std::unique_ptr<Filter> filter) {
  point_filter_ = std::move(filter);
  point_quarantined_ = false;
  point_filter_persisted_ = false;
}

void SortedRun::ReplaceRangeFilter(std::unique_ptr<RangeFilter> filter) {
  range_filter_ = std::move(filter);
  range_quarantined_ = false;
  range_filter_persisted_ = false;
}

std::optional<Entry> SortedRun::Get(uint64_t key, IoStats* io) const {
  if (entries_.empty() || key < min_key() || key > max_key()) {
    return std::nullopt;
  }
  ++io->runs_consulted;
  if (point_filter_ != nullptr) {
    ++io->filter_probes;
    if (!point_filter_->Contains(key)) return std::nullopt;
  } else if (point_quarantined_) {
    // Degraded mode: no filter to avert the read; the extra I/O is the
    // price of serving through a corrupt snapshot instead of failing.
    ++io->quarantined_reads;
  }
  ++io->data_reads;  // One page fetch to binary-search the run.
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, uint64_t k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return *it;
  ++io->false_probes;  // The filter (or key-range check) lied.
  return std::nullopt;
}

void SortedRun::Scan(uint64_t lo, uint64_t hi, std::vector<Entry>* out,
                     IoStats* io) const {
  if (entries_.empty() || hi < min_key() || lo > max_key()) return;
  ++io->runs_consulted;
  if (range_filter_ != nullptr) {
    ++io->filter_probes;
    if (!range_filter_->MayContainRange(lo, hi)) return;
  } else if (range_quarantined_) {
    ++io->quarantined_reads;
  }
  const auto begin = std::lower_bound(
      entries_.begin(), entries_.end(), lo,
      [](const Entry& e, uint64_t k) { return e.key < k; });
  const auto end = std::upper_bound(
      entries_.begin(), entries_.end(), hi,
      [](uint64_t k, const Entry& e) { return k < e.key; });
  const uint64_t matched = static_cast<uint64_t>(end - begin);
  // The seek costs one page; each further page of results costs another.
  io->data_reads += 1 + matched / kEntriesPerPage;
  if (matched == 0) ++io->false_probes;
  out->insert(out->end(), begin, end);
}

bool SortedRun::SaveData(std::ostream& os) const {
  std::ostringstream payload;
  WriteU64(payload, entries_.size());
  for (const Entry& e : entries_) {
    WriteU64(payload, e.key);
    WriteU64(payload, e.value);
    WriteU64(payload, e.tombstone ? 1 : 0);
  }
  return WriteSnapshotFrame(os, kRunDataTag, std::move(payload).str());
}

bool SortedRun::LoadData(std::istream& is, std::vector<Entry>* out) {
  out->clear();
  std::string tag;
  std::string payload;
  if (!ReadSnapshotFrame(is, &tag, &payload) || tag != kRunDataTag) {
    return false;
  }
  std::istringstream ps(payload);
  uint64_t count;
  if (!ReadU64Capped(ps, &count, kMaxSnapshotElements)) return false;
  std::vector<Entry> entries;
  entries.reserve(std::min<uint64_t>(count, 1u << 20));
  for (uint64_t i = 0; i < count; ++i) {
    Entry e;
    uint64_t tombstone;
    if (!ReadU64(ps, &e.key) || !ReadU64(ps, &e.value) ||
        !ReadU64Capped(ps, &tombstone, 1)) {
      return false;
    }
    e.tombstone = tombstone != 0;
    // Runs are sorted with one version per key; anything else is
    // corruption the checksum happened to miss.
    if (!entries.empty() && entries.back().key >= e.key) return false;
    entries.push_back(e);
  }
  ps.peek();
  if (!ps.eof()) return false;
  *out = std::move(entries);
  return true;
}

size_t SortedRun::FilterBits() const {
  size_t bits = 0;
  if (point_filter_ != nullptr) bits += point_filter_->SpaceBits();
  if (range_filter_ != nullptr) bits += range_filter_->SpaceBits();
  return bits;
}

}  // namespace bbf::lsm
