#include "apps/lsm/run.h"

#include <algorithm>
#include <cmath>

#include "bloom/bloom_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/quotient_filter.h"
#include "range/grafite.h"
#include "range/prefix_bloom_range.h"
#include "range/rosetta.h"
#include "range/snarf.h"
#include "range/surf.h"
#include "staticf/ribbon_filter.h"
#include "util/bits.h"
#include "staticf/xor_filter.h"

namespace bbf::lsm {
namespace {

std::unique_ptr<Filter> BuildPointFilter(const std::vector<uint64_t>& keys,
                                         PointFilterKind kind,
                                         double bits_per_key, uint64_t seed) {
  const uint64_t n = std::max<uint64_t>(keys.size(), 1);
  // Fingerprint widths chosen so each filter spends ~bits_per_key.
  switch (kind) {
    case PointFilterKind::kNone:
      return nullptr;
    case PointFilterKind::kBloom: {
      auto f = std::make_unique<BloomFilter>(n, bits_per_key, 0, seed);
      for (uint64_t k : keys) f->Insert(k);
      return f;
    }
    case PointFilterKind::kBlockedBloom: {
      auto f = std::make_unique<BlockedBloomFilter>(n, bits_per_key);
      for (uint64_t k : keys) f->Insert(k);
      return f;
    }
    case PointFilterKind::kXor: {
      const int fp_bits =
          std::max(2, static_cast<int>(std::lround(bits_per_key / 1.23)));
      return std::make_unique<XorFilter>(keys, fp_bits);
    }
    case PointFilterKind::kRibbon: {
      const int fp_bits =
          std::max(2, static_cast<int>(std::lround(bits_per_key / 1.05)));
      return std::make_unique<RibbonFilter>(keys, fp_bits);
    }
    case PointFilterKind::kCuckoo: {
      const int fp_bits =
          std::max(4, static_cast<int>(std::lround(bits_per_key * 0.95)));
      auto f = std::make_unique<CuckooFilter>(n, fp_bits, seed);
      for (uint64_t k : keys) f->Insert(k);
      return f;
    }
    case PointFilterKind::kQuotient: {
      const int r_bits =
          std::max(2, static_cast<int>(std::lround(bits_per_key - 3)));
      const int q_bits = std::max(
          6, BitWidth(NextPow2(static_cast<uint64_t>(
                 std::ceil(n / QuotientFilter::kMaxLoadFactor))) -
             1));
      auto f = std::make_unique<QuotientFilter>(q_bits, r_bits, seed);
      for (uint64_t k : keys) f->Insert(k);
      return f;
    }
  }
  return nullptr;
}

std::unique_ptr<RangeFilter> BuildRangeFilter(
    const std::vector<uint64_t>& keys, RangeFilterKind kind,
    double bits_per_key) {
  if (keys.empty()) return nullptr;
  switch (kind) {
    case RangeFilterKind::kNone:
      return nullptr;
    case RangeFilterKind::kPrefixBloom:
      return std::make_unique<PrefixBloomRangeFilter>(keys, 44, bits_per_key);
    case RangeFilterKind::kSurf: {
      // Spend whatever the trie doesn't need on real suffix bits.
      return std::make_unique<SurfFilter>(keys, SurfFilter::SuffixMode::kReal,
                                          8);
    }
    case RangeFilterKind::kRosetta:
      return std::make_unique<RosettaRangeFilter>(keys, 17, bits_per_key);
    case RangeFilterKind::kSnarf:
      return std::make_unique<SnarfRangeFilter>(
          keys, std::max(1, static_cast<int>(bits_per_key) - 2));
    case RangeFilterKind::kGrafite:
      return std::make_unique<GrafiteRangeFilter>(
          GrafiteRangeFilter::ForBitsPerKey(keys, bits_per_key));
  }
  return nullptr;
}

}  // namespace

SortedRun::SortedRun(std::vector<Entry> entries, PointFilterKind point_kind,
                     double point_bits_per_key, RangeFilterKind range_kind,
                     double range_bits_per_key, uint64_t filter_seed)
    : entries_(std::move(entries)) {
  std::vector<uint64_t> keys;
  keys.reserve(entries_.size());
  for (const Entry& e : entries_) keys.push_back(e.key);
  if (!keys.empty()) {
    point_filter_ =
        BuildPointFilter(keys, point_kind, point_bits_per_key, filter_seed);
    range_filter_ = BuildRangeFilter(keys, range_kind, range_bits_per_key);
  }
}

std::optional<Entry> SortedRun::Get(uint64_t key, IoStats* io) const {
  if (entries_.empty() || key < min_key() || key > max_key()) {
    return std::nullopt;
  }
  ++io->runs_consulted;
  if (point_filter_ != nullptr) {
    ++io->filter_probes;
    if (!point_filter_->Contains(key)) return std::nullopt;
  }
  ++io->data_reads;  // One page fetch to binary-search the run.
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, uint64_t k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return *it;
  ++io->false_probes;  // The filter (or key-range check) lied.
  return std::nullopt;
}

void SortedRun::Scan(uint64_t lo, uint64_t hi, std::vector<Entry>* out,
                     IoStats* io) const {
  if (entries_.empty() || hi < min_key() || lo > max_key()) return;
  ++io->runs_consulted;
  if (range_filter_ != nullptr) {
    ++io->filter_probes;
    if (!range_filter_->MayContainRange(lo, hi)) return;
  }
  const auto begin = std::lower_bound(
      entries_.begin(), entries_.end(), lo,
      [](const Entry& e, uint64_t k) { return e.key < k; });
  const auto end = std::upper_bound(
      entries_.begin(), entries_.end(), hi,
      [](uint64_t k, const Entry& e) { return k < e.key; });
  const uint64_t matched = static_cast<uint64_t>(end - begin);
  // The seek costs one page; each further page of results costs another.
  io->data_reads += 1 + matched / kEntriesPerPage;
  if (matched == 0) ++io->false_probes;
  out->insert(out->end(), begin, end);
}

size_t SortedRun::FilterBits() const {
  size_t bits = 0;
  if (point_filter_ != nullptr) bits += point_filter_->SpaceBits();
  if (range_filter_ != nullptr) bits += range_filter_->SpaceBits();
  return bits;
}

}  // namespace bbf::lsm
