#ifndef BBF_APPS_LSM_MANIFEST_H_
#define BBF_APPS_LSM_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "apps/lsm/run.h"

namespace bbf::lsm {

/// Filesystem primitives behind the LSM persistence layer. Everything the
/// commit protocol does to disk goes through one of these virtuals, so a
/// test environment can count mutations, fail them, or tear a write in
/// half at any point — the crash-point sweep in lsm_recovery_test drives
/// exactly that. Reads are not fault points (a crashed process never
/// reads); they return false/empty on absent or unreadable files instead
/// of throwing.
class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  /// Creates `path` (and parents). True if it exists afterwards.
  virtual bool CreateDir(const std::string& path);
  /// Replaces `path` with `bytes`. NOT atomic — callers wanting atomic
  /// replacement write a sibling temp file and Rename over the target.
  virtual bool WriteFile(const std::string& path, std::string_view bytes);
  /// Appends `bytes` to `path`, creating it if absent (the WAL op).
  virtual bool AppendFile(const std::string& path, std::string_view bytes);
  /// Atomically replaces `to` with `from` (POSIX rename semantics — the
  /// commit point of every multi-file transition).
  virtual bool Rename(const std::string& from, const std::string& to);
  /// Removes `path`; true if it is gone afterwards (absent counts).
  virtual bool Remove(const std::string& path);

  // --- Reads (never fault-injected). ---
  virtual bool ReadFileBytes(const std::string& path, std::string* out) const;
  virtual bool Exists(const std::string& path) const;
  /// Plain file names (not paths) directly under `dir`; empty on error.
  virtual std::vector<std::string> ListDir(const std::string& dir) const;
};

/// The process-wide real-filesystem environment.
StorageEnv* RealEnv();

// --- File naming -------------------------------------------------------------

inline constexpr std::string_view kCurrentFileName = "CURRENT";
inline constexpr std::string_view kWalFileName = "wal";

std::string ManifestFileName(uint64_t generation);
/// Parses "MANIFEST-<gen>"; false for anything else.
bool ParseManifestFileName(std::string_view name, uint64_t* generation);
std::string RunDataFileName(uint64_t run_id);
std::string PointFilterFileName(uint64_t run_id);
std::string RangeFilterFileName(uint64_t run_id);

// --- Manifest contents -------------------------------------------------------

/// One run's row in a manifest: which files exist for it and how many
/// entries its data frame must decode to.
struct RunManifest {
  uint64_t id = 0;
  uint64_t entries = 0;
  bool has_point_filter = false;
  bool has_range_filter = false;
};

struct LevelManifest {
  std::vector<RunManifest> runs;  // Newest first, like LsmTree levels.
};

/// A complete generation description — everything LsmTree::Open needs to
/// reconstruct the tree shape. Self-contained by design: whichever single
/// manifest recovery picks yields a consistent tree, never a mix.
struct ManifestData {
  uint64_t generation = 0;
  uint64_t next_run_id = 1;
  std::vector<LevelManifest> levels;
};

/// Serializes `m` into the manifest frame payload (DESIGN.md §13).
std::string EncodeManifest(const ManifestData& m);
/// Strict inverse; false on truncation, hostile counts, or id/flag fields
/// that cannot describe a valid tree. Leaves `*out` unspecified on false.
bool DecodeManifest(std::string_view payload, ManifestData* out);

// --- WAL records -------------------------------------------------------------

/// One framed Put/Delete record ready for StorageEnv::AppendFile.
std::string EncodeWalRecord(const Entry& e);
/// Parses a concatenation of WAL frames, appending decoded entries in log
/// order. Stops at the first defective frame — a torn tail is the
/// expected crash artifact, everything before it is durable — and returns
/// the number of records recovered.
uint64_t DecodeWalRecords(const std::string& bytes, std::vector<Entry>* out);

// --- Generation directory ----------------------------------------------------

/// Owns the manifest/CURRENT commit protocol for one LSM directory
/// (DESIGN.md §13). The store itself is stateless between calls; all
/// durability decisions live in the file layout:
///
///   CURRENT          frame("lsm-current", <manifest file name>)
///   MANIFEST-<gen>   frame("lsm-manifest", EncodeManifest(...))
///   wal              frame("lsm-wal", record)*
///   run-<id>.data    frame("lsm-run", entries)
///   run-<id>.pf      the run's point filter snapshot (Filter::Save)
///   run-<id>.rf      the run's range filter snapshot (RangeFilter::Save)
///
/// Every file is written to a ".tmp" sibling first and renamed into
/// place; pointing CURRENT at the new manifest is the single atomic
/// commit. A crash before that rename leaves CURRENT on the old
/// generation (whose files are retained until after the commit); a crash
/// after it leaves the new generation fully referenced.
class ManifestStore {
 public:
  ManifestStore(std::string dir, StorageEnv* env);

  const std::string& dir() const { return dir_; }
  StorageEnv* env() const { return env_; }
  std::string PathOf(std::string_view file_name) const;

  /// Write-temp-then-rename. False if either step fails.
  bool WriteFileAtomic(std::string_view file_name, std::string_view bytes);

  /// Writes MANIFEST-<m.generation> atomically, then atomically points
  /// CURRENT at it — the commit. False as soon as any step fails, in
  /// which case CURRENT still names the previous generation.
  bool Commit(const ManifestData& m);

  /// Manifest file names to try, most-preferred first: CURRENT's target
  /// (when CURRENT parses and the target exists), then every MANIFEST-*
  /// in the directory, newest generation first. `current_target_ok`
  /// reports whether the first entry came from CURRENT, so recovery can
  /// count fallbacks.
  std::vector<std::string> CandidateManifests(bool* current_target_ok) const;

  /// Reads and verifies one manifest file. False on any frame or payload
  /// defect.
  bool ReadManifest(const std::string& file_name, ManifestData* out) const;

  /// Removes files that no retained generation references: temp litter,
  /// manifests other than `keep`'s generations, and run files whose id
  /// appears in no retained manifest. CURRENT and the WAL are always
  /// kept. Failures are ignored — GC is advisory, correctness never
  /// depends on it.
  void GarbageCollect(const std::vector<const ManifestData*>& keep) const;

 private:
  std::string dir_;
  StorageEnv* env_;
};

}  // namespace bbf::lsm

#endif  // BBF_APPS_LSM_MANIFEST_H_
