#include "apps/lsm/circular_log.h"

#include <algorithm>
#include <unordered_set>

namespace bbf::lsm {

CircularLog::CircularLog(Options options)
    : options_(options), rebuild_q_bits_(options.initial_q_bits) {
  maplet_ = std::make_unique<ExpandingQuotientMaplet>(
      options_.initial_q_bits, options_.fingerprint_bits, /*value_bits=*/32);
}

int CircularLog::maplet_expansions() const { return maplet_->expansions(); }

std::optional<uint64_t> CircularLog::FindOffset(uint64_t key) {
  const auto candidates = maplet_->Lookup(key);
  if (candidates.empty()) return std::nullopt;
  // Visit each candidate page once; maplet noise shows up here as extra
  // page reads that find nothing.
  std::unordered_set<uint64_t> seen;
  for (uint64_t page : candidates) {
    if (!seen.insert(page).second) continue;
    ++io_.data_reads;
    const uint64_t begin = page * kRecordsPerPage;
    const uint64_t end =
        std::min<uint64_t>(begin + kRecordsPerPage, log_.size());
    bool found = false;
    uint64_t offset = 0;
    for (uint64_t i = begin; i < end; ++i) {
      if (!log_[i].dead && log_[i].key == key) {
        found = true;
        offset = i;  // Keep the latest live record in the page.
      }
    }
    if (found) return offset;
    ++io_.false_probes;
  }
  return std::nullopt;
}

void CircularLog::Append(uint64_t key, uint64_t value,
                         bool tombstone_of_delete) {
  log_.push_back(Record{key, value, tombstone_of_delete});
  // Appends are batched into pages: charge one write per page boundary.
  if (log_.size() % kRecordsPerPage == 1) ++io_.runs_consulted;
}

void CircularLog::Put(uint64_t key, uint64_t value) {
  const auto old_offset = FindOffset(key);
  if (old_offset.has_value()) {
    log_[*old_offset].dead = true;
    ++dead_;
    --live_;
    maplet_->Erase(key, PageOf(*old_offset));
  }
  Append(key, value, false);
  const uint64_t page = PageOf(log_.size() - 1);
  if (options_.expand == ExpandStrategy::kRebuildFromLog &&
      maplet_->NumEntries() + 1 >=
          (uint64_t{1} << rebuild_q_bits_) * 9 / 10) {
    ++rebuild_q_bits_;
    RebuildMaplet(rebuild_q_bits_);
    ++rebuilds_;
  }
  maplet_->Insert(key, page);
  ++live_;
  MaybeGc();
}

void CircularLog::Delete(uint64_t key) {
  const auto old_offset = FindOffset(key);
  if (!old_offset.has_value()) return;
  log_[*old_offset].dead = true;
  ++dead_;
  --live_;
  maplet_->Erase(key, PageOf(*old_offset));
  Append(key, 0, /*tombstone_of_delete=*/true);  // Logged for recovery.
  ++dead_;  // The tombstone itself is immediately garbage.
  MaybeGc();
}

std::optional<uint64_t> CircularLog::Get(uint64_t key) {
  const auto offset = FindOffset(key);
  if (!offset.has_value()) return std::nullopt;
  return log_[*offset].value;
}

void CircularLog::RebuildMaplet(int q_bits) {
  // A rebuild reads the entire log (the expensive path the paper warns
  // about) but restores full-length fingerprints.
  io_.data_reads += log_.size() / kRecordsPerPage + 1;
  maplet_ = std::make_unique<ExpandingQuotientMaplet>(
      q_bits, options_.fingerprint_bits, /*value_bits=*/32);
  for (uint64_t i = 0; i < log_.size(); ++i) {
    if (!log_[i].dead) maplet_->Insert(log_[i].key, PageOf(i));
  }
}

void CircularLog::MaybeGc() {
  if (log_.size() < kRecordsPerPage * 8 ||
      static_cast<double>(dead_) <
          options_.gc_dead_fraction * static_cast<double>(log_.size())) {
    return;
  }
  ++gc_runs_;
  // Compact: read the whole log, write back the live prefix.
  io_.data_reads += log_.size() / kRecordsPerPage + 1;
  std::vector<Record> compacted;
  compacted.reserve(live_);
  for (const Record& r : log_) {
    if (!r.dead) compacted.push_back(r);
  }
  io_.runs_consulted += compacted.size() / kRecordsPerPage + 1;
  log_ = std::move(compacted);
  dead_ = 0;
  // Offsets changed: the maplet must be rebuilt (fresh fingerprints).
  const uint64_t needed = std::max<uint64_t>(live_ * 10 / 9, 64);
  int q_bits = options_.initial_q_bits;
  while ((uint64_t{1} << q_bits) < needed) ++q_bits;
  rebuild_q_bits_ = q_bits;
  maplet_ = std::make_unique<ExpandingQuotientMaplet>(
      q_bits, options_.fingerprint_bits, /*value_bits=*/32);
  for (uint64_t i = 0; i < log_.size(); ++i) {
    maplet_->Insert(log_[i].key, PageOf(i));
  }
}

}  // namespace bbf::lsm
