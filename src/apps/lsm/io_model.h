#ifndef BBF_APPS_LSM_IO_MODEL_H_
#define BBF_APPS_LSM_IO_MODEL_H_

#include <cstdint>

namespace bbf::lsm {

/// Deterministic storage-cost model (DESIGN.md §3). Real systems measure
/// device I/O; we count the quantities every cited LSM paper optimizes:
/// one I/O per sorted-run probe (the page fetch a filter can avert) plus
/// one per extra data page a range scan touches.
struct IoStats {
  uint64_t data_reads = 0;      // Simulated page reads from storage.
  uint64_t filter_probes = 0;   // In-memory filter consultations (CPU).
  uint64_t runs_consulted = 0;  // Runs whose filters were consulted.
  uint64_t false_probes = 0;    // Reads that found nothing (filter FPs).
  uint64_t quarantined_reads = 0;  // Reads served filterless because the
                                   // run's filter was quarantined at
                                   // recovery (degraded mode, §13).

  void Reset() { *this = IoStats{}; }
  IoStats& operator+=(const IoStats& o) {
    data_reads += o.data_reads;
    filter_probes += o.filter_probes;
    runs_consulted += o.runs_consulted;
    false_probes += o.false_probes;
    quarantined_reads += o.quarantined_reads;
    return *this;
  }
};

/// Entries per simulated 4 KiB page (16-byte key/value pairs).
inline constexpr uint64_t kEntriesPerPage = 256;

}  // namespace bbf::lsm

#endif  // BBF_APPS_LSM_IO_MODEL_H_
